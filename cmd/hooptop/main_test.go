package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `{"cell":"matrix/hashmap-64/HOOP"}
{"k":"tx_commit","t":1000,"core":0,"tx":1}
{"k":"slice_write","t":1500,"addr":4096,"bytes":128}
{"k":"tx_commit","t":2000,"core":1,"tx":2}
{"k":"gc_start","t":2500,"aux":2}
{"k":"gc_end","t":3000,"bytes":256,"aux":2}
{"cell":"matrix/hashmap-64/undo-log"}
{"k":"log_write","t":900,"core":0,"tx":1,"bytes":48}
{"k":"tx_commit","t":1100,"core":0,"tx":1}
`

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizesCells(t *testing.T) {
	var b strings.Builder
	if err := run([]string{writeTrace(t, sampleTrace)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{
		"7 events in 2 cells",
		"matrix/hashmap-64/HOOP: 5 events",
		"matrix/hashmap-64/undo-log: 2 events",
		"tx_commit",
		"slice_write",
		"128 B",
		"commits/time",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

func TestMarkerlessTraceIsOneCell(t *testing.T) {
	var b strings.Builder
	trace := `{"k":"tx_commit","t":10,"core":0}` + "\n"
	if err := run([]string{writeTrace(t, trace)}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1 events in 1 cells") {
		t.Fatalf("markerless trace not collapsed into one cell:\n%s", b.String())
	}
}

func TestRejectsBadLines(t *testing.T) {
	var b strings.Builder
	err := run([]string{writeTrace(t, `{"k":"no-such-kind","t":1}`+"\n")}, &b)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad event kind not rejected: %v", err)
	}
	err = run([]string{writeTrace(t, "not json\n")}, &b)
	if err == nil {
		t.Fatal("non-JSON line not rejected")
	}
}
