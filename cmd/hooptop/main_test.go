package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleTrace = `{"cell":"matrix/hashmap-64/HOOP"}
{"k":"tx_commit","t":1000,"core":0,"tx":1}
{"k":"slice_write","t":1500,"addr":4096,"bytes":128}
{"k":"tx_commit","t":2000,"core":1,"tx":2}
{"k":"gc_start","t":2500,"aux":2}
{"k":"gc_end","t":3000,"bytes":256,"aux":2}
{"cell":"matrix/hashmap-64/undo-log"}
{"k":"log_write","t":900,"core":0,"tx":1,"bytes":48}
{"k":"tx_commit","t":1100,"core":0,"tx":1}
`

func writeTrace(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummarizesCells(t *testing.T) {
	var b strings.Builder
	if err := run([]string{writeTrace(t, sampleTrace)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{
		"7 events in 2 cells",
		"matrix/hashmap-64/HOOP: 5 events",
		"matrix/hashmap-64/undo-log: 2 events",
		"tx_commit",
		"slice_write",
		"128 B",
		"commits/time",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

func TestMarkerlessTraceIsOneCell(t *testing.T) {
	var b strings.Builder
	trace := `{"k":"tx_commit","t":10,"core":0}` + "\n"
	if err := run([]string{writeTrace(t, trace)}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1 events in 1 cells") {
		t.Fatalf("markerless trace not collapsed into one cell:\n%s", b.String())
	}
}

const soakTrace = `{"cell":"router"}
{"k":"ring_route","t":1000,"core":-1,"tx":1,"aux":0}
{"k":"ring_route","t":2000,"core":-1,"tx":2,"aux":1}
{"cell":"shard-000"}
{"k":"tx_commit","t":500,"core":0,"tx":0,"aux":400}
{"k":"shard_enqueue","t":1000,"core":0,"tx":1,"aux":0}
{"k":"tx_commit","t":1200,"core":0,"tx":1,"aux":200}
{"k":"shard_enqueue","t":2000,"core":0,"tx":3,"aux":100}
{"k":"tx_commit","t":2400,"core":0,"tx":3,"aux":300}
{"cell":"shard-001"}
{"k":"shard_enqueue","t":2000,"core":0,"tx":2,"aux":0}
{"k":"tx_commit","t":2500,"core":0,"tx":2,"aux":500}
{"k":"shard_shed","t":3000,"core":0,"tx":4,"aux":900}
`

func TestSoakSummary(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-soak", writeTrace(t, soakTrace)}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{
		"soak summary, 2 shards",
		"2 ring-routed requests",
		"shard-000", "shard-001",
		"fleet: 3 admitted, 1 shed (25.0%)",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
	// shard-000's pre-arrival commit (t=500, latency 400ps — the preload)
	// must not count toward service latency: only the t>=1000 commits
	// (200ps, 300ps) do, so 400ps appears nowhere in the summary.
	if strings.Contains(out, "400ps") {
		t.Errorf("preload commit leaked into service latency:\n%s", out)
	}
}

func TestSoakRejectsNonSoakTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-soak", writeTrace(t, sampleTrace)}, &b)
	if err == nil || !strings.Contains(err.Error(), "no shard-") {
		t.Fatalf("non-soak trace accepted in -soak mode: %v", err)
	}
}

func TestRejectsBadLines(t *testing.T) {
	var b strings.Builder
	err := run([]string{writeTrace(t, `{"k":"no-such-kind","t":1}`+"\n")}, &b)
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad event kind not rejected: %v", err)
	}
	err = run([]string{writeTrace(t, "not json\n")}, &b)
	if err == nil {
		t.Fatal("non-JSON line not rejected")
	}
}
