// Command hooptop summarizes a JSONL telemetry trace written by
// `hoopsim -trace`, `hoopbench -trace`, `hoopd -trace`, or any
// telemetry.JSONLSink: per cell it prints the event mix (count and bytes
// per kind), the simulated span, and an ASCII commit-density timeline. It
// also serves as the trace validator — any line that neither decodes as
// an event nor as a cell marker fails the run — which is how CI checks
// that a trace parses.
//
// With -soak it instead renders a soak-run summary of a hoopd trace: per
// shard, the admitted/shed request counts, saturation rate, and service
// latency and queueing-delay percentiles, plus the fleet-wide roll-up
// from merged histograms.
//
// Usage:
//
//	hooptop trace.jsonl
//	hooptop -soak soak.jsonl
//	hoopbench -quick -trace /dev/stdout -sections fig10 | hooptop /dev/stdin
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hooptop: %v\n", err)
		os.Exit(1)
	}
}

// kindAgg accumulates one event kind within one cell.
type kindAgg struct {
	n     int64
	bytes int64
}

// cell is the per-trace-section aggregation. Traces from single-run tools
// (hoopsim, hooprecover) have no marker lines and collapse into one
// unlabeled cell.
type cell struct {
	label      string
	events     int64
	byKind     [telemetry.NumKinds + 1]kindAgg // indexed by Kind, 1..NumKinds
	tMin, tMax sim.Time
	hasTime    bool
	commits    []sim.Time
	// Soak-summary inputs: commit latencies (tx_commit aux, paired with
	// commits), queueing delays (shard_enqueue/shard_shed aux), and the
	// earliest request arrival, which separates load from preload.
	commitLat    []sim.Duration
	qdelay       sim.Histogram
	qdelayMax    sim.Duration
	firstArrival sim.Time
	hasArrival   bool
}

func (c *cell) add(e telemetry.Event) {
	c.events++
	c.byKind[e.Kind].n++
	c.byKind[e.Kind].bytes += e.Bytes
	if e.Time != 0 {
		if !c.hasTime || e.Time < c.tMin {
			c.tMin = e.Time
		}
		if !c.hasTime || e.Time > c.tMax {
			c.tMax = e.Time
		}
		c.hasTime = true
	}
	switch e.Kind {
	case telemetry.KindTxCommit:
		c.commits = append(c.commits, e.Time)
		c.commitLat = append(c.commitLat, sim.Duration(e.Aux))
	case telemetry.KindShardEnqueue, telemetry.KindShardShed:
		c.qdelay.Observe(sim.Duration(e.Aux))
		if sim.Duration(e.Aux) > c.qdelayMax {
			c.qdelayMax = sim.Duration(e.Aux)
		}
		if !c.hasArrival || e.Time < c.firstArrival {
			c.firstArrival = e.Time
			c.hasArrival = true
		}
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hooptop", flag.ContinueOnError)
	soak := fs.Bool("soak", false, "render a hoopd soak-run summary instead of the per-cell event mix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: hooptop [-soak] trace.jsonl")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	cells, total, err := parse(f)
	if err != nil {
		return err
	}
	if *soak {
		return renderSoak(out, path, cells)
	}
	fmt.Fprintf(out, "%s: %d events in %d cells\n", path, total, len(cells))
	for _, c := range cells {
		render(out, c)
	}
	return nil
}

// parse splits the trace at {"cell":...} marker lines and aggregates each
// section. Every other line must decode as an event.
func parse(r io.Reader) ([]*cell, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var cells []*cell
	var cur *cell
	var total int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte(`{"cell":`)) {
			var marker struct {
				Cell string `json:"cell"`
			}
			if err := json.Unmarshal(line, &marker); err != nil {
				return nil, 0, fmt.Errorf("line %d: bad cell marker: %v", lineNo, err)
			}
			cur = &cell{label: marker.Cell}
			cells = append(cells, cur)
			continue
		}
		e, err := telemetry.DecodeJSON(line)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil {
			cur = &cell{}
			cells = append(cells, cur)
		}
		cur.add(e)
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return cells, total, nil
}

func render(out io.Writer, c *cell) {
	label := c.label
	if label == "" {
		label = "(trace)"
	}
	span := sim.Duration(0)
	if c.hasTime {
		span = sim.Duration(c.tMax - c.tMin)
	}
	fmt.Fprintf(out, "\n%s: %d events over %v\n", label, c.events, span)
	for k := telemetry.Kind(1); int(k) <= telemetry.NumKinds; k++ {
		agg := c.byKind[k]
		if agg.n == 0 {
			continue
		}
		if agg.bytes != 0 {
			fmt.Fprintf(out, "  %-14s %10d %14d B\n", k, agg.n, agg.bytes)
		} else {
			fmt.Fprintf(out, "  %-14s %10d\n", k, agg.n)
		}
	}
	if tl := timeline(c, 60); tl != "" {
		fmt.Fprintf(out, "  commits/time  [%s]\n", tl)
	}
}

// soakShard is one shard cell reduced to soak metrics.
type soakShard struct {
	label    string
	admitted int64
	shed     int64
	span     sim.Duration // first request arrival → last event
	svc      sim.Histogram
	qdelay   sim.Histogram
	qmax     sim.Duration
}

// reduceSoak turns a shard cell into soak metrics: requests are the
// shard_enqueue/shard_shed events, and service-latency percentiles come
// from the commits at or after the first request arrival — preload
// commits are excluded.
func reduceSoak(c *cell) soakShard {
	s := soakShard{
		label:    c.label,
		admitted: c.byKind[telemetry.KindShardEnqueue].n,
		shed:     c.byKind[telemetry.KindShardShed].n,
		qdelay:   c.qdelay,
		qmax:     c.qdelayMax,
	}
	if c.hasArrival {
		s.span = c.tMax - c.firstArrival
		for i, t := range c.commits {
			if t >= c.firstArrival {
				s.svc.Observe(c.commitLat[i])
			}
		}
	}
	return s
}

// renderSoak prints the per-shard saturation/shed/latency table and the
// fleet-wide roll-up from merged histograms (hoopd soak traces).
func renderSoak(out io.Writer, path string, cells []*cell) error {
	var shards []soakShard
	var routed int64
	for _, c := range cells {
		if strings.HasPrefix(c.label, "shard-") {
			shards = append(shards, reduceSoak(c))
		} else {
			routed += c.byKind[telemetry.KindRingRoute].n
		}
	}
	if len(shards) == 0 {
		return fmt.Errorf("%s: no shard-* cells — not a hoopd soak trace", path)
	}
	fmt.Fprintf(out, "%s: soak summary, %d shards", path, len(shards))
	if routed > 0 {
		fmt.Fprintf(out, ", %d ring-routed requests", routed)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "\n%-10s %9s %7s %6s %10s %10s %10s %10s %10s %10s\n",
		"shard", "admitted", "shed", "shed%", "rate/s", "svc-p50", "svc-p99", "svc-p999", "qdly-p99", "qdly-max")
	var fleet soakShard
	var fleetSpan sim.Duration
	for _, s := range shards {
		rate := 0.0
		if s.span > 0 {
			rate = float64(s.admitted) / s.span.Seconds()
		}
		offered := s.admitted + s.shed
		shedPct := 0.0
		if offered > 0 {
			shedPct = 100 * float64(s.shed) / float64(offered)
		}
		fmt.Fprintf(out, "%-10s %9d %7d %5.1f%% %10.0f %10v %10v %10v %10v %10v\n",
			s.label, s.admitted, s.shed, shedPct, rate,
			s.svc.Quantile(0.50), s.svc.Quantile(0.99), s.svc.Quantile(0.999),
			s.qdelay.Quantile(0.99), s.qmax)
		fleet.admitted += s.admitted
		fleet.shed += s.shed
		fleet.svc.Merge(&s.svc)
		fleet.qdelay.Merge(&s.qdelay)
		if s.qmax > fleet.qmax {
			fleet.qmax = s.qmax
		}
		if s.span > fleetSpan {
			fleetSpan = s.span
		}
	}
	goodput := 0.0
	if fleetSpan > 0 {
		goodput = float64(fleet.admitted) / fleetSpan.Seconds()
	}
	offered := fleet.admitted + fleet.shed
	shedPct := 0.0
	if offered > 0 {
		shedPct = 100 * float64(fleet.shed) / float64(offered)
	}
	fmt.Fprintf(out, "\nfleet: %d admitted, %d shed (%.1f%%), goodput %.0f/s over %v\n",
		offered-fleet.shed, fleet.shed, shedPct, goodput, fleetSpan)
	fmt.Fprintf(out, "fleet: svc p50=%v p99=%v p999=%v; qdelay p99=%v max=%v\n",
		fleet.svc.Quantile(0.50), fleet.svc.Quantile(0.99), fleet.svc.Quantile(0.999),
		fleet.qdelay.Quantile(0.99), fleet.qmax)
	return nil
}

// timeline buckets the cell's commit timestamps over its span and renders
// commit density as one ASCII level character per bucket.
func timeline(c *cell, width int) string {
	if len(c.commits) == 0 || !c.hasTime || c.tMax == c.tMin {
		return ""
	}
	const levels = " .:-=+*#%@"
	buckets := make([]int, width)
	span := float64(c.tMax - c.tMin)
	for _, t := range c.commits {
		i := int(float64(t-c.tMin) / span * float64(width))
		if i >= width {
			i = width - 1
		}
		buckets[i]++
	}
	max := 0
	for _, n := range buckets {
		if n > max {
			max = n
		}
	}
	b := make([]byte, width)
	for i, n := range buckets {
		lvl := 0
		if n > 0 {
			lvl = 1 + n*(len(levels)-2)/max
			if lvl > len(levels)-1 {
				lvl = len(levels) - 1
			}
		}
		b[i] = levels[lvl]
	}
	return string(b)
}
