// Command hooptop summarizes a JSONL telemetry trace written by
// `hoopsim -trace`, `hoopbench -trace`, or any telemetry.JSONLSink: per
// cell it prints the event mix (count and bytes per kind), the simulated
// span, and an ASCII commit-density timeline. It also serves as the trace
// validator — any line that neither decodes as an event nor as a cell
// marker fails the run — which is how CI checks that a trace parses.
//
// Usage:
//
//	hooptop trace.jsonl
//	hoopbench -quick -trace /dev/stdout -sections fig10 | hooptop /dev/stdin
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hooptop: %v\n", err)
		os.Exit(1)
	}
}

// kindAgg accumulates one event kind within one cell.
type kindAgg struct {
	n     int64
	bytes int64
}

// cell is the per-trace-section aggregation. Traces from single-run tools
// (hoopsim, hooprecover) have no marker lines and collapse into one
// unlabeled cell.
type cell struct {
	label      string
	events     int64
	byKind     [telemetry.NumKinds]kindAgg
	tMin, tMax sim.Time
	hasTime    bool
	commits    []sim.Time
}

func (c *cell) add(e telemetry.Event) {
	c.events++
	c.byKind[e.Kind].n++
	c.byKind[e.Kind].bytes += e.Bytes
	if e.Time != 0 {
		if !c.hasTime || e.Time < c.tMin {
			c.tMin = e.Time
		}
		if !c.hasTime || e.Time > c.tMax {
			c.tMax = e.Time
		}
		c.hasTime = true
	}
	if e.Kind == telemetry.KindTxCommit {
		c.commits = append(c.commits, e.Time)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: hooptop trace.jsonl")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()

	cells, total, err := parse(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d events in %d cells\n", args[0], total, len(cells))
	for _, c := range cells {
		render(out, c)
	}
	return nil
}

// parse splits the trace at {"cell":...} marker lines and aggregates each
// section. Every other line must decode as an event.
func parse(r io.Reader) ([]*cell, int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var cells []*cell
	var cur *cell
	var total int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte(`{"cell":`)) {
			var marker struct {
				Cell string `json:"cell"`
			}
			if err := json.Unmarshal(line, &marker); err != nil {
				return nil, 0, fmt.Errorf("line %d: bad cell marker: %v", lineNo, err)
			}
			cur = &cell{label: marker.Cell}
			cells = append(cells, cur)
			continue
		}
		e, err := telemetry.DecodeJSON(line)
		if err != nil {
			return nil, 0, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if cur == nil {
			cur = &cell{}
			cells = append(cells, cur)
		}
		cur.add(e)
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return cells, total, nil
}

func render(out io.Writer, c *cell) {
	label := c.label
	if label == "" {
		label = "(trace)"
	}
	span := sim.Duration(0)
	if c.hasTime {
		span = sim.Duration(c.tMax - c.tMin)
	}
	fmt.Fprintf(out, "\n%s: %d events over %v\n", label, c.events, span)
	for k := telemetry.Kind(1); int(k) < telemetry.NumKinds; k++ {
		agg := c.byKind[k]
		if agg.n == 0 {
			continue
		}
		if agg.bytes != 0 {
			fmt.Fprintf(out, "  %-14s %10d %14d B\n", k, agg.n, agg.bytes)
		} else {
			fmt.Fprintf(out, "  %-14s %10d\n", k, agg.n)
		}
	}
	if tl := timeline(c, 60); tl != "" {
		fmt.Fprintf(out, "  commits/time  [%s]\n", tl)
	}
}

// timeline buckets the cell's commit timestamps over its span and renders
// commit density as one ASCII level character per bucket.
func timeline(c *cell, width int) string {
	if len(c.commits) == 0 || !c.hasTime || c.tMax == c.tMin {
		return ""
	}
	const levels = " .:-=+*#%@"
	buckets := make([]int, width)
	span := float64(c.tMax - c.tMin)
	for _, t := range c.commits {
		i := int(float64(t-c.tMin) / span * float64(width))
		if i >= width {
			i = width - 1
		}
		buckets[i]++
	}
	max := 0
	for _, n := range buckets {
		if n > max {
			max = n
		}
	}
	b := make([]byte, width)
	for i, n := range buckets {
		lvl := 0
		if n > 0 {
			lvl = 1 + n*(len(levels)-2)/max
			if lvl > len(levels)-1 {
				lvl = len(levels) - 1
			}
		}
		b[i] = levels[lvl]
	}
	return string(b)
}
