package main

import (
	"strings"
	"testing"
)

func TestRunSmallWorkload(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workload", "hashmap-64", "-txs", "200", "-threads", "2"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"scheme=HOOP", "results over 200 transactions", "throughput", "NVM bytes written"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunStatsDump(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scheme", "Ideal", "-txs", "50", "-threads", "1", "-stats"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "counters:") {
		t.Fatalf("missing counter dump:\n%s", out.String())
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-workload", "no-such-workload"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("expected unknown-workload error, got %v", err)
	}
	if !strings.Contains(err.Error(), "hashmap-64") {
		t.Fatalf("error should list available workloads, got %v", err)
	}
}
