// Command hoopsim runs one workload on one persistence scheme and prints
// the measured metrics plus the raw counter dump — the single-configuration
// probe for exploring the simulator.
//
// Usage:
//
//	hoopsim [-scheme HOOP] [-workload hashmap-64] [-txs 20000] [-threads 8] [-seed 1]
//	        [-trace out.jsonl] [-stats] [-cpuprofile out.pprof] [-memprofile out.pprof]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoop/internal/clihelp"
	"hoop/internal/engine"
	"hoop/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hoopsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoopsim", flag.ContinueOnError)
	common := clihelp.Common{Scheme: engine.SchemeHOOP, Seed: 1}
	common.Register(fs, clihelp.FlagScheme, clihelp.FlagSeed, clihelp.FlagTrace, clihelp.FlagProfile)
	wlName := fs.String("workload", "hashmap-64", "workload name from Table III (e.g. vector-64, ycsb-1k, tpcc)")
	txs := fs.Int("txs", 20000, "transactions to execute")
	threads := fs.Int("threads", 8, "workload threads")
	dumpStats := fs.Bool("stats", false, "dump every raw counter")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		return err
	}
	defer stopProfiles()

	wl, ok := clihelp.FindWorkload(*wlName)
	if !ok {
		names := ""
		for _, n := range clihelp.WorkloadNames() {
			names += "\n  " + n
		}
		return fmt.Errorf("unknown workload %q; available:%s", *wlName, names)
	}

	cfg := engine.DefaultConfig(common.Scheme)
	cfg.Threads = *threads
	sys, err := engine.New(cfg)
	if err != nil {
		return err
	}
	tf, err := common.OpenTrace()
	if err != nil {
		return err
	}
	tf.Attach(sys)
	fmt.Fprintf(out, "scheme=%s workload=%s threads=%d txs=%d\n", common.Scheme, wl.Name, *threads, *txs)
	fmt.Fprintf(out, "device: %v\n", sys.Device())

	runners := wl.Runners(sys, common.Seed)
	setup := sys.Snapshot()
	fmt.Fprintf(out, "setup: %d transactions\n", setup.Txs)
	sys.ResetMemoryQueues()

	before := sys.Snapshot()
	sys.Run(runners, *txs)
	win := sys.Snapshot().Delta(before)

	fmt.Fprintf(out, "\nresults over %d transactions:\n", win.Txs)
	fmt.Fprintf(out, "  simulated span     %v\n", sim.Duration(win.Span))
	fmt.Fprintf(out, "  throughput         %.3f M tx/s\n", float64(win.Txs)/sim.Duration(win.Span).Seconds()/1e6)
	fmt.Fprintf(out, "  avg tx latency     %v\n", win.AvgTxLatency())
	fmt.Fprintf(out, "  latency p50/p90/p99 %v / %v / %v (all txs incl. setup)\n",
		win.TxLatencyP50, win.TxLatencyP90, win.TxLatencyP99)
	written := win.Counter("nvm.bytes_written")
	fmt.Fprintf(out, "  NVM bytes written  %d (%.0f per tx)\n", written, float64(written)/float64(win.Txs))
	fmt.Fprintf(out, "  NVM energy         %.1f uJ\n", sys.Device().TotalEnergyPJ()/1e6)
	fmt.Fprintf(out, "  ops                %d loads, %d stores\n", win.Loads, win.Stores)
	if *dumpStats {
		fmt.Fprintf(out, "\ncounters:\n%s", sys.Stats().String())
	}
	return tf.Close()
}
