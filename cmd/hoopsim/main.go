// Command hoopsim runs one workload on one persistence scheme and prints
// the measured metrics plus the raw counter dump — the single-configuration
// probe for exploring the simulator.
//
// Usage:
//
//	hoopsim [-scheme HOOP] [-workload hashmap-64] [-txs 20000] [-threads 8] [-seed 1] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hoopsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoopsim", flag.ContinueOnError)
	scheme := fs.String("scheme", engine.SchemeHOOP, "persistence scheme (HOOP, Opt-Redo, Opt-Undo, OSP, LSM, LAD, Ideal)")
	wlName := fs.String("workload", "hashmap-64", "workload name from Table III (e.g. vector-64, ycsb-1k, tpcc)")
	txs := fs.Int("txs", 20000, "transactions to execute")
	threads := fs.Int("threads", 8, "workload threads")
	seed := fs.Uint64("seed", 1, "workload PRNG seed")
	dumpStats := fs.Bool("stats", false, "dump every raw counter")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl, ok := findWorkload(*wlName)
	if !ok {
		names := ""
		for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
			names += "\n  " + w.Name
		}
		return fmt.Errorf("unknown workload %q; available:%s", *wlName, names)
	}

	cfg := engine.DefaultConfig(*scheme)
	cfg.Threads = *threads
	sys, err := engine.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scheme=%s workload=%s threads=%d txs=%d\n", *scheme, wl.Name, *threads, *txs)
	fmt.Fprintf(out, "device: %v\n", sys.Device())

	runners := wl.Runners(sys, *seed)
	setupTx := sys.TxCount()
	fmt.Fprintf(out, "setup: %d transactions\n", setupTx)
	sys.ResetMemoryQueues()

	start := sys.MaxClock()
	startW := sys.Stats().Get("nvm.bytes_written")
	startLat := sys.TxLatencySum()
	sys.Run(runners, *txs)
	span := sys.MaxClock() - start

	txsDone := sys.TxCount() - setupTx
	fmt.Fprintf(out, "\nresults over %d transactions:\n", txsDone)
	fmt.Fprintf(out, "  simulated span     %v\n", span)
	fmt.Fprintf(out, "  throughput         %.3f M tx/s\n", float64(txsDone)/span.Seconds()/1e6)
	fmt.Fprintf(out, "  avg tx latency     %v\n", (sys.TxLatencySum()-startLat)/sim.Duration(spanDiv(txsDone)))
	h := sys.TxLatencyHistogram()
	fmt.Fprintf(out, "  latency p50/p90/p99 %v / %v / %v (all txs incl. setup)\n",
		h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
	fmt.Fprintf(out, "  NVM bytes written  %d (%.0f per tx)\n",
		sys.Stats().Get("nvm.bytes_written")-startW,
		float64(sys.Stats().Get("nvm.bytes_written")-startW)/float64(txsDone))
	fmt.Fprintf(out, "  NVM energy         %.1f uJ\n", sys.Device().TotalEnergyPJ()/1e6)
	loads, stores := sys.Ops()
	fmt.Fprintf(out, "  ops                %d loads, %d stores\n", loads, stores)
	if *dumpStats {
		fmt.Fprintf(out, "\ncounters:\n%s", sys.Stats().String())
	}
	return nil
}

func findWorkload(name string) (workload.Workload, bool) {
	for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
		if w.Name == name {
			return w, true
		}
	}
	return workload.Workload{}, false
}

func spanDiv(n int64) (d int64) {
	if n == 0 {
		return 1
	}
	return n
}
