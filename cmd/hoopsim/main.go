// Command hoopsim runs one workload on one persistence scheme and prints
// the measured metrics plus the raw counter dump — the single-configuration
// probe for exploring the simulator.
//
// Usage:
//
//	hoopsim [-scheme HOOP] [-workload hashmap-64] [-txs 20000] [-threads 8] [-seed 1] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	scheme := flag.String("scheme", engine.SchemeHOOP, "persistence scheme (HOOP, Opt-Redo, Opt-Undo, OSP, LSM, LAD, Ideal)")
	wlName := flag.String("workload", "hashmap-64", "workload name from Table III (e.g. vector-64, ycsb-1k, tpcc)")
	txs := flag.Int("txs", 20000, "transactions to execute")
	threads := flag.Int("threads", 8, "workload threads")
	seed := flag.Uint64("seed", 1, "workload PRNG seed")
	dumpStats := flag.Bool("stats", false, "dump every raw counter")
	flag.Parse()

	var wl workload.Workload
	found := false
	for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
		if w.Name == *wlName {
			wl = w
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown workload %q; available:\n", *wlName)
		for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
			fmt.Fprintf(os.Stderr, "  %s\n", w.Name)
		}
		os.Exit(2)
	}

	cfg := engine.DefaultConfig(*scheme)
	cfg.Threads = *threads
	sys, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hoopsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scheme=%s workload=%s threads=%d txs=%d\n", *scheme, wl.Name, *threads, *txs)
	fmt.Printf("device: %v\n", sys.Device())

	runners := wl.Runners(sys, *seed)
	setupTx := sys.TxCount()
	fmt.Printf("setup: %d transactions\n", setupTx)
	sys.ResetMemoryQueues()

	start := sys.MaxClock()
	startW := sys.Stats().Get("nvm.bytes_written")
	startLat := sys.TxLatencySum()
	sys.Run(runners, *txs)
	span := sys.MaxClock() - start

	txsDone := sys.TxCount() - setupTx
	fmt.Printf("\nresults over %d transactions:\n", txsDone)
	fmt.Printf("  simulated span     %v\n", span)
	fmt.Printf("  throughput         %.3f M tx/s\n", float64(txsDone)/span.Seconds()/1e6)
	fmt.Printf("  avg tx latency     %v\n", (sys.TxLatencySum()-startLat)/sim.Duration(spanDiv(txsDone)))
	h := sys.TxLatencyHistogram()
	fmt.Printf("  latency p50/p90/p99 %v / %v / %v (all txs incl. setup)\n",
		h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
	fmt.Printf("  NVM bytes written  %d (%.0f per tx)\n",
		sys.Stats().Get("nvm.bytes_written")-startW,
		float64(sys.Stats().Get("nvm.bytes_written")-startW)/float64(txsDone))
	fmt.Printf("  NVM energy         %.1f uJ\n", sys.Device().TotalEnergyPJ()/1e6)
	loads, stores := sys.Ops()
	fmt.Printf("  ops                %d loads, %d stores\n", loads, stores)
	if *dumpStats {
		fmt.Printf("\ncounters:\n%s", sys.Stats().String())
	}
}

func spanDiv(n int64) (d int64) {
	if n == 0 {
		return 1
	}
	return n
}
