// Command hoopbench regenerates the HOOP paper's evaluation: every table
// and figure of §IV, rendered as text. By default it runs the full-size
// experiments (a few minutes); -quick shrinks them to seconds.
//
// Usage:
//
//	hoopbench [-quick] [-seed N] [-workers N] [-trace out.jsonl]
//	          [-workloads ycsb-a,ycsb-e] [-suite ycsb]
//	          [-sections tables,fig7-9,tableIV,fig10,fig11,fig12,fig13,sweep-valsize,sweep-scan,contention,area]
//	          [-cachedir dir] [-cachemax bytes] [-cachestats]
//	          [-cpuprofile out.pprof] [-memprofile out.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hoop/internal/clihelp"
	"hoop/internal/harness"
	"hoop/internal/workload"
)

func main() {
	common := clihelp.Common{Seed: 1}
	common.Register(flag.CommandLine, clihelp.FlagSeed, clihelp.FlagWorkers, clihelp.FlagTrace,
		clihelp.FlagProfile, clihelp.FlagWorkloads)
	quick := flag.Bool("quick", false, "run reduced-size experiments (seconds instead of minutes)")
	charts := flag.Bool("charts", false, "also render each grid as ASCII bar charts")
	artifacts := flag.String("artifacts", "", "directory to write per-figure JSON artifacts into")
	cachedir := flag.String("cachedir", "", "directory memoizing matrix cells across runs (created if missing; reruns only execute cells whose inputs changed)")
	cachemax := flag.Int64("cachemax", 0, "cap -cachedir at this many bytes, evicting least-recently-used cells (0 = unlimited)")
	cachestats := flag.Bool("cachestats", false, "print an inventory of -cachedir (entry kinds, trace bytes, orphaned temps) and exit")
	direct := flag.Bool("directmatrix", false, "run every matrix cell by direct workload execution instead of record-once/replay-many")
	sections := flag.String("sections", strings.Join(harness.AllSections, ","),
		"comma-separated experiment sections to run (extras: "+strings.Join(harness.ExtraSections, ", ")+")")
	flag.Parse()
	if *cachestats {
		if *cachedir == "" {
			fmt.Fprintln(os.Stderr, "hoopbench: -cachestats needs -cachedir")
			os.Exit(2)
		}
		inv, err := harness.ReadCacheInventory(*cachedir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Cell cache inventory (%s):\n%s\n", *cachedir, inv)
		return
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hoopbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	suite, err := common.ResolveSuite(workload.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hoopbench: %v\n", err)
		os.Exit(2)
	}
	opts := harness.Options{Quick: *quick, Seed: common.Seed, Charts: *charts, ArtifactDir: *artifacts,
		Workers: common.Workers, CacheDir: *cachedir, CacheMax: *cachemax, DirectMatrix: *direct,
		Suite: suite}
	if common.Trace != "" {
		opts.Trace = &harness.TraceCollector{}
	}
	var secs []string
	for _, s := range strings.Split(*sections, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		known := false
		for _, k := range append(harness.AllSections, harness.ExtraSections...) {
			if s == k {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown section %q (known: %s)\n", s,
				strings.Join(append(harness.AllSections, harness.ExtraSections...), ", "))
			os.Exit(2)
		}
		secs = append(secs, s)
	}

	fmt.Printf("HOOP reproduction benchmark harness (quick=%v, seed=%d, workers=%d)\n",
		*quick, common.Seed, common.EffectiveWorkers())
	start := time.Now()
	if _, err := harness.RunSections(os.Stdout, opts, secs); err != nil {
		fmt.Fprintf(os.Stderr, "hoopbench: %v\n", err)
		os.Exit(1)
	}
	if opts.Trace != nil {
		f, err := os.Create(common.Trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: -trace: %v\n", err)
			os.Exit(1)
		}
		if _, err := opts.Trace.WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: -trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry trace: %d cells written to %s\n", opts.Trace.Cells(), common.Trace)
	}
	fmt.Printf("\ntotal wall-clock: %.1fs\n", time.Since(start).Seconds())
}
