// Command hoopbench regenerates the HOOP paper's evaluation: every table
// and figure of §IV, rendered as text. By default it runs the full-size
// experiments (a few minutes); -quick shrinks them to seconds.
//
// Usage:
//
//	hoopbench [-quick] [-seed N] [-parallel N] [-sections tables,fig7-9,tableIV,fig10,fig11,fig12,fig13,area]
//	          [-cpuprofile out.pprof] [-memprofile out.pprof]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hoop/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments (seconds instead of minutes)")
	seed := flag.Uint64("seed", 1, "experiment PRNG seed")
	charts := flag.Bool("charts", false, "also render each grid as ASCII bar charts")
	artifacts := flag.String("artifacts", "", "directory to write per-figure JSON artifacts into")
	parallel := flag.Int("parallel", 0, "simulation cells run concurrently (0 = GOMAXPROCS); results are identical for every value")
	sections := flag.String("sections", strings.Join(harness.AllSections, ","),
		"comma-separated experiment sections to run (extras: "+strings.Join(harness.ExtraSections, ", ")+")")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hoopbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hoopbench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hoopbench: -memprofile: %v\n", err)
			}
		}()
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Charts: *charts, ArtifactDir: *artifacts, Workers: *parallel}
	var secs []string
	for _, s := range strings.Split(*sections, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		known := false
		for _, k := range append(harness.AllSections, harness.ExtraSections...) {
			if s == k {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "unknown section %q (known: %s)\n", s,
				strings.Join(append(harness.AllSections, harness.ExtraSections...), ", "))
			os.Exit(2)
		}
		secs = append(secs, s)
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("HOOP reproduction benchmark harness (quick=%v, seed=%d, workers=%d)\n", *quick, *seed, workers)
	start := time.Now()
	if _, err := harness.RunSections(os.Stdout, opts, secs); err != nil {
		fmt.Fprintf(os.Stderr, "hoopbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal wall-clock: %.1fs\n", time.Since(start).Seconds())
}
