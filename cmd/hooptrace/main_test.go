package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRecordDumpReplayRoundtrip drives the full trace workflow through a
// temp file: record a small workload, dump it, replay it on a different
// scheme.
func TestRecordDumpReplayRoundtrip(t *testing.T) {
	trc := filepath.Join(t.TempDir(), "small.trc")

	var out strings.Builder
	if err := run([]string{"record", "-workload", "hashmap-64", "-txs", "100", "-o", trc}, &out); err != nil {
		t.Fatalf("record: %v", err)
	}
	if !strings.Contains(out.String(), "recorded") {
		t.Fatalf("record output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"dump", "-i", trc, "-n", "5"}, &out); err != nil {
		t.Fatalf("dump: %v", err)
	}
	if !strings.Contains(out.String(), "summary:") {
		t.Fatalf("dump output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"replay", "-i", trc, "-scheme", "Opt-Undo"}, &out); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out.String(), "replayed") || !strings.Contains(out.String(), "Opt-Undo") {
		t.Fatalf("replay output:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("expected usage error for no args")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil || !strings.Contains(err.Error(), "unknown subcommand") {
		t.Fatalf("expected unknown-subcommand error, got %v", err)
	}
	if err := run([]string{"dump", "-i", filepath.Join(t.TempDir(), "missing.trc")}, &out); err == nil {
		t.Fatal("expected error for missing trace file")
	}
}
