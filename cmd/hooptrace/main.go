// Command hooptrace records, inspects, and replays memory-operation
// traces — the Pin-trace workflow of the paper's platform, native to this
// simulator.
//
//	hooptrace record -workload tpcc -txs 5000 -o tpcc.trc
//	hooptrace dump   -i tpcc.trc [-n 50]
//	hooptrace replay -i tpcc.trc -scheme Opt-Undo
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/trace"
	"hoop/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "dump":
		dump(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hooptrace {record|dump|replay} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hooptrace: %v\n", err)
	os.Exit(1)
}

func findWorkload(name string) (workload.Workload, bool) {
	for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
		if w.Name == name {
			return w, true
		}
	}
	return workload.Workload{}, false
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wlName := fs.String("workload", "hashmap-64", "Table III workload to trace")
	txs := fs.Int("txs", 5000, "transactions to record (setup transactions are recorded too)")
	out := fs.String("o", "workload.trc", "output trace file")
	seed := fs.Uint64("seed", 1, "workload PRNG seed")
	fs.Parse(args)

	wl, ok := findWorkload(*wlName)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *wlName))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rec := trace.NewRecorder(f)

	sys, err := engine.New(engine.DefaultConfig(engine.SchemeNative))
	if err != nil {
		fatal(err)
	}
	sys.SetTracer(rec)
	runners := wl.Runners(sys, *seed)
	sys.Run(runners, *txs)
	if err := rec.Flush(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d ops (%d transactions incl. setup) to %s\n",
		rec.Count(), sys.TxCount(), *out)
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	in := fs.String("i", "workload.trc", "input trace file")
	n := fs.Int("n", 40, "ops to print (0 = all)")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	r := trace.NewReader(f)
	var total, loads, stores, txs int64
	for i := 0; ; i++ {
		op, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		total++
		switch op.Kind {
		case trace.OpLoad:
			loads++
		case trace.OpStore:
			stores++
		case trace.OpTxEnd:
			txs++
		}
		if *n == 0 || i < *n {
			fmt.Println(op)
		}
	}
	if *n != 0 && total > int64(*n) {
		fmt.Printf("... (%d more ops)\n", total-int64(*n))
	}
	fmt.Printf("summary: %d ops, %d txs, %d loads, %d stores\n", total, txs, loads, stores)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "workload.trc", "input trace file")
	scheme := fs.String("scheme", engine.SchemeHOOP, "persistence scheme to replay against")
	fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	sys, err := engine.New(engine.DefaultConfig(*scheme))
	if err != nil {
		fatal(err)
	}
	txs, err := trace.Replay(sys, f)
	if err != nil {
		fatal(err)
	}
	span := sys.MaxClock()
	fmt.Printf("replayed %d transactions on %s\n", txs, *scheme)
	fmt.Printf("  simulated span    %v\n", span)
	if txs > 0 && span > 0 {
		fmt.Printf("  throughput        %.3f M tx/s\n", float64(txs)/span.Seconds()/1e6)
		fmt.Printf("  avg tx latency    %v\n", sys.TxLatencySum()/sim.Duration(txs))
	}
	fmt.Printf("  NVM bytes written %d\n", sys.Stats().Get("nvm.bytes_written"))
}
