// Command hooptrace records, inspects, and replays memory-operation
// traces — the Pin-trace workflow of the paper's platform, native to this
// simulator.
//
//	hooptrace record -workload tpcc -txs 5000 -o tpcc.trc
//	hooptrace dump   -i tpcc.trc [-n 50]
//	hooptrace replay -i tpcc.trc -scheme Opt-Undo
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoop/internal/clihelp"
	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hooptrace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: hooptrace {record|dump|replay} [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:], out)
	case "dump":
		return dump(args[1:], out)
	case "replay":
		return replay(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (usage: hooptrace {record|dump|replay} [flags])", args[0])
	}
}

func record(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	common := clihelp.Common{Seed: 1}
	common.Register(fs, clihelp.FlagSeed)
	wlName := fs.String("workload", "hashmap-64", "Table III workload to trace")
	txs := fs.Int("txs", 5000, "transactions to record (setup transactions are recorded too)")
	outPath := fs.String("o", "workload.trc", "output trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	wl, ok := clihelp.FindWorkload(*wlName)
	if !ok {
		return fmt.Errorf("unknown workload %q", *wlName)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := trace.NewRecorder(f)

	sys, err := engine.New(engine.DefaultConfig(engine.SchemeNative))
	if err != nil {
		return err
	}
	sys.Subscribe(rec, trace.RecordMask)
	runners := wl.Runners(sys, common.Seed)
	sys.Run(runners, *txs)
	if err := rec.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d ops (%d transactions incl. setup) to %s\n",
		rec.Count(), sys.Snapshot().Txs, *outPath)
	return f.Close()
}

func dump(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dump", flag.ContinueOnError)
	in := fs.String("i", "workload.trc", "input trace file")
	n := fs.Int("n", 40, "ops to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var total, loads, stores, txs int64
	for i := 0; ; i++ {
		op, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		total++
		switch op.Kind {
		case trace.OpLoad:
			loads++
		case trace.OpStore:
			stores++
		case trace.OpTxEnd:
			txs++
		}
		if *n == 0 || i < *n {
			fmt.Fprintln(out, op)
		}
	}
	if *n != 0 && total > int64(*n) {
		fmt.Fprintf(out, "... (%d more ops)\n", total-int64(*n))
	}
	fmt.Fprintf(out, "summary: %d ops, %d txs, %d loads, %d stores\n", total, txs, loads, stores)
	return nil
}

func replay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	common := clihelp.Common{Scheme: engine.SchemeHOOP}
	common.Register(fs, clihelp.FlagScheme)
	in := fs.String("i", "workload.trc", "input trace file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scheme := &common.Scheme

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := engine.New(engine.DefaultConfig(*scheme))
	if err != nil {
		return err
	}
	txs, err := trace.Replay(sys, f)
	if err != nil {
		return err
	}
	span := sys.MaxClock()
	fmt.Fprintf(out, "replayed %d transactions on %s\n", txs, *scheme)
	fmt.Fprintf(out, "  simulated span    %v\n", span)
	if txs > 0 && span > 0 {
		fmt.Fprintf(out, "  throughput        %.3f M tx/s\n", float64(txs)/span.Seconds()/1e6)
		fmt.Fprintf(out, "  avg tx latency    %v\n", sys.Snapshot().TxLatencySum/sim.Duration(txs))
	}
	fmt.Fprintf(out, "  NVM bytes written %d\n", sys.Stats().Get("nvm.bytes_written"))
	return nil
}
