// Command hooprecover demonstrates HOOP's multi-threaded data recovery
// (§III-F / Figure 11): it fills the OOP region with committed but
// un-migrated transactions, crashes the system, recovers with a sweep of
// thread counts, and prints the modeled recovery time for each.
//
// Usage:
//
//	hooprecover [-mb 256] [-threads 1,2,4,8,16] [-bw 15] [-scheme HOOP]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hoop/internal/clihelp"
	"hoop/internal/engine"
	"hoop/internal/hoop"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hooprecover: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hooprecover", flag.ContinueOnError)
	common := clihelp.Common{Scheme: engine.SchemeHOOP}
	common.Register(fs, clihelp.FlagScheme, clihelp.FlagTrace)
	mb := fs.Int("mb", 256, "OOP region fill size in MiB")
	threadsFlag := fs.String("threads", "1,2,4,8,16", "recovery thread counts")
	bw := fs.Int("bw", 15, "NVM bandwidth in GB/s")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var threads []int
	for _, s := range strings.Split(*threadsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			return fmt.Errorf("bad thread count %q", s)
		}
		threads = append(threads, v)
	}

	cfg := engine.DefaultConfig(common.Scheme)
	cfg.NVM.Bandwidth = int64(*bw) << 30
	cfg.Hoop.CommitLogBytes = 64 << 20
	cfg.Hoop.GCPeriod = sim.Second // keep the fill un-migrated
	sys, err := engine.New(cfg)
	if err != nil {
		return err
	}
	hs, ok := sys.Scheme().(persist.RecoveryScanner)
	if !ok {
		return fmt.Errorf("scheme %s implements no persist.RecoveryScanner; the recovery demo needs an instrumented out-of-place recovery scan (try -scheme %s)",
			common.Scheme, engine.SchemeHOOP)
	}
	tf, err := common.OpenTrace()
	if err != nil {
		return err
	}
	tf.Attach(sys)

	const wordsPerTx = 64
	numTxs := (*mb << 20) / (8 * hoop.SliceSize)
	fmt.Fprintf(out, "filling %d MiB of OOP region (%d committed transactions)...\n", *mb, numTxs)
	if _, err := hs.SyntheticFill(numTxs, wordsPerTx, 64<<20, 42); err != nil {
		return err
	}

	fmt.Fprintln(out, "power failure! recovering...")
	sys.Crash()
	rep, err := hs.RecoverWithReport(threads[len(threads)-1])
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	fmt.Fprintf(out, "functional recovery done: %d transactions, %d slices scanned, %d words restored\n",
		rep.CommittedTxs, rep.SlicesScanned, rep.WordsRecovered)
	fmt.Fprintf(out, "\nmodeled recovery time at %d GB/s:\n", *bw)
	for _, t := range threads {
		d := hoop.ModelRecoveryTime(rep, t, int64(*bw)<<30)
		fmt.Fprintf(out, "  %2d threads: %8.1f ms\n", t, d.Milliseconds())
	}
	return tf.Close()
}
