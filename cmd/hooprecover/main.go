// Command hooprecover demonstrates HOOP's multi-threaded data recovery
// (§III-F / Figure 11): it fills the OOP region with committed but
// un-migrated transactions, crashes the system, recovers with a sweep of
// thread counts, and prints the modeled recovery time for each.
//
// Usage:
//
//	hooprecover [-mb 256] [-threads 1,2,4,8,16] [-bw 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hoop/internal/engine"
	"hoop/internal/hoop"
	"hoop/internal/sim"
)

func main() {
	mb := flag.Int("mb", 256, "OOP region fill size in MiB")
	threadsFlag := flag.String("threads", "1,2,4,8,16", "recovery thread counts")
	bw := flag.Int("bw", 15, "NVM bandwidth in GB/s")
	flag.Parse()

	var threads []int
	for _, s := range strings.Split(*threadsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad thread count %q\n", s)
			os.Exit(2)
		}
		threads = append(threads, v)
	}

	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.NVM.Bandwidth = int64(*bw) << 30
	cfg.Hoop.CommitLogBytes = 64 << 20
	cfg.Hoop.GCPeriod = sim.Second // keep the fill un-migrated
	sys, err := engine.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hooprecover: %v\n", err)
		os.Exit(1)
	}
	hs := sys.Scheme().(*hoop.Scheme)

	const wordsPerTx = 64
	numTxs := (*mb << 20) / (8 * hoop.SliceSize)
	fmt.Printf("filling %d MiB of OOP region (%d committed transactions)...\n", *mb, numTxs)
	if _, err := hs.SyntheticFill(numTxs, wordsPerTx, 64<<20, 42); err != nil {
		fmt.Fprintf(os.Stderr, "hooprecover: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("power failure! recovering...")
	sys.Crash()
	rep, err := hs.RecoverWithReport(threads[len(threads)-1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "hooprecover: recovery failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("functional recovery done: %d transactions, %d slices scanned, %d words restored\n",
		rep.CommittedTxs, rep.SlicesScanned, rep.WordsRecovered)
	fmt.Printf("\nmodeled recovery time at %d GB/s:\n", *bw)
	for _, t := range threads {
		d := hoop.ModelRecoveryTime(rep, t, int64(*bw)<<30)
		fmt.Printf("  %2d threads: %8.1f ms\n", t, d.Milliseconds())
	}
}
