package main

import (
	"strings"
	"testing"

	"hoop/internal/engine"
)

func TestRunRejectsSchemeWithoutRecoveryScanner(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scheme", engine.SchemeRedo, "-mb", "1"}, &out)
	if err == nil {
		t.Fatal("expected an error for a scheme without an instrumented recovery scan")
	}
	if !strings.Contains(err.Error(), "RecoveryScanner") {
		t.Fatalf("error should name the missing capability, got: %v", err)
	}
}

func TestRunRecoversSmallFill(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mb", "1", "-threads", "1,2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"functional recovery done", "modeled recovery time"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadThreads(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-threads", "0"}, &out); err == nil {
		t.Fatal("expected an error for a non-positive thread count")
	}
}
