// Command hoopcrash drives the crash-point fault-injection harness from the
// command line: it runs a deterministic transactional workload against one
// or all persistence schemes, crashes it at every journal point (exhaustive
// mode) or at one random point per seeded workload (random mode), and
// checks each recovered image against the prefix-consistency oracle.
//
// On a violation it prints the minimal failing (seed, crash point) pair and
// exits non-zero, so a red CI run reproduces locally with the printed
// flags.
//
// With -workloads or -suite it instead runs the workload-level smoke: each
// selected registry workload (YCSB's scans, read-modify-write aborts, bulk
// inserts included) runs on the full simulated machine, is crashed
// mid-stream, recovered, and verified against the committed-write oracle.
//
// Usage:
//
//	hoopcrash [-scheme all] [-mode exhaustive|random] [-seed 1] [-seeds 200]
//	          [-txs 8] [-words 4] [-pool 96] [-cores 2] [-abortevery 0]
//	          [-workloads ycsb-e,ycsb-f | -suite ycsb] [-smoketxs 400]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hoop/internal/clihelp"
	"hoop/internal/crashtest"
	"hoop/internal/engine"
	"hoop/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hoopcrash: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoopcrash", flag.ContinueOnError)
	common := clihelp.Common{Seed: 1}
	common.Register(fs, clihelp.FlagSeed, clihelp.FlagWorkloads)
	scheme := fs.String("scheme", "all", "scheme name, or \"all\"")
	smokeTxs := fs.Int("smoketxs", 400, "transactions per workload-smoke run (with -workloads/-suite)")
	mode := fs.String("mode", "exhaustive", "\"exhaustive\" (every crash point of one workload) or \"random\" (one crash point per seed)")
	seeds := fs.Int("seeds", 200, "number of seeds to try in random mode")
	txs := fs.Int("txs", 8, "transactions per workload")
	words := fs.Int("words", 4, "max word writes per transaction")
	pool := fs.Int("pool", 96, "word-address pool size")
	cores := fs.Int("cores", 2, "cores issuing transactions round-robin")
	abortEvery := fs.Int("abortevery", 0, "abort every k-th transaction (0 = none), exposing abort-path crash points")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schemes := crashtest.Schemes()
	if *scheme != "all" {
		found := false
		for _, s := range schemes {
			if s == *scheme {
				found = true
			}
		}
		if !found && *scheme != crashtest.BuggySchemeName && *scheme != crashtest.BuggyAbortLeakName {
			return fmt.Errorf("unknown scheme %q (known: %v)", *scheme, schemes)
		}
		schemes = []string{*scheme}
	}

	suite, err := common.ResolveSuite(workload.Options{})
	if err != nil {
		return err
	}
	if len(suite) > 0 {
		return runSmoke(out, schemes, suite, common.Seed, *smokeTxs)
	}

	w := crashtest.DefaultWorkload(common.Seed)
	w.Txs = *txs
	w.MaxWords = *words
	w.AddrWords = *pool
	w.Cores = *cores
	w.AbortEvery = *abortEvery

	failed := false
	for _, s := range schemes {
		switch *mode {
		case "exhaustive":
			points, v := crashtest.Enumerate(s, w)
			if v != nil {
				failed = true
				fmt.Fprintf(out, "%-16s FAIL  %v\n", s, v)
				fmt.Fprintf(out, "%-16s       repro: hoopcrash -scheme %s -mode exhaustive -seed %d -txs %d -words %d -pool %d -cores %d\n",
					"", s, v.Seed, *txs, *words, *pool, *cores)
			} else {
				fmt.Fprintf(out, "%-16s ok    %d crash points consistent (seed %d)\n", s, points, common.Seed)
			}
		case "random":
			if v := crashtest.RandomSchedules(s, w, common.Seed, *seeds); v != nil {
				failed = true
				fmt.Fprintf(out, "%-16s FAIL  %v\n", s, v)
				fmt.Fprintf(out, "%-16s       repro: hoopcrash -scheme %s -mode random -seed %d -seeds 1 -txs %d -words %d -pool %d -cores %d\n",
					"", s, v.Seed, *txs, *words, *pool, *cores)
			} else {
				fmt.Fprintf(out, "%-16s ok    %d random crash schedules consistent (seeds %d..%d)\n", s, *seeds, common.Seed, common.Seed+uint64(*seeds)-1)
			}
		default:
			return fmt.Errorf("unknown mode %q (want exhaustive or random)", *mode)
		}
	}
	if failed {
		return fmt.Errorf("crash-consistency violations found")
	}
	return nil
}

// runSmoke crashes and recovers every (scheme, workload) pair on the full
// engine. The Ideal scheme is skipped: it has no persistence guarantee.
func runSmoke(out io.Writer, schemes []string, suite []workload.Workload, seed uint64, txs int) error {
	failed := false
	for _, s := range schemes {
		if s == engine.SchemeNative {
			fmt.Fprintf(out, "%-16s skip  no persistence guarantee to verify\n", s)
			continue
		}
		for _, wl := range suite {
			if err := crashtest.Smoke(s, wl, seed, txs); err != nil {
				failed = true
				fmt.Fprintf(out, "%-16s %-12s FAIL  %v\n", s, wl.Name, err)
			} else {
				fmt.Fprintf(out, "%-16s %-12s ok    crash+recover consistent (%d txs, seed %d)\n",
					s, wl.Name, txs, seed)
			}
		}
	}
	if failed {
		return fmt.Errorf("crash-consistency violations found")
	}
	return nil
}
