package main

import (
	"strings"
	"testing"
)

func TestRunExhaustiveSingleScheme(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scheme", "Opt-Redo", "-txs", "4"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Opt-Redo") || !strings.Contains(out.String(), "ok") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func TestRunRandomAllSchemes(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "random", "-seeds", "3", "-txs", "4"}, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	for _, s := range []string{"HOOP", "Opt-Redo", "Opt-Undo", "OSP", "LSM", "LAD", "Ideal"} {
		if !strings.Contains(out.String(), s) {
			t.Fatalf("missing scheme %s in output:\n%s", s, out.String())
		}
	}
}

// TestRunBuggySchemeFails checks the CLI surfaces violations: driving the
// deliberately-broken scheme must exit with an error and print a repro line.
func TestRunBuggySchemeFails(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scheme", "Buggy-CommitFirst"}, &out)
	if err == nil {
		t.Fatalf("expected failure for the buggy scheme, got success:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "repro:") {
		t.Fatalf("violation output missing FAIL/repro:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scheme", "NoSuch"}, &out); err == nil {
		t.Fatal("expected error for unknown scheme")
	}
	if err := run([]string{"-mode", "sideways"}, &out); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
