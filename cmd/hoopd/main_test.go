package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/sim"
)

// tiny returns fast CLI arguments: 2 shards, 2ms simulated, small tables.
func tiny(extra ...string) []string {
	args := []string{"-shards", "2", "-duration", "2ms", "-rate", "100000",
		"-keys", "512", "-val", "16"}
	return append(args, extra...)
}

func TestSoakSharded(t *testing.T) {
	var b strings.Builder
	if err := run(tiny(), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{
		"hoopd soak:", "route=sharded", "policy=block",
		"shard", "fleet: offered", "goodput", "sojourn (merged",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

func TestSoakRingShed(t *testing.T) {
	var b strings.Builder
	err := run(tiny("-route", "ring", "-policy", "shed", "-sheddelay", "100us",
		"-mix", "mixed", "-arrivals", "bursty"), &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"route=ring", "policy=shed"} {
		if !strings.Contains(out, needle) {
			t.Errorf("output missing %q:\n%s", needle, out)
		}
	}
}

func TestSoakTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soak.jsonl")
	var b strings.Builder
	if err := run(tiny("-trace", path), &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `{"cell":"shard-000"}`) {
		t.Errorf("trace file missing shard cell marker (len %d)", len(data))
	}
	if !strings.Contains(string(data), `"k":"shard_enqueue"`) {
		t.Error("trace file missing shard_enqueue events")
	}
}

func TestSweepMode(t *testing.T) {
	var b strings.Builder
	if err := run(tiny("-sweep", "-sweepsteps", "2"), &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "saturation throughput:") {
		t.Errorf("sweep output missing summary:\n%s", b.String())
	}
}

// TestShardZeroInvariantAcrossShardCounts is the CLI-level determinism
// lock: in the default sharded route mode, shard 0's report line is
// identical between -shards 1 and -shards 3 runs of the same seed.
func TestShardZeroInvariantAcrossShardCounts(t *testing.T) {
	shardLine := func(shards string) string {
		var b strings.Builder
		args := []string{"-shards", shards, "-duration", "2ms", "-rate", "100000",
			"-keys", "512", "-val", "16", "-seed", "42"}
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(line, "0 ") {
				return line
			}
		}
		t.Fatalf("no shard 0 line in output:\n%s", b.String())
		return ""
	}
	one, three := shardLine("1"), shardLine("3")
	if one != three {
		t.Errorf("shard 0 differs across shard counts:\n-shards 1: %s\n-shards 3: %s", one, three)
	}
}

// TestOutputDeterminism: two identical invocations print identical reports.
func TestOutputDeterminism(t *testing.T) {
	strip := func(s string) string {
		// The wall-clock line is real time; drop it.
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "wall-clock:") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	gen := func() string {
		var b strings.Builder
		if err := run(tiny("-mix", "read-heavy"), &b); err != nil {
			t.Fatal(err)
		}
		return strip(b.String())
	}
	if a, b := gen(), gen(); a != b {
		t.Errorf("identical runs printed different reports:\n%s\n----\n%s", a, b)
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-route", "nope"},
		{"-policy", "nope"},
		{"-mix", "nope"},
		{"-arrivals", "nope"},
		{"-duration", "0s"},
		{"-duration", "bogus"},
		{"-shards", "0"},
		{"extra-arg"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v: run succeeded, want error", args)
		}
	}
}

func TestParseSimDuration(t *testing.T) {
	d, err := parseSimDuration("1ms")
	if err != nil {
		t.Fatal(err)
	}
	if d != sim.Millisecond {
		t.Fatalf("1ms parsed as %v", d)
	}
	if _, err := parseSimDuration("-5ms"); err == nil {
		t.Fatal("negative duration accepted")
	}
}
