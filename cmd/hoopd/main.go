// Command hoopd runs a sharded KV soak: N engine shards behind the
// service tier's consistent-hash ring, driven by open-loop load
// (Poisson or bursty arrivals, Zipfian hot keys, multi-tenant mixes),
// reporting per-shard and fleet-wide latency percentiles, goodput, and —
// with -sweep — the saturation throughput where goodput collapses.
//
// Routing modes:
//
//	-route sharded  (default) one independent derived stream per shard:
//	                shard j's run is byte-identical for every -shards
//	                value (weak scaling; -rate is per shard)
//	-route ring     one fleet-wide stream routed by the jump-hash ring:
//	                realistic cross-shard key skew (-rate is per shard;
//	                the fleet stream offers rate×shards)
//
// Usage:
//
//	hoopd [-scheme HOOP] [-seed 1] [-shards 4] [-rate 250000]
//	      [-duration 20ms] [-keys 16384] [-val 64] [-mix update-heavy]
//	      [-arrivals poisson|bursty] [-route sharded|ring]
//	      [-policy block|shed] [-sheddelay 50us] [-queue 1024]
//	      [-sweep] [-sweepfactor 2] [-sweepsteps 5]
//	      [-trace out.jsonl] [-cpuprofile p] [-memprofile p]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"hoop/internal/clihelp"
	"hoop/internal/engine"
	"hoop/internal/loadgen"
	"hoop/internal/service"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "hoopd: %v\n", err)
		os.Exit(1)
	}
}

// soakConfig is the fully resolved run description.
type soakConfig struct {
	common   clihelp.Common
	shards   int
	rate     float64
	duration sim.Duration
	keys     uint64
	val      int
	mix      []loadgen.Tenant
	mixName  string
	arrivals loadgen.ArrivalKind
	burstF   float64
	burstLen sim.Duration
	burstGap sim.Duration
	ringMode bool
	policy   service.Policy
	shedDly  sim.Duration
	queue    int
	theta    float64
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hoopd", flag.ContinueOnError)
	common := clihelp.Common{Scheme: engine.SchemeHOOP, Seed: 1}
	common.Register(fs, clihelp.FlagScheme, clihelp.FlagSeed, clihelp.FlagTrace, clihelp.FlagProfile,
		clihelp.FlagWorkloads)
	shards := fs.Int("shards", 4, "engine shards (one goroutine + engine + scheme instance each)")
	rate := fs.Float64("rate", 250000, "offered arrival rate per shard (requests/second)")
	duration := fs.String("duration", "20ms", "simulated soak length (Go duration, e.g. 50ms)")
	keys := fs.Uint64("keys", 16384, "keyspace size (per shard; global with -route ring)")
	val := fs.Int("val", 64, "value size in bytes (word multiple)")
	mix := fs.String("mix", "update-heavy", "tenant mix ("+loadgen.MixNames()+")")
	arrivals := fs.String("arrivals", "poisson", "arrival process (poisson, bursty)")
	burstF := fs.Float64("burstfactor", 8, "bursty: rate multiplier inside bursts")
	burstLen := fs.String("burstlen", "1ms", "bursty: mean burst length (simulated)")
	burstGap := fs.String("burstgap", "4ms", "bursty: mean gap between bursts (simulated)")
	route := fs.String("route", "sharded", "submission path (sharded: per-shard streams; ring: jump-hash routed)")
	policy := fs.String("policy", "block", "backpressure policy (block, shed)")
	shedDelay := fs.String("sheddelay", "50us", "shed: max simulated queueing delay before dropping")
	queue := fs.Int("queue", 1024, "per-shard admission-queue depth")
	theta := fs.Float64("theta", -1, "override every tenant's Zipfian theta (-1: keep mix defaults, 0: uniform)")
	sweep := fs.Bool("sweep", false, "saturation sweep: ramp -rate geometrically until goodput collapses")
	sweepFactor := fs.Float64("sweepfactor", 2, "sweep: rate multiplier per rung")
	sweepSteps := fs.Int("sweepsteps", 5, "sweep: maximum rungs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	cfg := soakConfig{
		common:  common,
		shards:  *shards,
		rate:    *rate,
		keys:    *keys,
		val:     *val,
		mixName: *mix,
		burstF:  *burstF,
		queue:   *queue,
		theta:   *theta,
	}
	var err error
	if cfg.duration, err = parseSimDuration(*duration); err != nil {
		return fmt.Errorf("-duration: %w", err)
	}
	if cfg.burstLen, err = parseSimDuration(*burstLen); err != nil {
		return fmt.Errorf("-burstlen: %w", err)
	}
	if cfg.burstGap, err = parseSimDuration(*burstGap); err != nil {
		return fmt.Errorf("-burstgap: %w", err)
	}
	if cfg.shedDly, err = parseSimDuration(*shedDelay); err != nil {
		return fmt.Errorf("-sheddelay: %w", err)
	}
	if cfg.arrivals, err = loadgen.ParseArrivalKind(*arrivals); err != nil {
		return err
	}
	switch *route {
	case "sharded":
	case "ring":
		cfg.ringMode = true
	default:
		return fmt.Errorf("-route: unknown mode %q (sharded, ring)", *route)
	}
	switch *policy {
	case "block":
		cfg.policy = service.PolicyBlock
	case "shed":
		cfg.policy = service.PolicyShed
	default:
		return fmt.Errorf("-policy: unknown policy %q (block, shed)", *policy)
	}
	tenants, ok := loadgen.Mixes[*mix]
	if !ok {
		return fmt.Errorf("-mix: unknown mix %q (known: %s)", *mix, loadgen.MixNames())
	}
	// -workloads/-suite override -mix: each selected registry workload
	// becomes one equally weighted tenant with its own op mix and skew.
	if wls, err := common.ResolveSuite(workload.Options{}); err != nil {
		return err
	} else if len(wls) > 0 {
		tenants = tenants[:0:0]
		for _, w := range wls {
			tenants = append(tenants, tenantFromWorkload(w))
		}
		if common.Workloads != "" {
			cfg.mixName = "workloads:" + common.Workloads
		} else {
			cfg.mixName = "suite:" + common.Suite
		}
		valSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "val" {
				valSet = true
			}
		})
		if !valSet {
			cfg.val = wls[0].Opts.ValBytes
		}
	}
	cfg.mix = applyTheta(tenants, *theta)
	if cfg.shards < 1 {
		return fmt.Errorf("-shards must be at least 1")
	}

	stopProfiles, err := common.StartProfiles()
	if err != nil {
		return err
	}
	defer stopProfiles()

	if *sweep {
		return runSweep(out, cfg, *sweepFactor, *sweepSteps)
	}
	start := time.Now()
	res, err := runSoak(cfg, common.Trace)
	if err != nil {
		return err
	}
	report(out, cfg, res)
	fmt.Fprintf(out, "\nwall-clock: %.1fs\n", time.Since(start).Seconds())
	return nil
}

// applyTheta clones the tenant mix, overriding every theta when override
// is non-negative.
func applyTheta(tenants []loadgen.Tenant, override float64) []loadgen.Tenant {
	out := make([]loadgen.Tenant, len(tenants))
	copy(out, tenants)
	if override >= 0 {
		for i := range out {
			out[i].Theta = override
		}
	}
	return out
}

// tenantFromWorkload maps a registry workload's resolved op mix onto the
// service tier's vocabulary: reads and scans become gets, updates and
// read-modify-writes become single-word updates, inserts become puts. The
// workload's key skew carries over (uniform mixes get theta 0).
func tenantFromWorkload(w workload.Workload) loadgen.Tenant {
	o := w.Opts
	theta := 0.0
	if o.Dist != "uniform" {
		theta = o.Theta
	}
	m := loadgen.OpMix{
		Get:    o.Mix.Read + o.Mix.Scan,
		Update: o.Mix.Update + o.Mix.RMW,
		Put:    o.Mix.Insert,
	}
	if m.Get+m.Put+m.Update == 0 {
		m.Update = 1 // synthetic structures mutate on every op
	}
	return loadgen.Tenant{Name: w.Name, Weight: 1, Mix: m, Theta: theta}
}

// parseSimDuration reads a Go duration string as simulated time.
func parseSimDuration(s string) (sim.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration must be positive, got %v", d)
	}
	return sim.Duration(d.Nanoseconds()) * sim.Nanosecond, nil
}

// soakResult is everything one soak run reports.
type soakResult struct {
	offered  []uint64 // per shard, from the generators
	executed []int64
	shed     []int64
	maxDelay []sim.Duration
	span     []sim.Duration // serving span (excludes setup/preload)
	sojourn  []sim.Histogram
	merged   sim.Histogram
	fleet    loadgen.SweepPoint
}

// runSoak executes one complete soak at cfg's rate and returns the
// measurements. When tracePath is non-empty the per-shard JSONL traces are
// written there.
func runSoak(cfg soakConfig, tracePath string) (*soakResult, error) {
	ec := engine.DefaultConfig(cfg.common.Scheme)
	ec.Threads = 1

	var tc *service.TraceCollector
	if tracePath != "" {
		tc = &service.TraceCollector{}
	}
	ring := service.NewRing(cfg.shards)
	handlers := make([]*service.KVHandler, cfg.shards)
	for i := range handlers {
		kc := service.KVConfig{Keys: cfg.keys, ValBytes: cfg.val}
		if cfg.ringMode {
			kc.Ring = &ring
		}
		h, err := service.NewKVHandler(kc)
		if err != nil {
			return nil, err
		}
		handlers[i] = h
	}
	svc, err := service.Open(service.Config{
		Shards:     cfg.shards,
		Seed:       cfg.common.Seed,
		Engine:     ec,
		Handler:    func(i int) engine.ShardHandler { return handlers[i] },
		QueueDepth: cfg.queue,
		Policy:     cfg.policy,
		ShedDelay:  cfg.shedDly,
		Trace:      tc,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	res := &soakResult{offered: make([]uint64, cfg.shards)}
	svc.Serve()
	if cfg.ringMode {
		// One fleet-wide stream over the global keyspace, routed by key.
		st, err := newStream(cfg, cfg.common.Seed, cfg.rate*float64(cfg.shards), 0)
		if err != nil {
			return nil, err
		}
		for {
			req, ok := st.Next()
			if !ok {
				break
			}
			shard := svc.Submit(req.Arrival, req.Kind, req.Key, req.Aux)
			res.offered[shard]++
		}
	} else {
		// One independent derived stream per shard: shard j's run is a
		// pure function of (seed, j) — identical at every shard count.
		streams := make([]*loadgen.Stream, cfg.shards)
		for j := range streams {
			st, err := newStream(cfg, engine.ShardSeed(cfg.common.Seed, j), cfg.rate, uint64(j)<<48)
			if err != nil {
				return nil, err
			}
			streams[j] = st
		}
		var wg sync.WaitGroup
		for j := 0; j < cfg.shards; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				for {
					req, ok := streams[j].Next()
					if !ok {
						return
					}
					svc.SubmitTo(j, req)
				}
			}(j)
		}
		wg.Wait()
		for j, st := range streams {
			res.offered[j] = st.Generated()
		}
	}
	svc.Quiesce()

	for j := 0; j < cfg.shards; j++ {
		sh := svc.Shard(j)
		res.executed = append(res.executed, sh.Executed())
		res.shed = append(res.shed, sh.Shed())
		res.maxDelay = append(res.maxDelay, sh.MaxQueueDelay())
		res.span = append(res.span, svc.StreamSpan(j))
		res.sojourn = append(res.sojourn, sh.Sojourn())
	}
	res.merged = svc.MergedSojourn()
	var offered int64
	for _, n := range res.offered {
		offered += int64(n)
	}
	res.fleet = loadgen.SweepPoint{
		Rate:     cfg.rate,
		Offered:  offered,
		Executed: svc.Executed(),
		Shed:     svc.Shed(),
		Span:     svc.MaxStreamSpan(),
		P99:      res.merged.Quantile(0.99),
	}

	if tc != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if _, err := tc.WriteTo(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("-trace: %w", err)
		}
	}
	return res, nil
}

// newStream builds one open-loop stream from the soak config.
func newStream(cfg soakConfig, seed uint64, rate float64, seqBase uint64) (*loadgen.Stream, error) {
	return loadgen.NewStream(loadgen.StreamConfig{
		Seed:        seed,
		Keys:        cfg.keys,
		Rate:        rate,
		Arrivals:    cfg.arrivals,
		BurstFactor: cfg.burstF,
		BurstLen:    cfg.burstLen,
		BurstGap:    cfg.burstGap,
		Tenants:     cfg.mix,
		Horizon:     cfg.duration,
		SeqBase:     seqBase,
	})
}

// report renders one soak run.
func report(out io.Writer, cfg soakConfig, res *soakResult) {
	mode := "sharded"
	if cfg.ringMode {
		mode = "ring"
	}
	fmt.Fprintf(out, "hoopd soak: scheme=%s seed=%d shards=%d rate=%.0f/s/shard duration=%v\n",
		cfg.common.Scheme, cfg.common.Seed, cfg.shards, cfg.rate, cfg.duration)
	fmt.Fprintf(out, "            route=%s arrivals=%v mix=%s keys=%d val=%dB policy=%v queue=%d\n\n",
		mode, cfg.arrivals, cfg.mixName, cfg.keys, cfg.val, cfg.policy, cfg.queue)
	fmt.Fprintf(out, "%-6s %9s %9s %7s %10s %10s %10s %10s %11s\n",
		"shard", "offered", "executed", "shed", "p50", "p99", "p999", "maxqdelay", "span")
	for j := 0; j < cfg.shards; j++ {
		h := res.sojourn[j]
		fmt.Fprintf(out, "%-6d %9d %9d %7d %10v %10v %10v %10v %11v\n",
			j, res.offered[j], res.executed[j], res.shed[j],
			h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999),
			res.maxDelay[j], res.span[j])
	}
	p := res.fleet
	fmt.Fprintf(out, "\nfleet: offered %d (%.0f/s), goodput %.0f/s, shed %d (%.1f%%)\n",
		p.Offered, float64(p.Offered)/p.Span.Seconds(), p.Goodput(), p.Shed, 100*p.ShedFrac())
	fmt.Fprintf(out, "sojourn (merged, arrival→completion): p50=%v p99=%v p999=%v max=%v\n",
		res.merged.Quantile(0.50), res.merged.Quantile(0.99), res.merged.Quantile(0.999), res.merged.Max())
}

// runSweep ramps offered load until goodput collapses and reports the
// saturation throughput.
func runSweep(out io.Writer, cfg soakConfig, factor float64, steps int) error {
	fmt.Fprintf(out, "hoopd saturation sweep: scheme=%s shards=%d start=%.0f/s/shard x%.2g, %d rungs max\n\n",
		cfg.common.Scheme, cfg.shards, cfg.rate, factor, steps)
	fmt.Fprintf(out, "%12s %10s %10s %10s %8s %10s\n",
		"rate/shard", "offered/s", "goodput/s", "p99", "shed%", "span")
	var runErr error
	res := loadgen.SaturationSweep(cfg.rate, factor, steps, func(rate float64) loadgen.SweepPoint {
		if runErr != nil {
			return loadgen.SweepPoint{}
		}
		c := cfg
		c.rate = rate
		r, err := runSoak(c, "")
		if err != nil {
			runErr = err
			return loadgen.SweepPoint{}
		}
		p := r.fleet
		fmt.Fprintf(out, "%12.0f %10.0f %10.0f %10v %7.1f%% %10v\n",
			rate, float64(p.Offered)/p.Span.Seconds(), p.Goodput(), p.P99, 100*p.ShedFrac(), p.Span)
		return p
	})
	if runErr != nil {
		return runErr
	}
	s := res.Saturation
	fmt.Fprintf(out, "\nsaturation throughput: %.0f req/s fleet goodput (offered %.0f/s/shard, p99=%v, shed %.1f%%)\n",
		s.Goodput(), s.Rate, s.P99, 100*s.ShedFrac())
	return nil
}
