// Command simbench measures the simulation-core primitives that bound how
// fast the evaluation harness can replay memory traffic — store word/line
// access (with and without a crash-test journal observer attached), cache
// hierarchy probes, stats counting, and the engine's per-transaction
// operation cost — plus the wall-clock of the quick-mode Figure 7a matrix,
// and writes the results as a machine-readable BENCH_simcore.json so the
// performance trajectory of the simulator itself is tracked alongside the
// paper's figures.
//
// Usage:
//
//	simbench [-o BENCH_simcore.json] [-baseline old.json] [-skip-figure]
//	         [-failregress 0.05]
//
// With -baseline, each primitive also reports its speedup over the
// baseline file's ns/op (speedup > 1 means this tree is faster). With
// -failregress F the process exits non-zero when any primitive is more
// than the fraction F slower than the baseline — the CI hot-path gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"hoop/internal/cache"
	"hoop/internal/cc"
	"hoop/internal/clihelp"
	"hoop/internal/engine"
	"hoop/internal/harness"
	"hoop/internal/mem"
	"hoop/internal/nstore"
	"hoop/internal/persist"
	"hoop/internal/pmem"
	"hoop/internal/sim"
	"hoop/internal/trace"
	"hoop/internal/workload"
)

// PrimitiveResult is one measured primitive.
type PrimitiveResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// SpeedupVsBaseline is baseline ns/op divided by this ns/op (>1 is
	// faster than baseline); omitted when no baseline was supplied.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// File is the BENCH_simcore.json schema.
type File struct {
	Schema     string                     `json:"schema"`
	GoVersion  string                     `json:"go_version"`
	GOMAXPROCS int                        `json:"gomaxprocs"`
	Primitives map[string]PrimitiveResult `json:"primitives"`
	// Figure7aQuickWallSeconds is the wall-clock of the quick-mode
	// two-workload Figure 7a matrix on one worker (the end-to-end number
	// the primitive costs roll up into). Negative when skipped.
	Figure7aQuickWallSeconds float64 `json:"figure7a_quick_wall_seconds"`
	// BaselineFile names the file speedups were computed against, if any.
	BaselineFile string `json:"baseline_file,omitempty"`
}

// benchmarks maps primitive names to their measurement loops. Each mirrors
// the testing.B benchmark of the same shape in the internal packages; the
// canonical definitions of what each primitive means live here so the JSON
// stays comparable across commits.
func benchmarks() map[string]func(b *testing.B) {
	const region = 16 * mem.PageSize
	return map[string]func(b *testing.B){
		// Store word write with a journal-style observer attached: the cost
		// of every durable write in a crash-consistency run.
		"store_write_word_journal": func(b *testing.B) {
			s := mem.NewStore()
			sink := make([]mem.PAddr, 0, 1024)
			s.SetWriteObserver(func(a mem.PAddr, unit [mem.WordSize]byte) {
				if len(sink) == cap(sink) {
					sink = sink[:0]
				}
				sink = append(sink, a)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteWord(mem.PAddr(uint64(i)*mem.WordSize%region), uint64(i))
			}
		},
		"store_write_word": func(b *testing.B) {
			s := mem.NewStore()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteWord(mem.PAddr(uint64(i)*mem.WordSize%region), uint64(i))
			}
		},
		"store_read_word": func(b *testing.B) {
			s := mem.NewStore()
			for a := mem.PAddr(0); a < region; a += mem.WordSize {
				s.WriteWord(a, uint64(a))
			}
			b.ResetTimer()
			var acc uint64
			for i := 0; i < b.N; i++ {
				acc += s.ReadWord(mem.PAddr(uint64(i) * mem.WordSize % region))
			}
			sinkU64 = acc
		},
		"store_write_line": func(b *testing.B) {
			s := mem.NewStore()
			var line [mem.LineSize]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.WriteLine(mem.PAddr(uint64(i)*mem.LineSize%region), line)
			}
		},
		"store_zero_range": func(b *testing.B) {
			s := mem.NewStore()
			for a := mem.PAddr(0); a < 4*mem.PageSize; a += mem.WordSize {
				s.WriteWord(a, ^uint64(0))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ZeroRange(0, 4*mem.PageSize)
			}
		},
		// The hot-path stats increment as the simulator components issue it:
		// an interned Counter handle obtained once at construction time.
		"stats_increment": func(b *testing.B) {
			s := sim.NewStats()
			c := s.Counter(sim.StatNVMWrites)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
		},
		"stats_add": func(b *testing.B) {
			s := sim.NewStats()
			c := s.Counter(sim.StatNVMBytesWritten)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Add(64)
			}
		},
		"cache_lookup_l1_hit": func(b *testing.B) {
			h := cache.New(cache.DefaultConfig(1), sim.NewStats())
			h.Fill(0, 0, false, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Lookup(0, 0, false, false)
			}
		},
		"engine_tx_write4": func(b *testing.B) {
			sys := engineForBench(b)
			env := sys.NewEnv(0)
			const span = 1 << 20
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := mem.PAddr(uint64(i) * 4 * mem.WordSize % span)
				env.TxBegin()
				for w := 0; w < 4; w++ {
					env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i))
				}
				env.TxEnd()
			}
		},
		// The bare transaction bracket: TxBegin + TxEnd with no stores. This
		// is pure scheme-state setup/teardown — any per-transaction
		// allocation or map rebuild shows up here undiluted.
		"tx_begin_commit_empty": func(b *testing.B) {
			sys := engineForBench(b)
			env := sys.NewEnv(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.TxBegin()
				env.TxEnd()
			}
		},
		// One committed 4-word read-modify-write transaction through the
		// concurrency-control layer's step scheduler: the op-granularity
		// yield protocol plus OCC's buffer/validate/install bookkeeping.
		// The alloc gate holds the budget at zero steady-state allocations
		// (validation reuses its scratch buffer).
		"cc_occ_tx4": func(b *testing.B) {
			r, srcs := ccRunnerForBench(b, cc.PolicyOCC)
			r.Run(srcs, 200) // steady state
			b.ResetTimer()
			r.Run(srcs, b.N)
		},
		// Same transaction under wound-wait 2PL: per-line lock acquire and
		// release against the never-deleted lock table. Steady-state budget
		// is likewise zero allocations.
		"cc_2pl_tx4": func(b *testing.B) {
			r, srcs := ccRunnerForBench(b, cc.Policy2PL)
			r.Run(srcs, 200)
			b.ResetTimer()
			r.Run(srcs, b.N)
		},
		// One committed 4-word transaction followed by a forced GC epoch:
		// the scan/coalesce/migrate/recycle pass plus whatever per-epoch
		// state the scheme rebuilds.
		"gc_epoch": func(b *testing.B) {
			sys := engineForBench(b)
			env := sys.NewEnv(0)
			q, ok := sys.Scheme().(persist.Quiescer)
			if !ok {
				b.Fatal("simbench: HOOP scheme lost its Quiescer capability")
			}
			const span = 1 << 20
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := mem.PAddr(uint64(i) * 4 * mem.WordSize % span)
				env.TxBegin()
				for w := 0; w < 4; w++ {
					env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i))
				}
				env.TxEnd()
				q.Quiesce(env.Now())
			}
		},
		// One 8-item range scan through the ordered N-store's B+-tree
		// leaves — the per-op cost of the YCSB-E scan path (leaf walk plus
		// the NoteScan telemetry/statistics accounting). The scan reuses
		// the caller's record buffer, so steady state allocates nothing.
		"scan_line8": func(b *testing.B) {
			sys := engineForBench(b)
			env := sys.NewEnv(0)
			region := pmem.Partition(sys.Layout().Home, 1)[0]
			env.TxBegin()
			table := nstore.Open(env, region).CreateOrderedTable(64)
			env.TxEnd()
			buf := make([]byte, 64)
			const keys = 1024
			for k := 0; k < keys; k++ {
				env.TxBegin()
				table.Insert(uint64(k), buf)
				env.TxEnd()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.TxBegin()
				table.Scan(uint64(i%(keys-8)), 8, buf)
				env.TxEnd()
			}
		},
		// Decode one 256-transaction capture from the compact (v3) wire
		// format back into ops — the cache-dir boundary cost the replay
		// pipeline pays when it restores a column from disk instead of
		// keeping it in memory. One iteration = one full capture decode
		// (1536 ops), so ns/op tracks whole-capture latency.
		"replay_decode": func(b *testing.B) {
			sys := engineForBench(b)
			var sink trace.OpSink
			sys.Subscribe(&sink, trace.RecordMask)
			env := sys.NewEnv(0)
			const span = 1 << 20
			const captured = 256
			for i := 0; i < captured; i++ {
				base := mem.PAddr(uint64(i) * 4 * mem.WordSize % span)
				env.TxBegin()
				for w := 0; w < 4; w++ {
					env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i)*0x9E3779B97F4A7C15)
				}
				env.TxEnd()
			}
			if err := sink.Err(); err != nil {
				b.Fatal(err)
			}
			wire, err := trace.WriteOps(sink.Ops)
			if err != nil {
				b.Fatal(err)
			}
			want := len(sink.Ops)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops, err := trace.NewReader(bytes.NewReader(wire)).ReadAll()
				if err != nil || len(ops) != want {
					b.Fatalf("decode: %v (%d of %d ops)", err, len(ops), want)
				}
			}
		},
		// One recorded 4-word transaction reissued through trace.ApplyOp —
		// the per-transaction cost of the record-once/replay-many matrix
		// pipeline (capture outside the timer, replay inside). Steady-state
		// budget is zero allocations: decoded ops and the load scratch
		// buffer are reused across iterations.
		"replay_txs": func(b *testing.B) {
			var buf bytes.Buffer
			rec := trace.NewRecorder(&buf)
			src := engineForBench(b)
			src.Subscribe(rec, trace.RecordMask)
			env := src.NewEnv(0)
			const span = 1 << 20
			const captured = 256
			for i := 0; i < captured; i++ {
				base := mem.PAddr(uint64(i) * 4 * mem.WordSize % span)
				env.TxBegin()
				for w := 0; w < 4; w++ {
					env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i))
				}
				env.TxEnd()
			}
			if err := rec.Flush(); err != nil {
				b.Fatal(err)
			}
			ops, err := trace.NewReader(&buf).ReadAll()
			if err != nil {
				b.Fatal(err)
			}
			txs, err := trace.SplitTxs(ops, 1)
			if err != nil || len(txs[0]) != captured {
				b.Fatalf("split: %v (%d txs)", err, len(txs))
			}
			sys := engineForBench(b)
			denv := sys.NewEnv(0)
			var scratch []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, op := range txs[0][i%captured] {
					scratch, err = trace.ApplyOp(denv, op, scratch)
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		},
	}
}

var sinkU64 uint64

// ccRunnerForBench builds a single-thread abortable Ideal system with a
// fixed 4-word read-modify-write source whose Next allocates nothing, so
// the measurement sees only the cc layer's own cost.
func ccRunnerForBench(b *testing.B, policy cc.Policy) (*cc.Runner, []cc.TxSource) {
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 3
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Abortable = true
	sys, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r, err := cc.New(sys, cc.Config{Policy: policy})
	if err != nil {
		b.Fatal(err)
	}
	body := func(tx cc.Tx) {
		for w := 0; w < 4; w++ {
			a := mem.PAddr(w * mem.WordSize)
			v := tx.ReadWord(a)
			tx.WriteWord(a, v+1)
		}
	}
	return r, []cc.TxSource{cc.TxSourceFunc(func() cc.TxFunc { return body })}
}

func engineForBench(b *testing.B) *engine.System {
	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 3
	cfg.NVM.Capacity = 4 << 30
	cfg.OOPBytes = 128 << 20
	cfg.Hoop.CommitLogBytes = 8 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output JSON path (- for stdout)")
	baselinePath := flag.String("baseline", "", "previous BENCH_simcore.json to compute speedups against")
	skipFigure := flag.Bool("skip-figure", false, "skip the quick Figure-7a matrix wall-time measurement")
	failRegress := flag.Float64("failregress", 0,
		"fail when any primitive regresses more than this fraction vs -baseline (0 disables; e.g. 0.05 = 5%)")
	var common clihelp.Common
	common.Register(flag.CommandLine, clihelp.FlagProfile)
	flag.Parse()
	if *failRegress > 0 && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "simbench: -failregress needs -baseline")
		os.Exit(1)
	}
	stopProfiles, err := common.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	defer stopProfiles()

	f := &File{
		Schema:                   "hoop-simcore-bench/v1",
		GoVersion:                runtime.Version(),
		GOMAXPROCS:               runtime.GOMAXPROCS(0),
		Primitives:               map[string]PrimitiveResult{},
		Figure7aQuickWallSeconds: -1,
	}

	var baseline *File
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		baseline = &File{}
		if err := json.Unmarshal(data, baseline); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: bad baseline: %v\n", err)
			os.Exit(1)
		}
		f.BaselineFile = *baselinePath
	}

	for name, fn := range benchmarks() {
		fn := fn
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		pr := PrimitiveResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if baseline != nil {
			if base, ok := baseline.Primitives[name]; ok && pr.NsPerOp > 0 {
				pr.SpeedupVsBaseline = base.NsPerOp / pr.NsPerOp
			}
		}
		f.Primitives[name] = pr
		fmt.Fprintf(os.Stderr, "%-28s %10.1f ns/op  %4d allocs/op", name, pr.NsPerOp, pr.AllocsPerOp)
		if pr.SpeedupVsBaseline > 0 {
			fmt.Fprintf(os.Stderr, "  %5.2fx vs baseline", pr.SpeedupVsBaseline)
		}
		fmt.Fprintln(os.Stderr)
	}

	if !*skipFigure {
		start := time.Now()
		_, err := harness.RunMatrixOn(harness.Options{Quick: true, Seed: 1, Workers: 1},
			[]workload.Workload{workload.HashMapWL(64), workload.RBTreeWL(64)},
			engine.AllSchemes)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: figure7a matrix: %v\n", err)
			os.Exit(1)
		}
		f.Figure7aQuickWallSeconds = time.Since(start).Seconds()
		fmt.Fprintf(os.Stderr, "%-28s %10.1f s wall", "figure7a_quick(2 workloads)", f.Figure7aQuickWallSeconds)
		if baseline != nil && baseline.Figure7aQuickWallSeconds > 0 {
			fmt.Fprintf(os.Stderr, "  %5.2fx vs baseline", baseline.Figure7aQuickWallSeconds/f.Figure7aQuickWallSeconds)
		}
		fmt.Fprintln(os.Stderr)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	var w io.Writer = os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	if _, err := w.Write(data); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}

	if *failRegress > 0 {
		// Wall-clock benchmarks on shared CI runners are noisy; a regression
		// must clear the threshold to fail the gate, and the threshold is the
		// caller's to tune (CI uses 5%).
		limit := 1 / (1 + *failRegress)
		failed := false
		for name, pr := range f.Primitives {
			if pr.SpeedupVsBaseline > 0 && pr.SpeedupVsBaseline < limit {
				fmt.Fprintf(os.Stderr, "simbench: REGRESSION %s: %.1f%% slower than baseline (%.2fx)\n",
					name, (1/pr.SpeedupVsBaseline-1)*100, pr.SpeedupVsBaseline)
				failed = true
			}
			// Allocation counts are exact integers, not wall-clock noise: any
			// increase over the baseline is a real new allocation on the hot
			// path and fails the gate outright.
			if base, ok := baseline.Primitives[name]; ok && pr.AllocsPerOp > base.AllocsPerOp {
				fmt.Fprintf(os.Stderr, "simbench: REGRESSION %s: %d allocs/op, baseline has %d\n",
					name, pr.AllocsPerOp, base.AllocsPerOp)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
