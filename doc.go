// Package hoopnvm is a from-scratch Go reproduction of "HOOP: Efficient
// Hardware-Assisted Out-of-Place Update for Non-Volatile Memory" (Cai,
// Coats, Huang — ISCA 2020), including the full simulation platform the
// paper evaluates on.
//
// The library lives under internal/:
//
//   - internal/hoop       — the paper's contribution: the out-of-place
//     update mechanism in the memory controller (OOP data buffer, memory
//     slices, mapping table, eviction buffer, GC with data coalescing,
//     parallel recovery)
//   - internal/baseline/* — the five comparison points (Opt-Redo, Opt-Undo,
//     OSP, LSM, LAD) plus the no-persistence Ideal system
//   - internal/engine     — the simulated machine (cores, caches, memory
//     controller, NVM) that replaces McSimA+
//   - internal/workload   — Table III's benchmarks (five data structures,
//     YCSB, TPC-C new-order)
//   - internal/harness    — regenerates every table and figure of §IV
//
// Entry points: cmd/hoopbench (full evaluation), cmd/hoopsim (single
// configuration), cmd/hooprecover (recovery demo), and the runnable
// programs under examples/. The benchmarks in bench_test.go regenerate
// each paper artifact via `go test -bench`.
package hoopnvm
