// Benchmarks regenerating each table and figure of the paper's evaluation
// (run with `go test -bench=. -benchtime=1x`), plus per-scheme transaction
// microbenchmarks. The figure benchmarks run the reduced (Quick) experiment
// sizes; `cmd/hoopbench` runs the full-size versions.
package hoopnvm

import (
	"io"
	"runtime"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/harness"
	"hoop/internal/workload"
)

// benchOpts pins the cell pool to one worker so the per-figure benchmarks
// keep measuring the serial harness cost; BenchmarkFigure7aParallel runs
// the pool at GOMAXPROCS for the speedup comparison.
func benchOpts() harness.Options { return harness.Options{Quick: true, Seed: 1, Workers: 1} }

// BenchmarkTableI renders the qualitative technique comparison.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTableI(io.Discard)
	}
}

// BenchmarkFigure7a regenerates the throughput comparison (Figures 7a, 7b,
// 8 and 9 share the same runs; this bench produces the matrix once per
// iteration and reports HOOP's throughput gain over Opt-Redo).
func BenchmarkFigure7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.RunMatrixOn(benchOpts(),
			[]workload.Workload{workload.HashMapWL(64), workload.RBTreeWL(64)},
			engine.AllSchemes)
		if err != nil {
			b.Fatal(err)
		}
		h := harness.ComputeHeadline(m)
		b.ReportMetric(h.ThroughputGainVs[engine.SchemeRedo]*100, "%gain-vs-redo")
	}
}

// BenchmarkFigure7aParallel regenerates the same matrix as
// BenchmarkFigure7a with the cell pool at GOMAXPROCS workers; comparing
// the two shows the multi-core speedup of the harness (the measured
// numbers are bit-identical).
func BenchmarkFigure7aParallel(b *testing.B) {
	opts := benchOpts()
	opts.Workers = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		m, err := harness.RunMatrixOn(opts,
			[]workload.Workload{workload.HashMapWL(64), workload.RBTreeWL(64)},
			engine.AllSchemes)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(m.Stats.Speedup(), "pool-speedup")
	}
}

// BenchmarkFigure7b regenerates the critical-path latency comparison.
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.RunMatrixOn(benchOpts(),
			[]workload.Workload{workload.QueueWL(64)}, engine.AllSchemes)
		if err != nil {
			b.Fatal(err)
		}
		g := harness.Figure7b(m)
		b.ReportMetric(g.Cell("queue-64", engine.SchemeHOOP), "hoop-latency-vs-ideal")
	}
}

// BenchmarkFigure8 regenerates the write-traffic comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.RunMatrixOn(benchOpts(),
			[]workload.Workload{workload.Vector(64)}, engine.AllSchemes)
		if err != nil {
			b.Fatal(err)
		}
		g := harness.Figure8(m)
		b.ReportMetric(g.Cell("vector-64", engine.SchemeRedo)/g.Cell("vector-64", engine.SchemeHOOP), "redo-vs-hoop-traffic")
	}
}

// BenchmarkFigure9 regenerates the energy comparison.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := harness.RunMatrixOn(benchOpts(),
			[]workload.Workload{workload.BTreeWL(64)}, engine.AllSchemes)
		if err != nil {
			b.Fatal(err)
		}
		g := harness.Figure9(m)
		b.ReportMetric(g.Cell("btree-64", engine.SchemeHOOP), "hoop-energy-vs-ideal")
	}
}

// BenchmarkTableIV regenerates the GC data-reduction table.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := harness.TableIV(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Cells[len(g.Rows)-1][1], "%reduction-hashmap-max")
	}
}

// BenchmarkFigure10 regenerates the GC-period sweep.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := harness.Figure10(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.ColMean(g.Cols[3]), "tput-at-8ms-vs-2ms")
	}
}

// BenchmarkFigure11 regenerates the recovery-scaling grid.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _, err := harness.Figure11(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Cell("8", "25GB/s"), "ms-8thr-25GBps")
	}
}

// BenchmarkFigure12 regenerates the NVM-latency sensitivity sweep.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := harness.Figure12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Cells[0][0]/g.Cells[0][len(g.Cols)-1], "tput-50ns-over-250ns")
	}
}

// BenchmarkFigure13 regenerates the mapping-table size sweep.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := harness.Figure13(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.Cells[0][len(g.Cols)-1], "tput-largest-vs-smallest")
	}
}

// Per-scheme transaction microbenchmarks: hashmap-64 transactions through
// the full simulated machine. b.N counts committed transactions.
func benchScheme(b *testing.B, scheme string) {
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 4, 4, 4
	cfg.Ctrl.Agents = 6
	cfg.NVM.Capacity = 8 << 30
	cfg.OOPBytes = 256 << 20
	cfg.Hoop.CommitLogBytes = 8 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	runners := workload.MustBuild("hashmap", workload.Options{ValBytes: 64, Keys: 2048}).Runners(sys, 1)
	sys.ResetMemoryQueues()
	b.ResetTimer()
	sys.Run(runners, b.N)
	b.StopTimer()
	span := sys.MaxClock()
	if span > 0 {
		b.ReportMetric(float64(sys.Snapshot().Txs)/span.Seconds()/1e6, "sim-Mtx/s")
	}
}

func BenchmarkTxHOOP(b *testing.B)    { benchScheme(b, engine.SchemeHOOP) }
func BenchmarkTxOptRedo(b *testing.B) { benchScheme(b, engine.SchemeRedo) }
func BenchmarkTxOptUndo(b *testing.B) { benchScheme(b, engine.SchemeUndo) }
func BenchmarkTxOSP(b *testing.B)     { benchScheme(b, engine.SchemeOSP) }
func BenchmarkTxLSM(b *testing.B)     { benchScheme(b, engine.SchemeLSM) }
func BenchmarkTxLAD(b *testing.B)     { benchScheme(b, engine.SchemeLAD) }
func BenchmarkTxIdeal(b *testing.B)   { benchScheme(b, engine.SchemeNative) }
