// MultiMC: the paper's §III-I future-work extension in action — HOOP
// spanning multiple memory controllers with a two-phase commit. The demo
// runs the same workload on 1, 2 and 4 controllers, shows the 2PC cost on
// the commit path, and proves the prepared-but-undecided crash window
// rolls back cleanly.
//
//	go run ./examples/multimc [-txs 6000]
package main

import (
	"flag"
	"fmt"
	"log"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	txs := flag.Int("txs", 6000, "transactions per configuration")
	flag.Parse()

	fmt.Println("HOOP with multiple memory controllers (§III-I two-phase commit):")
	fmt.Printf("%-14s %14s %14s %12s\n", "controllers", "tput (Mtx/s)", "avg latency", "p99 latency")
	for _, n := range []int{1, 2, 4} {
		cfg := engine.DefaultConfig(engine.SchemeHOOP)
		cfg.Hoop.Controllers = n
		cfg.TrackOracle = true
		sys, err := engine.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		runners := workload.HashMapWL(64).Runners(sys, 5)
		sys.ResetMemoryQueues()
		before := sys.Snapshot()
		sys.Run(runners, *txs)
		win := sys.Snapshot().Delta(before)
		fmt.Printf("%-14d %14.2f %14v %12v\n", n,
			float64(win.Txs)/sim.Duration(win.Span).Seconds()/1e6,
			win.AvgTxLatency(),
			win.TxLatencyP99)

		// Crash and verify the two-phase commit's recovery consensus.
		sys.Crash()
		if _, err := sys.Recover(4); err != nil {
			log.Fatal(err)
		}
		if mm := sys.VerifyRecovered(3); len(mm) != 0 {
			log.Fatalf("%d-controller recovery diverged: %+v", n, mm)
		}
	}
	fmt.Println("\nevery configuration recovered its committed data exactly (verified")
	fmt.Println("against an oracle); transactions spanning controllers pay the")
	fmt.Println("prepare/commit rounds, which is the single-controller paper design's")
	fmt.Println("rationale.")
}
