// TPCC: run the paper's most write-intensive real-world workload — TPC-C
// new-order transactions (§IV-A) — under HOOP, with a crash injected
// mid-run and verified recovery, then print HOOP's internal statistics
// (slices packed, GC coalescing, mapping-table behaviour).
//
//	go run ./examples/tpcc [-txs 8000]
package main

import (
	"flag"
	"fmt"
	"log"

	"hoop/internal/engine"
	"hoop/internal/hoop"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	txs := flag.Int("txs", 8000, "new-order transactions to run")
	flag.Parse()

	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.TrackOracle = true
	sys, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	runners := workload.TPCC().Runners(sys, 7)
	setup := sys.Snapshot()
	sys.ResetMemoryQueues()

	fmt.Printf("running %d TPC-C new-order transactions on HOOP (8 warehouses/threads)...\n", *txs)
	sys.Run(runners, *txs)
	snap := sys.Snapshot()
	n := snap.Txs - setup.Txs
	span := sys.MaxClock()
	hs := sys.Scheme().(*hoop.Scheme)
	hs.ForceGC(sys.MaxClock())

	fmt.Printf("\n  committed:        %d new-order transactions\n", n)
	fmt.Printf("  throughput:       %.2f M tx/s\n", float64(n)/span.Seconds()/1e6)
	fmt.Printf("  avg latency:      %v\n", snap.AvgTxLatency())
	st := sys.Stats()
	fmt.Printf("  memory slices:    %d packed (%.2f per tx)\n",
		st.Get(sim.StatSliceFlushes), float64(st.Get(sim.StatSliceFlushes))/float64(snap.Txs))
	fmt.Printf("  GC runs:          %d (%d on demand)\n", st.Get(sim.StatGCRuns), st.Get(sim.StatGCOnDemand))
	fmt.Printf("  GC coalescing:    %.1f%% of modified bytes never re-written home\n", hs.DataReduction()*100)
	fmt.Printf("  mapping table:    %d live entries, %d hits / %d misses\n",
		hs.MappingTableLen(), st.Get(sim.StatMapHits), st.Get(sim.StatMapMisses))

	fmt.Println("\ninjecting power failure and recovering with 8 threads...")
	sys.Crash()
	d, err := sys.Recover(8)
	if err != nil {
		log.Fatal(err)
	}
	if mm := sys.VerifyRecovered(3); len(mm) != 0 {
		log.Fatalf("recovery diverged from committed data: %+v", mm)
	}
	fmt.Printf("recovered in %v (modeled); all committed new-order data verified intact.\n", d)
}
