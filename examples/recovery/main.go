// Recovery: the paper's §III-F/Figure 11 story as a demo — fill the OOP
// region with committed transactions, pull the plug, and watch recovery
// scale with threads and NVM bandwidth.
//
//	go run ./examples/recovery [-mb 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"hoop/internal/engine"
	"hoop/internal/hoop"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

func main() {
	mb := flag.Int("mb", 128, "MiB of committed-but-unmigrated OOP data to recover")
	flag.Parse()

	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Hoop.CommitLogBytes = 64 << 20
	cfg.Hoop.GCPeriod = sim.Second
	sys, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	hs, ok := sys.Scheme().(persist.RecoveryScanner)
	if !ok {
		log.Fatalf("scheme %s implements no persist.RecoveryScanner", cfg.Scheme)
	}

	numTxs := (*mb << 20) / (8 * hoop.SliceSize)
	fmt.Printf("committing %d transactions (%d MiB of memory slices, none migrated yet)...\n", numTxs, *mb)
	if _, err := hs.SyntheticFill(numTxs, 64, 64<<20, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pending commits awaiting GC: %d\n\n", hs.PendingCommits())

	fmt.Println("*** power failure ***")
	sys.Crash()
	rep, err := hs.RecoverWithReport(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery replayed %d transactions (%d slices, %d distinct words — %.1f%% coalesced away)\n\n",
		rep.CommittedTxs, rep.SlicesScanned, rep.WordsRecovered,
		100*(1-float64(rep.WordsRecovered*8)/float64(rep.SlicesScanned*64)))

	fmt.Println("modeled recovery time across the Figure 11 grid:")
	fmt.Printf("%8s", "threads")
	bws := []int{10, 15, 20, 25, 30}
	for _, bw := range bws {
		fmt.Printf("%10s", fmt.Sprintf("%dGB/s", bw))
	}
	fmt.Println()
	for _, t := range []int{1, 2, 4, 8, 16} {
		fmt.Printf("%8d", t)
		for _, bw := range bws {
			d := hoop.ModelRecoveryTime(rep, t, int64(bw)<<30)
			fmt.Printf("%9.1fms", d.Milliseconds())
		}
		fmt.Println()
	}
	fmt.Println("\nrecovery scales with threads until the NVM bandwidth saturates (§IV-G).")
}
