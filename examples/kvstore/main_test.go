package main

import (
	"strings"
	"testing"

	"hoop/internal/engine"
)

// TestKVStoreSmoke runs the example tiny: every registered scheme's fleet
// must open, serve the burst through the ring, and print a row — the
// integration smoke test for the internal/service API.
func TestKVStoreSmoke(t *testing.T) {
	var b strings.Builder
	args := []string{"-shards", "2", "-keys", "512", "-duration", "1ms", "-rate", "50000"}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, scheme := range engine.AllSchemes {
		if !strings.Contains(out, scheme) {
			t.Errorf("output missing scheme %s:\n%s", scheme, out)
		}
	}
	if !strings.Contains(out, "goodput/s") {
		t.Errorf("output missing header:\n%s", out)
	}
}

func TestKVStoreBadFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-duration", "bogus"}, &b); err == nil {
		t.Fatal("bad duration accepted")
	}
}
