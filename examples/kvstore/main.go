// KVStore: run a YCSB-style key-value workload (Zipfian keys, 80% updates)
// on an N-store-like storage engine, comparing HOOP against the paper's
// five baselines on the same simulated machine — a miniature of Figures
// 7–9.
//
//	go run ./examples/kvstore [-txs 4000] [-val 512]
package main

import (
	"flag"
	"fmt"
	"log"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

func main() {
	txs := flag.Int("txs", 4000, "transactions per scheme")
	val := flag.Int("val", 512, "value size in bytes (512 or 1024 in the paper)")
	flag.Parse()

	fmt.Printf("YCSB (%dB values, 80%% updates, Zipfian) x %d txs on each scheme:\n\n", *val, *txs)
	fmt.Printf("%-10s %12s %14s %14s %12s\n", "scheme", "tput (Ktx/s)", "avg latency", "NVM B/tx", "energy/tx")

	type row struct {
		name string
		tput float64
		lat  sim.Duration
		bpt  float64
		ept  float64
	}
	var rows []row
	for _, scheme := range engine.AllSchemes {
		sys, err := engine.New(engine.DefaultConfig(scheme))
		if err != nil {
			log.Fatal(err)
		}
		runners := workload.YCSB(*val).Runners(sys, 99)
		sys.ResetMemoryQueues()
		before := sys.Snapshot()
		sys.Run(runners, *txs)
		win := sys.Snapshot().Delta(before)
		rows = append(rows, row{
			name: scheme,
			tput: float64(win.Txs) / sim.Duration(win.Span).Seconds() / 1e3,
			lat:  win.AvgTxLatency(),
			bpt:  float64(win.Counter(sim.StatNVMBytesWritten)) / float64(win.Txs),
			ept:  win.TotalEnergyPJ() / float64(win.Txs) / 1e3, // nJ
		})
	}
	for _, r := range rows {
		fmt.Printf("%-10s %12.0f %14v %14.0f %9.1f nJ\n", r.name, r.tput, r.lat, r.bpt, r.ept)
	}
	fmt.Println("\n(Ideal provides no crash consistency; every other scheme guarantees")
	fmt.Println(" that committed transactions survive power failure.)")
}
