// KVStore: run a YCSB-style key-value load (Zipfian keys, update-heavy)
// against the sharded service tier — N engine shards behind the jump-hash
// ring, one persist-scheme instance per shard — comparing HOOP against the
// paper's baselines on identical fleets. A miniature of `hoopd`, and the
// integration smoke test for the internal/service API.
//
//	go run ./examples/kvstore [-shards 4] [-keys 8192] [-duration 5ms]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hoop/internal/engine"
	"hoop/internal/loadgen"
	"hoop/internal/service"
	"hoop/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kvstore: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kvstore", flag.ContinueOnError)
	shards := fs.Int("shards", 4, "engine shards per fleet")
	keys := fs.Uint64("keys", 8192, "global keyspace size")
	val := fs.Int("val", 64, "value size in bytes (word multiple)")
	durStr := fs.String("duration", "5ms", "simulated load-burst length")
	rate := fs.Float64("rate", 200000, "offered rate per shard (requests/second)")
	seed := fs.Uint64("seed", 1, "run seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := time.ParseDuration(*durStr)
	if err != nil {
		return fmt.Errorf("-duration: %w", err)
	}
	horizon := sim.Duration(d.Nanoseconds()) * sim.Nanosecond

	fmt.Fprintf(out, "update-heavy Zipfian burst over %d keys, %d shards, %v on each scheme:\n\n",
		*keys, *shards, horizon)
	fmt.Fprintf(out, "%-10s %12s %10s %10s %12s\n",
		"scheme", "goodput/s", "p50", "p99", "NVM B/op")

	for _, scheme := range engine.AllSchemes {
		if err := runFleet(out, scheme, *shards, *keys, *val, *rate, horizon, *seed); err != nil {
			return fmt.Errorf("%s: %w", scheme, err)
		}
	}
	fmt.Fprintln(out, "\n(Ideal provides no crash consistency; every other scheme guarantees")
	fmt.Fprintln(out, " that committed transactions survive power failure.)")
	return nil
}

// runFleet soaks one scheme's fleet and prints its row.
func runFleet(out io.Writer, scheme string, shards int, keys uint64, val int,
	rate float64, horizon sim.Duration, seed uint64) error {
	ec := engine.DefaultConfig(scheme)
	ec.Threads = 1
	ring := service.NewRing(shards)
	svc, err := service.Open(service.Config{
		Shards: shards,
		Seed:   seed,
		Engine: ec,
		Handler: func(int) engine.ShardHandler {
			h, err := service.NewKVHandler(service.KVConfig{Keys: keys, ValBytes: val, Ring: &ring})
			if err != nil {
				panic(err)
			}
			return h
		},
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	svc.Serve()
	svc.Quiesce() // barrier: preload done, measure only the burst

	nvmWritten := func() int64 {
		var total int64
		for i := 0; i < shards; i++ {
			total += svc.Shard(i).System().Snapshot().Counter(sim.StatNVMBytesWritten)
		}
		return total
	}
	before := nvmWritten()

	st, err := loadgen.NewStream(loadgen.StreamConfig{
		Seed:    seed,
		Keys:    keys,
		Rate:    rate * float64(shards),
		Tenants: []loadgen.Tenant{loadgen.TenantUpdateHeavy},
		Horizon: horizon,
	})
	if err != nil {
		return err
	}
	for {
		req, ok := st.Next()
		if !ok {
			break
		}
		svc.Submit(req.Arrival, req.Kind, req.Key, req.Aux)
	}
	svc.Quiesce()

	sojourn := svc.MergedSojourn()
	executed := svc.Executed()
	span := svc.MaxStreamSpan()
	goodput := 0.0
	if span > 0 {
		goodput = float64(executed) / span.Seconds()
	}
	bytesPerOp := 0.0
	if executed > 0 {
		bytesPerOp = float64(nvmWritten()-before) / float64(executed)
	}
	fmt.Fprintf(out, "%-10s %12.0f %10v %10v %12.0f\n",
		scheme, goodput, sojourn.Quantile(0.50), sojourn.Quantile(0.99), bytesPerOp)
	return nil
}
