// Quickstart: build a simulated NVM system protected by HOOP, run
// failure-atomic transactions against a persistent hashmap, crash the
// machine mid-run, and recover — showing that exactly the committed data
// survives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hoop/internal/engine"
	"hoop/internal/pmem"
	"hoop/internal/structures"
)

func main() {
	// A small machine: 4 cores, 4 GB NVM with a 128 MB OOP region.
	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 4, 1, 4
	cfg.Ctrl.Agents = cfg.Cores + 2
	cfg.NVM.Capacity = 4 << 30
	cfg.OOPBytes = 128 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Every thread gets an environment: the load/store interface into the
	// simulated memory hierarchy.
	env := sys.NewEnv(0)
	arena := pmem.NewArena(env, pmem.Partition(sys.Layout().Home, 1)[0])

	// Create a persistent hashmap inside a transaction.
	env.TxBegin()
	arena.Init()
	users := structures.NewHashMap(env, arena, 64, 64)
	env.TxEnd()

	record := func(name string) []byte {
		b := make([]byte, 64)
		copy(b, name)
		return b
	}

	// Committed transactions.
	env.TxBegin()
	users.Put(1, record("alice"))
	users.Put(2, record("bob"))
	env.TxEnd()

	env.TxBegin()
	users.Put(2, record("bob v2"))
	env.TxEnd()

	// A transaction that never commits: the crash will erase it.
	env.TxBegin()
	users.Put(1, record("ALICE CORRUPTED"))
	users.Put(3, record("carol (uncommitted)"))
	fmt.Println("power failure strikes mid-transaction...")
	sys.Crash()

	d, err := sys.Recover(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v (modeled, 4 threads)\n\n", d)

	// Inspect the recovered state: committed data intact, uncommitted gone.
	// (The hashmap handle reads through the same environment; after
	// recovery the logical view holds exactly the committed image.)
	buf := make([]byte, 64)
	for _, key := range []uint64{1, 2, 3} {
		if users.Get(key, buf) {
			fmt.Printf("user %d: %q\n", key, trim(buf))
		} else {
			fmt.Printf("user %d: <not present>\n", key)
		}
	}
	fmt.Printf("\ntransactions committed: %d, simulated time: %v\n", sys.Snapshot().Txs, sys.MaxClock())
}

func trim(b []byte) string {
	n := 0
	for n < len(b) && b[n] != 0 {
		n++
	}
	return string(b[:n])
}
