package service

import (
	"bytes"
	"fmt"
	"io"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
)

// TraceCollector gathers one JSONL telemetry trace per shard plus the
// router's ring_route stream and writes them as a single hooptop-parseable
// stream — the same pattern as harness.TraceCollector. Each shard's sink
// is private to its serving goroutine (no locking); WriteTo concatenates
// the buffers in shard order behind {"cell":"shard-NNN"} markers, so the
// combined output is byte-identical however the shard goroutines were
// scheduled. Call WriteTo only after Quiesce or Close.
type TraceCollector struct {
	// ShardMask selects the kinds each shard's sink subscribes to; zero
	// means MaskTrace plus the shard admission kinds (enqueue/shed).
	ShardMask telemetry.Mask
	// RouterMask selects the router-hub kinds; zero means ring_route. Note
	// ring_route fires once per Submit — high volume on big soaks.
	RouterMask telemetry.Mask

	router cellTrace
	shards []*cellTrace
}

type cellTrace struct {
	label string
	buf   bytes.Buffer
	sink  *telemetry.JSONLSink
}

func (ct *cellTrace) init(label string) {
	ct.label = label
	ct.sink = telemetry.NewJSONLSink(&ct.buf)
}

// attachRouter subscribes the router cell to the service's routing hub.
func (tc *TraceCollector) attachRouter(hub *telemetry.Hub) {
	tc.router.init("router")
	mask := tc.RouterMask
	if mask == 0 {
		mask = telemetry.MaskOf(telemetry.KindRingRoute)
	}
	hub.Subscribe(tc.router.sink, mask)
}

// attachShard wires shard i's engine to a fresh trace buffer. Must run
// before Serve.
func (tc *TraceCollector) attachShard(i int, sys *engine.System) {
	ct := &cellTrace{}
	ct.init(fmt.Sprintf("shard-%03d", i))
	mask := tc.ShardMask
	if mask == 0 {
		mask = telemetry.MaskTrace |
			telemetry.MaskOf(telemetry.KindShardEnqueue, telemetry.KindShardShed)
	}
	sys.Subscribe(ct.sink, mask)
	tc.shards = append(tc.shards, ct)
}

// ShardTrace returns the flushed trace bytes of shard i — what WriteTo
// would emit for that cell, without the marker line. The determinism tests
// compare these byte-for-byte across shard counts.
func (tc *TraceCollector) ShardTrace(i int) ([]byte, error) {
	ct := tc.shards[i]
	if err := ct.sink.Flush(); err != nil {
		return nil, fmt.Errorf("service: trace for %s: %w", ct.label, err)
	}
	return ct.buf.Bytes(), nil
}

// WriteTo implements io.WriterTo: the router cell first (when it saw any
// events), then every shard cell in index order.
func (tc *TraceCollector) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(ct *cellTrace) error {
		if err := ct.sink.Flush(); err != nil {
			return fmt.Errorf("service: trace for %s: %w", ct.label, err)
		}
		m, err := fmt.Fprintf(w, "{\"cell\":%q}\n", ct.label)
		n += int64(m)
		if err != nil {
			return err
		}
		k, err := ct.buf.WriteTo(w)
		n += k
		return err
	}
	if tc.router.sink != nil {
		if err := tc.router.sink.Flush(); err != nil {
			return n, fmt.Errorf("service: trace for %s: %w", tc.router.label, err)
		}
		if tc.router.buf.Len() > 0 {
			if err := write(&tc.router); err != nil {
				return n, err
			}
		}
	}
	for _, ct := range tc.shards {
		if err := write(ct); err != nil {
			return n, err
		}
	}
	return n, nil
}
