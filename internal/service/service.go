package service

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Policy selects what a full or late shard does with new requests.
type Policy int

const (
	// PolicyBlock applies backpressure in real time only: a full mailbox
	// blocks the producer, and every admitted request eventually executes.
	// Simulated arrival times ride in the requests, so the open-loop
	// schedule is unaffected.
	PolicyBlock Policy = iota
	// PolicyShed drops any request whose simulated queueing delay exceeds
	// Config.ShedDelay, accounting it like a tx_abort (offered but never
	// committed). The decision depends only on simulated time, so shedding
	// is deterministic.
	PolicyShed
)

// String names the policy for CLI output.
func (p Policy) String() string {
	if p == PolicyShed {
		return "shed"
	}
	return "block"
}

// Config describes a service fleet.
type Config struct {
	// Shards is the ring size: one engine.Shard per entry.
	Shards int
	// Seed is the run-wide seed; shard i derives engine.ShardSeed(Seed, i).
	Seed uint64
	// Engine is the per-shard engine configuration. Shards serve on one
	// thread; Threads must be 1 (each shard is its own simulated machine,
	// so cross-shard parallelism is real OS parallelism, not simulated
	// thread interleaving).
	Engine engine.Config
	// Handler builds shard i's request handler (one handler instance per
	// shard; it runs only on that shard's serving goroutine).
	Handler func(shard int) engine.ShardHandler
	// QueueDepth bounds each shard's mailbox (default 1024).
	QueueDepth int
	// Policy is the admission policy at the shard boundary.
	Policy Policy
	// ShedDelay is the queueing-delay bound for PolicyShed (required > 0
	// for that policy, ignored for PolicyBlock).
	ShedDelay sim.Duration
	// Trace, when non-nil, collects one deterministic JSONL trace per
	// shard plus the router's ring_route stream (hoopd -trace).
	Trace *TraceCollector
}

// Service is a fleet of shards behind a consistent-hash router. The
// router-side methods (Submit, SubmitTo, Quiesce, Close) are
// single-producer: one goroutine owns each shard's submission stream —
// Submit assumes one goroutine owns all of them.
type Service struct {
	cfg    Config
	ring   Ring
	shards []*engine.Shard
	tel    *telemetry.Hub // router hub: ring_route
	seq    uint64
	subs   []int64 // per-shard submitted counts (router side)
}

// Open builds the fleet: N shard engines, handlers, and trace plumbing.
// No goroutine starts until Serve.
func Open(cfg Config) (*Service, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("service: need at least one shard, got %d", cfg.Shards)
	}
	if cfg.Handler == nil {
		return nil, fmt.Errorf("service: Config.Handler is required")
	}
	if cfg.Engine.Threads != 1 {
		return nil, fmt.Errorf("service: shard engines serve on one thread, got Threads=%d", cfg.Engine.Threads)
	}
	if cfg.Policy == PolicyShed && cfg.ShedDelay <= 0 {
		return nil, fmt.Errorf("service: PolicyShed requires ShedDelay > 0")
	}
	s := &Service{
		cfg:  cfg,
		ring: NewRing(cfg.Shards),
		tel:  telemetry.NewHub(),
		subs: make([]int64, cfg.Shards),
	}
	if cfg.Trace != nil {
		cfg.Trace.attachRouter(s.tel)
	}
	shed := sim.Duration(0)
	if cfg.Policy == PolicyShed {
		shed = cfg.ShedDelay
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := engine.OpenShard(engine.ShardConfig{
			Index:      i,
			RunSeed:    cfg.Seed,
			Engine:     cfg.Engine,
			QueueDepth: cfg.QueueDepth,
			ShedDelay:  shed,
		}, cfg.Handler(i))
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		if cfg.Trace != nil {
			cfg.Trace.attachShard(i, sh.System())
		}
		s.shards = append(s.shards, sh)
	}
	return s, nil
}

// Serve starts every shard's serving goroutine (handlers run Setup first).
func (s *Service) Serve() {
	for _, sh := range s.shards {
		sh.Serve()
	}
}

// Ring exposes the router's hash ring.
func (s *Service) Ring() Ring { return s.ring }

// Shards reports the fleet size.
func (s *Service) Shards() int { return len(s.shards) }

// Shard exposes shard i (read its System between Quiesce and the next
// submission, or after Close).
func (s *Service) Shard(i int) *engine.Shard { return s.shards[i] }

// Route reports which shard owns key without submitting anything.
func (s *Service) Route(key uint64) int { return s.ring.Route(key) }

// Submit routes one keyed request over the ring and enqueues it, blocking
// in real time while the target mailbox is full. It returns the chosen
// shard. The global sequence number is assigned here, in submission order.
func (s *Service) Submit(arrival sim.Time, kind uint8, key, aux uint64) int {
	shard := s.ring.Route(key)
	s.seq++
	if s.tel.Enabled(telemetry.KindRingRoute) {
		s.tel.Emit(telemetry.Event{
			Kind: telemetry.KindRingRoute,
			Time: arrival,
			Core: -1,
			Tx:   s.seq,
			Aux:  int64(shard),
		})
	}
	s.subs[shard]++
	s.shards[shard].Enqueue(engine.ShardRequest{
		Arrival: arrival,
		Seq:     s.seq,
		Kind:    kind,
		Key:     key,
		Aux:     aux,
	})
	return shard
}

// SubmitTo enqueues req on shard directly, bypassing the ring — the soak
// path where each shard consumes its own derived open-loop stream. The
// caller owns req.Seq.
func (s *Service) SubmitTo(shard int, req engine.ShardRequest) {
	s.subs[shard]++
	s.shards[shard].Enqueue(req)
}

// Submitted reports how many requests the router has sent to shard i.
func (s *Service) Submitted(shard int) int64 { return s.subs[shard] }

// Quiesce blocks until every shard has drained its mailbox and closed off
// in-flight engine work; afterwards every shard's System is safe to read
// until the next submission.
func (s *Service) Quiesce() {
	for _, sh := range s.shards {
		sh.Quiesce()
	}
}

// Close stops every shard. Systems stay readable.
func (s *Service) Close() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

// Executed and Shed total the per-shard counters. Same read discipline as
// Shard.Executed: call after Quiesce or Close.
func (s *Service) Executed() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Executed()
	}
	return n
}

// Shed totals requests dropped by admission control across the fleet.
func (s *Service) Shed() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Shed()
	}
	return n
}

// MergedSojourn folds every shard's arrival-to-completion distribution
// (queueing delay + service) into one fleet-wide histogram — the p50/p99/
// p999 a client of the fleet would observe.
func (s *Service) MergedSojourn() sim.Histogram {
	var out sim.Histogram
	for _, sh := range s.shards {
		h := sh.Sojourn()
		out.Merge(&h)
	}
	return out
}

// MergedLatency folds every shard engine's transaction critical-path
// latency distribution (service time only, no queueing) into one
// fleet-wide histogram.
func (s *Service) MergedLatency() sim.Histogram {
	var out sim.Histogram
	for _, sh := range s.shards {
		h := sh.System().LatencyHistogram()
		out.Merge(&h)
	}
	return out
}

// MaxSpan reports the latest simulated clock across the fleet.
func (s *Service) MaxSpan() sim.Time {
	var m sim.Time
	for _, sh := range s.shards {
		m = sim.MaxTime(m, sh.System().MaxClock())
	}
	return m
}

// StreamSpan reports shard i's simulated serving span: its clock measured
// from its stream epoch, i.e. excluding setup/preload time. Same read
// discipline as Shard.Executed.
func (s *Service) StreamSpan(i int) sim.Duration {
	sh := s.shards[i]
	return sh.System().MaxClock() - sh.Epoch()
}

// MaxStreamSpan is the largest StreamSpan across the fleet — the
// denominator for fleet goodput.
func (s *Service) MaxStreamSpan() sim.Duration {
	var m sim.Duration
	for i := range s.shards {
		if d := s.StreamSpan(i); d > m {
			m = d
		}
	}
	return m
}
