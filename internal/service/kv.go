package service

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/structures"
)

// KV opcodes for engine.ShardRequest.Kind. An insert is a Put of a key
// beyond the preloaded range; the handler does not distinguish.
const (
	OpGet uint8 = iota
	OpPut
	OpUpdate // single-word read-modify-write; falls back to Put on a miss
	OpDelete
)

// OpName names an opcode for CLI output.
func OpName(op uint8) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op%d", op)
}

// KVConfig sizes one shard's key-value table.
type KVConfig struct {
	// Keys is the keyspace size: per-shard when Ring is nil (each shard
	// owns local keys [0, Keys)), global when Ring is set (the shard owns
	// the subset of [0, Keys) the ring routes to it).
	Keys uint64
	// ValBytes is the fixed value size (word multiple; default 64).
	ValBytes int
	// Preload is how many keys of [0, Preload) exist before the load
	// starts (subject to ring ownership in ring mode). Default Keys/2.
	Preload uint64
	// Ring, when non-nil, switches the handler to global-keyspace mode.
	Ring *Ring
	// Buckets overrides the hash-table bucket count (default sized from
	// the expected per-shard entry count).
	Buckets int
}

func (c *KVConfig) defaults() {
	if c.ValBytes == 0 {
		c.ValBytes = 64
	}
	if c.Preload == 0 {
		c.Preload = c.Keys / 2
	}
	if c.Buckets == 0 {
		expected := c.Keys
		if c.Ring != nil {
			expected = c.Keys / uint64(c.Ring.Shards())
		}
		c.Buckets = suggestBuckets(expected)
	}
}

// KVHandler serves KV requests against one shard's persistent hash map.
// One instance per shard; all methods run on the shard's serving
// goroutine. Every request — reads included — executes as one transaction,
// so fleet goodput is exactly the commit rate.
type KVHandler struct {
	cfg   KVConfig
	shard int
	table *structures.HashMap
	buf   []byte

	// Op counters, readable after Quiesce (same discipline as
	// Shard.Executed).
	Gets, GetMisses, Puts, Updates, Deletes int64
}

// NewKVHandler validates cfg and returns a handler for use as a shard's
// engine.ShardHandler.
func NewKVHandler(cfg KVConfig) (*KVHandler, error) {
	cfg.defaults()
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("service: KVConfig.Keys must be positive")
	}
	if cfg.ValBytes <= 0 || cfg.ValBytes%mem.WordSize != 0 {
		return nil, fmt.Errorf("service: KVConfig.ValBytes (%d) must be a positive word multiple", cfg.ValBytes)
	}
	if cfg.Preload > cfg.Keys {
		return nil, fmt.Errorf("service: KVConfig.Preload (%d) exceeds Keys (%d)", cfg.Preload, cfg.Keys)
	}
	return &KVHandler{cfg: cfg, buf: make([]byte, cfg.ValBytes)}, nil
}

// owns reports whether this shard stores key.
func (h *KVHandler) owns(key uint64) bool {
	return h.cfg.Ring == nil || h.cfg.Ring.Route(key) == h.shard
}

// fillVal derives the value bytes for (key, seed) — a pure function, so
// preloaded contents are identical however many shards split the keyspace.
func (h *KVHandler) fillVal(key, seed uint64) {
	for i := 0; i < len(h.buf); i += 8 {
		w := mix64(key ^ mix64(seed+uint64(i)))
		for j := 0; j < 8; j++ {
			h.buf[i+j] = byte(w >> (8 * uint(j)))
		}
	}
}

// Setup implements engine.ShardHandler: format the arena, build the
// table, preload the shard's slice of the keyspace.
func (h *KVHandler) Setup(env *engine.Env, region mem.Region, shard int, seed uint64) {
	h.shard = shard
	arena := pmem.NewArena(env, region)
	env.TxBegin()
	arena.Init()
	h.table = structures.NewHashMap(env, arena, h.cfg.Buckets, h.cfg.ValBytes)
	env.TxEnd()
	for k := uint64(0); k < h.cfg.Preload; k++ {
		if !h.owns(k) {
			continue
		}
		env.TxBegin()
		h.fillVal(k, seed)
		h.table.Put(k, h.buf)
		env.TxEnd()
	}
}

// Handle implements engine.ShardHandler.
func (h *KVHandler) Handle(env *engine.Env, req engine.ShardRequest) {
	env.TxBegin()
	switch req.Kind {
	case OpGet:
		h.Gets++
		if !h.table.Get(req.Key, h.buf) {
			h.GetMisses++
		}
	case OpPut:
		h.Puts++
		h.fillVal(req.Key, req.Aux)
		h.table.Put(req.Key, h.buf)
	case OpUpdate:
		h.Updates++
		word := int(req.Aux % uint64(h.cfg.ValBytes/mem.WordSize))
		if !h.table.UpdateWord(req.Key, word, mix64(req.Aux)) {
			h.fillVal(req.Key, req.Aux)
			h.table.Put(req.Key, h.buf)
		}
	case OpDelete:
		h.Deletes++
		h.table.Delete(req.Key)
	default:
		panic(fmt.Sprintf("service: unknown KV opcode %d", req.Kind))
	}
	env.TxEnd()
}

// Table exposes the shard's hash map (read after Quiesce).
func (h *KVHandler) Table() *structures.HashMap { return h.table }
