package service

import (
	"testing"
	"testing/quick"
)

func TestJumpHashRange(t *testing.T) {
	prop := func(key uint64, n uint16) bool {
		buckets := int(n%256) + 1
		b := JumpHash(key, buckets)
		return b >= 0 && b < buckets
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestJumpHashMonotonic locks the defining property of jump consistent
// hashing: growing the ring from n to n+1 buckets either leaves a key in
// place or moves it onto the new bucket — never between old buckets.
func TestJumpHashMonotonic(t *testing.T) {
	prop := func(key uint64, n uint16) bool {
		buckets := int(n%128) + 1
		before := JumpHash(key, buckets)
		after := JumpHash(key, buckets+1)
		return after == before || after == buckets
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRingPermutationStability: Route is a pure function of (key, shard
// count) — the assignment of a key set is identical under any submission
// order.
func TestRingPermutationStability(t *testing.T) {
	ring := NewRing(8)
	prop := func(keys []uint64, swaps []uint8) bool {
		want := make(map[uint64]int, len(keys))
		for _, k := range keys {
			want[k] = ring.Route(k)
		}
		// Permute and re-route.
		perm := append([]uint64(nil), keys...)
		for i, s := range swaps {
			if len(perm) < 2 {
				break
			}
			j := (int(s) + i) % len(perm)
			perm[0], perm[j] = perm[j], perm[0]
		}
		for _, k := range perm {
			if ring.Route(k) != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRingDistribution checks a dense keyspace spreads roughly uniformly —
// the point of the mix64 premix.
func TestRingDistribution(t *testing.T) {
	const shards, keys = 8, 1 << 16
	ring := NewRing(shards)
	var counts [shards]int
	for k := uint64(0); k < keys; k++ {
		counts[ring.Route(k)]++
	}
	want := float64(keys) / shards
	for i, c := range counts {
		if frac := float64(c) / want; frac < 0.9 || frac > 1.1 {
			t.Errorf("shard %d owns %d keys (%.2fx fair share)", i, c, frac)
		}
	}
}

func TestSingleBucket(t *testing.T) {
	ring := NewRing(1)
	for _, k := range []uint64{0, 1, 1 << 63, ^uint64(0)} {
		if got := ring.Route(k); got != 0 {
			t.Fatalf("Route(%d) on 1 shard = %d", k, got)
		}
	}
}

func TestSuggestBuckets(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{{0, 16}, {31, 16}, {32, 16}, {64, 32}, {1024, 512}, {1 << 20, 1 << 19}}
	for _, c := range cases {
		if got := suggestBuckets(c.n); got != c.want {
			t.Errorf("suggestBuckets(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
