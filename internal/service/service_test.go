package service

import (
	"bytes"
	"encoding/json"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/sim"
)

func testEngine() engine.Config {
	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Threads = 1
	return cfg
}

func kvHandler(t *testing.T, cfg KVConfig) func(int) engine.ShardHandler {
	t.Helper()
	return func(int) engine.ShardHandler {
		h, err := NewKVHandler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
}

// shardStream derives shard j's request sequence as a pure function of
// (runSeed, j, i) — the same shape hoopd's sharded route mode uses, so the
// stream a shard sees never depends on the fleet size.
func shardStream(runSeed uint64, shard, n int) []engine.ShardRequest {
	seed := engine.ShardSeed(runSeed, shard)
	reqs := make([]engine.ShardRequest, n)
	for i := range reqs {
		r := mix64(seed + uint64(i)*0x9E3779B97F4A7C15)
		op := OpGet
		if r%2 == 0 {
			op = OpUpdate
		}
		reqs[i] = engine.ShardRequest{
			Arrival: sim.Time(i) * sim.Time(sim.Microsecond),
			Seq:     uint64(shard)<<48 | uint64(i),
			Kind:    op,
			Key:     r % 256,
			Aux:     mix64(r),
		}
	}
	return reqs
}

func TestOpenErrors(t *testing.T) {
	kv := kvHandler(t, KVConfig{Keys: 64})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no shards", Config{Shards: 0, Engine: testEngine(), Handler: kv}},
		{"nil handler", Config{Shards: 1, Engine: testEngine()}},
		{"multi-thread engine", Config{Shards: 1, Engine: engine.DefaultConfig(engine.SchemeHOOP), Handler: kv}},
		{"shed without delay", Config{Shards: 1, Engine: testEngine(), Handler: kv, Policy: PolicyShed}},
	}
	for _, c := range cases {
		if _, err := Open(c.cfg); err == nil {
			t.Errorf("%s: Open succeeded, want error", c.name)
		}
	}
}

// TestShardCountInvariance is the tentpole determinism property: with the
// direct per-shard submission path, shard 0's entire simulated run — final
// snapshot and telemetry trace — is byte-identical whether the fleet has 1
// shard or 8. CI runs this under -race: the eight serving goroutines truly
// run concurrently, so the comparison also proves shard isolation.
func TestShardCountInvariance(t *testing.T) {
	run := func(shards int) (snap []byte, trace []byte) {
		tc := &TraceCollector{}
		svc, err := Open(Config{
			Shards:  shards,
			Seed:    1234,
			Engine:  testEngine(),
			Handler: kvHandler(t, KVConfig{Keys: 256, ValBytes: 16, Preload: 128}),
			Trace:   tc,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.Serve()
		for j := 0; j < shards; j++ {
			for _, req := range shardStream(1234, j, 300) {
				svc.SubmitTo(j, req)
			}
		}
		svc.Quiesce()
		snap, err = json.Marshal(svc.Shard(0).System().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		trace, err = tc.ShardTrace(0)
		if err != nil {
			t.Fatal(err)
		}
		svc.Close()
		return snap, trace
	}
	snap1, trace1 := run(1)
	snap8, trace8 := run(8)
	if !bytes.Equal(snap1, snap8) {
		t.Errorf("shard 0 snapshot differs between -shards 1 and -shards 8:\n%s\n%s", snap1, snap8)
	}
	if !bytes.Equal(trace1, trace8) {
		t.Errorf("shard 0 trace differs between -shards 1 and -shards 8 (%d vs %d bytes)",
			len(trace1), len(trace8))
	}
	if len(trace1) == 0 {
		t.Fatal("shard 0 trace is empty — the comparison proved nothing")
	}
}

// TestRingModeDeterminism: for a fixed shard count, the ring-routed Submit
// path replays identically.
func TestRingModeDeterminism(t *testing.T) {
	run := func() ([]byte, sim.Histogram) {
		tc := &TraceCollector{}
		svc, err := Open(Config{
			Shards:  3,
			Seed:    7,
			Engine:  testEngine(),
			Handler: kvHandler(t, KVConfig{Keys: 512, ValBytes: 16, Ring: &Ring{shards: 3}}),
			Trace:   tc,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.Serve()
		for i := 0; i < 600; i++ {
			key := mix64(uint64(i)) % 512
			op := OpGet
			if i%3 == 0 {
				op = OpPut
			}
			svc.Submit(sim.Time(i)*sim.Time(sim.Microsecond), op, key, uint64(i))
		}
		svc.Quiesce()
		var buf bytes.Buffer
		if _, err := tc.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		h := svc.MergedSojourn()
		svc.Close()
		return buf.Bytes(), h
	}
	t1, h1 := run()
	t2, h2 := run()
	if !bytes.Equal(t1, t2) {
		t.Errorf("combined trace differs between identical ring-mode runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if h1 != h2 {
		t.Error("merged sojourn histograms differ between identical runs")
	}
	if h1.Count() != 600 {
		t.Errorf("merged sojourn count = %d, want 600", h1.Count())
	}
}

// TestRingModeRouting cross-checks Submit against Ring.Route and the
// router-side Submitted counters.
func TestRingModeRouting(t *testing.T) {
	svc, err := Open(Config{
		Shards:  4,
		Seed:    5,
		Engine:  testEngine(),
		Handler: kvHandler(t, KVConfig{Keys: 128, ValBytes: 16}),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Serve()
	want := make([]int64, 4)
	for i := 0; i < 200; i++ {
		key := uint64(i)
		shard := svc.Submit(sim.Time(i)*sim.Time(sim.Microsecond), OpPut, key, 0)
		if shard != svc.Route(key) {
			t.Fatalf("Submit sent key %d to shard %d, Route says %d", key, shard, svc.Route(key))
		}
		want[shard]++
	}
	svc.Quiesce()
	var total int64
	for i := 0; i < 4; i++ {
		if svc.Submitted(i) != want[i] {
			t.Errorf("Submitted(%d) = %d, want %d", i, svc.Submitted(i), want[i])
		}
		total += svc.Shard(i).Executed()
	}
	if total != 200 {
		t.Errorf("fleet executed %d, want 200", total)
	}
	svc.Close()
}

// TestShedAccounting drives a shard far past capacity under PolicyShed and
// checks sheds are deterministic and conserved: offered = executed + shed.
func TestShedAccounting(t *testing.T) {
	run := func() (executed, shed int64) {
		svc, err := Open(Config{
			Shards: 1,
			Seed:   11,
			Engine: testEngine(),
			// Large values + tiny arrival gaps overload the single shard.
			Handler:   kvHandler(t, KVConfig{Keys: 64, ValBytes: 256, Preload: 1}),
			Policy:    PolicyShed,
			ShedDelay: 2 * sim.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		svc.Serve()
		const n = 500
		for i := 0; i < n; i++ {
			svc.SubmitTo(0, engine.ShardRequest{
				Arrival: sim.Time(i) * sim.Time(100*sim.Nanosecond),
				Seq:     uint64(i),
				Kind:    OpPut,
				Key:     uint64(i % 64),
				Aux:     uint64(i),
			})
		}
		svc.Quiesce()
		executed, shed = svc.Executed(), svc.Shed()
		svc.Close()
		if executed+shed != n {
			t.Fatalf("executed %d + shed %d != offered %d", executed, shed, n)
		}
		return executed, shed
	}
	e1, s1 := run()
	e2, s2 := run()
	if s1 == 0 {
		t.Fatal("overloaded fleet shed nothing")
	}
	if e1 != e2 || s1 != s2 {
		t.Fatalf("shedding not deterministic: (%d,%d) vs (%d,%d)", e1, s1, e2, s2)
	}
}

// TestMergedHistograms: the fleet sojourn histogram counts every executed
// request exactly once, and MergedLatency is non-empty after load.
func TestMergedHistograms(t *testing.T) {
	svc, err := Open(Config{
		Shards:  2,
		Seed:    21,
		Engine:  testEngine(),
		Handler: kvHandler(t, KVConfig{Keys: 128, ValBytes: 16}),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Serve()
	for j := 0; j < 2; j++ {
		for _, req := range shardStream(21, j, 100) {
			svc.SubmitTo(j, req)
		}
	}
	svc.Quiesce()
	sojourn := svc.MergedSojourn()
	if got := sojourn.Count(); got != svc.Executed() {
		t.Errorf("merged sojourn count = %d, want executed = %d", got, svc.Executed())
	}
	latency := svc.MergedLatency()
	if latency.Count() == 0 {
		t.Error("merged engine latency histogram is empty")
	}
	if svc.MaxStreamSpan() <= 0 {
		t.Errorf("MaxStreamSpan = %v, want > 0", svc.MaxStreamSpan())
	}
	for i := 0; i < 2; i++ {
		if svc.StreamSpan(i) > sim.Duration(svc.MaxSpan()) {
			t.Errorf("shard %d stream span %v exceeds full span", i, svc.StreamSpan(i))
		}
	}
	svc.Close()
}

// TestKVHandlerRoundtrip exercises every opcode through a single shard and
// checks the op counters and table contents.
func TestKVHandlerRoundtrip(t *testing.T) {
	var h *KVHandler
	svc, err := Open(Config{
		Shards: 1,
		Seed:   31,
		Engine: testEngine(),
		Handler: func(int) engine.ShardHandler {
			var err error
			h, err = NewKVHandler(KVConfig{Keys: 64, ValBytes: 16, Preload: 32})
			if err != nil {
				t.Fatal(err)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Serve()
	us := sim.Time(sim.Microsecond)
	submit := func(i int, op uint8, key, aux uint64) {
		svc.SubmitTo(0, engine.ShardRequest{Arrival: sim.Time(i) * us, Kind: op, Key: key, Aux: aux})
	}
	submit(0, OpGet, 5, 0)     // preloaded: hit
	submit(1, OpGet, 50, 0)    // beyond preload: miss
	submit(2, OpPut, 50, 9)    // insert
	submit(3, OpGet, 50, 0)    // now a hit
	submit(4, OpUpdate, 5, 3)  // in-place word update
	submit(5, OpUpdate, 60, 3) // miss → upsert
	submit(6, OpDelete, 5, 0)
	submit(7, OpGet, 5, 0) // deleted: miss
	svc.Quiesce()

	if h.Gets != 4 || h.GetMisses != 2 || h.Puts != 1 || h.Updates != 2 || h.Deletes != 1 {
		t.Errorf("op counters gets=%d misses=%d puts=%d updates=%d deletes=%d",
			h.Gets, h.GetMisses, h.Puts, h.Updates, h.Deletes)
	}
	if n := h.Table().Len(); n != 32+2-1 {
		t.Errorf("table has %d entries, want %d (32 preloaded + 2 inserted - 1 deleted)", n, 33)
	}
	svc.Close()
}

// TestTraceCollectorLayout checks WriteTo's cell structure: router first
// (when ring-routed events exist), then shards in index order.
func TestTraceCollectorLayout(t *testing.T) {
	tc := &TraceCollector{}
	svc, err := Open(Config{
		Shards:  2,
		Seed:    41,
		Engine:  testEngine(),
		Handler: kvHandler(t, KVConfig{Keys: 64, ValBytes: 16}),
		Trace:   tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Serve()
	for i := 0; i < 20; i++ {
		svc.Submit(sim.Time(i)*sim.Time(sim.Microsecond), OpPut, uint64(i), 0)
	}
	svc.Quiesce()
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	svc.Close()

	var markers []string
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte(`{"cell":`)) {
			var m struct {
				Cell string `json:"cell"`
			}
			if err := json.Unmarshal(line, &m); err != nil {
				t.Fatal(err)
			}
			markers = append(markers, m.Cell)
		}
	}
	want := []string{"router", "shard-000", "shard-001"}
	if len(markers) != len(want) {
		t.Fatalf("cells = %v, want %v", markers, want)
	}
	for i := range want {
		if markers[i] != want[i] {
			t.Fatalf("cells = %v, want %v", markers, want)
		}
	}
}
