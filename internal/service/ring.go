// Package service is the sharded KV tier ("hoopd") over the engine's
// Shard abstraction: a consistent-hash ring routes a keyspace across N
// independent engine shards (one goroutine + one engine + one
// persist-scheme instance each), with bounded per-shard admission queues,
// a configurable backpressure policy, and fleet-wide latency aggregation
// via sim.Histogram.Merge.
//
// Two submission paths exist, with different determinism guarantees:
//
//   - Submit routes by key over the ring — the general service API. For a
//     fixed shard count the run is deterministic (each shard's request
//     subsequence is a pure function of the submitted stream), but a
//     shard's contents change when the ring is resized.
//   - SubmitTo addresses a shard directly. hoopd's soak drives one
//     independent open-loop stream per shard this way, seeded by
//     engine.ShardSeed(runSeed, shard), which makes shard j's entire
//     simulated run byte-identical regardless of how many other shards
//     exist — the property the `-shards 1` vs `-shards N` tests lock.
package service

import "math/bits"

// JumpHash is the Lamport–Veach jump consistent hash: it maps key to a
// bucket in [0, buckets) such that growing from n to n+1 buckets moves
// only ~1/(n+1) of the keys, all of them onto the new bucket. It is the
// whole consistent-hash ring — no vnode tables, no allocation, O(ln n).
func JumpHash(key uint64, buckets int) int {
	if buckets <= 1 {
		return 0
	}
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// mix64 is the splitmix64 finalizer: a bijective scramble applied to keys
// before jump hashing so that dense sequential keyspaces (the common KV
// case) spread uniformly instead of tracking JumpHash's arithmetic.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Ring routes keys to shards. The zero Ring is not valid; build with
// NewRing. A Ring is a pure value: Route depends only on (key, shard
// count), never on routing history, so any permutation of a key set
// produces the same key→shard assignment.
type Ring struct {
	shards int
}

// NewRing returns a ring over n shards (n >= 1).
func NewRing(n int) Ring {
	if n < 1 {
		panic("service: ring needs at least one shard")
	}
	return Ring{shards: n}
}

// Shards reports the ring size.
func (r Ring) Shards() int { return r.shards }

// Route returns the shard owning key.
func (r Ring) Route(key uint64) int {
	return JumpHash(mix64(key), r.shards)
}

// OwnedShare estimates the fraction of a uniform keyspace owned by one
// shard (1/n); handy for sizing per-shard tables in ring mode.
func (r Ring) OwnedShare() float64 { return 1 / float64(r.shards) }

// suggestBuckets sizes a chained hash table for about n expected entries:
// the next power of two of n/2, at least 16. bits.Len64 keeps it integral.
func suggestBuckets(n uint64) int {
	if n < 32 {
		return 16
	}
	return 1 << bits.Len64(n/2-1)
}
