// Package persisttest provides the shared fixture for driving a
// persistence scheme directly (no engine): a ready-made persist.Context
// over a simulated device, and a transaction helper that honours the
// engine's ordering contract. It is used by the scheme contract tests
// (internal/baseline/schemetest), the HOOP package tests, and the
// crash-point fault-injection harness (internal/crashtest).
//
// The package deliberately imports no scheme packages: tests that build
// schemes through the persist registry must import (or blank-import) the
// scheme packages themselves for registration, which keeps persisttest
// usable from inside a scheme package's own tests without an import cycle.
package persisttest

import (
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/memctrl"
	"hoop/internal/nvm"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

// Geometry sizes the simulated regions. Zero fields take the defaults of
// the original schemetest fixture: a 1 GiB home region at physical 0, the
// OOP/log region directly above it, and a device capacity covering both.
type Geometry struct {
	HomeBytes uint64 // default 1 GiB
	OOPBytes  uint64 // default 64 MiB
}

func (g Geometry) withDefaults() Geometry {
	if g.HomeBytes == 0 {
		g.HomeBytes = 1 << 30
	}
	if g.OOPBytes == 0 {
		g.OOPBytes = 64 << 20
	}
	return g
}

// NewContext builds the default fixture context: fresh stores, default
// device parameters, a controller with two extra background agents (GC /
// checkpoint style helpers), and a default cache hierarchy.
func NewContext(cores int) persist.Context {
	return NewContextOn(mem.NewStore(), cores, Geometry{})
}

// NewContextGeom is NewContext with explicit region sizing — small
// geometries keep recovery scans cheap in exhaustive crash-point drivers.
func NewContextGeom(cores int, g Geometry) persist.Context {
	return NewContextOn(mem.NewStore(), cores, g)
}

// NewContextOn builds a context over an existing functional store — the
// crash-recovery path, where the store was reconstructed from a journal
// prefix and a fresh scheme instance must recover from it.
func NewContextOn(store *mem.Store, cores int, g Geometry) persist.Context {
	g = g.withDefaults()
	stats := sim.NewStats()
	params := nvm.DefaultParams()
	params.Capacity = 2 * (g.HomeBytes + g.OOPBytes)
	dev := nvm.NewDevice(params, store, stats)
	return persist.Context{
		Cores: cores,
		Layout: mem.Layout{
			Home: mem.Region{Base: 0, Size: g.HomeBytes},
			OOP:  mem.Region{Base: mem.PAddr(g.HomeBytes), Size: g.OOPBytes},
		},
		Dev:   dev,
		Ctrl:  memctrl.New(memctrl.DefaultConfig(cores+2), dev),
		Hier:  cache.New(cache.DefaultConfig(cores), stats),
		Stats: stats,
		View:  mem.NewStore(),
	}
}

// RunTx performs one transaction of word writes through the scheme,
// mirroring each store into the volatile view after the scheme hook — the
// engine's ordering contract (undo-style schemes read the pre-image from
// View inside Store). Iteration is in deterministic address order so runs
// are reproducible.
func RunTx(s persist.Scheme, ctx persist.Context, core int, words map[mem.PAddr]uint64) {
	tx, now := s.TxBegin(core, 0)
	for _, a := range sortedAddrs(words) {
		var buf [8]byte
		v := words[a]
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * uint(i)))
		}
		now = s.Store(core, tx, a, buf[:], now)
		ctx.View.Write(a, buf[:])
	}
	s.TxEnd(core, tx, now)
}

// RunTxAbort performs one transaction of word writes and then aborts it,
// honouring the engine's abort contract: the volatile view is rolled back
// to the pre-images BEFORE the scheme's TxAbort hook runs (the engine
// unwinds its undo log first, so schemes that restore durable state must
// do so from their own records, never from the view).
func RunTxAbort(s persist.Scheme, ctx persist.Context, core int, words map[mem.PAddr]uint64) {
	tx, now := s.TxBegin(core, 0)
	addrs := sortedAddrs(words)
	pre := make([][8]byte, len(addrs))
	for i, a := range addrs {
		ctx.View.Read(a, pre[i][:])
		var buf [8]byte
		v := words[a]
		for k := 0; k < 8; k++ {
			buf[k] = byte(v >> (8 * uint(k)))
		}
		now = s.Store(core, tx, a, buf[:], now)
		ctx.View.Write(a, buf[:])
	}
	for i := len(addrs) - 1; i >= 0; i-- {
		ctx.View.Write(addrs[i], pre[i][:])
	}
	s.TxAbort(core, tx, now)
}

func sortedAddrs(words map[mem.PAddr]uint64) []mem.PAddr {
	addrs := make([]mem.PAddr, 0, len(words))
	for a := range words {
		addrs = append(addrs, a)
	}
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j-1] > addrs[j]; j-- {
			addrs[j-1], addrs[j] = addrs[j], addrs[j-1]
		}
	}
	return addrs
}
