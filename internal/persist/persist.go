// Package persist defines the interface every crash-consistency technique
// in this reproduction implements — HOOP itself plus the five comparison
// points of the paper's evaluation (Opt-Redo, Opt-Undo, OSP, LSM, LAD) and
// the no-persistence Native/Ideal system.
//
// The execution engine (internal/engine) simulates the workload's cache
// behaviour itself; a Scheme only sees the events that matter for
// persistence — stores inside transactions, transaction boundaries, LLC
// misses, and dirty LLC evictions — and responds with the extra time its
// mechanism puts on the critical path plus the NVM traffic it generates.
// Schemes are also *functional*: committed data must actually be
// reconstructable from NVM contents after Crash + Recover, which the test
// suite verifies against an oracle.
package persist

import (
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/memctrl"
	"hoop/internal/nvm"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// TxID identifies a transaction. IDs are assigned by the memory controller
// at Tx_begin (§III-D of the paper) and are strictly increasing in *begin*
// order. Without a concurrency-control layer transactions also commit in
// that order; with one (internal/cc) commits may interleave, so schemes
// must order durable state by log-append position, never by TxID.
type TxID uint64

// Context bundles the shared machinery a scheme operates on.
type Context struct {
	Cores  int
	Layout mem.Layout
	Dev    *nvm.Device
	Ctrl   *memctrl.Controller
	Hier   *cache.Hierarchy
	Stats  *sim.Stats
	// View is the volatile logical memory image: the newest value of every
	// address as seen by the program, regardless of where (cache, MC
	// buffer, OOP region, home region) that value currently lives. The
	// engine applies each store to View *after* calling Scheme.Store, so
	// undo-style schemes can still read the pre-store value from View,
	// while out-of-place schemes take the new value from the Store
	// argument. View is lost on Crash.
	View *mem.Store
	// Tel is the system's telemetry hub. Schemes emit structured events
	// (GC epochs, persist drains, slice writes...) through it, guarding
	// hot-path emission with Tel.Enabled. A nil hub is valid and disabled.
	Tel *telemetry.Hub
}

// Scheme is one crash-consistency technique.
type Scheme interface {
	// Name is the short name used in result tables ("HOOP", "Opt-Redo"...).
	Name() string

	// Properties returns the scheme's Table I characterization.
	Properties() Properties

	// TxBegin opens a failure-atomic region on core and returns the
	// assigned transaction ID and the time after any begin-cost.
	TxBegin(core int, now sim.Time) (TxID, sim.Time)

	// Store notifies the scheme of a store of val at addr inside tx.
	// It is called after the engine has simulated the cache access; the
	// returned time includes any persistence work the scheme puts on
	// the critical path (log writes, orderings). addr is word-aligned
	// and len(val) is a multiple of the word size.
	Store(core int, tx TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time

	// TxEnd commits tx, returning the time at which the transaction is
	// durable (all commit-path flushes and fences done).
	TxEnd(core int, tx TxID, now sim.Time) sim.Time

	// TxAbort tears down tx without committing, returning the time at
	// which the abort work completes. The engine has already rolled the
	// volatile View back to its pre-transaction contents, so schemes may
	// read restored pre-images from View (mirroring how undo-style
	// schemes read pre-store values during Store). The scheme must
	// discard or neutralize every durable trace of tx so that a crash at
	// any point — before, during, or after the abort — never resurrects
	// the aborted writes through Recover.
	TxAbort(core int, tx TxID, now sim.Time) sim.Time

	// ReadMiss services an LLC miss for the line containing addr: the
	// scheme routes the fill (home region, OOP region, log, shadow
	// copy...) and returns the fill completion time. fillDirty reports
	// whether the line must be installed dirty+persistent (true when the
	// newest version only exists out-of-place, so a future eviction must
	// re-persist it out-of-place).
	ReadMiss(core int, addr mem.PAddr, now sim.Time) (done sim.Time, fillDirty bool)

	// Evict handles a dirty line leaving the LLC on behalf of core (the
	// core whose fill displaced it). ev.Persistent reports whether the
	// line was modified by a transaction.
	Evict(core int, ev cache.Eviction, now sim.Time) sim.Time

	// Tick lets background machinery (GC, checkpointing, log truncation)
	// run up to now. The engine calls it between operations.
	Tick(now sim.Time)

	// Crash models power failure: all volatile scheme state is dropped.
	// NVM contents survive. The engine separately drops cache state.
	Crash()

	// Recover rebuilds a consistent home region from NVM contents using
	// the given number of recovery threads, returning the modeled
	// recovery time. After Recover, the home region in the NVM store
	// holds exactly the committed data.
	Recover(threads int) (sim.Duration, error)
}

// LoadHook is an optional interface a Scheme may implement when its
// mechanism adds cost to *every* load, not just LLC misses — the
// software-indexed LSM baseline pays an O(log N) address translation per
// read. The engine calls it once per load operation.
type LoadHook interface {
	LoadOverhead(core int, addr mem.PAddr, now sim.Time) sim.Time
}

// Properties is a scheme's row in Table I of the paper.
type Properties struct {
	ReadLatency    string // "Low" or "High"
	OnCriticalPath bool   // persistence work on the critical path?
	NeedFlushFence bool   // requires cache flushes & fences from software?
	WriteTraffic   string // "Low", "Medium", "High"
}

// TxnAllocator hands out controller-assigned transaction IDs; schemes embed
// it. The zero value is ready to use; the first ID is 1 (0 means "no
// transaction").
type TxnAllocator struct {
	next TxID
}

// Next returns a fresh transaction ID.
func (a *TxnAllocator) Next() TxID {
	a.next++
	return a.next
}

// Current reports the most recently issued ID.
func (a *TxnAllocator) Current() TxID { return a.next }

// Reset restarts ID assignment (after recovery).
func (a *TxnAllocator) Reset(from TxID) { a.next = from }

// WordsOf splits a (word-aligned address, byte slice) store into 8-byte
// word updates, the granularity HOOP tracks (§III-C). It panics on
// misaligned input — the pmem layer only issues word-aligned stores.
func WordsOf(addr mem.PAddr, val []byte) []WordUpdate {
	if !mem.IsWordAligned(addr) || len(val)%mem.WordSize != 0 {
		panic("persist: store must be word-aligned")
	}
	out := make([]WordUpdate, 0, len(val)/mem.WordSize)
	for off := 0; off < len(val); off += mem.WordSize {
		var w [mem.WordSize]byte
		copy(w[:], val[off:off+mem.WordSize])
		out = append(out, WordUpdate{Addr: addr + mem.PAddr(off), Val: w})
	}
	return out
}

// WordUpdate is one 8-byte word store.
type WordUpdate struct {
	Addr mem.PAddr
	Val  [mem.WordSize]byte
}
