package persist

import (
	"strings"
	"testing"
)

// stubScheme is a minimal Scheme for registry tests.
type stubScheme struct{ Scheme }

func (stubScheme) Name() string { return "stub" }

func TestRegistryBuildAndErrors(t *testing.T) {
	Register("test-stub", func(ctx Context, opt any) (Scheme, error) {
		if opt != nil {
			if _, ok := opt.(int); !ok {
				t.Fatalf("factory got opt %T", opt)
			}
		}
		return stubScheme{}, nil
	})

	s, err := Build(Context{}, "test-stub", 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "stub" {
		t.Fatalf("built %q", s.Name())
	}

	if _, err := Build(Context{}, "no-such-scheme", nil); err == nil {
		t.Fatal("unknown scheme must fail")
	} else if !strings.Contains(err.Error(), "test-stub") {
		t.Fatalf("error should list registered schemes: %v", err)
	}

	found := false
	for _, n := range Registered() {
		if n == "test-stub" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Registered() = %v misses test-stub", Registered())
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	Register("test-dup", func(Context, any) (Scheme, error) { return stubScheme{}, nil })
	mustPanic("duplicate", func() {
		Register("test-dup", func(Context, any) (Scheme, error) { return stubScheme{}, nil })
	})
	mustPanic("empty name", func() {
		Register("", func(Context, any) (Scheme, error) { return stubScheme{}, nil })
	})
	mustPanic("nil factory", func() { Register("test-nil", nil) })
}
