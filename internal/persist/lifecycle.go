package persist

import "hoop/internal/sim"

// The interfaces below are optional capabilities a Scheme may implement on
// top of the core interface. Callers (the experiment harness, the CLIs)
// reach a scheme's GC, consolidation and recovery-scan machinery only
// through these — never by asserting on a concrete scheme type — so a new
// scheme gains harness support by implementing the capability, not by
// being special-cased.

// Quiescer is implemented by schemes with deferred background machinery —
// HOOP's and LSM's garbage collectors, OSP's page consolidation, Opt-Redo's
// checkpointer. Quiesce drains all of it synchronously so that a
// measurement window closes with every scheme's deferred traffic accounted;
// schemes without such machinery simply don't implement it.
type Quiescer interface {
	Quiesce(now sim.Time)
}

// GCReporter exposes the garbage collector's coalescing accounting (the
// paper's Table IV metric).
type GCReporter interface {
	// GCModifiedBytes is the cumulative transaction-modified bytes the GC
	// scanned (the reduction ratio's denominator).
	GCModifiedBytes() int64
	// GCMigratedBytes is the cumulative bytes actually written back to the
	// home region after coalescing.
	GCMigratedBytes() int64
	// DataReduction is the fraction of modified bytes that coalescing
	// avoided re-writing home, in [0, 1).
	DataReduction() float64
}

// RecoveryScanner is implemented by out-of-place schemes whose durable log
// region can be synthetically filled and then scanned back — the machinery
// behind the paper's Figure 11 recovery experiment and the hooprecover
// demo.
type RecoveryScanner interface {
	// SyntheticFill populates the scheme's durable out-of-place region
	// with numTxs committed but un-migrated transactions of wordsPerTx
	// word-updates each, drawn from addrSpace home bytes with the given
	// PRNG seed. It returns the bytes written and is durable: a subsequent
	// Crash + recovery replays it.
	SyntheticFill(numTxs, wordsPerTx int, addrSpace uint64, seed uint64) (int64, error)
	// RecoverWithReport runs recovery with the given thread count and
	// returns the detailed accounting of what the pass found and did.
	RecoverWithReport(threads int) (RecoveryReport, error)
	// PendingCommits reports committed-but-unmigrated transactions.
	PendingCommits() int
}

// RecoveryReport describes what a recovery pass found and did.
type RecoveryReport struct {
	CommittedTxs   int   // commit records replayed (seq > watermark)
	SlicesScanned  int   // data memory slices walked
	WordsRecovered int   // distinct home words written back
	ScanBytes      int64 // total bytes read during the pass
	ApplyBytes     int64 // total bytes written during the pass
	Threads        int
	ModeledTime    sim.Duration
}
