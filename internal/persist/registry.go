package persist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory constructs one scheme instance. opt carries scheme-specific
// construction options (e.g. hoop.Config for "HOOP"); factories must accept
// a nil opt and fall back to their package defaults, and should reject
// options of an unexpected type with an error rather than ignore them.
type Factory func(ctx Context, opt any) (Scheme, error)

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register makes a scheme constructible by name through Build. Each scheme
// package registers itself from init(), so importing a scheme package (the
// engine blank-imports all built-ins) is all it takes to plug it in — the
// engine has no per-scheme construction code. Register panics on an empty
// name, a nil factory, or a duplicate registration: all three are
// programming errors that should fail at process start, not at run time.
func Register(name string, f Factory) {
	if name == "" {
		panic("persist: Register with empty scheme name")
	}
	if f == nil {
		panic("persist: Register " + name + " with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic("persist: scheme " + name + " registered twice")
	}
	registry.m[name] = f
}

// Build constructs the named scheme over ctx, passing opt through to the
// scheme's registered factory. It fails with the list of registered names
// when the scheme is unknown.
func Build(ctx Context, name string, opt any) (Scheme, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("persist: unknown scheme %q (registered: %s)",
			name, strings.Join(Registered(), ", "))
	}
	s, err := f(ctx, opt)
	if err != nil {
		return nil, fmt.Errorf("persist: build %s: %w", name, err)
	}
	return s, nil
}

// Registered reports every registered scheme name in sorted order.
func Registered() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
