package persist

import (
	"bytes"
	"testing"
	"testing/quick"

	"hoop/internal/mem"
)

func TestTxnAllocatorMonotone(t *testing.T) {
	var a TxnAllocator
	if a.Current() != 0 {
		t.Fatal("zero value must start at 0")
	}
	first := a.Next()
	if first != 1 {
		t.Fatalf("first ID = %d, want 1 (0 means no transaction)", first)
	}
	prev := first
	for i := 0; i < 100; i++ {
		id := a.Next()
		if id <= prev {
			t.Fatal("IDs must be strictly increasing")
		}
		prev = id
	}
	a.Reset(500)
	if a.Next() != 501 {
		t.Fatal("Reset must continue above the given ID")
	}
}

func TestWordsOfRoundtrip(t *testing.T) {
	f := func(raw []byte, base uint32) bool {
		n := (len(raw) / mem.WordSize) * mem.WordSize
		if n == 0 {
			return true
		}
		data := raw[:n]
		addr := mem.PAddr(base) &^ 7
		ws := WordsOf(addr, data)
		if len(ws) != n/mem.WordSize {
			return false
		}
		var rebuilt []byte
		for i, w := range ws {
			if w.Addr != addr+mem.PAddr(i*mem.WordSize) {
				return false
			}
			rebuilt = append(rebuilt, w.Val[:]...)
		}
		return bytes.Equal(rebuilt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWordsOfRejectsMisalignment(t *testing.T) {
	for _, c := range []struct {
		addr mem.PAddr
		n    int
	}{{1, 8}, {8, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WordsOf(%v, %d bytes) must panic", c.addr, c.n)
				}
			}()
			WordsOf(c.addr, make([]byte, c.n))
		}()
	}
}
