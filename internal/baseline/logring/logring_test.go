package logring

import (
	"bytes"
	"testing"

	"hoop/internal/mem"
)

func newRing(t *testing.T, regionBytes uint64, payload int) (*Ring, *mem.Store) {
	t.Helper()
	st := mem.NewStore()
	r, err := New(mem.Region{Base: 4096, Size: regionBytes}, payload)
	if err != nil {
		t.Fatal(err)
	}
	return r, st
}

func TestAppendScanRoundtrip(t *testing.T) {
	r, st := newRing(t, 1<<16, 24)
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i + 1)}, 24)
		seq, _ := r.Append(st, p)
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d", seq)
		}
		want = append(want, p)
	}
	var got [][]byte
	r.Scan(st, func(seq uint64, at mem.PAddr, payload []byte) {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		got = append(got, cp)
	})
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestTruncateHidesRecords(t *testing.T) {
	r, st := newRing(t, 1<<16, 16)
	for i := 0; i < 10; i++ {
		r.Append(st, make([]byte, 16))
	}
	r.Truncate(st, 7)
	if r.Live() != 3 {
		t.Fatalf("Live = %d", r.Live())
	}
	n := 0
	r.Scan(st, func(seq uint64, _ mem.PAddr, _ []byte) {
		if seq <= 7 {
			t.Fatalf("truncated record %d visible", seq)
		}
		n++
	})
	if n != 3 {
		t.Fatalf("scanned %d, want 3", n)
	}
}

func TestWrapAround(t *testing.T) {
	r, st := newRing(t, mem.LineSize+10*24, 16) // capacity 10
	if r.Capacity() != 10 {
		t.Fatalf("capacity = %d", r.Capacity())
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			p := make([]byte, 16)
			p[0] = byte(round)
			r.Append(st, p)
		}
		if !r.Full() {
			t.Fatal("ring should be full")
		}
		r.Truncate(st, r.NextSeq()-1)
	}
	// After full truncation nothing is live.
	n := 0
	r.Scan(st, func(uint64, mem.PAddr, []byte) { n++ })
	if n != 0 {
		t.Fatalf("scanned %d after truncate-all", n)
	}
}

func TestResetVolatileAfterCrash(t *testing.T) {
	r, st := newRing(t, 1<<16, 16)
	for i := 0; i < 5; i++ {
		r.Append(st, make([]byte, 16))
	}
	r.Truncate(st, 2)
	// "Crash": rebuild a fresh ring over the same region and recover
	// cursors from durable state.
	r2, err := New(mem.Region{Base: 4096, Size: 1 << 16}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r2.ResetVolatile(st)
	if r2.NextSeq() != 6 || r2.Watermark() != 2 {
		t.Fatalf("recovered nextSeq=%d wm=%d", r2.NextSeq(), r2.Watermark())
	}
	n := 0
	r2.Scan(st, func(uint64, mem.PAddr, []byte) { n++ })
	if n != 3 {
		t.Fatalf("recovered %d live records, want 3", n)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(mem.Region{Base: 0, Size: 64}, 128); err == nil {
		t.Fatal("too-small region must fail")
	}
	r, st := newRing(t, 1<<12, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong payload size must panic")
		}
	}()
	r.Append(st, make([]byte, 8))
}
