// Package logring provides the durable fixed-record log ring shared by the
// logging-style baselines (Opt-Undo, Opt-Redo, LSM): sequence-numbered
// records in a circular NVM region, plus a durable truncation watermark so
// recovery can tell live records from recycled slots after wrap-around.
package logring

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/mem"
)

// headerSize prefixes every record with its 8-byte sequence number.
const headerSize = 8

const watermarkMagic = 0x4C4F4752 // "LOGR"

// Ring is a durable circular log of fixed-size records. All bookkeeping
// except the watermark is volatile; recovery reconstructs the live set by
// scanning the region.
type Ring struct {
	wmAddr    mem.PAddr
	base      mem.PAddr
	recSize   int // payload size; the stored record is headerSize larger
	capacity  uint64
	nextSeq   uint64
	watermark uint64
}

// New lays a ring with payloadSize-byte records over region. The first
// cache line of the region holds the truncation watermark.
func New(region mem.Region, payloadSize int) (*Ring, error) {
	rec := payloadSize + headerSize
	if uint64(rec+mem.LineSize) > region.Size {
		return nil, fmt.Errorf("logring: region %v too small for %d-byte records", region, payloadSize)
	}
	capacity := (region.Size - mem.LineSize) / uint64(rec)
	return &Ring{
		wmAddr:   region.Base,
		base:     region.Base + mem.LineSize,
		recSize:  payloadSize,
		capacity: capacity,
		nextSeq:  1,
	}, nil
}

// RecordBytes is the durable size of one record including its header.
func (r *Ring) RecordBytes() int { return r.recSize + headerSize }

// Capacity reports how many records fit.
func (r *Ring) Capacity() uint64 { return r.capacity }

// Live reports the number of un-truncated records.
func (r *Ring) Live() uint64 { return r.nextSeq - 1 - r.watermark }

// Full reports whether appending would overwrite a live record.
func (r *Ring) Full() bool { return r.Live() >= r.capacity }

// NextSeq reports the sequence number the next Append will use.
func (r *Ring) NextSeq() uint64 { return r.nextSeq }

// Watermark reports the volatile view of the truncation point.
func (r *Ring) Watermark() uint64 { return r.watermark }

func (r *Ring) addr(seq uint64) mem.PAddr {
	return r.base + mem.PAddr(((seq-1)%r.capacity)*uint64(r.RecordBytes()))
}

// Append durably writes payload as the next record, returning its sequence
// number and NVM address. The caller is responsible for the timing/traffic
// accounting (via memctrl) and for not appending when Full.
func (r *Ring) Append(store *mem.Store, payload []byte) (seq uint64, at mem.PAddr) {
	if len(payload) != r.recSize {
		panic(fmt.Sprintf("logring: payload %d bytes, want %d", len(payload), r.recSize))
	}
	if r.Full() {
		panic("logring: append to full ring (caller must truncate first)")
	}
	seq = r.nextSeq
	r.nextSeq++
	at = r.addr(seq)
	// Payload first, 8-byte sequence header last: the header is the single
	// atomic persist unit that makes the record valid. A crash anywhere
	// mid-payload leaves the slot carrying its previous header (zero, or a
	// sequence at or below the watermark), so Scan never surfaces a torn
	// record.
	store.Write(at+headerSize, payload)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[:], seq)
	store.Write(at, hdr[:])
	return seq, at
}

// Truncate durably advances the watermark to seq: records at or below it
// are dead and their slots may be reused.
func (r *Ring) Truncate(store *mem.Store, seq uint64) {
	if seq < r.watermark {
		return
	}
	var b [mem.LineSize]byte
	binary.LittleEndian.PutUint32(b[0:], watermarkMagic)
	binary.LittleEndian.PutUint64(b[8:], seq)
	store.Write(r.wmAddr, b[:])
	r.watermark = seq
}

// WatermarkAddr reports where the watermark line lives (for traffic
// accounting of Truncate writes).
func (r *Ring) WatermarkAddr() mem.PAddr { return r.wmAddr }

// Scan reads every live record (watermark < seq < nextSeq as found on the
// device) in sequence order and calls fn with its payload. It is used by
// recovery, so it trusts only durable state: the watermark line and the
// per-record sequence headers.
func (r *Ring) Scan(store *mem.Store, fn func(seq uint64, at mem.PAddr, payload []byte)) {
	wm := r.readWatermark(store)
	type liveRec struct {
		seq uint64
		at  mem.PAddr
	}
	var live []liveRec
	buf := make([]byte, headerSize)
	for i := uint64(0); i < r.capacity; i++ {
		at := r.base + mem.PAddr(i*uint64(r.RecordBytes()))
		store.Read(at, buf)
		seq := binary.LittleEndian.Uint64(buf)
		if seq == 0 || seq <= wm {
			continue
		}
		live = append(live, liveRec{seq: seq, at: at})
	}
	// Insertion sort by seq (live sets are small relative to capacity and
	// nearly sorted already).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].seq > live[j].seq; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	payload := make([]byte, r.recSize)
	for _, rec := range live {
		store.Read(rec.at+headerSize, payload)
		fn(rec.seq, rec.at, payload)
	}
}

// readWatermark parses the durable watermark (zero if never written).
func (r *Ring) readWatermark(store *mem.Store) uint64 {
	var b [mem.LineSize]byte
	store.Read(r.wmAddr, b[:])
	if binary.LittleEndian.Uint32(b[0:]) != watermarkMagic {
		return 0
	}
	return binary.LittleEndian.Uint64(b[8:])
}

// ResetVolatile rebuilds the volatile cursors from durable state after a
// crash: nextSeq continues above the highest live sequence found.
func (r *Ring) ResetVolatile(store *mem.Store) {
	wm := r.readWatermark(store)
	maxSeq := wm
	buf := make([]byte, headerSize)
	for i := uint64(0); i < r.capacity; i++ {
		at := r.base + mem.PAddr(i*uint64(r.RecordBytes()))
		store.Read(at, buf)
		if seq := binary.LittleEndian.Uint64(buf); seq > maxSeq {
			maxSeq = seq
		}
	}
	r.watermark = wm
	r.nextSeq = maxSeq + 1
}
