// Package lad implements the LAD comparison point (Gupta et al., "Distributed
// Logless Atomic Durability with Persistent Memory", MICRO'19 [16]): a
// transaction's updates are held in the memory controller's queues — which
// sit inside the persistence domain — until Tx_end, then committed to NVM
// in place at cache-line granularity, with no log at all.
//
// Because commit transfers and persists whole cache lines (no word-level
// packing) and nothing coalesces across transactions, LAD writes more NVM
// bytes than HOOP on sparse-update workloads, and its commit must move every
// dirty line through the controller before acknowledging — the two effects
// the paper measures in Figures 7–8.
package lad

import (
	"fmt"
	"slices"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

// Timing constants.
const (
	// perLineTransfer is the cache-controller to memory-controller
	// transfer cost per dirty line at commit: the line is flushed from
	// the cache hierarchy and acknowledged by the controller queue
	// (§III-I: "waits for all outstanding flushes to be acknowledged").
	perLineTransfer = 30 * sim.Nanosecond
	// commitRound is the prepare/commit handshake between the cache
	// controller and the memory controller (§III-I describes the
	// two-phase protocol; a single controller still pays one round).
	commitRound = 120 * sim.Nanosecond
	// queueCapLines bounds how many distinct lines the persistent
	// controller queue can buffer per core. Transactions larger than
	// this spill lines to an NVM staging area eagerly — and must write
	// them again if re-dirtied — which is where LAD's line-granularity
	// buffering loses to HOOP's packed slices on large transactions.
	queueCapLines = 64
)

// Scheme is the logless atomic-durability baseline.
type Scheme struct {
	ctx   persist.Context
	alloc persist.TxnAllocator
	// Per-core transaction write sets (line-granular), modelling the
	// controller queue contents; epoch-cleared per transaction.
	txLines  []u64map.Set
	spillCnt []int

	// lineScratch is the reused commit-time sort buffer.
	lineScratch []uint64

	statTxCommitted *sim.Counter
}

// New builds the LAD scheme.
func New(ctx persist.Context) *Scheme {
	return &Scheme{
		ctx:             ctx,
		txLines:         make([]u64map.Set, ctx.Cores),
		spillCnt:        make([]int, ctx.Cores),
		statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
	}
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "LAD"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		if opt != nil {
			return nil, fmt.Errorf("lad: scheme takes no options, got %T", opt)
		}
		return New(ctx), nil
	})
}

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Properties implements persist.Scheme.
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "Low", OnCriticalPath: true, NeedFlushFence: false, WriteTraffic: "Medium"}
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	s.txLines[core].Clear()
	return s.alloc.Next(), now
}

// Store implements persist.Scheme: the update is captured in the
// controller queue. When the queue is full, the oldest buffered line
// spills to the NVM staging area (one posted line write); if that line is
// dirtied again it will be written again.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	set := &s.txLines[core]
	end := addr + mem.PAddr(len(val))
	for a := mem.LineAddr(addr); a < end; a += mem.LineSize {
		line := mem.LineIndex(a)
		if set.Contains(line) {
			continue
		}
		if set.Len() >= queueCapLines {
			// Spill one buffered line to the staging area. The spill
			// target cycles through a per-core staging stripe.
			spill := s.ctx.Layout.OOP.Base + mem.PAddr(core*queueCapLines*mem.LineSize) +
				mem.PAddr((s.spillCnt[core]%queueCapLines)*mem.LineSize)
			s.spillCnt[core]++
			s.ctx.Ctrl.PostWrite(core, spill, mem.LineSize, now)
			// LAD has no log; the staging spill is its only out-of-place
			// write, so it reports as the scheme's log traffic.
			if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
				s.ctx.Tel.Emit(telemetry.Event{
					Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
					Tx: uint64(tx), Addr: spill, Bytes: mem.LineSize,
				})
			}
		}
		set.Add(line)
	}
	return now
}

// TxEnd implements persist.Scheme: every dirty line is transferred to the
// controller, written to its home address, and the commit handshake
// completes. The queue is in the persistence domain, so the transaction is
// durable once the handshake finishes; the NVM writes drain as posted
// writes.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	lines := s.txLines[core].Keys(s.lineScratch[:0])
	s.lineScratch = lines
	slices.Sort(lines)
	var buf [mem.LineSize]byte
	// The controller queues sit inside the persistence domain: once the
	// commit handshake accepts the line set, the hardware drains it to NVM
	// all-or-nothing even across power failure. The atomic-persist bracket
	// tells the crash-point journal exactly that — LAD's atomicity is a
	// hardware property, not a software ordering.
	s.ctx.Dev.BeginAtomicPersist()
	for _, l := range lines {
		lineAddr := mem.PAddr(l << mem.LineShift)
		s.ctx.View.Read(lineAddr, buf[:])
		s.ctx.Dev.Store().Write(lineAddr, buf[:])
		s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
		now += perLineTransfer
	}
	s.ctx.Dev.EndAtomicPersist()
	if len(lines) > 0 {
		// §IV-C: LAD "still persists data at cache-line granularity upon
		// transaction commits" — the commit acknowledgment waits for the
		// queued lines to drain to NVM.
		now = s.ctx.Ctrl.Drain(core, now)
		now += commitRound
	}
	s.txLines[core].Clear()
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme: the controller queue simply discards
// the buffered lines. Spilled staging lines are dead garbage — nothing
// points at the staging stripe until the commit handshake, which never
// happens for an aborted transaction.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	s.txLines[core].Clear()
	return now
}

// ReadMiss implements persist.Scheme: reads are served from the home
// region (the controller forwards from its queue when it holds a newer
// copy, at no extra cost in this model).
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme. Transactional lines are absorbed by the
// controller queue (already captured at store time); other dirty lines
// write back in place.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	if ev.Persistent {
		return now
	}
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme.
func (s *Scheme) Tick(now sim.Time) {}

// Crash implements persist.Scheme: in-flight (uncommitted) queue contents
// are discarded at recovery, which is trivially correct because their data
// never reached the home region.
func (s *Scheme) Crash() {
	for i := range s.txLines {
		s.txLines[i].Clear()
	}
	s.ctx.Ctrl.ResetPending()
}

// Recover implements persist.Scheme: the home region is always
// transactionally consistent (commits apply atomically from the persistent
// controller queue), so recovery is a fixed small cost.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	return 2 * sim.Millisecond, nil
}
