// Package undo implements the Opt-Undo comparison point, modeled on ATOM
// (Joshi et al., HPCA'17 [24]): hardware undo logging in the memory
// controller. Before a transaction's first update to a cache line, the
// controller reads the line's pre-transaction image and durably appends it
// to the undo log; only then may the new data proceed. The strict
// log-before-data persist ordering sits on the critical path of every
// first-touch store (Figure 4a), and commit must force the transaction's
// dirty lines to NVM (undo logging is a FORCE policy), which is why
// Opt-Undo shows both long critical paths and roughly doubled write
// traffic in the paper's evaluation.
package undo

import (
	"encoding/binary"
	"fmt"
	"slices"

	"hoop/internal/baseline/logring"
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

// Record payload: [flags|txid u64][home line addr u64][64-byte old image].
// abortFlag marks a *completed* abort: the old images were already restored
// to their home addresses in the foreground, so recovery must not roll the
// transaction back again (later committed data may since have overwritten
// those lines). A crash mid-abort leaves no marker and recovery rolls back
// from the log as for any uncommitted transaction — the restores are
// idempotent re-applications of the same old images.
const (
	payloadSize = 8 + 8 + mem.LineSize
	commitFlag  = uint64(1) << 63
	abortFlag   = uint64(1) << 62
)

// Accounted traffic sizes: an undo log entry carries the 64-byte old image
// plus an 8-byte address; a commit record is a 16-byte marker.
const (
	entryTraffic  = mem.LineSize + 8
	commitTraffic = 16
)

// Scheme is the hardware undo-logging baseline.
type Scheme struct {
	ctx   persist.Context
	alloc persist.TxnAllocator
	ring  *logring.Ring

	// Per-core live-transaction state.
	logged   []u64map.Set // lines already undo-logged this tx (epoch-cleared)
	dirty    [][]uint64   // line order for the commit-time force
	firstSeq []uint64     // first log record of the live tx (truncation bound)

	statTxCommitted *sim.Counter
}

// New builds the scheme; the undo log occupies the layout's OOP region.
func New(ctx persist.Context) (*Scheme, error) {
	ring, err := logring.New(ctx.Layout.OOP, payloadSize)
	if err != nil {
		return nil, fmt.Errorf("undo: %w", err)
	}
	return &Scheme{
		ctx:             ctx,
		ring:            ring,
		logged:          make([]u64map.Set, ctx.Cores),
		dirty:           make([][]uint64, ctx.Cores),
		firstSeq:        make([]uint64, ctx.Cores),
		statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
	}, nil
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "Opt-Undo"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		if opt != nil {
			return nil, fmt.Errorf("undo: scheme takes no options, got %T", opt)
		}
		return New(ctx)
	})
}

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Properties implements persist.Scheme (Table I, ATOM row).
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "Low", OnCriticalPath: true, NeedFlushFence: false, WriteTraffic: "Medium"}
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	tx := s.alloc.Next()
	s.logged[core].Clear()
	s.dirty[core] = s.dirty[core][:0]
	s.firstSeq[core] = 0
	return tx, now
}

// mcQueueCost is the per-first-touch cost of enqueueing the log-before-
// data ordering dependency in the controller (ATOM's hardware mechanism
// removes the flush from software but the dependency still serializes the
// store against the log-entry enqueue).
const mcQueueCost = 15 * sim.Nanosecond

// Store implements persist.Scheme: on the first touch of each line, the
// controller reads the old image and appends the undo record. ATOM posts
// both (the core does not stall for the NVM write), but the ordering
// dependency costs queue occupancy on the critical path, and the commit
// must later drain every log write before the data force.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	end := addr + mem.PAddr(len(val))
	for a := mem.LineAddr(addr); a < end; a += mem.LineSize {
		line := mem.LineIndex(a)
		if !s.logged[core].Add(line) {
			continue
		}
		s.dirty[core] = append(s.dirty[core], line)
		lineAddr := mem.PAddr(line << mem.LineShift)

		// Fetch the pre-transaction image. The engine applies each store
		// to View after this hook, so View still holds it.
		var old [mem.LineSize]byte
		s.ctx.View.Read(lineAddr, old[:])

		if s.ring.Full() {
			s.truncate(now)
			if s.ring.Full() {
				panic("undo: log ring full with live transactions (increase log region)")
			}
		}
		var payload [payloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:], uint64(tx))
		binary.LittleEndian.PutUint64(payload[8:], uint64(lineAddr))
		copy(payload[16:], old[:])
		seq, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
		if s.firstSeq[core] == 0 {
			s.firstSeq[core] = seq
		}
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: entryTraffic,
			})
		}

		// Log-before-data ordering enforced in the controller: the old-
		// image read and log write are posted back-to-back on the core's
		// agent (Drain at commit waits for them); the core itself only
		// pays the queue-occupancy cost.
		rd := s.ctx.Ctrl.Read(lineAddr, mem.LineSize, now)
		s.ctx.Ctrl.PostWrite(core, at, entryTraffic, rd)
		now += mcQueueCost
	}
	return now
}

// TxEnd implements persist.Scheme: force every dirty line to its home
// address (undo logging requires committed data to be durable), then
// persist the commit marker and truncate.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	// Sorting the dirty list in place is fine: it is reset before reuse.
	lines := s.dirty[core]
	slices.Sort(lines)
	var buf [mem.LineSize]byte
	for _, l := range lines {
		lineAddr := mem.PAddr(l << mem.LineShift)
		s.ctx.Hier.FlushLine(lineAddr, false)
		s.ctx.View.Read(lineAddr, buf[:])
		s.ctx.Dev.Store().Write(lineAddr, buf[:])
		s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	}
	if len(lines) > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		if s.ring.Full() {
			s.truncate(now)
		}
		var payload [payloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:], uint64(tx)|commitFlag)
		_, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
		now = s.ctx.Ctrl.Write(at, commitTraffic, now)
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: commitTraffic,
			})
		}
	}
	s.logged[core].Clear()
	s.dirty[core] = s.dirty[core][:0]
	s.firstSeq[core] = 0
	s.truncate(now)
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme. Undo logging is a STEAL policy:
// uncommitted data may already sit in the home region (mid-transaction
// evictions write in place), so the abort must actively restore the
// pre-transaction images — the engine has already rolled the View back, so
// the dirty lines are read from it exactly as TxEnd reads committed ones.
// Once every restore is drained, an abort marker retires the transaction
// in the log; see the abortFlag comment for the crash-timing argument.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	lines := s.dirty[core]
	slices.Sort(lines)
	var buf [mem.LineSize]byte
	for _, l := range lines {
		lineAddr := mem.PAddr(l << mem.LineShift)
		s.ctx.Hier.FlushLine(lineAddr, false)
		s.ctx.View.Read(lineAddr, buf[:])
		s.ctx.Dev.Store().Write(lineAddr, buf[:])
		s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	}
	if len(lines) > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		if s.ring.Full() {
			s.truncate(now)
		}
		var payload [payloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:], uint64(tx)|abortFlag)
		_, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
		now = s.ctx.Ctrl.Write(at, commitTraffic, now)
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: commitTraffic,
			})
		}
	}
	s.logged[core].Clear()
	s.dirty[core] = s.dirty[core][:0]
	s.firstSeq[core] = 0
	s.truncate(now)
	return now
}

// truncate advances the log watermark past every record not needed by a
// still-live transaction (committed transactions' records are dead the
// moment their data is forced).
func (s *Scheme) truncate(now sim.Time) {
	bound := s.ring.NextSeq() - 1
	for core := range s.firstSeq {
		if s.firstSeq[core] != 0 && s.firstSeq[core]-1 < bound {
			bound = s.firstSeq[core] - 1
		}
	}
	if bound > s.ring.Watermark() {
		retired := int64(bound - s.ring.Watermark())
		s.ring.Truncate(s.ctx.Dev.Store(), bound)
		s.ctx.Ctrl.PostWrite(s.ctx.Cores, s.ring.WatermarkAddr(), mem.LineSize, now)
		// Log truncation is this scheme's cleanup epoch: it retires dead
		// undo records, the analogue of HOOP's GC advancing its watermark.
		if s.ctx.Tel.Enabled(telemetry.KindGCStart) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindGCStart, Time: now, Core: -1, Aux: retired,
			})
		}
		if s.ctx.Tel.Enabled(telemetry.KindGCEnd) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindGCEnd, Time: now, Core: -1,
				Bytes: retired * int64(s.ring.RecordBytes()), Aux: retired,
			})
		}
	}
}

// ReadMiss implements persist.Scheme: data lives in place, so misses read
// the home region.
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme. Undo logging is a STEAL policy: an
// uncommitted dirty line may be written in place because its old image is
// already in the log.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme.
func (s *Scheme) Tick(now sim.Time) {}

// Crash implements persist.Scheme.
func (s *Scheme) Crash() {
	for i := range s.logged {
		s.logged[i].Clear()
		s.dirty[i] = s.dirty[i][:0]
		s.firstSeq[i] = 0
	}
	s.ctx.Ctrl.ResetPending()
}

// Recover implements persist.Scheme: scan the live log, roll back every
// transaction without a commit marker by re-applying old images in reverse
// log order.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	store := s.ctx.Dev.Store()
	s.ring.ResetVolatile(store)
	type entry struct {
		seq  uint64
		tx   uint64
		addr mem.PAddr
		old  [mem.LineSize]byte
	}
	var entries []entry
	committed := make(map[uint64]struct{})
	var scanned int64
	s.ring.Scan(store, func(seq uint64, at mem.PAddr, payload []byte) {
		scanned += int64(s.ring.RecordBytes())
		word := binary.LittleEndian.Uint64(payload[0:])
		if word&(commitFlag|abortFlag) != 0 {
			// Commit and completed-abort markers both mean "do not roll this
			// transaction back": commit because the new data is durable,
			// abort because the old images were already restored in the
			// foreground.
			committed[word&^(commitFlag|abortFlag)] = struct{}{}
			return
		}
		var e entry
		e.seq = seq
		e.tx = word
		e.addr = mem.PAddr(binary.LittleEndian.Uint64(payload[8:]))
		copy(e.old[:], payload[16:])
		entries = append(entries, e)
	})
	var undone int64
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if _, ok := committed[e.tx]; ok {
			continue
		}
		store.Write(e.addr, e.old[:])
		undone += mem.LineSize
	}
	s.ring.Truncate(store, s.ring.NextSeq()-1)
	bw := s.ctx.Dev.Params().Bandwidth
	modeled := sim.Duration(1*sim.Millisecond) +
		sim.Duration((scanned+undone)*int64(sim.Second)/bw)
	return modeled, nil
}
