// Package redo implements the Opt-Redo comparison point, modeled on WrAP
// (Doshi et al., HPCA'16 [13]): hardware redo logging with asynchronous
// data checkpointing, log truncation, and combining. A transaction's dirty
// lines are streamed to the redo log at commit ("one flush for the redo
// logs"), each entry occupying two cache lines — the data line plus a
// metadata line — which is what makes Opt-Redo the most bandwidth-hungry
// scheme in Figure 8 even though its critical path is shorter than undo
// logging's. A background checkpointer later applies committed values in
// place and truncates the log.
package redo

import (
	"encoding/binary"
	"fmt"
	"slices"

	"hoop/internal/baseline/logring"
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

// Record payload: [flags|txid u64][home line addr u64][64-byte new image].
const (
	payloadSize = 8 + 8 + mem.LineSize
	commitFlag  = uint64(1) << 63
)

// Accounted traffic: a redo entry is two cache lines (data + metadata); a
// commit record is a 16-byte marker; a checkpoint write is one line.
const (
	entryTraffic  = 2 * mem.LineSize
	commitTraffic = 16
)

// checkpointBatch bounds how many lines the background checkpointer applies
// per Tick, so checkpoint traffic spreads over time instead of arriving in
// bursts.
const checkpointBatch = 256

// Scheme is the hardware redo-logging baseline.
type Scheme struct {
	ctx   persist.Context
	alloc persist.TxnAllocator
	ring  *logring.Ring

	// Per-core live transaction write sets, epoch-cleared per transaction.
	txLines []u64map.Set

	// redirect points reads of not-yet-checkpointed lines at their newest
	// log entry (WrAP's victim/redirect path).
	redirect u64map.Map[mem.PAddr]

	// ckptQueue holds committed line images awaiting in-place apply, in
	// commit order. ckptSeq tracks the log records made dead by completed
	// checkpoints.
	ckptQueue []ckptItem
	ckptAgent int

	// Reused scratch state so steady-state commits and checkpoint batches
	// perform no allocation.
	lineScratch []uint64
	remain      u64map.Set
	stale       []uint64

	statTxCommitted *sim.Counter
}

type ckptItem struct {
	line uint64
	seq  uint64
	data [mem.LineSize]byte
}

// New builds the scheme; the redo log occupies the layout's OOP region.
func New(ctx persist.Context) (*Scheme, error) {
	ring, err := logring.New(ctx.Layout.OOP, payloadSize)
	if err != nil {
		return nil, fmt.Errorf("redo: %w", err)
	}
	return &Scheme{
		ctx:             ctx,
		ring:            ring,
		txLines:         make([]u64map.Set, ctx.Cores),
		ckptAgent:       ctx.Cores + 1,
		statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
	}, nil
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "Opt-Redo"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		if opt != nil {
			return nil, fmt.Errorf("redo: scheme takes no options, got %T", opt)
		}
		return New(ctx)
	})
}

var _ persist.Quiescer = (*Scheme)(nil)

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Quiesce implements persist.Quiescer: drain the whole checkpoint queue so
// a measurement window closes with the deferred truncation traffic
// accounted.
func (s *Scheme) Quiesce(now sim.Time) { s.forceCheckpoint(now) }

// Properties implements persist.Scheme (Table I, WrAP row).
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "High", OnCriticalPath: true, NeedFlushFence: false, WriteTraffic: "High"}
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	s.txLines[core].Clear()
	return s.alloc.Next(), now
}

// Store implements persist.Scheme: updates run at cache speed; the write
// set is tracked for the commit-time log flush.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	end := addr + mem.PAddr(len(val))
	for a := mem.LineAddr(addr); a < end; a += mem.LineSize {
		s.txLines[core].Add(mem.LineIndex(a))
	}
	return now
}

// TxEnd implements persist.Scheme: stream one two-line redo entry per dirty
// line, drain, then persist the commit marker. Checkpointing is deferred.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	lines := s.txLines[core].Keys(s.lineScratch[:0])
	s.lineScratch = lines
	slices.Sort(lines)
	var buf [mem.LineSize]byte
	for _, l := range lines {
		lineAddr := mem.PAddr(l << mem.LineShift)
		s.ctx.View.Read(lineAddr, buf[:])
		if s.ring.Full() {
			now = s.forceCheckpoint(now)
		}
		var payload [payloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:], uint64(tx))
		binary.LittleEndian.PutUint64(payload[8:], uint64(lineAddr))
		copy(payload[16:], buf[:])
		seq, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
		s.ctx.Ctrl.PostWrite(core, at, entryTraffic, now)
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: entryTraffic,
			})
		}
		s.redirect.Put(l, at)
		var item ckptItem
		item.line = l
		item.seq = seq
		copy(item.data[:], buf[:])
		s.ckptQueue = append(s.ckptQueue, item)
	}
	if len(lines) > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		if s.ring.Full() {
			now = s.forceCheckpoint(now)
		}
		var payload [payloadSize]byte
		binary.LittleEndian.PutUint64(payload[0:], uint64(tx)|commitFlag)
		_, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
		now = s.ctx.Ctrl.Write(at, commitTraffic, now)
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: commitTraffic,
			})
		}
	}
	s.txLines[core].Clear()
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme. Redo logging does all durable work at
// commit, so an abort only drops the volatile write set — nothing reached
// the log, and Evict already withholds transactional lines from home.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	s.txLines[core].Clear()
	return now
}

// ReadMiss implements persist.Scheme: a miss on a line whose newest value
// is still only in the log is redirected there.
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	line := mem.LineIndex(addr)
	if at, ok := s.redirect.Get(line); ok {
		return s.ctx.Ctrl.Read(at, mem.LineSize, now), false
	}
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme. Transactional lines must not reach the
// home region before their redo entries (in-place update is deferred), so
// they are dropped; committed values reach home via the checkpointer.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	if ev.Persistent {
		return now
	}
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme: run a bounded slice of background
// checkpointing.
func (s *Scheme) Tick(now sim.Time) {
	s.checkpoint(now, checkpointBatch, false)
}

// forceCheckpoint drains the whole checkpoint queue synchronously (log
// ring full): truncation moves onto the critical path.
func (s *Scheme) forceCheckpoint(now sim.Time) sim.Time {
	return s.checkpoint(now, len(s.ckptQueue), true)
}

// checkpoint applies up to n committed line images in place and truncates
// the log past them. A checkpoint batch is this scheme's cleanup epoch, so
// it brackets the work with GC start/end events; onDemand marks batches
// forced by a full log ring (truncation on the critical path).
func (s *Scheme) checkpoint(now sim.Time, n int, onDemand bool) sim.Time {
	if n > len(s.ckptQueue) {
		n = len(s.ckptQueue)
	}
	if n == 0 {
		return now
	}
	if s.ctx.Tel.Enabled(telemetry.KindGCStart) {
		var flags uint8
		if onDemand {
			flags = telemetry.FlagOnDemand
		}
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCStart, Time: now, Core: -1,
			Aux: int64(n), Flags: flags,
		})
	}
	// The batch is issued as a burst at the current time; its completion
	// comes from the accumulated queueing (matters when the log ring is
	// full and truncation lands on the critical path).
	arr := now
	done := now
	var maxSeq uint64
	for i := 0; i < n; i++ {
		item := &s.ckptQueue[i]
		lineAddr := mem.PAddr(item.line << mem.LineShift)
		s.ctx.Dev.Store().Write(lineAddr, item.data[:])
		if d := s.ctx.Ctrl.Write(lineAddr, mem.LineSize, arr); d > done {
			done = d
		}
		if item.seq > maxSeq {
			maxSeq = item.seq
		}
	}
	now = done
	// Remove redirects that are now satisfied by the home region: any
	// redirect whose log record is covered by the truncation bound. The
	// remaining-set and the stale list are reused scratch (collect first,
	// delete after — deleting while ranging would disturb the probe chains
	// the iteration is walking).
	s.ckptQueue = append(s.ckptQueue[:0], s.ckptQueue[n:]...)
	s.remain.Clear()
	for i := range s.ckptQueue {
		s.remain.Add(s.ckptQueue[i].line)
	}
	stale := s.stale[:0]
	s.redirect.Range(func(line uint64, _ *mem.PAddr) bool {
		if !s.remain.Contains(line) {
			stale = append(stale, line)
		}
		return true
	})
	s.stale = stale
	for _, line := range stale {
		s.redirect.Delete(line)
	}
	// Truncate: records up to maxSeq are checkpointed. Records of live
	// (uncommitted) transactions never precede maxSeq because entries are
	// only appended at commit.
	if maxSeq > s.ring.Watermark() {
		s.ring.Truncate(s.ctx.Dev.Store(), maxSeq)
		s.ctx.Ctrl.PostWrite(s.ckptAgent, s.ring.WatermarkAddr(), mem.LineSize, now)
	}
	if s.ctx.Tel.Enabled(telemetry.KindGCEnd) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCEnd, Time: now, Core: -1,
			Bytes: int64(n) * mem.LineSize, Aux: int64(n),
		})
	}
	return now
}

// Crash implements persist.Scheme.
func (s *Scheme) Crash() {
	for i := range s.txLines {
		s.txLines[i].Clear()
	}
	s.redirect.Clear()
	s.ckptQueue = s.ckptQueue[:0]
	s.ctx.Ctrl.ResetPending()
}

// Recover implements persist.Scheme: replay committed redo entries in log
// order onto the home region; uncommitted entries are discarded.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	store := s.ctx.Dev.Store()
	s.ring.ResetVolatile(store)
	type entry struct {
		tx   uint64
		addr mem.PAddr
		data [mem.LineSize]byte
	}
	var entries []entry
	committed := make(map[uint64]struct{})
	var scanned int64
	s.ring.Scan(store, func(seq uint64, at mem.PAddr, payload []byte) {
		scanned += int64(s.ring.RecordBytes())
		word := binary.LittleEndian.Uint64(payload[0:])
		if word&commitFlag != 0 {
			committed[word&^commitFlag] = struct{}{}
			return
		}
		var e entry
		e.tx = word
		e.addr = mem.PAddr(binary.LittleEndian.Uint64(payload[8:]))
		copy(e.data[:], payload[16:])
		entries = append(entries, e)
	})
	var applied int64
	for _, e := range entries { // log order: later entries overwrite earlier
		if _, ok := committed[e.tx]; !ok {
			continue
		}
		store.Write(e.addr, e.data[:])
		applied += mem.LineSize
	}
	s.ring.Truncate(store, s.ring.NextSeq()-1)
	bw := s.ctx.Dev.Params().Bandwidth
	modeled := sim.Duration(1*sim.Millisecond) +
		sim.Duration((scanned+applied)*int64(sim.Second)/bw)
	return modeled, nil
}
