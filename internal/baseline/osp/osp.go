// Package osp implements the OSP comparison point, modeled on SSP (Ni et
// al., HotStorage'18/MICRO'19 [38,39]): optimized shadow paging at
// cache-line granularity. Every virtual cache line is backed by two
// physical lines; a transaction writes the inactive copy, eagerly flushes
// it at commit, and atomically flips a durable current-copy bit. The
// commit-time line flushes and the TLB shootdowns needed to keep the
// remapping coherent across cores are the costs the paper measures; page
// consolidation (copying shadow-current lines back to their primary
// locations) adds the scheme's extra write traffic.
package osp

import (
	"fmt"
	"slices"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

// shadowBase maps a home line to its shadow twin: shadow(x) = shadowBase+x.
// The shadow space sits above the simulated DIMM's address range; a real
// SSP pairs lines inside the device, but only the traffic and latency of
// the accesses matter to the evaluation.
const shadowBase mem.PAddr = 1 << 41

// Timing constants.
const (
	// shootdownCost is the TLB-shootdown penalty per committing
	// transaction (IPIs to the other cores plus invalidations).
	shootdownCost = 600 * sim.Nanosecond
	// shootdownPerPage adds cost per additional page remapped.
	shootdownPerPage = 60 * sim.Nanosecond
	// consolidationPeriod is how often shadow-current lines are copied
	// back to their primary location.
	consolidationPeriod = 10 * sim.Millisecond
	// consolidationBatch bounds lines consolidated per pass.
	consolidationBatch = 4096
)

// Commit intent record. A transaction's current-copy flips may span many
// bitmap bytes, and per-line read-modify-writes are not atomic as a group:
// a crash between two flips would expose half a transaction. TxEnd instead
// persists the full set of new bitmap word values as an intent record —
// entries first, then a single 8-byte header (magic+count) whose write is
// the atomic commit point — before applying them to the bitmap. Recovery
// replays a valid intent, making the flip set all-or-nothing.
const (
	intentMagic       = 0x4F535049 // "OSPI"
	intentEntrySize   = 16         // [bitmap word addr u64][new value u64]
	intentMaxEntries  = (mem.PageSize - 8) / intentEntrySize
	intentRegionBytes = mem.PageSize
)

// Scheme is the optimized-shadow-paging baseline.
type Scheme struct {
	ctx   persist.Context
	alloc persist.TxnAllocator

	bitmapBase mem.PAddr
	intentBase mem.PAddr
	txLines    []u64map.Set // per-core write sets, epoch-cleared per tx
	// shadowCur mirrors the durable bitmap: lines whose current copy is
	// the shadow one.
	shadowCur u64map.Set
	// consQ orders shadowCur for consolidation (oldest flip first).
	// Iterating the set directly would tie the consolidation batch to the
	// probe-chain layout; the queue keeps it in flip order.
	consQ     []uint64
	nextCons  sim.Time
	consAgent int

	// Reused commit/consolidation scratch so steady-state transactions
	// perform no allocation.
	lineScratch []uint64
	bitWords    u64map.Map[uint64] // aligned bitmap word addr -> XOR mask
	bwScratch   []uint64
	valScratch  []uint64
	consScratch []uint64

	statTxCommitted *sim.Counter
}

// New builds the scheme. The durable current-copy bitmap occupies the head
// of the layout's OOP region (1 bit per home line), followed by one
// page-aligned page holding the commit intent record.
func New(ctx persist.Context) (*Scheme, error) {
	bitmapEnd := ctx.Layout.OOP.Base + mem.PAddr(ctx.Layout.Home.Lines()/8) + 1
	intentBase := (bitmapEnd + mem.PageSize - 1) &^ (mem.PageSize - 1)
	if uint64(intentBase)+intentRegionBytes > uint64(ctx.Layout.OOP.End()) {
		return nil, fmt.Errorf("osp: OOP region too small for current-copy bitmap (%d bytes) plus intent page",
			bitmapEnd-ctx.Layout.OOP.Base)
	}
	return &Scheme{
		ctx:             ctx,
		bitmapBase:      ctx.Layout.OOP.Base,
		intentBase:      intentBase,
		txLines:         make([]u64map.Set, ctx.Cores),
		nextCons:        consolidationPeriod,
		consAgent:       ctx.Cores + 1,
		statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
	}, nil
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "OSP"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		if opt != nil {
			return nil, fmt.Errorf("osp: scheme takes no options, got %T", opt)
		}
		return New(ctx)
	})
}

var _ persist.Quiescer = (*Scheme)(nil)

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Quiesce implements persist.Quiescer: consolidate every shadow-current
// line so a measurement window closes with the deferred copy traffic
// accounted.
func (s *Scheme) Quiesce(now sim.Time) { s.ForceConsolidate(now) }

// Properties implements persist.Scheme (Table I, SSP row).
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "Low", OnCriticalPath: true, NeedFlushFence: true, WriteTraffic: "Low"}
}

func (s *Scheme) bitAddr(line uint64) (mem.PAddr, byte) {
	return s.bitmapBase + mem.PAddr(line>>3), byte(1 << (line & 7))
}

func (s *Scheme) isShadowCurrent(line uint64) bool {
	return s.shadowCur.Contains(line)
}

// setCurrent durably records which copy of line is current and keeps the
// volatile mirror in sync. It returns the bitmap byte address so callers
// can account the write.
func (s *Scheme) setCurrent(line uint64, shadow bool) mem.PAddr {
	at, mask := s.bitAddr(line)
	var b [1]byte
	s.ctx.Dev.Store().Read(at, b[:])
	if shadow {
		b[0] |= mask
		if s.shadowCur.Add(line) {
			s.consQ = append(s.consQ, line)
		}
	} else {
		b[0] &^= mask
		s.shadowCur.Delete(line)
	}
	s.ctx.Dev.Store().Write(at, b[:])
	return at
}

// toggleVolatile flips line's current copy in the volatile mirror only;
// the durable bitmap change travels through the commit intent record.
func (s *Scheme) toggleVolatile(line uint64) {
	if !s.shadowCur.Delete(line) {
		s.consQ = append(s.consQ, line)
		s.shadowCur.Add(line)
	}
}

// currentAddr returns the physical address of line's current copy.
func (s *Scheme) currentAddr(line uint64) mem.PAddr {
	home := mem.PAddr(line << mem.LineShift)
	if s.isShadowCurrent(line) {
		return shadowBase + home
	}
	return home
}

// inactiveAddr returns the physical address of line's inactive copy.
func (s *Scheme) inactiveAddr(line uint64) mem.PAddr {
	home := mem.PAddr(line << mem.LineShift)
	if s.isShadowCurrent(line) {
		return home
	}
	return shadowBase + home
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	s.txLines[core].Clear()
	return s.alloc.Next(), now
}

// Store implements persist.Scheme: track the write set; data is written at
// commit via copy-on-write to the inactive lines.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	end := addr + mem.PAddr(len(val))
	for a := mem.LineAddr(addr); a < end; a += mem.LineSize {
		s.txLines[core].Add(mem.LineIndex(a))
	}
	return now
}

// TxEnd implements persist.Scheme: eagerly flush each updated line to its
// inactive copy, drain, durably flip the current-copy bits (8-byte bitmap
// words cover 64 lines each), and pay the TLB shootdown for the remapping.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	lines := s.txLines[core].Keys(s.lineScratch[:0])
	s.lineScratch = lines
	slices.Sort(lines)
	var buf [mem.LineSize]byte
	npages := 0
	var lastPage uint64
	for _, l := range lines {
		lineAddr := mem.PAddr(l << mem.LineShift)
		target := s.inactiveAddr(l)
		s.ctx.View.Read(lineAddr, buf[:])
		s.ctx.Dev.Store().Write(target, buf[:])
		s.ctx.Ctrl.PostWrite(core, target, mem.LineSize, now)
		// The eager flush leaves the cached copy clean — its data is
		// durable in the (about-to-be-current) shadow copy.
		s.ctx.Hier.FlushLine(lineAddr, false)
		// 64 lines per 4 KB page; lines are sorted, so distinct pages are
		// exactly the page-index changes.
		if npages == 0 || l>>6 != lastPage {
			npages++
			lastPage = l >> 6
		}
	}
	if len(lines) > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		// Group the flips by aligned 8-byte bitmap word and compute each
		// word's post-image (a flip is a toggle, so an XOR mask per word).
		// Lines are sorted, so the word addresses surface in ascending
		// order and bws needs no separate sort.
		s.bitWords.Clear()
		bws := s.bwScratch[:0]
		for _, l := range lines {
			at, mask := s.bitAddr(l)
			w := at &^ 7
			before := s.bitWords.Len()
			p := s.bitWords.Ref(uint64(w))
			if s.bitWords.Len() != before {
				bws = append(bws, uint64(w))
			}
			*p |= uint64(mask) << (8 * uint(at-w))
			s.toggleVolatile(l)
		}
		s.bwScratch = bws
		if len(bws) > intentMaxEntries {
			panic(fmt.Sprintf("osp: transaction flips %d bitmap words, intent record holds %d", len(bws), intentMaxEntries))
		}
		st := s.ctx.Dev.Store()
		vals := s.valScratch[:0]
		for _, w := range bws {
			xor, _ := s.bitWords.Get(w)
			vals = append(vals, st.ReadWord(mem.PAddr(w))^xor)
		}
		s.valScratch = vals
		// Durable intent: entries first, then the single-unit header that
		// atomically commits the whole flip set; recovery replays it.
		for i, w := range bws {
			ent := s.intentBase + 8 + mem.PAddr(i*intentEntrySize)
			st.WriteWord(ent, w)
			st.WriteWord(ent+8, vals[i])
			s.ctx.Ctrl.PostWrite(core, ent, intentEntrySize, now)
		}
		now = s.ctx.Ctrl.Drain(core, now)
		st.WriteWord(s.intentBase, intentMagic|uint64(len(bws))<<32)
		now = s.ctx.Ctrl.Write(s.intentBase, 8, now)
		// Apply the flips (each word write is atomic; the intent covers
		// the group), then retire the intent.
		for i, w := range bws {
			st.WriteWord(mem.PAddr(w), vals[i])
			now = s.ctx.Ctrl.Write(mem.PAddr(w), 8, now)
		}
		st.WriteWord(s.intentBase, 0)
		s.ctx.Ctrl.PostWrite(core, s.intentBase, 8, now)
		// The intent record is this scheme's commit log: one append per
		// transaction covering the header plus flip entries.
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: s.intentBase,
				Bytes: 8 + int64(len(bws))*intentEntrySize,
			})
		}
		now += shootdownCost + shootdownPerPage*sim.Duration(npages-1)
	}
	s.txLines[core].Clear()
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme. All durable commit work (CoW flushes,
// the intent record, bitmap flips) happens at TxEnd; mid-transaction
// evictions only wrote the *inactive* copies, which stay dead garbage
// because the current-copy bits never flip. Dropping the write set is the
// whole abort.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	s.txLines[core].Clear()
	return now
}

// ReadMiss implements persist.Scheme: read whichever physical copy is
// current (the remapping itself is free — it lives in the TLB).
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	line := mem.LineIndex(addr)
	return s.ctx.Ctrl.Read(s.currentAddr(line), mem.LineSize, now), false
}

// Evict implements persist.Scheme. A transactional line evicted mid-
// transaction performs its copy-on-write early (to the inactive copy);
// other dirty lines write back to the current copy.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	line := mem.LineIndex(ev.Line)
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	target := s.currentAddr(line)
	if ev.Persistent {
		target = s.inactiveAddr(line)
	}
	s.ctx.Dev.Store().Write(target, buf[:])
	s.ctx.Ctrl.PostWrite(core, target, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme: periodic page consolidation copies
// shadow-current lines back to their primary location so that page-level
// operations (and reads of cold data) do not fragment across copies.
func (s *Scheme) Tick(now sim.Time) {
	for s.nextCons <= now {
		s.consolidate(s.nextCons, consolidationBatch)
		s.nextCons += consolidationPeriod
	}
}

// ForceConsolidate runs consolidation over every shadow-current line
// (harness: close a measurement window with the scheme's deferred copy
// traffic accounted).
func (s *Scheme) ForceConsolidate(now sim.Time) {
	for s.shadowCur.Len() > 0 {
		s.consolidate(now, consolidationBatch)
	}
}

func (s *Scheme) consolidate(now sim.Time, batch int) {
	// Pop the oldest still-shadow-current lines; entries flipped back by a
	// later transaction are dropped lazily.
	lines := s.consScratch[:0]
	for len(s.consQ) > 0 && len(lines) < batch {
		l := s.consQ[0]
		s.consQ = s.consQ[1:]
		if s.isShadowCurrent(l) {
			lines = append(lines, l)
		}
	}
	s.consScratch = lines
	slices.Sort(lines)
	if len(lines) == 0 {
		return
	}
	// A consolidation pass is this scheme's cleanup epoch: shadow-current
	// lines migrate back to their primary location.
	if s.ctx.Tel.Enabled(telemetry.KindGCStart) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCStart, Time: now, Core: -1, Aux: int64(len(lines)),
		})
	}
	var buf [mem.LineSize]byte
	for _, l := range lines {
		home := mem.PAddr(l << mem.LineShift)
		s.ctx.Dev.Store().Read(shadowBase+home, buf[:])
		s.ctx.Ctrl.Read(shadowBase+home, mem.LineSize, now)
		s.ctx.Dev.Store().Write(home, buf[:])
		s.ctx.Ctrl.Write(home, mem.LineSize, now)
		at := s.setCurrent(l, false)
		s.ctx.Ctrl.PostWrite(s.consAgent, at, 8, now)
	}
	if s.ctx.Tel.Enabled(telemetry.KindGCEnd) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCEnd, Time: now, Core: -1,
			Bytes: int64(len(lines)) * mem.LineSize, Aux: int64(len(lines)),
		})
	}
}

// Crash implements persist.Scheme: the TLB remappings and volatile mirror
// vanish; the durable bitmap survives.
func (s *Scheme) Crash() {
	for i := range s.txLines {
		s.txLines[i].Clear()
	}
	s.shadowCur.Clear()
	s.consQ = s.consQ[:0]
	s.ctx.Ctrl.ResetPending()
}

// Recover implements persist.Scheme: replay a valid commit intent (a crash
// may have landed between the intent header and the bitmap flips it
// covers), then rebuild from the durable current-copy bitmap and
// consolidate every shadow-current line into the home region so the home
// region holds exactly the committed data.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	store := s.ctx.Dev.Store()
	if hdr := store.ReadWord(s.intentBase); uint32(hdr) == intentMagic {
		n := int(hdr >> 32)
		if n > intentMaxEntries {
			return 0, fmt.Errorf("osp: corrupt intent record (%d entries)", n)
		}
		for i := 0; i < n; i++ {
			ent := s.intentBase + 8 + mem.PAddr(i*intentEntrySize)
			store.WriteWord(mem.PAddr(store.ReadWord(ent)), store.ReadWord(ent+8))
		}
		store.WriteWord(s.intentBase, 0)
	}
	bitmapEnd := s.bitmapBase + mem.PAddr(s.ctx.Layout.Home.Lines()/8) + 1
	var consolidated int64
	var scanned int64
	var buf [mem.LineSize]byte
	store.ForEachPage(func(base mem.PAddr, data []byte) {
		if base+mem.PageSize <= s.bitmapBase || base >= bitmapEnd {
			return
		}
		scanned += mem.PageSize
		for off, b := range data {
			if b == 0 {
				continue
			}
			at := base + mem.PAddr(off)
			if at < s.bitmapBase || at >= bitmapEnd {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				if b&(1<<uint(bit)) == 0 {
					continue
				}
				line := (uint64(at-s.bitmapBase) << 3) | uint64(bit)
				home := mem.PAddr(line << mem.LineShift)
				store.Read(shadowBase+home, buf[:])
				store.Write(home, buf[:])
				consolidated += mem.LineSize
			}
		}
	})
	// Clear the bitmap durably.
	store.ZeroRange(s.bitmapBase, uint64(bitmapEnd-s.bitmapBase))
	s.shadowCur.Clear()
	s.consQ = s.consQ[:0]
	bw := s.ctx.Dev.Params().Bandwidth
	modeled := sim.Duration(1*sim.Millisecond) +
		sim.Duration((scanned+2*consolidated)*int64(sim.Second)/bw)
	return modeled, nil
}
