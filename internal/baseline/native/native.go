// Package native implements the paper's "Ideal" comparison point: a system
// with no persistence guarantee at all. Stores cost nothing beyond the
// cache hierarchy, transactions have no commit work, and dirty lines write
// back in place when evicted. It upper-bounds throughput and lower-bounds
// critical-path latency and write traffic (Figures 7–9 normalize to it).
package native

import (
	"fmt"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

// Scheme is the no-persistence baseline.
type Scheme struct {
	ctx   persist.Context
	alloc persist.TxnAllocator

	statTxCommitted *sim.Counter
}

// New builds the native scheme.
func New(ctx persist.Context) *Scheme {
	return &Scheme{ctx: ctx, statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted)}
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "Ideal"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		if opt != nil {
			return nil, fmt.Errorf("native: scheme takes no options, got %T", opt)
		}
		return New(ctx), nil
	})
}

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Properties implements persist.Scheme. The native system provides no
// durability, so the Table I attributes describe its raw behaviour.
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "Low", OnCriticalPath: false, NeedFlushFence: false, WriteTraffic: "Low"}
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	return s.alloc.Next(), now
}

// Store implements persist.Scheme: no persistence work at all.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	return now
}

// TxEnd implements persist.Scheme: commits are free.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme: with no persistence machinery there
// is nothing durable to discard. (The in-place evictions an aborted
// transaction may have pushed home are exactly the inconsistency the Ideal
// system tolerates by design.)
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	return now
}

// ReadMiss implements persist.Scheme: always read the home region.
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme: ordinary in-place writeback.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme.
func (s *Scheme) Tick(now sim.Time) {}

// Crash implements persist.Scheme. The native system loses whatever was in
// the caches — that is precisely why it is not crash consistent.
func (s *Scheme) Crash() { s.ctx.Ctrl.ResetPending() }

// Recover implements persist.Scheme: there is nothing to recover with; the
// home region is left in whatever (possibly inconsistent) state the crash
// produced.
func (s *Scheme) Recover(threads int) (sim.Duration, error) { return 0, nil }
