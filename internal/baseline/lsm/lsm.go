// Package lsm implements the LSM comparison point, modeled on LSNVMM (Hu et
// al., USENIX ATC'17 [17]): software log-structured non-volatile main
// memory. Every update is appended to a log, and a DRAM-cached address
// mapping — implemented with a skip list, as in the paper's §IV-A — maps
// home addresses to log locations. Appending avoids the double writes of
// undo/redo logging, but every load pays an O(log N) software index lookup,
// the "High read latency" of Table I. A background GC (run at the same
// frequency as HOOP's, for fairness) migrates committed values to their
// home addresses and resets the log.
package lsm

import (
	"encoding/binary"
	"fmt"
	"slices"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/skiplist"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

// Log record: [magic u32][epoch u32][txid u64][addr u64][len u32][pad u32]
// followed by len bytes of data rounded up to 8. A commit record carries
// the commitSentinel address (no real store can target it) and len == 0.
const (
	recMagic   = 0x4C534E4D // "LSNM"
	recHdrSize = 32
)

// commitSentinel marks commit records; it is outside any addressable
// region of the simulated device.
const commitSentinel mem.PAddr = ^mem.PAddr(0)

// Software cost constants. The index is cached in DRAM and its upper
// levels stay warm in the CPU caches, so per-hop cost is far below a DRAM
// round trip; the point is that it grows with log₂(N).
const (
	indexHopCost    = 1200 * sim.Picosecond
	indexLookupBase = 6 * sim.Nanosecond
	indexInsertBase = 10 * sim.Nanosecond
	commitFence     = 40 * sim.Nanosecond
)

// Config tunes the LSM baseline.
type Config struct {
	// GCPeriod matches HOOP's GC frequency (§IV-A: "we conduct GC
	// operations in LSNVMM at the same frequency as HOOP").
	GCPeriod sim.Duration
}

// DefaultConfig mirrors HOOP's defaults.
func DefaultConfig() Config { return Config{GCPeriod: 10 * sim.Millisecond} }

// Scheme is the log-structured NVM baseline.
type Scheme struct {
	ctx   persist.Context
	cfg   Config
	alloc persist.TxnAllocator

	logBase mem.PAddr
	logEnd  mem.PAddr
	cursor  mem.PAddr
	epoch   uint32

	index     *skiplist.List    // home word addr -> log data addr
	lineWords u64map.Map[int32] // home line -> log-resident word count
	records   []record          // volatile mirror of live log records
	committed u64map.Set        // tx committed since last GC
	liveTx    u64map.Map[int32] // live tx -> record count

	// GC coalescing scratch, epoch-cleared and reused across passes.
	gcWords u64map.Map[[mem.WordSize]byte]
	gcAddrs []uint64

	nextGC  sim.Time
	gcBusy  sim.Time
	gcAgent int

	statTxCommitted *sim.Counter
	statGCRuns      *sim.Counter
	statGCScanned   *sim.Counter
	statGCMigrated  *sim.Counter
}

// record mirrors one live log record.
type record struct {
	tx   persist.TxID
	addr mem.PAddr // home address (0 = commit record)
	n    int
	at   mem.PAddr // record header address in the log
}

// New builds the scheme; the log occupies the layout's OOP region.
func New(ctx persist.Context, cfg Config) (*Scheme, error) {
	if ctx.Layout.OOP.Size < 1<<20 {
		return nil, fmt.Errorf("lsm: log region too small (%d bytes)", ctx.Layout.OOP.Size)
	}
	s := &Scheme{
		ctx:             ctx,
		cfg:             cfg,
		logBase:         ctx.Layout.OOP.Base + mem.LineSize,
		logEnd:          ctx.Layout.OOP.End(),
		index:           skiplist.New(0xBEEF),
		nextGC:          cfg.GCPeriod,
		gcAgent:         ctx.Cores,
		statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
		statGCRuns:      ctx.Stats.Counter(sim.StatGCRuns),
		statGCScanned:   ctx.Stats.Counter(sim.StatGCBytesScanned),
		statGCMigrated:  ctx.Stats.Counter(sim.StatGCBytesMigrated),
	}
	s.cursor = s.logBase
	// Adopt the durable epoch if the device already carries one (rebuilding
	// over a crashed image must not clobber the epoch the log was written
	// under — Recover would then skip every live record). Only a pristine
	// device gets the initial header written.
	if e, ok := s.readEpochOK(); ok {
		s.epoch = e
	} else {
		s.writeEpoch()
	}
	return s, nil
}

// SchemeName is the registry name and figure label of this baseline.
const SchemeName = "LSM"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		cfg := DefaultConfig()
		switch o := opt.(type) {
		case nil:
		case Config:
			cfg = o
		default:
			return nil, fmt.Errorf("lsm: options must be lsm.Config, got %T", opt)
		}
		return New(ctx, cfg)
	})
}

var _ persist.Quiescer = (*Scheme)(nil)

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return "LSM" }

// Properties implements persist.Scheme (Table I, LSNVMM row).
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "High", OnCriticalPath: false, NeedFlushFence: false, WriteTraffic: "Medium"}
}

func (s *Scheme) writeEpoch() {
	var b [mem.LineSize]byte
	binary.LittleEndian.PutUint32(b[0:], recMagic)
	binary.LittleEndian.PutUint32(b[4:], s.epoch)
	s.ctx.Dev.Store().Write(s.ctx.Layout.OOP.Base, b[:])
}

func (s *Scheme) readEpoch() uint32 {
	e, _ := s.readEpochOK()
	return e
}

// readEpochOK reports the durable epoch and whether the epoch header has
// ever been written (magic present).
func (s *Scheme) readEpochOK() (uint32, bool) {
	var b [mem.LineSize]byte
	s.ctx.Dev.Store().Read(s.ctx.Layout.OOP.Base, b[:])
	if binary.LittleEndian.Uint32(b[0:]) != recMagic {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b[4:]), true
}

func recSize(n int) mem.PAddr {
	return mem.PAddr(recHdrSize + (n+7)&^7)
}

// recTraffic is the accounted NVM traffic for one record: LSNVMM's log
// entries carry a compact 16-byte header (address + length packed with the
// transaction tag); our durable layout uses a 32-byte header for decoding
// convenience, but traffic is charged at the real format's cost.
func recTraffic(n int) int {
	return 16 + (n+7)&^7
}

// appendRecord durably writes one log record at the cursor.
func (s *Scheme) appendRecord(tx persist.TxID, addr mem.PAddr, data []byte) (at mem.PAddr, size int) {
	size = int(recSize(len(data)))
	if s.cursor+mem.PAddr(size) > s.logEnd {
		panic("lsm: log region exhausted (increase region or GC frequency)")
	}
	var hdr [recHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], recMagic)
	binary.LittleEndian.PutUint32(hdr[4:], s.epoch)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(tx))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(addr))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(len(data)))
	at = s.cursor
	st := s.ctx.Dev.Store()
	// Body first, then the first header unit (magic+epoch) last: that unit
	// is the atomic write that makes the record decodable, so a crash
	// mid-record leaves a slot whose magic/epoch does not match and the
	// recovery scan stops cleanly before the tear.
	st.Write(at+8, hdr[8:])
	if len(data) > 0 {
		st.Write(at+recHdrSize, data)
	}
	st.Write(at, hdr[:8])
	s.cursor += mem.PAddr(size)
	s.records = append(s.records, record{tx: tx, addr: addr, n: len(data), at: at})
	return at, size
}

// TxBegin implements persist.Scheme.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	tx := s.alloc.Next()
	s.liveTx.Put(uint64(tx), 0)
	return tx, now
}

// Store implements persist.Scheme: append the update to the log (posted
// write) and insert the log location into the DRAM index — the skip-list
// insertion cost lands on the critical path because it is software.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	at, _ := s.appendRecord(tx, addr, val)
	s.ctx.Ctrl.PostWrite(core, at, recTraffic(len(val)), now)
	if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
			Tx: uint64(tx), Addr: at, Bytes: int64(recTraffic(len(val))),
		})
	}
	*s.liveTx.Ref(uint64(tx))++
	var hops int
	for off := 0; off < len(val); off += mem.WordSize {
		w := addr + mem.PAddr(off)
		h := s.index.Set(uint64(w), uint64(at+recHdrSize+mem.PAddr(off)))
		if h > hops {
			hops = h
		}
		*s.lineWords.Ref(mem.LineIndex(w))++
	}
	return now + indexInsertBase + sim.Duration(hops)*indexHopCost
}

// TxEnd implements persist.Scheme: drain the posted appends, then persist
// the commit record with a fence.
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	if n, _ := s.liveTx.Get(uint64(tx)); n > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		at, _ := s.appendRecord(tx, commitSentinel, nil)
		now = s.ctx.Ctrl.Write(at, recTraffic(0), now)
		now += commitFence
		s.committed.Add(uint64(tx))
		if s.ctx.Tel.Enabled(telemetry.KindLogWrite) {
			s.ctx.Tel.Emit(telemetry.Event{
				Kind: telemetry.KindLogWrite, Time: now, Core: int16(core),
				Tx: uint64(tx), Addr: at, Bytes: int64(recTraffic(0)),
			})
		}
	}
	s.liveTx.Delete(uint64(tx))
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme. The aborted records already sit in
// the log, but they carry no commit sentinel, so GC coalescing and
// recovery both skip them — durably the abort is free, the records are
// dead space until the next epoch reset. Volatile state must be unwound:
// the index entries and per-line word counts the aborted stores installed
// are removed (a software walk, so the skip-list hop cost lands on the
// critical path), and the live-transaction entry is dropped — GC defers
// while any transaction is live, and an aborted one must not pin it.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	var hops, words int
	for i := range s.records {
		r := &s.records[i]
		if r.tx != tx || r.addr == commitSentinel {
			continue
		}
		for off := 0; off < r.n; off += mem.WordSize {
			w := r.addr + mem.PAddr(off)
			if _, h := s.index.Delete(uint64(w)); h > hops {
				hops = h
			}
			words++
			p := s.lineWords.Ref(mem.LineIndex(w))
			*p--
			if *p <= 0 {
				s.lineWords.Delete(mem.LineIndex(w))
			}
		}
	}
	s.liveTx.Delete(uint64(tx))
	if words > 0 {
		now += sim.Duration(words)*indexInsertBase + sim.Duration(hops)*indexHopCost
	}
	return now
}

// LoadOverhead implements the optional per-load hook: every read must
// translate its home address through the software index, costing
// O(log N) hops.
func (s *Scheme) LoadOverhead(core int, addr mem.PAddr, now sim.Time) sim.Time {
	_, _, hops := s.index.Get(uint64(mem.WordAddr(addr)))
	return now + indexLookupBase + sim.Duration(hops)*indexHopCost
}

// ReadMiss implements persist.Scheme: if any word of the line lives in the
// log, the line is reconstructed from the log entry and the home copy.
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	line := mem.LineIndex(addr)
	if n, _ := s.lineWords.Get(line); n > 0 {
		logAt, ok, _ := s.index.Get(uint64(mem.WordAddr(addr)))
		if !ok {
			logAt = uint64(s.logBase)
		}
		logDone := s.ctx.Ctrl.Read(mem.PAddr(logAt), mem.LineSize, now)
		homeDone := s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now)
		return sim.MaxTime(logDone, homeDone), true
	}
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme: transactional data lives in the log, so
// persistent lines are dropped; other dirty lines write back in place.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	if ev.Persistent {
		return now
	}
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

// Tick implements persist.Scheme: run the periodic log GC.
func (s *Scheme) Tick(now sim.Time) {
	for s.nextGC <= now {
		s.runGC(s.nextGC)
		s.nextGC += s.cfg.GCPeriod
	}
}

// ForceGC runs a GC pass immediately (harness: close a measurement window
// with migration traffic accounted, mirroring hoop.Scheme.ForceGC).
func (s *Scheme) ForceGC(now sim.Time) { s.runGC(now) }

// Quiesce implements persist.Quiescer: drain the deferred log GC.
func (s *Scheme) Quiesce(now sim.Time) { s.ForceGC(now) }

// runGC migrates the newest committed value of every logged word to its
// home address, then resets the log under a new epoch. It requires no live
// transactions (the engine ticks between transactions); records of
// uncommitted-but-crashed transactions never occur during a run.
func (s *Scheme) runGC(start sim.Time) {
	if s.liveTx.Len() > 0 {
		// Defer: a GC with live transactions would have to relocate
		// their records; the next between-transaction tick will run it.
		return
	}
	if len(s.records) == 0 {
		return
	}
	arr := sim.MaxTime(start, s.gcBusy)
	t := arr
	s.statGCRuns.Inc()
	if s.ctx.Tel.Enabled(telemetry.KindGCStart) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCStart, Time: arr, Core: -1,
			Aux: int64(len(s.records)),
		})
	}
	scannedBefore := s.statGCScanned.Value()
	migratedBefore := s.statGCMigrated.Value()
	// newest is the pass-scoped coalescing table, epoch-cleared and reused
	// so a steady GC cadence performs no allocation (same structure as
	// HOOP's GC coalescing table).
	newest := &s.gcWords
	newest.Clear()
	st := s.ctx.Dev.Store()
	for i := len(s.records) - 1; i >= 0; i-- {
		r := s.records[i]
		if r.addr == commitSentinel || !s.committed.Contains(uint64(r.tx)) {
			continue
		}
		t = sim.MaxTime(t, s.ctx.Ctrl.Read(r.at, recHdrSize+r.n, arr))
		s.statGCScanned.Add(int64(recHdrSize + r.n))
		for off := 0; off < r.n; off += mem.WordSize {
			w := r.addr + mem.PAddr(off)
			before := newest.Len()
			p := newest.Ref(uint64(w))
			if newest.Len() != before {
				st.Read(r.at+recHdrSize+mem.PAddr(off), p[:])
			}
		}
	}
	words := newest.Keys(s.gcAddrs[:0])
	s.gcAddrs = words
	slices.Sort(words)
	for i := 0; i < len(words); {
		lineAddr := mem.LineAddr(mem.PAddr(words[i]))
		j := i
		for j < len(words) && mem.LineAddr(mem.PAddr(words[j])) == lineAddr {
			wv, _ := newest.Get(words[j])
			st.Write(mem.PAddr(words[j]), wv[:])
			j++
		}
		n := (j - i) * mem.WordSize
		t = sim.MaxTime(t, s.ctx.Ctrl.Write(lineAddr, n, arr))
		s.statGCMigrated.Add(int64(n))
		i = j
	}
	// Reset the log under a fresh epoch.
	s.epoch++
	s.writeEpoch()
	t = sim.MaxTime(t, s.ctx.Ctrl.Write(s.ctx.Layout.OOP.Base, mem.LineSize, arr))
	s.cursor = s.logBase
	s.records = s.records[:0]
	s.committed.Clear()
	s.index.Clear()
	s.lineWords.Clear()
	if s.ctx.Tel.Enabled(telemetry.KindGCEnd) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind: telemetry.KindGCEnd, Time: t, Core: -1,
			Bytes: s.statGCMigrated.Value() - migratedBefore,
			Aux:   s.statGCScanned.Value() - scannedBefore,
		})
	}
	s.gcBusy = t
}

// Crash implements persist.Scheme: the DRAM index and all volatile cursors
// are lost.
func (s *Scheme) Crash() {
	s.index.Clear()
	s.lineWords.Clear()
	s.records = s.records[:0]
	s.committed.Clear()
	s.liveTx.Clear()
	s.ctx.Ctrl.ResetPending()
}

// Recover implements persist.Scheme: scan the log from its base under the
// durable epoch, replay committed transactions' records in append order,
// and reset the log.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	st := s.ctx.Dev.Store()
	epoch := s.readEpoch()
	type rec struct {
		tx   persist.TxID
		addr mem.PAddr
		n    int
		at   mem.PAddr
	}
	var recs []rec
	committed := make(map[persist.TxID]bool)
	var scanned int64
	cur := s.logBase
	var hdr [recHdrSize]byte
	for cur+recHdrSize <= s.logEnd {
		st.Read(cur, hdr[:])
		if binary.LittleEndian.Uint32(hdr[0:]) != recMagic ||
			binary.LittleEndian.Uint32(hdr[4:]) != epoch {
			break
		}
		tx := persist.TxID(binary.LittleEndian.Uint64(hdr[8:]))
		addr := mem.PAddr(binary.LittleEndian.Uint64(hdr[16:]))
		n := int(binary.LittleEndian.Uint32(hdr[24:]))
		if addr == commitSentinel && n == 0 {
			committed[tx] = true
		} else {
			recs = append(recs, rec{tx: tx, addr: addr, n: n, at: cur})
		}
		sz := recSize(n)
		scanned += int64(sz)
		cur += sz
	}
	var applied int64
	data := make([]byte, 0, 1024)
	for _, r := range recs { // append order: later records overwrite
		if !committed[r.tx] {
			continue
		}
		if cap(data) < r.n {
			data = make([]byte, r.n)
		}
		data = data[:r.n]
		st.Read(r.at+recHdrSize, data)
		st.Write(r.addr, data)
		applied += int64(r.n)
	}
	s.epoch = epoch + 1
	s.writeEpoch()
	s.cursor = s.logBase
	s.records = s.records[:0]
	s.committed.Clear()
	s.index.Clear()
	s.lineWords.Clear()
	bw := s.ctx.Dev.Params().Bandwidth
	modeled := sim.Duration(1*sim.Millisecond) +
		sim.Duration((scanned+applied)*int64(sim.Second)/bw)
	return modeled, nil
}
