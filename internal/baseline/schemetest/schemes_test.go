// Package schemetest drives each comparison scheme directly (no engine) to
// verify the crash-consistency contract every one of them must uphold:
// after Crash+Recover, the home region holds exactly the committed data.
package schemetest

import (
	"fmt"
	"testing"
	"testing/quick"

	"hoop/internal/baseline/lad"
	"hoop/internal/baseline/lsm"
	"hoop/internal/baseline/native"
	"hoop/internal/baseline/osp"
	"hoop/internal/baseline/redo"
	"hoop/internal/baseline/undo"
	"hoop/internal/cache"
	"hoop/internal/hoop"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/persisttest"
	"hoop/internal/sim"
)

func newCtx(t *testing.T, cores int) persist.Context {
	t.Helper()
	return persisttest.NewContext(cores)
}

// build constructs a scheme through the persist registry (the packages are
// imported above for their registration side effect).
func build(t *testing.T, name string, ctx persist.Context) persist.Scheme {
	t.Helper()
	s, err := persist.Build(ctx, name, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// schemeNames are the baselines whose home region must hold exactly the
// committed data after recovery. Ideal (native) is excluded: it models no
// persistence mechanism at all, so data reaches the device only on
// eviction.
var schemeNames = []string{undo.SchemeName, redo.SchemeName, lsm.SchemeName, osp.SchemeName, lad.SchemeName}

// allSchemeNames adds the schemes excluded from the strict home-image
// tests; every registered scheme must still recover idempotently.
var allSchemeNames = append([]string{hoop.SchemeName, native.SchemeName}, schemeNames...)

// runTx forwards to the shared fixture helper.
func runTx(s persist.Scheme, ctx persist.Context, core int, words map[mem.PAddr]uint64) {
	persisttest.RunTx(s, ctx, core, words)
}

func TestCommittedSurvivesCrash(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(t, 2)
			s := build(t, name, ctx)
			oracle := map[mem.PAddr]uint64{}
			r := sim.NewRand(11)
			for i := 0; i < 150; i++ {
				words := map[mem.PAddr]uint64{}
				for j := 0; j < 1+r.Intn(10); j++ {
					words[mem.PAddr(r.Intn(2048))*8] = r.Uint64()
				}
				runTx(s, ctx, i%2, words)
				for a, v := range words {
					oracle[a] = v
				}
				s.Tick(sim.Time(i) * sim.Microsecond)
			}
			s.Crash()
			if _, err := s.Recover(2); err != nil {
				t.Fatal(err)
			}
			for a, v := range oracle {
				if got := ctx.Dev.Store().ReadWord(a); got != v {
					t.Fatalf("word %v = %#x, want %#x", a, got, v)
				}
			}
		})
	}
}

func TestUncommittedIsRolledBack(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(t, 1)
			s := build(t, name, ctx)
			// Commit a base value.
			runTx(s, ctx, 0, map[mem.PAddr]uint64{0x100: 1})
			// Open a transaction that writes but never commits; include an
			// eviction so steal-policy schemes write uncommitted data in
			// place.
			tx, now := s.TxBegin(0, 0)
			var buf [8]byte
			buf[0] = 0xAB
			now = s.Store(0, tx, 0x100, buf[:], now)
			ctx.View.Write(0x100, buf[:])
			s.Evict(0, cache.Eviction{Line: 0x100, Persistent: true}, now)
			s.Crash()
			if _, err := s.Recover(1); err != nil {
				t.Fatal(err)
			}
			if got := ctx.Dev.Store().ReadWord(0x100); got != 1 {
				t.Fatalf("uncommitted data visible after recovery: %#x", got)
			}
		})
	}
}

// TestDoubleRecoverIdempotent crashes once and recovers twice: the second
// recovery must find a quiesced device and leave the home region image
// bit-for-bit unchanged. A scheme that replays work twice (or trips over
// its own recovery bookkeeping) fails here.
func TestDoubleRecoverIdempotent(t *testing.T) {
	for _, name := range allSchemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(t, 2)
			s := build(t, name, ctx)
			r := sim.NewRand(23)
			for i := 0; i < 40; i++ {
				words := map[mem.PAddr]uint64{}
				for j := 0; j < 1+r.Intn(6); j++ {
					words[mem.PAddr(r.Intn(512))*8] = r.Uint64()
				}
				runTx(s, ctx, i%2, words)
			}
			s.Crash()
			if _, err := s.Recover(2); err != nil {
				t.Fatal(err)
			}
			home := ctx.Layout.Home
			first := ctx.Dev.Store().Clone()
			if _, err := s.Recover(2); err != nil {
				t.Fatalf("second recovery failed: %v", err)
			}
			var diffs int
			ctx.Dev.Store().ForEachPage(func(base mem.PAddr, data []byte) {
				if base < home.Base || base >= home.End() {
					return
				}
				var want [mem.PageSize]byte
				first.Read(base, want[:])
				for i := range data {
					if data[i] != want[i] {
						diffs++
						if diffs == 1 {
							t.Errorf("home byte %#x changed across second recovery: %#x -> %#x",
								uint64(base)+uint64(i), want[i], data[i])
						}
					}
				}
			})
			if diffs > 0 {
				t.Fatalf("second recovery changed %d home-region bytes", diffs)
			}
		})
	}
}

func TestQuickRandomCrashAllSchemes(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			// reason records why the property last failed so that a red run
			// reports the seed and failure site, not just "#1: failed".
			var reason string
			f := func(seed uint64) bool {
				ctx := newCtx(t, 2)
				s := build(t, name, ctx)
				r := sim.NewRand(seed)
				oracle := map[mem.PAddr]uint64{}
				txs := 10 + r.Intn(40)
				for i := 0; i < txs; i++ {
					words := map[mem.PAddr]uint64{}
					for j := 0; j < 1+r.Intn(6); j++ {
						words[mem.PAddr(r.Intn(512))*8] = r.Uint64()
					}
					runTx(s, ctx, i%2, words)
					for a, v := range words {
						oracle[a] = v
					}
					if r.Bool(0.2) {
						line := mem.PAddr(r.Intn(512)) * 8
						s.Evict(0, cache.Eviction{Line: mem.LineAddr(line), Persistent: r.Bool(0.7)}, 0)
					}
				}
				s.Crash()
				if _, err := s.Recover(1 + r.Intn(3)); err != nil {
					reason = fmt.Sprintf("scheme=%s seed=%d txs=%d: recovery error: %v", name, seed, txs, err)
					return false
				}
				for a, v := range oracle {
					if got := ctx.Dev.Store().ReadWord(a); got != v {
						reason = fmt.Sprintf("scheme=%s seed=%d txs=%d: word %#x = %#x, want %#x",
							name, seed, txs, uint64(a), got, v)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatalf("%v\nrepro: %s", err, reason)
			}
		})
	}
}

func TestSchemePropertiesPopulated(t *testing.T) {
	for _, name := range schemeNames {
		ctx := newCtx(t, 1)
		s := build(t, name, ctx)
		p := s.Properties()
		if p.ReadLatency == "" || p.WriteTraffic == "" {
			t.Errorf("%s: empty properties", name)
		}
		if s.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
	}
}

func TestUndoCriticalPathExceedsRedo(t *testing.T) {
	// Undo's log-before-data ordering charges per first-touch line during
	// the transaction; redo defers everything to commit. For the same
	// write set, undo's in-transaction time must be longer.
	elapsed := func(name string) sim.Duration {
		ctx := newCtx(t, 1)
		s := build(t, name, ctx)
		tx, now := s.TxBegin(0, 0)
		start := now
		var buf [8]byte
		for i := 0; i < 16; i++ {
			now = s.Store(0, tx, mem.PAddr(i)*mem.LineSize, buf[:], now)
		}
		return now - start
	}
	if elapsed(undo.SchemeName) <= elapsed(redo.SchemeName) {
		t.Fatal("undo stores must carry ordering cost on the critical path")
	}
}

func TestLSMLoadOverheadGrowsWithIndex(t *testing.T) {
	ctx := newCtx(t, 1)
	s := build(t, lsm.SchemeName, ctx).(*lsm.Scheme)
	small := s.LoadOverhead(0, 0x100, 0)
	for i := 0; i < 20000; i++ {
		runTx(s, ctx, 0, map[mem.PAddr]uint64{mem.PAddr(i) * 8: 1})
	}
	big := s.LoadOverhead(0, 0x100, 0)
	if big <= small {
		t.Fatalf("index lookup cost must grow with N: %v -> %v", small, big)
	}
}

func TestLADSpillOnLargeTx(t *testing.T) {
	ctx := newCtx(t, 1)
	s := build(t, lad.SchemeName, ctx)
	before := ctx.Stats.Get(sim.StatNVMBytesWritten)
	// 100 distinct lines exceed the 64-line queue: spills must appear
	// before commit.
	tx, now := s.TxBegin(0, 0)
	var buf [8]byte
	for i := 0; i < 100; i++ {
		now = s.Store(0, tx, mem.PAddr(i)*mem.LineSize, buf[:], now)
		ctx.View.Write(mem.PAddr(i)*mem.LineSize, buf[:])
	}
	preCommit := ctx.Stats.Get(sim.StatNVMBytesWritten)
	if preCommit == before {
		t.Fatal("oversized transaction should have spilled to NVM before commit")
	}
	s.TxEnd(0, tx, now)
}

func ExampleScheme_names() {
	ctx := persist.Context{}
	_ = ctx
	fmt.Println("Opt-Undo Opt-Redo OSP LSM LAD")
	// Output: Opt-Undo Opt-Redo OSP LSM LAD
}
