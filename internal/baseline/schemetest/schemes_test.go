// Package schemetest drives each comparison scheme directly (no engine) to
// verify the crash-consistency contract every one of them must uphold:
// after Crash+Recover, the home region holds exactly the committed data.
package schemetest

import (
	"fmt"
	"testing"
	"testing/quick"

	"hoop/internal/baseline/lad"
	"hoop/internal/baseline/lsm"
	"hoop/internal/baseline/osp"
	"hoop/internal/baseline/redo"
	"hoop/internal/baseline/undo"
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/memctrl"
	"hoop/internal/nvm"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

func newCtx(t *testing.T, cores int) persist.Context {
	t.Helper()
	stats := sim.NewStats()
	store := mem.NewStore()
	params := nvm.DefaultParams()
	params.Capacity = 2 << 30
	dev := nvm.NewDevice(params, store, stats)
	return persist.Context{
		Cores: cores,
		Layout: mem.Layout{
			Home: mem.Region{Base: 0, Size: 1 << 30},
			OOP:  mem.Region{Base: 1 << 30, Size: 64 << 20},
		},
		Dev:   dev,
		Ctrl:  memctrl.New(memctrl.DefaultConfig(cores+2), dev),
		Hier:  cache.New(cache.DefaultConfig(cores), stats),
		Stats: stats,
		View:  mem.NewStore(),
	}
}

func build(t *testing.T, name string, ctx persist.Context) persist.Scheme {
	t.Helper()
	switch name {
	case "undo":
		s, err := undo.New(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return s
	case "redo":
		s, err := redo.New(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return s
	case "lsm":
		s, err := lsm.New(ctx, lsm.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	case "osp":
		return osp.New(ctx)
	case "lad":
		return lad.New(ctx)
	}
	t.Fatalf("unknown scheme %q", name)
	return nil
}

var schemeNames = []string{"undo", "redo", "lsm", "osp", "lad"}

// runTx performs one transaction of word writes through the scheme,
// mirroring stores into the view first (the engine's ordering contract:
// View is updated after Scheme.Store).
func runTx(s persist.Scheme, ctx persist.Context, core int, words map[mem.PAddr]uint64) {
	tx, now := s.TxBegin(core, 0)
	for a, v := range words {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * uint(i)))
		}
		now = s.Store(core, tx, a, buf[:], now)
		ctx.View.Write(a, buf[:])
	}
	s.TxEnd(core, tx, now)
}

func TestCommittedSurvivesCrash(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(t, 2)
			s := build(t, name, ctx)
			oracle := map[mem.PAddr]uint64{}
			r := sim.NewRand(11)
			for i := 0; i < 150; i++ {
				words := map[mem.PAddr]uint64{}
				for j := 0; j < 1+r.Intn(10); j++ {
					words[mem.PAddr(r.Intn(2048))*8] = r.Uint64()
				}
				runTx(s, ctx, i%2, words)
				for a, v := range words {
					oracle[a] = v
				}
				s.Tick(sim.Time(i) * sim.Microsecond)
			}
			s.Crash()
			if _, err := s.Recover(2); err != nil {
				t.Fatal(err)
			}
			for a, v := range oracle {
				if got := ctx.Dev.Store().ReadWord(a); got != v {
					t.Fatalf("word %v = %#x, want %#x", a, got, v)
				}
			}
		})
	}
}

func TestUncommittedIsRolledBack(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			ctx := newCtx(t, 1)
			s := build(t, name, ctx)
			// Commit a base value.
			runTx(s, ctx, 0, map[mem.PAddr]uint64{0x100: 1})
			// Open a transaction that writes but never commits; include an
			// eviction so steal-policy schemes write uncommitted data in
			// place.
			tx, now := s.TxBegin(0, 0)
			var buf [8]byte
			buf[0] = 0xAB
			now = s.Store(0, tx, 0x100, buf[:], now)
			ctx.View.Write(0x100, buf[:])
			s.Evict(0, cache.Eviction{Line: 0x100, Persistent: true}, now)
			s.Crash()
			if _, err := s.Recover(1); err != nil {
				t.Fatal(err)
			}
			if got := ctx.Dev.Store().ReadWord(0x100); got != 1 {
				t.Fatalf("uncommitted data visible after recovery: %#x", got)
			}
		})
	}
}

func TestQuickRandomCrashAllSchemes(t *testing.T) {
	for _, name := range schemeNames {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(seed uint64) bool {
				ctx := newCtx(t, 2)
				s := build(t, name, ctx)
				r := sim.NewRand(seed)
				oracle := map[mem.PAddr]uint64{}
				for i := 0; i < 10+r.Intn(40); i++ {
					words := map[mem.PAddr]uint64{}
					for j := 0; j < 1+r.Intn(6); j++ {
						words[mem.PAddr(r.Intn(512))*8] = r.Uint64()
					}
					runTx(s, ctx, i%2, words)
					for a, v := range words {
						oracle[a] = v
					}
					if r.Bool(0.2) {
						line := mem.PAddr(r.Intn(512)) * 8
						s.Evict(0, cache.Eviction{Line: mem.LineAddr(line), Persistent: r.Bool(0.7)}, 0)
					}
				}
				s.Crash()
				if _, err := s.Recover(1 + r.Intn(3)); err != nil {
					return false
				}
				for a, v := range oracle {
					if ctx.Dev.Store().ReadWord(a) != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSchemePropertiesPopulated(t *testing.T) {
	for _, name := range schemeNames {
		ctx := newCtx(t, 1)
		s := build(t, name, ctx)
		p := s.Properties()
		if p.ReadLatency == "" || p.WriteTraffic == "" {
			t.Errorf("%s: empty properties", name)
		}
		if s.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
	}
}

func TestUndoCriticalPathExceedsRedo(t *testing.T) {
	// Undo's log-before-data ordering charges per first-touch line during
	// the transaction; redo defers everything to commit. For the same
	// write set, undo's in-transaction time must be longer.
	elapsed := func(name string) sim.Duration {
		ctx := newCtx(t, 1)
		s := build(t, name, ctx)
		tx, now := s.TxBegin(0, 0)
		start := now
		var buf [8]byte
		for i := 0; i < 16; i++ {
			now = s.Store(0, tx, mem.PAddr(i)*mem.LineSize, buf[:], now)
		}
		return now - start
	}
	if elapsed("undo") <= elapsed("redo") {
		t.Fatal("undo stores must carry ordering cost on the critical path")
	}
}

func TestLSMLoadOverheadGrowsWithIndex(t *testing.T) {
	ctx := newCtx(t, 1)
	s := build(t, "lsm", ctx).(*lsm.Scheme)
	small := s.LoadOverhead(0, 0x100, 0)
	for i := 0; i < 20000; i++ {
		runTx(s, ctx, 0, map[mem.PAddr]uint64{mem.PAddr(i) * 8: 1})
	}
	big := s.LoadOverhead(0, 0x100, 0)
	if big <= small {
		t.Fatalf("index lookup cost must grow with N: %v -> %v", small, big)
	}
}

func TestLADSpillOnLargeTx(t *testing.T) {
	ctx := newCtx(t, 1)
	s := build(t, "lad", ctx)
	before := ctx.Stats.Get(sim.StatNVMBytesWritten)
	// 100 distinct lines exceed the 64-line queue: spills must appear
	// before commit.
	tx, now := s.TxBegin(0, 0)
	var buf [8]byte
	for i := 0; i < 100; i++ {
		now = s.Store(0, tx, mem.PAddr(i)*mem.LineSize, buf[:], now)
		ctx.View.Write(mem.PAddr(i)*mem.LineSize, buf[:])
	}
	preCommit := ctx.Stats.Get(sim.StatNVMBytesWritten)
	if preCommit == before {
		t.Fatal("oversized transaction should have spilled to NVM before commit")
	}
	s.TxEnd(0, tx, now)
}

func ExampleScheme_names() {
	ctx := persist.Context{}
	_ = ctx
	fmt.Println("Opt-Undo Opt-Redo OSP LSM LAD")
	// Output: Opt-Undo Opt-Redo OSP LSM LAD
}
