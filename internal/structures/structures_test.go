package structures

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/sim"
)

func newArena(t *testing.T, size uint64) (*pmem.Direct, *pmem.Arena) {
	t.Helper()
	d := pmem.NewDirect()
	a := pmem.NewArena(d, mem.Region{Base: 0, Size: size})
	a.Init()
	return d, a
}

func item(seed uint64, n int) []byte {
	b := make([]byte, n)
	r := sim.NewRand(seed)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	return b
}

func TestVectorAppendGetUpdate(t *testing.T) {
	d, a := newArena(t, 1<<20)
	v := NewVector(d, a, 100, 64)
	var want [][]byte
	for i := 0; i < 100; i++ {
		it := item(uint64(i+1), 64)
		idx := v.Append(it)
		if idx != i {
			t.Fatalf("Append returned %d, want %d", idx, i)
		}
		want = append(want, it)
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d, want 100", v.Len())
	}
	// Update every third item.
	for i := 0; i < 100; i += 3 {
		it := item(uint64(1000+i), 64)
		v.Update(i, it)
		want[i] = it
	}
	buf := make([]byte, 64)
	for i := range want {
		v.Get(i, buf)
		if !bytes.Equal(buf, want[i]) {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestVectorPanicsOnOverflow(t *testing.T) {
	d, a := newArena(t, 1<<20)
	v := NewVector(d, a, 1, 8)
	v.Append(item(1, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic appending past capacity")
		}
	}()
	v.Append(item(2, 8))
}

func TestVectorOpen(t *testing.T) {
	d, a := newArena(t, 1<<20)
	v := NewVector(d, a, 10, 16)
	it := item(7, 16)
	v.Append(it)
	v2 := OpenVector(d, v.Base())
	if v2.Len() != 1 || v2.Cap() != 10 {
		t.Fatalf("reopened vector len=%d cap=%d", v2.Len(), v2.Cap())
	}
	buf := make([]byte, 16)
	v2.Get(0, buf)
	if !bytes.Equal(buf, it) {
		t.Fatal("reopened vector item mismatch")
	}
}

func TestHashMapAgainstOracle(t *testing.T) {
	d, a := newArena(t, 8<<20)
	h := NewHashMap(d, a, 64, 32)
	oracle := map[uint64][]byte{}
	r := sim.NewRand(42)
	for i := 0; i < 2000; i++ {
		key := uint64(r.Intn(500))
		switch r.Intn(10) {
		case 0: // delete
			delete(oracle, key)
			h.Delete(key)
		default:
			val := item(r.Uint64(), 32)
			oracle[key] = val
			h.Put(key, val)
		}
	}
	if h.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", h.Len(), len(oracle))
	}
	buf := make([]byte, 32)
	for k, v := range oracle {
		if !h.Get(k, buf) {
			t.Fatalf("key %d missing", k)
		}
		if !bytes.Equal(buf, v) {
			t.Fatalf("key %d value mismatch", k)
		}
	}
	for k := uint64(500); k < 600; k++ {
		if h.Get(k, buf) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestQueueFIFO(t *testing.T) {
	d, a := newArena(t, 4<<20)
	q := NewQueue(d, a, 24)
	var want [][]byte
	buf := make([]byte, 24)
	r := sim.NewRand(7)
	for i := 0; i < 1000; i++ {
		if r.Bool(0.6) || len(want) == 0 {
			it := item(uint64(i)+1, 24)
			q.Enqueue(it)
			want = append(want, it)
		} else {
			if !q.Dequeue(buf) {
				t.Fatal("Dequeue failed on non-empty queue")
			}
			if !bytes.Equal(buf, want[0]) {
				t.Fatalf("FIFO violation at step %d", i)
			}
			want = want[1:]
		}
		if q.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", q.Len(), len(want))
		}
	}
	for len(want) > 0 {
		if !q.Dequeue(buf) || !bytes.Equal(buf, want[0]) {
			t.Fatal("drain mismatch")
		}
		want = want[1:]
	}
	if q.Dequeue(buf) {
		t.Fatal("Dequeue succeeded on empty queue")
	}
	if q.Peek(buf) {
		t.Fatal("Peek succeeded on empty queue")
	}
}

func TestRBTreeAgainstOracle(t *testing.T) {
	d, a := newArena(t, 16<<20)
	tr := NewRBTree(d, a, 16)
	oracle := map[uint64][]byte{}
	r := sim.NewRand(99)
	for i := 0; i < 3000; i++ {
		key := uint64(r.Intn(800))
		val := item(r.Uint64(), 16)
		tr.Put(key, val)
		oracle[key] = val
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	buf := make([]byte, 16)
	for k, v := range oracle {
		if !tr.Get(k, buf) || !bytes.Equal(buf, v) {
			t.Fatalf("key %d wrong", k)
		}
	}
	// Sorted iteration matches the oracle's sorted keys.
	var wantKeys []uint64
	for k := range oracle {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []uint64
	tr.Walk(func(k uint64) bool { gotKeys = append(gotKeys, k); return true })
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("walk visited %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("walk[%d] = %d, want %d", i, gotKeys[i], wantKeys[i])
		}
	}
	// Red-black balance: height must be O(log n); 2*log2(n+1) bound.
	maxDepth := 2 * log2(len(oracle)+1)
	if d := tr.Depth(); d > maxDepth {
		t.Fatalf("depth %d exceeds red-black bound %d for %d keys", d, maxDepth, len(oracle))
	}
}

func TestRBTreeSequentialInsert(t *testing.T) {
	d, a := newArena(t, 16<<20)
	tr := NewRBTree(d, a, 8)
	n := 4096
	for i := 0; i < n; i++ {
		tr.Put(uint64(i), item(uint64(i), 8))
	}
	if tr.Depth() > 2*log2(n+1) {
		t.Fatalf("sequential insert unbalanced: depth %d for %d keys", tr.Depth(), n)
	}
	min, ok := tr.Min()
	if !ok || min != 0 {
		t.Fatalf("Min = %d,%v", min, ok)
	}
}

func TestRBTreeDeleteAgainstOracle(t *testing.T) {
	d, a := newArena(t, 32<<20)
	tr := NewRBTree(d, a, 8)
	oracle := map[uint64][]byte{}
	r := sim.NewRand(314)
	buf := make([]byte, 8)
	for i := 0; i < 6000; i++ {
		key := uint64(r.Intn(400))
		if r.Bool(0.4) {
			got := tr.Delete(key)
			_, want := oracle[key]
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, oracle %v", i, key, got, want)
			}
			delete(oracle, key)
		} else {
			val := item(r.Uint64(), 8)
			tr.Put(key, val)
			oracle[key] = val
		}
		if i%500 == 0 {
			if msg := tr.CheckInvariants(); msg != "" {
				t.Fatalf("step %d: %s", i, msg)
			}
		}
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	for k, v := range oracle {
		if !tr.Get(k, buf) || !bytes.Equal(buf, v) {
			t.Fatalf("key %d wrong after deletes", k)
		}
	}
	for k := uint64(0); k < 400; k++ {
		if _, ok := oracle[k]; !ok && tr.Get(k, buf) {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestRBTreeDeleteAll(t *testing.T) {
	d, a := newArena(t, 16<<20)
	tr := NewRBTree(d, a, 8)
	const n = 300
	for k := uint64(0); k < n; k++ {
		tr.Put(k, item(k, 8))
	}
	// Delete in an interleaved order to exercise all fixup cases.
	for k := uint64(0); k < n; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d)", k)
		}
	}
	for k := uint64(n - 1); k < n; k -= 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d)", k)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree")
	}
}

func TestRBTreeDeleteQuick(t *testing.T) {
	f := func(seed uint64) bool {
		d, a := newArena(t, 16<<20)
		tr := NewRBTree(d, a, 8)
		oracle := map[uint64]struct{}{}
		r := sim.NewRand(seed)
		for i := 0; i < 400; i++ {
			key := uint64(r.Intn(64))
			if r.Bool(0.45) {
				tr.Delete(key)
				delete(oracle, key)
			} else {
				tr.Put(key, item(key, 8))
				oracle[key] = struct{}{}
			}
		}
		if tr.CheckInvariants() != "" || tr.Len() != len(oracle) {
			return false
		}
		var keys []uint64
		tr.Walk(func(k uint64) bool { keys = append(keys, k); return true })
		if len(keys) != len(oracle) {
			return false
		}
		for _, k := range keys {
			if _, ok := oracle[k]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeAgainstOracle(t *testing.T) {
	d, a := newArena(t, 32<<20)
	tr := NewBTree(d, a, 16)
	oracle := map[uint64][]byte{}
	r := sim.NewRand(123)
	for i := 0; i < 5000; i++ {
		key := uint64(r.Intn(1200))
		val := item(r.Uint64(), 16)
		tr.Put(key, val)
		oracle[key] = val
	}
	if tr.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", tr.Len(), len(oracle))
	}
	buf := make([]byte, 16)
	for k, v := range oracle {
		if !tr.Get(k, buf) || !bytes.Equal(buf, v) {
			t.Fatalf("key %d wrong", k)
		}
	}
	var wantKeys []uint64
	for k := range oracle {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	var gotKeys []uint64
	tr.Walk(func(k uint64) bool { gotKeys = append(gotKeys, k); return true })
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("walk visited %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("walk[%d] = %d, want %d", i, gotKeys[i], wantKeys[i])
		}
	}
}

func TestBTreeSequentialAndDepth(t *testing.T) {
	d, a := newArena(t, 64<<20)
	tr := NewBTree(d, a, 8)
	n := 10000
	for i := 0; i < n; i++ {
		tr.Put(uint64(i), item(uint64(i), 8))
	}
	buf := make([]byte, 8)
	for i := 0; i < n; i += 97 {
		if !tr.Get(uint64(i), buf) {
			t.Fatalf("key %d missing", i)
		}
	}
	// With order 8 (min fill ~4), depth should be around log_4(n).
	if d := tr.Depth(); d > 10 {
		t.Fatalf("depth %d too large for %d keys", d, n)
	}
}

// Property: a random operation sequence applied to the B-tree and a Go map
// always agrees.
func TestBTreeQuickProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		if len(opsRaw) > 400 {
			opsRaw = opsRaw[:400]
		}
		d, a := newArena(t, 32<<20)
		tr := NewBTree(d, a, 8)
		oracle := map[uint64][]byte{}
		r := sim.NewRand(seed)
		for _, op := range opsRaw {
			key := uint64(op % 64)
			val := item(r.Uint64(), 8)
			tr.Put(key, val)
			oracle[key] = val
		}
		buf := make([]byte, 8)
		for k, v := range oracle {
			if !tr.Get(k, buf) || !bytes.Equal(buf, v) {
				return false
			}
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashmap and RB-tree agree on the same random workload.
func TestMapTreeQuickAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		d, a := newArena(t, 32<<20)
		h := NewHashMap(d, a, 32, 8)
		tr := NewRBTree(d, a, 8)
		r := sim.NewRand(seed)
		for i := 0; i < 300; i++ {
			key := uint64(r.Intn(100))
			val := item(r.Uint64(), 8)
			h.Put(key, val)
			tr.Put(key, val)
		}
		if h.Len() != tr.Len() {
			return false
		}
		b1, b2 := make([]byte, 8), make([]byte, 8)
		for k := uint64(0); k < 100; k++ {
			ok1 := h.Get(k, b1)
			ok2 := tr.Get(k, b2)
			if ok1 != ok2 {
				return false
			}
			if ok1 && !bytes.Equal(b1, b2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeItems(t *testing.T) {
	for _, size := range []int{64, 512, 1024} {
		size := size
		t.Run(fmt.Sprintf("item%d", size), func(t *testing.T) {
			d, a := newArena(t, 64<<20)
			h := NewHashMap(d, a, 128, size)
			want := map[uint64][]byte{}
			for i := 0; i < 200; i++ {
				v := item(uint64(i)*13+1, size)
				h.Put(uint64(i), v)
				want[uint64(i)] = v
			}
			buf := make([]byte, size)
			for k, v := range want {
				if !h.Get(k, buf) || !bytes.Equal(buf, v) {
					t.Fatalf("key %d wrong at item size %d", k, size)
				}
			}
		})
	}
}

func log2(n int) int {
	c := 0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	return c
}
