package structures

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
)

// B-tree order: each node holds up to btMaxKeys keys. Seven keys per node
// keeps a node's key array within two cache lines — typical for PM B-trees.
const (
	btMaxKeys = 7
	btMinKeys = btMaxKeys / 2
)

// BTree is a persistent B-tree from uint64 keys to fixed-size values.
// Values live in separately allocated blobs; leaves store blob pointers.
// Inserts split full nodes on the way down (proactive splitting), giving
// the 2–12 stores per insert of Table III.
//
// Node layout (words):
//
//	[nkeys][leaf][keys ×7][children ×8 | valptrs ×7 +pad]
type BTree struct {
	m     pmem.Memory
	arena *pmem.Arena
	base  mem.PAddr
	val   int
}

const (
	btOffRoot  = 0
	btOffCount = 8
	btOffVal   = 16

	btNodeN    = 0
	btNodeLeaf = 8
	btNodeKeys = 16                           // 7 keys
	btNodePtrs = btNodeKeys + 8*btMaxKeys     // 8 children or 7 value ptrs
	btNodeSize = btNodePtrs + 8*(btMaxKeys+1) // 136 B -> allocates 192 aligned
)

// NewBTree allocates an empty tree. Must run inside a transaction.
func NewBTree(m pmem.Memory, a *pmem.Arena, valBytes int) *BTree {
	if valBytes <= 0 || valBytes%mem.WordSize != 0 {
		panic(fmt.Sprintf("structures: value size %d must be a positive word multiple", valBytes))
	}
	base := a.AllocAligned(mem.LineSize, mem.LineSize)
	root := a.AllocAligned(btNodeSize, mem.LineSize)
	m.WriteWord(root+btNodeLeaf, 1)
	m.WriteWord(base+btOffRoot, uint64(root))
	m.WriteWord(base+btOffCount, 0)
	m.WriteWord(base+btOffVal, uint64(valBytes))
	return &BTree{m: m, arena: a, base: base, val: valBytes}
}

// Base reports the tree's persistent root address.
func (t *BTree) Base() mem.PAddr { return t.base }

// Len reports the number of keys.
func (t *BTree) Len() int { return int(t.m.ReadWord(t.base + btOffCount)) }

func (t *BTree) nkeys(n mem.PAddr) int   { return int(t.m.ReadWord(n + btNodeN)) }
func (t *BTree) isLeaf(n mem.PAddr) bool { return t.m.ReadWord(n+btNodeLeaf) != 0 }
func (t *BTree) keyAt(n mem.PAddr, i int) uint64 {
	return t.m.ReadWord(n + btNodeKeys + mem.PAddr(8*i))
}
func (t *BTree) ptrAt(n mem.PAddr, i int) mem.PAddr {
	return mem.PAddr(t.m.ReadWord(n + btNodePtrs + mem.PAddr(8*i)))
}
func (t *BTree) setNKeys(n mem.PAddr, v int) { t.m.WriteWord(n+btNodeN, uint64(v)) }
func (t *BTree) setKeyAt(n mem.PAddr, i int, k uint64) {
	t.m.WriteWord(n+btNodeKeys+mem.PAddr(8*i), k)
}
func (t *BTree) setPtrAt(n mem.PAddr, i int, p mem.PAddr) {
	t.m.WriteWord(n+btNodePtrs+mem.PAddr(8*i), uint64(p))
}

// Get reads key's value into buf, reporting whether the key exists.
func (t *BTree) Get(key uint64, buf []byte) bool {
	t.checkVal(buf)
	n := mem.PAddr(t.m.ReadWord(t.base + btOffRoot))
	for {
		nk := t.nkeys(n)
		i := 0
		for i < nk && key > t.keyAt(n, i) {
			i++
		}
		if t.isLeaf(n) {
			if i < nk && key == t.keyAt(n, i) {
				t.m.Read(t.ptrAt(n, i), buf)
				return true
			}
			return false
		}
		// Separator keys are copies whose originals live in the left
		// subtree, so equality descends left (ptr i) as well.
		n = t.ptrAt(n, i)
	}
}

// UpdateWord overwrites one 8-byte word of key's value (a sparse field
// update), reporting whether the key exists. Must run inside a
// transaction.
func (t *BTree) UpdateWord(key uint64, wordIdx int, v uint64) bool {
	if wordIdx < 0 || wordIdx*mem.WordSize >= t.val {
		panic(fmt.Sprintf("structures: word index %d out of value range", wordIdx))
	}
	n := mem.PAddr(t.m.ReadWord(t.base + btOffRoot))
	for {
		nk := t.nkeys(n)
		i := 0
		for i < nk && key > t.keyAt(n, i) {
			i++
		}
		if t.isLeaf(n) {
			if i < nk && key == t.keyAt(n, i) {
				t.m.WriteWord(t.ptrAt(n, i)+mem.PAddr(wordIdx*mem.WordSize), v)
				return true
			}
			return false
		}
		n = t.ptrAt(n, i)
	}
}

// Put inserts key or overwrites its value. Must run inside a transaction.
func (t *BTree) Put(key uint64, val []byte) {
	t.checkVal(val)
	root := mem.PAddr(t.m.ReadWord(t.base + btOffRoot))
	if t.nkeys(root) == btMaxKeys {
		// Grow: new root, split old root.
		newRoot := t.arena.AllocAligned(btNodeSize, mem.LineSize)
		// leaf=0 and nkeys=0 are already zero in fresh memory.
		t.setPtrAt(newRoot, 0, root)
		t.splitChild(newRoot, 0)
		t.m.WriteWord(t.base+btOffRoot, uint64(newRoot))
		root = newRoot
	}
	if t.insertNonFull(root, key, val) {
		t.m.WriteWord(t.base+btOffCount, uint64(t.Len()+1))
	}
}

// insertNonFull inserts into a node known to have room, splitting children
// proactively. It reports whether a new key was added (false = overwrite).
func (t *BTree) insertNonFull(n mem.PAddr, key uint64, val []byte) bool {
	for {
		nk := t.nkeys(n)
		i := 0
		for i < nk && key > t.keyAt(n, i) {
			i++
		}
		if t.isLeaf(n) {
			if i < nk && key == t.keyAt(n, i) {
				writeItemWhole(t.m, t.ptrAt(n, i), val)
				return false
			}
			// Shift keys/ptrs right.
			for j := nk; j > i; j-- {
				t.setKeyAt(n, j, t.keyAt(n, j-1))
				t.setPtrAt(n, j, t.ptrAt(n, j-1))
			}
			blob := t.arena.Alloc(t.val)
			writeItemWhole(t.m, blob, val)
			t.setKeyAt(n, i, key)
			t.setPtrAt(n, i, blob)
			t.setNKeys(n, nk+1)
			return true
		}
		child := t.ptrAt(n, i)
		if t.nkeys(child) == btMaxKeys {
			t.splitChild(n, i)
			// Equal keys stay with the left subtree (separators are
			// copies), so only strictly-greater keys move right.
			if key > t.keyAt(n, i) {
				i++
			}
			child = t.ptrAt(n, i)
		}
		n = child
	}
}

// splitChild splits the full child at index i of parent n around its
// median key.
func (t *BTree) splitChild(n mem.PAddr, i int) {
	child := t.ptrAt(n, i)
	leaf := t.isLeaf(child)
	right := t.arena.AllocAligned(btNodeSize, mem.LineSize)
	if leaf {
		t.m.WriteWord(right+btNodeLeaf, 1)
	}
	mid := btMaxKeys / 2
	// Move upper keys to the new right node.
	rk := 0
	for j := mid + 1; j < btMaxKeys; j++ {
		t.setKeyAt(right, rk, t.keyAt(child, j))
		t.setPtrAt(right, rk, t.ptrAt(child, j))
		rk++
	}
	if !leaf {
		// Children: ptrs mid+1..max move; for interior nodes ptr slot k
		// pairs with key slot k as the left child.
		for j := mid + 1; j <= btMaxKeys; j++ {
			t.setPtrAt(right, j-(mid+1), t.ptrAt(child, j))
		}
		t.setNKeys(right, btMaxKeys-mid-1)
	} else {
		// Leaves keep the median key's value with the median key, which
		// moves up; to preserve lookups, the median stays in the left
		// leaf too (B+-tree style separator copy).
		t.setNKeys(right, rk)
	}
	midKey := t.keyAt(child, mid)
	if leaf {
		// The median stays in the left leaf; the parent's separator is a
		// copy (B+-tree style).
		t.setNKeys(child, mid+1)
	} else {
		t.setNKeys(child, mid)
	}
	// Shift parent entries right to make room at i.
	pn := t.nkeys(n)
	for j := pn; j > i; j-- {
		t.setKeyAt(n, j, t.keyAt(n, j-1))
	}
	for j := pn + 1; j > i+1; j-- {
		t.setPtrAt(n, j, t.ptrAt(n, j-1))
	}
	t.setKeyAt(n, i, midKey)
	t.setPtrAt(n, i+1, right)
	t.setNKeys(n, pn+1)
}

// Walk calls fn for every key in ascending order until fn returns false
// (duplicate separator copies are suppressed).
func (t *BTree) Walk(fn func(key uint64) bool) {
	var last uint64
	var seen bool
	t.walk(mem.PAddr(t.m.ReadWord(t.base+btOffRoot)), func(k uint64) bool {
		if seen && k == last {
			return true
		}
		last, seen = k, true
		return fn(k)
	})
}

func (t *BTree) walk(n mem.PAddr, fn func(uint64) bool) bool {
	nk := t.nkeys(n)
	if t.isLeaf(n) {
		for i := 0; i < nk; i++ {
			if !fn(t.keyAt(n, i)) {
				return false
			}
		}
		return true
	}
	for i := 0; i < nk; i++ {
		if !t.walk(t.ptrAt(n, i), fn) {
			return false
		}
		if !fn(t.keyAt(n, i)) {
			return false
		}
	}
	return t.walk(t.ptrAt(n, nk), fn)
}

// scanNoter is implemented by memories that account range scans
// (engine.Env); plain stores and pmem.Direct simply skip the accounting.
type scanNoter interface {
	NoteScan(items, bytes int)
}

// Scan reads up to max values with key >= start into buf in ascending key
// order, one at a time (buf is reused per item; fn, when non-nil, observes
// each key after its value lands in buf). It returns the number of items
// read. Keys and their values live only in leaves — interior separators
// are copies whose originals sit in the left subtree — so a leaf-only
// in-order traversal yields each key exactly once. Every node and value
// access flows through the simulated hierarchy; the memory's scan
// accounting (engine.Env.NoteScan) observes the op's item and byte counts.
func (t *BTree) Scan(start uint64, max int, buf []byte, fn func(key uint64)) int {
	t.checkVal(buf)
	if max <= 0 {
		return 0
	}
	count := 0
	t.scan(mem.PAddr(t.m.ReadWord(t.base+btOffRoot)), start, max, buf, fn, &count)
	if n, ok := t.m.(scanNoter); ok {
		n.NoteScan(count, count*t.val)
	}
	return count
}

func (t *BTree) scan(n mem.PAddr, start uint64, max int, buf []byte, fn func(uint64), count *int) bool {
	nk := t.nkeys(n)
	i := 0
	for i < nk && start > t.keyAt(n, i) {
		i++
	}
	if t.isLeaf(n) {
		for ; i < nk && *count < max; i++ {
			t.m.Read(t.ptrAt(n, i), buf)
			if fn != nil {
				fn(t.keyAt(n, i))
			}
			*count++
		}
		return *count < max
	}
	for ; i <= nk; i++ {
		if !t.scan(t.ptrAt(n, i), start, max, buf, fn, count) {
			return false
		}
	}
	return true
}

// Depth reports tree height (every root-to-leaf path has equal length).
func (t *BTree) Depth() int {
	d := 1
	n := mem.PAddr(t.m.ReadWord(t.base + btOffRoot))
	for !t.isLeaf(n) {
		n = t.ptrAt(n, 0)
		d++
	}
	return d
}

func (t *BTree) checkVal(b []byte) {
	if len(b) != t.val {
		panic(fmt.Sprintf("structures: value is %d bytes, tree holds %d-byte values", len(b), t.val))
	}
}
