package structures

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
)

// HashMap is a persistent chained hash map from uint64 keys to fixed-size
// values.
//
// Layout:
//
//	header line: [buckets][count][valBytes][tablePtr]
//	table:       buckets × 8-byte head pointers
//	node:        [key][next][value...]
type HashMap struct {
	m       pmem.Memory
	arena   *pmem.Arena
	base    mem.PAddr
	val     int
	buckets int
}

const (
	hmOffBuckets = 0
	hmOffCount   = 8
	hmOffVal     = 16
	hmOffTable   = 24

	nodeOffKey  = 0
	nodeOffNext = 8
	nodeOffVal  = 16
)

// NewHashMap allocates a map with the given bucket count and value size.
// Must run inside a transaction.
func NewHashMap(m pmem.Memory, a *pmem.Arena, buckets, valBytes int) *HashMap {
	if valBytes <= 0 || valBytes%mem.WordSize != 0 {
		panic(fmt.Sprintf("structures: value size %d must be a positive word multiple", valBytes))
	}
	if buckets <= 0 {
		panic("structures: need at least one bucket")
	}
	base := a.AllocAligned(mem.LineSize, mem.LineSize)
	table := a.AllocAligned(buckets*mem.WordSize, mem.LineSize)
	m.WriteWord(base+hmOffBuckets, uint64(buckets))
	m.WriteWord(base+hmOffCount, 0)
	m.WriteWord(base+hmOffVal, uint64(valBytes))
	m.WriteWord(base+hmOffTable, uint64(table))
	// Bucket heads start zeroed (fresh arena memory is zero); writing
	// them here would be buckets extra stores for nothing.
	return &HashMap{m: m, arena: a, base: base, val: valBytes, buckets: buckets}
}

// Base reports the map's persistent root address.
func (h *HashMap) Base() mem.PAddr { return h.base }

// Len reports the number of keys.
func (h *HashMap) Len() int { return int(h.m.ReadWord(h.base + hmOffCount)) }

func (h *HashMap) bucketAddr(key uint64) mem.PAddr {
	table := mem.PAddr(h.m.ReadWord(h.base + hmOffTable))
	// Fibonacci hashing spreads sequential keys.
	idx := ((key * 0x9E3779B97F4A7C15) >> 32) % uint64(h.buckets)
	return table + mem.PAddr(idx*mem.WordSize)
}

// find walks the chain for key, returning the node address (or Null).
func (h *HashMap) find(key uint64) mem.PAddr {
	node := mem.PAddr(h.m.ReadWord(h.bucketAddr(key)))
	for node != pmem.Null {
		if h.m.ReadWord(node+nodeOffKey) == key {
			return node
		}
		node = mem.PAddr(h.m.ReadWord(node + nodeOffNext))
	}
	return pmem.Null
}

// Put inserts key or overwrites its value. Must run inside a transaction.
func (h *HashMap) Put(key uint64, val []byte) {
	h.checkVal(val)
	if node := h.find(key); node != pmem.Null {
		writeItemChunks(h.m, node+nodeOffVal, val)
		return
	}
	bucket := h.bucketAddr(key)
	head := h.m.ReadWord(bucket)
	node := h.arena.Alloc(nodeOffVal + h.val)
	h.m.WriteWord(node+nodeOffKey, key)
	h.m.WriteWord(node+nodeOffNext, head)
	writeItemChunks(h.m, node+nodeOffVal, val)
	h.m.WriteWord(bucket, uint64(node))
	h.m.WriteWord(h.base+hmOffCount, uint64(h.Len()+1))
}

// UpdateWord overwrites one 8-byte word of key's value (a sparse field
// update), reporting whether the key exists. Must run inside a
// transaction.
func (h *HashMap) UpdateWord(key uint64, wordIdx int, v uint64) bool {
	if wordIdx < 0 || wordIdx*mem.WordSize >= h.val {
		panic(fmt.Sprintf("structures: word index %d out of value range", wordIdx))
	}
	node := h.find(key)
	if node == pmem.Null {
		return false
	}
	h.m.WriteWord(node+nodeOffVal+mem.PAddr(wordIdx*mem.WordSize), v)
	return true
}

// Get reads key's value into buf, reporting whether the key exists.
func (h *HashMap) Get(key uint64, buf []byte) bool {
	h.checkVal(buf)
	node := h.find(key)
	if node == pmem.Null {
		return false
	}
	h.m.Read(node+nodeOffVal, buf)
	return true
}

// Delete unlinks key, reporting whether it was present. The node itself is
// not reclaimed (the arena is bump-only). Must run inside a transaction.
func (h *HashMap) Delete(key uint64) bool {
	bucket := h.bucketAddr(key)
	prev := pmem.Null
	node := mem.PAddr(h.m.ReadWord(bucket))
	for node != pmem.Null {
		if h.m.ReadWord(node+nodeOffKey) == key {
			next := h.m.ReadWord(node + nodeOffNext)
			if prev == pmem.Null {
				h.m.WriteWord(bucket, next)
			} else {
				h.m.WriteWord(prev+nodeOffNext, next)
			}
			h.m.WriteWord(h.base+hmOffCount, uint64(h.Len()-1))
			return true
		}
		prev = node
		node = mem.PAddr(h.m.ReadWord(node + nodeOffNext))
	}
	return false
}

func (h *HashMap) checkVal(b []byte) {
	if len(b) != h.val {
		panic(fmt.Sprintf("structures: value is %d bytes, map holds %d-byte values", len(b), h.val))
	}
}
