package structures

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
)

// RBTree is a persistent red-black tree from uint64 keys to fixed-size
// values. Rebalancing rotations produce the scattered small pointer writes
// (2–10 stores per insert, Table III) that make trees the sparse-update
// stress case for crash-consistency schemes.
//
// Layout:
//
//	header line: [root][count][valBytes]
//	node:        [key][left][right][parent][color][value...]
type RBTree struct {
	m     pmem.Memory
	arena *pmem.Arena
	base  mem.PAddr
	val   int
}

const (
	rbOffRoot  = 0
	rbOffCount = 8
	rbOffVal   = 16

	rbNodeKey    = 0
	rbNodeLeft   = 8
	rbNodeRight  = 16
	rbNodeParent = 24
	rbNodeColor  = 32
	rbNodeVal    = 40

	rbRed   = 0
	rbBlack = 1
)

// NewRBTree allocates an empty tree. Must run inside a transaction.
func NewRBTree(m pmem.Memory, a *pmem.Arena, valBytes int) *RBTree {
	if valBytes <= 0 || valBytes%mem.WordSize != 0 {
		panic(fmt.Sprintf("structures: value size %d must be a positive word multiple", valBytes))
	}
	base := a.AllocAligned(mem.LineSize, mem.LineSize)
	m.WriteWord(base+rbOffRoot, 0)
	m.WriteWord(base+rbOffCount, 0)
	m.WriteWord(base+rbOffVal, uint64(valBytes))
	return &RBTree{m: m, arena: a, base: base, val: valBytes}
}

// Base reports the tree's persistent root address.
func (t *RBTree) Base() mem.PAddr { return t.base }

// Len reports the number of keys.
func (t *RBTree) Len() int { return int(t.m.ReadWord(t.base + rbOffCount)) }

// Accessor helpers (each is one simulated load or store).
func (t *RBTree) root() mem.PAddr             { return mem.PAddr(t.m.ReadWord(t.base + rbOffRoot)) }
func (t *RBTree) setRoot(n mem.PAddr)         { t.m.WriteWord(t.base+rbOffRoot, uint64(n)) }
func (t *RBTree) key(n mem.PAddr) uint64      { return t.m.ReadWord(n + rbNodeKey) }
func (t *RBTree) left(n mem.PAddr) mem.PAddr  { return mem.PAddr(t.m.ReadWord(n + rbNodeLeft)) }
func (t *RBTree) right(n mem.PAddr) mem.PAddr { return mem.PAddr(t.m.ReadWord(n + rbNodeRight)) }
func (t *RBTree) parent(n mem.PAddr) mem.PAddr {
	return mem.PAddr(t.m.ReadWord(n + rbNodeParent))
}
func (t *RBTree) color(n mem.PAddr) uint64 {
	if n == pmem.Null {
		return rbBlack // nil leaves are black
	}
	return t.m.ReadWord(n + rbNodeColor)
}
func (t *RBTree) setLeft(n, v mem.PAddr)   { t.m.WriteWord(n+rbNodeLeft, uint64(v)) }
func (t *RBTree) setRight(n, v mem.PAddr)  { t.m.WriteWord(n+rbNodeRight, uint64(v)) }
func (t *RBTree) setParent(n, v mem.PAddr) { t.m.WriteWord(n+rbNodeParent, uint64(v)) }
func (t *RBTree) setColor(n mem.PAddr, c uint64) {
	if n == pmem.Null {
		return
	}
	t.m.WriteWord(n+rbNodeColor, c)
}

// UpdateWord overwrites one 8-byte word of key's value (a sparse field
// update — the 2-store transactions of Table III), reporting whether the
// key exists. Must run inside a transaction.
func (t *RBTree) UpdateWord(key uint64, wordIdx int, v uint64) bool {
	if wordIdx < 0 || wordIdx*mem.WordSize >= t.val {
		panic(fmt.Sprintf("structures: word index %d out of value range", wordIdx))
	}
	n := t.findNode(key)
	if n == pmem.Null {
		return false
	}
	t.m.WriteWord(n+rbNodeVal+mem.PAddr(wordIdx*mem.WordSize), v)
	return true
}

// Get reads key's value into buf, reporting whether the key exists.
func (t *RBTree) Get(key uint64, buf []byte) bool {
	t.checkVal(buf)
	n := t.findNode(key)
	if n == pmem.Null {
		return false
	}
	t.m.Read(n+rbNodeVal, buf)
	return true
}

func (t *RBTree) findNode(key uint64) mem.PAddr {
	n := t.root()
	for n != pmem.Null {
		k := t.key(n)
		switch {
		case key == k:
			return n
		case key < k:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	return pmem.Null
}

// Put inserts key or overwrites its value. Must run inside a transaction.
func (t *RBTree) Put(key uint64, val []byte) {
	t.checkVal(val)
	parent := pmem.Null
	n := t.root()
	for n != pmem.Null {
		parent = n
		k := t.key(n)
		switch {
		case key == k:
			writeItemWhole(t.m, n+rbNodeVal, val)
			return
		case key < k:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	node := t.arena.Alloc(rbNodeVal + t.val)
	t.m.WriteWord(node+rbNodeKey, key)
	// Left/right are zero in fresh arena memory; only parent and color
	// need explicit initialization.
	t.setParent(node, parent)
	t.setColor(node, rbRed)
	writeItemWhole(t.m, node+rbNodeVal, val)
	if parent == pmem.Null {
		t.setRoot(node)
	} else if key < t.key(parent) {
		t.setLeft(parent, node)
	} else {
		t.setRight(parent, node)
	}
	t.m.WriteWord(t.base+rbOffCount, uint64(t.Len()+1))
	t.insertFixup(node)
}

func (t *RBTree) insertFixup(z mem.PAddr) {
	for {
		p := t.parent(z)
		if p == pmem.Null || t.color(p) != rbRed {
			break
		}
		g := t.parent(p)
		if g == pmem.Null {
			break
		}
		if p == t.left(g) {
			u := t.right(g)
			if t.color(u) == rbRed {
				t.setColor(p, rbBlack)
				t.setColor(u, rbBlack)
				t.setColor(g, rbRed)
				z = g
				continue
			}
			if z == t.right(p) {
				z = p
				t.rotateLeft(z)
				p = t.parent(z)
				g = t.parent(p)
			}
			t.setColor(p, rbBlack)
			t.setColor(g, rbRed)
			t.rotateRight(g)
		} else {
			u := t.left(g)
			if t.color(u) == rbRed {
				t.setColor(p, rbBlack)
				t.setColor(u, rbBlack)
				t.setColor(g, rbRed)
				z = g
				continue
			}
			if z == t.left(p) {
				z = p
				t.rotateRight(z)
				p = t.parent(z)
				g = t.parent(p)
			}
			t.setColor(p, rbBlack)
			t.setColor(g, rbRed)
			t.rotateLeft(g)
		}
	}
	t.setColor(t.root(), rbBlack)
}

func (t *RBTree) rotateLeft(x mem.PAddr) {
	y := t.right(x)
	yl := t.left(y)
	t.setRight(x, yl)
	if yl != pmem.Null {
		t.setParent(yl, x)
	}
	p := t.parent(x)
	t.setParent(y, p)
	if p == pmem.Null {
		t.setRoot(y)
	} else if x == t.left(p) {
		t.setLeft(p, y)
	} else {
		t.setRight(p, y)
	}
	t.setLeft(y, x)
	t.setParent(x, y)
}

func (t *RBTree) rotateRight(x mem.PAddr) {
	y := t.left(x)
	yr := t.right(y)
	t.setLeft(x, yr)
	if yr != pmem.Null {
		t.setParent(yr, x)
	}
	p := t.parent(x)
	t.setParent(y, p)
	if p == pmem.Null {
		t.setRoot(y)
	} else if x == t.right(p) {
		t.setRight(p, y)
	} else {
		t.setLeft(p, y)
	}
	t.setRight(y, x)
	t.setParent(x, y)
}

// transplant replaces the subtree rooted at u with the subtree rooted at v
// (v may be Null).
func (t *RBTree) transplant(u, v mem.PAddr) {
	p := t.parent(u)
	if p == pmem.Null {
		t.setRoot(v)
	} else if u == t.left(p) {
		t.setLeft(p, v)
	} else {
		t.setRight(p, v)
	}
	if v != pmem.Null {
		t.setParent(v, p)
	}
}

// minNode returns the leftmost node of the subtree rooted at n.
func (t *RBTree) minNode(n mem.PAddr) mem.PAddr {
	for {
		l := t.left(n)
		if l == pmem.Null {
			return n
		}
		n = l
	}
}

// Delete removes key, reporting whether it was present. The node is not
// reclaimed (the arena is bump-only). Must run inside a transaction.
func (t *RBTree) Delete(key uint64) bool {
	z := t.findNode(key)
	if z == pmem.Null {
		return false
	}
	y := z
	yColor := t.color(y)
	var x, xp mem.PAddr
	switch {
	case t.left(z) == pmem.Null:
		x, xp = t.right(z), t.parent(z)
		t.transplant(z, x)
	case t.right(z) == pmem.Null:
		x, xp = t.left(z), t.parent(z)
		t.transplant(z, x)
	default:
		y = t.minNode(t.right(z))
		yColor = t.color(y)
		x = t.right(y)
		if t.parent(y) == z {
			xp = y
		} else {
			xp = t.parent(y)
			t.transplant(y, x)
			t.setRight(y, t.right(z))
			t.setParent(t.right(y), y)
		}
		t.transplant(z, y)
		t.setLeft(y, t.left(z))
		t.setParent(t.left(y), y)
		t.setColor(y, t.color(z))
	}
	if yColor == rbBlack {
		t.deleteFixup(x, xp)
	}
	t.m.WriteWord(t.base+rbOffCount, uint64(t.Len()-1))
	return true
}

// deleteFixup restores the red-black invariants after removing a black
// node; x is the doubly-black node (possibly Null) and xp its parent.
func (t *RBTree) deleteFixup(x, xp mem.PAddr) {
	for x != t.root() && t.color(x) == rbBlack {
		if xp == pmem.Null {
			break
		}
		if x == t.left(xp) {
			w := t.right(xp)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateLeft(xp)
				w = t.right(xp)
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
				xp = t.parent(x)
			} else {
				if t.color(t.right(w)) == rbBlack {
					t.setColor(t.left(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateRight(w)
					w = t.right(xp)
				}
				t.setColor(w, t.color(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.right(w), rbBlack)
				t.rotateLeft(xp)
				x = t.root()
				xp = pmem.Null
			}
		} else {
			w := t.left(xp)
			if t.color(w) == rbRed {
				t.setColor(w, rbBlack)
				t.setColor(xp, rbRed)
				t.rotateRight(xp)
				w = t.left(xp)
			}
			if t.color(t.right(w)) == rbBlack && t.color(t.left(w)) == rbBlack {
				t.setColor(w, rbRed)
				x = xp
				xp = t.parent(x)
			} else {
				if t.color(t.left(w)) == rbBlack {
					t.setColor(t.right(w), rbBlack)
					t.setColor(w, rbRed)
					t.rotateLeft(w)
					w = t.left(xp)
				}
				t.setColor(w, t.color(xp))
				t.setColor(xp, rbBlack)
				t.setColor(t.left(w), rbBlack)
				t.rotateRight(xp)
				x = t.root()
				xp = pmem.Null
			}
		}
	}
	t.setColor(x, rbBlack)
}

// CheckInvariants validates the red-black properties (root black, no red
// node with a red child, equal black heights) and the BST ordering,
// returning an error description or "" when valid. Used by tests.
func (t *RBTree) CheckInvariants() string {
	root := t.root()
	if root == pmem.Null {
		return ""
	}
	if t.color(root) != rbBlack {
		return "root is red"
	}
	msg := ""
	var lastKey uint64
	haveLast := false
	var walk func(n mem.PAddr) int
	walk = func(n mem.PAddr) int {
		if msg != "" {
			return 0
		}
		if n == pmem.Null {
			return 1
		}
		l, r := t.left(n), t.right(n)
		if t.color(n) == rbRed && (t.color(l) == rbRed || t.color(r) == rbRed) {
			msg = "red node with red child"
			return 0
		}
		lb := walk(l)
		if msg == "" {
			k := t.key(n)
			if haveLast && k <= lastKey {
				msg = "BST order violated"
				return 0
			}
			lastKey, haveLast = k, true
		}
		rb := walk(r)
		if msg == "" && lb != rb {
			msg = "black heights differ"
			return 0
		}
		bh := lb
		if t.color(n) == rbBlack {
			bh++
		}
		return bh
	}
	walk(root)
	return msg
}

// Min returns the smallest key (ok=false when empty).
func (t *RBTree) Min() (uint64, bool) {
	n := t.root()
	if n == pmem.Null {
		return 0, false
	}
	for {
		l := t.left(n)
		if l == pmem.Null {
			return t.key(n), true
		}
		n = l
	}
}

// Walk calls fn for every key in ascending order until fn returns false.
// Used by tests to validate structure against an oracle.
func (t *RBTree) Walk(fn func(key uint64) bool) {
	t.walk(t.root(), fn)
}

func (t *RBTree) walk(n mem.PAddr, fn func(key uint64) bool) bool {
	if n == pmem.Null {
		return true
	}
	if !t.walk(t.left(n), fn) {
		return false
	}
	if !fn(t.key(n)) {
		return false
	}
	return t.walk(t.right(n), fn)
}

// Depth reports the height of the tree (for balance checks in tests).
func (t *RBTree) Depth() int { return t.depth(t.root()) }

func (t *RBTree) depth(n mem.PAddr) int {
	if n == pmem.Null {
		return 0
	}
	l, r := t.depth(t.left(n)), t.depth(t.right(n))
	if l > r {
		return l + 1
	}
	return r + 1
}

func (t *RBTree) checkVal(b []byte) {
	if len(b) != t.val {
		panic(fmt.Sprintf("structures: value is %d bytes, tree holds %d-byte values", len(b), t.val))
	}
}
