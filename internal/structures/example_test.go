package structures_test

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/structures"
)

// The structures run over any pmem.Memory; tests and examples use the
// unsimulated Direct store, the workloads use engine.Env.
func ExampleHashMap() {
	d := pmem.NewDirect()
	arena := pmem.NewArena(d, mem.Region{Base: 0, Size: 1 << 20})
	arena.Init()

	users := structures.NewHashMap(d, arena, 64, 16)
	val := make([]byte, 16)
	copy(val, "alice")
	users.Put(1, val)
	copy(val, "bob\x00\x00")
	users.Put(2, val)

	got := make([]byte, 16)
	users.Get(1, got)
	fmt.Println(string(got[:5]), users.Len())
	// Output: alice 2
}

func ExampleRBTree() {
	d := pmem.NewDirect()
	arena := pmem.NewArena(d, mem.Region{Base: 0, Size: 4 << 20})
	arena.Init()

	tr := structures.NewRBTree(d, arena, 8)
	for _, k := range []uint64{30, 10, 20} {
		val := make([]byte, 8)
		val[0] = byte(k)
		tr.Put(k, val)
	}
	tr.Walk(func(k uint64) bool {
		fmt.Print(k, " ")
		return true
	})
	min, _ := tr.Min()
	fmt.Println("min:", min)
	// Output: 10 20 30 min: 10
}

func ExampleBTree() {
	d := pmem.NewDirect()
	arena := pmem.NewArena(d, mem.Region{Base: 0, Size: 8 << 20})
	arena.Init()

	tr := structures.NewBTree(d, arena, 8)
	val := make([]byte, 8)
	for k := uint64(1); k <= 20; k++ {
		tr.Put(k, val)
	}
	fmt.Println(tr.Len(), tr.Depth() > 1)
	// Output: 20 true
}

func ExampleQueue() {
	d := pmem.NewDirect()
	arena := pmem.NewArena(d, mem.Region{Base: 0, Size: 1 << 20})
	arena.Init()

	q := structures.NewQueue(d, arena, 8)
	item := make([]byte, 8)
	item[0] = 'x'
	q.Enqueue(item)
	item[0] = 'y'
	q.Enqueue(item)
	out := make([]byte, 8)
	q.Dequeue(out)
	fmt.Println(string(out[:1]), q.Len())
	// Output: x 1
}
