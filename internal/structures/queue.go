package structures

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
)

// Queue is a persistent FIFO of fixed-size items built from linked nodes.
//
// Layout:
//
//	header line: [head][tail][count][itemBytes]
//	node:        [next][item...]
type Queue struct {
	m     pmem.Memory
	arena *pmem.Arena
	base  mem.PAddr
	item  int
}

const (
	qOffHead  = 0
	qOffTail  = 8
	qOffCount = 16
	qOffItem  = 24

	qNodeOffNext = 0
	qNodeOffItem = 8
)

// NewQueue allocates an empty queue. Must run inside a transaction.
func NewQueue(m pmem.Memory, a *pmem.Arena, itemBytes int) *Queue {
	if itemBytes <= 0 || itemBytes%mem.WordSize != 0 {
		panic(fmt.Sprintf("structures: item size %d must be a positive word multiple", itemBytes))
	}
	base := a.AllocAligned(mem.LineSize, mem.LineSize)
	m.WriteWord(base+qOffHead, 0)
	m.WriteWord(base+qOffTail, 0)
	m.WriteWord(base+qOffCount, 0)
	m.WriteWord(base+qOffItem, uint64(itemBytes))
	return &Queue{m: m, arena: a, base: base, item: itemBytes}
}

// Base reports the queue's persistent root address.
func (q *Queue) Base() mem.PAddr { return q.base }

// Len reports the number of queued items.
func (q *Queue) Len() int { return int(q.m.ReadWord(q.base + qOffCount)) }

// Enqueue appends item (the paper's queue benchmark: node write, tail-link
// update, tail pointer, count — about 4 object-level stores). Must run
// inside a transaction.
func (q *Queue) Enqueue(item []byte) {
	q.checkItem(item)
	node := q.arena.Alloc(qNodeOffItem + q.item)
	writeItemChunks(q.m, node+qNodeOffItem, item)
	q.m.WriteWord(node+qNodeOffNext, 0)
	tail := mem.PAddr(q.m.ReadWord(q.base + qOffTail))
	if tail == pmem.Null {
		q.m.WriteWord(q.base+qOffHead, uint64(node))
	} else {
		q.m.WriteWord(tail+qNodeOffNext, uint64(node))
	}
	q.m.WriteWord(q.base+qOffTail, uint64(node))
	q.m.WriteWord(q.base+qOffCount, uint64(q.Len()+1))
}

// Dequeue pops the oldest item into buf, reporting whether the queue was
// non-empty. Must run inside a transaction.
func (q *Queue) Dequeue(buf []byte) bool {
	q.checkItem(buf)
	head := mem.PAddr(q.m.ReadWord(q.base + qOffHead))
	if head == pmem.Null {
		return false
	}
	q.m.Read(head+qNodeOffItem, buf)
	next := q.m.ReadWord(head + qNodeOffNext)
	q.m.WriteWord(q.base+qOffHead, next)
	if next == 0 {
		q.m.WriteWord(q.base+qOffTail, 0)
	}
	q.m.WriteWord(q.base+qOffCount, uint64(q.Len()-1))
	return true
}

// Peek reads the oldest item without removing it.
func (q *Queue) Peek(buf []byte) bool {
	q.checkItem(buf)
	head := mem.PAddr(q.m.ReadWord(q.base + qOffHead))
	if head == pmem.Null {
		return false
	}
	q.m.Read(head+qNodeOffItem, buf)
	return true
}

func (q *Queue) checkItem(b []byte) {
	if len(b) != q.item {
		panic(fmt.Sprintf("structures: item is %d bytes, queue holds %d-byte items", len(b), q.item))
	}
}
