// Package structures implements the five persistent data structures the
// paper's synthetic benchmarks exercise (Table III): vector, hashmap,
// queue, red-black tree, and B-tree. Every structure lives entirely in
// simulated NVM and manipulates its nodes through pmem.Memory loads and
// stores, so each operation produces the realistic fine-grained access
// pattern (pointer chases, metadata updates, scattered small writes) that
// distinguishes the crash-consistency schemes.
//
// All mutating methods must be called inside a transaction.
package structures

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
)

// Vector is a persistent fixed-capacity vector of fixed-size items.
// Layout: header line [len][cap][itemBytes][dataPtr], then the item array.
type Vector struct {
	m    pmem.Memory
	base mem.PAddr
	item int
}

const (
	vecOffLen  = 0
	vecOffCap  = 8
	vecOffItem = 16
	vecOffData = 24
)

// NewVector allocates a vector with the given capacity and item size
// (item size must be a word multiple). Must run inside a transaction.
func NewVector(m pmem.Memory, a *pmem.Arena, capacity, itemBytes int) *Vector {
	if itemBytes <= 0 || itemBytes%mem.WordSize != 0 {
		panic(fmt.Sprintf("structures: item size %d must be a positive word multiple", itemBytes))
	}
	base := a.AllocAligned(mem.LineSize, mem.LineSize)
	data := a.AllocAligned(capacity*itemBytes, mem.LineSize)
	m.WriteWord(base+vecOffLen, 0)
	m.WriteWord(base+vecOffCap, uint64(capacity))
	m.WriteWord(base+vecOffItem, uint64(itemBytes))
	m.WriteWord(base+vecOffData, uint64(data))
	return &Vector{m: m, base: base, item: itemBytes}
}

// OpenVector reattaches to a vector previously created at base.
func OpenVector(m pmem.Memory, base mem.PAddr) *Vector {
	return &Vector{m: m, base: base, item: int(m.ReadWord(base + vecOffItem))}
}

// Base reports the vector's persistent root address.
func (v *Vector) Base() mem.PAddr { return v.base }

// Len reports the number of items.
func (v *Vector) Len() int { return int(v.m.ReadWord(v.base + vecOffLen)) }

// Cap reports the capacity.
func (v *Vector) Cap() int { return int(v.m.ReadWord(v.base + vecOffCap)) }

func (v *Vector) slot(i int) mem.PAddr {
	data := mem.PAddr(v.m.ReadWord(v.base + vecOffData))
	return data + mem.PAddr(i*v.item)
}

// Append inserts item at the end. The item is written in cache-line-sized
// chunks (so a 64-byte item is 8 word-stores when written word-wise by the
// caller, or 1 chunked store here — the synthetic workloads choose the
// granularity).
func (v *Vector) Append(item []byte) int {
	v.checkItem(item)
	n := v.Len()
	if n >= v.Cap() {
		panic("structures: vector full (size the capacity at setup)")
	}
	v.writeItem(v.slot(n), item)
	v.m.WriteWord(v.base+vecOffLen, uint64(n+1))
	return n
}

// Update overwrites item i.
func (v *Vector) Update(i int, item []byte) {
	v.checkItem(item)
	v.checkIndex(i)
	v.writeItem(v.slot(i), item)
}

// UpdateWord overwrites one 8-byte word of item i (a sparse field update).
// Must run inside a transaction.
func (v *Vector) UpdateWord(i, wordIdx int, val uint64) {
	v.checkIndex(i)
	if wordIdx < 0 || wordIdx*mem.WordSize >= v.item {
		panic(fmt.Sprintf("structures: word index %d out of item range", wordIdx))
	}
	v.m.WriteWord(v.slot(i)+mem.PAddr(wordIdx*mem.WordSize), val)
}

// Get reads item i into buf.
func (v *Vector) Get(i int, buf []byte) {
	v.checkItem(buf)
	v.checkIndex(i)
	v.m.Read(v.slot(i), buf)
}

// writeItem stores an item word-by-word for small items (matching the
// paper's 8 stores per 64-byte insert) and in 64-byte chunks for large
// ones.
func (v *Vector) writeItem(at mem.PAddr, item []byte) {
	writeItemChunks(v.m, at, item)
}

func (v *Vector) checkItem(b []byte) {
	if len(b) != v.item {
		panic(fmt.Sprintf("structures: item is %d bytes, vector holds %d-byte items", len(b), v.item))
	}
}

func (v *Vector) checkIndex(i int) {
	if i < 0 || i >= v.Len() {
		panic(fmt.Sprintf("structures: index %d out of range [0,%d)", i, v.Len()))
	}
}

// writeItemWhole writes item data in line-sized stores (one store for a
// 64-byte value): the granularity the tree benchmarks use, where Table III
// counts only 2–12 object-level stores per transaction.
func writeItemWhole(m pmem.Memory, at mem.PAddr, item []byte) {
	for off := 0; off < len(item); off += mem.LineSize {
		end := off + mem.LineSize
		if end > len(item) {
			end = len(item)
		}
		m.Write(at+mem.PAddr(off), item[off:end])
	}
}

// writeItemChunks writes item data with the granularity the paper's
// workloads use: word stores for items up to a cache line (8 stores for
// 64 B), line-sized stores beyond that (16 stores for 1 KB).
func writeItemChunks(m pmem.Memory, at mem.PAddr, item []byte) {
	if len(item) <= mem.LineSize {
		for off := 0; off < len(item); off += mem.WordSize {
			m.Write(at+mem.PAddr(off), item[off:off+mem.WordSize])
		}
		return
	}
	for off := 0; off < len(item); off += mem.LineSize {
		end := off + mem.LineSize
		if end > len(item) {
			end = len(item)
		}
		m.Write(at+mem.PAddr(off), item[off:end])
	}
}
