package workload

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/nstore"
	"hoop/internal/sim"
)

// YCSB parameters (§IV-A): 80% updates / 20% reads over a Zipfian key
// distribution against an N-store database; key-value pairs of 512 B or
// 1 KB. Each transaction batches a few operations, landing in the Table III
// range of 8–32 stores per transaction.
const (
	ycsbKeysPerThread = 4096
	ycsbUpdateRatio   = 0.8
	ycsbZipfTheta     = 0.99
	ycsbMaxOpsPerTx   = 4
)

// YCSB returns the cloud-serving benchmark with the given value size.
func YCSB(valBytes int) Workload {
	return Workload{
		Name:        fmt.Sprintf("ycsb-%s", sizeTag(valBytes)),
		Desc:        "Cloud benchmark",
		StoresPerTx: "8-32",
		WriteRead:   "80%/20%",
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			env.TxBegin()
			db := nstore.Open(env, region)
			table := db.CreateTable(ycsbKeysPerThread, valBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			zipf := NewZipf(sim.NewRand(seed^0xFACE), ycsbKeysPerThread, ycsbZipfTheta)
			buf := make([]byte, valBytes)
			// Load phase: populate the whole key space.
			for k := 0; k < ycsbKeysPerThread; k++ {
				env.TxBegin()
				fillItem(rng, buf)
				table.Insert(uint64(k), buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				ops := 1 + rng.Intn(ycsbMaxOpsPerTx)
				for i := 0; i < ops; i++ {
					key := zipf.Next()
					if rng.Bool(ycsbUpdateRatio) {
						fillItem(rng, buf)
						table.Update(key, buf)
					} else {
						table.Read(key, buf)
					}
				}
				env.TxEnd()
			})
		},
	}
}
