package workload

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/nstore"
	"hoop/internal/sim"
)

// ycsbDefaults are the §IV-A parameters: 80% updates / 20% reads over a
// Zipfian key distribution against an N-store database; 1 KB key-value
// pairs. Each transaction batches a few operations, landing in the
// Table III range of 8–32 stores per transaction.
var ycsbDefaults = Options{
	ValBytes:  1024,
	Keys:      4096,
	SetupFrac: 1, // the load phase populates the whole key space
	Dist:      "zipfian",
	Theta:     0.99,
	OpsPerTx:  4,
	Mix:       Mix{Update: 0.8, Read: 0.2},
}

func init() {
	Register("ycsb", buildYCSB)
}

// YCSB returns the paper's cloud-serving benchmark with the given value
// size.
func YCSB(valBytes int) Workload { return MustBuild("ycsb", Options{ValBytes: valBytes}) }

// buildYCSB is the registry factory behind YCSB: the paper's update-heavy
// mix over the hash-table N-store backend. (The YCSB A–F suite runs over
// the ordered backend; see ycsbsuite.go.)
func buildYCSB(opt Options) Workload {
	o := opt.withDefaults(ycsbDefaults)
	updateRatio := o.Mix.Update / (o.Mix.Update + o.Mix.Read)
	return Workload{
		Name:        fmt.Sprintf("ycsb-%s", sizeTag(o.ValBytes)),
		Desc:        "Cloud benchmark",
		StoresPerTx: "8-32",
		WriteRead:   mixWriteRead(Mix{Update: o.Mix.Update, Read: o.Mix.Read}),
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			env.TxBegin()
			db := nstore.Open(env, region)
			table := db.CreateTable(o.Keys, o.ValBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			zipf := NewZipf(sim.NewRand(seed^0xFACE), uint64(o.Keys), o.Theta)
			buf := make([]byte, o.ValBytes)
			// Load phase: populate the key space.
			for k := 0; k < o.setupKeys(); k++ {
				env.TxBegin()
				fillItem(rng, buf)
				table.Insert(uint64(k), buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				ops := 1 + rng.Intn(o.OpsPerTx)
				for i := 0; i < ops; i++ {
					key := zipf.Next()
					if rng.Bool(updateRatio) {
						fillItem(rng, buf)
						table.Update(key, buf)
					} else {
						table.Read(key, buf)
					}
				}
				env.TxEnd()
			})
		},
	}
}

// mixWriteRead renders a Mix as the Table III write/read-percent string.
func mixWriteRead(m Mix) string {
	total := m.sum()
	if total == 0 {
		return "0%/0%"
	}
	w := (m.Update + m.Insert + m.RMW) / total
	return fmt.Sprintf("%.0f%%/%.0f%%", w*100, (1-w)*100)
}
