package workload

import (
	"bytes"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/trace"
)

func TestCaptureShape(t *testing.T) {
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const txs = 100
	cap, err := Capture(sys, MustBuild("queue", Options{ValBytes: 64, Keys: 512}), 5, func(runners []engine.TxRunner) {
		sys.Run(runners, txs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if cap.Workload != "queue-64" || cap.Threads != 2 {
		t.Fatalf("capture meta wrong: %+v", cap)
	}
	if cap.SetupOps <= 0 || cap.SetupOps >= len(cap.Ops) {
		t.Fatalf("setup boundary %d of %d ops", cap.SetupOps, len(cap.Ops))
	}
	// The wire bytes decode back to exactly Ops.
	wire, err := cap.WireBytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.NewReader(bytes.NewReader(wire)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(cap.Ops) {
		t.Fatalf("wire bytes decode to %d ops, struct has %d", len(decoded), len(cap.Ops))
	}
	// Setup ops must all close their transactions (no tx spans the
	// boundary), and every thread's measured stream must carry at least
	// the padding floor beyond the capture's own consumption.
	if _, err := trace.SplitTxs(cap.Ops[:cap.SetupOps], cap.Threads); err != nil {
		t.Fatalf("setup prefix is not transaction-closed: %v", err)
	}
	segs, err := trace.SplitTxs(cap.Ops[cap.SetupOps:], cap.Threads)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for th, s := range segs {
		if len(s) == 0 {
			t.Fatalf("thread %d has no measured transactions", th)
		}
		total += len(s)
	}
	if total < txs+2*padFloor {
		t.Fatalf("measured streams carry %d txs, want >= %d committed plus padding", total, txs+2*padFloor)
	}
}
