// Package workload implements the paper's benchmark suite (Table III): the
// five synthetic data-structure workloads (vector, hashmap, queue, RB-tree,
// B-tree) over 64-byte and 1 KB items, the YCSB cloud benchmark with a
// Zipfian key distribution against an N-store-style table, and the TPC-C
// new-order transaction. Each workload thread owns a private arena (the
// paper runs per-thread database tables), and every operation flows through
// the simulated memory hierarchy.
package workload

import (
	"math"

	"hoop/internal/sim"
)

// Zipf generates Zipfian-distributed values in [0, n) with skew theta,
// using the Gray et al. method YCSB uses (§IV-A cites the YCSB Zipfian
// distribution [11]). Deterministic given its Rand.
type Zipf struct {
	rng   *sim.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
}

// NewZipf builds a generator over [0, n). theta=0.99 is the YCSB default.
func NewZipf(rng *sim.Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf over empty range")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powF(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next returns the next sample. Rank 0 is the hottest key.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+powF(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * powF(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

func zeta(n uint64, theta float64) float64 {
	// For the table sizes used here (≤ 64 Ki keys) the direct sum is fine.
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / powF(float64(i), theta)
	}
	return sum
}

func powF(x, y float64) float64 { return math.Pow(x, y) }
