package workload

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/trace"
)

// Captured is one (workload, seed) column's recorded op stream: setup ops
// followed by the measured window's ops plus padding transactions. The
// padding exists because the engine's min-clock scheduler draws a
// different number of transactions from each thread under each scheme's
// timing — a replayer needs headroom on every thread beyond what the
// capture scheme happened to consume.
type Captured struct {
	// Workload is the recorded workload's name.
	Workload string
	// Threads is the thread count the capture ran with.
	Threads int
	// SetupOps is the index in Ops where setup ends and the measured
	// stream begins. Replayers execute Ops[:SetupOps] in recorded global
	// order, then feed Ops[SetupOps:] per thread as transactions.
	SetupOps int
	// Ops is the full recorded stream.
	Ops []trace.Op
}

// WireBytes serializes the capture in the binary trace format — the
// cache/hash key material and on-disk representation. It is a method
// rather than a field so runs that never touch the cell cache skip the
// encoding pass entirely.
func (c *Captured) WireBytes() ([]byte, error) {
	b, err := trace.WriteOps(c.Ops)
	if err != nil {
		return nil, fmt.Errorf("workload: encoding %s capture: %w", c.Workload, err)
	}
	return b, nil
}

// padHeadroom sizes the per-thread padding: every thread's measured
// stream is extended to maxConsumed + maxConsumed/4 + padFloor committed
// transactions, where maxConsumed is the largest per-thread draw the
// capture scheme made. Min-clock scheduling keeps per-thread draws within
// a few percent of each other across schemes, so a 25%+16 margin is far
// beyond any observed skew; a replayer that still runs dry fails loudly.
const padFloor = 16

// Capture runs w once on sys while recording its operation stream. The
// run callback receives the freshly built runners and executes the
// measured phase however the caller wants (the harness passes its
// measurement window); everything the engine emits before run returns is
// recorded. After run returns, every thread's runner is driven further to
// build per-thread padding, so the capture replays against schemes whose
// scheduling draws more transactions from some thread than this run did.
func Capture(sys *engine.System, w Workload, seed uint64, run func(runners []engine.TxRunner)) (*Captured, error) {
	sink := &trace.OpSink{}
	sys.Subscribe(sink, trace.RecordMask)
	runners := w.Runners(sys, seed)
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("workload: capturing %s setup: %w", w.Name, err)
	}
	setupOps := len(sink.Ops)
	run(runners)
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("workload: capturing %s: %w", w.Name, err)
	}
	threads := sys.Config().Threads
	consumed := make([]int, threads)
	maxConsumed := 0
	for _, op := range sink.Ops[setupOps:] {
		if op.Kind == trace.OpTxEnd || op.Kind == trace.OpTxAbort {
			consumed[op.Thread]++
			if c := consumed[op.Thread]; c > maxConsumed {
				maxConsumed = c
			}
		}
	}
	target := maxConsumed + maxConsumed/4 + padFloor
	for t := 0; t < threads; t++ {
		env := sys.NewEnv(t)
		for i := consumed[t]; i < target; i++ {
			runners[t].RunTx(env)
		}
	}
	if err := sink.Err(); err != nil {
		return nil, fmt.Errorf("workload: padding %s capture: %w", w.Name, err)
	}
	return &Captured{
		Workload: w.Name,
		Threads:  threads,
		SetupOps: setupOps,
		Ops:      sink.Ops,
	}, nil
}
