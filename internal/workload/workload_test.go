package workload

import (
	"fmt"
	"math"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/sim"
)

func testSystem(t *testing.T, scheme string) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 4, 2, 4
	cfg.Ctrl.Agents = 6
	cfg.NVM.Capacity = 8 << 30
	cfg.OOPBytes = 128 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(sim.NewRand(1), 1000, 0.99)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be the hottest and dramatically hotter than the median.
	if counts[0] < counts[500]*10 {
		t.Fatalf("distribution not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Zipf 0.99: the head should hold a large share.
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.5 {
		t.Fatalf("head share %.2f too small for theta=0.99", float64(head)/n)
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(sim.NewRand(42), 512, 0.99)
	b := NewZipf(sim.NewRand(42), 512, 0.99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("Zipf must be deterministic for equal seeds")
		}
	}
}

func TestAllWorkloadsExecute(t *testing.T) {
	suite := append(PaperSuite(Options{}), LargeItemSuite(Options{})...)
	for _, w := range suite {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			sys := testSystem(t, engine.SchemeHOOP)
			runners := w.Runners(sys, 7)
			sys.Run(runners, 200)
			snap := sys.Snapshot()
			if snap.Txs < 200 {
				t.Fatalf("ran %d txs", snap.Txs)
			}
			if snap.Stores == 0 {
				t.Fatal("workload issued no stores")
			}
			t.Logf("%s: %d loads, %d stores, span %v", w.Name, snap.Loads, snap.Stores, sys.MaxClock())
		})
	}
}

// TestStoresPerTxMatchTableIII checks the measured store counts land in
// each benchmark's Table III band.
func TestStoresPerTxMatchTableIII(t *testing.T) {
	type band struct {
		w        Workload
		min, max float64
	}
	bands := []band{
		{Vector(64), 6, 12},
		{HashMapWL(64), 5, 13},
		{QueueWL(64), 3, 9},
		{RBTreeWL(64), 2, 10},
		{BTreeWL(64), 2, 12},
		{YCSB(1024), 8, 34},
		{TPCC(), 10, 35},
	}
	for _, b := range bands {
		b := b
		t.Run(b.w.Name, func(t *testing.T) {
			sys := testSystem(t, engine.SchemeNative)
			runners := b.w.Runners(sys, 11)
			setup := sys.Snapshot()
			sys.Run(runners, 500)
			win := sys.Snapshot().Delta(setup)
			perTx := float64(win.Stores) / float64(win.Txs)
			if perTx < b.min || perTx > b.max {
				t.Fatalf("%s: %.1f stores/tx outside [%v,%v]", b.w.Name, perTx, b.min, b.max)
			}
			t.Logf("%s: %.1f stores/tx", b.w.Name, perTx)
		})
	}
}

// TestYCSBWriteReadMix verifies the 80/20 update/read operation mix.
func TestYCSBWriteReadMix(t *testing.T) {
	sys := testSystem(t, engine.SchemeNative)
	runners := YCSB(512).Runners(sys, 3)
	sys.Run(runners, 2000)
	st := sys.Stats()
	// Each update op issues value-size/64 stores; reads issue loads via
	// table.Read. We sanity-check that both happen in bulk.
	if st.Get(sim.StatTxStores) == 0 || st.Get(sim.StatTxLoads) == 0 {
		t.Fatal("mix missing loads or stores")
	}
}

// TestTPCCWriteReadMix verifies Table III's 40%/60% write/read operation
// ratio for the new-order transaction.
func TestTPCCWriteReadMix(t *testing.T) {
	sys := testSystem(t, engine.SchemeNative)
	runners := TPCC().Runners(sys, 5)
	before := sys.Snapshot()
	sys.Run(runners, 1500)
	win := sys.Snapshot().Delta(before)
	loads, stores := float64(win.Loads), float64(win.Stores)
	frac := stores / (stores + loads)
	if frac < 0.28 || frac > 0.52 {
		t.Fatalf("TPC-C write fraction %.2f outside Table III's ~40%%", frac)
	}
	t.Logf("TPC-C write fraction: %.2f", frac)
}

// TestSyntheticAllWriteOnly verifies Table III's 100%/0% write/read column:
// the synthetic structures issue no reads beyond structure traversal
// (loads still happen — pointer chases — but every *operation* mutates).
func TestVectorScatteredUpdatesSpreadLines(t *testing.T) {
	sys := testSystem(t, engine.SchemeNative)
	runners := Vector(64).Runners(sys, 9)
	sys.Run(runners, 400)
	snap := sys.Snapshot()
	if snap.Txs < 400 {
		t.Fatal("vector did not run")
	}
	// The batch-update halves must dirty several distinct lines per tx,
	// visible as stores spread over more lines than a pure-append run
	// would touch; sanity-check via the store count per tx (8 scattered
	// word stores or 9 insert stores).
	perTx := float64(snap.Stores) / float64(snap.Txs)
	if perTx < 6 || perTx > 12 {
		t.Fatalf("vector stores/tx = %.1f", perTx)
	}
}

// TestRunnerSeedsDistinctAcrossExperimentSeeds locks the Runners seed
// derivation. The old seed+t*0x9E37+1 arithmetic collided across adjacent
// experiment seeds at high thread counts (seed 1, thread 41 drew the same
// stream as seed 2, thread 40), silently correlating runs that tests
// treated as independent. The splitmix64 derivation shared with
// engine.ShardSeed must stay pairwise distinct over a dense grid.
func TestRunnerSeedsDistinctAcrossExperimentSeeds(t *testing.T) {
	seen := map[uint64]string{}
	for seed := uint64(1); seed <= 8; seed++ {
		for th := 0; th < 64; th++ {
			v := engine.ShardSeed(seed, th)
			if prev, dup := seen[v]; dup {
				t.Fatalf("seed collision: (seed %d, thread %d) == %s", seed, th, prev)
			}
			seen[v] = fmt.Sprintf("(seed %d, thread %d)", seed, th)
		}
	}
}

func TestZipfZetaSane(t *testing.T) {
	// zeta(n, 0) == n
	if got := zeta(100, 0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("zeta(100,0) = %f", got)
	}
}
