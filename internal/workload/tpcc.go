package workload

import (
	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/sim"
)

// TPC-C scaling (per thread = per warehouse, scaled down from the full
// spec so setup stays tractable; the access *pattern* of new-order is what
// matters: §IV-A uses only new-order, "the most write intensive" TPC-C
// transaction, with a 40%/60% write/read mix and 10–35 stores per tx).
const (
	tpccDistricts = 10
	tpccItems     = 1024
	tpccCustomers = 256
	tpccMinLines  = 5
	tpccMaxLines  = 15
	tpccRecBytes  = 64 // one cache line per record
	tpccMaxOrders = 1 << 20
)

// tpccDB lays the per-warehouse tables out as flat record arrays (TPC-C
// tables are dense and pre-sized).
type tpccDB struct {
	warehouse mem.PAddr // 1 record
	district  mem.PAddr // tpccDistricts records
	customer  mem.PAddr // tpccCustomers records
	item      mem.PAddr // tpccItems records (read-only)
	stock     mem.PAddr // tpccItems records
	order     mem.PAddr // ring of order records
	orderLine mem.PAddr // ring of order-line records
	nextOrder int
	nextLine  int
}

func (db *tpccDB) rec(base mem.PAddr, i int) mem.PAddr {
	return base + mem.PAddr(i*tpccRecBytes)
}

func init() {
	// TPC-C's scaling is fixed by the constants above; the factory
	// ignores Options so every tpcc build is behaviorally identical.
	Register("tpcc", func(Options) Workload { return TPCC() })
}

// TPCC returns the new-order workload.
func TPCC() Workload {
	return Workload{
		Name:        "tpcc",
		Desc:        "OLTP workload",
		StoresPerTx: "10-35",
		WriteRead:   "40%/60%",
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			rng := sim.NewRand(seed)
			db := &tpccDB{}
			rec := make([]byte, tpccRecBytes)

			env.TxBegin()
			arena.Init()
			db.warehouse = arena.AllocAligned(tpccRecBytes, mem.LineSize)
			db.district = arena.AllocAligned(tpccDistricts*tpccRecBytes, mem.LineSize)
			db.customer = arena.AllocAligned(tpccCustomers*tpccRecBytes, mem.LineSize)
			db.item = arena.AllocAligned(tpccItems*tpccRecBytes, mem.LineSize)
			db.stock = arena.AllocAligned(tpccItems*tpccRecBytes, mem.LineSize)
			db.orderLine = arena.AllocAligned(tpccMaxOrders*tpccRecBytes, mem.LineSize)
			db.order = arena.AllocAligned((tpccMaxOrders/8)*tpccRecBytes, mem.LineSize)
			env.TxEnd()

			// Populate: warehouse, districts, customers, items, stock.
			env.TxBegin()
			fillItem(rng, rec)
			env.Write(db.warehouse, rec)
			env.TxEnd()
			for d := 0; d < tpccDistricts; d++ {
				env.TxBegin()
				fillItem(rng, rec)
				env.Write(db.rec(db.district, d), rec)
				env.TxEnd()
			}
			for c := 0; c < tpccCustomers; c++ {
				env.TxBegin()
				fillItem(rng, rec)
				env.Write(db.rec(db.customer, c), rec)
				env.TxEnd()
			}
			for i := 0; i < tpccItems; i++ {
				env.TxBegin()
				fillItem(rng, rec)
				env.Write(db.rec(db.item, i), rec)
				fillItem(rng, rec)
				env.Write(db.rec(db.stock, i), rec)
				env.TxEnd()
			}

			lineRec := make([]byte, tpccRecBytes)
			return engine.TxRunnerFunc(func(env *engine.Env) {
				// One new-order transaction.
				env.TxBegin()
				// Reads: warehouse tax, district record, customer record.
				env.Read(db.warehouse, rec)
				d := rng.Intn(tpccDistricts)
				dAddr := db.rec(db.district, d)
				env.Read(dAddr, rec)
				env.Read(db.rec(db.customer, rng.Intn(tpccCustomers)), rec)
				// Update district next_o_id (one word).
				nextOID := env.ReadWord(dAddr) + 1
				env.WriteWord(dAddr, nextOID)
				// Insert the order record.
				fillItem(rng, lineRec)
				env.Write(db.rec(db.order, db.nextOrder%(tpccMaxOrders/8)), lineRec)
				db.nextOrder++
				// Order lines.
				lines := tpccMinLines + rng.Intn(tpccMaxLines-tpccMinLines+1)
				for l := 0; l < lines; l++ {
					it := rng.Intn(tpccItems)
					env.Read(db.rec(db.item, it), rec) // item price/name
					sAddr := db.rec(db.stock, it)
					env.Read(sAddr, rec)        // stock record
					qty := env.ReadWord(sAddr)  // s_quantity word
					env.WriteWord(sAddr, qty+1) // update quantity/ytd
					fillItem(rng, lineRec)      // new order line
					env.Write(db.rec(db.orderLine, db.nextLine%tpccMaxOrders), lineRec)
					db.nextLine++
				}
				env.TxEnd()
			})
		},
	}
}
