package workload

import (
	"fmt"

	"hoop/internal/cc"
	"hoop/internal/mem"
	"hoop/internal/sim"
)

// Contention is the shared-key workload for the concurrency-control layer:
// unlike the Table III suite, whose threads run over disjoint arena slices
// and never conflict, every thread here issues read-modify-write
// transactions against one shared Zipfian-skewed word pool, so
// transactions genuinely collide and the cc policy (OCC validation or
// wound-wait locking) must arbitrate. Theta turns the contention knob:
// higher skew concentrates the traffic on fewer cache lines.
type Contention struct {
	// Keys is the shared pool: word i lives at home address i*8.
	Keys int
	// OpsPerTx is the number of read-modify-write pairs per transaction.
	OpsPerTx int
	// Theta is the Zipfian skew (0.99 = YCSB default).
	Theta float64
}

// Name renders the workload for figure rows.
func (c Contention) Name() string {
	return fmt.Sprintf("rmw-zipf(keys=%d,ops=%d,theta=%.2f)", c.Keys, c.OpsPerTx, c.Theta)
}

// Sources builds one cc.TxSource per thread. All randomness is drawn in
// Next, outside the returned body, so an aborted attempt retries with the
// same keys and deltas; deterministic given (threads, seed).
func (c Contention) Sources(threads int, seed uint64) []cc.TxSource {
	srcs := make([]cc.TxSource, threads)
	for i := range srcs {
		rng := sim.NewRand(seed + uint64(i)*0x9E3779B97F4A7C15 + 1)
		zipf := NewZipf(rng, uint64(c.Keys), c.Theta)
		ops := c.OpsPerTx
		srcs[i] = cc.TxSourceFunc(func() cc.TxFunc {
			keys := make([]mem.PAddr, ops)
			deltas := make([]uint64, ops)
			for j := range keys {
				keys[j] = mem.PAddr(zipf.Next() * mem.WordSize)
				deltas[j] = rng.Uint64()%1000 + 1
			}
			return func(tx cc.Tx) {
				for j := range keys {
					v := tx.ReadWord(keys[j])
					tx.WriteWord(keys[j], v+deltas[j])
				}
			}
		})
	}
	return srcs
}
