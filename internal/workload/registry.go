package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mix is the per-transaction operation mix of a keyed workload. The
// weights are relative, not probabilities: Build normalizes them, so
// {Read: 95, Update: 5} and {Read: 0.95, Update: 0.05} describe the same
// workload.
type Mix struct {
	Read   float64
	Update float64
	Insert float64
	Scan   float64
	RMW    float64
}

// sum reports the total weight.
func (m Mix) sum() float64 { return m.Read + m.Update + m.Insert + m.Scan + m.RMW }

// Options carries the typed per-workload knobs that replaced the old
// mutable Tuning global. The zero value of every field means "use the
// workload's own default" (resolved by the factory through withDefaults),
// so callers only set what they mean to override. Options holds no maps or
// pointers: %+v formatting is deterministic, which the harness cell cache
// relies on for its keys.
type Options struct {
	// ValBytes is the item/value size in bytes.
	ValBytes int
	// Keys is the per-thread key space of the keyed structures.
	Keys int
	// SetupFrac is the fraction of Keys loaded during setup for
	// workloads that insert during the measured phase.
	SetupFrac float64
	// ScanLen is the maximum range-scan length (items per scan op).
	ScanLen int
	// Dist names the request distribution: "zipfian", "uniform", or
	// "latest" (most-recently-inserted keys are hottest).
	Dist string
	// Theta is the Zipfian skew parameter.
	Theta float64
	// OpsPerTx is the maximum number of operations batched into one
	// transaction; each transaction draws uniformly from [1, OpsPerTx].
	OpsPerTx int
	// Mix is the relative operation mix.
	Mix Mix
	// AbortEvery aborts every Nth transaction through engine.Env.TxAbort
	// (0 disables). Workloads with AbortEvery > 0 set NeedsAbort, which
	// the harness translates into Config.Abortable.
	AbortEvery int
}

// withDefaults overlays o onto d field-wise: zero-valued fields of o
// resolve to d's value.
func (o Options) withDefaults(d Options) Options {
	if o.ValBytes == 0 {
		o.ValBytes = d.ValBytes
	}
	if o.Keys == 0 {
		o.Keys = d.Keys
	}
	if o.SetupFrac == 0 {
		o.SetupFrac = d.SetupFrac
	}
	if o.ScanLen == 0 {
		o.ScanLen = d.ScanLen
	}
	if o.Dist == "" {
		o.Dist = d.Dist
	}
	if o.Theta == 0 {
		o.Theta = d.Theta
	}
	if o.OpsPerTx == 0 {
		o.OpsPerTx = d.OpsPerTx
	}
	if o.Mix == (Mix{}) {
		o.Mix = d.Mix
	}
	if o.AbortEvery == 0 {
		o.AbortEvery = d.AbortEvery
	}
	return o
}

// setupKeys is the number of keys loaded during setup.
func (o Options) setupKeys() int { return int(float64(o.Keys) * o.SetupFrac) }

// Factory builds one workload from resolved options. Factories must treat
// zero-valued Options fields as "use my default" (via withDefaults) and
// record the fully resolved options in Workload.Opts, so two workloads
// with the same name and Opts are behaviorally identical — the harness
// cell cache keys on exactly that pair.
type Factory func(Options) Workload

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register makes a workload constructible by name through Build,
// mirroring persist.Register for schemes. Each workload family registers
// itself from init(). Register panics on an empty name, a nil factory, or
// a duplicate registration: all three are programming errors that should
// fail at process start, not at run time.
func Register(name string, f Factory) {
	if name == "" {
		panic("workload: Register with empty workload name")
	}
	if f == nil {
		panic("workload: Register " + name + " with nil factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic("workload: " + name + " registered twice")
	}
	registry.m[name] = f
}

// Build constructs the named workload with opt overlaid on the workload's
// defaults. It fails with the list of registered names when the workload
// is unknown.
func Build(name string, opt Options) (Workload, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return Workload{}, fmt.Errorf("workload: unknown workload %q (registered: %s)",
			name, strings.Join(Registered(), ", "))
	}
	return f(opt), nil
}

// MustBuild is Build for statically known names; it panics on error.
func MustBuild(name string, opt Options) Workload {
	w, err := Build(name, opt)
	if err != nil {
		panic(err)
	}
	return w
}

// Registered reports every registered workload name in sorted order.
func Registered() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for n := range registry.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Suite resolves a named suite, overlaying base onto each member's
// defaults. Suites pin the fields that define their identity (e.g. the
// large-item suite pins 1 KB values); base fills everything else.
func Suite(name string, base Options) ([]Workload, error) {
	switch name {
	case "paper":
		return PaperSuite(base), nil
	case "large-item":
		return LargeItemSuite(base), nil
	case "synthetic":
		return SyntheticSuite(base), nil
	case "ycsb":
		return YCSBSuite(base), nil
	case "sweep-valsize":
		return ValSizeSweepSuite(base), nil
	case "sweep-scan":
		return ScanSweepSuite(base), nil
	}
	return nil, fmt.Errorf("workload: unknown suite %q (suites: %s)",
		name, strings.Join(SuiteNames(), ", "))
}

// SuiteNames lists the named suites Suite resolves, sorted.
func SuiteNames() []string {
	return []string{"large-item", "paper", "sweep-scan", "sweep-valsize", "synthetic", "ycsb"}
}
