package workload

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/sim"
	"hoop/internal/structures"
)

// Workload describes one benchmark and knows how to build its per-thread
// runners. Table III's microbenchmarks, YCSB A–F, and the service patterns
// are all instances constructed through the registry (Build/MustBuild).
type Workload struct {
	// Name as shown in the paper's figures, e.g. "hashmap-64".
	Name string
	// Desc is the Table III description.
	Desc string
	// StoresPerTx is the Table III stores-per-transaction column.
	StoresPerTx string
	// WriteRead is the Table III write/read ratio column.
	WriteRead string
	// Opts records the fully resolved options the factory built the
	// workload with. Together with Name it identifies the workload's
	// behavior; the harness cell cache keys on the pair.
	Opts Options
	// NeedsAbort marks workloads that call env.TxAbort; the harness
	// forces Config.Abortable for their cells.
	NeedsAbort bool
	// Build constructs the runner for one thread, performing its setup
	// transactions (initial population) through env.
	Build func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner
}

// Runners instantiates one runner per thread over equal slices of the home
// region, running each thread's setup transactions. Per-thread seeds are
// derived with the same splitmix64 finalizer as engine.ShardSeed: the old
// seed+t*0x9E37+1 derivation collided across adjacent experiment seeds at
// high thread counts (seed 1, thread 41 == seed 2, thread 40 and so on).
func (w Workload) Runners(sys *engine.System, seed uint64) []engine.TxRunner {
	threads := sys.Config().Threads
	regions := pmem.Partition(sys.Layout().Home, threads)
	out := make([]engine.TxRunner, threads)
	for t := 0; t < threads; t++ {
		out[t] = w.Build(sys.NewEnv(t), regions[t], engine.ShardSeed(seed, t))
	}
	// Setup ran thread-by-thread; align the clocks so all threads start
	// the measured phase together.
	sys.SyncClocks()
	return out
}

// synthDefaults sizes per-thread working sets well past the 2 MB LLC so
// the native baseline shows the paper's ~12% LLC miss ratio; tests shrink
// Keys through Options for speed.
var synthDefaults = Options{ValBytes: 64, Keys: 16384, SetupFrac: 0.5}

// synVectorCap bounds vector growth.
const synVectorCap = 1 << 20

func init() {
	Register("vector", buildVector)
	Register("hashmap", buildHashMap)
	Register("queue", buildQueue)
	Register("rbtree", buildRBTree)
	Register("btree", buildBTree)
}

func fillItem(r *sim.Rand, buf []byte) {
	for i := 0; i < len(buf); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(buf); j++ {
			buf[i+j] = byte(v >> (8 * uint(j)))
		}
	}
}

// Vector is the Table III vector benchmark with the given item size
// (8 stores per transaction at 64-byte items, write-only).
func Vector(itemBytes int) Workload { return MustBuild("vector", Options{ValBytes: itemBytes}) }

// buildVector is the registry factory behind Vector.
func buildVector(opt Options) Workload {
	o := opt.withDefaults(synthDefaults)
	itemBytes := o.ValBytes
	return Workload{
		Name:        fmt.Sprintf("vector-%s", sizeTag(itemBytes)),
		Desc:        "Insert/update entries",
		StoresPerTx: "8",
		WriteRead:   "100%/0%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			v := structures.NewVector(env, arena, synVectorCap, itemBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			// Setup: initial entries so updates have targets.
			for i := 0; i < 64; i++ {
				env.TxBegin()
				fillItem(rng, buf)
				v.Append(buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				if rng.Bool(0.5) && v.Len() < synVectorCap {
					// Insert a whole entry (8 word stores for 64 B items).
					fillItem(rng, buf)
					v.Append(buf)
				} else {
					// Batch-update one word in each of eight scattered
					// entries — the fine-granularity update pattern the
					// paper's data packing targets ([9], [53] in §III-C).
					for i := 0; i < 8; i++ {
						v.UpdateWord(rng.Intn(v.Len()), rng.Intn(itemBytes/8), rng.Uint64())
					}
				}
				env.TxEnd()
			})
		},
	}
}

// HashMapWL is the Table III hashmap benchmark with the given item size.
func HashMapWL(itemBytes int) Workload { return MustBuild("hashmap", Options{ValBytes: itemBytes}) }

// buildHashMap is the registry factory behind HashMapWL.
func buildHashMap(opt Options) Workload {
	o := opt.withDefaults(synthDefaults)
	itemBytes, keys, setup := o.ValBytes, o.Keys, o.setupKeys()
	return Workload{
		Name:        fmt.Sprintf("hashmap-%s", sizeTag(itemBytes)),
		Desc:        "Insert/update entries",
		StoresPerTx: "8",
		WriteRead:   "100%/0%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			h := structures.NewHashMap(env, arena, keys/4, itemBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			for k := 0; k < setup; k++ {
				env.TxBegin()
				fillItem(rng, buf)
				h.Put(uint64(k), buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				if rng.Bool(0.5) {
					fillItem(rng, buf)
					h.Put(uint64(rng.Intn(keys)), buf)
				} else {
					// Eight scattered single-word field updates.
					for i := 0; i < 8; i++ {
						key := uint64(rng.Intn(keys))
						if !h.UpdateWord(key, rng.Intn(itemBytes/8), rng.Uint64()) {
							fillItem(rng, buf)
							h.Put(key, buf)
							break
						}
					}
				}
				env.TxEnd()
			})
		},
	}
}

// QueueWL is the Table III queue benchmark (~4 stores per transaction: the
// item write plus head/tail/count pointer updates).
func QueueWL(itemBytes int) Workload { return MustBuild("queue", Options{ValBytes: itemBytes}) }

// buildQueue is the registry factory behind QueueWL.
func buildQueue(opt Options) Workload {
	o := opt.withDefaults(synthDefaults)
	itemBytes := o.ValBytes
	return Workload{
		Name:        fmt.Sprintf("queue-%s", sizeTag(itemBytes)),
		Desc:        "Insert/update entries",
		StoresPerTx: "4",
		WriteRead:   "100%/0%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			q := structures.NewQueue(env, arena, itemBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			for i := 0; i < 64; i++ {
				env.TxBegin()
				fillItem(rng, buf)
				q.Enqueue(buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				if rng.Bool(0.5) || q.Len() == 0 {
					fillItem(rng, buf)
					q.Enqueue(buf)
				} else {
					q.Dequeue(buf)
				}
				env.TxEnd()
			})
		},
	}
}

// RBTreeWL is the Table III RB-tree benchmark (2–10 stores per transaction
// depending on rebalancing).
func RBTreeWL(itemBytes int) Workload { return MustBuild("rbtree", Options{ValBytes: itemBytes}) }

// buildRBTree is the registry factory behind RBTreeWL.
func buildRBTree(opt Options) Workload {
	o := opt.withDefaults(synthDefaults)
	itemBytes, keys, setup := o.ValBytes, o.Keys, o.setupKeys()
	return Workload{
		Name:        fmt.Sprintf("rbtree-%s", sizeTag(itemBytes)),
		Desc:        "Insert/update entries",
		StoresPerTx: "2-10",
		WriteRead:   "100%/0%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			tr := structures.NewRBTree(env, arena, itemBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			for k := 0; k < setup; k++ {
				env.TxBegin()
				fillItem(rng, buf)
				tr.Put(uint64(k*2), buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				key := uint64(rng.Intn(keys))
				// Half the transactions are sparse field updates of an
				// existing entry (the 2-store end of the Table III band);
				// misses and the other half insert whole entries.
				if rng.Bool(0.5) {
					if !tr.UpdateWord(key, rng.Intn(itemBytes/8), rng.Uint64()) {
						fillItem(rng, buf)
						tr.Put(key, buf)
					}
				} else {
					fillItem(rng, buf)
					tr.Put(key, buf)
				}
				env.TxEnd()
			})
		},
	}
}

// BTreeWL is the Table III B-tree benchmark (2–12 stores per transaction
// depending on node splits).
func BTreeWL(itemBytes int) Workload { return MustBuild("btree", Options{ValBytes: itemBytes}) }

// buildBTree is the registry factory behind BTreeWL.
func buildBTree(opt Options) Workload {
	o := opt.withDefaults(synthDefaults)
	itemBytes, keys, setup := o.ValBytes, o.Keys, o.setupKeys()
	return Workload{
		Name:        fmt.Sprintf("btree-%s", sizeTag(itemBytes)),
		Desc:        "Insert/update entries",
		StoresPerTx: "2-12",
		WriteRead:   "100%/0%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			tr := structures.NewBTree(env, arena, itemBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			for k := 0; k < setup; k++ {
				env.TxBegin()
				fillItem(rng, buf)
				tr.Put(uint64(k*2), buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				key := uint64(rng.Intn(keys))
				if rng.Bool(0.5) {
					if !tr.UpdateWord(key, rng.Intn(itemBytes/8), rng.Uint64()) {
						fillItem(rng, buf)
						tr.Put(key, buf)
					}
				} else {
					fillItem(rng, buf)
					tr.Put(key, buf)
				}
				env.TxEnd()
			})
		},
	}
}

func sizeTag(itemBytes int) string {
	if itemBytes >= 1024 {
		return fmt.Sprintf("%dk", itemBytes/1024)
	}
	return fmt.Sprintf("%d", itemBytes)
}

// PaperSuite returns the seven benchmarks of Figures 7–9 — the five
// synthetic structures with 64-byte items, YCSB with 1 KB pairs, and
// TPC-C new-order — with base overlaid on each member's defaults.
func PaperSuite(base Options) []Workload {
	return []Workload{
		MustBuild("vector", base), MustBuild("hashmap", base), MustBuild("queue", base),
		MustBuild("rbtree", base), MustBuild("btree", base),
		MustBuild("ycsb", base), MustBuild("tpcc", base),
	}
}

// LargeItemSuite returns the 1 KB-item variants of the synthetic
// benchmarks (each Table III workload has a second data set of 1 KB items).
func LargeItemSuite(base Options) []Workload {
	base.ValBytes = 1024
	return []Workload{
		MustBuild("vector", base), MustBuild("hashmap", base), MustBuild("queue", base),
		MustBuild("rbtree", base), MustBuild("btree", base),
	}
}

// SyntheticSuite returns just the five 64-byte synthetic benchmarks
// (Figure 10 and Table IV use these).
func SyntheticSuite(base Options) []Workload {
	return []Workload{
		MustBuild("vector", base), MustBuild("hashmap", base), MustBuild("queue", base),
		MustBuild("rbtree", base), MustBuild("btree", base),
	}
}
