package workload

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/nstore"
	"hoop/internal/pmem"
	"hoop/internal/sim"
	"hoop/internal/structures"
)

// The YCSB core workloads A–F over the ordered N-store backend. Each
// variant pins the mix (and, for D, the request distribution) that defines
// it; everything else — value size, key count, scan length, skew — comes
// from Options. E exercises the structure layer's range-scan op; F's
// read-modify-write transactions abort every AbortEvery-th transaction,
// composing with the engine's abort path.
var ycsbVariantDefaults = Options{
	ValBytes:  1024,
	Keys:      4096,
	SetupFrac: 0.5,
	ScanLen:   16,
	Dist:      "zipfian",
	Theta:     0.99,
	OpsPerTx:  4,
}

// ycsbVariants defines the per-letter identity of the A–F suite.
var ycsbVariants = []struct {
	letter string
	desc   string
	stores string
	pin    Options
}{
	{"a", "Update heavy (50/50)", "4-34", Options{Mix: Mix{Read: 0.5, Update: 0.5}}},
	{"b", "Read mostly (95/5)", "1-10", Options{Mix: Mix{Read: 0.95, Update: 0.05}}},
	{"c", "Read only", "1-2", Options{Mix: Mix{Read: 1}}},
	{"d", "Read latest, inserts", "1-18", Options{Mix: Mix{Read: 0.95, Insert: 0.05}, Dist: "latest"}},
	{"e", "Short range scans, inserts", "1-18", Options{Mix: Mix{Scan: 0.95, Insert: 0.05}}},
	{"f", "Read-modify-write", "4-34", Options{Mix: Mix{Read: 0.5, RMW: 0.5}, AbortEvery: 25}},
}

// scanDefaults parameterize the standalone scan workload whose scan
// fraction the sweep-scan section varies.
var scanDefaults = Options{
	ValBytes:  64,
	Keys:      4096,
	SetupFrac: 1,
	ScanLen:   16,
	Dist:      "zipfian",
	Theta:     0.99,
	OpsPerTx:  2,
	Mix:       Mix{Scan: 0.5, Update: 0.5},
}

func init() {
	for _, v := range ycsbVariants {
		v := v
		pinned := v.pin
		Register("ycsb-"+v.letter, func(opt Options) Workload {
			// The variant's pinned fields win over both the caller's
			// options and the shared defaults.
			o := pinned.withDefaults(opt.withDefaults(ycsbVariantDefaults))
			return buildOrdered("ycsb-"+v.letter, v.desc, v.stores, o)
		})
	}
	Register("scan", func(opt Options) Workload {
		o := opt.withDefaults(scanDefaults)
		total := o.Mix.sum()
		pct := int(o.Mix.Scan/total*100 + 0.5)
		return buildOrdered(fmt.Sprintf("scan%02d", pct), "Range scan / update mix", "1-10", o)
	})
	Register("pubsub", buildPubSub)
}

// YCSBSuite returns the six core workloads A–F.
func YCSBSuite(base Options) []Workload {
	out := make([]Workload, 0, len(ycsbVariants))
	for _, v := range ycsbVariants {
		out = append(out, MustBuild("ycsb-"+v.letter, base))
	}
	return out
}

// sweepValSizes spans 64 B (sub-line, stressing data packing) to 64 KB
// (multi-page values, stressing LAD spill and the mapping table).
var sweepValSizes = []int{64, 256, 1024, 4096, 16384, 65536}

// ValSizeSweepSuite returns YCSB-A at each sweep value size. The key count
// scales to hold the per-thread data footprint — the quantity that must
// stay comparable across value sizes — near 16 MB (well past the LLC)
// without exhausting the per-thread arena at 64 KB values. A non-zero
// base.Keys rescales the footprint target to base.Keys 64 B items, which
// is how quick runs shrink the whole sweep proportionally.
func ValSizeSweepSuite(base Options) []Workload {
	target := 16 << 20
	if base.Keys != 0 {
		target = base.Keys * 64
	}
	out := make([]Workload, 0, len(sweepValSizes))
	for _, vb := range sweepValSizes {
		o := base
		o.ValBytes = vb
		keys := target / vb
		if keys > 4096 {
			keys = 4096
		}
		if keys < 64 {
			keys = 64
		}
		o.Keys = keys
		if vb >= 16384 && o.OpsPerTx == 0 {
			// A single multi-page op is already tens of lines of traffic.
			o.OpsPerTx = 1
		}
		out = append(out, MustBuild("ycsb-a", o))
	}
	return out
}

// sweepScanFracs are the scan-fraction points of the sweep-scan section.
var sweepScanFracs = []float64{0, 0.25, 0.5, 0.75, 0.95}

// ScanSweepSuite returns the scan workload at each scan fraction (the
// remainder of the mix is whole-value updates).
func ScanSweepSuite(base Options) []Workload {
	out := make([]Workload, 0, len(sweepScanFracs))
	for _, f := range sweepScanFracs {
		o := base
		o.Mix = Mix{Scan: f, Update: 1 - f}
		out = append(out, MustBuild("scan", o))
	}
	return out
}

// Operation codes drawn from a Mix.
const (
	opRead = iota
	opUpdate
	opInsert
	opScan
	opRMW
)

// pickOp draws one operation from the normalized mix.
func pickOp(rng *sim.Rand, m Mix, total float64) int {
	r := rng.Float64() * total
	switch {
	case r < m.Read:
		return opRead
	case r < m.Read+m.Update:
		return opUpdate
	case r < m.Read+m.Update+m.Insert:
		return opInsert
	case r < m.Read+m.Update+m.Insert+m.Scan:
		return opScan
	}
	return opRMW
}

// buildOrdered is the shared builder behind YCSB A–F and the scan
// workload: a mix-driven key-value runner over nstore's ordered
// (B-tree-backed) table.
func buildOrdered(base, desc, stores string, o Options) Workload {
	total := o.Mix.sum()
	if total <= 0 {
		panic("workload: " + base + " with empty operation mix")
	}
	return Workload{
		Name:        fmt.Sprintf("%s-%s", base, sizeTag(o.ValBytes)),
		Desc:        desc,
		StoresPerTx: stores,
		WriteRead:   mixWriteRead(o.Mix),
		Opts:        o,
		NeedsAbort:  o.AbortEvery > 0,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			env.TxBegin()
			db := nstore.Open(env, region)
			table := db.CreateOrderedTable(o.ValBytes)
			env.TxEnd()
			rng := sim.NewRand(seed)
			zipf := NewZipf(sim.NewRand(seed^0xFACE), uint64(o.Keys), o.Theta)
			buf := make([]byte, o.ValBytes)
			// Load phase. Insert-bearing mixes (D, E) load only the setup
			// fraction so measured inserts extend the key space; the rest
			// load it whole so reads never miss.
			loaded := o.Keys
			if o.Mix.Insert > 0 {
				loaded = o.setupKeys()
			}
			if loaded < 1 {
				loaded = 1
			}
			for k := 0; k < loaded; k++ {
				env.TxBegin()
				fillItem(rng, buf)
				table.Insert(uint64(k), buf)
				env.TxEnd()
			}
			// pickKey maps a distribution draw onto the live key range.
			pickKey := func() uint64 {
				switch o.Dist {
				case "latest":
					// Rank 0 of the Zipfian is the most recent insert.
					return uint64(loaded-1) - zipf.Next()%uint64(loaded)
				case "uniform":
					return uint64(rng.Intn(loaded))
				default:
					return zipf.Next() % uint64(loaded)
				}
			}
			txn := 0
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				ops := 1
				if o.OpsPerTx > 1 {
					ops = 1 + rng.Intn(o.OpsPerTx)
				}
				for i := 0; i < ops; i++ {
					switch pickOp(rng, o.Mix, total) {
					case opRead:
						table.Read(pickKey(), buf)
					case opUpdate:
						fillItem(rng, buf)
						table.Update(pickKey(), buf)
					case opInsert:
						fillItem(rng, buf)
						table.Insert(uint64(loaded), buf)
						loaded++
					case opScan:
						n := 1 + rng.Intn(o.ScanLen)
						table.Scan(pickKey(), n, buf)
					case opRMW:
						key := pickKey()
						table.Read(key, buf)
						binary.LittleEndian.PutUint64(buf[rng.Intn(o.ValBytes/8)*8:], rng.Uint64())
						table.Update(key, buf)
					}
				}
				if o.AbortEvery > 0 && txn%o.AbortEvery == o.AbortEvery-1 {
					env.TxAbort()
				} else {
					env.TxEnd()
				}
				txn++
			})
		},
	}
}

// pubsubDefaults parameterize the durable pub/sub pattern.
var pubsubDefaults = Options{ValBytes: 64, OpsPerTx: 1}

// pubsubSubscribers is the fixed fan-out of the pub/sub log.
const pubsubSubscribers = 3

// buildPubSub is a durable-queue/pub-sub pattern: each transaction
// publishes one item to an append-only log and advances three persistent
// subscriber cursors, each reading the item at its cursor. The log write
// is sequential while the cursor words are hot in place — the two extremes
// HOOP's out-of-place update path has to serve at once.
func buildPubSub(opt Options) Workload {
	o := opt.withDefaults(pubsubDefaults)
	itemBytes := o.ValBytes
	return Workload{
		Name:        fmt.Sprintf("pubsub-%s", sizeTag(itemBytes)),
		Desc:        "Durable pub/sub log",
		StoresPerTx: "4-12",
		WriteRead:   "70%/30%",
		Opts:        o,
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			arena := pmem.NewArena(env, region)
			env.TxBegin()
			arena.Init()
			log := structures.NewVector(env, arena, synVectorCap, itemBytes)
			cursors := arena.AllocAligned(pubsubSubscribers*8, mem.LineSize)
			env.TxEnd()
			rng := sim.NewRand(seed)
			buf := make([]byte, itemBytes)
			// Setup: seed the log so subscribers start with a backlog, and
			// persist the zeroed cursors.
			env.TxBegin()
			for s := 0; s < pubsubSubscribers; s++ {
				env.WriteWord(cursors+mem.PAddr(s*8), 0)
			}
			env.TxEnd()
			for i := 0; i < 16; i++ {
				env.TxBegin()
				fillItem(rng, buf)
				log.Append(buf)
				env.TxEnd()
			}
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				fillItem(rng, buf)
				log.Append(buf)
				for s := 0; s < pubsubSubscribers; s++ {
					cAddr := cursors + mem.PAddr(s*8)
					c := env.ReadWord(cAddr)
					if int(c) < log.Len() {
						log.Get(int(c), buf)
						env.WriteWord(cAddr, c+1)
					}
				}
				env.TxEnd()
			})
		},
	}
}
