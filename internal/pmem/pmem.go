// Package pmem is the thin persistent-memory programming layer the
// workloads build on: a Memory interface abstracting simulated loads and
// stores, and a persistent bump allocator whose cursor itself lives in NVM
// (so allocator metadata updates generate the same transactional traffic a
// real PM allocator would).
package pmem

import (
	"fmt"

	"hoop/internal/mem"
)

// Memory is the word-granular load/store interface (implemented by
// engine.Env). All addresses and sizes must be 8-byte aligned.
type Memory interface {
	Read(addr mem.PAddr, buf []byte)
	Write(addr mem.PAddr, data []byte)
	ReadWord(addr mem.PAddr) uint64
	WriteWord(addr mem.PAddr, v uint64)
}

// Arena is a persistent region with a bump allocator. The allocation
// cursor is stored in the region's first cache line, so Alloc performs one
// load and one store through the simulated hierarchy — allocator metadata
// churn is part of the workload, exactly the fine-grained metadata updates
// whose coalescing Table IV measures.
type Arena struct {
	m      Memory
	region mem.Region
}

const (
	arenaMagic   = 0xA11C_0C8E_D00D_F00D
	arenaHdrSize = mem.LineSize
	offMagic     = 0
	offNext      = 8
)

// NewArena wraps region; call Init (inside a transaction) before first use.
func NewArena(m Memory, region mem.Region) *Arena {
	if region.Size < arenaHdrSize+mem.LineSize {
		panic(fmt.Sprintf("pmem: arena region %v too small", region))
	}
	return &Arena{m: m, region: region}
}

// Init formats the arena header. Must run inside a transaction.
func (a *Arena) Init() {
	a.m.WriteWord(a.region.Base+offMagic, arenaMagic)
	a.m.WriteWord(a.region.Base+offNext, arenaHdrSize)
}

// Region reports the arena's address range.
func (a *Arena) Region() mem.Region { return a.region }

// Used reports allocated bytes (including the header).
func (a *Arena) Used() uint64 {
	return a.m.ReadWord(a.region.Base + offNext)
}

// Alloc returns n bytes (rounded up to a word) of zeroed persistent
// memory. Must run inside a transaction (it updates the cursor).
func (a *Arena) Alloc(n int) mem.PAddr {
	return a.AllocAligned(n, mem.WordSize)
}

// AllocAligned is Alloc with a stronger alignment (e.g. cache-line-aligned
// nodes). align must be a power of two.
func (a *Arena) AllocAligned(n, align int) mem.PAddr {
	if n <= 0 {
		panic("pmem: Alloc of non-positive size")
	}
	if align&(align-1) != 0 || align < mem.WordSize {
		panic("pmem: alignment must be a power of two >= 8")
	}
	size := uint64((n + mem.WordSize - 1) &^ (mem.WordSize - 1))
	next := a.m.ReadWord(a.region.Base + offNext)
	next = (next + uint64(align-1)) &^ uint64(align-1)
	if next+size > a.region.Size {
		panic(fmt.Sprintf("pmem: arena exhausted (%d of %d bytes used)", next, a.region.Size))
	}
	a.m.WriteWord(a.region.Base+offNext, next+size)
	return a.region.Base + mem.PAddr(next)
}

// Null is the persistent null pointer.
const Null mem.PAddr = 0

// Direct is a Memory backed by a raw Store with no timing simulation. It
// lets data-structure code be tested (and fuzzed) at full speed, decoupled
// from the engine.
type Direct struct {
	St *mem.Store
}

// NewDirect wraps a fresh store.
func NewDirect() *Direct { return &Direct{St: mem.NewStore()} }

// Read implements Memory.
func (d *Direct) Read(addr mem.PAddr, buf []byte) { d.St.Read(addr, buf) }

// Write implements Memory.
func (d *Direct) Write(addr mem.PAddr, data []byte) { d.St.Write(addr, data) }

// ReadWord implements Memory.
func (d *Direct) ReadWord(addr mem.PAddr) uint64 { return d.St.ReadWord(addr) }

// WriteWord implements Memory.
func (d *Direct) WriteWord(addr mem.PAddr, v uint64) { d.St.WriteWord(addr, v) }

// Partition splits a parent region into count equal, line-aligned
// sub-regions — one arena per workload thread, mirroring the paper's
// per-thread tables.
func Partition(parent mem.Region, count int) []mem.Region {
	if count <= 0 {
		panic("pmem: Partition count must be positive")
	}
	size := (parent.Size / uint64(count)) &^ uint64(mem.LineSize-1)
	out := make([]mem.Region, count)
	for i := range out {
		out[i] = mem.Region{Base: parent.Base + mem.PAddr(uint64(i)*size), Size: size}
	}
	return out
}
