package pmem

import (
	"testing"

	"hoop/internal/mem"
)

func TestArenaAllocBasics(t *testing.T) {
	d := NewDirect()
	a := NewArena(d, mem.Region{Base: 0, Size: 1 << 20})
	a.Init()
	p1 := a.Alloc(10) // rounds to 16
	p2 := a.Alloc(8)
	if p1 < mem.LineSize {
		t.Fatalf("allocation inside header: %v", p1)
	}
	if p2 != p1+16 {
		t.Fatalf("bump allocation: %v then %v", p1, p2)
	}
	if a.Used() == 0 {
		t.Fatal("Used")
	}
	p3 := a.AllocAligned(8, 64)
	if p3%64 != 0 {
		t.Fatalf("alignment: %v", p3)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	d := NewDirect()
	a := NewArena(d, mem.Region{Base: 0, Size: 256})
	a.Init()
	defer func() {
		if recover() == nil {
			t.Fatal("expected exhaustion panic")
		}
	}()
	a.Alloc(1024)
}

func TestArenaCursorIsPersistent(t *testing.T) {
	d := NewDirect()
	a := NewArena(d, mem.Region{Base: 4096, Size: 1 << 20})
	a.Init()
	a.Alloc(100)
	// Reattach over the same memory: the cursor must persist.
	b := NewArena(d, mem.Region{Base: 4096, Size: 1 << 20})
	if b.Used() != a.Used() {
		t.Fatal("allocator cursor not persistent")
	}
	p := b.Alloc(8)
	if p < 4096+mem.LineSize+104 {
		t.Fatalf("reattached arena re-allocated used space: %v", p)
	}
}

func TestPartition(t *testing.T) {
	rs := Partition(mem.Region{Base: 0, Size: 1 << 20}, 4)
	if len(rs) != 4 {
		t.Fatal("count")
	}
	for i, r := range rs {
		if r.Size != (1<<20)/4 {
			t.Fatalf("region %d size %d", i, r.Size)
		}
		if !mem.IsLineAligned(r.Base) {
			t.Fatalf("region %d misaligned", i)
		}
		if i > 0 && r.Base != rs[i-1].End() {
			t.Fatalf("region %d not contiguous", i)
		}
	}
}

func TestDirectRoundtrip(t *testing.T) {
	d := NewDirect()
	d.WriteWord(0x80, 42)
	if d.ReadWord(0x80) != 42 {
		t.Fatal("word roundtrip")
	}
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	d.Write(0x100, buf)
	got := make([]byte, 8)
	d.Read(0x100, got)
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatal("byte roundtrip")
		}
	}
}
