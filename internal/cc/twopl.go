package cc

import (
	"math/bits"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/u64map"
)

// Lock timing constants. The lock table is a hardware structure beside the
// memory controller (HOOP already keeps per-line metadata there), so an
// uncontended acquire is a table probe plus a CAS, not a memory round trip.
const (
	lockAcquireCost = 5 * sim.Nanosecond
	lockReleaseCost = 2 * sim.Nanosecond
)

// Lock modes held by a transaction on a line.
const (
	lockS = uint8(1)
	lockX = uint8(2)
)

// lockState is one line's lock word. Entries are never deleted from the
// table: the freeAt times must survive release so a later requester whose
// clock lags the release still pays the causal wait.
type lockState struct {
	x       int32  // exclusive holder thread id + 1; 0 = unheld
	sharers uint64 // bitmask of shared-holder thread ids
	waiters uint64 // bitmask of threads queued on this line
	xFreeAt sim.Time
	sFreeAt sim.Time
}

// lockTxState is one thread's held-lock set for the current attempt.
type lockTxState struct {
	held  u64map.Map[uint8] // line -> lockS / lockX
	order []uint64          // acquisition order, for deterministic release
	// The thread's registered wait-queue slot (a thread has at most one
	// outstanding lock request).
	waiting  bool
	waitLine uint64
}

// lockPolicy implements per-line two-phase locking with wound-wait
// deadlock avoidance: a requester older than a conflicting holder wounds
// it (the holder aborts at its next step), a younger requester waits.
// Priorities are first-begin timestamps kept across retries, so a
// repeatedly-wounded transaction ages into the oldest in the system and
// must eventually win. Committing holders are never wounded — the commit
// step acquires nothing, so waiting for it is finite — which keeps the
// waits-for relation acyclic: younger-waits-for-older plus
// anyone-waits-for-committing can never close a cycle.
//
// With readLocks=false this degrades into the deliberately-unsound
// write-locks-only variant (PolicyBrokenNoReadLocks) that the cctest
// serializability oracle must catch.
type lockPolicy struct {
	r         *Runner
	readLocks bool
	table     u64map.Map[lockState]
}

func newLockPolicy(r *Runner, readLocks bool) *lockPolicy {
	return &lockPolicy{r: r, readLocks: readLocks}
}

func (p *lockPolicy) begin(t *thread) {
	t.env.TxBegin()
	t.lock.held.Clear()
	t.lock.order = t.lock.order[:0]
}

func (p *lockPolicy) read(t *thread, addr mem.PAddr) uint64 {
	if p.readLocks {
		p.acquire(t, mem.LineIndex(addr), false)
	}
	return t.env.ReadWord(addr)
}

func (p *lockPolicy) write(t *thread, addr mem.PAddr, v uint64) {
	p.acquire(t, mem.LineIndex(addr), true)
	t.env.WriteWord(addr, v)
}

func (p *lockPolicy) commit(t *thread) bool {
	t.env.TxEnd()
	p.releaseAll(t)
	return true
}

func (p *lockPolicy) abort(t *thread) {
	// Abort first, release after: the locks are held through the scheme's
	// rollback, so a scheme with an expensive abort path (undo logging
	// restores old images in the foreground) keeps its lines contended for
	// longer — the effect the contention figures measure. HOOP's abort is
	// free, so its locks release almost immediately.
	t.env.TxAbort()
	p.unregister(t)
	p.releaseAll(t)
}

// acquire blocks until the thread holds line in the requested mode.
func (p *lockPolicy) acquire(t *thread, line uint64, excl bool) {
	for !p.tryAcquire(t, line, excl) {
		t.yieldBlocked(line)
	}
}

// tryAcquire attempts one lock grab. On failure it wounds every younger
// non-committing conflicting holder, registers the thread in the line's
// wait queue, and reports false (the caller blocks; wounded holders will
// release through their abort path and bump the lock epoch).
func (p *lockPolicy) tryAcquire(t *thread, line uint64, excl bool) bool {
	ls := p.table.Ref(line)
	bit := uint64(1) << uint(t.id)
	mode, heldBefore := t.lock.held.Get(line)
	if excl && mode == lockX {
		return true
	}
	if !excl && mode != 0 {
		return true // S piggybacks on held S or X
	}
	// Queue discipline: an older transaction already waiting on this line
	// goes first even when the lock is momentarily grantable. Without it,
	// wound-wait livelocks under the min-clock scheduler: a wounded-and-
	// restarted young transaction (small clock, never waited) re-takes the
	// hot line before the old waiter — whose clock froze while blocked —
	// ever gets a grant, and the old transaction wounds it again, forever.
	if !p.olderWaiter(t, ls, bit) {
		if excl {
			// X is grantable when no one else holds anything — including
			// the upgrade case, where the requester is the sole sharer.
			if ls.x == 0 && ls.sharers&^bit == 0 {
				ls.sharers &^= bit
				ls.x = int32(t.id) + 1
				t.lock.held.Put(line, lockX)
				if !heldBefore {
					t.lock.order = append(t.lock.order, line)
				}
				p.unregister(t)
				t.env.AdvanceTo(sim.MaxTime(ls.xFreeAt, ls.sFreeAt))
				t.advance(lockAcquireCost)
				return true
			}
		} else if ls.x == 0 {
			ls.sharers |= bit
			t.lock.held.Put(line, lockS)
			t.lock.order = append(t.lock.order, line)
			p.unregister(t)
			t.env.AdvanceTo(ls.xFreeAt) // S only waits for past X holders
			t.advance(lockAcquireCost)
			return true
		}
	}
	// Wound regardless of why the grant failed: even queued behind an
	// older waiter, t must not silently wait on a younger holder — that
	// edge could close a deadlock cycle the older waiter never breaks.
	p.wound(t, ls, bit, excl)
	if !t.lock.waiting {
		ls.waiters |= bit
		t.lock.waiting = true
		t.lock.waitLine = line
	}
	return false
}

// olderWaiter reports whether a strictly older transaction is queued on
// the line (excluding t itself).
func (p *lockPolicy) olderWaiter(t *thread, ls *lockState, bit uint64) bool {
	for s := ls.waiters &^ bit; s != 0; {
		id := bits.TrailingZeros64(s)
		s &^= uint64(1) << uint(id)
		if p.r.threads[id].prio < t.prio {
			return true
		}
	}
	return false
}

// unregister clears t's wait-queue slot (after a successful acquire or an
// abort) and wakes blocked threads: a younger requester may have been
// queue-blocked solely behind t.
func (p *lockPolicy) unregister(t *thread) {
	if !t.lock.waiting {
		return
	}
	ls := p.table.Ref(t.lock.waitLine)
	ls.waiters &^= uint64(1) << uint(t.id)
	t.lock.waiting = false
	p.r.lockEpoch++
}

// wound delivers wound-wait: every conflicting holder younger than t is
// marked wounded (consumed at its next yield as an abort). Holders parked
// at their commit step are exempt — their locks release in finite time
// without t's help.
func (p *lockPolicy) wound(t *thread, ls *lockState, bit uint64, excl bool) {
	if ls.x != 0 {
		p.woundOne(t, int(ls.x)-1)
	}
	if excl {
		for s := ls.sharers &^ bit; s != 0; {
			id := bits.TrailingZeros64(s)
			s &^= uint64(1) << uint(id)
			p.woundOne(t, id)
		}
	}
}

func (p *lockPolicy) woundOne(t *thread, id int) {
	h := p.r.threads[id]
	if h == t || !h.inTx || h.committing || h.wounded {
		return
	}
	if t.prio < h.prio {
		h.wounded = true
	}
}

// releaseAll frees every lock the attempt holds at the thread's current
// time (post-commit or post-abort) and wakes blocked requesters by
// bumping the lock epoch.
func (p *lockPolicy) releaseAll(t *thread) {
	if len(t.lock.order) == 0 {
		return
	}
	t.advance(sim.Duration(len(t.lock.order)) * lockReleaseCost)
	now := t.env.Now()
	bit := uint64(1) << uint(t.id)
	for _, line := range t.lock.order {
		mode, ok := t.lock.held.Get(line)
		if !ok {
			continue
		}
		ls := p.table.Ref(line)
		switch mode {
		case lockX:
			if ls.x == int32(t.id)+1 {
				ls.x = 0
				if now > ls.xFreeAt {
					ls.xFreeAt = now
				}
			}
		case lockS:
			ls.sharers &^= bit
			if now > ls.sFreeAt {
				ls.sFreeAt = now
			}
		}
	}
	t.lock.held.Clear()
	t.lock.order = t.lock.order[:0]
	p.r.lockEpoch++
}
