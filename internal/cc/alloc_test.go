package cc

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// benchRunner builds a single-thread abortable system and a fixed 4-word
// read-modify-write source whose Next allocates nothing, so steady-state
// measurements see only the policy's own cost.
func benchRunner(tb testing.TB, policy Policy) (*Runner, []TxSource) {
	tb.Helper()
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 3
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Abortable = true
	sys, err := engine.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	r, err := New(sys, Config{Policy: policy})
	if err != nil {
		tb.Fatal(err)
	}
	body := func(tx Tx) {
		for w := 0; w < 4; w++ {
			a := mem.PAddr(w * mem.WordSize)
			v := tx.ReadWord(a)
			tx.WriteWord(a, v+1)
		}
	}
	srcs := []TxSource{TxSourceFunc(func() TxFunc { return body })}
	return r, srcs
}

// perTxAllocs measures steady-state allocations per committed transaction:
// a warmup run grows every reused structure (write buffer, read set,
// validation scratch, lock table, held-lock set) to its steady size, then
// a long measured run amortizes the per-Run overhead (quota slice, one
// goroutine spawn) below 0.05 allocs/tx.
func perTxAllocs(tb testing.TB, policy Policy) float64 {
	r, srcs := benchRunner(tb, policy)
	r.Run(srcs, 200)
	const txs = 1000
	return testing.AllocsPerRun(1, func() { r.Run(srcs, txs) }) / txs
}

// TestOCCValidateAllocBudget locks the OCC commit path's allocation
// budget: validation reuses its scratch key buffer and the write buffer /
// read set are epoch-cleared maps, so a committed transaction stays within
// 1 allocation end to end.
func TestOCCValidateAllocBudget(t *testing.T) {
	if got := perTxAllocs(t, PolicyOCC); got > 1 {
		t.Errorf("OCC: %.3f allocs per committed tx, budget is 1", got)
	}
}

// TestLockTableAllocBudget locks the 2PL steady-state budget at zero:
// lock-table entries are never deleted and the held-lock set is reused, so
// once the table covers the working set, acquire/release allocates nothing.
func TestLockTableAllocBudget(t *testing.T) {
	// The strict-zero budget leaves only the amortized per-Run overhead.
	if got := perTxAllocs(t, Policy2PL); got > 0.05 {
		t.Errorf("2PL: %.3f allocs per committed tx, steady-state budget is 0", got)
	}
}

// BenchmarkCCTx4 measures one committed 4-word read-modify-write
// transaction through the cc layer's step scheduler under each policy —
// the op-granularity yield protocol plus the policy's bookkeeping.
func BenchmarkCCTx4(b *testing.B) {
	for _, policy := range Policies {
		b.Run(string(policy), func(b *testing.B) {
			r, srcs := benchRunner(b, policy)
			r.Run(srcs, 200) // steady state
			b.ReportAllocs()
			b.ResetTimer()
			r.Run(srcs, b.N)
		})
	}
}
