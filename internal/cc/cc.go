// Package cc is the optional concurrency-control layer above the persist
// schemes: it lets the engine's per-core threads issue *conflicting*
// transactions and resolves the conflicts with one of two interchangeable
// policies — optimistic concurrency control (validation at commit) or
// per-line two-phase locking with wound-wait deadlock avoidance. Aborted
// attempts flow through Env.TxAbort and each scheme's abort path, which is
// exactly what the contention figures measure: HOOP's out-of-place
// buffering makes an abort free (the un-committed OOP slices simply become
// garbage), while undo logging must restore old images in the foreground
// before its locks can release.
//
// Execution model: engine.System.Run interleaves whole transactions, which
// can never conflict. The cc.Runner instead interleaves at *operation*
// granularity: each thread's transaction body runs in its own goroutine
// that parks before every operation, and a central scheduler grants one
// step at a time to the runnable thread with the smallest simulated clock
// (ties to the lowest thread id). Exactly one goroutine is ever running, so
// the interleaving is deterministic, race-free, and reproducible bit-for-
// bit — yet transactions are genuinely concurrent in simulated time, so a
// lock request can find its line held by a parked transaction and wound-
// wait has someone to wound.
package cc

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
)

// Policy names a concurrency-control algorithm.
type Policy string

const (
	// PolicyOCC is optimistic concurrency control: reads record per-line
	// versions, writes buffer privately, and commit validates the read set
	// and installs the write buffer as one atomic step. Aborts never
	// install anything, so they are cheap under every scheme.
	PolicyOCC Policy = "occ"
	// Policy2PL is per-line two-phase locking with wound-wait: writes are
	// eager (they reach the scheme before commit), so an abort must undo
	// durable work — the policy under which the schemes' abort paths
	// differentiate.
	Policy2PL Policy = "2pl"
	// PolicyBrokenNoReadLocks is the deliberately-unsound negative
	// control: two-phase locking that takes no read locks, admitting
	// non-serializable interleavings the cctest oracle must reject. Never
	// use it for measurements; it exists so the serializability harness
	// can prove it has teeth.
	PolicyBrokenNoReadLocks Policy = "broken-no-read-locks"
)

// Policies lists the sound policies in figure order.
var Policies = []Policy{PolicyOCC, Policy2PL}

// Tx is the operation surface a transaction body runs against. Bodies must
// be deterministic functions of their inputs: an aborted body re-executes
// from scratch on retry.
type Tx interface {
	ReadWord(addr mem.PAddr) uint64
	WriteWord(addr mem.PAddr, v uint64)
}

// TxFunc is one transaction body.
type TxFunc func(tx Tx)

// TxSource produces the transaction bodies of one thread. Next is called
// once per *committed* transaction; the returned body may execute several
// times (abort → retry), so any randomness must be drawn inside Next and
// captured by the closure, never inside the body.
type TxSource interface {
	Next() TxFunc
}

// TxSourceFunc adapts a function to TxSource.
type TxSourceFunc func() TxFunc

// Next implements TxSource.
func (f TxSourceFunc) Next() TxFunc { return f() }

// Config configures a Runner.
type Config struct {
	Policy Policy
	// Record retains every committed transaction's reads and writes (and
	// the abort count) in a History for the serializability oracle. Off
	// for measurement runs — recording allocates.
	Record bool
	// MaxRetries bounds the abort→retry loop of a single transaction
	// (safety net against livelock bugs; wound-wait should never need it).
	// Zero means the default of 10000.
	MaxRetries int
}

// Runner drives conflicting transactions over one engine.System.
type Runner struct {
	sys     *engine.System
	cfg     Config
	policy  policy
	threads []*thread

	stepDone chan *thread
	// lockEpoch increments whenever any lock is released (or a holder is
	// wounded); blocked threads only become runnable again when the epoch
	// has moved past the one they blocked under, so a failed re-check
	// cannot spin.
	lockEpoch uint64

	prioSeq uint64 // first-begin timestamps for wound-wait priorities

	history History
}

// thread run states (thread.status).
const (
	statusReady    = iota // parked at a yield point, runnable
	statusBlocked         // waiting on a lock
	statusFinished        // quota done, goroutine exited
)

type thread struct {
	r   *Runner
	id  int
	env *engine.Env

	resume chan struct{}
	status int
	// blockEpoch is the lockEpoch observed when the thread blocked.
	blockEpoch uint64
	blockLine  uint64

	// Wound-wait state: prio is the first-begin timestamp (kept across
	// retries so a repeatedly-wounded transaction ages into the oldest and
	// must eventually win); wounded is set by an older conflicting
	// requester and consumed at the next yield point.
	prio       uint64
	wounded    bool
	committing bool
	inTx       bool

	// Per-policy transaction state (epoch-cleared per attempt).
	occ  occState
	lock lockTxState

	// Recording buffer (reused across attempts; copied on commit).
	ops     []Op
	attempt int
}

// abortSignal unwinds a wounded or validation-failed transaction body.
type abortSignal struct{}

// New builds a Runner over sys. The system must have been built with
// engine.Config.Abortable (the rollback arena TxAbort needs).
func New(sys *engine.System, cfg Config) (*Runner, error) {
	n := sys.Config().Threads
	if n > 64 {
		return nil, fmt.Errorf("cc: at most 64 threads (lock table uses a holder bitmask), got %d", n)
	}
	if !sys.Config().Abortable {
		return nil, fmt.Errorf("cc: engine.Config.Abortable must be set (TxAbort needs the rollback arena)")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 10000
	}
	r := &Runner{
		sys:      sys,
		cfg:      cfg,
		stepDone: make(chan *thread),
	}
	switch cfg.Policy {
	case PolicyOCC:
		r.policy = newOCCPolicy(r)
	case Policy2PL:
		r.policy = newLockPolicy(r, true)
	case PolicyBrokenNoReadLocks:
		r.policy = newLockPolicy(r, false)
	default:
		return nil, fmt.Errorf("cc: unknown policy %q", cfg.Policy)
	}
	r.threads = make([]*thread, n)
	for i := range r.threads {
		r.threads[i] = &thread{
			r:      r,
			id:     i,
			env:    sys.NewEnv(i),
			resume: make(chan struct{}),
		}
	}
	return r, nil
}

// History returns the recorded history (Config.Record). The slice is owned
// by the Runner; read it only after Run returns.
func (r *Runner) History() *History { return &r.history }

// policy is the internal algorithm surface. All methods run on the
// granted thread's goroutine; none may yield except through t.acquire
// helpers that the policy itself owns.
type policy interface {
	// begin opens the engine transaction and resets per-attempt state.
	begin(t *thread)
	read(t *thread, addr mem.PAddr) uint64
	write(t *thread, addr mem.PAddr, v uint64)
	// commit attempts to commit; false means validation failed and the
	// caller must abort the attempt. On true the engine transaction is
	// durable and all policy state is released.
	commit(t *thread) bool
	// abort tears down policy state after an abort decision. The engine
	// transaction is still open; abort must close it via env.TxAbort and
	// only then release conflict state (locks release at post-abort time,
	// so expensive scheme rollbacks hold their lines longer — the effect
	// the contention figures measure).
	abort(t *thread)
}

// Run executes totalTxs committed transactions spread round-robin over the
// sources (one per thread, like engine.System.Run). It returns when every
// thread has committed its share; aborted attempts retry until they
// commit, so the committed-transaction count is exact.
func (r *Runner) Run(sources []TxSource, totalTxs int) {
	n := len(r.threads)
	if len(sources) != n {
		panic(fmt.Sprintf("cc: %d sources for %d threads", len(sources), n))
	}
	quota := make([]int, n)
	for i := 0; i < totalTxs; i++ {
		quota[i%n]++
	}
	live := 0
	for i, t := range r.threads {
		t.status = statusReady
		t.wounded = false
		t.committing = false
		t.inTx = false
		if quota[i] == 0 {
			t.status = statusFinished
			continue
		}
		live++
		go t.loop(sources[i], quota[i])
	}
	// Collect the initial yield of every launched goroutine, then grant
	// steps until all threads finish their quota.
	for i := 0; i < live; i++ {
		<-r.stepDone
	}
	for {
		t := r.pick()
		if t == nil {
			if r.liveCount() == 0 {
				return
			}
			panic("cc: no runnable thread (lock scheduler stuck — wound-wait must prevent deadlock)")
		}
		t.resume <- struct{}{}
		<-r.stepDone
	}
}

// pick selects the next thread to step: the smallest-clock thread that is
// ready, or blocked-but-wakeable (the lock epoch moved, or it was wounded).
func (r *Runner) pick() *thread {
	var best *thread
	for _, t := range r.threads {
		switch t.status {
		case statusReady:
		case statusBlocked:
			if !t.wounded && t.blockEpoch == r.lockEpoch {
				continue
			}
		default:
			continue
		}
		if best == nil || r.sys.Clock(t.id) < r.sys.Clock(best.id) {
			best = t
		}
	}
	return best
}

func (r *Runner) liveCount() int {
	n := 0
	for _, t := range r.threads {
		if t.status != statusFinished {
			n++
		}
	}
	return n
}

// loop is one thread's goroutine: commit `quota` transactions, retrying
// aborted attempts with the same body.
func (t *thread) loop(src TxSource, quota int) {
	t.yield(statusReady) // initial park; Run collects it before granting
	for done := 0; done < quota; done++ {
		body := src.Next()
		t.runToCommit(body)
	}
	t.status = statusFinished
	t.r.stepDone <- t
}

// runToCommit executes body until one attempt commits.
func (t *thread) runToCommit(body TxFunc) {
	for t.attempt = 0; ; t.attempt++ {
		if t.attempt > t.r.cfg.MaxRetries {
			panic(fmt.Sprintf("cc: thread %d exceeded %d retries (livelock?)", t.id, t.r.cfg.MaxRetries))
		}
		if t.tryOnce(body) {
			return
		}
	}
}

// tryOnce is one attempt: begin, body, commit. It reports whether the
// attempt committed; a wound or validation failure aborts the engine
// transaction and returns false.
func (t *thread) tryOnce(body TxFunc) (committed bool) {
	t.yield(statusReady) // the begin step
	if t.attempt == 0 {
		// A fresh transaction draws a new wound-wait priority; retries
		// keep the old one, so a repeatedly-wounded transaction ages into
		// the oldest in the system and must eventually win
		// (anti-starvation).
		t.r.prioSeq++
		t.prio = t.r.prioSeq
	}
	t.ops = t.ops[:0]
	t.committing = false
	t.r.policy.begin(t)
	t.inTx = true
	defer func() {
		if e := recover(); e != nil {
			if _, ok := e.(abortSignal); !ok {
				panic(e)
			}
			t.r.policy.abort(t)
			t.inTx = false
			t.committing = false
			if t.r.cfg.Record {
				t.r.history.Aborts++
			}
			committed = false
		}
	}()
	body(t)
	t.committing = true
	t.yield(statusReady) // the commit step
	if !t.r.policy.commit(t) {
		panic(abortSignal{})
	}
	t.inTx = false
	t.committing = false
	if t.r.cfg.Record {
		t.r.history.Commits = append(t.r.history.Commits, CommittedTx{
			Thread:  t.id,
			Attempt: t.attempt,
			Ops:     append([]Op(nil), t.ops...),
		})
	}
	return true
}

// yield parks the thread until the scheduler grants it a step. A pending
// wound is consumed here: the grant lands as an abort.
func (t *thread) yield(status int) {
	t.status = status
	t.r.stepDone <- t
	<-t.resume
	t.status = statusReady
	if t.wounded {
		t.wounded = false
		panic(abortSignal{})
	}
}

// yieldBlocked parks the thread as blocked on line until a lock releases.
func (t *thread) yieldBlocked(line uint64) {
	t.blockLine = line
	t.blockEpoch = t.r.lockEpoch
	t.yield(statusBlocked)
}

// Tx interface: ReadWord/WriteWord are the yield points.

// ReadWord implements Tx.
func (t *thread) ReadWord(addr mem.PAddr) uint64 {
	t.yield(statusReady)
	v := t.r.policy.read(t, addr)
	if t.r.cfg.Record {
		t.ops = append(t.ops, Op{Kind: OpRead, Addr: addr, Val: v})
	}
	return v
}

// WriteWord implements Tx.
func (t *thread) WriteWord(addr mem.PAddr, v uint64) {
	t.yield(statusReady)
	t.r.policy.write(t, addr, v)
	if t.r.cfg.Record {
		t.ops = append(t.ops, Op{Kind: OpWrite, Addr: addr, Val: v})
	}
}

// advance charges d of computation to the thread's clock.
func (t *thread) advance(d sim.Duration) {
	t.env.AdvanceTo(t.env.Now() + sim.Time(d))
}
