package cctest

import (
	"testing"

	"hoop/internal/cc"
	"hoop/internal/engine"
)

// FuzzConcurrentHistories drives the concurrency-control layer with
// fuzzer-chosen workload shapes and checks every history against the
// sequential-specification oracle. The scheme alternates between the
// cheapest (Ideal) and the most machinery-heavy (HOOP) so the fuzzer's
// budget goes into interleavings, not recovery scans; CI runs this as a
// short smoke (-fuzztime), and any crasher reduces to a plain Config.
func FuzzConcurrentHistories(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3), uint8(8), false, false)
	f.Add(uint64(42), uint8(8), uint8(2), uint8(2), true, true)
	f.Add(uint64(7), uint8(2), uint8(5), uint8(4), false, true)
	f.Fuzz(func(t *testing.T, seed uint64, threads, ops, pool uint8, useHoop, use2PL bool) {
		cfg := Config{
			Scheme:    engine.SchemeNative,
			Policy:    cc.PolicyOCC,
			Seed:      seed,
			Threads:   int(threads%8) + 2,
			Txs:       60,
			PoolWords: int(pool%16) + 2,
			OpsPerTx:  int(ops%5) + 1,
			Theta:     1.1,
		}
		if useHoop {
			cfg.Scheme = engine.SchemeHOOP
		}
		if use2PL {
			cfg.Policy = cc.Policy2PL
		}
		h, sys, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(h); err != nil {
			t.Fatal(err)
		}
		if err := CheckFinalState(h, sys); err != nil {
			t.Fatal(err)
		}
	})
}
