package cctest

import (
	"fmt"
	"testing"
	"testing/quick"

	"hoop/internal/cc"
	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
)

// TestSerializableAllSchemes is the exhaustive driver: every scheme ×
// every sound policy × a grid of seeds, each history checked against the
// sequential-specification oracle and the final-state replay.
func TestSerializableAllSchemes(t *testing.T) {
	for _, scheme := range engine.AllSchemes {
		for _, policy := range cc.Policies {
			t.Run(fmt.Sprintf("%s/%s", scheme, policy), func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					h, sys, err := Run(Config{Scheme: scheme, Policy: policy, Seed: seed})
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if err := Check(h); err != nil {
						t.Errorf("seed %d: %v", seed, err)
					}
					if err := CheckFinalState(h, sys); err != nil {
						t.Errorf("seed %d: %v", seed, err)
					}
				}
			})
		}
	}
}

// TestRandomizedHistories is the randomized driver: larger, hotter
// workloads with more threads, seeds drawn from a seeded generator so the
// run is reproducible yet covers fresh interleavings when the grid grows.
func TestRandomizedHistories(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized driver skipped in -short")
	}
	rng := sim.NewRand(0xCC7E57)
	for _, scheme := range []string{engine.SchemeHOOP, engine.SchemeUndo, engine.SchemeNative} {
		for _, policy := range cc.Policies {
			for i := 0; i < 5; i++ {
				cfg := Config{
					Scheme:    scheme,
					Policy:    policy,
					Seed:      rng.Uint64(),
					Threads:   8,
					Txs:       160,
					PoolWords: 8,
					OpsPerTx:  1 + rng.Intn(4),
					Theta:     1.1,
				}
				h, sys, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %#x: %v", scheme, policy, cfg.Seed, err)
				}
				if err := Check(h); err != nil {
					t.Errorf("%s/%s seed %#x: %v", scheme, policy, cfg.Seed, err)
				}
				if err := CheckFinalState(h, sys); err != nil {
					t.Errorf("%s/%s seed %#x: %v", scheme, policy, cfg.Seed, err)
				}
			}
		}
	}
}

// TestConflictsActuallyHappen guards the harness against vacuity: a hot
// single-line pool with many threads must produce aborts under both sound
// policies — otherwise the serializability checks above prove nothing.
func TestConflictsActuallyHappen(t *testing.T) {
	for _, policy := range cc.Policies {
		total := 0
		for seed := uint64(1); seed <= 3; seed++ {
			h, _, err := Run(Config{
				Scheme: engine.SchemeNative, Policy: policy, Seed: seed,
				Threads: 8, Txs: 120, PoolWords: 4, OpsPerTx: 3, Theta: 1.2,
			})
			if err != nil {
				t.Fatal(err)
			}
			total += h.Aborts
		}
		if total == 0 {
			t.Errorf("policy %s: hot workload produced zero aborts — conflicts are not being exercised", policy)
		}
	}
}

// TestBrokenPolicyRejected proves the oracle has teeth: two-phase locking
// without read locks admits lost updates, and the oracle must catch at
// least one across the seed grid (in practice it catches most seeds).
func TestBrokenPolicyRejected(t *testing.T) {
	violations := 0
	for seed := uint64(1); seed <= 8; seed++ {
		h, _, err := Run(Config{
			Scheme: engine.SchemeNative, Policy: cc.PolicyBrokenNoReadLocks, Seed: seed,
			Threads: 8, Txs: 160, PoolWords: 2, OpsPerTx: 2, Theta: 1.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(h); err != nil {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("oracle accepted every broken-no-read-locks history — the serializability check has no teeth")
	}
}

// TestDeterministicHistories: the runner's goroutine step scheduler must
// be invisible to results — the same Config yields a byte-identical
// history every run.
func TestDeterministicHistories(t *testing.T) {
	for _, policy := range cc.Policies {
		cfg := Config{Scheme: engine.SchemeHOOP, Policy: policy, Seed: 7,
			Threads: 6, Txs: 90, PoolWords: 4, OpsPerTx: 3, Theta: 1.1}
		a, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Aborts != b.Aborts || len(a.Commits) != len(b.Commits) {
			t.Fatalf("policy %s: history shape diverged across identical runs: %d/%d commits, %d/%d aborts",
				policy, len(a.Commits), len(b.Commits), a.Aborts, b.Aborts)
		}
		for i := range a.Commits {
			ca, cb := &a.Commits[i], &b.Commits[i]
			if ca.Thread != cb.Thread || ca.Attempt != cb.Attempt || len(ca.Ops) != len(cb.Ops) {
				t.Fatalf("policy %s: commit %d diverged", policy, i)
			}
			for j := range ca.Ops {
				if ca.Ops[j] != cb.Ops[j] {
					t.Fatalf("policy %s: commit %d op %d diverged: %+v vs %+v", policy, i, j, ca.Ops[j], cb.Ops[j])
				}
			}
		}
	}
}

// abortRetryTx is one transaction of the abort-retry property workload.
type abortRetryTx struct {
	words map[mem.PAddr]uint64
}

// buildAbortRetryTxs derives a deterministic transaction list from seed.
func buildAbortRetryTxs(seed uint64) []abortRetryTx {
	rng := sim.NewRand(seed)
	txs := make([]abortRetryTx, 6)
	for i := range txs {
		n := rng.Range(1, 6)
		words := make(map[mem.PAddr]uint64, n)
		for j := 0; j < n; j++ {
			words[mem.PAddr(rng.Intn(64)*mem.WordSize)] = rng.Uint64()
		}
		txs[i] = abortRetryTx{words: words}
	}
	return txs
}

func runTxWrites(env *engine.Env, words map[mem.PAddr]uint64) {
	for _, a := range sortedAddrs(words) {
		env.WriteWord(a, words[a])
	}
}

func sortedAddrs(words map[mem.PAddr]uint64) []mem.PAddr {
	addrs := make([]mem.PAddr, 0, len(words))
	for a := range words {
		addrs = append(addrs, a)
	}
	for i := 1; i < len(addrs); i++ {
		for j := i; j > 0 && addrs[j-1] > addrs[j]; j-- {
			addrs[j-1], addrs[j] = addrs[j], addrs[j-1]
		}
	}
	return addrs
}

// TestAbortRetryByteIdentical is the abort-then-retry property (checked
// with testing/quick over random seeds): for every scheme, executing each
// transaction as abort-then-retry leaves both the logical view and the
// post-crash recovered home region byte-identical to executing it once.
// An abort path that leaks durable state (or fails to neutralize it)
// breaks the recovered-image comparison.
func TestAbortRetryByteIdentical(t *testing.T) {
	for _, scheme := range engine.AllSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			f := func(seed uint64) bool {
				txs := buildAbortRetryTxs(seed)

				once, err := NewSystem(scheme, 1)
				if err != nil {
					t.Fatal(err)
				}
				twice, err := NewSystem(scheme, 1)
				if err != nil {
					t.Fatal(err)
				}
				envOnce := once.NewEnv(0)
				envTwice := twice.NewEnv(0)
				for _, tx := range txs {
					envOnce.TxBegin()
					runTxWrites(envOnce, tx.words)
					envOnce.TxEnd()

					// Same transaction, but the first attempt aborts just
					// before commit and the retry re-executes it.
					envTwice.TxBegin()
					runTxWrites(envTwice, tx.words)
					envTwice.TxAbort()
					envTwice.TxBegin()
					runTxWrites(envTwice, tx.words)
					envTwice.TxEnd()
				}

				// The logical views must agree word for word.
				var ba, bb [mem.WordSize]byte
				for w := 0; w < 64; w++ {
					a := mem.PAddr(w * mem.WordSize)
					once.View().Read(a, ba[:])
					twice.View().Read(a, bb[:])
					if ba != bb {
						t.Logf("seed %d: view mismatch at %#x: %x vs %x", seed, uint64(a), ba, bb)
						return false
					}
				}

				// And so must the recovered durable home region.
				for _, sys := range []*engine.System{once, twice} {
					sys.DrainCache()
					sys.Crash()
					if _, err := sys.Recover(1); err != nil {
						t.Fatalf("seed %d: recover: %v", seed, err)
					}
				}
				for w := 0; w < 64; w++ {
					a := mem.PAddr(w * mem.WordSize)
					once.Durable().Read(a, ba[:])
					twice.Durable().Read(a, bb[:])
					if ba != bb {
						t.Logf("seed %d: recovered home mismatch at %#x: %x vs %x", seed, uint64(a), ba, bb)
						return false
					}
				}
				return true
			}
			cfgQuick := &quick.Config{MaxCount: 4}
			if testing.Short() {
				cfgQuick.MaxCount = 1
			}
			if err := quick.Check(f, cfgQuick); err != nil {
				t.Error(err)
			}
		})
	}
}
