// Package cctest is the model-checking harness for the concurrency-control
// layer: it runs seeded conflicting workloads through cc.Runner over a real
// simulated system (any persistence scheme) and checks the recorded history
// against a sequential-specification oracle — every committed transaction,
// replayed in commit order against a plain map, must have observed exactly
// the values the replay produces (serializability by commit order), and the
// system's final logical state must match the replay's final state.
//
// The oracle has teeth: cc.PolicyBrokenNoReadLocks (two-phase locking
// without read locks) admits lost updates, and the tests assert the oracle
// rejects it while accepting OCC and wound-wait 2PL under every scheme.
package cctest

import (
	"fmt"

	"hoop/internal/cc"
	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/workload"
)

// Config is one seeded concurrent workload.
type Config struct {
	Scheme  string
	Policy  cc.Policy
	Seed    uint64
	Threads int
	Txs     int // total committed transactions across all threads
	// PoolWords is the shared word pool size: every access targets one of
	// the first PoolWords words of the home region. Small pools force
	// line-level conflicts.
	PoolWords int
	// OpsPerTx is the number of read-modify-write pairs per transaction.
	OpsPerTx int
	// Theta is the Zipfian skew over the pool (0 = uniform-ish; 0.99 =
	// YCSB default; higher = hotter).
	Theta float64
}

// withDefaults fills zero fields with small-but-conflicting defaults.
func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Txs == 0 {
		c.Txs = 48
	}
	if c.PoolWords == 0 {
		c.PoolWords = 16
	}
	if c.OpsPerTx == 0 {
		c.OpsPerTx = 3
	}
	if c.Theta == 0 {
		c.Theta = 0.9
	}
	return c
}

// NewSystem builds an abortable engine system for scheme with the given
// thread count, sized for the harness's small workloads: a 256 MiB device
// keeps recovery scans (proportional to log-region capacity) fast enough
// for exhaustive crash/recover drivers.
func NewSystem(scheme string, threads int) (*engine.System, error) {
	cfg := engine.DefaultConfig(scheme)
	cfg.Threads = threads
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	cfg.Abortable = true
	cfg.NVM.Capacity = 256 << 20
	cfg.OOPBytes = 16 << 20
	return engine.New(cfg)
}

// Run executes the seeded workload and returns the recorded history and
// the system it ran on. Each thread issues read-modify-write transactions
// over the shared Zipfian-skewed word pool, so transactions genuinely
// conflict; the policy resolves them. Deterministic: same Config, same
// history, bit for bit.
func Run(c Config) (*cc.History, *engine.System, error) {
	c = c.withDefaults()
	sys, err := NewSystem(c.Scheme, c.Threads)
	if err != nil {
		return nil, nil, err
	}
	r, err := cc.New(sys, cc.Config{Policy: c.Policy, Record: true})
	if err != nil {
		return nil, nil, err
	}
	r.Run(Sources(c), c.Txs)
	return r.History(), sys, nil
}

// Sources builds the per-thread transaction sources for c: the shared-key
// Zipfian read-modify-write workload from internal/workload, the same
// shape the harness contention figure measures.
func Sources(c Config) []cc.TxSource {
	c = c.withDefaults()
	return workload.Contention{Keys: c.PoolWords, OpsPerTx: c.OpsPerTx, Theta: c.Theta}.
		Sources(c.Threads, c.Seed)
}

// Violation is one serializability failure: a committed transaction whose
// recorded read does not match the sequential replay.
type Violation struct {
	Commit int // index into History.Commits
	Thread int
	Op     int // index into CommittedTx.Ops
	Addr   mem.PAddr
	Got    uint64 // value the transaction observed
	Want   uint64 // value the sequential replay produces
}

func (v *Violation) Error() string {
	return fmt.Sprintf("cctest: serializability violation at commit %d (thread %d) op %d: read %#x observed %d, sequential replay expects %d",
		v.Commit, v.Thread, v.Op, uint64(v.Addr), v.Got, v.Want)
}

// Check replays the history's committed transactions in commit order
// against a map specification (absent words start at zero, matching a
// fresh store) and returns a Violation for the first read that observed a
// value no sequential execution in that order could have produced. A nil
// return means the history is serializable in commit order.
func Check(h *cc.History) error {
	spec := make(map[mem.PAddr]uint64)
	for ci := range h.Commits {
		tx := &h.Commits[ci]
		for oi, op := range tx.Ops {
			switch op.Kind {
			case cc.OpRead:
				if want := spec[op.Addr]; op.Val != want {
					return &Violation{Commit: ci, Thread: tx.Thread, Op: oi, Addr: op.Addr, Got: op.Val, Want: want}
				}
			case cc.OpWrite:
				spec[op.Addr] = op.Val
			}
		}
	}
	return nil
}

// CheckFinalState verifies that the system's logical view agrees with the
// sequential replay's final state — the policy must have installed exactly
// the writes it recorded, in the order it recorded them.
func CheckFinalState(h *cc.History, sys *engine.System) error {
	spec := make(map[mem.PAddr]uint64)
	for ci := range h.Commits {
		for _, op := range h.Commits[ci].Ops {
			if op.Kind == cc.OpWrite {
				spec[op.Addr] = op.Val
			}
		}
	}
	var buf [mem.WordSize]byte
	for addr, want := range spec {
		sys.View().Read(addr, buf[:])
		var got uint64
		for i := 0; i < mem.WordSize; i++ {
			got |= uint64(buf[i]) << (8 * uint(i))
		}
		if got != want {
			return fmt.Errorf("cctest: final state mismatch at %#x: view holds %d, replay expects %d", uint64(addr), got, want)
		}
	}
	return nil
}
