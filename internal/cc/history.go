package cc

import "hoop/internal/mem"

// OpKind distinguishes reads from writes in a recorded transaction.
type OpKind uint8

const (
	OpRead  OpKind = iota // Val is the value the transaction observed
	OpWrite               // Val is the value the transaction stored
)

// Op is one recorded word operation.
type Op struct {
	Kind OpKind    `json:"kind"`
	Addr mem.PAddr `json:"addr"`
	Val  uint64    `json:"val"`
}

// CommittedTx is one committed transaction as the serializability oracle
// sees it: its reads and writes in program order (so read-after-own-write
// replays correctly). Position in History.Commits is the commit order —
// the order the policies serialize in (2PL releases locks at commit; OCC
// validates and installs atomically at commit).
type CommittedTx struct {
	Thread  int  `json:"thread"`
	Attempt int  `json:"attempt"` // 0 = committed on the first try
	Ops     []Op `json:"ops"`
}

// History is a recorded concurrent execution.
type History struct {
	Commits []CommittedTx `json:"commits"` // in commit order
	Aborts  int           `json:"aborts"`
}
