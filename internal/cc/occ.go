package cc

import (
	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/u64map"
)

// OCC timing constants. The version table is a small SRAM/DRAM-resident
// structure beside the memory controller's transaction state; probing it
// is far cheaper than a memory access.
const (
	// occBufferCost is a store-buffer insert (the write intention is held
	// privately until commit, never reaching the cache hierarchy).
	occBufferCost = 4 * sim.Nanosecond
	// occProbeCost is one version-table probe, paid per read-set entry at
	// validation and per version bump at install.
	occProbeCost = 2 * sim.Nanosecond
)

// occState is one thread's per-attempt OCC state, epoch-cleared on begin.
type occState struct {
	wbuf  u64map.Map[uint64] // word addr -> buffered value
	order []uint64           // word addrs in first-write order
	rset  u64map.Map[uint64] // line -> version at first read
	// scratch is the validation key buffer (reused, so validation costs
	// no steady-state allocation).
	scratch []uint64
}

// occPolicy implements optimistic concurrency control: reads record the
// per-line version they observed, writes buffer privately, and commit
// validates the read set against the current versions and installs the
// write buffer in one atomic scheduler step. Because nothing reaches the
// engine (or the persist scheme) before a successful validation, an abort
// has an empty durable footprint under every scheme.
type occPolicy struct {
	r        *Runner
	versions u64map.Map[uint64] // line -> install version
}

func newOCCPolicy(r *Runner) *occPolicy { return &occPolicy{r: r} }

func (p *occPolicy) begin(t *thread) {
	t.env.TxBegin()
	t.occ.wbuf.Clear()
	t.occ.order = t.occ.order[:0]
	t.occ.rset.Clear()
}

func (p *occPolicy) read(t *thread, addr mem.PAddr) uint64 {
	w := uint64(addr)
	if v, ok := t.occ.wbuf.Get(w); ok {
		// Read-your-own-write: forwarded from the store buffer.
		t.advance(occBufferCost)
		return v
	}
	v := t.env.ReadWord(addr)
	line := mem.LineIndex(addr)
	if !t.occ.rset.Contains(line) {
		ver, _ := p.versions.Get(line)
		t.occ.rset.Put(line, ver)
		t.advance(occProbeCost)
	}
	return v
}

func (p *occPolicy) write(t *thread, addr mem.PAddr, v uint64) {
	w := uint64(addr)
	if !t.occ.wbuf.Contains(w) {
		t.occ.order = append(t.occ.order, w)
	}
	t.occ.wbuf.Put(w, v)
	t.advance(occBufferCost)
}

func (p *occPolicy) commit(t *thread) bool {
	// Validate: every line the attempt read must still be at the version
	// it observed. The whole commit runs as one scheduler step, so
	// validation and install are atomic with respect to every other
	// transaction — the serialization point of the policy.
	keys := t.occ.rset.Keys(t.occ.scratch[:0])
	t.occ.scratch = keys
	t.advance(sim.Duration(len(keys)) * occProbeCost)
	for _, line := range keys {
		seen, _ := t.occ.rset.Get(line)
		cur, _ := p.versions.Get(line)
		if cur != seen {
			return false
		}
	}
	// Install: replay the buffered writes through the engine in first-
	// write order (deterministic), then commit; the persist scheme sees
	// the stores only now, so its durable work is exactly one committed
	// transaction's worth.
	for _, w := range t.occ.order {
		v, _ := t.occ.wbuf.Get(w)
		t.env.WriteWord(mem.PAddr(w), v)
	}
	t.env.TxEnd()
	for _, w := range t.occ.order {
		(*p.versions.Ref(mem.LineIndex(mem.PAddr(w))))++
	}
	t.advance(sim.Duration(len(t.occ.order)) * occProbeCost)
	return true
}

func (p *occPolicy) abort(t *thread) {
	// Nothing was installed, so the engine rollback is a no-op on the
	// view and the scheme abort sees an empty write set — OCC aborts are
	// cheap by construction under every scheme.
	t.env.TxAbort()
}
