// Package telemetry is the simulator's structured observability layer: a
// typed event stream threaded through the simulation core, replacing both
// the bespoke engine.Tracer interface and ad-hoc counter spelunking.
//
// Components emit Events — transaction begin/commit/abort, persist-ordering
// drains, OOP slice writes, GC epochs with migration counts, mapping-table
// evictions, cache misses, recovery phases — into a Hub. Consumers attach
// Sinks with a Mask of the kinds they care about; the Hub unions all
// subscriber masks so the per-event cost at an emission site is a nil check
// plus one bitmask test when nobody is listening. The simulation itself is
// never affected: telemetry observes simulated time, it does not advance it.
package telemetry

import (
	"hoop/internal/mem"
	"hoop/internal/sim"
)

// Kind identifies what happened. The zero value is invalid so that an
// all-zero Event is recognizably empty.
type Kind uint8

const (
	kindInvalid Kind = iota
	// KindTxBegin fires when a thread opens a transaction. Tx carries the
	// global transaction id, Core the issuing thread.
	KindTxBegin
	// KindTxCommit fires when a transaction becomes durable. Aux carries
	// the commit latency in picoseconds (a sim.Duration).
	KindTxCommit
	// KindTxAbort fires when an open transaction is torn down without
	// committing — today that means a crash was injected while it ran.
	KindTxAbort
	// KindLoad fires per transactional read. Addr/Bytes give the access.
	KindLoad
	// KindStore fires per transactional write. Addr/Bytes give the access
	// and Data aliases the written bytes (valid only during Emit).
	KindStore
	// KindPersistDrain fires when a scheme forces posted writes to the
	// persistence domain before proceeding (an ordering stall). Aux counts
	// drained agents or queued writes, scheme-dependent.
	KindPersistDrain
	// KindSliceWrite fires when HOOP seals a memory slice into the OOP
	// region. Addr is the slice base, Bytes the slice size, Aux the number
	// of dirty words it carries.
	KindSliceWrite
	// KindGCStart opens a cleanup epoch: HOOP GC coalescing, redo/undo log
	// checkpoint/truncate batches, OSP consolidation, LSM compaction. Aux
	// counts the pending units being reclaimed; FlagOnDemand marks epochs
	// forced by backpressure rather than the periodic timer.
	KindGCStart
	// KindGCEnd closes the epoch opened by the latest KindGCStart on the
	// same core. Bytes counts migrated (written-back) bytes, Aux the units
	// scanned.
	KindGCEnd
	// KindMapEvict fires when the mapping table retires an entry: the GC
	// has migrated the line's newest version to the home region, so reads
	// no longer need the out-of-place indirection. Addr is the home line
	// address. A burst of these inside an on-demand GC epoch is the
	// signature of mapping-table pressure (Figure 13).
	KindMapEvict
	// KindCacheMiss fires when an access misses every cache level and goes
	// to memory. Addr is the line address; FlagWrite marks stores. Cache
	// misses carry no Time: the hierarchy is untimed (latency is charged
	// by the memory model), and events stay cheap enough to leave on.
	KindCacheMiss
	// KindNVMRead/KindNVMWrite fire per device access with Addr/Bytes.
	// They are the highest-rate kinds; subscribe only when reconstructing
	// device-level traffic.
	KindNVMRead
	KindNVMWrite
	// KindLogWrite fires when a baseline appends to its WAL/undo/LSM log
	// or writes a checkpoint record. Addr is the record address, Bytes its
	// size.
	KindLogWrite
	// KindRecovery fires per recovery phase from the recovery master
	// thread. Aux is the RecoveryPhase, Bytes the data the phase touched.
	KindRecovery
	// KindShardEnqueue fires when a service shard admits a request from its
	// mailbox. Time is the request's open-loop arrival time, Tx the global
	// request sequence number, and Aux the simulated queueing delay the
	// request suffered before admission (picoseconds).
	KindShardEnqueue
	// KindShardShed fires when a shard's admission control drops a request
	// whose simulated queueing delay exceeded the backpressure bound. Time,
	// Tx, and Aux carry the same fields as KindShardEnqueue; the service
	// tier accounts a shed like a tx_abort (offered but not committed).
	KindShardShed
	// KindRingRoute fires when the service router assigns a request to a
	// shard. Time is the arrival time, Tx the request sequence number, Aux
	// the chosen shard index. Per-request rate: subscribe only when
	// reconstructing routing decisions.
	KindRingRoute
	// KindScan fires once per structure-level range scan after its last
	// item lands. Bytes is the total value bytes the scan read, Aux the
	// item count, Core the issuing thread. Per-scan-op rate (not per item),
	// so it rides in MaskPhases.
	KindScan

	numKinds
)

// kindNames is indexed by Kind and doubles as the JSONL wire name.
var kindNames = [numKinds]string{
	kindInvalid:      "invalid",
	KindTxBegin:      "tx_begin",
	KindTxCommit:     "tx_commit",
	KindTxAbort:      "tx_abort",
	KindLoad:         "load",
	KindStore:        "store",
	KindPersistDrain: "persist_drain",
	KindSliceWrite:   "slice_write",
	KindGCStart:      "gc_start",
	KindGCEnd:        "gc_end",
	KindMapEvict:     "map_evict",
	KindCacheMiss:    "cache_miss",
	KindNVMRead:      "nvm_read",
	KindNVMWrite:     "nvm_write",
	KindLogWrite:     "log_write",
	KindRecovery:     "recovery",
	KindShardEnqueue: "shard_enqueue",
	KindShardShed:    "shard_shed",
	KindRingRoute:    "ring_route",
	KindScan:         "scan",
}

// String returns the stable wire name of the kind ("tx_commit", "gc_start").
func (k Kind) String() string {
	if k >= numKinds {
		return "invalid"
	}
	return kindNames[k]
}

// KindByName resolves a wire name back to its Kind; ok is false for
// unknown names.
func KindByName(name string) (Kind, bool) {
	for k := KindTxBegin; k < numKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return kindInvalid, false
}

// NumKinds is the number of valid kinds, for sinks that keep per-kind
// arrays. Valid kinds are 1..NumKinds.
const NumKinds = int(numKinds) - 1

// Event flags.
const (
	// FlagOnDemand marks a GC epoch forced by allocation backpressure.
	FlagOnDemand uint8 = 1 << iota
	// FlagWrite marks the miss of a store (KindCacheMiss).
	FlagWrite
)

// RecoveryPhase values carried in Aux by KindRecovery events.
const (
	RecoveryPhaseLogScan   = 1 // commit-log / WAL scan
	RecoveryPhaseChainScan = 2 // parallel OOP chain scan
	RecoveryPhaseMerge     = 3 // per-thread result merge
	RecoveryPhaseWriteBack = 4 // write committed data home
	RecoveryPhaseClear     = 5 // clear / reset persistent metadata
)

// Event is one structured simulation event. Fields beyond Kind are
// kind-specific; unused fields are zero. Events are passed by value and
// must not be retained past Emit when Data is set — sinks that buffer
// (ring, JSONL) copy what they keep.
type Event struct {
	// Time is the simulated time of the event in the emitting thread's
	// frame, or 0 for untimed sites (cache lookups).
	Time sim.Time
	// Addr is the physical address the event concerns, if any.
	Addr mem.PAddr
	// Tx is the global transaction id for tx-scoped events, else 0.
	Tx uint64
	// Bytes is the payload size the event accounts for, if any.
	Bytes int64
	// Aux is a kind-specific extra (latency, counts, recovery phase).
	Aux int64
	// Data aliases written bytes for KindStore; valid only during Emit.
	Data []byte
	// Core is the issuing core/thread, or -1 when not thread-scoped.
	Core int16
	// Flags carries Flag* bits.
	Flags uint8
	// Kind says what happened.
	Kind Kind
}

// Mask selects a set of kinds; bit k selects Kind(k).
type Mask uint32

// MaskOf builds a Mask selecting exactly the given kinds.
func MaskOf(kinds ...Kind) Mask {
	var m Mask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask selects k.
func (m Mask) Has(k Kind) bool { return m&(1<<k) != 0 }

// MaskAll selects every kind.
const MaskAll Mask = (1<<numKinds - 1) &^ 1

// MaskOps selects the per-operation kinds: tx lifecycle plus every load
// and store. This is what trace recording subscribes to; it is also the
// expensive end of the taxonomy (events per memory operation).
var MaskOps = MaskOf(KindTxBegin, KindTxCommit, KindTxAbort, KindLoad, KindStore)

// MaskPhases selects the low-rate mechanism kinds — persist drains, slice
// writes, GC epochs, mapping-table evictions, log writes, aborts, recovery
// phases. The harness leaves these on for its per-cell phase breakdowns;
// their rate is per-transaction or lower, so the overhead stays in the
// noise.
var MaskPhases = MaskOf(KindTxAbort, KindPersistDrain, KindSliceWrite,
	KindGCStart, KindGCEnd, KindMapEvict, KindLogWrite, KindRecovery, KindScan)

// MaskTrace is the default -trace subscription: mechanism phases plus
// commits, enough to reconstruct a run's timeline without per-op volume.
var MaskTrace = MaskPhases | MaskOf(KindTxCommit)

// MaskService selects the service-tier kinds: shard admissions, sheds, and
// ring routing decisions. hoopd's soak traces subscribe the per-shard kinds
// (enqueue/shed) together with MaskTrace; ring_route fires per request on
// the router and is opt-in.
var MaskService = MaskOf(KindShardEnqueue, KindShardShed, KindRingRoute)

// Sink consumes events. Emit is called synchronously from the simulation
// loop with events matching the sink's subscription mask; implementations
// must not retain e.Data past the call.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }

// Hub fans events out to subscribed sinks. A nil *Hub is valid and always
// disabled, so components can hold one unconditionally. Hub is not safe
// for concurrent use — like the rest of the simulation core, one Hub
// belongs to one engine.System, and independent systems get independent
// hubs.
type Hub struct {
	subs []subscription
	mask Mask // union of all subscriber masks
}

type subscription struct {
	sink Sink
	mask Mask
}

// NewHub returns an empty hub with no subscribers.
func NewHub() *Hub { return &Hub{} }

// Subscribe attaches sink for the kinds in mask. Each call adds one
// subscription; subscribing the same sink twice delivers overlapping kinds
// twice.
func (h *Hub) Subscribe(sink Sink, mask Mask) {
	mask &= MaskAll
	h.subs = append(h.subs, subscription{sink: sink, mask: mask})
	h.mask |= mask
}

// Enabled reports whether any subscriber wants kind k. It is the hot-path
// guard: with no subscribers (or a nil hub) it is a pointer check and one
// bitmask test.
func (h *Hub) Enabled(k Kind) bool {
	return h != nil && h.mask&(1<<k) != 0
}

// Emit delivers e to every sink subscribed to e.Kind. Callers on hot paths
// should guard with Enabled to avoid building the Event at all.
func (h *Hub) Emit(e Event) {
	if h == nil || h.mask&(1<<e.Kind) == 0 {
		return
	}
	for i := range h.subs {
		if h.subs[i].mask&(1<<e.Kind) != 0 {
			h.subs[i].sink.Emit(e)
		}
	}
}
