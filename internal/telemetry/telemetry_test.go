package telemetry

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"hoop/internal/sim"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := KindTxBegin; k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "invalid" {
			t.Fatalf("kind %d has no name", k)
		}
		got, ok := KindByName(name)
		if !ok || got != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v", name, got, ok, k)
		}
	}
	if _, ok := KindByName("bogus"); ok {
		t.Fatal("KindByName accepted unknown name")
	}
	if Kind(200).String() != "invalid" {
		t.Fatal("out-of-range kind should stringify as invalid")
	}
}

func TestMask(t *testing.T) {
	m := MaskOf(KindTxCommit, KindGCStart)
	if !m.Has(KindTxCommit) || !m.Has(KindGCStart) || m.Has(KindLoad) {
		t.Fatalf("MaskOf selected wrong kinds: %b", m)
	}
	for k := KindTxBegin; k < numKinds; k++ {
		if !MaskAll.Has(k) {
			t.Fatalf("MaskAll missing %v", k)
		}
	}
	if MaskAll.Has(kindInvalid) {
		t.Fatal("MaskAll must not select the invalid kind")
	}
}

func TestNilHubIsDisabled(t *testing.T) {
	var h *Hub
	if h.Enabled(KindTxCommit) {
		t.Fatal("nil hub reported enabled")
	}
	h.Emit(Event{Kind: KindTxCommit}) // must not panic
}

func TestHubSubscriptionFiltering(t *testing.T) {
	h := NewHub()
	if h.Enabled(KindGCStart) {
		t.Fatal("empty hub reported enabled")
	}
	var commits, gcs []Event
	h.Subscribe(SinkFunc(func(e Event) { commits = append(commits, e) }), MaskOf(KindTxCommit))
	h.Subscribe(SinkFunc(func(e Event) { gcs = append(gcs, e) }), MaskOf(KindGCStart, KindGCEnd))

	if !h.Enabled(KindTxCommit) || !h.Enabled(KindGCEnd) || h.Enabled(KindLoad) {
		t.Fatal("union mask wrong")
	}
	h.Emit(Event{Kind: KindTxCommit, Tx: 7})
	h.Emit(Event{Kind: KindGCStart, Aux: 3})
	h.Emit(Event{Kind: KindLoad}) // nobody listens
	if len(commits) != 1 || commits[0].Tx != 7 {
		t.Fatalf("commit sink got %v", commits)
	}
	if len(gcs) != 1 || gcs[0].Aux != 3 {
		t.Fatalf("gc sink got %v", gcs)
	}
}

func TestHubMultipleSubscriptions(t *testing.T) {
	h := NewHub()
	var got []Event
	sink := SinkFunc(func(e Event) { got = append(got, e) })
	h.Subscribe(sink, MaskOf(KindTxCommit))
	h.Subscribe(sink, MaskOf(KindGCStart))
	h.Emit(Event{Kind: KindTxCommit})
	h.Emit(Event{Kind: KindGCStart})
	if len(got) != 2 {
		t.Fatalf("sink saw %d events, want 2", len(got))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cases := []Event{
		{Kind: KindTxCommit, Time: 12345, Core: 2, Tx: 99, Aux: 5600},
		{Kind: KindStore, Time: 7, Core: 0, Tx: 1, Addr: 4096, Bytes: 8, Data: []byte{0xde, 0xad}},
		{Kind: KindCacheMiss, Core: 1, Addr: 64, Flags: FlagWrite},
		{Kind: KindRecovery, Core: -1, Aux: RecoveryPhaseWriteBack, Bytes: 1 << 20},
		{Kind: KindGCStart, Time: 1, Core: -1, Aux: 17, Flags: FlagOnDemand},
	}
	for _, want := range cases {
		line := AppendJSON(nil, want)
		got, err := DecodeJSON(line)
		if err != nil {
			t.Fatalf("DecodeJSON(%s): %v", line, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n line %s\n got  %+v\n want %+v", line, got, want)
		}
	}
}

func TestJSONOmitsZeroFields(t *testing.T) {
	line := string(AppendJSON(nil, Event{Kind: KindGCEnd, Core: -1}))
	if line != `{"k":"gc_end"}` {
		t.Fatalf("minimal event encoded as %s", line)
	}
	if strings.Contains(line, "core") {
		t.Fatal("core -1 must be omitted")
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON([]byte(`{"k":"nope"}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := DecodeJSON([]byte(`not json`)); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := DecodeJSON([]byte(`{"k":"store","data":"xyz"}`)); err == nil {
		t.Fatal("bad hex accepted")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Kind: KindTxCommit, Time: 5, Core: 0, Tx: 1})
	s.Emit(Event{Kind: KindGCStart, Time: 9, Core: -1, Aux: 2})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"k":"tx_commit","t":5,"core":0,"tx":1}` + "\n" +
		`{"k":"gc_start","t":9,"aux":2}` + "\n"
	if buf.String() != want {
		t.Fatalf("JSONL output:\n%swant:\n%s", buf.String(), want)
	}
}

type failWriter struct{ err error }

func (w failWriter) Write(p []byte) (int, error) { return 0, w.err }

func TestJSONLSinkStickyError(t *testing.T) {
	wantErr := errors.New("disk full")
	s := NewJSONLSink(failWriter{err: wantErr})
	big := make([]byte, 128<<10) // force a flush mid-Emit
	s.Emit(Event{Kind: KindStore, Core: 0, Data: big})
	s.Emit(Event{Kind: KindTxCommit, Core: 0})
	if err := s.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush() = %v, want %v", err, wantErr)
	}
}

func TestRingSink(t *testing.T) {
	r := NewRingSink(3)
	data := []byte{1, 2, 3}
	r.Emit(Event{Kind: KindStore, Tx: 1, Data: data})
	data[0] = 99 // ring must have copied
	for tx := uint64(2); tx <= 5; tx++ {
		r.Emit(Event{Kind: KindTxCommit, Tx: tx})
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Tx != 3 || evs[2].Tx != 5 {
		t.Fatalf("ring kept %+v", evs)
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", r.Dropped())
	}

	small := NewRingSink(2)
	small.Emit(Event{Kind: KindStore, Tx: 1, Data: []byte{7}})
	if got := small.Events(); len(got) != 1 || got[0].Data[0] != 7 {
		t.Fatalf("unwrapped ring returned %+v", got)
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	c.Emit(Event{Kind: KindSliceWrite, Bytes: 256})
	c.Emit(Event{Kind: KindSliceWrite, Bytes: 256})
	c.Emit(Event{Kind: KindGCEnd, Bytes: 1024, Aux: 4})
	if c.N(KindSliceWrite) != 2 || c.BytesOf(KindSliceWrite) != 512 {
		t.Fatalf("slice tally n=%d bytes=%d", c.N(KindSliceWrite), c.BytesOf(KindSliceWrite))
	}
	counts := c.Counts()
	if len(counts) != 2 || counts[0].Kind != KindSliceWrite || counts[1].Kind != KindGCEnd {
		t.Fatalf("Counts() = %+v", counts)
	}
}

func TestEventTimeType(t *testing.T) {
	// Compile-time drift guard: Event.Time must stay a sim.Time so traces
	// share the simulator clock domain.
	var e Event
	e.Time = sim.Time(42)
	if e.Time != 42 {
		t.Fatal("unexpected time")
	}
}
