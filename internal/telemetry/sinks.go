package telemetry

// RingSink keeps the last N events in a bounded ring buffer — the
// "flight recorder" sink: cheap enough to leave attached, and inspected
// after the fact (post-crash, post-assertion) for the events leading up
// to the interesting moment. Store payloads are copied so events stay
// valid after Emit returns.
type RingSink struct {
	events  []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRingSink returns a ring holding the most recent capacity events.
func NewRingSink(capacity int) *RingSink {
	if capacity <= 0 {
		capacity = 1
	}
	return &RingSink{events: make([]Event, capacity)}
}

// Emit implements Sink.
func (r *RingSink) Emit(e Event) {
	if len(e.Data) > 0 {
		e.Data = append([]byte(nil), e.Data...)
	}
	if r.wrapped {
		r.dropped++
	}
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// Events returns the buffered events oldest-first.
func (r *RingSink) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dropped reports how many events were overwritten before being read.
func (r *RingSink) Dropped() int64 { return r.dropped }

// KindCount is one row of a CountingSink summary.
type KindCount struct {
	Kind  Kind  `json:"kind"`
	N     int64 `json:"n"`
	Bytes int64 `json:"bytes"`
}

// CountingSink tallies events per kind — number seen and bytes accounted.
// The harness attaches one per cell to print phase breakdowns alongside
// the figure grids without buffering the stream.
type CountingSink struct {
	n     [NumKinds + 1]int64
	bytes [NumKinds + 1]int64
}

// Emit implements Sink.
func (c *CountingSink) Emit(e Event) {
	if int(e.Kind) > NumKinds {
		return
	}
	c.n[e.Kind]++
	c.bytes[e.Kind] += e.Bytes
}

// N reports how many events of kind k were seen.
func (c *CountingSink) N(k Kind) int64 {
	if int(k) > NumKinds {
		return 0
	}
	return c.n[k]
}

// BytesOf reports the summed Bytes field of kind k.
func (c *CountingSink) BytesOf(k Kind) int64 {
	if int(k) > NumKinds {
		return 0
	}
	return c.bytes[k]
}

// Counts returns the non-zero tallies in Kind order.
func (c *CountingSink) Counts() []KindCount {
	var out []KindCount
	for k := 1; k <= NumKinds; k++ {
		if c.n[k] != 0 || c.bytes[k] != 0 {
			out = append(out, KindCount{Kind: Kind(k), N: c.n[k], Bytes: c.bytes[k]})
		}
	}
	return out
}
