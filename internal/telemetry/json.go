// JSONL encoding of events. The encoder is hand-rolled rather than
// reflective so the field order and formatting are deterministic: golden
// trace tests and the cross-worker-count determinism test compare traces
// byte for byte.
package telemetry

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

// AppendJSON appends the one-line JSON encoding of e (without trailing
// newline) to dst and returns the extended slice. Zero-valued fields are
// omitted; field order is fixed: k, t, core, tx, addr, bytes, aux, flags,
// data.
func AppendJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"k":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, '"')
	if e.Time != 0 {
		dst = append(dst, `,"t":`...)
		dst = strconv.AppendInt(dst, int64(e.Time), 10)
	}
	if e.Core >= 0 {
		dst = append(dst, `,"core":`...)
		dst = strconv.AppendInt(dst, int64(e.Core), 10)
	}
	if e.Tx != 0 {
		dst = append(dst, `,"tx":`...)
		dst = strconv.AppendUint(dst, e.Tx, 10)
	}
	if e.Addr != 0 {
		dst = append(dst, `,"addr":`...)
		dst = strconv.AppendUint(dst, uint64(e.Addr), 10)
	}
	if e.Bytes != 0 {
		dst = append(dst, `,"bytes":`...)
		dst = strconv.AppendInt(dst, e.Bytes, 10)
	}
	if e.Aux != 0 {
		dst = append(dst, `,"aux":`...)
		dst = strconv.AppendInt(dst, e.Aux, 10)
	}
	if e.Flags != 0 {
		dst = append(dst, `,"flags":`...)
		dst = strconv.AppendUint(dst, uint64(e.Flags), 10)
	}
	if len(e.Data) > 0 {
		dst = append(dst, `,"data":"`...)
		dst = hex.AppendEncode(dst, e.Data)
		dst = append(dst, '"')
	}
	dst = append(dst, '}')
	return dst
}

// jsonEvent mirrors the wire format for decoding. Core is a pointer to
// distinguish "core 0" from "not thread-scoped".
type jsonEvent struct {
	K     string `json:"k"`
	T     int64  `json:"t"`
	Core  *int16 `json:"core"`
	Tx    uint64 `json:"tx"`
	Addr  uint64 `json:"addr"`
	Bytes int64  `json:"bytes"`
	Aux   int64  `json:"aux"`
	Flags uint8  `json:"flags"`
	Data  string `json:"data"`
}

// DecodeJSON parses one JSONL line produced by AppendJSON.
func DecodeJSON(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, err
	}
	k, ok := KindByName(je.K)
	if !ok {
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", je.K)
	}
	e := Event{
		Time:  sim.Time(je.T),
		Addr:  mem.PAddr(je.Addr),
		Tx:    je.Tx,
		Bytes: je.Bytes,
		Aux:   je.Aux,
		Core:  -1,
		Flags: je.Flags,
		Kind:  k,
	}
	if je.Core != nil {
		e.Core = *je.Core
	}
	if je.Data != "" {
		data, err := hex.DecodeString(je.Data)
		if err != nil {
			return Event{}, fmt.Errorf("telemetry: bad data field: %v", err)
		}
		e.Data = data
	}
	return e, nil
}

// JSONLSink writes one JSON object per event, newline-separated — the
// format behind `-trace out.jsonl` and `hooptop`. Errors are sticky: the
// first write failure is remembered and reported by Flush, and later
// events are dropped, so emission sites never see I/O errors.
type JSONLSink struct {
	w   *bufio.Writer
	buf []byte
	err error
}

// NewJSONLSink wraps w in a buffered JSONL encoder.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSON(s.buf[:0], e)
	s.buf = append(s.buf, '\n')
	if _, err := s.w.Write(s.buf); err != nil {
		s.err = err
	}
}

// Flush drains buffered output and returns the first error seen.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}
