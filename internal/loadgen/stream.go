package loadgen

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/sim"
)

// ArrivalKind selects the arrival process of a stream.
type ArrivalKind int

const (
	// ArrivalPoisson is a constant-rate Poisson process.
	ArrivalPoisson ArrivalKind = iota
	// ArrivalBursty is the two-state modulated Poisson process: Rate
	// outside bursts, Rate*BurstFactor inside.
	ArrivalBursty
)

// ParseArrivalKind maps a CLI spelling to an ArrivalKind.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch s {
	case "poisson":
		return ArrivalPoisson, nil
	case "bursty":
		return ArrivalBursty, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival process %q (poisson, bursty)", s)
}

// String names the kind for CLI output.
func (k ArrivalKind) String() string {
	if k == ArrivalBursty {
		return "bursty"
	}
	return "poisson"
}

// StreamConfig describes one open-loop request stream (one per shard in
// hoopd's soak, or one fleet-wide stream in ring-routed mode).
type StreamConfig struct {
	// Seed fixes the whole stream; equal seeds give byte-identical
	// streams.
	Seed uint64
	// Keys is the keyspace the stream draws from ([0, Keys)).
	Keys uint64
	// Rate is the offered arrival rate in requests/second.
	Rate float64
	// Arrivals selects the arrival process.
	Arrivals ArrivalKind
	// BurstFactor scales Rate inside bursts (ArrivalBursty; default 8).
	BurstFactor float64
	// BurstLen and BurstGap are the mean burst length and gap
	// (ArrivalBursty; defaults 1ms / 4ms).
	BurstLen, BurstGap sim.Duration
	// Tenants is the client mix; empty means a single update-heavy
	// tenant.
	Tenants []Tenant
	// Horizon ends the stream: no arrivals at or after it.
	Horizon sim.Duration
	// SeqBase offsets the stream's sequence numbers (distinct per shard
	// so fleet-wide traces carry unique request ids).
	SeqBase uint64
}

// deriveSeed mixes a sub-generator index into a stream seed (splitmix64
// step, mirroring engine.ShardSeed's construction).
func deriveSeed(seed, idx uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15*idx
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Stream generates one deterministic open-loop request sequence. Not safe
// for concurrent use; each producer goroutine owns one Stream.
type Stream struct {
	arr     Arrivals
	pick    *sim.Rand // tenant + op selection and value seeds
	tenants []tenantState
	wsum    float64
	now     sim.Time
	horizon sim.Time
	seq     uint64
	count   uint64
}

// NewStream builds the stream; all randomness derives from cfg.Seed.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Keys == 0 {
		return nil, fmt.Errorf("loadgen: StreamConfig.Keys must be positive")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: StreamConfig.Rate must be positive")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("loadgen: StreamConfig.Horizon must be positive")
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []Tenant{TenantUpdateHeavy}
	}
	bound, err := bindTenants(tenants, cfg.Keys, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var wsum float64
	for _, t := range bound {
		wsum += t.Weight
	}
	arrRng := sim.NewRand(deriveSeed(cfg.Seed, 0x41525256)) // "ARRV"
	var arr Arrivals
	switch cfg.Arrivals {
	case ArrivalPoisson:
		arr = NewPoisson(arrRng, cfg.Rate)
	case ArrivalBursty:
		factor := cfg.BurstFactor
		if factor <= 0 {
			factor = 8
		}
		blen, bgap := cfg.BurstLen, cfg.BurstGap
		if blen <= 0 {
			blen = sim.Millisecond
		}
		if bgap <= 0 {
			bgap = 4 * sim.Millisecond
		}
		arr = NewBursty(arrRng, cfg.Rate, cfg.Rate*factor, blen, bgap)
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival kind %d", cfg.Arrivals)
	}
	return &Stream{
		arr:     arr,
		pick:    sim.NewRand(deriveSeed(cfg.Seed, 0x5049434B)), // "PICK"
		tenants: bound,
		wsum:    wsum,
		horizon: cfg.Horizon,
		seq:     cfg.SeqBase,
	}, nil
}

// Next returns the next request, or ok=false once the horizon is reached.
// The returned request carries its open-loop arrival time; Seq increments
// from SeqBase in arrival order.
func (s *Stream) Next() (req engine.ShardRequest, ok bool) {
	s.now += s.arr.Next()
	if s.now >= s.horizon {
		return engine.ShardRequest{}, false
	}
	w := s.pick.Float64() * s.wsum
	ti := 0
	for ; ti < len(s.tenants)-1; ti++ {
		if w < s.tenants[ti].Weight {
			break
		}
		w -= s.tenants[ti].Weight
	}
	t := &s.tenants[ti]
	s.seq++
	s.count++
	return engine.ShardRequest{
		Arrival: s.now,
		Seq:     s.seq,
		Kind:    t.Mix.pick(s.pick.Float64()),
		Key:     t.keys.Next(),
		Aux:     s.pick.Uint64(),
	}, true
}

// Generated reports how many requests the stream has produced.
func (s *Stream) Generated() uint64 { return s.count }
