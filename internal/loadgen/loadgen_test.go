package loadgen

import (
	"math"
	"testing"

	"hoop/internal/service"
	"hoop/internal/sim"
)

func TestPoissonMeanGap(t *testing.T) {
	const rate = 1e6 // 1M/s → mean gap 1us
	p := NewPoisson(sim.NewRand(1), rate)
	const n = 200000
	var sum sim.Duration
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 1 {
			t.Fatalf("gap %v < 1ps", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	want := float64(sim.Second) / rate
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean gap %.0fps, want %.0fps ±2%%", mean, want)
	}
}

func TestBurstyMeanRate(t *testing.T) {
	// Equal dwell times at rates r and 8r → long-run mean 4.5r.
	b := NewBursty(sim.NewRand(2), 1e5, 8e5, sim.Millisecond, sim.Millisecond)
	if got, want := b.MeanRate(), 4.5e5; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MeanRate = %.0f, want %.0f", got, want)
	}

	// Empirical rate over many phase alternations should approach it.
	var elapsed sim.Duration
	n := 0
	for elapsed < 2*sim.Second {
		elapsed += b.Next()
		n++
	}
	got := float64(n) / elapsed.Seconds()
	if math.Abs(got-4.5e5)/4.5e5 > 0.05 {
		t.Errorf("empirical rate %.0f/s, want 450000/s ±5%%", got)
	}
}

func TestBurstyRegimes(t *testing.T) {
	// With long dwells relative to gaps, most consecutive gaps come from a
	// single phase, so the gap distribution is visibly bimodal: many gaps
	// near the burst mean, many near the base mean.
	b := NewBursty(sim.NewRand(3), 1e5, 1e7, 10*sim.Millisecond, 10*sim.Millisecond)
	var shortGaps, longGaps int
	for i := 0; i < 100000; i++ {
		g := b.Next()
		if g < 1000*sim.Picosecond*1000 { // < 1us: burst-phase territory (mean 100ns)
			shortGaps++
		} else if g > 2*sim.Microsecond {
			longGaps++
		}
	}
	if shortGaps == 0 || longGaps == 0 {
		t.Errorf("gap distribution not bimodal: %d short, %d long", shortGaps, longGaps)
	}
	// Bursts are 100x faster, equal dwell → ~99% of arrivals in-burst.
	if frac := float64(shortGaps) / 100000; frac < 0.8 {
		t.Errorf("burst-phase arrivals = %.2f of total, want > 0.8", frac)
	}
}

func TestUniformKeysRange(t *testing.T) {
	u := NewUniformKeys(sim.NewRand(4), 97)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := u.Next()
		if k >= 97 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 97 {
		t.Errorf("uniform draw covered %d/97 keys", len(seen))
	}
}

func TestZipfKeysSkew(t *testing.T) {
	const n = 10000
	z := NewZipfKeys(sim.NewRand(5), n, 0.99)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Next()
		if k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	// Under theta=0.99 the hottest key draws several percent of traffic;
	// uniform would give 0.01%.
	if frac := float64(hottest) / draws; frac < 0.01 {
		t.Errorf("hottest key has %.4f of traffic — no Zipfian skew", frac)
	}
}

func TestStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{
		Seed:    99,
		Keys:    4096,
		Rate:    1e6,
		Tenants: Mixes["mixed"],
		Horizon: 5 * sim.Millisecond,
	}
	gen := func(c StreamConfig) []uint64 {
		s, err := NewStream(c)
		if err != nil {
			t.Fatal(err)
		}
		var sig []uint64
		for {
			req, ok := s.Next()
			if !ok {
				break
			}
			sig = append(sig, uint64(req.Arrival), uint64(req.Kind), req.Key, req.Aux, req.Seq)
		}
		return sig
	}
	a, b := gen(cfg), gen(cfg)
	if len(a) == 0 {
		t.Fatal("stream produced nothing")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams with equal seeds diverge at word %d", i)
		}
	}
	cfg.Seed = 100
	c := gen(cfg)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("streams with different seeds are identical")
	}
}

func TestStreamHorizonAndSeq(t *testing.T) {
	cfg := StreamConfig{Seed: 7, Keys: 128, Rate: 1e6, Horizon: sim.Millisecond, SeqBase: 1 << 48}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n uint64
	var last sim.Time
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		n++
		if req.Arrival >= sim.Time(cfg.Horizon) {
			t.Fatalf("arrival %v at/after horizon", req.Arrival)
		}
		if req.Arrival <= last && n > 1 {
			t.Fatalf("arrivals not strictly increasing: %v after %v", req.Arrival, last)
		}
		last = req.Arrival
		if req.Seq != cfg.SeqBase+n {
			t.Fatalf("seq %d, want %d", req.Seq, cfg.SeqBase+n)
		}
	}
	if s.Generated() != n {
		t.Fatalf("Generated() = %d, want %d", s.Generated(), n)
	}
	// ~1000 expected at 1M/s over 1ms.
	if n < 800 || n > 1200 {
		t.Errorf("generated %d requests, want ≈1000", n)
	}
}

func TestStreamErrors(t *testing.T) {
	bad := []StreamConfig{
		{Keys: 0, Rate: 1, Horizon: 1},
		{Keys: 1, Rate: 0, Horizon: 1},
		{Keys: 1, Rate: 1, Horizon: 0},
		{Keys: 1, Rate: 1, Horizon: 1, Tenants: []Tenant{{Name: "w0", Weight: 0, Mix: OpMix{Get: 1}}}},
		{Keys: 1, Rate: 1, Horizon: 1, Tenants: []Tenant{{Name: "empty", Weight: 1}}},
	}
	for i, cfg := range bad {
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("config %d: NewStream succeeded, want error", i)
		}
	}
}

func TestMixProportions(t *testing.T) {
	cfg := StreamConfig{
		Seed:    11,
		Keys:    1024,
		Rate:    1e7,
		Tenants: []Tenant{{Name: "even", Weight: 1, Mix: OpMix{Get: 0.5, Update: 0.5}}},
		Horizon: 10 * sim.Millisecond,
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gets, updates, other int
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		switch req.Kind {
		case service.OpGet:
			gets++
		case service.OpUpdate:
			updates++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("%d requests outside the 50/50 get/update mix", other)
	}
	total := gets + updates
	if frac := float64(gets) / float64(total); frac < 0.47 || frac > 0.53 {
		t.Errorf("gets = %.3f of stream, want 0.5 ±0.03 (n=%d)", frac, total)
	}
}

func TestMixedTenantsProduceAllOps(t *testing.T) {
	cfg := StreamConfig{
		Seed:    13,
		Keys:    1024,
		Rate:    1e7,
		Tenants: Mixes["mixed"],
		Horizon: 10 * sim.Millisecond,
	}
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	for {
		req, ok := s.Next()
		if !ok {
			break
		}
		counts[req.Kind]++
	}
	if counts[service.OpGet] == 0 || counts[service.OpPut] == 0 || counts[service.OpUpdate] == 0 {
		t.Errorf("mixed tenants op counts = %v, want gets/puts/updates all present", counts)
	}
}

// TestSaturationSweep drives the sweeper with a synthetic system of
// capacity 1000/s: goodput tracks offered load up to the knee, then
// flattens while shed climbs. The sweep must stop past the knee and report
// the best-goodput rung.
func TestSaturationSweep(t *testing.T) {
	const capacity = 1000.0
	var rungs []float64
	res := SaturationSweep(250, 2, 10, func(rate float64) SweepPoint {
		rungs = append(rungs, rate)
		offered := int64(rate)
		executed := offered
		if rate > capacity {
			executed = int64(capacity)
		}
		return SweepPoint{
			Offered:  offered,
			Executed: executed,
			Shed:     offered - executed,
			Span:     sim.Second,
		}
	})
	if res.Saturation.Goodput() != capacity {
		t.Errorf("saturation goodput = %.0f, want %.0f", res.Saturation.Goodput(), capacity)
	}
	// 250, 500, 1000, 2000 (shed 50%), stop at 4000 (shed > 0.5 triggers
	// after recording) — it must not run all 10 rungs.
	if len(rungs) >= 10 {
		t.Errorf("sweep ran %d rungs without stopping", len(rungs))
	}
	if last := rungs[len(rungs)-1]; last <= capacity {
		t.Errorf("sweep stopped at %.0f/s, before the knee", last)
	}
}

func TestSweepPointAccessors(t *testing.T) {
	p := SweepPoint{Offered: 100, Executed: 80, Shed: 20, Span: sim.Second / 2}
	if got := p.Goodput(); got != 160 {
		t.Errorf("Goodput = %.0f, want 160", got)
	}
	if got := p.ShedFrac(); got != 0.2 {
		t.Errorf("ShedFrac = %.2f, want 0.2", got)
	}
	var zero SweepPoint
	if zero.Goodput() != 0 || zero.ShedFrac() != 0 {
		t.Error("zero SweepPoint accessors must not divide by zero")
	}
}
