package loadgen

import "hoop/internal/sim"

// SweepPoint is one measured rung of a saturation sweep.
type SweepPoint struct {
	// Rate is the offered per-shard arrival rate (requests/second).
	Rate float64
	// Offered, Executed, and Shed count requests fleet-wide.
	Offered, Executed, Shed int64
	// Span is the fleet's simulated wall-clock.
	Span sim.Duration
	// P99 is the fleet-wide p99 sojourn (arrival to completion).
	P99 sim.Duration
}

// Goodput reports committed requests per simulated second.
func (p SweepPoint) Goodput() float64 {
	if p.Span <= 0 {
		return 0
	}
	return float64(p.Executed) / p.Span.Seconds()
}

// ShedFrac reports the fraction of offered requests dropped.
func (p SweepPoint) ShedFrac() float64 {
	if p.Offered == 0 {
		return 0
	}
	return float64(p.Shed) / float64(p.Offered)
}

// SweepResult is a completed saturation sweep.
type SweepResult struct {
	Points []SweepPoint
	// Saturation is the point with the highest goodput — the knee of the
	// offered-load/goodput curve.
	Saturation SweepPoint
}

// SaturationSweep ramps offered load geometrically (startRate, then
// ×factor per step, up to maxSteps) and calls run at each rung. It stops
// early once the system is past saturation: goodput fell below 90% of the
// best rung seen, or more than half the offered load was shed. The
// returned Saturation is the best-goodput rung.
func SaturationSweep(startRate, factor float64, maxSteps int, run func(rate float64) SweepPoint) SweepResult {
	if startRate <= 0 || factor <= 1 || maxSteps < 1 {
		panic("loadgen: sweep needs startRate > 0, factor > 1, maxSteps >= 1")
	}
	var res SweepResult
	rate := startRate
	for step := 0; step < maxSteps; step++ {
		p := run(rate)
		p.Rate = rate
		res.Points = append(res.Points, p)
		if p.Goodput() > res.Saturation.Goodput() {
			res.Saturation = p
		} else if p.Goodput() < 0.9*res.Saturation.Goodput() {
			break // goodput collapsed — past the knee
		}
		if p.ShedFrac() > 0.5 {
			break // admission control is carrying the load, not the shards
		}
		rate *= factor
	}
	return res
}
