// Package loadgen generates open-loop request load for the service tier:
// arrival processes (Poisson and bursty), key-popularity distributions
// (Zipfian hot keys, uniform), multi-tenant operation mixes, a per-shard
// request Stream, and a saturation-sweep driver that ramps offered load
// until goodput collapses.
//
// Everything is deterministic given its seed: an open-loop schedule is
// simulated-time data (each request carries its arrival timestamp), not
// real-time behaviour, so the same seed produces the same byte-for-byte
// request stream however fast the shards drain it.
package loadgen

import (
	"math"

	"hoop/internal/sim"
)

// Arrivals produces interarrival gaps of an open-loop arrival process.
type Arrivals interface {
	// Next returns the simulated gap to the next arrival (>= 1 ps: two
	// requests never share an arrival instant, keeping per-shard FIFO
	// order unambiguous).
	Next() sim.Duration
}

// expGap draws an exponential interarrival gap with the given mean (ps).
func expGap(rng *sim.Rand, meanPS float64) sim.Duration {
	// 1-Float64() is in (0, 1], keeping Log finite.
	g := sim.Duration(-math.Log(1-rng.Float64()) * meanPS)
	if g < 1 {
		g = 1
	}
	return g
}

// Poisson is a constant-rate Poisson process: exponential interarrival
// gaps with mean 1/rate.
type Poisson struct {
	rng  *sim.Rand
	mean float64 // mean gap in picoseconds
}

// NewPoisson returns a Poisson arrival process at rate requests/second.
func NewPoisson(rng *sim.Rand, rate float64) *Poisson {
	if rate <= 0 {
		panic("loadgen: Poisson rate must be positive")
	}
	return &Poisson{rng: rng, mean: float64(sim.Second) / rate}
}

// Next implements Arrivals.
func (p *Poisson) Next() sim.Duration { return expGap(p.rng, p.mean) }

// Bursty is a two-state Markov-modulated Poisson process: it alternates
// between a base phase and a burst phase, each with exponentially
// distributed dwell time, drawing Poisson arrivals at the phase's rate.
// Because the exponential is memoryless, redrawing the gap after a phase
// switch is exact, not an approximation.
type Bursty struct {
	rng        *sim.Rand
	baseMean   float64 // mean gap in base phase (ps)
	burstMean  float64 // mean gap in burst phase (ps)
	dwellBase  float64 // mean base-phase length (ps)
	dwellBurst float64 // mean burst-phase length (ps)

	inBurst   bool
	phaseLeft sim.Duration
}

// NewBursty returns a bursty process: baseRate requests/second outside
// bursts, burstRate inside, with mean burst length burstLen and mean gap
// between bursts burstGap.
func NewBursty(rng *sim.Rand, baseRate, burstRate float64, burstLen, burstGap sim.Duration) *Bursty {
	if baseRate <= 0 || burstRate <= 0 {
		panic("loadgen: Bursty rates must be positive")
	}
	if burstLen <= 0 || burstGap <= 0 {
		panic("loadgen: Bursty phase lengths must be positive")
	}
	b := &Bursty{
		rng:        rng,
		baseMean:   float64(sim.Second) / baseRate,
		burstMean:  float64(sim.Second) / burstRate,
		dwellBase:  float64(burstGap),
		dwellBurst: float64(burstLen),
	}
	b.phaseLeft = expGap(rng, b.dwellBase)
	return b
}

// MeanRate reports the long-run average rate (requests/second) of the
// process, for offered-load accounting.
func (b *Bursty) MeanRate() float64 {
	pBurst := b.dwellBurst / (b.dwellBurst + b.dwellBase)
	return (pBurst/b.burstMean + (1-pBurst)/b.baseMean) * float64(sim.Second)
}

// Next implements Arrivals.
func (b *Bursty) Next() sim.Duration {
	var total sim.Duration
	for {
		mean := b.baseMean
		if b.inBurst {
			mean = b.burstMean
		}
		gap := expGap(b.rng, mean)
		if gap < b.phaseLeft {
			b.phaseLeft -= gap
			total += gap
			if total < 1 {
				total = 1
			}
			return total
		}
		// The phase ends before the drawn arrival: walk to the boundary,
		// switch phases, redraw (memorylessness makes this exact).
		total += b.phaseLeft
		b.inBurst = !b.inBurst
		dwell := b.dwellBase
		if b.inBurst {
			dwell = b.dwellBurst
		}
		b.phaseLeft = expGap(b.rng, dwell)
	}
}
