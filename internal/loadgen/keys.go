package loadgen

import (
	"hoop/internal/sim"
	"hoop/internal/workload"
)

// KeyDist draws keys from a popularity distribution over [0, n).
type KeyDist interface {
	Next() uint64
}

// UniformKeys draws uniformly over [0, n).
type UniformKeys struct {
	rng *sim.Rand
	n   uint64
}

// NewUniformKeys returns a uniform distribution over [0, n).
func NewUniformKeys(rng *sim.Rand, n uint64) *UniformKeys {
	if n == 0 {
		panic("loadgen: uniform keys over empty range")
	}
	return &UniformKeys{rng: rng, n: n}
}

// Next implements KeyDist.
func (u *UniformKeys) Next() uint64 { return u.rng.Uint64() % u.n }

// ZipfKeys draws Zipfian-skewed keys: rank 0 is the hottest. It reuses the
// workload package's Gray et al. generator (the YCSB Zipfian), scattering
// ranks over the keyspace with a fixed bijection so the hot set is not a
// contiguous prefix — hot keys land on different shards under the ring.
type ZipfKeys struct {
	z *workload.Zipf
	n uint64
}

// NewZipfKeys returns a Zipfian distribution over [0, n) with skew theta
// (0.99 is the YCSB default; higher is hotter).
func NewZipfKeys(rng *sim.Rand, n uint64, theta float64) *ZipfKeys {
	return &ZipfKeys{z: workload.NewZipf(rng, n, theta), n: n}
}

// Next implements KeyDist.
func (z *ZipfKeys) Next() uint64 {
	// splitmix64 scatter, folded back into range. The fold loses perfect
	// bijectivity but keeps the rank→key map deterministic and spread.
	r := z.z.Next()
	x := r ^ 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return (x % z.n)
}
