package loadgen

import (
	"fmt"
	"strings"

	"hoop/internal/service"
	"hoop/internal/sim"
)

// OpMix is a tenant's operation mix as fractions summing to 1: gets, puts
// (inserts/overwrites), single-word updates, deletes.
type OpMix struct {
	Get, Put, Update, Delete float64
}

func (m OpMix) sum() float64 { return m.Get + m.Put + m.Update + m.Delete }

// pick maps a uniform u in [0,1) to an opcode.
func (m OpMix) pick(u float64) uint8 {
	u *= m.sum()
	switch {
	case u < m.Get:
		return service.OpGet
	case u < m.Get+m.Put:
		return service.OpPut
	case u < m.Get+m.Put+m.Update:
		return service.OpUpdate
	default:
		return service.OpDelete
	}
}

// Tenant is one client population sharing the keyspace: a weight (its
// share of the arrival stream), an operation mix, and a key-popularity
// skew (theta 0 = uniform).
type Tenant struct {
	Name   string
	Weight float64
	Mix    OpMix
	Theta  float64
}

// The stock tenants, YCSB-flavoured.
var (
	// TenantReadHeavy is YCSB-B-shaped: 95% reads, 5% updates, hot-key
	// skewed.
	TenantReadHeavy = Tenant{Name: "read-heavy", Weight: 1, Mix: OpMix{Get: 0.95, Update: 0.05}, Theta: 0.99}
	// TenantUpdateHeavy is YCSB-A-shaped: 50% reads, 50% updates.
	TenantUpdateHeavy = Tenant{Name: "update-heavy", Weight: 1, Mix: OpMix{Get: 0.5, Update: 0.5}, Theta: 0.99}
	// TenantIngest writes whole values over the full keyspace, uniformly —
	// a bulk loader sharing the fleet with the interactive tenants.
	TenantIngest = Tenant{Name: "ingest", Weight: 1, Mix: OpMix{Put: 1}, Theta: 0}
)

// Mixes is the named multi-tenant mix catalogue for the hoopd CLI.
var Mixes = map[string][]Tenant{
	"update-heavy": {TenantUpdateHeavy},
	"read-heavy":   {TenantReadHeavy},
	"ingest":       {TenantIngest},
	// mixed: 60% interactive reads, 30% read-modify-write, 10% bulk
	// ingest — three tenant populations multiplexed onto one fleet.
	"mixed": {
		withWeight(TenantReadHeavy, 0.6),
		withWeight(TenantUpdateHeavy, 0.3),
		withWeight(TenantIngest, 0.1),
	},
}

func withWeight(t Tenant, w float64) Tenant {
	t.Weight = w
	return t
}

// MixNames lists the catalogue for help text, sorted lexically.
func MixNames() string {
	names := make([]string, 0, len(Mixes))
	for n := range Mixes {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

// tenantState is a Tenant bound to its per-stream key distribution.
type tenantState struct {
	Tenant
	keys KeyDist
}

// bindTenants validates the mix and attaches one seeded KeyDist per
// tenant. Each tenant gets an independent generator so its key stream
// does not depend on the other tenants' draw order.
func bindTenants(tenants []Tenant, keys uint64, seed uint64) ([]tenantState, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: empty tenant mix")
	}
	out := make([]tenantState, len(tenants))
	for i, t := range tenants {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: tenant %q weight must be positive", t.Name)
		}
		if t.Mix.sum() <= 0 {
			return nil, fmt.Errorf("loadgen: tenant %q has an empty op mix", t.Name)
		}
		rng := sim.NewRand(deriveSeed(seed, uint64(i)+1))
		ts := tenantState{Tenant: t}
		if t.Theta > 0 {
			ts.keys = NewZipfKeys(rng, keys, t.Theta)
		} else {
			ts.keys = NewUniformKeys(rng, keys)
		}
		out[i] = ts
	}
	return out, nil
}
