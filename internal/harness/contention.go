package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hoop/internal/cc"
	"hoop/internal/engine"
	"hoop/internal/workload"
)

// Contention-figure geometry: every cell runs the shared-pool Zipfian
// read-modify-write workload (workload.Contention) through the cc layer,
// so transactions genuinely conflict and the policy (OCC validation or
// wound-wait locking) arbitrates. The sweep crosses Zipfian skew with
// thread count for every scheme under both policies: skew concentrates
// traffic on fewer lines, threads add requesters per line, and the abort
// path's durable cost — HOOP drops SRAM slices for free while undo logging
// replays images home — separates the schemes.
var (
	contentionThetas  = []float64{0.5, 0.9, 1.2}
	contentionThreads = []int{2, 4, 8}
)

const (
	contentionKeys     = 256 // shared pool words
	contentionOpsPerTx = 4   // read-modify-write pairs per transaction
)

// contentionTxs reports committed transactions per contention cell.
func contentionTxs(o Options) int {
	if o.Quick {
		return 800
	}
	return 6000
}

// contentionCell is one (scheme × policy × theta × threads) job. Like
// Cell, each builds a private system, so cells run in any order or
// concurrently with bit-identical results.
type contentionCell struct {
	scheme  string
	policy  cc.Policy
	theta   float64
	threads int
	txs     int
	seed    uint64
}

// runContentionCell executes one contention cell and returns its window.
func runContentionCell(c contentionCell) (Metrics, error) {
	cfg := engine.DefaultConfig(c.scheme)
	cfg.Threads = c.threads
	if c.threads > cfg.Cores {
		cfg.Cores = c.threads
	}
	cfg.Abortable = true
	sys, err := engine.New(cfg)
	if err != nil {
		return Metrics{}, err
	}
	r, err := cc.New(sys, cc.Config{Policy: c.policy})
	if err != nil {
		return Metrics{}, err
	}
	srcs := workload.Contention{
		Keys:     contentionKeys,
		OpsPerTx: contentionOpsPerTx,
		Theta:    c.theta,
	}.Sources(c.threads, c.seed)
	quiesce(sys)
	sys.ResetMemoryQueues()
	sys.SyncClocks()
	before := takeSnapshot(sys)
	r.Run(srcs, c.txs)
	quiesce(sys)
	return window(before, takeSnapshot(sys)), nil
}

// runContentionCells executes the cells on a bounded worker pool,
// returning metrics in input order (the same pool discipline as RunCells:
// seeded, independent cells make results worker-count-invariant).
func runContentionCells(cells []contentionCell, workers int) ([]Metrics, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]Metrics, len(cells))
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i], errs[i] = runContentionCell(cells[i])
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("harness: contention %s/%s theta=%.1f threads=%d: %w",
				c.scheme, c.policy, c.theta, c.threads, err)
		}
	}
	return results, nil
}

// runContentionCellsCached is runContentionCells behind the run's cell
// cache (kindContention entries): memoized cells skip execution, misses
// run on the normal pool and are stored afterwards. Results are
// byte-identical with and without the cache.
func runContentionCellsCached(cells []contentionCell, opts Options) ([]Metrics, error) {
	cache, err := opts.ensureCache()
	if err != nil {
		return nil, err
	}
	if cache == nil {
		return runContentionCells(cells, opts.workers())
	}
	mets := make([]Metrics, len(cells))
	keys := make([]string, len(cells))
	var batch []contentionCell
	var batchIdx []int
	for i, c := range cells {
		if key, ok := cache.contentionKey(c); ok {
			keys[i] = key
			if met, hit := cache.loadMetrics(key, kindContention); hit {
				mets[i] = met
				continue
			}
		}
		batch = append(batch, c)
		batchIdx = append(batchIdx, i)
	}
	res, err := runContentionCells(batch, opts.workers())
	if err != nil {
		return nil, err
	}
	for k, i := range batchIdx {
		mets[i] = res[k]
		if keys[i] != "" {
			if err := cache.storeMetrics(keys[i], kindContention, cells[i].scheme, res[k]); err != nil {
				return nil, err
			}
		}
	}
	return mets, nil
}

// contentionColName renders one sweep point.
func contentionColName(theta float64, threads int) string {
	return fmt.Sprintf("z%.1f/t%d", theta, threads)
}

// ContentionFigure sweeps Zipfian skew × thread count for every scheme
// under both concurrency-control policies and returns the throughput grid
// (Ktx/s) and the abort-rate grid (% of transaction attempts aborted).
func ContentionFigure(opts Options) (*Grid, *Grid, error) {
	var rows []string
	var cells []contentionCell
	txs := contentionTxs(opts)
	for _, scheme := range engine.AllSchemes {
		for _, pol := range cc.Policies {
			rows = append(rows, scheme+"/"+string(pol))
			for _, theta := range contentionThetas {
				for _, n := range contentionThreads {
					cells = append(cells, contentionCell{
						scheme:  scheme,
						policy:  pol,
						theta:   theta,
						threads: n,
						txs:     txs,
						seed:    opts.Seed,
					})
				}
			}
		}
	}
	metrics, err := runContentionCellsCached(cells, opts)
	if err != nil {
		return nil, nil, err
	}
	var cols []string
	for _, theta := range contentionThetas {
		for _, n := range contentionThreads {
			cols = append(cols, contentionColName(theta, n))
		}
	}
	tput := &Grid{
		Title:   "Contention sweep: throughput (Ktx/s) vs Zipfian theta (z) and threads (t)",
		RowName: "Scheme/Policy",
		Rows:    rows,
		Cols:    cols,
		Format:  "%.1f",
	}
	aborts := &Grid{
		Title:   "Contention sweep: abort rate (% of tx attempts) vs Zipfian theta (z) and threads (t)",
		RowName: "Scheme/Policy",
		Rows:    rows,
		Cols:    cols,
		Format:  "%.2f",
	}
	k := 0
	for range rows {
		tr := make([]float64, len(cols))
		ar := make([]float64, len(cols))
		for j := range cols {
			m := metrics[k]
			k++
			tr[j] = m.Throughput() / 1e3
			ar[j] = m.AbortRate() * 100
		}
		tput.Cells = append(tput.Cells, tr)
		aborts.Cells = append(aborts.Cells, ar)
	}
	return tput, aborts, nil
}
