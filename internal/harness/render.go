package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// JSON renders the grid as a machine-readable object so downstream
// plotting scripts can regenerate the paper's figures graphically.
func (g *Grid) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Title   string      `json:"title"`
		RowName string      `json:"row_name"`
		Rows    []string    `json:"rows"`
		Cols    []string    `json:"cols"`
		Cells   [][]float64 `json:"cells"`
	}{g.Title, g.RowName, g.Rows, g.Cols, g.Cells}, "", "  ")
}

// GridFromJSON parses a grid previously produced by JSON.
func GridFromJSON(data []byte) (*Grid, error) {
	var v struct {
		Title   string      `json:"title"`
		RowName string      `json:"row_name"`
		Rows    []string    `json:"rows"`
		Cols    []string    `json:"cols"`
		Cells   [][]float64 `json:"cells"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("harness: bad grid JSON: %w", err)
	}
	if len(v.Cells) != len(v.Rows) {
		return nil, fmt.Errorf("harness: grid JSON has %d rows but %d cell rows", len(v.Rows), len(v.Cells))
	}
	for i, row := range v.Cells {
		if len(row) != len(v.Cols) {
			return nil, fmt.Errorf("harness: grid JSON row %d has %d cells, want %d", i, len(row), len(v.Cols))
		}
	}
	return &Grid{Title: v.Title, RowName: v.RowName, Rows: v.Rows, Cols: v.Cols, Cells: v.Cells}, nil
}

// RenderBars draws the grid as grouped horizontal ASCII bars (one group
// per row), scaled to the grid's maximum — a terminal-friendly stand-in
// for the paper's bar figures.
func (g *Grid) RenderBars(w io.Writer) {
	const width = 46
	max := 0.0
	for _, row := range g.Cells {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		fmt.Fprintln(w, "(no positive values to chart)")
		return
	}
	labelW := 0
	for _, c := range g.Cols {
		if len(c) > labelW {
			labelW = len(c)
		}
	}
	fmt.Fprintf(w, "%s\n", g.Title)
	for i, r := range g.Rows {
		fmt.Fprintf(w, "%s\n", r)
		for j, c := range g.Cols {
			v := g.Cells[i][j]
			n := int(v / max * width)
			if n < 0 {
				n = 0
			}
			bar := strings.Repeat("#", n)
			fmt.Fprintf(w, "  %-*s |%-*s %.2f\n", labelW, c, width, bar, v)
		}
	}
}
