package harness

import (
	"strings"
	"testing"

	"hoop/internal/workload"
)

func quickOpts() Options { return Options{Quick: true, Seed: 1} }

func TestTableIVReductionGrowsWithTxCount(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	g, err := TableIV(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + g.String())
	// For every workload, reduction at the largest count must exceed
	// reduction at the smallest, and all values must be in [0, 100).
	for j := range g.Cols {
		first := g.Cells[0][j]
		last := g.Cells[len(g.Rows)-1][j]
		if first < 0 || first >= 100 || last < 0 || last >= 100 {
			t.Errorf("%s: reductions out of range: %.1f .. %.1f", g.Cols[j], first, last)
		}
		if last <= first {
			t.Errorf("%s: coalescing did not grow with tx count (%.1f%% -> %.1f%%)",
				g.Cols[j], first, last)
		}
	}
}

func TestFigure10PeaksInTheMiddle(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	g, err := Figure10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + g.String())
	// Averaged over workloads, some interior period must beat the 2 ms
	// point (eager GC wastes bandwidth), i.e. the curve is not flat and
	// not monotonically decreasing from the start.
	better := false
	for j := 1; j < len(g.Cols); j++ {
		sum := 0.0
		for i := range g.Rows {
			sum += g.Cells[i][j]
		}
		if sum/float64(len(g.Rows)) > 1.02 {
			better = true
		}
	}
	if !better {
		t.Error("no GC period beat the most-eager setting; expected a peak at moderate periods")
	}
}

func TestFigure11RecoveryScales(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	g, rep, err := Figure11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + g.String())
	if rep.CommittedTxs == 0 || rep.WordsRecovered == 0 {
		t.Fatalf("recovery replayed nothing: %+v", rep)
	}
	// More bandwidth is never slower (same thread count).
	for i := range g.Rows {
		for j := 1; j < len(g.Cols); j++ {
			if g.Cells[i][j] > g.Cells[i][j-1]+1e-9 {
				t.Errorf("row %s: recovery slower at higher bandwidth (%f -> %f)",
					g.Rows[i], g.Cells[i][j-1], g.Cells[i][j])
			}
		}
	}
	// More threads are never slower (same bandwidth).
	for j := range g.Cols {
		for i := 1; i < len(g.Rows); i++ {
			if g.Cells[i][j] > g.Cells[i-1][j]+1e-9 {
				t.Errorf("col %s: recovery slower with more threads", g.Cols[j])
			}
		}
	}
	// Scaling must saturate: at the highest bandwidth, 16 threads beat 1
	// thread by a large factor.
	last := len(g.Cols) - 1
	if g.Cells[0][last] < 1.5*g.Cells[len(g.Rows)-1][last] {
		t.Error("thread scaling too weak at high bandwidth")
	}
}

func TestFigure12LatencyHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	g, err := Figure12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + g.String())
	for i := range g.Rows {
		if g.Cells[i][0] <= g.Cells[i][len(g.Cols)-1] {
			t.Errorf("%s: throughput did not drop as latency grew", g.Rows[i])
		}
	}
}

func TestFigure13SmallTableHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	g, err := Figure13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + g.String())
	// The largest table should be at least as good as the smallest, and
	// small tables should have forced more on-demand GCs.
	n := len(g.Cols) - 1
	if g.Cells[0][n] < g.Cells[0][0] {
		t.Error("larger mapping table should not lose to the smallest")
	}
	if g.Cells[1][0] < g.Cells[1][n] {
		t.Error("smaller mapping table should trigger at least as many on-demand GCs")
	}
}

func TestStaticTablesRender(t *testing.T) {
	var b strings.Builder
	RenderTableI(&b)
	RenderTableIII(&b)
	RenderArea(&b)
	out := b.String()
	for _, needle := range []string{"HOOP", "LSNVMM", "hashmap-64", "tpcc", "overhead"} {
		if !strings.Contains(out, needle) {
			t.Errorf("static tables missing %q", needle)
		}
	}
	if len(workload.PaperSuite(workload.Options{})) != 7 {
		t.Errorf("paper suite must have 7 benchmarks")
	}
}

func TestAreaOverheadNearPaper(t *testing.T) {
	_, _, ovh := AreaOverhead(DefaultAreaConfig())
	if ovh < 0.03 || ovh > 0.06 {
		t.Errorf("area overhead %.2f%% far from the paper's 4.25%%", ovh*100)
	}
}
