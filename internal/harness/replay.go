package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
	"hoop/internal/trace"
	"hoop/internal/workload"
)

// The record-once/replay-many matrix pipeline. Each (workload, seed)
// column of the Figure 7–9 matrix executes its workload logic exactly
// once — on the first scheme, with a trace.Recorder subscribed — and every
// other scheme's cell replays the captured op stream instead of re-running
// B-tree rebalances, Zipfian draws, or TPC-C logic. Replay is faithful
// because the engine's functional view is scheme-independent and the
// paper-suite workloads are per-thread partitioned: each thread's op
// stream is a function of its seed alone, so reissuing each thread's
// recorded transactions under the unchanged min-clock scheduler
// reconstructs exactly the run that scheme would have produced directly.
// The golden grid and trace tests lock this bit for bit.

// matrixColumn is one (workload, seed) capture shared by that workload's
// replay cells. The capture stage fills it (or the cell cache restores
// it); the replay stage only reads it, so no locking is needed even with
// replay cells running on parallel workers.
type matrixColumn struct {
	workload string
	threads  int
	setupOps int
	// hash is the sha256 of the trace wire bytes — the content half of
	// the replay cache key.
	hash string
	// setup is the pre-window op stream, replayed in recorded global
	// order; measured[t][i] is thread t's i-th measured-window transaction
	// (including padding), fed through the scheme's own scheduling.
	setup    []trace.Op
	measured [][][]trace.Op
	// cap holds the in-memory capture when this column executed in this
	// run; tracePath points at the cached trace file when it did not.
	cap       *workload.Captured
	capKey    string
	tracePath string
	// capturedTxs is the transaction count the capture was measured at.
	// A cached capture may cover more transactions than this matrix
	// needs; replayFirst marks the first scheme's cell for prefix replay
	// in that case (its stored metrics describe the longer window).
	capturedTxs int
	replayFirst bool
}

// finalizeFromCapture derives the replay inputs from a fresh capture.
// When needWire is set (the cell cache is active) it also serializes the
// wire bytes and hashes them for the replay cache key, returning the
// bytes for storeCapture; cache-off runs skip that encoding pass. Either
// way the Captured reference is dropped so only the op slices stay live.
func (col *matrixColumn) finalizeFromCapture(needWire bool) ([]byte, error) {
	cap := col.cap
	col.threads = cap.Threads
	col.setupOps = cap.SetupOps
	col.setup = cap.Ops[:cap.SetupOps]
	measured, err := trace.SplitTxs(cap.Ops[cap.SetupOps:], cap.Threads)
	if err != nil {
		return nil, fmt.Errorf("harness: splitting %s capture: %w", col.workload, err)
	}
	col.measured = measured
	var wire []byte
	if needWire {
		wire, err = cap.WireBytes()
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(wire)
		col.hash = hex.EncodeToString(sum[:])
	}
	col.cap = nil
	return wire, nil
}

// loadFromFile restores the replay inputs from a cached trace file,
// verifying the content hash so a corrupt or swapped file cannot silently
// feed wrong ops into a measurement.
func (col *matrixColumn) loadFromFile() error {
	raw, err := os.ReadFile(col.tracePath)
	if err != nil {
		return fmt.Errorf("harness: reading cached capture for %s: %w", col.workload, err)
	}
	if sum := sha256.Sum256(raw); hex.EncodeToString(sum[:]) != col.hash {
		return fmt.Errorf("harness: cached capture %s fails its content hash; delete the cache dir and rerun", col.tracePath)
	}
	ops, err := trace.NewReader(bytes.NewReader(raw)).ReadAll()
	if err != nil {
		return fmt.Errorf("harness: decoding cached capture for %s: %w", col.workload, err)
	}
	if col.setupOps > len(ops) {
		return fmt.Errorf("harness: cached capture for %s has %d ops but claims %d setup ops", col.workload, len(ops), col.setupOps)
	}
	col.setup = ops[:col.setupOps]
	measured, err := trace.SplitTxs(ops[col.setupOps:], col.threads)
	if err != nil {
		return fmt.Errorf("harness: splitting cached %s capture: %w", col.workload, err)
	}
	col.measured = measured
	return nil
}

// gatedSink forwards events only while open. The capture cell needs it
// because telemetry subscriptions are forever: the cell's JSONL sink must
// cover exactly the measurement window, but the capture keeps running
// padding transactions after the window closes.
type gatedSink struct {
	inner telemetry.Sink
	open  bool
}

func (g *gatedSink) Emit(e telemetry.Event) {
	if g.open {
		g.inner.Emit(e)
	}
}

// captureCellRun executes one capture cell: a direct run of the cell's
// scheme with a recorder subscribed from before setup, whose measurement
// window doubles as the cell's own matrix result. Returns the system so
// tests can compare durable images.
func captureCellRun(c Cell) (Metrics, *workload.Captured, *engine.System, error) {
	sys, err := buildSystem(c.Scheme, c.mut())
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	var met Metrics
	var gate *gatedSink
	sink := c.Sink
	if sink != nil {
		gate = &gatedSink{inner: sink}
		sink = gate
	}
	cap, err := workload.Capture(sys, c.Workload, c.Seed, func(runners []engine.TxRunner) {
		if gate != nil {
			gate.open = true
		}
		met = measureWindow(sys, runners, c.Txs, sink, c.SinkMask)
		if gate != nil {
			gate.open = false
		}
	})
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	return met, cap, sys, nil
}

// cursorPool recycles replay cursors (and their load scratch buffers)
// across replay cells, so a 49-cell matrix allocates its cursors once.
var cursorPool = sync.Pool{New: func() any { return new(trace.Cursor) }}

// replayCellRun executes one replay cell: the column's setup stream in
// recorded order, then the standard measurement window driven by replay
// runners. Returns the system so tests can compare durable images.
func replayCellRun(c Cell, col *matrixColumn) (met Metrics, sys *engine.System, err error) {
	sys, err = buildSystem(c.Scheme, c.mut())
	if err != nil {
		return Metrics{}, nil, err
	}
	if got := sys.Config().Threads; got != col.threads {
		return Metrics{}, nil, fmt.Errorf("harness: %s capture has %d threads but %s system has %d", col.workload, col.threads, c.Scheme, got)
	}
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("harness: replaying %s on %s: %v", col.workload, c.Scheme, p)
		}
	}()
	if _, err := trace.ReplayOps(sys, col.setup); err != nil {
		return Metrics{}, nil, err
	}
	sys.SyncClocks()
	runners := make([]engine.TxRunner, col.threads)
	cursors := make([]*trace.Cursor, col.threads)
	for t := range runners {
		cur := cursorPool.Get().(*trace.Cursor)
		cur.Reset(col.workload, t, col.measured[t])
		cursors[t] = cur
		runners[t] = cur
	}
	met = measureWindow(sys, runners, c.Txs, c.Sink, c.SinkMask)
	for _, cur := range cursors {
		cur.Reset("", 0, nil)
		cursorPool.Put(cur)
	}
	return met, sys, nil
}
