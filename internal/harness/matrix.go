package harness

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

// Matrix holds the shared (workload × scheme) measurement that Figures 7a,
// 7b, 8 and 9 are all computed from — in the paper these come from the same
// simulation runs.
type Matrix struct {
	Workloads []string
	Schemes   []string
	Cells     map[string]map[string]Metrics // workload -> scheme -> metrics
	// Stats describes the worker-pool execution of the matrix (wall-clock,
	// not simulated time).
	Stats CellStats
	// Captures is how many workload captures serve the matrix's cells
	// under the replay pipeline (one per workload column); CapturesRun is
	// how many of them actually executed this run rather than being
	// restored from the cell cache. Both zero under -directmatrix.
	Captures    int
	CapturesRun int
}

// RunMatrix measures every paper workload on every scheme, or the suite
// the caller selected via opts.Suite.
func RunMatrix(opts Options) (*Matrix, error) {
	suite := opts.Suite
	if len(suite) == 0 {
		suite = workload.PaperSuite(opts.WL)
	}
	return RunMatrixOn(opts, suite, engine.AllSchemes)
}

// RunMatrixOn measures the given workloads on the given schemes, executing
// the independent cells on opts.Workers workers. By default each workload
// column executes once — on the first scheme, recorded into a binary
// trace — and the remaining schemes replay the capture (see replay.go);
// opts.DirectMatrix restores per-cell direct execution. Results are
// bit-identical either way, and bit-identical at every worker count.
func RunMatrixOn(opts Options, workloads []workload.Workload, schemes []string) (*Matrix, error) {
	if opts.DirectMatrix || len(workloads) == 0 || len(schemes) == 0 {
		return runMatrixDirect(opts, workloads, schemes)
	}
	return runMatrixReplay(opts, workloads, schemes)
}

// runMatrixDirect measures every (workload, scheme) cell by direct
// workload execution — the pre-replay pipeline.
func runMatrixDirect(opts Options, workloads []workload.Workload, schemes []string) (*Matrix, error) {
	var cells []Cell
	for _, w := range workloads {
		for _, s := range schemes {
			cells = append(cells, Cell{Scheme: s, Workload: w, Txs: opts.txPerCell(), Seed: opts.Seed + 1})
		}
	}
	opts.attachTrace("matrix", cells)
	mets, stats, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	return assembleMatrix(cells, mets, stats, schemes), nil
}

// runMatrixReplay is the record-once/replay-many pipeline: stage 1 runs
// one capture cell per workload column (the first scheme, recorded);
// stage 2 replays every capture against the remaining schemes. Both
// stages go through the same RunCells worker pool, and the optional cell
// cache (opts.CacheDir) short-circuits any cell whose inputs are already
// memoized. Cache I/O and column finalization happen on this goroutine,
// between batches, so workers share columns read-only.
func runMatrixReplay(opts Options, workloads []workload.Workload, schemes []string) (*Matrix, error) {
	cache, err := opts.ensureCache()
	if err != nil {
		return nil, err
	}
	ns := len(schemes)
	cells := make([]Cell, 0, len(workloads)*ns)
	for _, w := range workloads {
		for _, s := range schemes {
			cells = append(cells, Cell{Scheme: s, Workload: w, Txs: opts.txPerCell(), Seed: opts.Seed + 1})
		}
	}
	// Attach trace sinks in the same workload-major order as the direct
	// pipeline, so -trace output stays byte-identical.
	opts.attachTrace("matrix", cells)

	mets := make([]Metrics, len(cells))
	cols := make([]*matrixColumn, len(workloads))
	cached := 0

	// Stage 1: one capture cell per column. A cached capture taken at a
	// larger transaction count still serves this matrix — the first
	// scheme's cell then joins stage 2 and replays a committed-tx prefix
	// instead of reusing the longer window's metrics.
	var batch []Cell
	var batchIdx []int
	for i := range workloads {
		ci := i * ns
		col := &matrixColumn{workload: workloads[i].Name, capturedTxs: cells[ci].Txs}
		cols[i] = col
		if cache != nil {
			if key, ok := cache.captureKey(cells[ci]); ok {
				col.capKey = key
				if ent, hit := cache.loadCapture(key, workloads[i].Name, cells[ci].Txs); hit {
					col.threads, col.setupOps, col.hash = ent.Threads, ent.SetupOps, ent.TraceHash
					col.tracePath = cache.tracePath(key)
					col.capturedTxs = ent.Txs
					if ent.Txs == cells[ci].Txs {
						mets[ci] = ent.Metrics
						cached++
					} else {
						col.replayFirst = true
					}
					continue
				}
			}
		}
		c := cells[ci]
		c.Exec = func(cell Cell) (Metrics, error) {
			met, cap, _, err := captureCellRun(cell)
			if err != nil {
				return Metrics{}, err
			}
			col.cap = cap
			return met, nil
		}
		batch = append(batch, c)
		batchIdx = append(batchIdx, ci)
	}
	res, stats, err := RunCells(batch, opts.workers())
	if err != nil {
		return nil, err
	}
	capturesRun := len(batch)
	for k, ci := range batchIdx {
		mets[ci] = res[k]
	}
	for i, col := range cols {
		if col.cap == nil {
			continue // restored from cache
		}
		wire, err := col.finalizeFromCapture(cache != nil && col.capKey != "")
		if err != nil {
			return nil, err
		}
		if wire != nil {
			if err := cache.storeCapture(col.capKey, col, wire, mets[i*ns]); err != nil {
				return nil, err
			}
		}
	}

	// Stage 2: replay every capture against the remaining schemes (and
	// against the first scheme too when the capture came from the cache
	// at a larger transaction count).
	batch, batchIdx = batch[:0], batchIdx[:0]
	var batchKey []string
	for i := range workloads {
		col := cols[i]
		first := 1
		if col.replayFirst {
			first = 0
		}
		for j := first; j < ns; j++ {
			ci := i*ns + j
			key := ""
			if cache != nil {
				if k, ok := cache.replayKey(cells[ci], col); ok {
					key = k
					if met, hit := cache.loadMetrics(k, kindReplay); hit {
						mets[ci] = met
						cached++
						continue
					}
				}
			}
			if col.measured == nil {
				// Cached column whose replays are not all cached yet:
				// restore the op stream from the cached trace file.
				if err := col.loadFromFile(); err != nil {
					return nil, err
				}
			}
			c := cells[ci]
			c.Exec = func(cell Cell) (Metrics, error) {
				met, _, err := replayCellRun(cell, col)
				return met, err
			}
			batch = append(batch, c)
			batchIdx = append(batchIdx, ci)
			batchKey = append(batchKey, key)
		}
	}
	res, stats2, err := RunCells(batch, opts.workers())
	if err != nil {
		return nil, err
	}
	for k, ci := range batchIdx {
		mets[ci] = res[k]
		if cache != nil && batchKey[k] != "" {
			if err := cache.storeMetrics(batchKey[k], kindReplay, cells[ci].Scheme, res[k]); err != nil {
				return nil, err
			}
		}
	}

	stats = stats.merge(stats2)
	stats.Cells = len(cells)
	stats.Cached = cached
	if stats.Workers == 0 {
		stats.Workers = opts.workers()
	}
	m := assembleMatrix(cells, mets, stats, schemes)
	m.Captures, m.CapturesRun = len(workloads), capturesRun
	return m, nil
}

// assembleMatrix indexes per-cell metrics into the workload × scheme map.
func assembleMatrix(cells []Cell, mets []Metrics, stats CellStats, schemes []string) *Matrix {
	m := &Matrix{Cells: map[string]map[string]Metrics{}, Stats: stats}
	for i, c := range cells {
		if m.Cells[c.Workload.Name] == nil {
			m.Workloads = append(m.Workloads, c.Workload.Name)
			m.Cells[c.Workload.Name] = map[string]Metrics{}
		}
		m.Cells[c.Workload.Name][c.Scheme] = mets[i]
	}
	m.Schemes = append(m.Schemes, schemes...)
	return m
}

// Figure7a renders normalized transaction throughput (Figure 7a: higher is
// better, normalized to Opt-Redo as in the paper).
func Figure7a(m *Matrix) *Grid {
	g := &Grid{
		Title:   "Figure 7a: transaction throughput (normalized to Opt-Redo; higher is better)",
		RowName: "workload",
		Rows:    m.Workloads,
		Cols:    m.Schemes,
	}
	for _, w := range m.Workloads {
		base := m.Cells[w][engine.SchemeRedo].Throughput()
		row := make([]float64, len(m.Schemes))
		for j, s := range m.Schemes {
			row[j] = m.Cells[w][s].Throughput() / base
		}
		g.Cells = append(g.Cells, row)
	}
	return g
}

// Figure7b renders critical-path latency (Figure 7b: lower is better,
// normalized to the native system).
func Figure7b(m *Matrix) *Grid {
	g := &Grid{
		Title:   "Figure 7b: critical-path latency (normalized to Ideal; lower is better)",
		RowName: "workload",
		Rows:    m.Workloads,
		Cols:    m.Schemes,
	}
	for _, w := range m.Workloads {
		base := float64(m.Cells[w][engine.SchemeNative].AvgLatency())
		row := make([]float64, len(m.Schemes))
		for j, s := range m.Schemes {
			row[j] = float64(m.Cells[w][s].AvgLatency()) / base
		}
		g.Cells = append(g.Cells, row)
	}
	return g
}

// Figure8 renders NVM write traffic per transaction (normalized to the
// native system; lower is better).
func Figure8(m *Matrix) *Grid {
	g := &Grid{
		Title:   "Figure 8: NVM write traffic per transaction (normalized to Ideal; lower is better)",
		RowName: "workload",
		Rows:    m.Workloads,
		Cols:    m.Schemes,
	}
	for _, w := range m.Workloads {
		base := m.Cells[w][engine.SchemeNative].WritesPerTx()
		row := make([]float64, len(m.Schemes))
		for j, s := range m.Schemes {
			row[j] = m.Cells[w][s].WritesPerTx() / base
		}
		g.Cells = append(g.Cells, row)
	}
	return g
}

// Figure9 renders NVM energy per transaction (normalized to the native
// system; lower is better).
func Figure9(m *Matrix) *Grid {
	g := &Grid{
		Title:   "Figure 9: NVM energy per transaction (normalized to Ideal; lower is better)",
		RowName: "workload",
		Rows:    m.Workloads,
		Cols:    m.Schemes,
	}
	for _, w := range m.Workloads {
		base := m.Cells[w][engine.SchemeNative].EnergyPerTx()
		row := make([]float64, len(m.Schemes))
		for j, s := range m.Schemes {
			row[j] = m.Cells[w][s].EnergyPerTx() / base
		}
		g.Cells = append(g.Cells, row)
	}
	return g
}

// Headline computes the paper's headline comparisons from a matrix: HOOP's
// mean throughput improvement over each scheme, its mean latency reduction,
// and its write-traffic ratios (the numbers quoted in §IV-B/C/D).
type Headline struct {
	ThroughputGainVs map[string]float64 // HOOP tput / scheme tput - 1
	LatencyCutVs     map[string]float64 // 1 - HOOP latency / scheme latency
	TrafficRatioOf   map[string]float64 // scheme bytes / HOOP bytes
	VsIdealTput      float64            // HOOP tput / Ideal tput
	VsIdealLatency   float64            // HOOP latency / Ideal latency
}

// ComputeHeadline derives the headline numbers.
func ComputeHeadline(m *Matrix) Headline {
	h := Headline{
		ThroughputGainVs: map[string]float64{},
		LatencyCutVs:     map[string]float64{},
		TrafficRatioOf:   map[string]float64{},
	}
	for _, s := range m.Schemes {
		if s == engine.SchemeHOOP {
			continue
		}
		var tputR, latR, trafR []float64
		for _, w := range m.Workloads {
			hoopM := m.Cells[w][engine.SchemeHOOP]
			otherM := m.Cells[w][s]
			tputR = append(tputR, hoopM.Throughput()/otherM.Throughput())
			latR = append(latR, float64(hoopM.AvgLatency())/float64(otherM.AvgLatency()))
			// Read-only workloads (YCSB-C) write nothing under any scheme;
			// a traffic ratio is undefined there, so they sit out the mean.
			if hoopM.WritesPerTx() > 0 && otherM.WritesPerTx() > 0 {
				trafR = append(trafR, otherM.WritesPerTx()/hoopM.WritesPerTx())
			}
		}
		h.ThroughputGainVs[s] = geoMean(tputR) - 1
		h.LatencyCutVs[s] = 1 - geoMean(latR)
		h.TrafficRatioOf[s] = geoMean(trafR)
	}
	h.VsIdealTput = 1 + h.ThroughputGainVs[engine.SchemeNative]
	h.VsIdealLatency = 1 / (1 - h.LatencyCutVs[engine.SchemeNative])
	return h
}

// FormatHeadline renders the headline block.
func FormatHeadline(h Headline) string {
	order := []string{engine.SchemeRedo, engine.SchemeUndo, engine.SchemeOSP, engine.SchemeLSM, engine.SchemeLAD}
	out := "HOOP headline numbers (geometric mean over all workloads):\n"
	for _, s := range order {
		out += fmt.Sprintf("  vs %-9s throughput %+6.1f%%   latency %+6.1f%% shorter   traffic ratio %.2fx\n",
			s+":", h.ThroughputGainVs[s]*100, h.LatencyCutVs[s]*100, h.TrafficRatioOf[s])
	}
	out += fmt.Sprintf("  vs Ideal:    throughput %5.1f%% of ideal, latency %.2fx ideal\n",
		h.VsIdealTput*100, h.VsIdealLatency)
	return out
}

// ReadProfile computes the §IV-C read-path profile: memory loads per LLC
// miss, the parallel-read fraction, and the LLC miss ratio, from a HOOP
// cell's counters.
type ReadProfile struct {
	LoadsPerLLCMiss  float64
	ParallelReadFrac float64
	LLCMissRatio     float64
	EvictBufHitFrac  float64
}

// ComputeReadProfile derives the profile from a HOOP measurement window.
func ComputeReadProfile(met Metrics) ReadProfile {
	c := met.Counters
	mapHits := float64(c[sim.StatMapHits])
	mapMisses := float64(c[sim.StatMapMisses])
	parallel := float64(c[sim.StatParallelRead])
	evb := float64(c[sim.StatEvictBufHits])
	misses := mapHits + mapMisses
	accesses := float64(c[sim.StatL1Hits] + c[sim.StatL2Hits] + c[sim.StatLLCHits] + c[sim.StatLLCMisses])
	var p ReadProfile
	if misses > 0 {
		p.LoadsPerLLCMiss = (mapHits + parallel + (mapMisses - evb)) / misses
		p.ParallelReadFrac = parallel / misses
		p.EvictBufHitFrac = evb / misses
	}
	if accesses > 0 {
		p.LLCMissRatio = float64(c[sim.StatLLCMisses]) / accesses
	}
	return p
}
