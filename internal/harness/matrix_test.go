package harness

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// calibrationMatrix runs a reduced matrix used by several ordering tests.
func calibrationMatrix(t *testing.T, workloads []workload.Workload) *Matrix {
	t.Helper()
	m, err := RunMatrixOn(Options{Quick: true, Seed: 1}, workloads, engine.AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	m := calibrationMatrix(t, workload.PaperSuite(workload.Options{}))
	for _, w := range m.Workloads {
		for _, s := range m.Schemes {
			c := m.Cells[w][s]
			t.Logf("%-12s %-9s lat=%-10v writes/tx=%-8.0f tput=%.2fM/s miss/tx=%.1f evict/tx=%.1f gc=%d ondemand=%d slices/tx=%.1f",
				w, s, c.AvgLatency(), c.WritesPerTx(), c.Throughput()/1e6,
				float64(c.Counters["cache.llc_misses"])/float64(c.Txs),
				float64(c.Counters["cache.dirty_evictions"])/float64(c.Txs),
				c.Counters["gc.runs"], c.Counters["gc.on_demand"],
				float64(c.Counters["hoop.slice_flushes"])/float64(c.Txs))
		}
	}
	t.Log("\n" + Figure7a(m).String())
	t.Log("\n" + Figure7b(m).String())
	t.Log("\n" + Figure8(m).String())
	t.Log("\n" + Figure9(m).String())
	t.Log("\n" + FormatHeadline(ComputeHeadline(m)))

	h := ComputeHeadline(m)
	// Paper's qualitative orderings (the quantitative targets live in
	// EXPERIMENTS.md and the full bench run):
	if h.ThroughputGainVs[engine.SchemeRedo] <= 0 {
		t.Errorf("HOOP must out-throughput Opt-Redo (got %+.1f%%)", h.ThroughputGainVs[engine.SchemeRedo]*100)
	}
	if h.ThroughputGainVs[engine.SchemeUndo] <= 0 {
		t.Errorf("HOOP must out-throughput Opt-Undo (got %+.1f%%)", h.ThroughputGainVs[engine.SchemeUndo]*100)
	}
	if h.LatencyCutVs[engine.SchemeUndo] <= 0 {
		t.Errorf("HOOP must cut latency vs Opt-Undo (got %+.1f%%)", h.LatencyCutVs[engine.SchemeUndo]*100)
	}
	if h.TrafficRatioOf[engine.SchemeRedo] <= 1 {
		t.Errorf("Opt-Redo must write more than HOOP (ratio %.2f)", h.TrafficRatioOf[engine.SchemeRedo])
	}
	if h.TrafficRatioOf[engine.SchemeUndo] <= 1 {
		t.Errorf("Opt-Undo must write more than HOOP (ratio %.2f)", h.TrafficRatioOf[engine.SchemeUndo])
	}
	if h.VsIdealTput >= 1 {
		t.Errorf("HOOP cannot beat Ideal throughput (%.2f)", h.VsIdealTput)
	}
}
