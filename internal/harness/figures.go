package harness

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/hoop"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

// Figure10 measures HOOP transaction throughput across GC trigger periods
// (the paper sweeps 2–14 ms): too-frequent GC wastes bandwidth and loses
// coalescing; too-rare GC exhausts the reserved space and forces on-demand
// GC onto the critical path, so throughput peaks in the middle.
//
// In Quick mode both the periods and the space budget scale down 10× (the
// mechanics — coalescing window versus space pressure — scale with
// period × transaction rate, so the curve's shape is preserved).
func Figure10(opts Options) (*Grid, error) {
	periodsMS := []float64{2, 4, 6, 8, 10, 12, 14}
	scale := 1.0
	txs := 150000
	commitLog := 1 << 20 // ~32 Ki pending commits: exhausted near the sweep's tail
	if opts.Quick {
		scale = 0.1
		txs = 8000
		commitLog = 1 << 18
	}
	suite := workload.SyntheticSuite(opts.WL)
	g := &Grid{
		Title:   "Figure 10: HOOP throughput vs GC period (normalized to the 2 ms point; higher is better)",
		RowName: "workload",
		Format:  "%.2f",
	}
	for _, p := range periodsMS {
		g.Cols = append(g.Cols, fmt.Sprintf("%gms", p))
	}
	var cells []Cell
	for _, wl := range suite {
		for _, p := range periodsMS {
			period := sim.Duration(p * scale * float64(sim.Millisecond))
			cells = append(cells, Cell{
				Scheme: engine.SchemeHOOP, Workload: wl, Txs: txs, Seed: opts.Seed + 5,
				Mut: func(c *engine.Config) {
					c.Hoop.GCPeriod = period
					c.Hoop.CommitLogBytes = commitLog
				},
			})
		}
	}
	opts.attachTrace("fig10", cells)
	mets, _, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	for wi, wl := range suite {
		g.Rows = append(g.Rows, wl.Name)
		row := make([]float64, 0, len(periodsMS))
		base := mets[wi*len(periodsMS)].Throughput()
		for i := range periodsMS {
			row = append(row, mets[wi*len(periodsMS)+i].Throughput()/base)
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}

// Figure11 measures recovery time of a filled OOP region across recovery
// thread counts and NVM bandwidths. The region is filled with committed
// but un-migrated transactions (1 GB as in the paper; 64 MB in Quick
// mode), recovered once functionally (and verified replayable), and the
// analytic model is evaluated over the grid. The scheme must implement
// persist.RecoveryScanner.
func Figure11(opts Options) (*Grid, persist.RecoveryReport, error) {
	fillBytes := int64(1 << 30)
	if opts.Quick {
		fillBytes = 64 << 20
	}
	const wordsPerTx = 64 // 8 slices per transaction
	numTxs := int(fillBytes / (8 * hoop.SliceSize))

	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Hoop.CommitLogBytes = 64 << 20
	cfg.Hoop.GCPeriod = sim.Second // fill must stay un-migrated
	sys, err := engine.New(cfg)
	if err != nil {
		return nil, persist.RecoveryReport{}, err
	}
	hs, ok := sys.Scheme().(persist.RecoveryScanner)
	if !ok {
		return nil, persist.RecoveryReport{},
			fmt.Errorf("harness: figure 11 needs a scheme with an instrumented recovery scan; %s implements no persist.RecoveryScanner", cfg.Scheme)
	}
	// A bounded address space yields recovery-time coalescing, as a skewed
	// workload would.
	if _, err := hs.SyntheticFill(numTxs, wordsPerTx, 64<<20, opts.Seed+7); err != nil {
		return nil, persist.RecoveryReport{}, err
	}
	sys.Crash()
	rep, err := hs.RecoverWithReport(8)
	if err != nil {
		return nil, persist.RecoveryReport{}, err
	}

	threads := []int{1, 2, 4, 8, 16}
	bandwidthsGB := []int{10, 15, 20, 25, 30}
	g := &Grid{
		Title: fmt.Sprintf("Figure 11: recovery time (ms) of %d MB OOP region vs threads and NVM bandwidth",
			fillBytes>>20),
		RowName: "threads",
		Format:  "%.1f",
	}
	for _, bw := range bandwidthsGB {
		g.Cols = append(g.Cols, fmt.Sprintf("%dGB/s", bw))
	}
	for _, t := range threads {
		g.Rows = append(g.Rows, fmt.Sprintf("%d", t))
		row := make([]float64, 0, len(bandwidthsGB))
		for _, bw := range bandwidthsGB {
			d := hoop.ModelRecoveryTime(rep, t, int64(bw)<<30)
			row = append(row, d.Milliseconds())
		}
		g.Cells = append(g.Cells, row)
	}
	return g, rep, nil
}

// ycsb1k is the Figure 12/13 workload: the caller's base options with the
// paper's 1 KB items pinned.
func ycsb1k(opts Options) workload.Options {
	o := opts.WL
	o.ValBytes = 1024
	return o
}

// Figure12 measures YCSB throughput sensitivity to NVM read and write
// latency: one sweep varies the read latency with the write latency at its
// default 150 ns, the other varies the write latency with the read latency
// at 50 ns (§IV-H).
func Figure12(opts Options) (*Grid, error) {
	latencies := []int{50, 100, 150, 200, 250}
	txs := opts.txPerCell() / 2
	wl := workload.MustBuild("ycsb", ycsb1k(opts))
	g := &Grid{
		Title:   "Figure 12: YCSB-1k HOOP throughput (Ktx/s) vs NVM latency",
		RowName: "sweep",
		Format:  "%.0f",
	}
	for _, l := range latencies {
		g.Cols = append(g.Cols, fmt.Sprintf("%dns", l))
	}
	var cells []Cell
	for _, l := range latencies {
		lat := sim.Duration(l) * sim.Nanosecond
		cells = append(cells, Cell{
			Scheme: engine.SchemeHOOP, Workload: wl, Txs: txs, Seed: opts.Seed + 9,
			Mut: func(c *engine.Config) { c.NVM.ReadLatency = lat },
		})
	}
	for _, l := range latencies {
		lat := sim.Duration(l) * sim.Nanosecond
		cells = append(cells, Cell{
			Scheme: engine.SchemeHOOP, Workload: wl, Txs: txs, Seed: opts.Seed + 9,
			Mut: func(c *engine.Config) {
				c.NVM.ReadLatency = 50 * sim.Nanosecond
				c.NVM.WriteLatency = lat
			},
		})
	}
	opts.attachTrace("fig12", cells)
	mets, _, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	readRow := make([]float64, 0, len(latencies))
	writeRow := make([]float64, 0, len(latencies))
	for i := range latencies {
		readRow = append(readRow, mets[i].Throughput()/1e3)
		writeRow = append(writeRow, mets[len(latencies)+i].Throughput()/1e3)
	}
	g.Rows = []string{"read latency (write=150ns)", "write latency (read=50ns)"}
	g.Cells = [][]float64{readRow, writeRow}
	return g, nil
}

// Figure13 measures YCSB throughput sensitivity to the mapping-table size:
// a small table forces on-demand GC whenever it fills; past 2 MB the gains
// flatten because the periodic GC bounds table occupancy anyway (§IV-H).
func Figure13(opts Options) (*Grid, error) {
	sizes := []int{256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	txs := opts.txPerCell() / 2
	if opts.Quick {
		// Scale the sweep to the shorter window: table pressure is
		// (eviction rate × GC period) versus capacity, so a 16× smaller
		// table at a smaller window shows the same mechanism.
		sizes = []int{16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
		txs = 2500
	}
	wl := workload.MustBuild("ycsb", ycsb1k(opts))
	g := &Grid{
		Title:   "Figure 13: YCSB-1k HOOP throughput vs mapping-table size (normalized to 256 KB)",
		RowName: "metric",
		Format:  "%.2f",
	}
	for _, s := range sizes {
		if s >= 1<<20 {
			g.Cols = append(g.Cols, fmt.Sprintf("%dMB", s>>20))
		} else {
			g.Cols = append(g.Cols, fmt.Sprintf("%dKB", s>>10))
		}
	}
	var cells []Cell
	for _, size := range sizes {
		size := size
		cells = append(cells, Cell{
			Scheme: engine.SchemeHOOP, Workload: wl, Txs: txs, Seed: opts.Seed + 11,
			Mut: func(c *engine.Config) { c.Hoop.MapTableBytes = size },
		})
	}
	opts.attachTrace("fig13", cells)
	mets, _, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	var tputRow, gcRow []float64
	base := mets[0].Throughput()
	for i := range sizes {
		tputRow = append(tputRow, mets[i].Throughput()/base)
		gcRow = append(gcRow, float64(mets[i].Counters[sim.StatGCOnDemand]))
	}
	g.Rows = []string{"throughput", "on-demand GCs"}
	g.Cells = [][]float64{tputRow, gcRow}
	return g, nil
}
