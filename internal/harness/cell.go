package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hoop/internal/engine"
	"hoop/internal/persist"
	"hoop/internal/telemetry"
	"hoop/internal/workload"
)

// Cell is one independent (scheme × workload) simulation job: every cell
// builds its own engine.System (own sim.Stats, mem.Store, PRNGs), so cells
// share no mutable state and can execute in any order — or concurrently —
// without changing a single measured number. Every figure and table of the
// evaluation decomposes into cells.
type Cell struct {
	Scheme   string
	Workload workload.Workload
	Txs      int
	Seed     uint64
	// Mut, when non-nil, adjusts the paper-default configuration before
	// the system is built (GC period sweeps, NVM latency sweeps, ...).
	Mut func(*engine.Config)
	// Sink, when non-nil, is subscribed to the cell's telemetry hub with
	// SinkMask at the start of the measurement window. Each cell owns its
	// sink exclusively (one worker runs one cell), so sinks need no
	// locking even under parallel RunCells.
	Sink     telemetry.Sink
	SinkMask telemetry.Mask
	// Exec, when non-nil, replaces the default direct execution (build a
	// system, run the workload, measure). The matrix pipeline uses it to
	// run capture and replay cells through the same worker pool.
	Exec func(Cell) (Metrics, error)
}

// mut returns the cell's effective config mutator: the caller's Mut, plus
// Config.Abortable forced on for workloads that inject aborts (YCSB-F's
// read-modify-write mix). Cache keys hash this effective config, so an
// abort-injecting workload can never alias a non-abortable cell.
func (c Cell) mut() func(*engine.Config) {
	if !c.Workload.NeedsAbort {
		return c.Mut
	}
	return func(cfg *engine.Config) {
		if c.Mut != nil {
			c.Mut(cfg)
		}
		cfg.Abortable = true
	}
}

// CellStats summarizes one worker-pool run over a batch of cells.
type CellStats struct {
	Cells   int
	Workers int
	// Wall is the elapsed wall-clock of the whole batch; CellSum is the
	// summed per-cell wall-clock (the serial-equivalent cost). Their ratio
	// is the multi-core speedup the pool achieved.
	Wall    time.Duration
	CellSum time.Duration
	MaxCell time.Duration
	// Cached counts cells whose results came from the on-disk cell cache
	// instead of executing (included in Cells, excluded from the timing
	// fields).
	Cached int
}

// merge folds a second batch's pool stats into s (the matrix pipeline runs
// captures and replays as separate batches).
func (s CellStats) merge(o CellStats) CellStats {
	s.Cells += o.Cells
	s.Cached += o.Cached
	s.Wall += o.Wall
	s.CellSum += o.CellSum
	if o.MaxCell > s.MaxCell {
		s.MaxCell = o.MaxCell
	}
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	return s
}

// Speedup reports CellSum / Wall — how much faster the batch ran than a
// strictly sequential execution of the same cells.
func (s CellStats) Speedup() float64 {
	if s.Wall <= 0 {
		return 1
	}
	return float64(s.CellSum) / float64(s.Wall)
}

func (s CellStats) String() string {
	avg := time.Duration(0)
	if run := s.Cells - s.Cached; run > 0 {
		avg = s.CellSum / time.Duration(run)
	}
	out := fmt.Sprintf("%d cells on %d workers: wall %.1fs, serial-equivalent %.1fs (%.1fx), avg cell %.2fs, max cell %.2fs",
		s.Cells, s.Workers, s.Wall.Seconds(), s.CellSum.Seconds(), s.Speedup(), avg.Seconds(), s.MaxCell.Seconds())
	if s.Cached > 0 {
		out += fmt.Sprintf(", %d cached", s.Cached)
	}
	return out
}

// RunCells executes every cell on a bounded worker pool and returns the
// per-cell metrics in input order. workers < 1 means runtime.GOMAXPROCS.
// Because cells are fully independent and seeded individually, the results
// are bit-identical for every worker count; only wall-clock changes.
func RunCells(cells []Cell, workers int) ([]Metrics, CellStats, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	stats := CellStats{Cells: len(cells), Workers: workers}
	if len(cells) == 0 {
		return nil, stats, nil
	}
	start := time.Now()
	results := make([]Metrics, len(cells))
	walls := make([]time.Duration, len(cells))
	errs := make([]error, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				cellStart := time.Now()
				if c.Exec != nil {
					results[i], errs[i] = c.Exec(c)
				} else {
					results[i], errs[i] = runCell(c)
				}
				walls[i] = time.Since(cellStart)
			}
		}()
	}
	wg.Wait()
	stats.Wall = time.Since(start)
	for i, d := range walls {
		stats.CellSum += d
		if d > stats.MaxCell {
			stats.MaxCell = d
		}
		if errs[i] != nil {
			return nil, stats, fmt.Errorf("harness: %s on %s: %w", cells[i].Workload.Name, cells[i].Scheme, errs[i])
		}
	}
	return results, stats, nil
}

// runCellsCached is RunCells behind the run's cell cache: direct cells
// whose full inputs (workload + options, seed, txs, post-Mut config) are
// memoized skip execution, everything else goes through the normal worker
// pool and is stored afterwards. Every non-matrix section (TableIV, the
// GC/latency/map-size sweeps, ablation) runs through here, which is what
// makes the -cachedir flag section-generic rather than matrix-only.
// Results are byte-identical with and without the cache.
func runCellsCached(cells []Cell, opts Options) ([]Metrics, CellStats, error) {
	cache, err := opts.ensureCache()
	if err != nil {
		return nil, CellStats{}, err
	}
	if cache == nil {
		return RunCells(cells, opts.workers())
	}
	mets := make([]Metrics, len(cells))
	keys := make([]string, len(cells))
	var batch []Cell
	var batchIdx []int
	cached := 0
	for i, c := range cells {
		if key, ok := cache.directKey(c); ok {
			keys[i] = key
			if met, hit := cache.loadMetrics(key, kindDirect); hit {
				mets[i] = met
				cached++
				continue
			}
		}
		batch = append(batch, c)
		batchIdx = append(batchIdx, i)
	}
	res, stats, err := RunCells(batch, opts.workers())
	if err != nil {
		return nil, stats, err
	}
	for k, i := range batchIdx {
		mets[i] = res[k]
		if keys[i] != "" {
			if err := cache.storeMetrics(keys[i], kindDirect, cells[i].Scheme, res[k]); err != nil {
				return nil, stats, err
			}
		}
	}
	stats.Cells = len(cells)
	stats.Cached = cached
	if stats.Workers == 0 {
		stats.Workers = opts.workers()
	}
	return mets, stats, nil
}

// buildSystem constructs a paper-default system with the given scheme,
// applying mut (which may be nil) before construction.
func buildSystem(scheme string, mut func(*engine.Config)) (*engine.System, error) {
	cfg := engine.DefaultConfig(scheme)
	if mut != nil {
		mut(&cfg)
	}
	return engine.New(cfg)
}

// phaseMask is what the per-cell counting sink subscribes to: the low-rate
// mechanism kinds plus commits. Per-op kinds stay off so the hot path keeps
// its single-branch guard.
var phaseMask = telemetry.MaskPhases | telemetry.MaskOf(telemetry.KindTxCommit)

// runCell executes the cell's transactions on a fresh system and returns
// the measurement window.
func runCell(c Cell) (Metrics, error) {
	sys, err := buildSystem(c.Scheme, c.mut())
	if err != nil {
		return Metrics{}, err
	}
	runners := c.Workload.Runners(sys, c.Seed)
	return measureWindow(sys, runners, c.Txs, c.Sink, c.SinkMask), nil
}

// quiesceTicks bounds the Tick catch-up loop that lets epoch-driven
// background machinery observe the drained state.
const quiesceTicks = 64

// quiesce closes off in-flight work at a measurement boundary: still-cached
// dirty data is written back through the scheme, deferred background
// machinery (GC, consolidation, checkpointing) is drained through the
// scheme's persist.Quiescer hook, and the scheme ticks until idle.
func quiesce(sys *engine.System) {
	sys.DrainCache()
	if q, ok := sys.Scheme().(persist.Quiescer); ok {
		q.Quiesce(sys.MaxClock())
	}
	for i := 0; i < quiesceTicks; i++ {
		sys.Scheme().Tick(sys.MaxClock())
	}
}

// measureWindow runs txs transactions on the runners inside a fairly closed
// steady-state window: setup dirt is quiesced first (without letting the
// quiesce burst backlog the window's first accesses), all threads enter at
// the same simulated instant, and the window is closed by charging every
// scheme for its still-cached dirty data and deferred migration traffic.
// Telemetry subscriptions happen after setup quiesces, so the phase
// breakdown and any trace cover exactly the measured window.
func measureWindow(sys *engine.System, runners []engine.TxRunner, txs int, sink telemetry.Sink, mask telemetry.Mask) Metrics {
	quiesce(sys)
	sys.ResetMemoryQueues()
	sys.SyncClocks()
	counts := &telemetry.CountingSink{}
	sys.Subscribe(counts, phaseMask)
	if sink != nil {
		sys.Subscribe(sink, mask)
	}
	before := takeSnapshot(sys)
	histBefore := sys.LatencyHistogram()
	sys.Run(runners, txs)
	quiesce(sys)
	m := window(before, takeSnapshot(sys))
	m.Phases = counts.Counts()
	hist := sys.LatencyHistogram()
	m.Latency = hist.Since(histBefore)
	return m
}
