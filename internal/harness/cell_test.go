package harness

import (
	"reflect"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// quickWL builds a 64-byte workload on the shrunken working set the
// harness tests run (the sizing the deleted QuickTuning global used to
// install).
func quickWL(name string) workload.Workload {
	return workload.MustBuild(name, workload.Options{ValBytes: 64, Keys: 4096})
}

// TestRunCellsMatchesSerial checks the pool's core guarantee: the measured
// numbers are bit-identical whether cells run on one worker or many.
func TestRunCellsMatchesSerial(t *testing.T) {
	var cells []Cell
	for _, s := range []string{engine.SchemeHOOP, engine.SchemeRedo, engine.SchemeNative} {
		for _, wl := range []workload.Workload{quickWL("hashmap"), quickWL("queue")} {
			cells = append(cells, Cell{Scheme: s, Workload: wl, Txs: 200, Seed: 7})
		}
	}
	serial, serialStats, err := RunCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, parStats, err := RunCells(cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.Workers != 1 || parStats.Workers != 4 {
		t.Fatalf("worker counts: serial=%d parallel=%d", serialStats.Workers, parStats.Workers)
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			if !reflect.DeepEqual(serial[i], parallel[i]) {
				t.Errorf("cell %d (%s on %s) diverges:\nserial:   %+v\nparallel: %+v",
					i, cells[i].Workload.Name, cells[i].Scheme, serial[i], parallel[i])
			}
		}
		t.Fatal("parallel metrics must be bit-identical to serial")
	}
}

// TestCellLatencyHistogram: the window's latency histogram counts exactly
// the measured transactions (setup txs excluded) and its percentiles are
// ordered — the distribution harness consumers merge across cells.
func TestCellLatencyHistogram(t *testing.T) {
	cells := []Cell{{Scheme: engine.SchemeHOOP, Workload: quickWL("hashmap"), Txs: 300, Seed: 3}}
	metrics, _, err := RunCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := metrics[0]
	if m.Latency.Count() != m.Txs {
		t.Fatalf("latency histogram holds %d observations, want Txs = %d", m.Latency.Count(), m.Txs)
	}
	p50, p99 := m.LatencyQuantile(0.50), m.LatencyQuantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("percentiles out of order: p50=%v p99=%v", p50, p99)
	}
	if mean := m.Latency.Mean(); mean != m.AvgLatency() {
		t.Fatalf("histogram mean %v disagrees with LatencySum/Txs %v", mean, m.AvgLatency())
	}
}

func TestRunCellsPropagatesBuildErrors(t *testing.T) {
	cells := []Cell{{Scheme: "no-such-scheme", Workload: workload.QueueWL(64), Txs: 10, Seed: 1}}
	if _, _, err := RunCells(cells, 2); err == nil {
		t.Fatal("unknown scheme must fail")
	} else if !strings.Contains(err.Error(), "no-such-scheme") {
		t.Fatalf("error should name the scheme: %v", err)
	}
}

func TestRunCellsEmpty(t *testing.T) {
	mets, stats, err := RunCells(nil, 8)
	if err != nil || len(mets) != 0 || stats.Cells != 0 {
		t.Fatalf("empty batch: mets=%v stats=%+v err=%v", mets, stats, err)
	}
}

// TestParallelMatrixDeterminism runs a reduced paper matrix at workers=1
// and workers=GOMAXPROCS and requires identical Metrics everywhere.
func TestParallelMatrixDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	workloads := []workload.Workload{quickWL("hashmap"), workload.YCSB(64)}
	opts := Options{Quick: true, Seed: 3}
	opts.Workers = 1
	m1, err := RunMatrixOn(opts, workloads, engine.AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 0 // GOMAXPROCS
	mN, err := RunMatrixOn(opts, workloads, engine.AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Cells, mN.Cells) {
		for _, w := range m1.Workloads {
			for _, s := range m1.Schemes {
				if !reflect.DeepEqual(m1.Cells[w][s], mN.Cells[w][s]) {
					t.Errorf("%s on %s diverges between worker counts", w, s)
				}
			}
		}
		t.Fatal("matrix must be independent of worker count")
	}
	t.Logf("pool: %s", mN.Stats)
}

func TestWearOnRequiresQuiescer(t *testing.T) {
	if _, err := WearOn(Options{Quick: true, Seed: 1}, engine.SchemeNative); err == nil {
		t.Fatal("expected an error for a scheme without background migration")
	} else if !strings.Contains(err.Error(), "Quiescer") {
		t.Fatalf("error should name the missing capability, got: %v", err)
	}
}
