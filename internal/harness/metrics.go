// Package harness regenerates every table and figure of the HOOP paper's
// evaluation (§IV): it builds simulated systems, runs the Table III
// workloads on each persistence scheme, and renders the same rows and
// series the paper reports. DESIGN.md maps each experiment to its
// function here; EXPERIMENTS.md records paper-vs-measured values.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/workload"
)

// Options scales the experiments.
type Options struct {
	// Quick shrinks transaction counts so the whole suite runs in
	// seconds (used by tests); the full size matches the paper's
	// steady-state windows.
	Quick bool
	// Seed feeds every workload PRNG.
	Seed uint64
	// Charts additionally renders each grid as ASCII bar charts.
	Charts bool
	// ArtifactDir, when non-empty, receives one JSON file per grid for
	// downstream plotting.
	ArtifactDir string
	// Workers bounds the worker pool that executes independent cells;
	// zero or negative means runtime.GOMAXPROCS. Results are bit-identical
	// for every worker count.
	Workers int
	// Trace, when non-nil, collects a JSONL telemetry trace from every
	// cell (hoopbench -trace). Output is identical for every worker count.
	Trace *TraceCollector
	// CacheDir, when non-empty, memoizes matrix cells on disk (hoopbench
	// -cachedir): a rerun only executes cells whose inputs — trace
	// content, scheme, engine config, workload tuning — changed. Tracing
	// disables the cache, since a cached cell emits no events.
	CacheDir string
	// DirectMatrix bypasses the record-once/replay-many matrix pipeline
	// and runs every (workload, scheme) cell by direct workload execution
	// (hoopbench -directmatrix). Results are bit-identical either way;
	// this exists as an escape hatch and for equivalence testing.
	DirectMatrix bool
	// WL is the base workload.Options overlaid on every workload the
	// experiments build (zero fields keep each workload's defaults). Tests
	// shrink key counts with it; hoopbench maps sizing flags onto it.
	WL workload.Options
	// Suite, when non-empty, replaces the paper suite in the shared
	// Figure 7–9 matrix (hoopbench -suite / -workloads).
	Suite []workload.Workload
	// CacheMax, when positive, caps the on-disk cell cache (CacheDir) at
	// that many bytes; least-recently-used entries are evicted after each
	// store. Zero means unlimited.
	CacheMax int64
	// TxsPerCell, when positive, overrides the measured transactions per
	// matrix cell (default 24000, or 1200 in Quick mode). The sweep
	// sections use it: a 64 KB-value transaction moves three orders of
	// magnitude more data than a 64 B one, so sweep cells need far fewer
	// transactions for a stable mean.
	TxsPerCell int

	// cache is the run's open cell cache, shared by every section once
	// ensureCache opened it. Options is copied by value throughout the
	// harness; the pointer travels with the copies, so RunSections opens
	// the cache once and every section (and its hit/miss accounting)
	// shares it.
	cache *cellCache
}

// ensureCache opens the cell cache on first use (nil when caching is
// off). Sections called standalone get their own instance; RunSections
// pre-opens one so all sections share accounting and eviction pinning.
func (o *Options) ensureCache() (*cellCache, error) {
	if o.cache != nil {
		return o.cache, nil
	}
	cc, err := openCellCache(*o)
	if err != nil {
		return nil, err
	}
	o.cache = cc
	return cc, nil
}

// workers resolves the effective worker count (<=0 → GOMAXPROCS).
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// txPerCell reports the measured transactions per (workload, scheme) cell.
func (o Options) txPerCell() int {
	if o.TxsPerCell > 0 {
		return o.TxsPerCell
	}
	if o.Quick {
		return 1200
	}
	return 24000
}

// Metrics is one measurement window.
type Metrics struct {
	Txs          int64
	Aborts       int64        // aborted transaction attempts in the window
	Span         sim.Duration // wall-clock span of the window
	LatencySum   sim.Duration
	BytesWritten int64
	BytesRead    int64
	EnergyPJ     float64
	Loads        int64
	Stores       int64
	Counters     map[string]int64
	// Phases is the telemetry phase breakdown of the window: per-kind
	// event counts and byte totals for the low-rate mechanism kinds
	// (drains, slice writes, GC epochs, log writes, ...) plus commits.
	Phases []telemetry.KindCount
	// Latency is the window's transaction critical-path latency
	// distribution (the engine's cumulative histogram differenced across
	// the window), from which tail percentiles fall out; mergeable across
	// cells via sim.Histogram.Merge, the same mechanism the service tier
	// uses for fleet-wide p99s.
	Latency sim.Histogram
}

// LatencyQuantile reports the q-th latency percentile of the window.
func (m Metrics) LatencyQuantile(q float64) sim.Duration {
	return m.Latency.Quantile(q)
}

// Throughput reports transactions per simulated second.
func (m Metrics) Throughput() float64 {
	if m.Span <= 0 {
		return 0
	}
	return float64(m.Txs) / m.Span.Seconds()
}

// AbortRate reports the fraction of transaction attempts that aborted
// (aborts / (commits + aborts)).
func (m Metrics) AbortRate() float64 {
	attempts := m.Txs + m.Aborts
	if attempts == 0 {
		return 0
	}
	return float64(m.Aborts) / float64(attempts)
}

// AvgLatency reports mean critical-path latency per transaction.
func (m Metrics) AvgLatency() sim.Duration {
	if m.Txs == 0 {
		return 0
	}
	return m.LatencySum / sim.Duration(m.Txs)
}

// WritesPerTx reports NVM bytes written per transaction.
func (m Metrics) WritesPerTx() float64 {
	if m.Txs == 0 {
		return 0
	}
	return float64(m.BytesWritten) / float64(m.Txs)
}

// EnergyPerTx reports NVM energy per transaction in picojoules.
func (m Metrics) EnergyPerTx() float64 {
	if m.Txs == 0 {
		return 0
	}
	return m.EnergyPJ / float64(m.Txs)
}

// takeSnapshot captures a system's accumulated accounting.
func takeSnapshot(sys *engine.System) engine.RunSnapshot { return sys.Snapshot() }

// window computes the metrics between two snapshots.
func window(before, after engine.RunSnapshot) Metrics {
	d := after.Delta(before)
	counters := d.CounterMap()
	return Metrics{
		Txs:          d.Txs,
		Aborts:       d.Aborts,
		Span:         sim.Duration(d.Span),
		LatencySum:   d.TxLatencySum,
		BytesWritten: counters[sim.StatNVMBytesWritten],
		BytesRead:    counters[sim.StatNVMBytesRead],
		EnergyPJ:     d.TotalEnergyPJ(),
		Loads:        d.Loads,
		Stores:       d.Stores,
		Counters:     counters,
	}
}

// Grid is a 2-D result table (rows × columns of float64 cells) with a
// caption, used to render every figure as text.
type Grid struct {
	Title   string
	RowName string
	Rows    []string
	Cols    []string
	Cells   [][]float64
	// Format formats one cell (default %.2f).
	Format string
}

// Cell returns the value at (row, col) by name.
func (g *Grid) Cell(row, col string) float64 {
	ri, ci := -1, -1
	for i, r := range g.Rows {
		if r == row {
			ri = i
		}
	}
	for j, c := range g.Cols {
		if c == col {
			ci = j
		}
	}
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("harness: no cell (%q, %q) in %q", row, col, g.Title))
	}
	return g.Cells[ri][ci]
}

// ColMean returns the arithmetic mean of a column.
func (g *Grid) ColMean(col string) float64 {
	ci := -1
	for j, c := range g.Cols {
		if c == col {
			ci = j
		}
	}
	if ci < 0 {
		panic("harness: unknown column " + col)
	}
	sum := 0.0
	for i := range g.Rows {
		sum += g.Cells[i][ci]
	}
	return sum / float64(len(g.Rows))
}

// Render writes the grid as an aligned text table.
func (g *Grid) Render(w io.Writer) {
	format := g.Format
	if format == "" {
		format = "%.2f"
	}
	fmt.Fprintf(w, "%s\n", g.Title)
	widths := make([]int, len(g.Cols)+1)
	widths[0] = len(g.RowName)
	for _, r := range g.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	cells := make([][]string, len(g.Rows))
	for i := range g.Rows {
		cells[i] = make([]string, len(g.Cols))
		for j := range g.Cols {
			cells[i][j] = fmt.Sprintf(format, g.Cells[i][j])
		}
	}
	for j, c := range g.Cols {
		widths[j+1] = len(c)
		for i := range g.Rows {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	line := func(parts []string) {
		var b strings.Builder
		for i, p := range parts {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], p)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	header := append([]string{g.RowName}, g.Cols...)
	line(header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total-2))
	for i, r := range g.Rows {
		line(append([]string{r}, cells[i]...))
	}
}

// String renders the grid to a string.
func (g *Grid) String() string {
	var b strings.Builder
	g.Render(&b)
	return b.String()
}

// geoMean computes the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
