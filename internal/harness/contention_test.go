package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/cc"
	"hoop/internal/engine"
)

// contentionQuickOpts shrinks the sweep for tests: the full grid is
// 7 schemes × 2 policies × 9 sweep points; quick mode keeps the grid
// shape but cuts transactions per cell.
func contentionQuickOpts(workers int) Options {
	return Options{Quick: true, Seed: 1, Workers: workers}
}

// TestContentionFigureQuickGolden locks the quick-mode contention grids
// to a checked-in golden, the same regime as TestQuickGridsGolden.
// Regenerate deliberately with:
//
//	go test ./internal/harness -run TestContentionFigureQuickGolden -update
func TestContentionFigureQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep is seconds-long")
	}
	tput, aborts, err := ContentionFigure(contentionQuickOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tput.Render(&b)
	b.WriteString("\n")
	aborts.Render(&b)
	got := b.String()

	path := filepath.Join("testdata", "contention_grids.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("quick contention grids diverged from golden %s.\nIf a model change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestContentionFigureWorkerDeterminism asserts the contention figure is
// bit-identical serial vs parallel: each cell owns its system and PRNGs,
// so only wall-clock may change with -workers.
func TestContentionFigureWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the sweep twice")
	}
	render := func(workers int) string {
		tput, aborts, err := ContentionFigure(contentionQuickOpts(workers))
		if err != nil {
			t.Fatal(err)
		}
		return tput.String() + "\n" + aborts.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Errorf("contention figure differs between workers=1 and workers=4:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestContentionAbortsObserved guards against a vacuous sweep: at the
// hottest sweep point, at least one scheme must see aborts under each
// policy — otherwise the figure's abort-rate panel measures nothing.
func TestContentionAbortsObserved(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulation cells")
	}
	for _, pol := range cc.Policies {
		m, err := runContentionCell(contentionCell{
			scheme:  engine.SchemeNative,
			policy:  pol,
			theta:   1.2,
			threads: 8,
			txs:     800,
			seed:    1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Aborts == 0 {
			t.Errorf("policy %s: no aborts at the hottest sweep point (theta=1.2, 8 threads)", pol)
		}
		if m.Txs == 0 {
			t.Errorf("policy %s: no committed transactions measured", pol)
		}
	}
}
