package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// TestCellCacheWarmRerun: a cold run populates the cache, a warm rerun
// executes zero cells, and the warm metrics are bit-identical — the
// property the CI cache-correctness job holds hoopbench to.
func TestCellCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Quick: true, Seed: 3, Workers: 2, CacheDir: dir}
	wls := []workload.Workload{quickWL("queue"), quickWL("hashmap")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP, engine.SchemeNative}

	cold, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cached != 0 {
		t.Fatalf("cold run reported %d cached cells", cold.Stats.Cached)
	}
	warm, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != warm.Stats.Cells || warm.Stats.Cells != len(wls)*len(schemes) {
		t.Fatalf("warm run cached %d/%d cells, want all %d", warm.Stats.Cached, warm.Stats.Cells, len(wls)*len(schemes))
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatalf("warm cache metrics diverge from cold run\ncold: %+v\nwarm: %+v", cold.Cells, warm.Cells)
	}
	if !strings.Contains(warm.Stats.String(), "cached") {
		t.Fatalf("stats string omits the cache count: %s", warm.Stats)
	}

	// Changing any key input — here the seed — must miss.
	opts2 := opts
	opts2.Seed = 4
	reseeded, err := RunMatrixOn(opts2, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Stats.Cached != 0 {
		t.Fatalf("reseeded run hit the cache (%d cells) despite a different seed", reseeded.Stats.Cached)
	}
}

// TestCellCacheCorruptionDegradesToMiss: corrupt entries re-execute
// instead of feeding wrong numbers, and a corrupt trace file fails loudly
// rather than replaying garbage.
func TestCellCacheCorruptionDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Quick: true, Seed: 3, Workers: 1, CacheDir: dir}
	wls := []workload.Workload{quickWL("queue")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP}

	cold, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("expected 2 cache entries, got %v (%v)", entries, err)
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != 0 {
		t.Fatalf("corrupt entries still hit: %d cached", warm.Stats.Cached)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatal("re-executed metrics diverge from cold run")
	}

	// Now corrupt the trace payload under a valid meta entry: the replay
	// stage must refuse it via the content hash.
	traces, err := filepath.Glob(filepath.Join(dir, "*.trc"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("expected 1 cached trace, got %v (%v)", traces, err)
	}
	if err := os.WriteFile(traces[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove the replay entry so the column must reload its trace file.
	for _, p := range entries {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), `"scheme"`) {
			os.Remove(p)
		}
	}
	if _, err := RunMatrixOn(opts, wls, schemes); err == nil || !strings.Contains(err.Error(), "content hash") {
		t.Fatalf("corrupt cached trace must fail its hash check, got %v", err)
	}
}

// TestCellCacheLRUEviction: with a byte cap (-cachemax), the least
// recently used entries are evicted whole — an evicted column re-executes
// with bit-identical numbers, while entries touched by the capped run
// survive and keep hitting.
func TestCellCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP}
	wlA := []workload.Workload{quickWL("queue")}
	wlB := []workload.Workload{quickWL("hashmap")}
	base := Options{Quick: true, Seed: 3, Workers: 1, CacheDir: dir}

	coldA, err := RunMatrixOn(base, wlA, schemes)
	if err != nil {
		t.Fatal(err)
	}
	sizeA := cacheDirSize(t, dir)
	if sizeA <= 0 {
		t.Fatal("cold run left an empty cache")
	}

	// Run column B under a cap that cannot hold both columns: A's entries
	// (older, untouched by this run) are evicted; B's, pinned as used,
	// survive.
	capped := base
	capped.CacheMax = sizeA
	if _, err := RunMatrixOn(capped, wlB, schemes); err != nil {
		t.Fatal(err)
	}
	// Only B's two entries (capture + replay) remain on disk.
	if entries, err := filepath.Glob(filepath.Join(dir, "*.json")); err != nil || len(entries) != 2 {
		t.Fatalf("expected A's entries evicted leaving 2, got %v (%v)", entries, err)
	}

	warmB, err := RunMatrixOn(capped, wlB, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warmB.Stats.Cached != warmB.Stats.Cells {
		t.Fatalf("surviving column cached %d/%d cells, want all", warmB.Stats.Cached, warmB.Stats.Cells)
	}

	rerunA, err := RunMatrixOn(base, wlA, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if rerunA.Stats.Cached != 0 {
		t.Fatalf("evicted column still hit the cache (%d cells)", rerunA.Stats.Cached)
	}
	if !reflect.DeepEqual(coldA.Cells, rerunA.Cells) {
		t.Fatal("re-executed metrics diverge from the pre-eviction run")
	}
}

// TestCellCachePrefixSharedCapture: a capture cached at a large
// transaction count serves a later matrix at a smaller count without
// re-capturing — the first scheme's cell prefix-replays instead — and the
// small run's numbers are bit-identical to an uncached small run.
func TestCellCachePrefixSharedCapture(t *testing.T) {
	dir := t.TempDir()
	wls := []workload.Workload{quickWL("queue")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP, engine.SchemeNative}
	big := Options{Quick: true, Seed: 3, Workers: 1, CacheDir: dir, TxsPerCell: 400}

	cold, err := RunMatrixOn(big, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Captures != 1 || cold.CapturesRun != 1 {
		t.Fatalf("cold run: %d captures, %d executed; want 1 and 1", cold.Captures, cold.CapturesRun)
	}

	small := big
	small.TxsPerCell = 150
	prefix, err := RunMatrixOn(small, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if prefix.CapturesRun != 0 {
		t.Fatalf("prefix run re-captured %d columns despite a longer cached capture", prefix.CapturesRun)
	}
	nocache := small
	nocache.CacheDir = ""
	direct, err := RunMatrixOn(nocache, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(prefix.Cells, direct.Cells) {
		t.Fatalf("prefix-replayed matrix diverges from uncached run\nprefix: %+v\ndirect: %+v", prefix.Cells, direct.Cells)
	}

	// A warm rerun at the small count comes entirely from cache.
	warm, err := RunMatrixOn(small, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != warm.Stats.Cells || warm.CapturesRun != 0 {
		t.Fatalf("warm prefix rerun cached %d/%d cells, executed %d captures", warm.Stats.Cached, warm.Stats.Cells, warm.CapturesRun)
	}
	if !reflect.DeepEqual(prefix.Cells, warm.Cells) {
		t.Fatal("warm prefix rerun diverges from its own cold pass")
	}

	// Asking for more transactions than any cached capture covers must
	// re-capture (and the grown capture then serves the big count again).
	bigger := big
	bigger.TxsPerCell = 600
	grown, err := RunMatrixOn(bigger, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if grown.CapturesRun != 1 {
		t.Fatalf("larger-txs run executed %d captures, want 1 (cached capture too short)", grown.CapturesRun)
	}
}

// TestCellCacheSweepsStaleTemps: opening the cache removes temp files
// orphaned by a dead run, but leaves fresh ones (a concurrent run may
// still be mid-rename) and real entries alone.
func TestCellCacheSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "abc.json.tmp123")
	fresh := filepath.Join(dir, "def.trc.tmp456")
	entry := filepath.Join(dir, "0ff.json")
	for _, p := range []string{stale, fresh, entry} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	cc, err := openCellCache(Options{CacheDir: dir})
	if err != nil || cc == nil {
		t.Fatalf("openCellCache: %v (%v)", cc, err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived the sweep: %v", err)
	}
	for _, p := range []string{fresh, entry} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("sweep removed %s: %v", filepath.Base(p), err)
		}
	}
}

// TestContentionCacheWarmRerun: the contention sweep memoizes per-cell,
// so a warm rerun reads every cell from cache and renders identical
// grids — the section-generic half of the -cachedir contract.
func TestContentionCacheWarmRerun(t *testing.T) {
	opts := Options{Quick: true, Seed: 3, Workers: 2, CacheDir: t.TempDir()}
	cache, err := opts.ensureCache()
	if err != nil {
		t.Fatal(err)
	}
	coldT, coldA, err := ContentionFigure(opts)
	if err != nil {
		t.Fatal(err)
	}
	coldHits := cache.stat().Hits
	warmT, warmA, err := ContentionFigure(opts)
	if err != nil {
		t.Fatal(err)
	}
	s := cache.stat()
	cells := len(coldT.Rows) * len(coldT.Cols)
	if s.Hits-coldHits != cells {
		t.Fatalf("warm contention rerun hit %d cells, want all %d", s.Hits-coldHits, cells)
	}
	if !reflect.DeepEqual(coldT, warmT) || !reflect.DeepEqual(coldA, warmA) {
		t.Fatal("warm contention grids diverge from cold run")
	}
}

// TestWearCacheWarmRerun: the wear report caches as a blob (kindWear).
func TestWearCacheWarmRerun(t *testing.T) {
	opts := Options{Quick: true, Seed: 3, CacheDir: t.TempDir(),
		WL: workload.Options{Keys: 4096, ValBytes: 64}}
	cache, err := opts.ensureCache()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Wear(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Wear(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stat().Hits != 1 {
		t.Fatalf("warm wear rerun recorded %d hits, want 1", cache.stat().Hits)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached wear report diverges\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

// cacheDirSize sums the cache entries' bytes.
func cacheDirSize(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}
