package harness

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// TestCellCacheWarmRerun: a cold run populates the cache, a warm rerun
// executes zero cells, and the warm metrics are bit-identical — the
// property the CI cache-correctness job holds hoopbench to.
func TestCellCacheWarmRerun(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Quick: true, Seed: 3, Workers: 2, CacheDir: dir}
	wls := []workload.Workload{quickWL("queue"), quickWL("hashmap")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP, engine.SchemeNative}

	cold, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cached != 0 {
		t.Fatalf("cold run reported %d cached cells", cold.Stats.Cached)
	}
	warm, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != warm.Stats.Cells || warm.Stats.Cells != len(wls)*len(schemes) {
		t.Fatalf("warm run cached %d/%d cells, want all %d", warm.Stats.Cached, warm.Stats.Cells, len(wls)*len(schemes))
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatalf("warm cache metrics diverge from cold run\ncold: %+v\nwarm: %+v", cold.Cells, warm.Cells)
	}
	if !strings.Contains(warm.Stats.String(), "cached") {
		t.Fatalf("stats string omits the cache count: %s", warm.Stats)
	}

	// Changing any key input — here the seed — must miss.
	opts2 := opts
	opts2.Seed = 4
	reseeded, err := RunMatrixOn(opts2, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Stats.Cached != 0 {
		t.Fatalf("reseeded run hit the cache (%d cells) despite a different seed", reseeded.Stats.Cached)
	}
}

// TestCellCacheCorruptionDegradesToMiss: corrupt entries re-execute
// instead of feeding wrong numbers, and a corrupt trace file fails loudly
// rather than replaying garbage.
func TestCellCacheCorruptionDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Quick: true, Seed: 3, Workers: 1, CacheDir: dir}
	wls := []workload.Workload{quickWL("queue")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP}

	cold, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("expected 2 cache entries, got %v (%v)", entries, err)
	}
	for _, p := range entries {
		if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cached != 0 {
		t.Fatalf("corrupt entries still hit: %d cached", warm.Stats.Cached)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatal("re-executed metrics diverge from cold run")
	}

	// Now corrupt the trace payload under a valid meta entry: the replay
	// stage must refuse it via the content hash.
	traces, err := filepath.Glob(filepath.Join(dir, "*.trc"))
	if err != nil || len(traces) != 1 {
		t.Fatalf("expected 1 cached trace, got %v (%v)", traces, err)
	}
	if err := os.WriteFile(traces[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove the replay entry so the column must reload its trace file.
	for _, p := range entries {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), `"scheme"`) {
			os.Remove(p)
		}
	}
	if _, err := RunMatrixOn(opts, wls, schemes); err == nil || !strings.Contains(err.Error(), "content hash") {
		t.Fatalf("corrupt cached trace must fail its hash check, got %v", err)
	}
}

// TestCellCacheLRUEviction: with a byte cap (-cachemax), the least
// recently used entries are evicted whole — an evicted column re-executes
// with bit-identical numbers, while entries touched by the capped run
// survive and keep hitting.
func TestCellCacheLRUEviction(t *testing.T) {
	dir := t.TempDir()
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP}
	wlA := []workload.Workload{quickWL("queue")}
	wlB := []workload.Workload{quickWL("hashmap")}
	base := Options{Quick: true, Seed: 3, Workers: 1, CacheDir: dir}

	coldA, err := RunMatrixOn(base, wlA, schemes)
	if err != nil {
		t.Fatal(err)
	}
	sizeA := cacheDirSize(t, dir)
	if sizeA <= 0 {
		t.Fatal("cold run left an empty cache")
	}

	// Run column B under a cap that cannot hold both columns: A's entries
	// (older, untouched by this run) are evicted; B's, pinned as used,
	// survive.
	capped := base
	capped.CacheMax = sizeA
	if _, err := RunMatrixOn(capped, wlB, schemes); err != nil {
		t.Fatal(err)
	}
	// Only B's two entries (capture + replay) remain on disk.
	if entries, err := filepath.Glob(filepath.Join(dir, "*.json")); err != nil || len(entries) != 2 {
		t.Fatalf("expected A's entries evicted leaving 2, got %v (%v)", entries, err)
	}

	warmB, err := RunMatrixOn(capped, wlB, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if warmB.Stats.Cached != warmB.Stats.Cells {
		t.Fatalf("surviving column cached %d/%d cells, want all", warmB.Stats.Cached, warmB.Stats.Cells)
	}

	rerunA, err := RunMatrixOn(base, wlA, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if rerunA.Stats.Cached != 0 {
		t.Fatalf("evicted column still hit the cache (%d cells)", rerunA.Stats.Cached)
	}
	if !reflect.DeepEqual(coldA.Cells, rerunA.Cells) {
		t.Fatal("re-executed metrics diverge from the pre-eviction run")
	}
}

// cacheDirSize sums the cache entries' bytes.
func cacheDirSize(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}
