package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden grid files from this run")

// TestQuickGridsGolden locks the rendered quick-mode figure grids to a
// checked-in golden file: performance work on the simulation core (page
// caches, fast paths, interned counters) must leave every measured number
// byte-identical. The worker-count determinism tests show serial ==
// parallel; this one shows today's code == the code the golden was
// recorded under. Regenerate deliberately with:
//
//	go test ./internal/harness -run TestQuickGridsGolden -update
func TestQuickGridsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	m, err := RunMatrixOn(Options{Quick: true, Seed: 1},
		[]workload.Workload{workload.HashMapWL(64), workload.RBTreeWL(64)},
		engine.AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, g := range []*Grid{Figure7a(m), Figure7b(m), Figure8(m), Figure9(m)} {
		g.Render(&b)
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "quick_grids.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("quick-mode grids diverged from golden %s.\nThe optimization pass must not move measured numbers; if a simulation-model change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestSweepGridsGolden locks the two sweep sections' quick-mode grids —
// throughput vs value size (YCSB-A, 64 B–64 KB) and throughput vs
// range-scan fraction — to a golden file, and holds the sweep pipeline to
// the same worker-count bit-identity bar as the figure matrix.
func TestSweepGridsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("two full sweep matrices")
	}
	render := func(workers int) string {
		var b strings.Builder
		for _, f := range []func(Options) (*Grid, error){SweepValSize, SweepScanFrac} {
			g, err := f(Options{Quick: true, Seed: 1, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			g.Render(&b)
			b.WriteString("\n")
		}
		return b.String()
	}
	got := render(1)
	if got4 := render(4); got4 != got {
		t.Fatalf("sweep grids differ between 1 and 4 workers\n1 worker:\n%s\n4 workers:\n%s", got, got4)
	}

	path := filepath.Join("testdata", "sweep_grids.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("sweep grids diverged from golden %s; if a simulation-model change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestYCSBSuiteWorkerDeterminism holds the registry-built YCSB A–F suite to
// the figure matrix's worker-count bit-identity bar: the rendered throughput
// grid and headline block must be byte-identical at -workers 1 and
// -workers 4. CI runs it under the race detector, so the cells are sized
// small.
func TestYCSBSuiteWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6x7 YCSB matrix, twice")
	}
	render := func(workers int) string {
		opts := Options{Quick: true, Seed: 1, Workers: workers,
			TxsPerCell: 200, WL: workload.Options{Keys: 256}}
		m, err := RunMatrixOn(opts, workload.YCSBSuite(opts.WL), engine.AllSchemes)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		Figure7a(m).Render(&b)
		b.WriteString(FormatHeadline(ComputeHeadline(m)))
		return b.String()
	}
	got := render(1)
	if got4 := render(4); got4 != got {
		t.Fatalf("YCSB suite output differs between 1 and 4 workers\n1 worker:\n%s\n4 workers:\n%s", got, got4)
	}
}
