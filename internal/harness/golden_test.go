package harness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden grid files from this run")

// TestQuickGridsGolden locks the rendered quick-mode figure grids to a
// checked-in golden file: performance work on the simulation core (page
// caches, fast paths, interned counters) must leave every measured number
// byte-identical. The worker-count determinism tests show serial ==
// parallel; this one shows today's code == the code the golden was
// recorded under. Regenerate deliberately with:
//
//	go test ./internal/harness -run TestQuickGridsGolden -update
func TestQuickGridsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	m, err := RunMatrixOn(Options{Quick: true, Seed: 1},
		[]workload.Workload{workload.HashMapWL(64), workload.RBTreeWL(64)},
		engine.AllSchemes)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, g := range []*Grid{Figure7a(m), Figure7b(m), Figure8(m), Figure9(m)} {
		g.Render(&b)
		b.WriteString("\n")
	}
	got := b.String()

	path := filepath.Join("testdata", "quick_grids.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("quick-mode grids diverged from golden %s.\nThe optimization pass must not move measured numbers; if a simulation-model change is intentional, regenerate with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}
