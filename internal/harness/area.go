package harness

import (
	"fmt"
	"io"
)

// Area model (§III-H): the paper runs CACTI 6.5 against a Sandy Bridge
// package (64 KB L1 + 256 KB L2 per core, 20 MB LLC, integrated memory
// controller) and reports that HOOP's added buffers — the 2 MB mapping
// table, 1 KB per-core OOP data buffers, and the 128 KB eviction buffer —
// cost 4.25% extra area.
//
// This is a small analytic stand-in: SRAM area scales with capacity at a
// 32 nm-class density, and the denominator is the cache + memory-controller
// subsystem the new buffers join.

// AreaConfig parameterizes the model.
type AreaConfig struct {
	Cores           int
	L1KBPerCore     int
	L2KBPerCore     int
	LLCMB           int
	MCAreaMM2       float64 // integrated memory controller logic
	SRAMmm2PerMB    float64 // 32 nm-class SRAM density incl. periphery
	TableMB         float64 // HOOP mapping table
	EvictBufKB      int
	OOPBufKBPerCore int
}

// DefaultAreaConfig mirrors the paper's Sandy Bridge reference package.
func DefaultAreaConfig() AreaConfig {
	return AreaConfig{
		Cores:           8,
		L1KBPerCore:     64,
		L2KBPerCore:     256,
		LLCMB:           20,
		MCAreaMM2:       30.0, // uncore + integrated memory controller
		SRAMmm2PerMB:    1.1,
		TableMB:         2.0,
		EvictBufKB:      128,
		OOPBufKBPerCore: 1,
	}
}

// AreaOverhead computes HOOP's added buffer area relative to the cache +
// memory-controller subsystem.
func AreaOverhead(c AreaConfig) (addedMM2, baseMM2, overhead float64) {
	mb := func(kb int) float64 { return float64(kb) / 1024 }
	baseSRAM := float64(c.Cores)*(mb(c.L1KBPerCore)+mb(c.L2KBPerCore)) + float64(c.LLCMB)
	baseMM2 = baseSRAM*c.SRAMmm2PerMB + c.MCAreaMM2
	addedMB := c.TableMB + mb(c.EvictBufKB) + float64(c.Cores)*mb(c.OOPBufKBPerCore)
	addedMM2 = addedMB * c.SRAMmm2PerMB
	return addedMM2, baseMM2, addedMM2 / baseMM2
}

// RenderArea writes the §III-H area estimate.
func RenderArea(w io.Writer) {
	c := DefaultAreaConfig()
	added, base, ovh := AreaOverhead(c)
	fmt.Fprintln(w, "Area overhead (§III-H, CACTI-class SRAM model):")
	fmt.Fprintf(w, "  reference package: %d cores x (%d KB L1 + %d KB L2), %d MB LLC, IMC -> %.1f mm^2\n",
		c.Cores, c.L1KBPerCore, c.L2KBPerCore, c.LLCMB, base)
	fmt.Fprintf(w, "  HOOP buffers: %.1f MB mapping table + %d KB eviction buffer + %dx%d KB OOP buffers -> %.2f mm^2\n",
		c.TableMB, c.EvictBufKB, c.Cores, c.OOPBufKBPerCore, added)
	fmt.Fprintf(w, "  overhead: %.2f%%  (paper: 4.25%%)\n", ovh*100)
}
