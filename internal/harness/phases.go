package harness

import (
	"fmt"
	"strings"

	"hoop/internal/telemetry"
)

// FormatPhaseBreakdown renders the per-scheme telemetry phase mix of a
// matrix: for every scheme, each phase-kind's event rate per 1000
// committed transactions, aggregated over all workloads. The counts come
// from the counting sink every cell carries, so the breakdown costs no
// extra simulation. Native reports no mechanism events — it has no
// persistence machinery to account for.
func FormatPhaseBreakdown(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Telemetry phase breakdown (events per 1000 txs, all workloads):")
	for _, s := range m.Schemes {
		var txs int64
		agg := map[telemetry.Kind]int64{}
		for _, w := range m.Workloads {
			c := m.Cells[w][s]
			txs += c.Txs
			for _, kc := range c.Phases {
				agg[kc.Kind] += kc.N
			}
		}
		if txs == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s", s)
		any := false
		for k := telemetry.Kind(1); int(k) < telemetry.NumKinds; k++ {
			if k == telemetry.KindTxCommit || agg[k] == 0 {
				continue
			}
			fmt.Fprintf(&b, " %s=%.1f", k, float64(agg[k])*1000/float64(txs))
			any = true
		}
		if !any {
			b.WriteString(" (no mechanism events)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
