package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/workload"
)

func sampleGrid() *Grid {
	return &Grid{
		Title:   "sample",
		RowName: "workload",
		Rows:    []string{"a", "b"},
		Cols:    []string{"x", "y", "z"},
		Cells:   [][]float64{{1, 2, 3}, {4, 5, 6}},
	}
}

func TestGridJSONRoundtrip(t *testing.T) {
	g := sampleGrid()
	data, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := GridFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != g.Title || got.Cell("b", "y") != 5 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestGridFromJSONValidates(t *testing.T) {
	if _, err := GridFromJSON([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if _, err := GridFromJSON([]byte(`{"rows":["a"],"cols":["x"],"cells":[]}`)); err == nil {
		t.Fatal("row/cell mismatch must fail")
	}
	if _, err := GridFromJSON([]byte(`{"rows":["a"],"cols":["x","y"],"cells":[[1]]}`)); err == nil {
		t.Fatal("col/cell mismatch must fail")
	}
}

func TestSaveGridJSON(t *testing.T) {
	dir := t.TempDir()
	if err := SaveGridJSON(filepath.Join(dir, "sub"), "fig", sampleGrid()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "sub", "fig.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GridFromJSON(data); err != nil {
		t.Fatal(err)
	}
}

func TestRenderBars(t *testing.T) {
	var b strings.Builder
	g := sampleGrid()
	g.RenderBars(&b)
	out := b.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, "sample") {
		t.Fatalf("bars missing: %q", out)
	}
	// The maximum value gets the longest bar.
	lines := strings.Split(out, "\n")
	maxHashes, maxLine := 0, ""
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes, maxLine = n, l
		}
	}
	if !strings.Contains(maxLine, "6.00") {
		t.Fatalf("longest bar is not the max value: %q", maxLine)
	}
	// Empty grid does not panic.
	empty := &Grid{Title: "e", Rows: []string{"r"}, Cols: []string{"c"}, Cells: [][]float64{{0}}}
	empty.RenderBars(&b)
}

func TestGridRenderAligned(t *testing.T) {
	var b strings.Builder
	sampleGrid().Render(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines: %q", len(lines), b.String())
	}
}

func TestColMeanAndCellPanics(t *testing.T) {
	g := sampleGrid()
	if got := g.ColMean("y"); got != 3.5 {
		t.Fatalf("ColMean = %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cell must panic")
		}
	}()
	g.Cell("nope", "x")
}

func TestWearUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	rep, err := Wear(Options{Quick: true, Seed: 1, WL: workload.Options{Keys: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	RenderWear(&b, rep)
	t.Log("\n" + b.String())
	if rep.BucketsTouched < 8 {
		t.Fatalf("wear touched only %d buckets; round-robin should spread", rep.BucketsTouched)
	}
	if rep.CV > 1.5 {
		t.Fatalf("wear too skewed: CV=%.2f", rep.CV)
	}
}

func TestRunSectionsQuickSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("seconds-long")
	}
	dir := t.TempDir()
	var b strings.Builder
	_, err := RunSections(&b, Options{Quick: true, Seed: 1, Charts: true, ArtifactDir: dir,
		WL: workload.Options{Keys: 4096}},
		[]string{"tables", "area", "fig11"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, needle := range []string{"Table I", "Table II", "Table III", "overhead", "recovery"} {
		if !strings.Contains(out, needle) {
			t.Errorf("report missing %q", needle)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "figure11.json")); err != nil {
		t.Errorf("figure11 artifact missing: %v", err)
	}
}
