package harness

import (
	"hoop/internal/engine"
	"hoop/internal/workload"
)

// Ablation quantifies what HOOP's two headline optimizations buy — data
// packing (§III-C, Figure 3) and GC data coalescing (§III-E) — plus the
// §III-I future-work mapping-entry condensing, by running HOOP with each
// mechanism disabled (or, for condensing, enabled) on a representative
// workload mix.
func Ablation(opts Options) (*Grid, error) {
	variants := []struct {
		name string
		mut  func(*engine.Config)
	}{
		{"HOOP (full)", nil},
		{"no packing", func(c *engine.Config) { c.Hoop.DisablePacking = true }},
		{"no coalescing", func(c *engine.Config) { c.Hoop.DisableCoalescing = true }},
		{"no packing+coal.", func(c *engine.Config) {
			c.Hoop.DisablePacking = true
			c.Hoop.DisableCoalescing = true
		}},
		{"condensed table", func(c *engine.Config) { c.Hoop.CondenseMapping = true }},
	}
	workloads := []workload.Workload{
		workload.MustBuild("hashmap", opts.WL),
		workload.MustBuild("btree", opts.WL),
		workload.MustBuild("tpcc", opts.WL),
	}
	txs := opts.txPerCell() / 2

	variants = append(variants,
		struct {
			name string
			mut  func(*engine.Config)
		}{"2 controllers", func(c *engine.Config) { c.Hoop.Controllers = 2 }},
		struct {
			name string
			mut  func(*engine.Config)
		}{"4 controllers", func(c *engine.Config) { c.Hoop.Controllers = 4 }},
	)
	g := &Grid{
		Title:   "Ablation: HOOP variants (throughput and write traffic relative to full HOOP)",
		RowName: "variant",
		Format:  "%.2f",
	}
	for _, wl := range workloads {
		g.Cols = append(g.Cols, wl.Name+" tput", wl.Name+" traffic")
	}
	var cells []Cell
	for _, v := range variants {
		for _, wl := range workloads {
			cells = append(cells, Cell{
				Scheme: engine.SchemeHOOP, Workload: wl, Txs: txs, Seed: opts.Seed + 13, Mut: v.mut,
			})
		}
	}
	opts.attachTrace("ablation", cells)
	mets, _, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	base := mets[:len(workloads)] // variant 0 is full HOOP
	for vi, v := range variants {
		g.Rows = append(g.Rows, v.name)
		row := make([]float64, 0, 2*len(workloads))
		for wi := range workloads {
			met := mets[vi*len(workloads)+wi]
			row = append(row,
				met.Throughput()/base[wi].Throughput(),
				met.WritesPerTx()/base[wi].WritesPerTx())
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}
