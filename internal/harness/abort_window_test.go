package harness

import (
	"math"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// TestMetricsAbortWindowing asserts the harness measurement window carries
// abort accounting end to end: aborts inside the window land in
// Metrics.Aborts (and AbortRate), aborts before the window do not.
func TestMetricsAbortWindowing(t *testing.T) {
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Abortable = true
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NewEnv(0)
	runTx := func(abort bool) {
		env.TxBegin()
		env.WriteWord(mem.PAddr(0x4000), 7)
		if abort {
			env.TxAbort()
		} else {
			env.TxEnd()
		}
	}
	// Pre-window abort that must not be measured.
	runTx(true)
	before := takeSnapshot(sys)
	runTx(true)
	runTx(false)
	runTx(true)
	runTx(false)
	runTx(false)
	m := window(before, takeSnapshot(sys))
	if m.Aborts != 2 {
		t.Errorf("Metrics.Aborts = %d, want 2", m.Aborts)
	}
	if m.Txs != 3 {
		t.Errorf("Metrics.Txs = %d, want 3", m.Txs)
	}
	if got, want := m.AbortRate(), 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("AbortRate() = %v, want %v", got, want)
	}
}

// TestAbortRateEmptyWindow pins the degenerate case: an empty window must
// report a zero abort rate, not NaN.
func TestAbortRateEmptyWindow(t *testing.T) {
	var m Metrics
	if got := m.AbortRate(); got != 0 {
		t.Errorf("AbortRate() on empty window = %v, want 0", got)
	}
}
