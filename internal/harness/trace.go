package harness

import (
	"bytes"
	"fmt"
	"io"

	"hoop/internal/telemetry"
)

// TraceCollector gathers one JSONL telemetry trace per cell and writes
// them out as a single stream. Each attached cell gets a private buffered
// sink (cells run one-per-worker, so no locking is needed); WriteTo then
// concatenates the buffers in attach order. Because attach order is the
// deterministic cell-construction order and each cell's event stream is a
// function of its seed alone, the combined output is byte-identical for
// every RunCells worker count.
type TraceCollector struct {
	// Mask selects the kinds each cell's sink subscribes to; zero means
	// telemetry.MaskTrace.
	Mask  telemetry.Mask
	cells []*cellTrace
}

type cellTrace struct {
	label string
	buf   bytes.Buffer
	sink  *telemetry.JSONLSink
}

// attach wires one cell to a fresh trace buffer. It must be called from
// the (serial) cell-construction phase, before RunCells.
func (tc *TraceCollector) attach(label string, c *Cell) {
	ct := &cellTrace{label: label}
	ct.sink = telemetry.NewJSONLSink(&ct.buf)
	mask := tc.Mask
	if mask == 0 {
		mask = telemetry.MaskTrace
	}
	c.Sink, c.SinkMask = ct.sink, mask
	tc.cells = append(tc.cells, ct)
}

// Cells reports how many cells have been attached so far.
func (tc *TraceCollector) Cells() int { return len(tc.cells) }

// WriteTo implements io.WriterTo: every cell's trace in attach order, each
// preceded by a {"cell":"<label>"} marker line. Marker lines parse as JSON
// but carry no "k" field, so event decoders skip them. Call it only after
// every RunCells batch has returned.
func (tc *TraceCollector) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, ct := range tc.cells {
		if err := ct.sink.Flush(); err != nil {
			return n, fmt.Errorf("harness: trace for %s: %w", ct.label, err)
		}
		m, err := fmt.Fprintf(w, "{\"cell\":%q}\n", ct.label)
		n += int64(m)
		if err != nil {
			return n, err
		}
		k, err := ct.buf.WriteTo(w)
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// attachTrace wires every cell in the batch to o.Trace (no-op when tracing
// is off). The label embeds the section so hooptop can group timelines.
func (o Options) attachTrace(section string, cells []Cell) {
	if o.Trace == nil {
		return
	}
	for i := range cells {
		label := fmt.Sprintf("%s/%s/%s", section, cells[i].Workload.Name, cells[i].Scheme)
		o.Trace.attach(label, &cells[i])
	}
}
