package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// cacheSchema versions the on-disk cell cache. Bump it whenever the
// simulator's measured semantics change in a way the config string cannot
// express (engine scheduling, scheme internals, metric definitions): the
// version participates in every key, so a bump invalidates everything.
const cacheSchema = "hoop-cellcache/v1"

// cellCache memoizes matrix cells on disk. A capture cell is keyed by
// everything that determines its op stream and metrics (workload, seed,
// txs, workload tuning, full engine config); a replay cell is keyed by the
// capture's content hash plus its own config. Cached metrics round-trip
// through JSON exactly (sim.Histogram included), so a warm rerun renders
// byte-identical grids. All cache I/O happens on the orchestrator
// goroutine between cell batches — workers never touch it.
type cellCache struct {
	dir    string
	hits   int
	misses int
}

// openCellCache returns nil when caching is off. Tracing disables the
// cache: a cached cell executes nothing, so it cannot feed a JSONL sink.
func openCellCache(opts Options) (*cellCache, error) {
	if opts.CacheDir == "" || opts.Trace != nil {
		return nil, nil
	}
	if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: -cachedir: %w", err)
	}
	return &cellCache{dir: opts.CacheDir}, nil
}

// configCacheKey canonicalizes the post-Mut engine config. Config is all
// value fields, so %+v is deterministic — except SchemeOpts, whose map
// iteration order is not: cells carrying SchemeOpts are simply not cached.
func configCacheKey(scheme string, mut func(*engine.Config)) (string, bool) {
	cfg := engine.DefaultConfig(scheme)
	if mut != nil {
		mut(&cfg)
	}
	if cfg.SchemeOpts != nil {
		return "", false
	}
	return fmt.Sprintf("%+v", cfg), true
}

func (cc *cellCache) captureKey(c Cell) (string, bool) {
	if c.Sink != nil {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.Mut)
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\ncapture\nworkload=%s\nseed=%d\ntxs=%d\ntuning=%+v\nconfig=%s\n",
		cacheSchema, c.Workload.Name, c.Seed, c.Txs, workload.Tuning, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

func (cc *cellCache) replayKey(c Cell, col *matrixColumn) (string, bool) {
	if c.Sink != nil || col.hash == "" {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.Mut)
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nreplay\ntrace=%s\nsetupops=%d\ntxs=%d\nconfig=%s\n",
		cacheSchema, col.hash, col.setupOps, c.Txs, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// captureEntry is the JSON sidecar of a cached capture cell; the trace
// wire bytes live next to it in <key>.trc.
type captureEntry struct {
	Schema    string  `json:"schema"`
	Workload  string  `json:"workload"`
	Threads   int     `json:"threads"`
	SetupOps  int     `json:"setup_ops"`
	TraceHash string  `json:"trace_hash"`
	Metrics   Metrics `json:"metrics"`
}

type replayEntry struct {
	Schema  string  `json:"schema"`
	Scheme  string  `json:"scheme"`
	Metrics Metrics `json:"metrics"`
}

func (cc *cellCache) tracePath(key string) string {
	return filepath.Join(cc.dir, key+".trc")
}

// loadCapture returns the cached capture entry, or miss on any problem —
// missing files, wrong schema, wrong workload — so corruption degrades to
// re-execution, never to wrong numbers.
func (cc *cellCache) loadCapture(key, workloadName string) (*captureEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.misses++
		return nil, false
	}
	var e captureEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Workload != workloadName ||
		e.Threads <= 0 || e.TraceHash == "" {
		cc.misses++
		return nil, false
	}
	if _, err := os.Stat(cc.tracePath(key)); err != nil {
		cc.misses++
		return nil, false
	}
	cc.hits++
	return &e, true
}

func (cc *cellCache) storeCapture(key string, col *matrixColumn, wire []byte, met Metrics) error {
	e := captureEntry{
		Schema:    cacheSchema,
		Workload:  col.workload,
		Threads:   col.threads,
		SetupOps:  col.setupOps,
		TraceHash: col.hash,
		Metrics:   met,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".trc", wire); err != nil {
		return err
	}
	return cc.writeFile(key+".json", data)
}

func (cc *cellCache) loadReplay(key string) (Metrics, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.misses++
		return Metrics{}, false
	}
	var e replayEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema {
		cc.misses++
		return Metrics{}, false
	}
	cc.hits++
	return e.Metrics, true
}

func (cc *cellCache) storeReplay(key, scheme string, met Metrics) error {
	data, err := json.Marshal(replayEntry{Schema: cacheSchema, Scheme: scheme, Metrics: met})
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	return cc.writeFile(key+".json", data)
}

// writeFile writes via a temp file + rename so an interrupted run never
// leaves a half-written entry a later run could load.
func (cc *cellCache) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(cc.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(cc.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	return nil
}
