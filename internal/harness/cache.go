package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hoop/internal/engine"
)

// cacheSchema versions the on-disk cell cache. Bump it whenever the
// simulator's measured semantics change in a way the config string cannot
// express (engine scheduling, scheme internals, metric definitions): the
// version participates in every key, so a bump invalidates everything.
// v2: workload identity moved from the global Tuning to per-workload
// Options, and per-thread runner seeds changed to engine.ShardSeed.
const cacheSchema = "hoop-cellcache/v2"

// cellCache memoizes matrix cells on disk. A capture cell is keyed by
// everything that determines its op stream and metrics (workload name and
// resolved options, seed, txs, full engine config); a replay cell is keyed
// by the capture's content hash plus its own config. Cached metrics
// round-trip through JSON exactly (sim.Histogram included), so a warm
// rerun renders byte-identical grids. All cache I/O happens on the
// orchestrator goroutine between cell batches — workers never touch it.
type cellCache struct {
	dir    string
	max    int64 // byte cap; <= 0 means unlimited
	hits   int
	misses int
	// used marks keys loaded or stored during this run: eviction skips
	// them, so a tiny cap can never delete a trace a later replay batch
	// of the same run still needs.
	used map[string]bool
}

// openCellCache returns nil when caching is off. Tracing disables the
// cache: a cached cell executes nothing, so it cannot feed a JSONL sink.
func openCellCache(opts Options) (*cellCache, error) {
	if opts.CacheDir == "" || opts.Trace != nil {
		return nil, nil
	}
	if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: -cachedir: %w", err)
	}
	return &cellCache{dir: opts.CacheDir, max: opts.CacheMax, used: map[string]bool{}}, nil
}

// configCacheKey canonicalizes the post-Mut engine config. Config is all
// value fields, so %+v is deterministic — except SchemeOpts, whose map
// iteration order is not: cells carrying SchemeOpts are simply not cached.
func configCacheKey(scheme string, mut func(*engine.Config)) (string, bool) {
	cfg := engine.DefaultConfig(scheme)
	if mut != nil {
		mut(&cfg)
	}
	if cfg.SchemeOpts != nil {
		return "", false
	}
	return fmt.Sprintf("%+v", cfg), true
}

func (cc *cellCache) captureKey(c Cell) (string, bool) {
	if c.Sink != nil {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.mut())
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\ncapture\nworkload=%s\nseed=%d\ntxs=%d\nopts=%+v\nconfig=%s\n",
		cacheSchema, c.Workload.Name, c.Seed, c.Txs, c.Workload.Opts, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

func (cc *cellCache) replayKey(c Cell, col *matrixColumn) (string, bool) {
	if c.Sink != nil || col.hash == "" {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.mut())
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nreplay\ntrace=%s\nsetupops=%d\ntxs=%d\nconfig=%s\n",
		cacheSchema, col.hash, col.setupOps, c.Txs, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// captureEntry is the JSON sidecar of a cached capture cell; the trace
// wire bytes live next to it in <key>.trc.
type captureEntry struct {
	Schema    string  `json:"schema"`
	Workload  string  `json:"workload"`
	Threads   int     `json:"threads"`
	SetupOps  int     `json:"setup_ops"`
	TraceHash string  `json:"trace_hash"`
	Metrics   Metrics `json:"metrics"`
}

type replayEntry struct {
	Schema  string  `json:"schema"`
	Scheme  string  `json:"scheme"`
	Metrics Metrics `json:"metrics"`
}

func (cc *cellCache) tracePath(key string) string {
	return filepath.Join(cc.dir, key+".trc")
}

// loadCapture returns the cached capture entry, or miss on any problem —
// missing files, wrong schema, wrong workload — so corruption degrades to
// re-execution, never to wrong numbers.
func (cc *cellCache) loadCapture(key, workloadName string) (*captureEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.misses++
		return nil, false
	}
	var e captureEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Workload != workloadName ||
		e.Threads <= 0 || e.TraceHash == "" {
		cc.misses++
		return nil, false
	}
	if _, err := os.Stat(cc.tracePath(key)); err != nil {
		cc.misses++
		return nil, false
	}
	cc.hits++
	cc.markUsed(key)
	return &e, true
}

func (cc *cellCache) storeCapture(key string, col *matrixColumn, wire []byte, met Metrics) error {
	e := captureEntry{
		Schema:    cacheSchema,
		Workload:  col.workload,
		Threads:   col.threads,
		SetupOps:  col.setupOps,
		TraceHash: col.hash,
		Metrics:   met,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".trc", wire); err != nil {
		return err
	}
	if err := cc.writeFile(key+".json", data); err != nil {
		return err
	}
	cc.markUsed(key)
	return cc.enforceMax()
}

func (cc *cellCache) loadReplay(key string) (Metrics, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.misses++
		return Metrics{}, false
	}
	var e replayEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema {
		cc.misses++
		return Metrics{}, false
	}
	cc.hits++
	cc.markUsed(key)
	return e.Metrics, true
}

func (cc *cellCache) storeReplay(key, scheme string, met Metrics) error {
	data, err := json.Marshal(replayEntry{Schema: cacheSchema, Scheme: scheme, Metrics: met})
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".json", data); err != nil {
		return err
	}
	cc.markUsed(key)
	return cc.enforceMax()
}

// markUsed records that this run touched key — it is pinned against
// eviction for the rest of the run — and refreshes the entry's file
// timestamps, which are the cache's LRU clock.
func (cc *cellCache) markUsed(key string) {
	cc.used[key] = true
	now := time.Now()
	for _, name := range []string{key + ".json", key + ".trc"} {
		path := filepath.Join(cc.dir, name)
		if _, err := os.Stat(path); err == nil {
			os.Chtimes(path, now, now)
		}
	}
}

// enforceMax evicts least-recently-used entries until the cache fits the
// byte cap. Entries are whole key groups — a capture's <key>.json and
// <key>.trc leave together — ordered by newest file modification time
// (loads refresh it via markUsed), with the key as a deterministic
// tiebreak. Keys used during this run are pinned. Eviction failures
// degrade to a larger cache, never to an error: the cache is an
// optimization, and a stale entry is re-keyed or re-validated on load.
func (cc *cellCache) enforceMax() error {
	if cc.max <= 0 {
		return nil
	}
	ents, err := os.ReadDir(cc.dir)
	if err != nil {
		return nil
	}
	type group struct {
		key   string
		size  int64
		mtime time.Time
		files []string
	}
	groups := map[string]*group{}
	var total int64
	for _, ent := range ents {
		name := ent.Name()
		ext := filepath.Ext(name)
		if ent.IsDir() || (ext != ".json" && ext != ".trc") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(name, ext)
		g := groups[key]
		if g == nil {
			g = &group{key: key}
			groups[key] = g
		}
		g.size += info.Size()
		g.files = append(g.files, name)
		if mt := info.ModTime(); mt.After(g.mtime) {
			g.mtime = mt
		}
		total += info.Size()
	}
	if total <= cc.max {
		return nil
	}
	order := make([]*group, 0, len(groups))
	for _, g := range groups {
		if !cc.used[g.key] {
			order = append(order, g)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].mtime.Equal(order[j].mtime) {
			return order[i].mtime.Before(order[j].mtime)
		}
		return order[i].key < order[j].key
	})
	for _, g := range order {
		if total <= cc.max {
			break
		}
		for _, f := range g.files {
			os.Remove(filepath.Join(cc.dir, f))
		}
		total -= g.size
	}
	return nil
}

// writeFile writes via a temp file + rename so an interrupted run never
// leaves a half-written entry a later run could load.
func (cc *cellCache) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(cc.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(cc.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	return nil
}
