package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hoop/internal/engine"
)

// cacheSchema versions the on-disk cell cache. Bump it whenever the
// simulator's measured semantics change in a way the config string cannot
// express (engine scheduling, scheme internals, metric definitions): the
// version participates in every key, so a bump invalidates everything.
// v2: workload identity moved from the global Tuning to per-workload
// Options, and per-thread runner seeds changed to engine.ShardSeed.
// v3: traces store in the compact wire format, capture keys dropped the
// txs field (one capture serves every prefix), and the cache went
// section-generic (direct, contention, and wear entries joined
// capture/replay).
const cacheSchema = "hoop-cellcache/v3"

// Entry kinds. Each kind's key string starts with its name, so kinds can
// never alias each other even with otherwise identical fields.
const (
	kindCapture    = "capture"
	kindReplay     = "replay"
	kindDirect     = "direct"
	kindContention = "contention"
	kindWear       = "wear"
)

// cacheStats counts one section's cache traffic. Bytes cover the files
// this layer reads and writes (JSON sidecars and trace wires).
type cacheStats struct {
	Hits, Misses, Evictions int
	BytesRead, BytesWritten int64
}

// cellCache memoizes harness cells on disk. A capture cell is keyed by
// everything that determines its op stream except the transaction count
// (a capture at T transactions serves any prefix T' <= T); replay,
// direct, contention, and wear entries are keyed by their full inputs
// including txs. Cached metrics round-trip through JSON exactly
// (sim.Histogram included), so a warm rerun renders byte-identical grids.
// All cache I/O happens on the orchestrator goroutine between cell
// batches — workers never touch it.
type cellCache struct {
	dir string
	max int64 // byte cap; <= 0 means unlimited
	// used marks keys loaded or stored during this run: eviction skips
	// them, so a tiny cap can never delete a trace a later replay batch
	// of the same run still needs.
	used map[string]bool
	// section labels hit/miss attribution; RunSections rotates it.
	section string
	order   []string
	stats   map[string]*cacheStats
}

// staleTempAge is how old an orphaned *.tmp* file must be before the
// sweep on cache open deletes it. Temps live for milliseconds (write +
// rename); an hour-old temp is from a dead run, but a fresh one may
// belong to a concurrent run sharing the cache dir.
const staleTempAge = time.Hour

// openCellCache returns nil when caching is off. Tracing disables the
// cache: a cached cell executes nothing, so it cannot feed a JSONL sink.
func openCellCache(opts Options) (*cellCache, error) {
	if opts.CacheDir == "" || opts.Trace != nil {
		return nil, nil
	}
	if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("harness: -cachedir: %w", err)
	}
	cc := &cellCache{dir: opts.CacheDir, max: opts.CacheMax, used: map[string]bool{}, stats: map[string]*cacheStats{}}
	cc.sweepTemps()
	return cc, nil
}

// sweepTemps deletes stale temp files orphaned by runs that died between
// CreateTemp and the rename in writeFile.
func (cc *cellCache) sweepTemps() {
	ents, err := os.ReadDir(cc.dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-staleTempAge)
	for _, ent := range ents {
		if ent.IsDir() || !strings.Contains(ent.Name(), ".tmp") {
			continue
		}
		info, err := ent.Info()
		if err == nil && info.ModTime().Before(cutoff) {
			os.Remove(filepath.Join(cc.dir, ent.Name()))
		}
	}
}

// setSection switches hit/miss attribution; "" falls back to "run".
func (cc *cellCache) setSection(name string) {
	if cc != nil {
		cc.section = name
	}
}

func (cc *cellCache) stat() *cacheStats {
	name := cc.section
	if name == "" {
		name = "run"
	}
	s := cc.stats[name]
	if s == nil {
		s = &cacheStats{}
		cc.stats[name] = s
		cc.order = append(cc.order, name)
	}
	return s
}

// statsReport renders the per-section accounting block for the end-of-run
// report; empty when the cache saw no traffic.
func (cc *cellCache) statsReport() string {
	if cc == nil || len(cc.order) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Cell cache (%s):\n", cc.dir)
	var tot cacheStats
	for _, name := range cc.order {
		s := cc.stats[name]
		fmt.Fprintf(&b, "  %-14s %d hits, %d misses, %s read, %s written, %d evicted\n",
			name+":", s.Hits, s.Misses, fmtBytes(s.BytesRead), fmtBytes(s.BytesWritten), s.Evictions)
		tot.Hits += s.Hits
		tot.Misses += s.Misses
		tot.Evictions += s.Evictions
		tot.BytesRead += s.BytesRead
		tot.BytesWritten += s.BytesWritten
	}
	if len(cc.order) > 1 {
		fmt.Fprintf(&b, "  %-14s %d hits, %d misses, %s read, %s written, %d evicted\n",
			"total:", tot.Hits, tot.Misses, fmtBytes(tot.BytesRead), fmtBytes(tot.BytesWritten), tot.Evictions)
	}
	return b.String()
}

func fmtBytes(n int64) string {
	switch {
	case n >= 10<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 10<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// configCacheKey canonicalizes the post-Mut engine config. Config is all
// value fields, so %+v is deterministic — except SchemeOpts, whose map
// iteration order is not: cells carrying SchemeOpts are simply not cached.
func configCacheKey(scheme string, mut func(*engine.Config)) (string, bool) {
	cfg := engine.DefaultConfig(scheme)
	if mut != nil {
		mut(&cfg)
	}
	if cfg.SchemeOpts != nil {
		return "", false
	}
	return fmt.Sprintf("%+v", cfg), true
}

// captureKey identifies a workload capture. Deliberately txs-free: the
// capture stored under it is a full recording at some transaction count,
// and any cell needing a shorter window replays a committed-tx prefix.
func (cc *cellCache) captureKey(c Cell) (string, bool) {
	if c.Sink != nil {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.mut())
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\nworkload=%s\nseed=%d\nopts=%+v\nconfig=%s\n",
		cacheSchema, kindCapture, c.Workload.Name, c.Seed, c.Workload.Opts, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

func (cc *cellCache) replayKey(c Cell, col *matrixColumn) (string, bool) {
	if c.Sink != nil || col.hash == "" {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.mut())
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\ntrace=%s\nsetupops=%d\ntxs=%d\nconfig=%s\n",
		cacheSchema, kindReplay, col.hash, col.setupOps, c.Txs, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// contentionKey identifies one contention-sweep cell. The hash covers
// the effective engine config (thread count and abortability applied,
// exactly as runContentionCell builds it) plus the cc-layer policy and
// workload geometry, so a DefaultConfig or pool-size change invalidates
// these entries like any other kind.
func (cc *cellCache) contentionKey(c contentionCell) (string, bool) {
	cfg, ok := configCacheKey(c.scheme, func(cfg *engine.Config) {
		cfg.Threads = c.threads
		if c.threads > cfg.Cores {
			cfg.Cores = c.threads
		}
		cfg.Abortable = true
	})
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\npolicy=%s\ntheta=%g\nkeys=%d\nopspertx=%d\ntxs=%d\nseed=%d\nconfig=%s\n",
		cacheSchema, kindContention, c.policy, c.theta, contentionKeys, contentionOpsPerTx, c.txs, c.seed, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// directKey identifies a direct-execution cell (the non-matrix sections:
// TableIV, the GC/latency/map-size sweeps, ablation variants). Cells with
// a custom Exec or a sink are not cacheable.
func (cc *cellCache) directKey(c Cell) (string, bool) {
	if c.Sink != nil || c.Exec != nil {
		return "", false
	}
	cfg, ok := configCacheKey(c.Scheme, c.mut())
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\nworkload=%s\nseed=%d\ntxs=%d\nopts=%+v\nconfig=%s\n",
		cacheSchema, kindDirect, c.Workload.Name, c.Seed, c.Txs, c.Workload.Opts, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// wearKey identifies one wear-experiment run (scheme + effective config
// + workload sizing + seed + transaction count).
func (cc *cellCache) wearKey(scheme string, mut func(*engine.Config), txs int, opts Options) (string, bool) {
	cfg, ok := configCacheKey(scheme, mut)
	if !ok {
		return "", false
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\nworkload=hashmap\nseed=%d\ntxs=%d\nopts=%+v\nconfig=%s\n",
		cacheSchema, kindWear, opts.Seed, txs, opts.WL, cfg)
	return hex.EncodeToString(h.Sum(nil)), true
}

// captureEntry is the JSON sidecar of a cached capture cell; the trace
// wire bytes live next to it in <key>.trc. Txs is the transaction count
// the capture was measured at — cells needing fewer replay a prefix,
// cells needing more re-capture (and overwrite the entry).
type captureEntry struct {
	Schema    string  `json:"schema"`
	Workload  string  `json:"workload"`
	Threads   int     `json:"threads"`
	SetupOps  int     `json:"setup_ops"`
	Txs       int     `json:"txs"`
	TraceHash string  `json:"trace_hash"`
	Metrics   Metrics `json:"metrics"`
}

// metricsEntry is the JSON sidecar of every metrics-valued cache kind
// (replay, direct, contention).
type metricsEntry struct {
	Schema  string  `json:"schema"`
	Kind    string  `json:"kind"`
	Scheme  string  `json:"scheme"`
	Metrics Metrics `json:"metrics"`
}

// wearEntry wraps a cached WearReport — the one cache kind whose value
// is not a Metrics window.
type wearEntry struct {
	Schema string     `json:"schema"`
	Kind   string     `json:"kind"`
	Scheme string     `json:"scheme"`
	Report WearReport `json:"report"`
}

func (cc *cellCache) loadWear(key string) (WearReport, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.stat().Misses++
		return WearReport{}, false
	}
	var e wearEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Kind != kindWear {
		cc.stat().Misses++
		return WearReport{}, false
	}
	s := cc.stat()
	s.Hits++
	s.BytesRead += int64(len(raw))
	cc.markUsed(key)
	return e.Report, true
}

func (cc *cellCache) storeWear(key, scheme string, rep WearReport) error {
	data, err := json.Marshal(wearEntry{Schema: cacheSchema, Kind: kindWear, Scheme: scheme, Report: rep})
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".json", data); err != nil {
		return err
	}
	cc.markUsed(key)
	return cc.enforceMax()
}

func (cc *cellCache) tracePath(key string) string {
	return filepath.Join(cc.dir, key+".trc")
}

// loadCapture returns the cached capture entry if it covers at least
// needTxs transactions, or miss on any problem — missing files, wrong
// schema, wrong workload, too-short capture — so corruption degrades to
// re-execution, never to wrong numbers.
func (cc *cellCache) loadCapture(key, workloadName string, needTxs int) (*captureEntry, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.stat().Misses++
		return nil, false
	}
	var e captureEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Workload != workloadName ||
		e.Threads <= 0 || e.Txs < needTxs || e.TraceHash == "" {
		cc.stat().Misses++
		return nil, false
	}
	if _, err := os.Stat(cc.tracePath(key)); err != nil {
		cc.stat().Misses++
		return nil, false
	}
	s := cc.stat()
	s.Hits++
	s.BytesRead += int64(len(raw))
	cc.markUsed(key)
	return &e, true
}

func (cc *cellCache) storeCapture(key string, col *matrixColumn, wire []byte, met Metrics) error {
	e := captureEntry{
		Schema:    cacheSchema,
		Workload:  col.workload,
		Threads:   col.threads,
		SetupOps:  col.setupOps,
		Txs:       col.capturedTxs,
		TraceHash: col.hash,
		Metrics:   met,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".trc", wire); err != nil {
		return err
	}
	if err := cc.writeFile(key+".json", data); err != nil {
		return err
	}
	cc.markUsed(key)
	return cc.enforceMax()
}

// loadMetrics is the shared read path of the metrics-valued kinds.
func (cc *cellCache) loadMetrics(key, kind string) (Metrics, bool) {
	raw, err := os.ReadFile(filepath.Join(cc.dir, key+".json"))
	if err != nil {
		cc.stat().Misses++
		return Metrics{}, false
	}
	var e metricsEntry
	if err := json.Unmarshal(raw, &e); err != nil || e.Schema != cacheSchema || e.Kind != kind {
		cc.stat().Misses++
		return Metrics{}, false
	}
	s := cc.stat()
	s.Hits++
	s.BytesRead += int64(len(raw))
	cc.markUsed(key)
	return e.Metrics, true
}

func (cc *cellCache) storeMetrics(key, kind, scheme string, met Metrics) error {
	data, err := json.Marshal(metricsEntry{Schema: cacheSchema, Kind: kind, Scheme: scheme, Metrics: met})
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := cc.writeFile(key+".json", data); err != nil {
		return err
	}
	cc.markUsed(key)
	return cc.enforceMax()
}

// markUsed records that this run touched key — it is pinned against
// eviction for the rest of the run — and refreshes the entry's file
// timestamps, which are the cache's LRU clock.
func (cc *cellCache) markUsed(key string) {
	cc.used[key] = true
	now := time.Now()
	for _, name := range []string{key + ".json", key + ".trc"} {
		path := filepath.Join(cc.dir, name)
		if _, err := os.Stat(path); err == nil {
			os.Chtimes(path, now, now)
		}
	}
}

// enforceMax evicts least-recently-used entries until the cache fits the
// byte cap. Entries are whole key groups — a capture's <key>.json and
// <key>.trc leave together — ordered by newest file modification time
// (loads refresh it via markUsed), with the key as a deterministic
// tiebreak. Keys used during this run are pinned. Eviction failures
// degrade to a larger cache, never to an error: the cache is an
// optimization, and a stale entry is re-keyed or re-validated on load.
func (cc *cellCache) enforceMax() error {
	if cc.max <= 0 {
		return nil
	}
	ents, err := os.ReadDir(cc.dir)
	if err != nil {
		return nil
	}
	type group struct {
		key   string
		size  int64
		mtime time.Time
		files []string
	}
	groups := map[string]*group{}
	var total int64
	for _, ent := range ents {
		name := ent.Name()
		ext := filepath.Ext(name)
		if ent.IsDir() || (ext != ".json" && ext != ".trc") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		key := strings.TrimSuffix(name, ext)
		g := groups[key]
		if g == nil {
			g = &group{key: key}
			groups[key] = g
		}
		g.size += info.Size()
		g.files = append(g.files, name)
		if mt := info.ModTime(); mt.After(g.mtime) {
			g.mtime = mt
		}
		total += info.Size()
	}
	if total <= cc.max {
		return nil
	}
	order := make([]*group, 0, len(groups))
	for _, g := range groups {
		if !cc.used[g.key] {
			order = append(order, g)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].mtime.Equal(order[j].mtime) {
			return order[i].mtime.Before(order[j].mtime)
		}
		return order[i].key < order[j].key
	})
	for _, g := range order {
		if total <= cc.max {
			break
		}
		for _, f := range g.files {
			os.Remove(filepath.Join(cc.dir, f))
		}
		total -= g.size
		cc.stat().Evictions++
	}
	return nil
}

// writeFile writes via a temp file + rename so an interrupted run never
// leaves a half-written entry a later run could load.
func (cc *cellCache) writeFile(name string, data []byte) error {
	tmp, err := os.CreateTemp(cc.dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("harness: cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(cc.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("harness: cache: %w", err)
	}
	cc.stat().BytesWritten += int64(len(data))
	return nil
}

// CacheInventory summarizes what lives in a cell cache directory without
// running anything (the hoopbench -cachestats flag).
type CacheInventory struct {
	Entries    map[string]int // kind -> sidecar count
	TraceBytes int64          // bytes in .trc files
	TotalBytes int64
	TempFiles  int
}

// ReadCacheInventory scans dir and classifies every entry by kind.
func ReadCacheInventory(dir string) (*CacheInventory, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("harness: -cachestats: %w", err)
	}
	inv := &CacheInventory{Entries: map[string]int{}}
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		info, err := ent.Info()
		if err != nil {
			continue
		}
		inv.TotalBytes += info.Size()
		if strings.Contains(name, ".tmp") {
			inv.TempFiles++
			continue
		}
		switch filepath.Ext(name) {
		case ".trc":
			inv.TraceBytes += info.Size()
		case ".json":
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				continue
			}
			var probe struct {
				Schema   string `json:"schema"`
				Kind     string `json:"kind"`
				Workload string `json:"workload"`
			}
			if json.Unmarshal(raw, &probe) != nil || !strings.HasPrefix(probe.Schema, "hoop-cellcache/") {
				inv.Entries["foreign"]++
				continue
			}
			kind := probe.Kind
			if kind == "" {
				kind = kindCapture
			}
			inv.Entries[kind]++
		}
	}
	return inv, nil
}

// String renders the inventory as a one-screen summary.
func (inv *CacheInventory) String() string {
	var b strings.Builder
	kinds := make([]string, 0, len(inv.Entries))
	for k := range inv.Entries {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	total := 0
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d entries\n", k+":", inv.Entries[k])
		total += inv.Entries[k]
	}
	fmt.Fprintf(&b, "  %-12s %d entries, %s of traces, %s total", "all:", total,
		fmtBytes(inv.TraceBytes), fmtBytes(inv.TotalBytes))
	if inv.TempFiles > 0 {
		fmt.Fprintf(&b, ", %d orphaned temp files", inv.TempFiles)
	}
	return b.String()
}
