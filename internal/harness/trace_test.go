package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
	"hoop/internal/workload"
)

// runTracedMatrix runs a small seeded Figure-7a matrix with a trace
// collector attached and returns the combined JSONL output.
func runTracedMatrix(t *testing.T, workers int, mask telemetry.Mask, schemes []string) []byte {
	t.Helper()
	tc := &TraceCollector{Mask: mask}
	_, err := RunMatrixOn(Options{Quick: true, Seed: 1, Workers: workers, Trace: tc},
		[]workload.Workload{workload.HashMapWL(64)}, schemes)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tc.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceIdenticalAcrossWorkerCounts locks the TraceCollector's core
// guarantee: the combined JSONL trace is byte-identical for every RunCells
// worker count, because each cell's stream depends only on its seed and
// cells are concatenated in construction order. Runs under -race in CI.
func TestTraceIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several quick cells")
	}
	schemes := []string{engine.SchemeHOOP, engine.SchemeUndo}
	serial := runTracedMatrix(t, 1, telemetry.MaskTrace, schemes)
	parallel := runTracedMatrix(t, 4, telemetry.MaskTrace, schemes)
	if len(serial) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("trace differs between 1 and 4 workers: %d vs %d bytes",
			len(serial), len(parallel))
	}
	// Every non-marker line must decode as an event.
	events := 0
	for _, line := range bytes.Split(serial, []byte("\n")) {
		if len(line) == 0 || bytes.HasPrefix(line, []byte(`{"cell":`)) {
			continue
		}
		if _, err := telemetry.DecodeJSON(line); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events++
	}
	if events == 0 {
		t.Fatal("trace holds no events")
	}
}

// TestGoldenFig7aTrace locks a seeded quick-mode Figure-7a HOOP cell's
// mechanism-event trace (GC epochs, mapping-table evictions, recovery) to
// a checked-in golden JSONL file. Any change to when the simulated
// machine garbage-collects or evicts — intended or not — shows up as a
// diff here. Regenerate deliberately with:
//
//	go test ./internal/harness -run TestGoldenFig7aTrace -update
func TestGoldenFig7aTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is seconds-long")
	}
	mask := telemetry.MaskOf(telemetry.KindGCStart, telemetry.KindGCEnd,
		telemetry.KindMapEvict, telemetry.KindRecovery)
	got := runTracedMatrix(t, 2, mask, []string{engine.SchemeHOOP})

	path := filepath.Join("testdata", "fig7a_hoop_trace.golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("telemetry trace diverged from golden %s (%d vs %d bytes).\nIf a simulation-model change is intentional, regenerate with -update.",
			path, len(got), len(want))
	}
}
