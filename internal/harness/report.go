package harness

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// Report bundles the results of a full evaluation run, one field per paper
// artifact.
type Report struct {
	Matrix   *Matrix
	Fig7a    *Grid
	Fig7b    *Grid
	Fig8     *Grid
	Fig9     *Grid
	Headline Headline
	Profile  ReadProfile
	TableIV  *Grid
	Fig10    *Grid
	Fig11    *Grid
	Fig12    *Grid
	Fig13    *Grid
	// Contention is the concurrency-control sweep (throughput and abort
	// rate vs Zipfian theta × threads, all schemes × both cc policies).
	Contention       *Grid
	ContentionAborts *Grid
	// SweepValSize and SweepScan are the value-size and scan-fraction
	// sensitivity sweeps (sweeps.go).
	SweepValSize *Grid
	SweepScan    *Grid
}

// Section names accepted by RunSections. "ablation" (HOOP variants with
// packing/coalescing disabled and condensed mapping enabled) and
// "fig7-9-1k" (the Table III 1 KB-item data sets) extend the paper's
// artifacts and are not part of the default run.
var AllSections = []string{"tables", "fig7-9", "tableIV", "fig10", "fig11", "fig12", "fig13", "sweep-valsize", "sweep-scan", "contention", "area"}

// ExtraSections are opt-in experiments beyond the paper's figures.
var ExtraSections = []string{"ablation", "fig7-9-1k", "wear"}

// RunAll regenerates every table and figure, streaming progress and the
// rendered artifacts to w.
func RunAll(w io.Writer, opts Options) (*Report, error) {
	return RunSections(w, opts, AllSections)
}

// RunSections runs the requested subset of the evaluation.
func RunSections(w io.Writer, opts Options, sections []string) (*Report, error) {
	want := map[string]bool{}
	for _, s := range sections {
		want[s] = true
	}
	rep := &Report{}
	// Open the cell cache once so every section shares one instance (and
	// its per-section hit/miss accounting); sections re-fetch it through
	// opts.ensureCache and get this same pointer.
	cache, err := opts.ensureCache()
	if err != nil {
		return rep, err
	}
	stamp := func(section, name string) func() {
		start := time.Now()
		cache.setSection(section)
		fmt.Fprintf(w, "\n==== %s ====\n", name)
		return func() { fmt.Fprintf(w, "(%s computed in %.1fs)\n", name, time.Since(start).Seconds()) }
	}
	render := func(slug string, g *Grid) {
		g.Render(w)
		if opts.Charts {
			fmt.Fprintln(w)
			g.RenderBars(w)
		}
		if opts.ArtifactDir != "" {
			if err := SaveGridJSON(opts.ArtifactDir, slug, g); err != nil {
				fmt.Fprintf(w, "(artifact %s not saved: %v)\n", slug, err)
			}
		}
	}

	if want["tables"] {
		done := stamp("tables", "Tables I-III")
		RenderTableI(w)
		fmt.Fprintln(w)
		RenderTableII(w, engine.DefaultConfig(engine.SchemeHOOP))
		fmt.Fprintln(w)
		RenderTableIII(w)
		done()
	}

	if want["fig7-9"] {
		done := stamp("fig7-9", "Figures 7a, 7b, 8, 9 (workload x scheme matrix)")
		m, err := RunMatrix(opts)
		if err != nil {
			return rep, err
		}
		rep.Matrix = m
		rep.Fig7a, rep.Fig7b, rep.Fig8, rep.Fig9 = Figure7a(m), Figure7b(m), Figure8(m), Figure9(m)
		rep.Headline = ComputeHeadline(m)
		render("figure7a", rep.Fig7a)
		fmt.Fprintln(w)
		render("figure7b", rep.Fig7b)
		fmt.Fprintln(w)
		render("figure8", rep.Fig8)
		fmt.Fprintln(w)
		render("figure9", rep.Fig9)
		fmt.Fprintln(w)
		fmt.Fprint(w, FormatHeadline(rep.Headline))
		// §IV-C read-path profile, averaged over the HOOP cells.
		var agg Metrics
		agg.Counters = map[string]int64{}
		for _, wl := range m.Workloads {
			c := m.Cells[wl][engine.SchemeHOOP]
			for k, v := range c.Counters {
				agg.Counters[k] += v
			}
		}
		rep.Profile = ComputeReadProfile(agg)
		fmt.Fprintf(w, "Read-path profile (§IV-C): %.2f loads/LLC-miss, %.1f%% parallel reads, %.1f%% LLC miss ratio, %.1f%% eviction-buffer hits\n",
			rep.Profile.LoadsPerLLCMiss, rep.Profile.ParallelReadFrac*100,
			rep.Profile.LLCMissRatio*100, rep.Profile.EvictBufHitFrac*100)
		fmt.Fprint(w, FormatPhaseBreakdown(m))
		fmt.Fprintf(w, "Matrix pool: %s\n", m.Stats)
		if m.Captures > 0 {
			fmt.Fprintf(w, "Matrix captures: %d captures for %d cells (executed %d)\n",
				m.Captures, m.Stats.Cells, m.CapturesRun)
		}
		if opts.CacheDir != "" && !opts.DirectMatrix && opts.Trace == nil {
			fmt.Fprintf(w, "Matrix cache: %d/%d cells cached (executed %d) in %s\n",
				m.Stats.Cached, m.Stats.Cells, m.Stats.Cells-m.Stats.Cached, opts.CacheDir)
		}
		done()
	}

	if want["tableIV"] {
		done := stamp("tableIV", "Table IV (GC data reduction)")
		g, err := TableIV(opts)
		if err != nil {
			return rep, err
		}
		rep.TableIV = g
		render("tableIV", g)
		done()
	}

	if want["fig10"] {
		done := stamp("fig10", "Figure 10 (GC period sweep)")
		g, err := Figure10(opts)
		if err != nil {
			return rep, err
		}
		rep.Fig10 = g
		render("figure10", g)
		done()
	}

	if want["fig11"] {
		done := stamp("fig11", "Figure 11 (parallel recovery)")
		g, rrep, err := Figure11(opts)
		if err != nil {
			return rep, err
		}
		rep.Fig11 = g
		render("figure11", g)
		fmt.Fprintf(w, "functional recovery: %d committed txs, %d slices scanned, %d words restored (verified replay)\n",
			rrep.CommittedTxs, rrep.SlicesScanned, rrep.WordsRecovered)
		done()
	}

	if want["fig12"] {
		done := stamp("fig12", "Figure 12 (NVM latency sensitivity)")
		g, err := Figure12(opts)
		if err != nil {
			return rep, err
		}
		rep.Fig12 = g
		render("figure12", g)
		done()
	}

	if want["fig13"] {
		done := stamp("fig13", "Figure 13 (mapping-table size sensitivity)")
		g, err := Figure13(opts)
		if err != nil {
			return rep, err
		}
		rep.Fig13 = g
		render("figure13", g)
		done()
	}

	if want["sweep-valsize"] {
		done := stamp("sweep-valsize", "Sweep: throughput vs value size (64 B - 64 KB)")
		g, err := SweepValSize(opts)
		if err != nil {
			return rep, err
		}
		rep.SweepValSize = g
		render("sweep-valsize", g)
		done()
	}

	if want["sweep-scan"] {
		done := stamp("sweep-scan", "Sweep: throughput vs range-scan fraction")
		g, err := SweepScanFrac(opts)
		if err != nil {
			return rep, err
		}
		rep.SweepScan = g
		render("sweep-scan", g)
		done()
	}

	if want["contention"] {
		done := stamp("contention", "Contention sweep (cc policies: OCC vs wound-wait 2PL)")
		tput, aborts, err := ContentionFigure(opts)
		if err != nil {
			return rep, err
		}
		rep.Contention, rep.ContentionAborts = tput, aborts
		render("contention-throughput", tput)
		fmt.Fprintln(w)
		render("contention-aborts", aborts)
		done()
	}

	if want["area"] {
		done := stamp("area", "Area overhead (§III-H)")
		RenderArea(w)
		done()
	}

	if want["ablation"] {
		done := stamp("ablation", "Ablation (packing / coalescing / condensed mapping)")
		g, err := Ablation(opts)
		if err != nil {
			return rep, err
		}
		render("ablation", g)
		done()
	}

	if want["wear"] {
		done := stamp("wear", "Uniform wear (§III-D)")
		rep2, err := Wear(opts)
		if err != nil {
			return rep, err
		}
		RenderWear(w, rep2)
		done()
	}

	if want["fig7-9-1k"] {
		done := stamp("fig7-9-1k", "Figures 7-9 on the 1 KB-item data sets")
		m, err := RunMatrixOn(opts, workload.LargeItemSuite(opts.WL), engine.AllSchemes)
		if err != nil {
			return rep, err
		}
		render("figure7a-1k", Figure7a(m))
		fmt.Fprintln(w)
		render("figure8-1k", Figure8(m))
		done()
	}
	if s := cache.statsReport(); s != "" {
		fmt.Fprintf(w, "\n%s", s)
	}
	return rep, nil
}

// SaveGridJSON writes a grid's JSON artifact to dir/<slug>.json, creating
// the directory if needed.
func SaveGridJSON(dir, slug string, g *Grid) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := g.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, slug+".json"), data, 0o644)
}
