package harness

import (
	"reflect"
	"testing"

	"hoop/internal/crashtest"
	"hoop/internal/engine"
	"hoop/internal/workload"
)

// TestRegistryRoundTrip builds every registered workload by name and holds
// each to the record/replay equivalence property on all seven schemes:
// capture on the first scheme, replay everywhere, and compare both the
// Metrics window and the final durable image against direct execution.
// This is the registry's contract with the matrix pipeline — anything
// Register'd is matrix-safe, including the scan ops of YCSB-E and the
// abort-injecting read-modify-writes of YCSB-F.
func TestRegistryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered workload on every scheme")
	}
	const txs = 60
	small := workload.Options{Keys: 256}
	for _, name := range workload.Registered() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wl, err := workload.Build(name, small)
			if err != nil {
				t.Fatal(err)
			}
			capCell := Cell{Scheme: engine.AllSchemes[0], Workload: wl, Txs: txs, Seed: 5, Mut: smallMut}
			capMet, cap, _, err := captureCellRun(capCell)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			col := &matrixColumn{workload: wl.Name, cap: cap}
			if _, err := col.finalizeFromCapture(false); err != nil {
				t.Fatal(err)
			}
			for _, scheme := range engine.AllSchemes {
				cell := Cell{Scheme: scheme, Workload: wl, Txs: txs, Seed: 5, Mut: smallMut}
				directSys, err := buildSystem(scheme, cell.mut())
				if err != nil {
					t.Fatal(err)
				}
				directMet := measureWindow(directSys, wl.Runners(directSys, cell.Seed), txs, nil, 0)
				repMet, repSys, err := replayCellRun(cell, col)
				if err != nil {
					t.Fatalf("%s: replay: %v", scheme, err)
				}
				if !reflect.DeepEqual(directMet, repMet) {
					t.Errorf("%s: replay metrics diverge\ndirect: %+v\nreplay: %+v", scheme, directMet, repMet)
				}
				if !storesEqual(directSys.Durable(), repSys.Durable()) {
					t.Errorf("%s: replay durable image diverges from direct execution", scheme)
				}
				if scheme == capCell.Scheme && !reflect.DeepEqual(directMet, capMet) {
					t.Errorf("capture metrics diverge from direct\ndirect: %+v\ncapture: %+v", directMet, capMet)
				}
			}
		})
	}
}

// TestRegistrySmokeYCSBEF is the crash smoke the ISSUE calls out by name:
// YCSB-E (range scans) and YCSB-F (read-modify-write with injected aborts)
// survive a mid-stream crash on every persistent scheme. The full
// per-scheme coverage lives in cmd/hoopcrash -suite ycsb.
func TestRegistrySmokeYCSBEF(t *testing.T) {
	if testing.Short() {
		t.Skip("crash+recover on every scheme")
	}
	for _, name := range []string{"ycsb-e", "ycsb-f"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			wl := workload.MustBuild(name, workload.Options{Keys: 256})
			for _, scheme := range engine.AllSchemes {
				if scheme == engine.SchemeNative {
					continue // no persistence guarantee to verify
				}
				if err := crashtest.Smoke(scheme, wl, 5, 300); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
