package harness

import (
	"hoop/internal/engine"
	"hoop/internal/workload"
)

// The value-size and scan-fraction sweeps extend the paper's sensitivity
// studies (Figures 12/13) along two axes it does not plot: object size —
// HOOP's slice packing and the log-structured baselines behave very
// differently at 64 B than at 64 KB — and range-scan share, which the
// YCSB A–F suite's ordered backend makes measurable. Both run through the
// shared matrix pipeline, so they inherit record-once/replay-many
// execution, the cell cache, and bit-identical results at every worker
// count.

// sweepOpts sizes the sweep cells. A 64 KB-value transaction moves three
// orders of magnitude more data than a 64 B one, so the sweeps run far
// fewer transactions per cell than the figure matrix (the mean stabilizes
// long before the figure matrix's counts), and quick mode additionally
// caps the key space.
func sweepOpts(opts Options) Options {
	if opts.TxsPerCell == 0 {
		if opts.Quick {
			opts.TxsPerCell = 250
		} else {
			opts.TxsPerCell = 3000
		}
	}
	if opts.Quick && opts.WL.Keys == 0 {
		opts.WL.Keys = 1024
	}
	return opts
}

// SweepValSize measures YCSB-A throughput for every scheme as the value
// size grows 64 B → 64 KB (key counts shrink to hold the data-set size,
// see workload.ValSizeSweepSuite).
func SweepValSize(opts Options) (*Grid, error) {
	opts = sweepOpts(opts)
	m, err := RunMatrixOn(opts, workload.ValSizeSweepSuite(opts.WL), engine.AllSchemes)
	if err != nil {
		return nil, err
	}
	return sweepGrid("Sweep: YCSB-A throughput (Ktx/s) vs value size", m), nil
}

// SweepScanFrac measures scan-workload throughput for every scheme as the
// range-scan share of the mix grows 0% → 95% (the remainder is updates).
func SweepScanFrac(opts Options) (*Grid, error) {
	opts = sweepOpts(opts)
	m, err := RunMatrixOn(opts, workload.ScanSweepSuite(opts.WL), engine.AllSchemes)
	if err != nil {
		return nil, err
	}
	return sweepGrid("Sweep: throughput (Ktx/s) vs range-scan fraction", m), nil
}

// sweepGrid renders a sweep matrix as absolute throughput, one row per
// sweep point, one column per scheme.
func sweepGrid(title string, m *Matrix) *Grid {
	g := &Grid{
		Title:   title,
		RowName: "workload",
		Rows:    m.Workloads,
		Cols:    m.Schemes,
		Format:  "%.1f",
	}
	for _, w := range m.Workloads {
		row := make([]float64, len(m.Schemes))
		for j, s := range m.Schemes {
			row[j] = m.Cells[w][s].Throughput() / 1e3
		}
		g.Cells = append(g.Cells, row)
	}
	return g
}
