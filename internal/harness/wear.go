package harness

import (
	"fmt"
	"io"
	"math"
	"sort"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

// WearReport summarizes write wear across the OOP region's data blocks
// after a sustained run — evidence for §III-D's claim that round-robin
// block and slice allocation achieves uniform aging.
type WearReport struct {
	BucketsTouched int
	MinBytes       int64
	MaxBytes       int64
	MeanBytes      float64
	// CV is the coefficient of variation (stddev/mean) over touched
	// 1 MB buckets; uniform wear means a small CV.
	CV float64
	// HomeOOPRatio compares write bytes landing in the home region vs
	// the OOP region (HOOP shifts the write burden to the wear-leveled
	// log).
	HomeOOPRatio float64
}

// Wear runs a write-heavy workload under HOOP long enough for the OOP
// region to cycle through its blocks several times, then summarizes the
// device's wear counters.
func Wear(opts Options) (WearReport, error) {
	return WearOn(opts, engine.SchemeHOOP)
}

// WearOn runs the wear experiment on the named scheme. The scheme must
// implement persist.Quiescer so its deferred migration traffic lands inside
// the measured region before the wear counters are read.
func WearOn(opts Options, scheme string) (WearReport, error) {
	// Enough transactions that slice allocation cycles through many 2 MB
	// blocks (each transaction writes ~200 slice bytes).
	txs := 400000
	if opts.Quick {
		txs = 100000
	}
	mut := func(c *engine.Config) {
		// A small region so blocks recycle many times within the run.
		c.OOPBytes = 96 << 20
		c.Hoop.CommitLogBytes = 1 << 20
		c.Hoop.GCPeriod = 500 * sim.Microsecond
	}
	cache, err := opts.ensureCache()
	if err != nil {
		return WearReport{}, err
	}
	var key string
	if cache != nil {
		if k, ok := cache.wearKey(scheme, mut, txs, opts); ok {
			key = k
			if rep, hit := cache.loadWear(k); hit {
				return rep, nil
			}
		}
	}
	sys, err := buildSystem(scheme, mut)
	if err != nil {
		return WearReport{}, err
	}
	if _, ok := sys.Scheme().(persist.Quiescer); !ok {
		return WearReport{}, fmt.Errorf("harness: wear experiment needs a scheme with background migration; %s implements no persist.Quiescer", scheme)
	}
	runners := workload.MustBuild("hashmap", opts.WL).Runners(sys, opts.Seed+17)
	sys.ResetMemoryQueues()
	sys.Run(runners, txs)
	quiesce(sys)

	layout := sys.Layout()
	// The data blocks start past the watermark+commit-log head; measuring
	// the whole OOP region is close enough because the head is a handful
	// of buckets.
	dev := sys.Device()
	buckets, minW, maxW, total := dev.WearInRegion(layout.OOP)
	var rep WearReport
	rep.BucketsTouched = buckets
	rep.MinBytes, rep.MaxBytes = minW, maxW
	if buckets > 0 {
		rep.MeanBytes = float64(total) / float64(buckets)
	}
	// Coefficient of variation over the touched buckets.
	var vals []float64
	for b, w := range dev.WearBuckets() {
		base := mem.PAddr(b) << 20
		if layout.OOP.Contains(base) {
			vals = append(vals, float64(w))
		}
	}
	sort.Float64s(vals)
	if len(vals) > 1 && rep.MeanBytes > 0 {
		var ss float64
		for _, v := range vals {
			d := v - rep.MeanBytes
			ss += d * d
		}
		rep.CV = math.Sqrt(ss/float64(len(vals))) / rep.MeanBytes
	}
	_, _, _, homeTotal := dev.WearInRegion(layout.Home)
	if total > 0 {
		rep.HomeOOPRatio = float64(homeTotal) / float64(total)
	}
	if key != "" {
		if err := cache.storeWear(key, scheme, rep); err != nil {
			return WearReport{}, err
		}
	}
	return rep, nil
}

// RenderWear writes the wear experiment's summary.
func RenderWear(w io.Writer, rep WearReport) {
	fmt.Fprintln(w, "Uniform aging of the OOP region (§III-D round-robin allocation):")
	fmt.Fprintf(w, "  1MB buckets written: %d\n", rep.BucketsTouched)
	fmt.Fprintf(w, "  bytes per bucket:    min %d / mean %.0f / max %d\n",
		rep.MinBytes, rep.MeanBytes, rep.MaxBytes)
	fmt.Fprintf(w, "  coefficient of variation: %.2f (smaller = more uniform)\n", rep.CV)
	fmt.Fprintf(w, "  home-region writes / OOP-region writes: %.2f\n", rep.HomeOOPRatio)
}
