package harness

import (
	"bytes"
	"reflect"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/trace"
	"hoop/internal/workload"
)

// smallMut shrinks a system for fast equivalence runs; Abortable so the
// abort-injecting workload runs on every scheme.
func smallMut(cfg *engine.Config) {
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.Abortable = true
}

// abortMixWL is a per-thread-partitioned workload that aborts every
// fourth transaction, exercising the trace v2 abort path end to end.
func abortMixWL() workload.Workload {
	return workload.Workload{
		Name: "abort-mix",
		Build: func(env *engine.Env, region mem.Region, seed uint64) engine.TxRunner {
			rng := sim.NewRand(seed)
			words := int(region.Size / 8)
			if words > 1024 {
				words = 1024
			}
			// Setup: seed a few words so aborted updates have pre-images.
			for i := 0; i < 32; i++ {
				env.TxBegin()
				env.WriteWord(region.Base+mem.PAddr(i*8), rng.Uint64())
				env.TxEnd()
			}
			n := 0
			return engine.TxRunnerFunc(func(env *engine.Env) {
				env.TxBegin()
				for j := 0; j < 1+rng.Intn(3); j++ {
					env.WriteWord(region.Base+mem.PAddr(rng.Intn(words))*8, rng.Uint64())
				}
				if n%4 == 3 {
					env.TxAbort()
				} else {
					env.TxEnd()
				}
				n++
			})
		},
	}
}

// storesEqual compares two durable images bit for bit (absent pages read
// as zeros, so both directions are checked).
func storesEqual(a, b *mem.Store) bool {
	eq := true
	check := func(x, y *mem.Store) {
		x.ForEachPageUntil(func(base mem.PAddr, data []byte) bool {
			buf := make([]byte, len(data))
			y.Read(base, buf)
			if !bytes.Equal(data, buf) {
				eq = false
				return false
			}
			return true
		})
	}
	check(a, b)
	if eq {
		check(b, a)
	}
	return eq
}

// TestReplayMatchesDirect is the record/replay equivalence property: for
// seeded workloads — including an abort-injecting one — on all schemes,
// capturing on the first scheme and replaying on each produces the same
// Metrics window and the same final durable image as direct execution.
func TestReplayMatchesDirect(t *testing.T) {
	const txs = 150
	hot := workload.MustBuild("hashmap", workload.Options{ValBytes: 64, Keys: 512})
	for _, wl := range []workload.Workload{hot, abortMixWL()} {
		capCell := Cell{Scheme: engine.AllSchemes[0], Workload: wl, Txs: txs, Seed: 7, Mut: smallMut}
		capMet, cap, _, err := captureCellRun(capCell)
		if err != nil {
			t.Fatalf("%s: capture: %v", wl.Name, err)
		}
		if wl.Name == "abort-mix" {
			found := false
			for _, op := range cap.Ops {
				if op.Kind == trace.OpTxAbort {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("abort-mix capture carries no abort ops")
			}
		}
		col := &matrixColumn{workload: wl.Name, cap: cap}
		if _, err := col.finalizeFromCapture(false); err != nil {
			t.Fatal(err)
		}
		for _, scheme := range engine.AllSchemes {
			cell := Cell{Scheme: scheme, Workload: wl, Txs: txs, Seed: 7, Mut: smallMut}
			directSys, err := buildSystem(scheme, smallMut)
			if err != nil {
				t.Fatal(err)
			}
			directMet := measureWindow(directSys, wl.Runners(directSys, cell.Seed), txs, nil, 0)
			repMet, repSys, err := replayCellRun(cell, col)
			if err != nil {
				t.Fatalf("%s on %s: replay: %v", wl.Name, scheme, err)
			}
			if !reflect.DeepEqual(directMet, repMet) {
				t.Errorf("%s on %s: replay metrics diverge\ndirect: %+v\nreplay: %+v", wl.Name, scheme, directMet, repMet)
			}
			if !storesEqual(directSys.Durable(), repSys.Durable()) {
				t.Errorf("%s on %s: replay durable image diverges from direct execution", wl.Name, scheme)
			}
			if scheme == capCell.Scheme {
				// The capture cell's own window must equal direct too.
				// (Durable images are not compared here: the capture
				// system legitimately runs padding transactions after its
				// window closes.)
				if !reflect.DeepEqual(directMet, capMet) {
					t.Errorf("%s: capture metrics diverge from direct\ndirect: %+v\ncapture: %+v", wl.Name, directMet, capMet)
				}
			}
		}
	}
}

// TestPrefixReplayMatchesDirect is the prefix-sharing property behind the
// txs-free capture key: a capture taken at T transactions, replayed for
// only T' < T, reproduces exactly the Metrics window and durable image of
// a direct T'-transaction run — on every scheme, including under aborts.
// (Each thread's op stream is a function of its seed alone and
// measureWindow closes the window by commit count, so the first T'
// committed transactions of the long capture are the T' transactions a
// short run would have issued.)
func TestPrefixReplayMatchesDirect(t *testing.T) {
	const txsFull = 150
	const txsPrefix = 90
	hot := workload.MustBuild("hashmap", workload.Options{ValBytes: 64, Keys: 512})
	for _, wl := range []workload.Workload{hot, abortMixWL()} {
		capCell := Cell{Scheme: engine.AllSchemes[0], Workload: wl, Txs: txsFull, Seed: 7, Mut: smallMut}
		_, cap, _, err := captureCellRun(capCell)
		if err != nil {
			t.Fatalf("%s: capture: %v", wl.Name, err)
		}
		col := &matrixColumn{workload: wl.Name, cap: cap, capturedTxs: txsFull}
		if _, err := col.finalizeFromCapture(false); err != nil {
			t.Fatal(err)
		}
		for _, scheme := range engine.AllSchemes {
			cell := Cell{Scheme: scheme, Workload: wl, Txs: txsPrefix, Seed: 7, Mut: smallMut}
			directSys, err := buildSystem(scheme, smallMut)
			if err != nil {
				t.Fatal(err)
			}
			directMet := measureWindow(directSys, wl.Runners(directSys, cell.Seed), txsPrefix, nil, 0)
			repMet, repSys, err := replayCellRun(cell, col)
			if err != nil {
				t.Fatalf("%s on %s: prefix replay: %v", wl.Name, scheme, err)
			}
			if !reflect.DeepEqual(directMet, repMet) {
				t.Errorf("%s on %s: prefix replay metrics diverge\ndirect: %+v\nreplay: %+v", wl.Name, scheme, directMet, repMet)
			}
			if !storesEqual(directSys.Durable(), repSys.Durable()) {
				t.Errorf("%s on %s: prefix replay durable image diverges from a direct %d-tx run", wl.Name, scheme, txsPrefix)
			}
		}
	}
}

// TestMatrixReplayMatchesDirectMatrix locks the two RunMatrixOn pipelines
// against each other at the API boundary.
func TestMatrixReplayMatchesDirectMatrix(t *testing.T) {
	opts := Options{Quick: true, Seed: 3, Workers: 2}
	wls := []workload.Workload{quickWL("queue")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP, engine.SchemeNative}
	replayM, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	opts.DirectMatrix = true
	directM, err := RunMatrixOn(opts, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayM.Cells, directM.Cells) {
		t.Fatalf("replay matrix diverges from direct matrix\nreplay: %+v\ndirect: %+v", replayM.Cells, directM.Cells)
	}
}

// TestMatrixReplayWorkerDeterminism: the replay pipeline stays bit-
// identical at every worker count (the acceptance bar the -race CI job
// holds it to).
func TestMatrixReplayWorkerDeterminism(t *testing.T) {
	wls := []workload.Workload{quickWL("hashmap")}
	schemes := []string{engine.SchemeRedo, engine.SchemeHOOP, engine.SchemeNative}
	m1, err := RunMatrixOn(Options{Quick: true, Seed: 3, Workers: 1}, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	m4, err := RunMatrixOn(Options{Quick: true, Seed: 3, Workers: 4}, wls, schemes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Cells, m4.Cells) {
		t.Fatal("replay matrix differs between 1 and 4 workers")
	}
}
