package harness

import (
	"fmt"
	"io"
	"strings"

	"hoop/internal/engine"
	"hoop/internal/sim"
	"hoop/internal/workload"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Approach    string
	Subtype     string
	Project     string
	ReadLatency string
	OnCritPath  string
	FlushFence  string
	Traffic     string
}

// PaperTableI reproduces the paper's Table I verbatim (the qualitative
// comparison of crash-consistency techniques).
func PaperTableI() []TableIRow {
	return []TableIRow{
		{"Logging", "Undo", "DCT", "Low", "Yes", "No", "High"},
		{"Logging", "Undo", "ATOM", "Low", "Yes", "No", "Medium"},
		{"Logging", "Undo", "Proteus", "Low", "Yes", "No", "Medium"},
		{"Logging", "Undo", "PiCL", "High", "No", "No", "High"},
		{"Logging", "Redo", "Mnemosyne", "High", "Yes", "Yes", "High"},
		{"Logging", "Redo", "LOC", "High", "Yes", "No", "High"},
		{"Logging", "Redo", "BPPM", "Low", "Yes", "Yes", "Medium"},
		{"Logging", "Redo", "SoftWrAP", "High", "Yes", "Yes", "High"},
		{"Logging", "Redo", "WrAP", "High", "Yes", "No", "High"},
		{"Logging", "Redo", "DudeTM", "Low", "No", "No", "High"},
		{"Logging", "Redo", "ReDU", "High", "Yes", "No", "Medium"},
		{"Logging", "Undo+Redo", "FWB", "High", "Yes", "No", "High"},
		{"Shadow paging", "Page", "BPFS", "Low", "Yes", "Yes", "High"},
		{"Shadow paging", "Cache line", "SSP", "Low", "Yes", "Yes", "Low"},
		{"Log-structured NVM", "", "LSNVMM", "High", "No", "No", "Medium"},
		{"HOOP", "", "HOOP", "Low", "No", "No", "Low"},
	}
}

// RenderTableI writes the paper's Table I followed by the properties the
// implemented schemes report about themselves.
func RenderTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: comparison of crash-consistency techniques for NVM (paper)")
	fmt.Fprintf(w, "%-20s %-11s %-10s %-12s %-14s %-13s %s\n",
		"Approach", "Subtype", "Project", "ReadLatency", "CriticalPath", "Flush&Fence", "WriteTraffic")
	fmt.Fprintln(w, strings.Repeat("-", 96))
	for _, r := range PaperTableI() {
		fmt.Fprintf(w, "%-20s %-11s %-10s %-12s %-14s %-13s %s\n",
			r.Approach, r.Subtype, r.Project, r.ReadLatency, r.OnCritPath, r.FlushFence, r.Traffic)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Implemented schemes (self-reported properties):")
	for _, name := range engine.AllSchemes {
		sys, err := engine.New(quickSystemConfig(name))
		if err != nil {
			fmt.Fprintf(w, "  %-10s <error: %v>\n", name, err)
			continue
		}
		p := sys.Scheme().Properties()
		crit, ff := "No", "No"
		if p.OnCriticalPath {
			crit = "Yes"
		}
		if p.NeedFlushFence {
			ff = "Yes"
		}
		fmt.Fprintf(w, "  %-10s read=%-5s critical-path=%-4s flush&fence=%-4s traffic=%s\n",
			name, p.ReadLatency, crit, ff, p.WriteTraffic)
	}
}

// quickSystemConfig is a minimal config for property inspection.
func quickSystemConfig(scheme string) engine.Config {
	cfg := engine.DefaultConfig(scheme)
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	return cfg
}

// RenderTableII writes the system configuration (the paper's Table II).
func RenderTableII(w io.Writer, cfg engine.Config) {
	fmt.Fprintln(w, "Table II: system configuration")
	fmt.Fprintf(w, "  Processor       %.1f GHz, %d cores (workloads run %d threads)\n",
		float64(engine.CPUFreq)/1e9, cfg.Cores, cfg.Threads)
	fmt.Fprintf(w, "  L1 I/D cache    %d KB, %d-way, %v\n", cfg.Cache.L1Size>>10, cfg.Cache.L1Ways, cfg.Cache.L1Latency)
	fmt.Fprintf(w, "  L2 cache        %d KB, %d-way, inclusive, %v\n", cfg.Cache.L2Size>>10, cfg.Cache.L2Ways, cfg.Cache.L2Latency)
	fmt.Fprintf(w, "  LLC             %d MB, %d-way, inclusive, %v\n", cfg.Cache.LLCSize>>20, cfg.Cache.LLCWays, cfg.Cache.LLCLatency)
	fmt.Fprintf(w, "  NVM             read %v / write %v, %d GB, %d banks, %.1f GB/s channel\n",
		cfg.NVM.ReadLatency, cfg.NVM.WriteLatency, cfg.NVM.Capacity>>30, cfg.NVM.Banks,
		float64(cfg.NVM.Bandwidth)/float64(1<<30))
	e := cfg.NVM.Energy
	fmt.Fprintf(w, "  NVM energy      row buffer %.2f/%.2f pJ/bit r/w, array %.2f/%.2f pJ/bit r/w\n",
		e.RowBufferRead, e.RowBufferWrite, e.ArrayRead, e.ArrayWrite)
	fmt.Fprintf(w, "  HOOP            mapping table %d MB, OOP buffer %d KB/core, eviction buffer %d KB, GC every %v\n",
		cfg.Hoop.MapTableBytes>>20, cfg.Hoop.OOPBufBytesPerCore>>10, cfg.Hoop.EvictBufBytes>>10, cfg.Hoop.GCPeriod)
}

// RenderTableIII writes the benchmark characteristics (the paper's
// Table III).
func RenderTableIII(w io.Writer) {
	fmt.Fprintln(w, "Table III: benchmarks")
	fmt.Fprintf(w, "  %-12s %-24s %-10s %s\n", "Workload", "Description", "Stores/TX", "Write/Read")
	fmt.Fprintln(w, "  "+strings.Repeat("-", 60))
	for _, wl := range append(workload.PaperSuite(workload.Options{}), workload.LargeItemSuite(workload.Options{})...) {
		fmt.Fprintf(w, "  %-12s %-24s %-10s %s\n", wl.Name, wl.Desc, wl.StoresPerTx, wl.WriteRead)
	}
}

// TableIV measures the GC data-reduction ratio (coalescing) as the number
// of transactions grows, per workload — the paper's Table IV.
func TableIV(opts Options) (*Grid, error) {
	counts := []int{10, 100, 1000, 10000}
	if opts.Quick {
		counts = []int{10, 100, 1000}
	}
	// Table IV measures update coalescing, so the benchmarks run on their
	// hot working sets (repeated updates to the same entries are what the
	// GC coalesces).
	base := opts.WL
	base.Keys = 512
	suite := workload.PaperSuite(base)
	g := &Grid{
		Title:   "Table IV: average data reduction in the GC of HOOP (coalesced fraction of modified bytes)",
		RowName: "tx count",
		Format:  "%.1f%%",
	}
	for _, wl := range suite {
		g.Cols = append(g.Cols, wl.Name)
	}
	var cells []Cell
	for _, n := range counts {
		for _, wl := range suite {
			cells = append(cells, Cell{
				Scheme: engine.SchemeHOOP, Workload: wl, Txs: n, Seed: opts.Seed + 3,
				Mut: func(c *engine.Config) {
					// Let coalescing accumulate across the whole window:
					// only the window-closing GC pass migrates.
					c.Hoop.GCPeriod = sim.Second
				},
			})
		}
	}
	opts.attachTrace("tableIV", cells)
	mets, _, err := runCellsCached(cells, opts)
	if err != nil {
		return nil, err
	}
	for ni, n := range counts {
		g.Rows = append(g.Rows, fmt.Sprintf("%d", n))
		row := make([]float64, 0, len(suite))
		for wi := range suite {
			met := mets[ni*len(suite)+wi]
			mig := met.Counters[sim.StatGCBytesMigrated]
			coal := met.Counters[sim.StatGCBytesCoalesed]
			red := 0.0
			if mig+coal > 0 {
				red = float64(coal) / float64(mig+coal) * 100
			}
			row = append(row, red)
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}
