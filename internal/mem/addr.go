// Package mem defines the physical address space shared by the whole
// simulator: address arithmetic at word and cache-line granularity, the
// home-region / OOP-region split, and a sparse functional byte store that
// holds the actual contents of the simulated NVM so that crash recovery can
// be verified for real, not just timed.
package mem

import "fmt"

// PAddr is a physical NVM address in bytes.
type PAddr uint64

// Geometry constants used throughout the reproduction. These mirror the
// paper: 64-byte cache lines and 8-byte words (HOOP tracks dirty data at
// word granularity, §III-C).
const (
	WordSize     = 8
	LineSize     = 64
	WordsPerLine = LineSize / WordSize
	LineShift    = 6
	WordShift    = 3
	LineOffMask  = LineSize - 1
	InvalidPAddr = PAddr(^uint64(0))
	PageSize     = 4096
	LinesPerPage = PageSize / LineSize
	PageShift    = 12
	PageOffMask  = PageSize - 1
	BytesPerKB   = 1 << 10
	BytesPerMB   = 1 << 20
	BytesPerGB   = 1 << 30
)

// LineAddr returns the address of the cache line containing a.
func LineAddr(a PAddr) PAddr { return a &^ PAddr(LineOffMask) }

// LineIndex returns the line number (address >> 6) of the line containing a.
func LineIndex(a PAddr) uint64 { return uint64(a) >> LineShift }

// WordAddr returns the address of the 8-byte word containing a.
func WordAddr(a PAddr) PAddr { return a &^ PAddr(WordSize-1) }

// WordInLine returns the index (0..7) of the word containing a within its
// cache line.
func WordInLine(a PAddr) int { return int(a&LineOffMask) >> WordShift }

// PageAddr returns the address of the 4 KB page containing a.
func PageAddr(a PAddr) PAddr { return a &^ PAddr(PageOffMask) }

// IsLineAligned reports whether a is 64-byte aligned.
func IsLineAligned(a PAddr) bool { return a&LineOffMask == 0 }

// IsWordAligned reports whether a is 8-byte aligned.
func IsWordAligned(a PAddr) bool { return a&(WordSize-1) == 0 }

// String renders the address in hex.
func (a PAddr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Region describes a contiguous physical address range [Base, Base+Size).
type Region struct {
	Base PAddr
	Size uint64
}

// Contains reports whether a falls inside the region.
func (r Region) Contains(a PAddr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// End returns the first address past the region.
func (r Region) End() PAddr { return r.Base + PAddr(r.Size) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() uint64 { return r.Size / LineSize }

// String renders the region as [base, end).
func (r Region) String() string {
	return fmt.Sprintf("[%v, %v)", r.Base, r.End())
}

// Layout is the physical partitioning of the simulated NVM DIMM: a home
// region holding application data at its "home addresses" and a dedicated
// OOP region (10% of capacity by default, §III-H) holding out-of-place
// updates. Baseline schemes reuse the OOP region's space for their logs or
// shadow copies so all schemes see the same device capacity.
type Layout struct {
	Home Region
	OOP  Region
}

// NewLayout splits capacity into a home region and an OOP region of
// oopFraction (e.g. 0.10). The OOP region sits above the home region.
func NewLayout(capacity uint64, oopFraction float64) Layout {
	if oopFraction <= 0 || oopFraction >= 1 {
		panic("mem: oopFraction must be in (0,1)")
	}
	oopSize := uint64(float64(capacity) * oopFraction)
	// Align both regions to cache lines.
	oopSize &^= uint64(LineOffMask)
	homeSize := (capacity - oopSize) &^ uint64(LineOffMask)
	return Layout{
		Home: Region{Base: 0, Size: homeSize},
		OOP:  Region{Base: PAddr(homeSize), Size: oopSize},
	}
}
