package mem

import "encoding/binary"

// Store is the functional contents of the simulated NVM: a sparse byte
// store over the 512 GB physical address space. Pages (4 KB) are allocated
// lazily on first write, so simulating a huge DIMM costs memory
// proportional to the working set only.
//
// Store carries no timing information — timing lives in internal/nvm. The
// split lets crash-consistency tests reason about "what survives a crash"
// (this store) separately from "how long did it take".
type Store struct {
	pages map[uint64][]byte
	obs   WriteObserver
}

// A WriteObserver is notified after every mutation of the store, decomposed
// into aligned 8-byte persist units: for each unit overlapping the mutated
// range it receives the unit's address and post-image. Real PM hardware
// guarantees atomicity only at this granularity, so the observer sees
// exactly the sequence of atomically-persistable writes — the basis of the
// crash-point journal in internal/nvm.
//
// Reset and CopyFrom are wholesale state swaps used by test harnesses, not
// NVM writes; they are not observed and must not be called while an
// observer that models durability is attached.
type WriteObserver func(a PAddr, unit [WordSize]byte)

// SetWriteObserver installs fn (nil detaches). Only one observer is
// supported at a time; Clone does not carry the observer over.
func (s *Store) SetWriteObserver(fn WriteObserver) { s.obs = fn }

// notifyRange reports the aligned 8-byte units overlapping [a, a+n) to the
// observer, reading each unit's post-image from the store.
func (s *Store) notifyRange(a PAddr, n uint64) {
	if s.obs == nil || n == 0 {
		return
	}
	end := uint64(a) + n
	for w := uint64(WordAddr(a)); w < end; w += WordSize {
		var unit [WordSize]byte
		s.Read(PAddr(w), unit[:])
		s.obs(PAddr(w), unit)
	}
}

// NewStore returns an empty (all-zero) store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64][]byte)}
}

func (s *Store) page(a PAddr, create bool) []byte {
	idx := uint64(a) >> PageShift
	p, ok := s.pages[idx]
	if !ok && create {
		p = make([]byte, PageSize)
		s.pages[idx] = p
	}
	return p
}

// Read copies len(dst) bytes starting at a into dst. Unwritten memory
// reads as zero.
func (s *Store) Read(a PAddr, dst []byte) {
	for len(dst) > 0 {
		off := int(a & PageOffMask)
		n := PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p := s.page(a, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		a += PAddr(n)
	}
}

// Write copies src into the store starting at a.
func (s *Store) Write(a PAddr, src []byte) {
	start, total := a, uint64(len(src))
	for len(src) > 0 {
		off := int(a & PageOffMask)
		n := PageSize - off
		if n > len(src) {
			n = len(src)
		}
		copy(s.page(a, true)[off:off+n], src[:n])
		src = src[n:]
		a += PAddr(n)
	}
	s.notifyRange(start, total)
}

// ReadWord reads the 8-byte little-endian word at a (must be word-aligned).
func (s *Store) ReadWord(a PAddr) uint64 {
	var buf [WordSize]byte
	s.Read(a, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// WriteWord writes the 8-byte little-endian word v at a (must be
// word-aligned).
func (s *Store) WriteWord(a PAddr, v uint64) {
	var buf [WordSize]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.Write(a, buf[:])
}

// ReadLine reads the 64-byte cache line containing a.
func (s *Store) ReadLine(a PAddr) [LineSize]byte {
	var line [LineSize]byte
	s.Read(LineAddr(a), line[:])
	return line
}

// WriteLine writes a full 64-byte cache line at the line containing a.
func (s *Store) WriteLine(a PAddr, line [LineSize]byte) {
	s.Write(LineAddr(a), line[:])
}

// Clone returns a deep copy of the store. Used by tests to snapshot
// durable state before injecting a crash.
func (s *Store) Clone() *Store {
	c := NewStore()
	for idx, p := range s.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		c.pages[idx] = cp
	}
	return c
}

// PagesAllocated reports how many 4 KB pages have been materialized.
func (s *Store) PagesAllocated() int { return len(s.pages) }

// ForEachPage calls fn for every materialized page with its base address
// and contents, in ascending address order. fn must not modify the store.
func (s *Store) ForEachPage(fn func(base PAddr, data []byte)) {
	idxs := make([]uint64, 0, len(s.pages))
	for idx := range s.pages {
		idxs = append(idxs, idx)
	}
	sortUint64(idxs)
	for _, idx := range idxs {
		fn(PAddr(idx<<PageShift), s.pages[idx])
	}
}

func sortUint64(a []uint64) {
	// Insertion sort is fine for the typical page counts in tests; large
	// stores use the stdlib path below.
	if len(a) > 64 {
		quickSortU64(a, 0, len(a)-1)
		return
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func quickSortU64(a []uint64, lo, hi int) {
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSortU64(a, lo, j)
			lo = i
		} else {
			quickSortU64(a, i, hi)
			hi = j
		}
	}
}

// Reset drops every page, returning the store to all-zeros, while keeping
// the store object (and every pointer to it) valid.
func (s *Store) Reset() {
	s.pages = make(map[uint64][]byte)
}

// CopyFrom replaces this store's contents with a deep copy of other's.
func (s *Store) CopyFrom(other *Store) {
	s.Reset()
	for idx, p := range other.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.pages[idx] = cp
	}
}

// ZeroRange clears [a, a+n). Used when a scheme recycles log/OOP space.
// Only materialized pages are touched (unwritten memory already reads as
// zero), and only those mutated subranges are reported to the observer.
func (s *Store) ZeroRange(a PAddr, n uint64) {
	zero := make([]byte, PageSize)
	for n > 0 {
		off := int(a & PageOffMask)
		c := uint64(PageSize - off)
		if c > n {
			c = n
		}
		if p := s.page(a, false); p != nil {
			copy(p[off:off+int(c)], zero[:c])
			s.notifyRange(a, c)
		}
		a += PAddr(c)
		n -= c
	}
}
