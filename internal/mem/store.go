package mem

import (
	"encoding/binary"
	"slices"
)

// Store is the functional contents of the simulated NVM: a sparse byte
// store over the 512 GB physical address space. Pages (4 KB) are allocated
// lazily on first write, so simulating a huge DIMM costs memory
// proportional to the working set only.
//
// Store carries no timing information — timing lives in internal/nvm. The
// split lets crash-consistency tests reason about "what survives a crash"
// (this store) separately from "how long did it take".
//
// The store remembers the last page it touched: simulated traffic is
// bursty at line/page granularity (slice streaming, log appends, GC
// migration), so sequential word and line accesses hit the cached page and
// skip the page-map hash.
type Store struct {
	pages map[uint64][]byte
	obs   WriteObserver

	lastIdx  uint64
	lastPage []byte // nil when the cache is empty
}

// A WriteObserver is notified after every mutation of the store, decomposed
// into aligned 8-byte persist units: for each unit overlapping the mutated
// range it receives the unit's address and post-image. Real PM hardware
// guarantees atomicity only at this granularity, so the observer sees
// exactly the sequence of atomically-persistable writes — the basis of the
// crash-point journal in internal/nvm.
//
// Reset and CopyFrom are wholesale state swaps used by test harnesses, not
// NVM writes; they are not observed and must not be called while an
// observer that models durability is attached.
type WriteObserver func(a PAddr, unit [WordSize]byte)

// SetWriteObserver installs fn (nil detaches). Only one observer is
// supported at a time; Clone does not carry the observer over.
func (s *Store) SetWriteObserver(fn WriteObserver) { s.obs = fn }

// notifyRange reports the aligned 8-byte units overlapping [a, a+n) to the
// observer, reading each unit's post-image directly from the page slice
// (units are 8-byte aligned and pages 4 KB aligned, so a unit never
// straddles a page).
func (s *Store) notifyRange(a PAddr, n uint64) {
	if s.obs == nil || n == 0 {
		return
	}
	end := uint64(a) + n
	for w := uint64(WordAddr(a)); w < end; {
		p := s.page(PAddr(w), false)
		pageEnd := (w &^ uint64(PageOffMask)) + PageSize
		for ; w < end && w < pageEnd; w += WordSize {
			var unit [WordSize]byte
			if p != nil {
				off := w & PageOffMask
				copy(unit[:], p[off:off+WordSize])
			}
			s.obs(PAddr(w), unit)
		}
	}
}

// NewStore returns an empty (all-zero) store.
func NewStore() *Store {
	return &Store{pages: make(map[uint64][]byte)}
}

// page returns the page backing a, allocating it when create is true.
// Only the create (mutating) path refreshes the last-page cache: read
// paths must stay free of writes so concurrent readers remain safe, the
// same contract the bare map gave (reads may run concurrently, any write
// requires exclusive access).
func (s *Store) page(a PAddr, create bool) []byte {
	idx := uint64(a) >> PageShift
	if s.lastPage != nil && s.lastIdx == idx {
		return s.lastPage
	}
	p, ok := s.pages[idx]
	if !ok && create {
		p = make([]byte, PageSize)
		s.pages[idx] = p
	}
	if create {
		s.lastIdx, s.lastPage = idx, p
	}
	return p
}

// Read copies len(dst) bytes starting at a into dst. Unwritten memory
// reads as zero.
func (s *Store) Read(a PAddr, dst []byte) {
	for len(dst) > 0 {
		off := int(a & PageOffMask)
		n := PageSize - off
		if n > len(dst) {
			n = len(dst)
		}
		if p := s.page(a, false); p != nil {
			copy(dst[:n], p[off:off+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		a += PAddr(n)
	}
}

// Write copies src into the store starting at a.
func (s *Store) Write(a PAddr, src []byte) {
	if off := int(a & PageOffMask); off+len(src) <= PageSize {
		// Single-page fast path: the vast majority of simulated writes are
		// word/line/slice granules that never cross a page.
		copy(s.page(a, true)[off:off+len(src)], src)
		s.notifyRange(a, uint64(len(src)))
		return
	}
	start, total := a, uint64(len(src))
	for len(src) > 0 {
		off := int(a & PageOffMask)
		n := PageSize - off
		if n > len(src) {
			n = len(src)
		}
		copy(s.page(a, true)[off:off+n], src[:n])
		src = src[n:]
		a += PAddr(n)
	}
	s.notifyRange(start, total)
}

// ReadWord reads the 8-byte little-endian word at a (must be word-aligned).
func (s *Store) ReadWord(a PAddr) uint64 {
	p := s.page(a, false)
	if p == nil {
		return 0
	}
	off := a & PageOffMask
	return binary.LittleEndian.Uint64(p[off : off+WordSize])
}

// WriteWord writes the 8-byte little-endian word v at a (must be
// word-aligned).
func (s *Store) WriteWord(a PAddr, v uint64) {
	p := s.page(a, true)
	off := a & PageOffMask
	binary.LittleEndian.PutUint64(p[off:off+WordSize], v)
	if s.obs != nil {
		var unit [WordSize]byte
		binary.LittleEndian.PutUint64(unit[:], v)
		s.obs(a, unit)
	}
}

// ReadLine reads the 64-byte cache line containing a.
func (s *Store) ReadLine(a PAddr) [LineSize]byte {
	var line [LineSize]byte
	la := LineAddr(a)
	if p := s.page(la, false); p != nil {
		off := la & PageOffMask
		copy(line[:], p[off:off+LineSize])
	}
	return line
}

// WriteLine writes a full 64-byte cache line at the line containing a.
func (s *Store) WriteLine(a PAddr, line [LineSize]byte) {
	la := LineAddr(a)
	p := s.page(la, true)
	off := la & PageOffMask
	copy(p[off:off+LineSize], line[:])
	if s.obs != nil {
		for w := 0; w < LineSize; w += WordSize {
			var unit [WordSize]byte
			copy(unit[:], line[w:w+WordSize])
			s.obs(la+PAddr(w), unit)
		}
	}
}

// Clone returns a deep copy of the store. Used by tests to snapshot
// durable state before injecting a crash.
func (s *Store) Clone() *Store {
	c := NewStore()
	for idx, p := range s.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		c.pages[idx] = cp
	}
	return c
}

// PagesAllocated reports how many 4 KB pages have been materialized.
func (s *Store) PagesAllocated() int { return len(s.pages) }

// ForEachPage calls fn for every materialized page with its base address
// and contents, in ascending address order. fn must not modify the store.
func (s *Store) ForEachPage(fn func(base PAddr, data []byte)) {
	s.ForEachPageUntil(func(base PAddr, data []byte) bool {
		fn(base, data)
		return true
	})
}

// ForEachPageUntil is ForEachPage with early termination: it stops as soon
// as fn returns false. Scans that only need a bounded prefix (recovery
// verification reporting the first few mismatches) avoid walking the rest
// of the working set.
func (s *Store) ForEachPageUntil(fn func(base PAddr, data []byte) bool) {
	idxs := make([]uint64, 0, len(s.pages))
	for idx := range s.pages {
		idxs = append(idxs, idx)
	}
	slices.Sort(idxs)
	for _, idx := range idxs {
		if !fn(PAddr(idx<<PageShift), s.pages[idx]) {
			return
		}
	}
}

// Reset drops every page, returning the store to all-zeros, while keeping
// the store object (and every pointer to it) valid.
func (s *Store) Reset() {
	s.pages = make(map[uint64][]byte)
	s.lastPage = nil
}

// CopyFrom replaces this store's contents with a deep copy of other's.
func (s *Store) CopyFrom(other *Store) {
	s.Reset()
	for idx, p := range other.pages {
		cp := make([]byte, PageSize)
		copy(cp, p)
		s.pages[idx] = cp
	}
}

// zeroPage is the shared all-zero source for ZeroRange; it is never
// written to.
var zeroPage [PageSize]byte

// ZeroRange clears [a, a+n). Used when a scheme recycles log/OOP space.
// Only materialized pages are touched (unwritten memory already reads as
// zero), and only those mutated subranges are reported to the observer.
func (s *Store) ZeroRange(a PAddr, n uint64) {
	for n > 0 {
		off := int(a & PageOffMask)
		c := uint64(PageSize - off)
		if c > n {
			c = n
		}
		if p := s.page(a, false); p != nil {
			copy(p[off:off+int(c)], zeroPage[:c])
			s.notifyRange(a, c)
		}
		a += PAddr(c)
		n -= c
	}
}
