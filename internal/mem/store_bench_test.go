package mem

import "testing"

// The store benchmarks cover the access shapes the simulator's hot path
// actually issues: sequential word writes (slice streaming, journal
// replay), word writes with a write observer attached (every crash test
// runs this way), line-granule traffic (cache fills and evictions), and
// log-recycle zeroing. benchRegion spans multiple pages so the page-lookup
// cost is exercised, while staying small enough to keep the working set in
// host cache — the numbers then isolate the store's own bookkeeping.
const benchRegion = 16 * PageSize

func BenchmarkStoreWriteWordSeq(b *testing.B) {
	s := NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := PAddr(uint64(i) * WordSize % benchRegion)
		s.WriteWord(a, uint64(i))
	}
}

func BenchmarkStoreWriteWordJournal(b *testing.B) {
	// The crash-test configuration: every mutation is decomposed into
	// aligned 8-byte persist units and handed to an observer (the journal
	// appends them). This is the tax on every durable write in a fuzz run.
	s := NewStore()
	sink := make([]struct {
		a PAddr
		v [WordSize]byte
	}, 0, 1024)
	s.SetWriteObserver(func(a PAddr, unit [WordSize]byte) {
		if len(sink) == cap(sink) {
			sink = sink[:0]
		}
		sink = append(sink, struct {
			a PAddr
			v [WordSize]byte
		}{a, unit})
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := PAddr(uint64(i) * WordSize % benchRegion)
		s.WriteWord(a, uint64(i))
	}
}

func BenchmarkStoreReadWordSeq(b *testing.B) {
	s := NewStore()
	for a := PAddr(0); a < benchRegion; a += WordSize {
		s.WriteWord(a, uint64(a))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		a := PAddr(uint64(i) * WordSize % benchRegion)
		acc += s.ReadWord(a)
	}
	benchSinkU64 = acc
}

func BenchmarkStoreWriteLineSeq(b *testing.B) {
	s := NewStore()
	var line [LineSize]byte
	for i := range line {
		line[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := PAddr(uint64(i) * LineSize % benchRegion)
		s.WriteLine(a, line)
	}
}

func BenchmarkStoreReadLineSeq(b *testing.B) {
	s := NewStore()
	for a := PAddr(0); a < benchRegion; a += WordSize {
		s.WriteWord(a, uint64(a))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc byte
	for i := 0; i < b.N; i++ {
		a := PAddr(uint64(i) * LineSize % benchRegion)
		l := s.ReadLine(a)
		acc += l[0]
	}
	benchSinkByte = acc
}

func BenchmarkStoreZeroRange(b *testing.B) {
	// Log-recycle shape: clear a materialized 4-page span.
	s := NewStore()
	for a := PAddr(0); a < 4*PageSize; a += WordSize {
		s.WriteWord(a, ^uint64(0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ZeroRange(0, 4*PageSize)
	}
}

func BenchmarkStoreForEachPage(b *testing.B) {
	s := NewStore()
	for a := PAddr(0); a < 256*PageSize; a += PageSize {
		s.WriteWord(a, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		s.ForEachPage(func(base PAddr, data []byte) { n++ })
	}
	benchSinkInt = n
}

var (
	benchSinkU64  uint64
	benchSinkByte byte
	benchSinkInt  int
)
