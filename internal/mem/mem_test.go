package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddrArithmetic(t *testing.T) {
	a := PAddr(0x12345)
	if LineAddr(a) != 0x12340 {
		t.Fatalf("LineAddr = %v", LineAddr(a))
	}
	if LineIndex(a) != 0x12345>>6 {
		t.Fatalf("LineIndex = %d", LineIndex(a))
	}
	if WordAddr(PAddr(0x17)) != 0x10 {
		t.Fatal("WordAddr")
	}
	if WordInLine(PAddr(0x38)) != 7 {
		t.Fatalf("WordInLine = %d", WordInLine(PAddr(0x38)))
	}
	if PageAddr(PAddr(0x1FFF)) != 0x1000 {
		t.Fatal("PageAddr")
	}
	if !IsLineAligned(0x40) || IsLineAligned(0x41) {
		t.Fatal("IsLineAligned")
	}
	if !IsWordAligned(0x8) || IsWordAligned(0x9) {
		t.Fatal("IsWordAligned")
	}
}

func TestRegion(t *testing.T) {
	r := Region{Base: 100 * LineSize, Size: 10 * LineSize}
	if !r.Contains(r.Base) || !r.Contains(r.End()-1) || r.Contains(r.End()) || r.Contains(r.Base-1) {
		t.Fatal("Contains boundaries wrong")
	}
	if r.Lines() != 10 {
		t.Fatalf("Lines = %d", r.Lines())
	}
}

func TestLayoutSplit(t *testing.T) {
	l := NewLayout(512<<30, 0.10)
	if l.Home.Base != 0 {
		t.Fatal("home must start at zero")
	}
	if l.Home.Size+l.OOP.Size > 512<<30 {
		t.Fatal("layout exceeds capacity")
	}
	if l.OOP.Base != PAddr(l.Home.Size) {
		t.Fatal("OOP region must follow home region")
	}
	frac := float64(l.OOP.Size) / float64(512<<30)
	if frac < 0.099 || frac > 0.101 {
		t.Fatalf("OOP fraction = %f", frac)
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	// Unwritten memory reads as zero.
	buf := make([]byte, 100)
	s.Read(5000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh store must read zero")
		}
	}
	// Cross-page write/read roundtrip.
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	base := PAddr(PageSize - 100)
	s.Write(base, data)
	got := make([]byte, len(data))
	s.Read(base, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page roundtrip mismatch")
	}
}

func TestStoreWords(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x1000, 0xDEADBEEFCAFEF00D)
	if s.ReadWord(0x1000) != 0xDEADBEEFCAFEF00D {
		t.Fatal("word roundtrip")
	}
	var line [LineSize]byte
	line[0] = 0xAA
	line[63] = 0xBB
	s.WriteLine(0x2001, line) // aligned down to 0x2000
	got := s.ReadLine(0x2005)
	if got != line {
		t.Fatal("line roundtrip")
	}
}

func TestStoreCloneIsDeep(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x100, 1)
	c := s.Clone()
	s.WriteWord(0x100, 2)
	if c.ReadWord(0x100) != 1 {
		t.Fatal("clone must be independent")
	}
}

func TestStoreResetAndCopyFrom(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x100, 42)
	s.Reset()
	if s.ReadWord(0x100) != 0 {
		t.Fatal("Reset must clear contents")
	}
	other := NewStore()
	other.WriteWord(0x200, 7)
	s.CopyFrom(other)
	if s.ReadWord(0x200) != 7 {
		t.Fatal("CopyFrom missed data")
	}
	other.WriteWord(0x200, 8)
	if s.ReadWord(0x200) != 7 {
		t.Fatal("CopyFrom must deep-copy")
	}
}

func TestStoreZeroRange(t *testing.T) {
	s := NewStore()
	for i := PAddr(0); i < 3*PageSize; i += WordSize {
		s.WriteWord(i, 0xFF)
	}
	s.ZeroRange(100*WordSize, PageSize)
	if s.ReadWord(99*WordSize) != 0xFF {
		t.Fatal("ZeroRange clobbered preceding data")
	}
	if s.ReadWord(100*WordSize) != 0 {
		t.Fatal("ZeroRange missed start")
	}
	end := PAddr(100*WordSize) + PageSize
	if s.ReadWord(end-WordSize) != 0 {
		t.Fatal("ZeroRange missed end")
	}
	if s.ReadWord(end) != 0xFF {
		t.Fatal("ZeroRange clobbered following data")
	}
}

func TestStoreForEachPageOrdered(t *testing.T) {
	s := NewStore()
	for _, p := range []PAddr{7 * PageSize, 2 * PageSize, 100 * PageSize, 3 * PageSize} {
		s.WriteWord(p, 1)
	}
	var got []PAddr
	s.ForEachPage(func(base PAddr, _ []byte) { got = append(got, base) })
	if len(got) != 4 {
		t.Fatalf("visited %d pages", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("pages must visit in ascending order")
		}
	}
}

// TestStoreForEachPageUntilStops verifies the bool-returning walk actually
// stops visiting pages once the callback returns false (callers like the
// engine's VerifyRecovered rely on this to bail out early).
func TestStoreForEachPageUntilStops(t *testing.T) {
	s := NewStore()
	for i := 0; i < 16; i++ {
		s.WriteWord(PAddr(i)*PageSize, uint64(i)+1)
	}
	visits := 0
	s.ForEachPageUntil(func(base PAddr, _ []byte) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("visited %d pages after returning false, want 3", visits)
	}
	// Lowest-addressed pages come first, so an early stop sees a prefix.
	var bases []PAddr
	s.ForEachPageUntil(func(base PAddr, _ []byte) bool {
		bases = append(bases, base)
		return len(bases) < 2
	})
	if len(bases) != 2 || bases[0] != 0 || bases[1] != PageSize {
		t.Fatalf("early-stopped walk saw %v, want first two pages", bases)
	}
}

// Property: any write then read of the same range returns the same bytes.
func TestStoreQuickRoundtrip(t *testing.T) {
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 10000 {
			data = data[:10000]
		}
		s := NewStore()
		a := PAddr(addr)
		s.Write(a, data)
		got := make([]byte, len(data))
		s.Read(a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
