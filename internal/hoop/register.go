package hoop

import (
	"fmt"

	"hoop/internal/persist"
)

// SchemeName is the registry name and figure label of HOOP.
const SchemeName = "HOOP"

func init() {
	persist.Register(SchemeName, func(ctx persist.Context, opt any) (persist.Scheme, error) {
		cfg := DefaultConfig()
		switch o := opt.(type) {
		case nil:
		case Config:
			cfg = o
		default:
			return nil, fmt.Errorf("hoop: options must be hoop.Config, got %T", opt)
		}
		return New(ctx, cfg)
	})
}

// Compile-time capability checks: the harness reaches HOOP's GC and
// recovery machinery through these interfaces only.
var (
	_ persist.Quiescer        = (*Scheme)(nil)
	_ persist.GCReporter      = (*Scheme)(nil)
	_ persist.RecoveryScanner = (*Scheme)(nil)
)
