package hoop

import (
	"bytes"
	"testing"
	"testing/quick"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/persisttest"
	"hoop/internal/sim"
)

func TestDataSliceRoundtrip(t *testing.T) {
	f := func(seed uint64, count8 uint8, first bool) bool {
		r := sim.NewRand(seed)
		var ds DataSlice
		ds.Count = int(count8%8) + 1
		ds.First = first
		ds.TxID = persist.TxID(r.Uint64() & 0xFFFFFFFF)
		ds.Prev = mem.PAddr(r.Uint64() >> 20)
		for i := 0; i < ds.Count; i++ {
			ds.Addrs[i] = mem.PAddr((r.Uint64() % (1 << 37)) &^ 7)
			for b := range ds.Words[i] {
				ds.Words[i][b] = byte(r.Uint64())
			}
		}
		enc := ds.Encode()
		got, err := DecodeDataSlice(enc[:])
		if err != nil {
			return false
		}
		if got.Count != ds.Count || got.First != ds.First || got.TxID != ds.TxID || got.Prev != ds.Prev {
			return false
		}
		for i := 0; i < ds.Count; i++ {
			if got.Addrs[i] != ds.Addrs[i] || got.Words[i] != ds.Words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDataSliceRejectsGarbage(t *testing.T) {
	var zero [SliceSize]byte
	if _, err := DecodeDataSlice(zero[:]); err == nil {
		t.Fatal("zeroed slice must not decode")
	}
	var short [10]byte
	if _, err := DecodeDataSlice(short[:]); err == nil {
		t.Fatal("short buffer must not decode")
	}
	var bad [SliceSize]byte
	bad[offFlags] = sliceTypeData << 4
	bad[offCount] = 9 // out of range
	if _, err := DecodeDataSlice(bad[:]); err == nil {
		t.Fatal("bad count must not decode")
	}
}

func TestAddr40Bounds(t *testing.T) {
	var b [8]byte
	putAddr40(b[:], (1<<40)-8)
	if getAddr40(b[:]) != (1<<40)-8 {
		t.Fatal("40-bit roundtrip")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past 40 bits")
		}
	}()
	putAddr40(b[:], 1<<40)
}

func TestBlockHeaderRoundtrip(t *testing.T) {
	h := BlockHeader{State: BlkFull, Seq: 12345, Index: 42}
	enc := h.Encode()
	if got := DecodeBlockHeader(enc[:]); got != h {
		t.Fatalf("header roundtrip: %+v", got)
	}
}

func TestCommitRecRoundtrip(t *testing.T) {
	rec := encodeCommitRec(7, 9, 0x1234560, recFlagDecision)
	seq, tx, last, flags, ok := decodeCommitRec(rec[:])
	if !ok || seq != 7 || tx != 9 || last != 0x1234560 || flags != recFlagDecision {
		t.Fatalf("decoded %d %d %v %#x %v", seq, tx, last, flags, ok)
	}
	var zero [commitRecSize]byte
	if _, _, _, _, ok := decodeCommitRec(zero[:]); ok {
		t.Fatal("zero record must be invalid")
	}
}

func TestMapTableCapacity(t *testing.T) {
	mt := newMapTable(10*entryBytes, false)
	if mt.capacity != 10 {
		t.Fatalf("capacity = %d", mt.capacity)
	}
	for i := uint64(0); i < 10; i++ {
		mt.insert(i, mapEntry{slice: mem.PAddr(i)})
	}
	if !mt.overCap() {
		t.Fatal("table at capacity must report overCap")
	}
	if e, ok := mt.lookup(3); !ok || e.slice != 3 {
		t.Fatal("lookup failed")
	}
	if _, ok := mt.remove(3); !ok {
		t.Fatal("remove failed")
	}
	if _, ok := mt.lookup(3); ok {
		t.Fatal("removed entry still present")
	}
	mt.reset()
	if mt.len() != 0 {
		t.Fatal("reset must clear")
	}
}

func TestEvictBufferFIFO(t *testing.T) {
	b := newEvictBuffer(4 * evictBufEntryBytes)
	for i := uint64(0); i < 4; i++ {
		b.add(i)
	}
	if !b.contains(0) || b.len() != 4 {
		t.Fatal("buffer should hold 4 entries")
	}
	b.add(100) // displaces the oldest (0)
	if b.contains(0) {
		t.Fatal("oldest entry should have been displaced")
	}
	if !b.contains(100) || !b.contains(1) {
		t.Fatal("newer entries must survive")
	}
	b.add(1) // re-add is a no-op
	if b.len() != 4 {
		t.Fatalf("len = %d", b.len())
	}
}

// testScheme builds a HOOP scheme over the shared persisttest fixture (no
// engine): 1 GB home region with a 64 MB OOP region.
func testScheme(t *testing.T, cores int) (*Scheme, persist.Context) {
	t.Helper()
	ctx := persisttest.NewContext(cores)
	cfg := DefaultConfig()
	cfg.CommitLogBytes = 1 << 20
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

// writeTx drives one transaction of word writes directly through the
// scheme (bypassing the cache hierarchy), mirroring them into view.
func writeTx(s *Scheme, ctx persist.Context, core int, words map[mem.PAddr]uint64) {
	persisttest.RunTx(s, ctx, core, words)
}

func TestSchemeCommitRecoverRoundtrip(t *testing.T) {
	s, ctx := testScheme(t, 2)
	oracle := map[mem.PAddr]uint64{}
	r := sim.NewRand(5)
	for i := 0; i < 200; i++ {
		words := map[mem.PAddr]uint64{}
		for j := 0; j < 1+r.Intn(12); j++ {
			words[mem.PAddr(r.Intn(4096))*8] = r.Uint64()
		}
		writeTx(s, ctx, i%2, words)
		for a, v := range words {
			oracle[a] = v
		}
	}
	s.Crash()
	if _, err := s.Recover(4); err != nil {
		t.Fatal(err)
	}
	for a, v := range oracle {
		if got := ctx.Dev.Store().ReadWord(a); got != v {
			t.Fatalf("word %v = %#x, want %#x", a, got, v)
		}
	}
}

func TestSchemeUncommittedTxIsInvisibleAfterCrash(t *testing.T) {
	s, ctx := testScheme(t, 1)
	// Committed transaction.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x100: 1, 0x200: 2})
	// Open (never committed) transaction with flushed slices.
	tx, now := s.TxBegin(0, 0)
	for i := 0; i < 20; i++ { // > 8 words forces slice flushes
		var buf [8]byte
		buf[0] = 0xEE
		now = s.Store(0, tx, mem.PAddr(0x1000+i*8), buf[:], now)
	}
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	st := ctx.Dev.Store()
	if st.ReadWord(0x100) != 1 || st.ReadWord(0x200) != 2 {
		t.Fatal("committed data lost")
	}
	for i := 0; i < 20; i++ {
		if st.ReadWord(mem.PAddr(0x1000+i*8)) != 0 {
			t.Fatalf("uncommitted store leaked to home at %#x", 0x1000+i*8)
		}
	}
}

func TestGCMigratesAndCoalesces(t *testing.T) {
	s, ctx := testScheme(t, 1)
	// Ten transactions overwrite the same two words; GC must write each
	// home word once with the newest value.
	for i := uint64(1); i <= 10; i++ {
		writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: i, 0x80: i * 100})
	}
	end := s.ForceGC(0)
	if end <= 0 {
		t.Fatal("GC must take time")
	}
	st := ctx.Dev.Store()
	if st.ReadWord(0x40) != 10 || st.ReadWord(0x80) != 1000 {
		t.Fatalf("home after GC: %d %d", st.ReadWord(0x40), st.ReadWord(0x80))
	}
	if s.PendingCommits() != 0 {
		t.Fatal("GC must clear the pending set")
	}
	red := s.DataReduction()
	if red < 0.85 {
		t.Fatalf("10x overwrite of 2 words should coalesce ~90%%, got %.2f", red)
	}
	// Second GC with nothing pending is a no-op for data.
	mig := s.GCMigratedBytes()
	s.ForceGC(end)
	if s.GCMigratedBytes() != mig {
		t.Fatal("empty GC migrated data")
	}
}

func TestGCIdempotentUnderReplay(t *testing.T) {
	// Crash after GC (watermark written) must not replay migrated txs.
	s, ctx := testScheme(t, 1)
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: 7})
	s.ForceGC(0)
	// A later transaction writes a different value.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: 9})
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Dev.Store().ReadWord(0x40); got != 9 {
		t.Fatalf("post-recovery value %d, want 9 (stale replay?)", got)
	}
}

func TestQuickRandomCrashRecovery(t *testing.T) {
	f := func(seed uint64) bool {
		s, ctx := testScheme(t, 2)
		r := sim.NewRand(seed)
		oracle := map[mem.PAddr]uint64{}
		n := 20 + r.Intn(60)
		for i := 0; i < n; i++ {
			words := map[mem.PAddr]uint64{}
			for j := 0; j < 1+r.Intn(10); j++ {
				words[mem.PAddr(r.Intn(256))*8] = r.Uint64()
			}
			writeTx(s, ctx, i%2, words)
			for a, v := range words {
				oracle[a] = v
			}
			if r.Bool(0.1) {
				s.ForceGC(0)
			}
		}
		s.Crash()
		if _, err := s.Recover(1 + r.Intn(4)); err != nil {
			return false
		}
		for a, v := range oracle {
			if ctx.Dev.Store().ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticFillRecovers(t *testing.T) {
	s, ctx := testScheme(t, 1)
	filled, err := s.SyntheticFill(500, 16, 1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if filled != 500*2*SliceSize {
		t.Fatalf("filled %d bytes", filled)
	}
	s.Crash()
	rep, err := s.RecoverWithReport(4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommittedTxs != 500 || rep.SlicesScanned != 1000 {
		t.Fatalf("report %+v", rep)
	}
	if rep.WordsRecovered == 0 || rep.ModeledTime <= 0 {
		t.Fatalf("report %+v", rep)
	}
	// The model is monotone in threads and bandwidth.
	if ModelRecoveryTime(rep, 8, 10<<30) > ModelRecoveryTime(rep, 1, 10<<30) {
		t.Fatal("more threads should not slow recovery")
	}
	if ModelRecoveryTime(rep, 8, 30<<30) > ModelRecoveryTime(rep, 8, 10<<30) {
		t.Fatal("more bandwidth should not slow recovery")
	}
	_ = ctx
}

func TestUniformWearAcrossBlocks(t *testing.T) {
	s, ctx := testScheme(t, 1)
	// Fill enough slices to cycle through several blocks, with periodic GC
	// so blocks recycle round-robin.
	for round := 0; round < 6; round++ {
		if _, err := s.SyntheticFill(1200, 64, 1<<20, uint64(round)); err != nil {
			t.Fatal(err)
		}
		s.ForceGC(0)
	}
	dataRegion := mem.Region{Base: s.blockBase, Size: uint64(len(s.blocks)) * BlockSize}
	buckets, minW, maxW, total := ctx.Dev.WearInRegion(dataRegion)
	if buckets < 4 || total == 0 {
		t.Fatalf("wear did not spread: %d buckets, %d bytes", buckets, total)
	}
	if maxW > 30*minW {
		t.Fatalf("wear imbalance: min %d max %d over %d buckets", minW, maxW, buckets)
	}
}

func TestReadMissRouting(t *testing.T) {
	s, ctx := testScheme(t, 1)
	// A committed write followed by an eviction creates a mapping entry;
	// the read must hit it and remove it.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: 1, 0x48: 2})
	ev := cache.Eviction{Line: 0x40, Persistent: true}
	s.Evict(0, ev, 0)
	if s.MappingTableLen() != 1 {
		t.Fatalf("mapping entries = %d, want 1", s.MappingTableLen())
	}
	done, dirty := s.ReadMiss(0, 0x40, 0)
	if !dirty {
		t.Fatal("mapping-table hit must fill dirty")
	}
	if done <= 0 {
		t.Fatal("read must take time")
	}
	if s.MappingTableLen() != 0 {
		t.Fatal("entry must be removed on read (newest version now cached)")
	}
	if ctx.Stats.Get(sim.StatMapHits) != 1 {
		t.Fatal("map hit not counted")
	}
	// Second miss goes to the home region.
	s.ReadMiss(0, 0x40, 0)
	if ctx.Stats.Get(sim.StatMapMisses) != 1 {
		t.Fatal("map miss not counted")
	}
}

func TestEvictionOfMigratedLineIsDropped(t *testing.T) {
	s, ctx := testScheme(t, 1)
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: 1})
	s.ForceGC(0)
	before := ctx.Stats.Get(sim.StatNVMBytesWritten)
	s.Evict(0, cache.Eviction{Line: 0x40, Persistent: true}, 0)
	if got := ctx.Stats.Get(sim.StatNVMBytesWritten); got != before {
		t.Fatalf("eviction of a migrated line wrote %d bytes", got-before)
	}
	if s.MappingTableLen() != 0 {
		t.Fatal("no mapping entry should exist for a home-current line")
	}
}

func TestLayoutRegionValidation(t *testing.T) {
	if _, _, _, _, err := layoutRegion(mem.Region{Base: 0, Size: 1 << 20}, 4<<20, 1); err == nil {
		t.Fatal("oversized commit log must fail")
	}
	if _, _, _, _, err := layoutRegion(mem.Region{Base: 0, Size: 3 << 20}, 1<<20, 1); err == nil {
		t.Fatal("region without two blocks must fail")
	}
	if _, _, _, _, err := layoutRegion(mem.Region{Base: 0, Size: 64 << 20}, 1<<20, 0); err == nil {
		t.Fatal("zero controllers must fail")
	}
	wm, logs, base, n, err := layoutRegion(mem.Region{Base: 1 << 30, Size: 64 << 20}, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 1<<30 || len(logs) != 1 || logs[0].base != (1<<30)+mem.LineSize || n < 2 {
		t.Fatalf("layout: wm=%v base=%v n=%d", wm, base, n)
	}
	// Two controllers split the ring budget and stripe the blocks.
	_, logs2, _, n2, err := layoutRegion(mem.Region{Base: 1 << 30, Size: 64 << 20}, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(logs2) != 2 || logs2[0].capacity != logs[0].capacity/2 || n2 < 4 {
		t.Fatalf("two-controller layout: %d logs, cap %d", len(logs2), logs2[0].capacity)
	}
}

func TestTableIVStyleReductionGrows(t *testing.T) {
	red := func(txs int) float64 {
		s, ctx := testScheme(t, 1)
		r := sim.NewRand(1)
		for i := 0; i < txs; i++ {
			words := map[mem.PAddr]uint64{}
			for j := 0; j < 8; j++ {
				words[mem.PAddr(r.Intn(64))*8] = r.Uint64()
			}
			writeTx(s, ctx, 0, words)
		}
		s.ForceGC(0)
		return s.DataReduction()
	}
	r10, r100, r1000 := red(10), red(100), red(1000)
	if !(r10 < r100 && r100 < r1000) {
		t.Fatalf("reduction must grow: %.2f %.2f %.2f", r10, r100, r1000)
	}
	if r1000 < 0.8 {
		t.Fatalf("heavy overwrite of 64 words should coalesce > 80%%: %.2f", r1000)
	}
}

func TestMapEntryBytesMatchPaper(t *testing.T) {
	if entryBytes != 16 {
		t.Fatal("the paper budgets 16 bytes per mapping entry")
	}
	if DefaultConfig().MapTableBytes != 2<<20 {
		t.Fatal("default mapping table must be 2 MB")
	}
	if DefaultConfig().GCPeriod != 10*sim.Millisecond {
		t.Fatal("default GC period must be 10 ms")
	}
}

func TestWordsOfSplitsAndValidates(t *testing.T) {
	ws := persist.WordsOf(0x100, bytes.Repeat([]byte{1}, 24))
	if len(ws) != 3 || ws[1].Addr != 0x108 {
		t.Fatalf("WordsOf: %+v", ws)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned store must panic")
		}
	}()
	persist.WordsOf(0x101, make([]byte, 8))
}
