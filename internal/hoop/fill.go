package hoop

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

// SyntheticFill populates the OOP region with committed transactions
// directly (no cache/engine simulation), writing real slice chains and
// commit records. The Figure 11 experiment uses it to create the paper's
// 1 GB of un-migrated OOP data quickly, then measures recovery. addrSpace
// bounds the home addresses the transactions touch (smaller → more
// coalescing during recovery, as in a skewed workload).
//
// It returns the number of slice bytes written. The fill is durable: a
// subsequent Crash+Recover replays it.
func (s *Scheme) SyntheticFill(numTxs, wordsPerTx int, addrSpace uint64, seed uint64) (int64, error) {
	if wordsPerTx < 1 {
		return 0, fmt.Errorf("hoop: wordsPerTx must be >= 1")
	}
	if addrSpace < mem.WordSize || uint64(s.ctx.Layout.Home.Size) < addrSpace {
		return 0, fmt.Errorf("hoop: addrSpace %d out of home region", addrSpace)
	}
	if uint64(len(s.pending)+numTxs) > s.logs[0].capacity {
		return 0, fmt.Errorf("hoop: commit log holds %d records per ring; need %d (raise CommitLogBytes)",
			s.logs[0].capacity, numTxs)
	}
	rng := sim.NewRand(seed)
	store := s.ctx.Dev.Store()
	words := addrSpace / mem.WordSize
	var filled int64
	for t := 0; t < numTxs; t++ {
		tx := s.alloc.Next()
		// Route the transaction's words to their owning controllers.
		perMC := make([][]persist.WordUpdate, s.nMC)
		for w := 0; w < wordsPerTx; w++ {
			var u persist.WordUpdate
			u.Addr = mem.PAddr((rng.Uint64() % words) * mem.WordSize)
			v := rng.Uint64()
			for b := 0; b < mem.WordSize; b++ {
				u.Val[b] = byte(v >> (8 * uint(b)))
			}
			m := s.mcOf(u.Addr)
			perMC[m] = append(perMC[m], u)
		}
		seq := s.nextSeq
		s.nextSeq++
		first := true
		for m := range perMC {
			if len(perMC[m]) == 0 {
				continue
			}
			var last mem.PAddr
			nsl := 0
			var blocks []blockCount
			for w := 0; w < len(perMC[m]); w += WordsPerSlice {
				var ds DataSlice
				cnt := len(perMC[m]) - w
				if cnt > WordsPerSlice {
					cnt = WordsPerSlice
				}
				ds.Count = cnt
				for i := 0; i < cnt; i++ {
					ds.Addrs[i] = perMC[m][w+i].Addr
					ds.Words[i] = perMC[m][w+i].Val
				}
				ds.Prev = last
				ds.First = nsl == 0
				ds.TxID = tx
				a, blk, _ := s.allocSlice(0, m, 0)
				enc := ds.Encode()
				store.Write(a, enc[:])
				s.blocks[blk].live++
				blocks = addBlockCount(blocks, blk)
				last = a
				nsl++
				filled += SliceSize
			}
			flags := uint64(0)
			if first {
				flags = recFlagDecision // first participant coordinates
				first = false
			}
			if s.logs[m].live+1 > s.logs[m].capacity {
				return filled, fmt.Errorf("hoop: controller %d commit-log ring exhausted during fill", m)
			}
			s.appendCommitRec(m, seq, tx, last, flags)
			p := s.appendPending()
			p.seq, p.tx, p.last, p.words = seq, tx, last, len(perMC[m])
			p.blocks = append(p.blocks[:0], blocks...)
			for _, bc := range blocks {
				s.blocks[bc.block].live -= bc.n
				s.blocks[bc.block].pending += bc.n
			}
		}
	}
	return filled, nil
}

// ModelRecoveryTime recomputes the analytic recovery time of §III-F for an
// arbitrary thread count and device bandwidth from a recovery report —
// Figure 11 evaluates the same recovered region across a (threads ×
// bandwidth) grid without re-running the functional scan.
func ModelRecoveryTime(rep RecoveryReport, threads int, bandwidth int64) sim.Duration {
	if threads < 1 {
		threads = 1
	}
	scanBW := minI64(bandwidth, int64(threads)*recoveryPerThreadScanBW)
	applyBW := minI64(bandwidth, int64(threads)*recoveryPerThreadApplyBW)
	return recoveryStartupCost +
		bytesOver(rep.ScanBytes, scanBW) +
		bytesOver(rep.ApplyBytes, applyBW) +
		recoveryBarrierCost
}
