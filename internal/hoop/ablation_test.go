package hoop

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

// testSchemeCfg builds a scheme with a customized config.
func testSchemeCfg(t *testing.T, mut func(*Config)) (*Scheme, persist.Context) {
	t.Helper()
	s, ctx := testScheme(t, 1)
	cfg := s.cfg
	mut(&cfg)
	s2, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s2, ctx
}

func TestDisablePackingWritesOneSlicePerWord(t *testing.T) {
	s, ctx := testSchemeCfg(t, func(c *Config) { c.DisablePacking = true })
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{
		0x100: 1, 0x108: 2, 0x110: 3, 0x118: 4,
	})
	if got := ctx.Stats.Get(sim.StatSliceFlushes); got != 4 {
		t.Fatalf("unpacked scheme flushed %d slices for 4 words, want 4", got)
	}
	// Packed scheme flushes one.
	s2, ctx2 := testScheme(t, 1)
	writeTx(s2, ctx2, 0, map[mem.PAddr]uint64{
		0x100: 1, 0x108: 2, 0x110: 3, 0x118: 4,
	})
	if got := ctx2.Stats.Get(sim.StatSliceFlushes); got != 1 {
		t.Fatalf("packed scheme flushed %d slices for 4 words, want 1", got)
	}
	// Both remain crash-consistent.
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	if ctx.Dev.Store().ReadWord(0x118) != 4 {
		t.Fatal("unpacked variant lost committed data")
	}
}

func TestDisableCoalescingChargesFullTraffic(t *testing.T) {
	run := func(disable bool) (int64, uint64) {
		s, ctx := testSchemeCfg(t, func(c *Config) { c.DisableCoalescing = disable })
		for i := uint64(1); i <= 50; i++ {
			writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: i})
		}
		s.ForceGC(0)
		return s.GCMigratedBytes(), ctx.Dev.Store().ReadWord(0x40)
	}
	coalesced, v1 := run(false)
	full, v2 := run(true)
	if v1 != 50 || v2 != 50 {
		t.Fatalf("functional outcome diverged: %d %d", v1, v2)
	}
	if full <= coalesced {
		t.Fatalf("uncoalesced GC must migrate more: %d vs %d", full, coalesced)
	}
	if full != 50*8 {
		t.Fatalf("uncoalesced GC must migrate every version: %d", full)
	}
}

func TestCondensedMappingStretchesBudget(t *testing.T) {
	// Four neighbouring lines share one hardware entry under condensing.
	plain := newMapTable(2*entryBytes, false)
	cond := newMapTable(2*entryBytes, true)
	for line := uint64(0); line < 4; line++ { // one 4-line group
		plain.insert(line, mapEntry{})
		cond.insert(line, mapEntry{})
	}
	if !plain.overCap() {
		t.Fatal("plain table should exceed a 2-entry budget with 4 lines")
	}
	if cond.overCap() {
		t.Fatalf("condensed table should hold one group in 2 entries (hw=%d)", cond.hwEntries())
	}
	cond.insert(100, mapEntry{}) // second group
	if cond.hwEntries() != 2 {
		t.Fatalf("hwEntries = %d, want 2", cond.hwEntries())
	}
	cond.remove(100)
	if cond.hwEntries() != 1 {
		t.Fatalf("group refcount broken: %d", cond.hwEntries())
	}
	// Removing three of four lines keeps the group alive.
	cond.remove(0)
	cond.remove(1)
	cond.remove(2)
	if cond.hwEntries() != 1 {
		t.Fatal("partial group must still occupy an entry")
	}
	cond.remove(3)
	if cond.hwEntries() != 0 {
		t.Fatal("empty group must free its entry")
	}
}

func TestCondensedSchemeStillRecovers(t *testing.T) {
	s, ctx := testSchemeCfg(t, func(c *Config) { c.CondenseMapping = true })
	oracle := map[mem.PAddr]uint64{}
	r := sim.NewRand(9)
	for i := 0; i < 100; i++ {
		words := map[mem.PAddr]uint64{}
		for j := 0; j < 1+r.Intn(6); j++ {
			words[mem.PAddr(r.Intn(1024))*8] = r.Uint64()
		}
		writeTx(s, ctx, 0, words)
		for a, v := range words {
			oracle[a] = v
		}
	}
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	for a, v := range oracle {
		if ctx.Dev.Store().ReadWord(a) != v {
			t.Fatalf("condensed variant lost word %v", a)
		}
	}
}
