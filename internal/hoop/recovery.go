package hoop

import (
	"fmt"
	"sort"
	"sync"

	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Recovery throughput tunables. A recovery thread is software: it reads
// slices, hashes home addresses, and merges — its per-thread scan rate is
// well below the device's channel bandwidth, which is why the paper's
// Figure 11 scales with threads until the NVM bandwidth saturates.
const (
	recoveryPerThreadScanBW  = 4 << 30 // bytes/s one thread can scan+hash
	recoveryPerThreadApplyBW = 2 << 30 // bytes/s one thread can write back
	recoveryStartupCost      = 1 * sim.Millisecond
	// recoveryBarrierCost is the flat merge/aggregation coordination cost
	// (master-thread merge, kmap/kunmap, final fences).
	recoveryBarrierCost = 50 * sim.Microsecond
)

// RecoveryReport aliases the persist-level report type so HOOP's recovery
// machinery satisfies persist.RecoveryScanner while existing callers keep
// naming it hoop.RecoveryReport.
type RecoveryReport = persist.RecoveryReport

// Recover implements persist.Scheme. It rebuilds a consistent home region
// purely from durable NVM contents (commit log, data slices, watermark),
// using `threads` OS threads exactly as §III-F describes: parallel chain
// scanning into per-thread hash maps keyed by home address, a master merge
// keeping only the newest committed version of each word, and a parallel
// write-back. The returned duration is the modeled wall-clock recovery
// time under the device's current bandwidth.
func (s *Scheme) Recover(threads int) (sim.Duration, error) {
	d, _, err := s.recoverInternal(threads)
	return d, err
}

// RecoverWithReport is Recover plus the detailed accounting used by the
// Figure 11 harness.
func (s *Scheme) RecoverWithReport(threads int) (RecoveryReport, error) {
	_, rep, err := s.recoverInternal(threads)
	return rep, err
}

func (s *Scheme) recoverInternal(threads int) (sim.Duration, RecoveryReport, error) {
	if threads < 1 {
		threads = 1
	}
	if threads > 64 {
		threads = 64
	}
	store := s.ctx.Dev.Store()
	wm := s.readWatermark()

	// Phase 1: scan every controller's commit-log ring for records above
	// the watermark. With multiple controllers (§III-I), a transaction is
	// committed iff its coordinator's DECISION record exists; PREPARE
	// records only contribute their chains once the decision is known —
	// the controllers "reach a consensus regarding the committed
	// transactions".
	type rec struct {
		seq  uint64
		tx   persist.TxID
		last mem.PAddr
	}
	var recs []rec
	decided := make(map[persist.TxID]bool)
	var buf [commitRecSize]byte
	maxSeq := wm
	var maxTx uint64
	var logCapacity uint64
	for m := range s.logs {
		l := &s.logs[m]
		logCapacity += l.capacity
		for i := uint64(0); i < l.capacity; i++ {
			addr := l.base + mem.PAddr(i*commitRecSize)
			store.Read(addr, buf[:])
			seq, tx, last, flags, ok := decodeCommitRec(buf[:])
			if !ok || seq <= wm {
				continue
			}
			recs = append(recs, rec{seq: seq, tx: tx, last: last})
			if flags&recFlagDecision != 0 {
				decided[tx] = true
			}
			if seq > maxSeq {
				maxSeq = seq
			}
			if uint64(tx) > maxTx {
				maxTx = uint64(tx)
			}
		}
	}
	// Keep only chains of decided transactions (undecided two-phase
	// participants roll back by omission).
	kept := recs[:0]
	for _, r := range recs {
		if decided[r.tx] {
			kept = append(kept, r)
		}
	}
	recs = kept
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].seq != recs[j].seq {
			return recs[i].seq < recs[j].seq
		}
		return recs[i].last < recs[j].last
	})
	s.emitRecoveryPhase(telemetry.RecoveryPhaseLogScan, int64(logCapacity)*commitRecSize)

	// Phase 2: distribute transactions round-robin to recovery threads;
	// each walks its chains in reverse order, keeping the newest value
	// per word tagged with the commit sequence.
	type wordVer struct {
		seq uint64
		val [mem.WordSize]byte
	}
	locals := make([]map[mem.PAddr]wordVer, threads)
	sliceCounts := make([]int, threads)
	var wg sync.WaitGroup
	var scanErr error
	var errOnce sync.Once
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			local := make(map[mem.PAddr]wordVer)
			var raw [SliceSize]byte
			for i := t; i < len(recs); i += threads {
				r := recs[i]
				for a := r.last; a != 0; {
					store.Read(a, raw[:])
					sliceCounts[t]++
					ds, err := DecodeDataSlice(raw[:])
					if err != nil {
						errOnce.Do(func() {
							scanErr = fmt.Errorf("recovery: corrupt slice at %v (commit seq %d): %w", a, r.seq, err)
						})
						return
					}
					for j := ds.Count - 1; j >= 0; j-- {
						w := ds.Addrs[j]
						if prev, ok := local[w]; !ok || r.seq > prev.seq {
							local[w] = wordVer{seq: r.seq, val: ds.Words[j]}
						}
					}
					a = ds.Prev
				}
			}
			locals[t] = local
		}(t)
	}
	wg.Wait()
	if scanErr != nil {
		return 0, RecoveryReport{}, scanErr
	}
	totalSlices := 0
	for _, c := range sliceCounts {
		totalSlices += c
	}
	s.emitRecoveryPhase(telemetry.RecoveryPhaseChainScan, int64(totalSlices)*SliceSize)

	// Phase 3: master merge, newest commit sequence wins.
	global := make(map[mem.PAddr]wordVer)
	for _, local := range locals {
		for w, v := range local {
			if prev, ok := global[w]; !ok || v.seq > prev.seq {
				global[w] = v
			}
		}
	}
	s.emitRecoveryPhase(telemetry.RecoveryPhaseMerge, int64(len(global))*mem.WordSize)

	// Phase 4: write the recovered words to their home addresses. (The
	// modeled time treats this as parallel across threads; the functional
	// writes are applied in deterministic address order.)
	words := make([]mem.PAddr, 0, len(global))
	for w := range global {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	for _, w := range words {
		v := global[w]
		store.Write(w, v.val[:])
	}
	s.emitRecoveryPhase(telemetry.RecoveryPhaseWriteBack, int64(len(words))*mem.WordSize)

	// Phase 5: clear the OOP region — advance the watermark past every
	// replayed commit and recycle all blocks.
	s.writeWatermark(maxSeq)
	headersReset := 0
	var hdr [mem.LineSize]byte
	for i := range s.blocks {
		store.Read(blockAddr(s.blockBase, i), hdr[:])
		h := DecodeBlockHeader(hdr[:])
		seq := h.Seq
		if h.State != BlkUnused {
			bh := BlockHeader{State: BlkUnused, Seq: seq, Index: uint64(i)}
			enc := bh.Encode()
			store.Write(blockAddr(s.blockBase, i), enc[:])
			headersReset++
		}
		s.blocks[i] = blockInfo{state: BlkUnused, seq: seq}
		if seq >= s.nextBlkSeq {
			s.nextBlkSeq = seq
		}
	}
	s.freeBlocks = len(s.blocks)
	for m := range s.active {
		s.active[m] = -1
	}
	s.pending = s.pending[:0]
	s.watermark = maxSeq
	s.nextSeq = maxSeq + 1
	for m := range s.logs {
		s.logs[m].count = 0
		s.logs[m].live = 0
	}
	s.table.reset()
	s.evbuf.reset()
	if maxTx > 0 {
		s.alloc.Reset(persist.TxID(maxTx))
	}

	// Modeled recovery time: scanning is parallel across threads and
	// bounded by either per-thread processing or device bandwidth; the
	// final write-back likewise.
	bw := s.ctx.Dev.Params().Bandwidth
	scanBytes := int64(logCapacity)*commitRecSize +
		int64(totalSlices)*SliceSize +
		int64(len(s.blocks))*mem.LineSize
	applyBytes := int64(len(words))*mem.WordSize +
		int64(headersReset+1)*mem.LineSize
	scanBW := minI64(bw, int64(threads)*recoveryPerThreadScanBW)
	applyBW := minI64(bw, int64(threads)*recoveryPerThreadApplyBW)
	modeled := recoveryStartupCost +
		bytesOver(scanBytes, scanBW) +
		bytesOver(applyBytes, applyBW) +
		recoveryBarrierCost

	rep := RecoveryReport{
		CommittedTxs:   len(recs),
		SlicesScanned:  totalSlices,
		WordsRecovered: len(words),
		ScanBytes:      scanBytes,
		ApplyBytes:     applyBytes,
		Threads:        threads,
		ModeledTime:    modeled,
	}
	s.emitRecoveryPhase(telemetry.RecoveryPhaseClear, int64(headersReset)*mem.LineSize)
	s.ctx.Stats.Add("recovery.txs", int64(len(recs)))
	s.ctx.Stats.Add("recovery.words", int64(len(words)))
	return modeled, rep, nil
}

// emitRecoveryPhase publishes one recovery-phase event. It is only ever
// called from the recovery master thread — the parallel chain-scan workers
// report through it after the join — so emission never races.
func (s *Scheme) emitRecoveryPhase(phase int, bytes int64) {
	if !s.ctx.Tel.Enabled(telemetry.KindRecovery) {
		return
	}
	s.ctx.Tel.Emit(telemetry.Event{
		Kind:  telemetry.KindRecovery,
		Core:  -1,
		Aux:   int64(phase),
		Bytes: bytes,
	})
}

func bytesOver(n, bw int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	// Computed in floating point: n * picoseconds-per-second overflows
	// int64 already at ~9 MB.
	return sim.Duration(float64(n) / float64(bw) * float64(sim.Second))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
