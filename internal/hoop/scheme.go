package hoop

import (
	"math/bits"

	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
	"hoop/internal/u64map"
)

func popcount8(m uint8) int { return bits.OnesCount8(m) }

// Config sizes the HOOP hardware structures (§III-H defaults).
type Config struct {
	// MapTableBytes is the mapping-table budget (paper default 2 MB total,
	// i.e. 256 KB per core on 8 active cores). Figure 13 sweeps this.
	MapTableBytes int
	// EvictBufBytes is the eviction-buffer budget (paper default 128 KB).
	EvictBufBytes int
	// OOPBufBytesPerCore is the per-core OOP data buffer (paper: 1 KB).
	OOPBufBytesPerCore int
	// CommitLogBytes is the durable commit-record ring (the address
	// memory slices of §III-D).
	CommitLogBytes int
	// GCPeriod is the background garbage-collection interval (paper
	// default 10 ms; Figure 10 sweeps 2–14 ms).
	GCPeriod sim.Duration

	// DisablePacking ablates the data-packing optimization of §III-C /
	// Figure 3: every word update is flushed as its own memory slice
	// instead of packing eight words per slice. Used by the ablation
	// study to quantify what packing buys.
	DisablePacking bool

	// DisableCoalescing ablates the GC data-coalescing optimization of
	// §III-E: the garbage collector writes every scanned version back to
	// the home region instead of only the newest version per word. (The
	// functional outcome is identical — the newest value still lands
	// last — only the traffic and time change.)
	DisableCoalescing bool

	// CondenseMapping enables the §III-I future-work optimization: the
	// mapping table exploits spatial locality by letting entries for
	// neighbouring cache lines (4-line groups) share one hardware entry,
	// stretching the same table budget over a larger reach.
	CondenseMapping bool

	// Controllers configures the §III-I multi-memory-controller extension
	// (default 1). Physical addresses interleave across controllers at
	// cache-line granularity; each controller owns its own OOP buffers,
	// blocks and commit-log ring, and Tx_end runs the two-phase commit:
	// participants persist PREPARE records for their slice chains, the
	// coordinator's DECISION record makes the transaction durable.
	Controllers int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		MapTableBytes:      2 << 20,
		EvictBufBytes:      128 << 10,
		OOPBufBytesPerCore: 1 << 10,
		CommitLogBytes:     4 << 20,
		GCPeriod:           10 * sim.Millisecond,
	}
}

// Scheme is the HOOP persistence mechanism (implements persist.Scheme).
type Scheme struct {
	ctx persist.Context
	cfg Config

	alloc persist.TxnAllocator

	// Durable-layout bookkeeping.
	nMC        int // memory controllers (1 unless Config.Controllers > 1)
	wmAddr     mem.PAddr
	logs       []commitLog // one ring per controller
	nextSeq    uint64      // global commit sequence (starts at 1)
	blockBase  mem.PAddr
	blocks     []blockInfo
	active     []int // per-controller active data block (-1 = none yet)
	nextScan   []int // per-controller round-robin cursor (uniform wear, §III-D)
	nextBlkSeq uint64
	freeBlocks int

	// Volatile controller state (lost on crash).
	cores []coreState
	table *mapTable
	evbuf *evictBuffer
	// lines is the controller's per-home-line write tracking, one entry per
	// line with un-migrated words (see lineState). It replaces what used to
	// be three parallel maps (last writer, dirty-word mask, newest slice);
	// the open-addressed table keeps Store at one probe with no
	// allocations, and GC clears entries without freeing the backing array.
	lines     u64map.Map[lineState]
	pending   []pendingTx // committed, not yet migrated (commit order)
	watermark uint64      // highest migrated commit sequence

	// Reused hot-path scratch (contents valid only within one call).
	partScratch []int // TxEnd participant list

	nextGC      sim.Time
	gcBusyUntil sim.Time
	gcAgent     int

	// GC working state, reused across passes (epoch-cleared, never freed):
	// the coalescing table (newest value per word seen in the reverse scan)
	// and the key scratch slices.
	gcWords u64map.Map[[mem.WordSize]byte]
	gcAddrs []uint64
	gcStale []uint64

	// abortScratch collects line keys to drop during TxAbort (reused).
	abortScratch []uint64

	// Interned counter handles for per-event accounting (slice flushes,
	// commits, read-path and GC traffic fire on every hot-path event).
	statSliceFlushes  *sim.Counter
	statTxCommitted   *sim.Counter
	statMapHits       *sim.Counter
	statMapMisses     *sim.Counter
	statParallelReads *sim.Counter
	statEvictBufHits  *sim.Counter
	statGCRuns        *sim.Counter
	statGCOnDemand    *sim.Counter
	statGCScanned     *sim.Counter
	statGCMigrated    *sim.Counter
	statGCCoalesced   *sim.Counter

	// Cumulative GC coalescing accounting (Table IV).
	gcModifiedBytes int64
	gcMigratedBytes int64
}

// lineState is the per-home-line tracking record: which live words the
// home copy is missing (mask), which transaction wrote them last (writer),
// and the newest durable memory slice carrying any of them (slice; zero
// until the first flush — slice addresses always lie inside the OOP
// region, so zero is free as the "not yet flushed" sentinel). An entry
// exists iff mask is non-zero; the GC deletes it when the words migrate
// home.
type lineState struct {
	writer persist.TxID
	slice  mem.PAddr
	mask   uint8
}

// coreState is one core's in-flight transaction context: its share of the
// OOP data buffer plus per-controller chain-building state. The struct is
// reused across transactions: TxBegin rewinds it in place (the mc slice is
// allocated once at construction).
type coreState struct {
	tx      persist.TxID // zero between transactions
	mc      []coreMCState
	txWords int
	evicted []uint64 // home lines evicted while this tx was live
}

// reset rewinds the core for a new transaction, keeping all capacity.
func (cs *coreState) reset(tx persist.TxID) {
	cs.tx = tx
	cs.txWords = 0
	cs.evicted = cs.evicted[:0]
	for m := range cs.mc {
		ms := &cs.mc[m]
		ms.bufN = 0
		ms.lastSlice = 0
		ms.nslices = 0
		ms.txBlocks = ms.txBlocks[:0]
	}
}

// coreMCState is the slice-building state toward one memory controller.
// The packing buffer is the hardware's per-core OOP data-buffer group: at
// most WordsPerSlice words, held inline so filling it is pure array writes
// (same-word coalescing is a linear scan of at most bufN entries — cheaper
// than any hash at this size).
type coreMCState struct {
	buf       [WordsPerSlice]persist.WordUpdate
	bufN      int
	lastSlice mem.PAddr
	nslices   int
	txBlocks  []blockCount // live slices per block from this tx (reused)
}

// blockCount is one (block, slice-count) pair; a transaction touches very
// few blocks, so a scanned pair list beats a map.
type blockCount struct {
	block int
	n     int
}

// addBlockCount bumps blk's count in the pair list, appending on first use.
func addBlockCount(bcs []blockCount, blk int) []blockCount {
	for i := range bcs {
		if bcs[i].block == blk {
			bcs[i].n++
			return bcs
		}
	}
	return append(bcs, blockCount{block: blk, n: 1})
}

// pendingTx is one committed slice chain awaiting migration (a multi-
// controller transaction contributes one entry per participant chain, all
// sharing the transaction's commit sequence). Entries live in s.pending,
// which is truncated — not freed — by the GC, so each slot's blocks slice
// is reused across epochs.
type pendingTx struct {
	seq    uint64
	tx     persist.TxID
	last   mem.PAddr
	blocks []blockCount
	words  int
}

// appendPending extends s.pending by one slot, reusing a truncated slot's
// blocks capacity when one is available, and returns the slot.
func (s *Scheme) appendPending() *pendingTx {
	if len(s.pending) < cap(s.pending) {
		s.pending = s.pending[:len(s.pending)+1]
	} else {
		s.pending = append(s.pending, pendingTx{})
	}
	return &s.pending[len(s.pending)-1]
}

// Latency constants for controller-internal actions.
const (
	// unpackLatency is the metadata-traversal cost when reconstructing a
	// line from a memory slice ("a few cycles", §III-G).
	unpackLatency = 800 * sim.Picosecond // 2 cycles at 2.5 GHz
	// evictBufLatency is a hit in the controller's eviction buffer.
	evictBufLatency = 20 * sim.Nanosecond
	// interMCLatency is one message round between the cache controller
	// and the memory controllers in the two-phase commit (§III-I).
	interMCLatency = 60 * sim.Nanosecond
)

// New builds a HOOP scheme over ctx.
func New(ctx persist.Context, cfg Config) (*Scheme, error) {
	nMC := cfg.Controllers
	if nMC == 0 {
		nMC = 1
	}
	wm, logs, base, nBlocks, err := layoutRegion(ctx.Layout.OOP, cfg.CommitLogBytes, nMC)
	if err != nil {
		return nil, err
	}
	s := &Scheme{
		ctx:        ctx,
		cfg:        cfg,
		nMC:        nMC,
		wmAddr:     wm,
		logs:       logs,
		nextSeq:    1,
		blockBase:  base,
		blocks:     make([]blockInfo, nBlocks),
		active:     make([]int, nMC),
		nextScan:   make([]int, nMC),
		freeBlocks: nBlocks,
		cores:      make([]coreState, ctx.Cores),
		table:      newMapTable(cfg.MapTableBytes, cfg.CondenseMapping),
		evbuf:      newEvictBuffer(cfg.EvictBufBytes),
		nextGC:     cfg.GCPeriod,
		gcAgent:    ctx.Cores, // agent slot after the cores

		statSliceFlushes:  ctx.Stats.Counter(sim.StatSliceFlushes),
		statTxCommitted:   ctx.Stats.Counter(sim.StatTxCommitted),
		statMapHits:       ctx.Stats.Counter(sim.StatMapHits),
		statMapMisses:     ctx.Stats.Counter(sim.StatMapMisses),
		statParallelReads: ctx.Stats.Counter(sim.StatParallelRead),
		statEvictBufHits:  ctx.Stats.Counter(sim.StatEvictBufHits),
		statGCRuns:        ctx.Stats.Counter(sim.StatGCRuns),
		statGCOnDemand:    ctx.Stats.Counter(sim.StatGCOnDemand),
		statGCScanned:     ctx.Stats.Counter(sim.StatGCBytesScanned),
		statGCMigrated:    ctx.Stats.Counter(sim.StatGCBytesMigrated),
		statGCCoalesced:   ctx.Stats.Counter(sim.StatGCBytesCoalesed),
	}
	for c := range s.active {
		s.active[c] = -1
	}
	for i := range s.cores {
		s.cores[i].mc = make([]coreMCState, nMC)
	}
	return s, nil
}

// liveCore returns the core currently running tx, if any. Live
// transactions are exactly the cores' active slots, so a scan of the (at
// most 32) cores replaces the old live-transaction map.
func (s *Scheme) liveCore(tx persist.TxID) (int, bool) {
	if tx == 0 {
		return 0, false
	}
	for c := range s.cores {
		if s.cores[c].tx == tx {
			return c, true
		}
	}
	return 0, false
}

// sliceOf reports the newest durable slice carrying words of the given
// home line (zero when none); used by the eviction path and tests.
func (s *Scheme) sliceOf(line uint64) mem.PAddr {
	ls, _ := s.lines.Get(line)
	return ls.slice
}

// mcOf routes a home address to its owning memory controller
// (line-interleaved).
func (s *Scheme) mcOf(a mem.PAddr) int {
	if s.nMC == 1 {
		return 0
	}
	return int(mem.LineIndex(a)) % s.nMC
}

// Controllers reports the configured memory-controller count.
func (s *Scheme) Controllers() int { return s.nMC }

// Name implements persist.Scheme.
func (s *Scheme) Name() string { return SchemeName }

// Properties implements persist.Scheme (Table I's HOOP row).
func (s *Scheme) Properties() persist.Properties {
	return persist.Properties{
		ReadLatency:    "Low",
		OnCriticalPath: false,
		NeedFlushFence: false,
		WriteTraffic:   "Low",
	}
}

// TxBegin implements persist.Scheme. The memory controller assigns the
// transaction ID (§III-G); Tx_begin itself costs nothing beyond setting the
// processor's transaction state bit.
func (s *Scheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	tx := s.alloc.Next()
	s.cores[core].reset(tx)
	return tx, now
}

// Store implements persist.Scheme: the cache controller forwards the
// modified words and their home addresses to the OOP data buffer (§III-G).
// Stores add no synchronous persistence work; a full buffer group is
// flushed as a posted 128-byte memory-slice write.
func (s *Scheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	cs := &s.cores[core]
	if cs.tx != tx {
		panic("hoop: store outside the core's active transaction")
	}
	if !mem.IsWordAligned(addr) || len(val)%mem.WordSize != 0 {
		panic("persist: store must be word-aligned")
	}
	flushAt := WordsPerSlice
	if s.cfg.DisablePacking {
		flushAt = 1 // ablation: one slice per word update
	}
	// Word-at-a-time split done inline (persist.WordsOf allocates its
	// result; this loop is under every simulated store).
	for off := 0; off < len(val); off += mem.WordSize {
		wAddr := addr + mem.PAddr(off)
		line := mem.LineIndex(wAddr)
		ls := s.lines.Ref(line)
		ls.mask |= 1 << uint(mem.WordInLine(wAddr))
		ls.writer = tx
		m := s.mcOf(wAddr)
		ms := &cs.mc[m]
		found := false
		for i := 0; i < ms.bufN; i++ {
			if ms.buf[i].Addr == wAddr {
				copy(ms.buf[i].Val[:], val[off:off+mem.WordSize]) // same-word update coalesces in the buffer
				found = true
				break
			}
		}
		if !found {
			w := &ms.buf[ms.bufN]
			w.Addr = wAddr
			copy(w.Val[:], val[off:off+mem.WordSize])
			ms.bufN++
			cs.txWords++
		}
		if ms.bufN >= flushAt {
			now = s.flushSlice(core, m, now)
		}
	}
	return now
}

// flushSlice packs the core's buffered words toward controller m into one
// memory slice and issues it as a posted write to the OOP region (data
// packing, Figure 3).
func (s *Scheme) flushSlice(core, m int, now sim.Time) sim.Time {
	ms := &s.cores[core].mc[m]
	if ms.bufN == 0 {
		return now
	}
	var ds DataSlice
	ds.Count = ms.bufN
	for i := 0; i < ms.bufN; i++ {
		ds.Words[i] = ms.buf[i].Val
		ds.Addrs[i] = ms.buf[i].Addr
	}
	ds.Prev = ms.lastSlice
	ds.First = ms.nslices == 0
	ds.TxID = s.cores[core].tx

	addr, blk, t := s.allocSlice(core, m, now)
	now = t
	enc := ds.Encode()
	s.ctx.Dev.Store().Write(addr, enc[:])
	s.ctx.Ctrl.PostWrite(core, addr, SliceSize, now)
	s.statSliceFlushes.Inc()
	if s.ctx.Tel.Enabled(telemetry.KindSliceWrite) {
		s.ctx.Tel.Emit(telemetry.Event{
			Kind:  telemetry.KindSliceWrite,
			Time:  now,
			Core:  int16(core),
			Tx:    uint64(ds.TxID),
			Addr:  addr,
			Bytes: SliceSize,
			Aux:   int64(ds.Count),
		})
	}
	for i := 0; i < ds.Count; i++ {
		s.lines.Ref(mem.LineIndex(ds.Addrs[i])).slice = addr
	}

	ms.lastSlice = addr
	ms.nslices++
	ms.txBlocks = addBlockCount(ms.txBlocks, blk)
	s.blocks[blk].live++
	ms.bufN = 0
	return now
}

// allocSlice hands out controller m's next memory slice, activating a
// fresh block (round-robin over the controller's stripe for uniform wear)
// when the active one fills. It may stall the caller on an on-demand GC if
// the region is exhausted.
func (s *Scheme) allocSlice(core, m int, now sim.Time) (mem.PAddr, int, sim.Time) {
	if s.active[m] >= 0 && s.blocks[s.active[m]].full() {
		// Seal the block durably.
		s.writeHeader(s.active[m], BlkFull, core, now)
		s.active[m] = -1
	}
	if s.active[m] < 0 {
		idx, ok := s.findFreeBlock(m)
		if !ok {
			now = s.runGC(now, true)
			idx, ok = s.findFreeBlock(m)
			if !ok {
				panic(&regionError{msg: "OOP region exhausted: no reclaimable block (increase OOP region or GC frequency)"})
			}
		}
		s.nextBlkSeq++
		s.blocks[idx] = blockInfo{state: BlkInUse, seq: s.nextBlkSeq, next: 1}
		s.freeBlocks--
		s.writeHeader(idx, BlkInUse, core, now)
		s.active[m] = idx
	}
	b := &s.blocks[s.active[m]]
	a := sliceAddr(s.blockBase, s.active[m], b.next)
	b.next++
	return a, s.active[m], now
}

// findFreeBlock scans controller m's block stripe (blocks with index ≡ m
// mod nMC) round-robin from the last allocation point, implementing the
// paper's uniform-aging order. nextScan[m] holds a stripe-local position.
func (s *Scheme) findFreeBlock(m int) (int, bool) {
	stripe := (len(s.blocks) - m + s.nMC - 1) / s.nMC
	if stripe == 0 {
		return 0, false
	}
	for i := 0; i < stripe; i++ {
		p := (s.nextScan[m] + i) % stripe
		idx := m + p*s.nMC
		if s.blocks[idx].state == BlkUnused {
			s.nextScan[m] = (p + 1) % stripe
			return idx, true
		}
	}
	return 0, false
}

// writeHeader durably updates a block header (posted; ordering with the
// data it guards is not required because recovery trusts only the commit
// log and the watermark).
func (s *Scheme) writeHeader(idx int, state byte, agent int, now sim.Time) {
	s.blocks[idx].state = state
	h := BlockHeader{State: state, Seq: s.blocks[idx].seq, Index: uint64(idx)}
	enc := h.Encode()
	s.ctx.Dev.Store().Write(blockAddr(s.blockBase, idx), enc[:])
	s.ctx.Ctrl.PostWrite(agent, blockAddr(s.blockBase, idx), mem.LineSize, now)
}

// TxEnd implements persist.Scheme: flush the tail memory slice, drain the
// core's posted slice writes, and durably append the commit record (the
// paper's address-memory-slice write). This is the only synchronous
// persistence point in a HOOP transaction (Figure 4d).
func (s *Scheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	cs := &s.cores[core]
	if cs.tx != tx {
		panic("hoop: TxEnd for inactive transaction")
	}
	// Flush every controller's tail slice and find the participants.
	participants := s.partScratch[:0]
	for m := range cs.mc {
		if cs.mc[m].bufN > 0 {
			now = s.flushSlice(core, m, now)
		}
		if cs.mc[m].nslices > 0 {
			participants = append(participants, m)
		}
	}
	s.partScratch = participants[:0]
	if len(participants) > 0 {
		now = s.ctx.Ctrl.Drain(core, now)
		// Ring pressure: every participant ring must have a free slot.
		for _, m := range participants {
			if s.logs[m].live+1 > s.logs[m].capacity {
				now = s.runGC(now, true)
				break
			}
		}
		if len(participants) > 1 {
			// Two-phase commit, Prepare (§III-I): the cache controller
			// waits for all outstanding flushes to be acknowledged.
			now += interMCLatency
		}
		seq := s.nextSeq
		s.nextSeq++
		// Participant PREPARE records (all but the coordinator, which is
		// the first participant), posted then drained; the coordinator's
		// DECISION record commits the transaction.
		for _, m := range participants[1:] {
			at := s.appendCommitRec(m, seq, tx, cs.mc[m].lastSlice, 0)
			s.ctx.Ctrl.PostWrite(core, at, commitRecTraffic, now)
		}
		if len(participants) > 1 {
			now = s.ctx.Ctrl.Drain(core, now)
		}
		coord := participants[0]
		recAddr := s.appendCommitRec(coord, seq, tx, cs.mc[coord].lastSlice, recFlagDecision)
		now = s.ctx.Ctrl.Write(recAddr, commitRecTraffic, now)
		if len(participants) > 1 {
			// Commit phase: the controllers acknowledge the commit
			// message.
			now += interMCLatency
		}
		for _, m := range participants {
			ms := &cs.mc[m]
			p := s.appendPending()
			p.seq, p.tx, p.last, p.words = seq, tx, ms.lastSlice, cs.txWords
			p.blocks = append(p.blocks[:0], ms.txBlocks...)
			cs.txWords = 0 // attribute the word count to one entry only
			for _, bc := range ms.txBlocks {
				s.blocks[bc.block].live -= bc.n
				s.blocks[bc.block].pending += bc.n
			}
		}
		// Resolve mapping entries created by evictions while this tx was
		// live: their data is now committed as of seq.
		for _, line := range cs.evicted {
			if e, ok := s.table.lookup(line); ok && e.ownerTx == tx {
				e.ownerTx = 0
				e.seq = seq
				s.table.insert(line, e)
			}
		}
	}
	cs.tx = 0 // buffers are empty (flushed above); reset(tx) rewinds the rest
	s.statTxCommitted.Inc()
	return now
}

// TxAbort implements persist.Scheme — and is where out-of-place update
// pays off. The transaction's durable traces are only its memory slices in
// the OOP region; no commit record was written, so recovery (which replays
// the commit log alone) can never see them, and the GC (which scans only
// committed pending chains) never migrates them. The abort therefore just
// drops the SRAM buffers and releases the dead slices' block accounting so
// their space recycles — no NVM write, no drain, no rollback traffic.
func (s *Scheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	cs := &s.cores[core]
	if cs.tx != tx {
		panic("hoop: TxAbort for inactive transaction")
	}
	// Release the already-flushed slices: with no pending chain coming,
	// the blocks' live counts drop now and the space reclaims when the
	// blocks' other occupants retire.
	for m := range cs.mc {
		for _, bc := range cs.mc[m].txBlocks {
			s.blocks[bc.block].live -= bc.n
		}
	}
	// Drop line tracking whose newest writer is the aborted transaction:
	// those entries point at dead slices, and a later eviction must not
	// index them in the mapping table. (Older committed-but-unmigrated
	// words of the same lines remain reachable through the commit log; the
	// GC migrates them regardless of this volatile tracking.)
	stale := s.abortScratch[:0]
	s.lines.Range(func(line uint64, ls *lineState) bool {
		if ls.writer == tx {
			stale = append(stale, line)
		}
		return true
	})
	s.abortScratch = stale
	for _, line := range stale {
		s.lines.Delete(line)
	}
	// Un-index mapping-table entries created by evictions of this
	// transaction's lines — they too point at dead slices.
	for _, line := range cs.evicted {
		if e, ok := s.table.lookup(line); ok && e.ownerTx == tx {
			s.table.remove(line)
			s.blocks[e.block].mapRefs--
		}
	}
	cs.reset(0)
	return now
}

// appendCommitRec durably writes a commit record into controller m's ring
// and returns its address. The record body (tx, chain tail, flags) goes
// first and the 8-byte sequence word last: the sequence is the single
// atomic persist unit that makes the record visible to recovery, so a
// crash mid-record leaves the slot's previous sequence (zero or below the
// watermark) and can never pair a fresh sequence with a stale decision
// flag or chain pointer from a recycled slot.
func (s *Scheme) appendCommitRec(m int, seq uint64, tx persist.TxID, last mem.PAddr, flags uint64) mem.PAddr {
	l := &s.logs[m]
	at := l.nextAddr()
	rec := encodeCommitRec(seq, tx, last, flags)
	st := s.ctx.Dev.Store()
	st.Write(at+8, rec[8:])
	st.Write(at, rec[:8])
	l.count++
	l.live++
	return at
}

// ReadMiss implements persist.Scheme (the load path of Figure 6): consult
// the mapping table; on a hit read the OOP slice (in parallel with the home
// line when the slice holds only part of the line), remove the entry (the
// newest version now lives in the cache hierarchy), and fill dirty so a
// future eviction re-persists out-of-place. On a miss, check the eviction
// buffer, then fall back to the home region.
func (s *Scheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	line := mem.LineIndex(addr)
	if e, ok := s.table.remove(line); ok {
		s.statMapHits.Inc()
		s.blocks[e.block].mapRefs--
		done := s.ctx.Ctrl.Read(e.slice, SliceSize, now)
		if e.count < mem.WordsPerLine {
			// Only the updated words are packed out-of-place: fetch the
			// home line in parallel and reconstruct (§III-G).
			home := s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now)
			done = sim.MaxTime(done, home)
			s.statParallelReads.Inc()
		}
		return done + unpackLatency, true
	}
	s.statMapMisses.Inc()
	if s.evbuf.contains(line) {
		s.statEvictBufHits.Inc()
		return now + evictBufLatency, false
	}
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

// Evict implements persist.Scheme. A transactional (persistent-bit) line
// whose words are newer than the home region is indexed in the mapping
// table, pointing reads at the memory slice already holding its newest
// words — the line's data is out-of-place by construction, so the eviction
// itself writes nothing. A transactional line whose words have all been
// migrated home is dropped silently. Non-transactional dirty lines write
// back in place.
func (s *Scheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	lineAddr := mem.LineAddr(ev.Line)
	line := mem.LineIndex(ev.Line)
	if !ev.Persistent {
		var buf [mem.LineSize]byte
		s.ctx.View.Read(lineAddr, buf[:])
		s.ctx.Dev.Store().Write(lineAddr, buf[:])
		s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
		return now
	}
	ls, tracked := s.lines.Get(line)
	if !tracked || ls.mask == 0 {
		// Every word of this line has been migrated home since its last
		// store: the cache copy equals the home copy and can be dropped.
		return now
	}
	entry := mapEntry{mask: ls.mask, count: popcount8(ls.mask)}
	if oc, live := s.liveCore(ls.writer); live {
		// The newest writer is still running: make sure its buffered
		// words are durable (flush the partial slice), and keep the
		// entry until that transaction commits and migrates.
		m := s.mcOf(lineAddr)
		if ls.slice == 0 || s.hasBufferedWords(oc, m, lineAddr) {
			now = s.flushSlice(oc, m, now)
			ls, _ = s.lines.Get(line) // the flush updated the newest slice
		}
		entry.ownerTx = ls.writer
		s.cores[oc].evicted = append(s.cores[oc].evicted, line)
	} else {
		entry.seq = s.nextSeq - 1
	}
	if ls.slice == 0 {
		// No durable slice carries this line's words (can only happen if
		// the writer's buffer was empty after a crash-recovery race);
		// fall back to dropping — the home region is authoritative.
		return now
	}
	if old, prev := s.table.remove(line); prev {
		s.blocks[old.block].mapRefs--
	}
	entry.slice = ls.slice
	entry.block = blockOf(s.blockBase, ls.slice)
	s.blocks[entry.block].mapRefs++
	s.table.insert(line, entry)
	if s.table.overCap() {
		now = s.runGC(now, true)
	}
	return now
}

// hasBufferedWords reports whether core's OOP data buffer toward
// controller m still holds un-flushed words of the given cache line.
func (s *Scheme) hasBufferedWords(core, m int, lineAddr mem.PAddr) bool {
	ms := &s.cores[core].mc[m]
	for i := 0; i < ms.bufN; i++ {
		if mem.LineAddr(ms.buf[i].Addr) == lineAddr {
			return true
		}
	}
	return false
}

// Tick implements persist.Scheme: run background GC at each period boundary
// that has passed.
func (s *Scheme) Tick(now sim.Time) {
	for s.nextGC <= now {
		start := s.nextGC
		s.runGC(start, false)
		s.nextGC += s.cfg.GCPeriod
	}
}

// Crash implements persist.Scheme: every volatile structure is lost — the
// OOP data buffers, the mapping table, the eviction buffer, the block index
// cache, and all in-flight transaction state. NVM contents survive.
func (s *Scheme) Crash() {
	for i := range s.cores {
		s.cores[i].reset(0)
	}
	s.table.reset()
	s.evbuf.reset()
	s.lines.Clear()
	s.pending = s.pending[:0]
	for m := range s.active {
		s.active[m] = -1
	}
	// Block bookkeeping is volatile too; recovery rebuilds it from the
	// durable headers and the commit log.
	for i := range s.blocks {
		s.blocks[i] = blockInfo{}
	}
	s.freeBlocks = 0
	s.ctx.Ctrl.ResetPending()
}

// GCModifiedBytes reports the cumulative bytes of transaction-modified data
// scanned by the GC (the denominator of Table IV's reduction ratio).
func (s *Scheme) GCModifiedBytes() int64 { return s.gcModifiedBytes }

// GCMigratedBytes reports the cumulative bytes the GC actually wrote back
// to the home region after coalescing.
func (s *Scheme) GCMigratedBytes() int64 { return s.gcMigratedBytes }

// DataReduction reports the Table IV metric: the fraction of modified bytes
// that data coalescing avoided writing back to the home region.
func (s *Scheme) DataReduction() float64 {
	if s.gcModifiedBytes == 0 {
		return 0
	}
	return 1 - float64(s.gcMigratedBytes)/float64(s.gcModifiedBytes)
}

// MappingTableLen reports the current number of mapping-table entries.
func (s *Scheme) MappingTableLen() int { return s.table.len() }

// PendingCommits reports committed-but-unmigrated transactions.
func (s *Scheme) PendingCommits() int { return len(s.pending) }

// ForceGC runs a garbage-collection pass immediately (used by the harness
// to flush coalescing state at the end of a measurement window).
func (s *Scheme) ForceGC(now sim.Time) sim.Time { return s.runGC(now, false) }

// Quiesce implements persist.Quiescer: drain the deferred GC work.
func (s *Scheme) Quiesce(now sim.Time) { s.ForceGC(now) }
