package hoop

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/persist"
)

// Durable OOP-region layout (N = number of memory controllers, 1 in the
// paper's main configuration, >1 for the §III-I two-phase-commit
// extension):
//
//	OOP.Base + 0                    : watermark line (64 B)
//	OOP.Base + 64                   : N commit-log rings (CommitLogBytes/N each)
//	align-up to BlockSize           : data blocks (2 MB each, striped over the
//	                                  controllers: block i belongs to MC i%N)
//
// The watermark records the highest commit sequence number whose data has
// been migrated to the home region; recovery ignores commit-log records at
// or below it (their blocks may already have been recycled).

const watermarkMagic = 0x484F4F50 // "HOOP"

// commitRecSize is the durable size of one commit-log record: sequence
// number, transaction ID, last-slice address, and flags. The paper packs
// eight 16-byte records per 128-byte address memory slice; we carry an
// explicit sequence number per record (needed to order commits across cores
// and survive ring wrap-around), so our records occupy 32 bytes of layout.
// NVM traffic is accounted at the paper's packed cost — commitRecTraffic
// (16 B) per commit — because the controller write-combines the address
// memory slices across committing cores.
const (
	commitRecSize    = 32
	commitRecTraffic = 16
)

// Commit-record flags. In the multi-controller configuration (§III-I's
// two-phase commit), participant controllers persist PREPARE records for
// their share of a transaction's slice chains, and the coordinator's
// DECISION record commits the transaction: a transaction is durable iff a
// decision record with its ID exists. The single-controller configuration
// writes only decision records.
const recFlagDecision = uint64(1) << 0

// commitLog is one controller's durable ring of commit records (the
// paper's address memory slices). Sequence numbers are global across
// controllers; slot positions are per-ring.
type commitLog struct {
	base     mem.PAddr
	capacity uint64 // record slots in this ring
	count    uint64 // records ever appended (volatile cursor)
	live     uint64 // records appended since the last GC (ring pressure)
}

// nextAddr returns the slot the next append will use.
func (l *commitLog) nextAddr() mem.PAddr {
	return l.base + mem.PAddr((l.count%l.capacity)*commitRecSize)
}

// encodeCommitRec serializes a commit record.
func encodeCommitRec(seq uint64, tx persist.TxID, last mem.PAddr, flags uint64) [commitRecSize]byte {
	var b [commitRecSize]byte
	binary.LittleEndian.PutUint64(b[0:], seq)
	binary.LittleEndian.PutUint64(b[8:], uint64(tx))
	binary.LittleEndian.PutUint64(b[16:], uint64(last))
	binary.LittleEndian.PutUint64(b[24:], flags)
	return b
}

// decodeCommitRec parses a commit record; ok is false for a never-written
// slot (seq 0).
func decodeCommitRec(b []byte) (seq uint64, tx persist.TxID, last mem.PAddr, flags uint64, ok bool) {
	seq = binary.LittleEndian.Uint64(b[0:])
	tx = persist.TxID(binary.LittleEndian.Uint64(b[8:]))
	last = mem.PAddr(binary.LittleEndian.Uint64(b[16:]))
	flags = binary.LittleEndian.Uint64(b[24:])
	return seq, tx, last, flags, seq != 0
}

// blockInfo is the controller's volatile view of one OOP block (the cached
// "block index table" of §III-D plus the allocation bitmap, which is
// trivially a next-slice cursor because allocation within a block is
// strictly sequential).
type blockInfo struct {
	state byte
	seq   uint64 // activation sequence (wear-leveling round-robin order)
	next  int    // next free slice index; slice 0 is the header
	// live counts slices belonging to still-uncommitted transactions.
	live int
	// pending counts slices belonging to committed transactions that the
	// GC has not yet migrated home.
	pending int
	// mapRefs counts mapping-table entries pointing at slices in this
	// block (read-acceleration eviction slices).
	mapRefs int
}

func (b *blockInfo) full() bool { return b.next >= SlicesPerBlock }

// reclaimable reports whether the garbage collector may recycle the block.
func (b *blockInfo) reclaimable() bool {
	return b.state == BlkFull && b.live == 0 && b.pending == 0 && b.mapRefs == 0
}

// regionError signals OOP-region exhaustion (no free block even after GC).
type regionError struct{ msg string }

func (e *regionError) Error() string { return "hoop: " + e.msg }

// layoutRegion computes the commit-log placement and the data-block array
// for the configured OOP region and controller count.
func layoutRegion(oop mem.Region, commitLogBytes, controllers int) (wm mem.PAddr, logs []commitLog, blockBase mem.PAddr, nBlocks int, err error) {
	if controllers < 1 {
		return 0, nil, 0, 0, fmt.Errorf("hoop: need at least one controller")
	}
	perLog := commitLogBytes / controllers
	if perLog < commitRecSize {
		return 0, nil, 0, 0, fmt.Errorf("hoop: commit log too small (%d bytes over %d controllers)", commitLogBytes, controllers)
	}
	wm = oop.Base
	logs = make([]commitLog, controllers)
	for c := range logs {
		logs[c] = commitLog{
			base:     oop.Base + mem.LineSize + mem.PAddr(c*perLog),
			capacity: uint64(perLog / commitRecSize),
		}
	}
	dataStart := uint64(oop.Base) + mem.LineSize + uint64(controllers*perLog)
	// Align data blocks up to the block size.
	dataStart = (dataStart + BlockSize - 1) &^ uint64(BlockSize-1)
	end := uint64(oop.End())
	if dataStart >= end {
		return 0, nil, 0, 0, fmt.Errorf("hoop: OOP region too small for commit log (%d bytes)", oop.Size)
	}
	nBlocks = int((end - dataStart) / BlockSize)
	if nBlocks < 2*controllers {
		return 0, nil, 0, 0, fmt.Errorf("hoop: OOP region holds only %d blocks; need >= %d", nBlocks, 2*controllers)
	}
	return wm, logs, mem.PAddr(dataStart), nBlocks, nil
}

// blockAddr returns the base NVM address of block i.
func blockAddr(blockBase mem.PAddr, i int) mem.PAddr {
	return blockBase + mem.PAddr(i)*BlockSize
}

// sliceAddr returns the NVM address of slice s within block i.
func sliceAddr(blockBase mem.PAddr, i, s int) mem.PAddr {
	return blockAddr(blockBase, i) + mem.PAddr(s)*SliceSize
}

// blockOf maps a slice address back to its block index.
func blockOf(blockBase mem.PAddr, a mem.PAddr) int {
	return int((a - blockBase) / BlockSize)
}
