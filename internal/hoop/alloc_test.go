package hoop

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

// TestStoreSteadyStateZeroAlloc locks the scheme-level store path to zero
// allocations in steady state: once a transaction's words are resident in
// the per-controller packing buffer and the line table, re-storing them
// (the coalescing path of §III-B) must not touch the heap — no map
// insertions, no per-store scratch.
func TestStoreSteadyStateZeroAlloc(t *testing.T) {
	s, _ := testSchemeMC(t, 1, 1)
	var buf [mem.WordSize]byte
	now := sim.Time(0)
	tx, now := s.TxBegin(0, now)
	// First touch: the words enter the packing buffer and line table.
	for w := 0; w < 4; w++ {
		now = s.Store(0, tx, mem.PAddr(0x1000+w*8), buf[:], now)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for w := 0; w < 4; w++ {
			now = s.Store(0, tx, mem.PAddr(0x1000+w*8), buf[:], now)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Store allocates %v times, want 0", allocs)
	}
	s.TxEnd(0, tx, now)
}

// TestTxCycleSteadyStateAllocs locks the whole scheme-level transaction
// cycle (TxBegin + stores + TxEnd) after warm-up. The per-commit state —
// participant scratch, pending-commit slots, block pair-lists — is reused
// across transactions, so the cycle itself is allocation-free; only the
// commit-log ring and the pending list growing toward their first GC can
// allocate, and the warm-up plus periodic ForceGC below keeps both at
// capacity.
func TestTxCycleSteadyStateAllocs(t *testing.T) {
	s, _ := testSchemeMC(t, 1, 1)
	var buf [mem.WordSize]byte
	now := sim.Time(0)
	cycle := func(v byte) {
		tx, n := s.TxBegin(0, now)
		now = n
		buf[0] = v
		for w := 0; w < 4; w++ {
			now = s.Store(0, tx, mem.PAddr(0x1000+w*8), buf[:], now)
		}
		now = s.TxEnd(0, tx, now)
	}
	for i := 0; i < 100; i++ {
		cycle(byte(i))
		if i%32 == 31 {
			s.ForceGC(0)
		}
	}
	s.ForceGC(0)
	allocs := testing.AllocsPerRun(100, func() {
		cycle(1)
	})
	s.ForceGC(0)
	if allocs > 1 {
		t.Fatalf("steady-state transaction cycle allocates %v times per tx, budget is 1", allocs)
	}
}
