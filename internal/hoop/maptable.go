package hoop

import (
	"hoop/internal/mem"
	"hoop/internal/persist"
)

// mapEntry is one record of the hash-based physical-to-physical address
// mapping table (§III-C): it maps a home-region cache line to the OOP
// eviction slice holding its newest version. Hardware budgets 16 bytes per
// entry (home address + OOP address); the extra fields here are the
// controller-side tag bits that decide when an entry may be dropped.
type mapEntry struct {
	slice mem.PAddr // OOP address of the eviction slice
	mask  uint8     // which words of the line the slice carries
	count int       // popcount(mask)
	// ownerTx is the still-live transaction that last wrote the line when
	// it was evicted; the entry must outlive that transaction's
	// migration. Zero means every writer had already committed, and seq
	// bounds the commit sequence of the newest writer.
	ownerTx persist.TxID
	seq     uint64
	block   int // block containing slice (for reclamation refcounts)
}

// entryBytes is the hardware cost of one mapping-table entry (paper §III-C:
// home-region address plus OOP-region address).
const entryBytes = 16

// condenseShift groups lines into 4-line (256-byte) neighbourhoods for the
// §III-I entry-condensing optimization.
const condenseShift = 2

// mapTable is the controller-resident mapping table. It is volatile: a
// crash loses it entirely and recovery rebuilds consistent home contents
// without it. With condense enabled, entries for neighbouring lines share
// one hardware entry's budget (the paper's future-work locality
// optimization), so the same byte budget indexes a larger reach.
type mapTable struct {
	entries  map[uint64]mapEntry // keyed by home line index
	capacity int                 // maximum hardware entries (budget / entryBytes)
	condense bool
	groups   map[uint64]int // 4-line group -> member count (condense mode)
}

func newMapTable(bytes int, condense bool) *mapTable {
	cap := bytes / entryBytes
	if cap < 1 {
		cap = 1
	}
	t := &mapTable{entries: make(map[uint64]mapEntry), capacity: cap, condense: condense}
	if condense {
		t.groups = make(map[uint64]int)
	}
	return t
}

func (t *mapTable) lookup(line uint64) (mapEntry, bool) {
	e, ok := t.entries[line]
	return e, ok
}

func (t *mapTable) insert(line uint64, e mapEntry) {
	if t.condense {
		if _, existed := t.entries[line]; !existed {
			t.groups[line>>condenseShift]++
		}
	}
	t.entries[line] = e
}

func (t *mapTable) remove(line uint64) (mapEntry, bool) {
	e, ok := t.entries[line]
	if ok {
		delete(t.entries, line)
		if t.condense {
			g := line >> condenseShift
			if t.groups[g]--; t.groups[g] == 0 {
				delete(t.groups, g)
			}
		}
	}
	return e, ok
}

func (t *mapTable) len() int { return len(t.entries) }

// hwEntries reports the hardware-entry occupancy: one per line normally,
// one per 4-line group with condensing.
func (t *mapTable) hwEntries() int {
	if t.condense {
		return len(t.groups)
	}
	return len(t.entries)
}

func (t *mapTable) overCap() bool { return t.hwEntries() >= t.capacity }

func (t *mapTable) reset() {
	t.entries = make(map[uint64]mapEntry)
	if t.condense {
		t.groups = make(map[uint64]int)
	}
}

// evictBuffer models the 128 KB eviction buffer (§III-C): a FIFO of cache
// lines recently migrated to the home region by the GC, so that an LLC miss
// racing with a mapping-table removal still finds fresh data without an NVM
// access. Like the mapping table it is volatile.
type evictBuffer struct {
	lines    map[uint64]struct{}
	fifo     []uint64
	head     int
	capacity int
}

// evictBufEntryBytes is the hardware cost per entry: a 64-byte line plus
// its 8-byte home address.
const evictBufEntryBytes = mem.LineSize + 8

func newEvictBuffer(bytes int) *evictBuffer {
	cap := bytes / evictBufEntryBytes
	if cap < 1 {
		cap = 1
	}
	return &evictBuffer{lines: make(map[uint64]struct{}), capacity: cap}
}

func (b *evictBuffer) contains(line uint64) bool {
	_, ok := b.lines[line]
	return ok
}

// add inserts a line, displacing the oldest entry once full.
func (b *evictBuffer) add(line uint64) {
	if _, ok := b.lines[line]; ok {
		return
	}
	if len(b.lines) >= b.capacity {
		// Drop the oldest still-present entry.
		for b.head < len(b.fifo) {
			old := b.fifo[b.head]
			b.head++
			if _, ok := b.lines[old]; ok {
				delete(b.lines, old)
				break
			}
		}
		// Compact the fifo slab occasionally.
		if b.head > 4096 && b.head*2 > len(b.fifo) {
			b.fifo = append([]uint64(nil), b.fifo[b.head:]...)
			b.head = 0
		}
	}
	b.lines[line] = struct{}{}
	b.fifo = append(b.fifo, line)
}

func (b *evictBuffer) reset() {
	b.lines = make(map[uint64]struct{})
	b.fifo = nil
	b.head = 0
}

func (b *evictBuffer) len() int { return len(b.lines) }
