package hoop

import (
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/u64map"
)

// mapEntry is one record of the hash-based physical-to-physical address
// mapping table (§III-C): it maps a home-region cache line to the OOP
// eviction slice holding its newest version. Hardware budgets 16 bytes per
// entry (home address + OOP address); the extra fields here are the
// controller-side tag bits that decide when an entry may be dropped.
type mapEntry struct {
	slice mem.PAddr // OOP address of the eviction slice
	mask  uint8     // which words of the line the slice carries
	count int       // popcount(mask)
	// ownerTx is the still-live transaction that last wrote the line when
	// it was evicted; the entry must outlive that transaction's
	// migration. Zero means every writer had already committed, and seq
	// bounds the commit sequence of the newest writer.
	ownerTx persist.TxID
	seq     uint64
	block   int // block containing slice (for reclamation refcounts)
}

// entryBytes is the hardware cost of one mapping-table entry (paper §III-C:
// home-region address plus OOP-region address).
const entryBytes = 16

// condenseShift groups lines into 4-line (256-byte) neighbourhoods for the
// §III-I entry-condensing optimization.
const condenseShift = 2

// mapTable is the controller-resident mapping table. It is volatile: a
// crash loses it entirely and recovery rebuilds consistent home contents
// without it. With condense enabled, entries for neighbouring lines share
// one hardware entry's budget (the paper's future-work locality
// optimization), so the same byte budget indexes a larger reach.
//
// It is the simulation of a hardware hash table, so it is backed by one:
// u64map's open-addressed table gives each lookup/insert/remove a single
// probe sequence with no allocation, and reset reuses the slot array.
type mapTable struct {
	entries  u64map.Map[mapEntry] // keyed by home line index
	capacity int                  // maximum hardware entries (budget / entryBytes)
	condense bool
	groups   u64map.Map[int32] // 4-line group -> member count (condense mode)
}

func newMapTable(bytes int, condense bool) *mapTable {
	cap := bytes / entryBytes
	if cap < 1 {
		cap = 1
	}
	return &mapTable{capacity: cap, condense: condense}
}

func (t *mapTable) lookup(line uint64) (mapEntry, bool) {
	return t.entries.Get(line)
}

func (t *mapTable) insert(line uint64, e mapEntry) {
	before := t.entries.Len()
	t.entries.Put(line, e)
	if t.condense && t.entries.Len() != before {
		g := t.groups.Ref(line >> condenseShift)
		*g++
	}
}

func (t *mapTable) remove(line uint64) (mapEntry, bool) {
	e, ok := t.entries.Delete(line)
	if ok && t.condense {
		g := line >> condenseShift
		c := t.groups.Ref(g)
		*c--
		if *c == 0 {
			t.groups.Delete(g)
		}
	}
	return e, ok
}

func (t *mapTable) len() int { return t.entries.Len() }

// hwEntries reports the hardware-entry occupancy: one per line normally,
// one per 4-line group with condensing.
func (t *mapTable) hwEntries() int {
	if t.condense {
		return t.groups.Len()
	}
	return t.entries.Len()
}

func (t *mapTable) overCap() bool { return t.hwEntries() >= t.capacity }

func (t *mapTable) reset() {
	t.entries.Clear()
	t.groups.Clear()
}

// evictBuffer models the 128 KB eviction buffer (§III-C): a FIFO of cache
// lines recently migrated to the home region by the GC, so that an LLC miss
// racing with a mapping-table removal still finds fresh data without an NVM
// access. Like the mapping table it is volatile.
type evictBuffer struct {
	lines    u64map.Set
	fifo     []uint64
	head     int
	capacity int
}

// evictBufEntryBytes is the hardware cost per entry: a 64-byte line plus
// its 8-byte home address.
const evictBufEntryBytes = mem.LineSize + 8

func newEvictBuffer(bytes int) *evictBuffer {
	cap := bytes / evictBufEntryBytes
	if cap < 1 {
		cap = 1
	}
	return &evictBuffer{capacity: cap}
}

func (b *evictBuffer) contains(line uint64) bool {
	return b.lines.Contains(line)
}

// add inserts a line, displacing the oldest entry once full.
func (b *evictBuffer) add(line uint64) {
	if b.lines.Contains(line) {
		return
	}
	if b.lines.Len() >= b.capacity {
		// Drop the oldest still-present entry.
		for b.head < len(b.fifo) {
			old := b.fifo[b.head]
			b.head++
			if b.lines.Delete(old) {
				break
			}
		}
		// Compact the fifo slab occasionally.
		if b.head > 4096 && b.head*2 > len(b.fifo) {
			n := copy(b.fifo, b.fifo[b.head:])
			b.fifo = b.fifo[:n]
			b.head = 0
		}
	}
	b.lines.Add(line)
	b.fifo = append(b.fifo, line)
}

func (b *evictBuffer) reset() {
	b.lines.Clear()
	b.fifo = b.fifo[:0]
	b.head = 0
}

func (b *evictBuffer) len() int { return b.lines.Len() }
