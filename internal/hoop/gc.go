package hoop

import (
	"slices"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// runGC executes one garbage-collection pass (Algorithm 1): scan the
// committed transactions in reverse commit order, coalesce updates to the
// same words in a hash map so each home location is written at most once,
// migrate the newest versions to the home region, advance the durable
// watermark, drop now-stale mapping-table entries, and recycle fully
// migrated OOP blocks.
//
// start is when the pass begins; for background GC this is the period
// boundary, for on-demand GC the stalled core's current time (the paper's
// "on-demand GC has to take place on the critical path"). The returned
// time is when the pass completes. GC traffic goes through the shared
// memory controller, so it contends with foreground accesses for banks and
// channel bandwidth — the effect Figure 10 measures.
func (s *Scheme) runGC(start sim.Time, onDemand bool) sim.Time {
	// All of the pass's device work is issued at the pass's start time:
	// the burst piles up queue backlog that foreground accesses then
	// contend with — the interference Figure 10 measures — while the
	// pass's own completion time comes from the accumulated queueing.
	arr := sim.MaxTime(start, s.gcBusyUntil)
	t := arr
	s.statGCRuns.Inc()
	if onDemand {
		s.statGCOnDemand.Inc()
	}
	tel := s.ctx.Tel
	if tel.Enabled(telemetry.KindGCStart) {
		var flags uint8
		if onDemand {
			flags = telemetry.FlagOnDemand
		}
		tel.Emit(telemetry.Event{
			Kind:  telemetry.KindGCStart,
			Time:  arr,
			Core:  -1,
			Aux:   int64(len(s.pending)),
			Flags: flags,
		})
	}
	scannedBefore := s.statGCScanned.Value()
	migratedBefore := s.statGCMigrated.Value()

	newWM := s.watermark
	if len(s.pending) > 0 {
		newWM = s.pending[len(s.pending)-1].seq

		// Line 4: read the address memory slices of the committed set.
		t = sim.MaxTime(t, s.ctx.Ctrl.Read(s.logs[0].base, len(s.pending)*commitRecSize, arr))

		// Lines 5–19: reverse-time-order scan with coalescing. The first
		// value seen for a word during the reverse scan is the newest.
		// s.gcWords is the pass-scoped coalescing table, epoch-cleared and
		// reused so a steady GC cadence performs no allocation.
		h := &s.gcWords
		h.Clear()
		var modified, uncoalesced int64
		store := s.ctx.Dev.Store()
		var raw [SliceSize]byte
		for i := len(s.pending) - 1; i >= 0; i-- {
			p := &s.pending[i]
			for a := p.last; a != 0; {
				store.Read(a, raw[:])
				t = sim.MaxTime(t, s.ctx.Ctrl.Read(a, SliceSize, arr))
				s.statGCScanned.Add(SliceSize)
				ds, err := DecodeDataSlice(raw[:])
				if err != nil {
					panic("hoop: corrupt data slice during GC: " + err.Error())
				}
				// Within a slice, higher indices were packed later;
				// reverse order keeps the newest value.
				for j := ds.Count - 1; j >= 0; j-- {
					modified += mem.WordSize
					before := h.Len()
					wv := h.Ref(uint64(ds.Addrs[j]))
					if h.Len() != before {
						*wv = ds.Words[j]
					} else if s.cfg.DisableCoalescing {
						// Ablation: write the stale version home too (the
						// newest still lands through the coalesced set, so
						// only traffic and time change).
						t = sim.MaxTime(t, s.ctx.Ctrl.Write(mem.LineAddr(ds.Addrs[j]), mem.WordSize, arr))
						uncoalesced += mem.WordSize
					}
				}
				a = ds.Prev
			}
		}

		// Lines 20–27: migrate the coalesced set home, one write per home
		// line, smallest-address first for deterministic device timing.
		words := h.Keys(s.gcAddrs[:0])
		s.gcAddrs = words
		slices.Sort(words)

		var migrated int64
		for i := 0; i < len(words); {
			lineAddr := mem.LineAddr(mem.PAddr(words[i]))
			j := i
			for j < len(words) && mem.LineAddr(mem.PAddr(words[j])) == lineAddr {
				wv, _ := h.Get(words[j])
				store.Write(mem.PAddr(words[j]), wv[:])
				j++
			}
			n := (j - i) * mem.WordSize
			t = sim.MaxTime(t, s.ctx.Ctrl.Write(lineAddr, n, arr))
			migrated += int64(n)
			line := mem.LineIndex(lineAddr)
			s.evbuf.add(line)
			// The home copy is now the newest version unless a live
			// transaction has written the line since.
			if ls, ok := s.lines.Get(line); ok {
				if _, live := s.liveCore(ls.writer); !live {
					s.lines.Delete(line)
				}
			}
			i = j
		}
		migrated += uncoalesced
		s.gcModifiedBytes += modified
		s.gcMigratedBytes += migrated
		s.statGCMigrated.Add(migrated)
		s.statGCCoalesced.Add(modified - migrated)

		// Block accounting: the migrated transactions' slices are dead.
		for i := range s.pending {
			for _, bc := range s.pending[i].blocks {
				s.blocks[bc.block].pending -= bc.n
			}
		}
		s.pending = s.pending[:0]

		// Durable watermark: recovery must never replay migrated commits,
		// because their blocks may be recycled below.
		s.writeWatermark(newWM)
		t = sim.MaxTime(t, s.ctx.Ctrl.Write(s.wmAddr, mem.LineSize, arr))
		s.watermark = newWM
		// Every commit record at or below the watermark is dead: the
		// rings are empty again.
		for m := range s.logs {
			s.logs[m].live = 0
		}
	}

	// Drop mapping-table entries whose data is now (at or below the
	// watermark) guaranteed to be in the home region. Entries owned by
	// still-live transactions survive. (u64map iteration is deterministic,
	// but the sort stays: removals must happen in address order so the
	// telemetry stream and any future timing per removal are
	// history-independent.)
	stale := s.gcStale[:0]
	s.table.entries.Range(func(line uint64, e *mapEntry) bool {
		if e.ownerTx == 0 && e.seq <= s.watermark {
			stale = append(stale, line)
		}
		return true
	})
	s.gcStale = stale
	slices.Sort(stale)
	for _, line := range stale {
		if e, ok := s.table.remove(line); ok {
			s.blocks[e.block].mapRefs--
			if tel.Enabled(telemetry.KindMapEvict) {
				tel.Emit(telemetry.Event{
					Kind: telemetry.KindMapEvict,
					Time: t,
					Core: -1,
					Addr: mem.PAddr(line << mem.LineShift),
				})
			}
		}
	}

	// Lines 28–29: recycle fully migrated blocks.
	for i := range s.blocks {
		if s.isActiveBlock(i) {
			continue
		}
		if s.blocks[i].reclaimable() {
			seq := s.blocks[i].seq
			s.blocks[i] = blockInfo{state: BlkUnused, seq: seq}
			s.writeHeader(i, BlkUnused, s.gcAgent, t)
			s.freeBlocks++
		}
	}

	if tel.Enabled(telemetry.KindGCEnd) {
		tel.Emit(telemetry.Event{
			Kind:  telemetry.KindGCEnd,
			Time:  t,
			Core:  -1,
			Bytes: s.statGCMigrated.Value() - migratedBefore,
			Aux:   s.statGCScanned.Value() - scannedBefore,
		})
	}
	s.gcBusyUntil = t
	return t
}

// isActiveBlock reports whether block i is some controller's open block.
func (s *Scheme) isActiveBlock(i int) bool {
	for _, a := range s.active {
		if a == i {
			return true
		}
	}
	return false
}

// writeWatermark persists the migration watermark record.
func (s *Scheme) writeWatermark(seq uint64) {
	var b [mem.LineSize]byte
	putU32(b[0:], watermarkMagic)
	putU64(b[8:], seq)
	s.ctx.Dev.Store().Write(s.wmAddr, b[:])
}

// readWatermark parses the durable watermark; absent/uninitialized reads
// as zero.
func (s *Scheme) readWatermark() uint64 {
	var b [mem.LineSize]byte
	s.ctx.Dev.Store().Read(s.wmAddr, b[:])
	if getU32(b[0:]) != watermarkMagic {
		return 0
	}
	return getU64(b[8:])
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
