// Package hoop implements the paper's contribution: the hardware-assisted
// out-of-place update mechanism living in the memory controller. It
// comprises the per-core OOP data buffer with word-granularity data
// packing (§III-C, Figure 3), the log-structured OOP region of 2 MB blocks
// holding 128-byte memory slices (§III-D, Figure 5), the hash-based
// physical-to-physical mapping table and eviction buffer (§III-C), the
// adaptive garbage collector with data coalescing (§III-E, Algorithm 1),
// and multi-threaded data recovery (§III-F).
//
// Everything durable is represented as real bytes in the simulated NVM
// store, so crash recovery genuinely reparses device contents rather than
// consulting in-memory state.
package hoop

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/persist"
)

// On-NVM geometry (Figure 5).
const (
	// SliceSize is the fixed size of a memory slice: 64 B of packed
	// 8-byte data words plus 64 B of metadata, flushable in two
	// consecutive memory bursts.
	SliceSize = 128
	// WordsPerSlice is the data capacity of one slice.
	WordsPerSlice = 8
	// BlockSize is one OOP block (2 MB).
	BlockSize = 2 << 20
	// SlicesPerBlock counts slices per block; slice 0 holds the block
	// header.
	SlicesPerBlock = BlockSize / SliceSize
	// HomeAddrBytes encodes a 40-bit home-region word address
	// (addresses 1 TB, §III-C).
	HomeAddrBytes = 5
)

// Block states (§III-D).
const (
	BlkUnused byte = iota
	BlkInUse
	BlkFull
	BlkGC
)

// Slice type flags stored in the metadata flag nibble.
const (
	sliceTypeData byte = 1
)

// Data-slice metadata byte offsets within the 128-byte slice. Bytes 0–63
// hold the packed data words; the metadata half (64–127) holds the reverse
// mappings and chain linkage. The paper packs a 24-bit next-slice offset;
// we store a full 8-byte previous-slice pointer in the pad area for decode
// simplicity — the *accounted* metadata still fits the 64-byte metadata
// line (8×5 B addresses + 3 B link + 4 B TxID + 1 B flags = 48 B ≤ 64 B).
const (
	offData   = 0
	offAddrs  = 64  // 8 × 5-byte home word addresses
	offPrev   = 104 // 8-byte previous-slice NVM address (0 = chain start)
	offTxID   = 112 // 4-byte transaction ID
	offCount  = 116 // 1 byte: number of valid words (1..8)
	offFlags  = 117 // bit0: first slice of tx; bits 4..7: slice type
	offUnused = 118
)

// DataSlice is the decoded form of a data memory slice (Figure 5b).
type DataSlice struct {
	Words [WordsPerSlice][mem.WordSize]byte
	Addrs [WordsPerSlice]mem.PAddr // home word addresses
	Prev  mem.PAddr                // previous slice in this tx's chain (0 = first)
	TxID  persist.TxID
	Count int  // valid words, 1..8
	First bool // first slice written by the transaction
}

// Encode serializes the slice into a 128-byte buffer.
func (s *DataSlice) Encode() [SliceSize]byte {
	var b [SliceSize]byte
	if s.Count < 1 || s.Count > WordsPerSlice {
		panic(fmt.Sprintf("hoop: slice count %d out of range", s.Count))
	}
	for i := 0; i < s.Count; i++ {
		copy(b[offData+i*mem.WordSize:], s.Words[i][:])
		putAddr40(b[offAddrs+i*HomeAddrBytes:], s.Addrs[i])
	}
	binary.LittleEndian.PutUint64(b[offPrev:], uint64(s.Prev))
	binary.LittleEndian.PutUint32(b[offTxID:], uint32(s.TxID))
	b[offCount] = byte(s.Count)
	fl := sliceTypeData << 4
	if s.First {
		fl |= 1
	}
	b[offFlags] = fl
	return b
}

// DecodeDataSlice parses a 128-byte buffer as a data slice. It returns an
// error if the flag nibble does not mark a data slice or the count is out
// of range — recovery uses this to reject torn or stale slices.
func DecodeDataSlice(b []byte) (DataSlice, error) {
	var s DataSlice
	if len(b) < SliceSize {
		return s, fmt.Errorf("hoop: short slice buffer (%d bytes)", len(b))
	}
	if b[offFlags]>>4 != sliceTypeData {
		return s, fmt.Errorf("hoop: not a data slice (flags=%#x)", b[offFlags])
	}
	cnt := int(b[offCount])
	if cnt < 1 || cnt > WordsPerSlice {
		return s, fmt.Errorf("hoop: bad word count %d", cnt)
	}
	s.Count = cnt
	s.First = b[offFlags]&1 != 0
	s.TxID = persist.TxID(binary.LittleEndian.Uint32(b[offTxID:]))
	s.Prev = mem.PAddr(binary.LittleEndian.Uint64(b[offPrev:]))
	for i := 0; i < cnt; i++ {
		copy(s.Words[i][:], b[offData+i*mem.WordSize:])
		s.Addrs[i] = getAddr40(b[offAddrs+i*HomeAddrBytes:])
	}
	return s, nil
}

func putAddr40(b []byte, a mem.PAddr) {
	if uint64(a) >= 1<<40 {
		panic(fmt.Sprintf("hoop: home address %v exceeds 40-bit metadata field", a))
	}
	b[0] = byte(a)
	b[1] = byte(a >> 8)
	b[2] = byte(a >> 16)
	b[3] = byte(a >> 24)
	b[4] = byte(a >> 32)
}

func getAddr40(b []byte) mem.PAddr {
	return mem.PAddr(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 |
		uint64(b[3])<<24 | uint64(b[4])<<32)
}

// Block header layout (slice 0 of each block): state byte, activation
// sequence number, block index. The slice bitmap the paper mentions is
// volatile controller state (allocation is strictly sequential within a
// block), so it is not persisted.
const (
	hdrState = 0
	hdrSeq   = 8  // 8-byte activation sequence
	hdrIndex = 16 // 8-byte block index (sanity checking)
)

// BlockHeader is the decoded durable header of one OOP block.
type BlockHeader struct {
	State byte
	Seq   uint64 // monotone activation sequence: larger = activated later
	Index uint64
}

// Encode serializes the header into a slice-sized buffer.
func (h BlockHeader) Encode() [SliceSize]byte {
	var b [SliceSize]byte
	b[hdrState] = h.State
	binary.LittleEndian.PutUint64(b[hdrSeq:], h.Seq)
	binary.LittleEndian.PutUint64(b[hdrIndex:], h.Index)
	return b
}

// DecodeBlockHeader parses a block header.
func DecodeBlockHeader(b []byte) BlockHeader {
	return BlockHeader{
		State: b[hdrState],
		Seq:   binary.LittleEndian.Uint64(b[hdrSeq:]),
		Index: binary.LittleEndian.Uint64(b[hdrIndex:]),
	}
}

// Commit-log entry (the durable content of an "address memory slice"): a
// fixed 16-byte record appended per committed transaction, holding the
// transaction ID and the address of the *last* data slice of its chain
// (chains link backwards, matching the paper's reverse-time-order GC scan).
const CommitEntrySize = 16

// CommitEntry is one committed-transaction record.
type CommitEntry struct {
	TxID persist.TxID
	Last mem.PAddr // last data slice of the chain (walk Prev links from here)
}

// Encode serializes the entry.
func (e CommitEntry) Encode() [CommitEntrySize]byte {
	var b [CommitEntrySize]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(e.TxID))
	binary.LittleEndian.PutUint64(b[8:], uint64(e.Last))
	return b
}

// DecodeCommitEntry parses an entry; ok is false for an empty (never
// written) record.
func DecodeCommitEntry(b []byte) (CommitEntry, bool) {
	e := CommitEntry{
		TxID: persist.TxID(binary.LittleEndian.Uint64(b[0:])),
		Last: mem.PAddr(binary.LittleEndian.Uint64(b[8:])),
	}
	return e, e.TxID != 0
}
