package hoop

import (
	"testing"
	"testing/quick"

	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/persisttest"
	"hoop/internal/sim"
)

// testSchemeMC builds a HOOP scheme with n memory controllers.
func testSchemeMC(t *testing.T, cores, controllers int) (*Scheme, persist.Context) {
	t.Helper()
	ctx := persisttest.NewContext(cores)
	cfg := DefaultConfig()
	cfg.CommitLogBytes = 1 << 20
	cfg.Controllers = controllers
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctx
}

func TestMultiMCCommitRecoverRoundtrip(t *testing.T) {
	for _, n := range []int{2, 4} {
		n := n
		t.Run(map[int]string{2: "2MC", 4: "4MC"}[n], func(t *testing.T) {
			s, ctx := testSchemeMC(t, 2, n)
			if s.Controllers() != n {
				t.Fatalf("Controllers = %d", s.Controllers())
			}
			oracle := map[mem.PAddr]uint64{}
			r := sim.NewRand(21)
			for i := 0; i < 200; i++ {
				words := map[mem.PAddr]uint64{}
				for j := 0; j < 1+r.Intn(12); j++ {
					// Addresses spread over many lines so transactions
					// span controllers.
					words[mem.PAddr(r.Intn(8192))*8] = r.Uint64()
				}
				writeTx(s, ctx, i%2, words)
				for a, v := range words {
					oracle[a] = v
				}
				if r.Bool(0.05) {
					s.ForceGC(0)
				}
			}
			s.Crash()
			if _, err := s.Recover(4); err != nil {
				t.Fatal(err)
			}
			for a, v := range oracle {
				if got := ctx.Dev.Store().ReadWord(a); got != v {
					t.Fatalf("word %v = %#x, want %#x", a, got, v)
				}
			}
		})
	}
}

func TestMultiMCUndecidedTxRollsBack(t *testing.T) {
	// A transaction whose PREPARE records were persisted but whose
	// coordinator DECISION record never landed must roll back: this is
	// the crash window between the two phases of §III-I's protocol.
	s, ctx := testSchemeMC(t, 1, 2)
	// One fully committed transaction on both controllers.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x00: 1, 0x40: 2}) // lines 0 and 1 -> MCs 0 and 1
	// Manually construct a prepared-but-undecided transaction: a chain on
	// MC 1 with only a PREPARE record.
	tx := s.alloc.Next()
	var ds DataSlice
	ds.Count = 1
	ds.Addrs[0] = 0x48 // line 1 -> MC 1
	ds.Words[0] = [8]byte{0xEE}
	ds.First = true
	ds.TxID = tx
	a, blk, _ := s.allocSlice(0, 1, 0)
	enc := ds.Encode()
	ctx.Dev.Store().Write(a, enc[:])
	s.blocks[blk].live++
	seq := s.nextSeq
	s.nextSeq++
	s.appendCommitRec(1, seq, tx, a, 0) // PREPARE only, no decision
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	st := ctx.Dev.Store()
	if st.ReadWord(0x00) != 1 || st.ReadWord(0x40) != 2 {
		t.Fatal("committed two-controller transaction lost")
	}
	if st.ReadWord(0x48) != 0 {
		t.Fatal("prepared-but-undecided transaction leaked to the home region")
	}
}

func TestMultiMCCommitCostsMore(t *testing.T) {
	// A transaction spanning two controllers pays the prepare/commit
	// rounds; a single-controller transaction of the same size does not.
	commitCost := func(addrs []mem.PAddr) sim.Duration {
		s, _ := testSchemeMC(t, 1, 2)
		tx, now := s.TxBegin(0, 0)
		var buf [8]byte
		for _, a := range addrs {
			now = s.Store(0, tx, a, buf[:], now)
		}
		before := now
		return s.TxEnd(0, tx, now) - before
	}
	oneMC := commitCost([]mem.PAddr{0x00, 0x08}) // both words on line 0 -> MC 0
	twoMC := commitCost([]mem.PAddr{0x00, 0x40}) // lines 0,1 -> MCs 0,1
	if twoMC <= oneMC {
		t.Fatalf("two-phase commit should cost more: %v vs %v", twoMC, oneMC)
	}
	if twoMC < oneMC+2*interMCLatency {
		t.Fatalf("missing prepare/commit rounds: %v vs %v", twoMC, oneMC)
	}
}

func TestMultiMCBlockStriping(t *testing.T) {
	s, ctx := testSchemeMC(t, 1, 2)
	// Words on even lines go to MC 0, odd lines to MC 1; their slices
	// must land in the corresponding block stripes.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x00: 1}) // MC 0
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x40: 2}) // MC 1
	b0 := s.sliceOf(0)
	b1 := s.sliceOf(1)
	if blockOf(s.blockBase, b0)%2 != 0 {
		t.Fatalf("MC 0 slice landed in block %d", blockOf(s.blockBase, b0))
	}
	if blockOf(s.blockBase, b1)%2 != 1 {
		t.Fatalf("MC 1 slice landed in block %d", blockOf(s.blockBase, b1))
	}
}

func TestMultiMCSyntheticFillAndGC(t *testing.T) {
	s, ctx := testSchemeMC(t, 1, 2)
	if _, err := s.SyntheticFill(300, 16, 1<<20, 5); err != nil {
		t.Fatal(err)
	}
	s.ForceGC(0)
	if s.PendingCommits() != 0 {
		t.Fatal("GC left pending chains")
	}
	// Everything must be recoverable and idempotent after the GC too.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x80: 42})
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	if ctx.Dev.Store().ReadWord(0x80) != 42 {
		t.Fatal("post-GC commit lost")
	}
}

func TestCrashBetweenGCMigrationAndWatermark(t *testing.T) {
	// §III-E: GC is crash-safe because the OOP region stays consistent.
	// The riskiest window is after the GC has written migrated data to
	// the home region but before the durable watermark advances: on
	// recovery the same transactions are replayed, which must be
	// idempotent. Emulate that window by rolling the durable watermark
	// back after a completed GC.
	s, ctx := testSchemeMC(t, 1, 1)
	oracle := map[mem.PAddr]uint64{}
	r := sim.NewRand(77)
	for i := 0; i < 60; i++ {
		words := map[mem.PAddr]uint64{}
		for j := 0; j < 1+r.Intn(6); j++ {
			words[mem.PAddr(r.Intn(256))*8] = r.Uint64()
		}
		writeTx(s, ctx, 0, words)
		for a, v := range words {
			oracle[a] = v
		}
	}
	oldWM := s.watermark
	s.ForceGC(0)
	// Roll the watermark back to the pre-GC value: exactly the durable
	// state a crash in the GC's migrate-then-watermark window leaves.
	s.writeWatermark(oldWM)
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	for a, v := range oracle {
		if got := ctx.Dev.Store().ReadWord(a); got != v {
			t.Fatalf("replay after mid-GC crash diverged at %v", a)
		}
	}
}

func TestRecoveryRestartIsIdempotent(t *testing.T) {
	// §III-F: "When system crashes or failures happen during the
	// recovery, HOOP can restart the recovery procedure." A crash right
	// after a completed recovery — or a doubled recovery — must yield the
	// same home-region state.
	s, ctx := testSchemeMC(t, 1, 2)
	oracle := map[mem.PAddr]uint64{}
	r := sim.NewRand(31)
	for i := 0; i < 80; i++ {
		words := map[mem.PAddr]uint64{}
		for j := 0; j < 1+r.Intn(8); j++ {
			words[mem.PAddr(r.Intn(1024))*8] = r.Uint64()
		}
		writeTx(s, ctx, 0, words)
		for a, v := range words {
			oracle[a] = v
		}
	}
	s.Crash()
	if _, err := s.Recover(2); err != nil {
		t.Fatal(err)
	}
	// Crash again immediately (recovery state fully durable) and recover
	// once more.
	s.Crash()
	if _, err := s.Recover(3); err != nil {
		t.Fatal(err)
	}
	for a, v := range oracle {
		if got := ctx.Dev.Store().ReadWord(a); got != v {
			t.Fatalf("double recovery diverged at %v: %#x != %#x", a, got, v)
		}
	}
	// And the system still works afterwards.
	writeTx(s, ctx, 0, map[mem.PAddr]uint64{0x200: 123})
	s.Crash()
	if _, err := s.Recover(1); err != nil {
		t.Fatal(err)
	}
	if ctx.Dev.Store().ReadWord(0x200) != 123 {
		t.Fatal("post-restart commit lost")
	}
}

func TestMultiMCQuickRandom(t *testing.T) {
	f := func(seed uint64) bool {
		s, ctx := testSchemeMC(t, 2, 2)
		r := sim.NewRand(seed)
		oracle := map[mem.PAddr]uint64{}
		for i := 0; i < 15+r.Intn(40); i++ {
			words := map[mem.PAddr]uint64{}
			for j := 0; j < 1+r.Intn(8); j++ {
				words[mem.PAddr(r.Intn(512))*8] = r.Uint64()
			}
			writeTx(s, ctx, i%2, words)
			for a, v := range words {
				oracle[a] = v
			}
		}
		s.Crash()
		if _, err := s.Recover(2); err != nil {
			return false
		}
		for a, v := range oracle {
			if ctx.Dev.Store().ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
