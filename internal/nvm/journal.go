package nvm

import (
	"fmt"

	"hoop/internal/mem"
)

// JournalEntry is one atomically-persistable NVM write: the post-image of a
// single aligned 8-byte persist unit. Real persistent memory guarantees
// atomicity only at this granularity, so every durable store a scheme
// issues — a 128-byte HOOP slice, a 64-byte log line, a 1-byte bitmap
// flip — decomposes into a sequence of these units in program order.
type JournalEntry struct {
	Addr mem.PAddr
	Val  [mem.WordSize]byte
}

// span marks a half-open range [start, end) of journal indices that the
// hardware persists atomically (e.g. a persistence-domain controller queue
// drained all-or-nothing by the ADR/battery path). A crash point may not
// fall strictly inside a span.
type span struct{ start, end int }

// Journal records every durable write reaching the device's functional
// store as an ordered sequence of 8-byte atomic persist units, so that a
// crash can be declared at any journal index k: ReconstructAt(k) rebuilds
// the NVM image as "every unit before k is durable, nothing at or after k
// is". This naturally models torn slices, torn commit records, and
// half-applied GC migrations — the unit sequence of a multi-line write cut
// anywhere in the middle.
//
// The journal observes the functional store (mem.Store), not Device.Write:
// schemes write contents through Store() and account timing separately, so
// the store is the single point every durable byte passes through.
type Journal struct {
	dev     *Device
	base    *mem.Store
	entries []JournalEntry
	groups  []span
	open    int // start index of the open atomic group, -1 if none
}

// AttachJournal snapshots the device's current durable contents and begins
// recording every subsequent write as 8-byte atomic units. Attach before
// building a scheme so that any durable-format initialization the
// constructor performs is journaled too. Only one journal may be attached
// at a time.
func (d *Device) AttachJournal() *Journal {
	if d.journal != nil {
		panic("nvm: journal already attached")
	}
	j := &Journal{dev: d, base: d.store.Clone(), open: -1}
	d.journal = j
	d.store.SetWriteObserver(func(a mem.PAddr, unit [mem.WordSize]byte) {
		j.entries = append(j.entries, JournalEntry{Addr: a, Val: unit})
	})
	return j
}

// Journal returns the attached journal, or nil.
func (d *Device) Journal() *Journal { return d.journal }

// DetachJournal stops recording and releases the journal.
func (d *Device) DetachJournal() {
	if d.journal == nil {
		return
	}
	d.store.SetWriteObserver(nil)
	d.journal = nil
}

// BeginAtomicPersist opens an atomic persist group: all units recorded
// until the matching EndAtomicPersist reach NVM all-or-nothing. This models
// hardware whose persistence domain covers the controller queues (LAD's
// battery-backed write queues), not ordering tricks done in software. A
// no-op when no journal is attached. Groups do not nest.
func (d *Device) BeginAtomicPersist() {
	if d.journal != nil {
		d.journal.beginAtomic()
	}
}

// EndAtomicPersist closes the group opened by BeginAtomicPersist. A no-op
// when no journal is attached.
func (d *Device) EndAtomicPersist() {
	if d.journal != nil {
		d.journal.endAtomic()
	}
}

func (j *Journal) beginAtomic() {
	if j.open >= 0 {
		panic("nvm: atomic persist groups do not nest")
	}
	j.open = len(j.entries)
}

func (j *Journal) endAtomic() {
	if j.open < 0 {
		panic("nvm: EndAtomicPersist without BeginAtomicPersist")
	}
	if end := len(j.entries); end > j.open {
		j.groups = append(j.groups, span{start: j.open, end: end})
	}
	j.open = -1
}

// Len is the number of persist units recorded so far. Crash point k = Len()
// means "everything so far is durable".
func (j *Journal) Len() int { return len(j.entries) }

// Entries exposes the recorded unit sequence (read-only; do not mutate).
func (j *Journal) Entries() []JournalEntry { return j.entries }

// AlignPoint rounds k down out of the interior of any atomic group, since a
// crash cannot observe a partially-drained atomic queue. Points at a group
// boundary (nothing drained / everything drained) are untouched.
func (j *Journal) AlignPoint(k int) int {
	if k < 0 {
		k = 0
	}
	if k > len(j.entries) {
		k = len(j.entries)
	}
	for _, g := range j.groups {
		if k > g.start && k < g.end {
			return g.start
		}
	}
	if j.open >= 0 && k > j.open {
		return j.open
	}
	return k
}

// CrashPoints enumerates every distinct crash point: each index 0..Len()
// that is not strictly inside an atomic group. Exhaustive drivers iterate
// this; random drivers may pick any k and rely on ReconstructAt's rounding.
func (j *Journal) CrashPoints() []int {
	pts := make([]int, 0, len(j.entries)+1)
	for k := 0; k <= len(j.entries); k++ {
		if j.AlignPoint(k) == k {
			pts = append(pts, k)
		}
	}
	return pts
}

// ReconstructAt rebuilds the durable NVM image at crash point k: a fresh
// store holding the pre-attach snapshot plus entries[0:k] applied in order.
// k inside an atomic group is rounded down to the group start. The returned
// store is independent of the live one and carries no observer.
func (j *Journal) ReconstructAt(k int) *mem.Store {
	k = j.AlignPoint(k)
	st := j.base.Clone()
	for i := 0; i < k; i++ {
		e := j.entries[i]
		st.Write(e.Addr, e.Val[:])
	}
	return st
}

// String summarizes the journal for failure reports.
func (j *Journal) String() string {
	return fmt.Sprintf("journal{units=%d groups=%d}", len(j.entries), len(j.groups))
}
