package nvm

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

func newDev(t *testing.T) (*Device, *sim.Stats) {
	t.Helper()
	st := sim.NewStats()
	p := DefaultParams()
	return NewDevice(p, mem.NewStore(), st), st
}

func TestReadWriteLatency(t *testing.T) {
	d, st := newDev(t)
	done := d.Read(0, mem.LineSize, 0)
	if done < 50*sim.Nanosecond {
		t.Fatalf("read finished in %v, below the 50ns device latency", done)
	}
	done = d.Write(mem.LineSize, mem.LineSize, 0)
	if done < 150*sim.Nanosecond {
		t.Fatalf("write finished in %v, below the 150ns device latency", done)
	}
	if st.Get(sim.StatNVMBytesRead) != 64 || st.Get(sim.StatNVMBytesWritten) != 64 {
		t.Fatalf("traffic accounting: %s", st)
	}
}

func TestBankQueueingBuildsUp(t *testing.T) {
	d, _ := newDev(t)
	// Hammer one bank at the same instant: completions must serialize.
	a := mem.PAddr(0)
	first := d.Write(a, mem.LineSize, 0)
	tenth := first
	for i := 0; i < 9; i++ {
		tenth = d.Write(a, mem.LineSize, 0)
	}
	if tenth < first+9*150*sim.Nanosecond {
		t.Fatalf("10 same-bank writes at t=0 must serialize: first %v, tenth %v", first, tenth)
	}
}

func TestBankParallelism(t *testing.T) {
	d, _ := newDev(t)
	// Writes to different banks at the same instant overlap (only the
	// shared channel transfer serializes).
	var last sim.Time
	for i := 0; i < d.Params().Banks; i++ {
		last = d.Write(mem.PAddr(i*mem.LineSize), mem.LineSize, 0)
	}
	// 16 writes serialized would take 2.4 µs; parallel banks finish in
	// roughly one write latency plus the channel transfers.
	if last > 300*sim.Nanosecond {
		t.Fatalf("bank-parallel writes took %v", last)
	}
}

func TestQueueDrainsOverTime(t *testing.T) {
	d, _ := newDev(t)
	a := mem.PAddr(0)
	for i := 0; i < 10; i++ {
		d.Write(a, mem.LineSize, 0)
	}
	// Far in the future the backlog has drained: latency back to ~150ns.
	done := d.Write(a, mem.LineSize, 1*sim.Millisecond)
	if done > 1*sim.Millisecond+200*sim.Nanosecond {
		t.Fatalf("backlog did not drain: %v", done)
	}
}

func TestOutOfOrderArrivalIsNotPenalized(t *testing.T) {
	d, _ := newDev(t)
	// An agent far in the future touches a bank...
	d.Write(0, mem.LineSize, 1*sim.Millisecond)
	// ...an agent in its past must not wait until that future time.
	done := d.Read(0, mem.LineSize, 10*sim.Nanosecond)
	if done > 10*sim.Nanosecond+300*sim.Nanosecond {
		t.Fatalf("past arrival stalled to the future frontier: %v", done)
	}
}

func TestResetQueues(t *testing.T) {
	d, _ := newDev(t)
	for i := 0; i < 100; i++ {
		d.Write(0, mem.LineSize, 0)
	}
	d.ResetQueues()
	if done := d.Write(0, mem.LineSize, 0); done > 200*sim.Nanosecond {
		t.Fatalf("queues not reset: %v", done)
	}
}

func TestEnergyModel(t *testing.T) {
	d, _ := newDev(t)
	d.Read(0, mem.LineSize, 0)
	wantRead := 64 * 8 * (0.93 + 2.47)
	if got := d.ReadEnergyPJ(); got < wantRead*0.99 || got > wantRead*1.01 {
		t.Fatalf("read energy %f, want %f", got, wantRead)
	}
	d.Write(0, mem.LineSize, 0)
	wantWrite := 64 * 8 * (1.02 + 16.82)
	if got := d.WriteEnergyPJ(); got < wantWrite*0.99 || got > wantWrite*1.01 {
		t.Fatalf("write energy %f, want %f", got, wantWrite)
	}
	if d.TotalEnergyPJ() != d.ReadEnergyPJ()+d.WriteEnergyPJ() {
		t.Fatal("total energy mismatch")
	}
}

func TestWearTracking(t *testing.T) {
	d, _ := newDev(t)
	d.Write(0, mem.LineSize, 0)
	d.Write(5<<20, 2*mem.LineSize, 0)
	buckets, minW, maxW, total := d.WearInRegion(mem.Region{Base: 0, Size: 8 << 20})
	if buckets != 2 || total != 3*mem.LineSize {
		t.Fatalf("wear: buckets=%d total=%d", buckets, total)
	}
	if minW != mem.LineSize || maxW != 2*mem.LineSize {
		t.Fatalf("wear min/max: %d/%d", minW, maxW)
	}
	if len(d.WearBuckets()) != 2 {
		t.Fatal("WearBuckets")
	}
}

func TestSensitivityKnobs(t *testing.T) {
	d, _ := newDev(t)
	d.SetLatencies(250*sim.Nanosecond, 150*sim.Nanosecond)
	if done := d.Read(0, mem.LineSize, 0); done < 250*sim.Nanosecond {
		t.Fatalf("read latency knob ignored: %v", done)
	}
	d.SetBandwidth(1 << 30)
	if d.Params().Bandwidth != 1<<30 {
		t.Fatal("bandwidth knob ignored")
	}
	if d.String() == "" {
		t.Fatal("String")
	}
}

func TestMultiLineAccessPipelines(t *testing.T) {
	d, _ := newDev(t)
	// A 1 KB read spans 16 lines over 16 banks: roughly one latency plus
	// transfer, far below 16 serialized reads.
	done := d.Read(0, 1024, 0)
	if done > 400*sim.Nanosecond {
		t.Fatalf("multi-line read did not pipeline: %v", done)
	}
}
