// Package nvm models the timing, bandwidth, energy, and wear behaviour of
// the simulated byte-addressable non-volatile DIMM, mirroring Table II of
// the HOOP paper: 50 ns reads, 150 ns writes, 512 GB capacity, with the
// published per-bit row-buffer and array energies.
//
// The device is a bank-parallel, single-channel model: each 64-byte line
// access occupies one bank for the access latency and the shared channel
// for the transfer time. Bank conflicts and channel saturation therefore
// emerge naturally — they are what make double-write schemes (redo/undo
// logging) lose throughput, and what makes garbage collection interfere
// with foreground traffic in Figure 10.
package nvm

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Params configures the device.
type Params struct {
	// ReadLatency is the time for a bank to service a 64-byte read
	// (paper default 50 ns).
	ReadLatency sim.Duration
	// WriteLatency is the time for a bank to service a 64-byte write
	// (paper default 150 ns).
	WriteLatency sim.Duration
	// Bandwidth is the shared channel bandwidth in bytes/second
	// (Figure 11 sweeps 10–30 GB/s).
	Bandwidth int64
	// Banks is the number of independent banks (line-interleaved).
	Banks int
	// Capacity is the DIMM capacity in bytes (paper default 512 GB).
	Capacity uint64
	// Energy holds the per-bit energy coefficients from Table II.
	Energy EnergyParams
}

// EnergyParams are the Table II energy coefficients, in picojoules per bit.
type EnergyParams struct {
	RowBufferRead  float64 // 0.93 pJ/bit
	RowBufferWrite float64 // 1.02 pJ/bit
	ArrayRead      float64 // 2.47 pJ/bit
	ArrayWrite     float64 // 16.82 pJ/bit
}

// DefaultParams returns the paper's Table II configuration.
func DefaultParams() Params {
	return Params{
		ReadLatency:  50 * sim.Nanosecond,
		WriteLatency: 150 * sim.Nanosecond,
		Bandwidth:    15 << 30, // 15 GB/s channel
		Banks:        16,
		Capacity:     512 << 30,
		Energy: EnergyParams{
			RowBufferRead:  0.93,
			RowBufferWrite: 1.02,
			ArrayRead:      2.47,
			ArrayWrite:     16.82,
		},
	}
}

// wearBucketShift groups wear accounting into 1 MB buckets; fine enough to
// observe uniform aging of OOP blocks (2 MB) without per-line maps.
const wearBucketShift = 20

// queue models contention on one resource (a bank or the shared channel)
// as a leaky bucket: outstanding service time drains in real time, and a
// new access waits behind whatever backlog remains. Unlike an absolute
// "free at time T" frontier, this stays correct when accesses arrive out
// of global time order — the engine simulates threads at transaction
// granularity, so a lagging thread must not be penalized for accesses its
// peers performed in its simulated future.
type queue struct {
	last    sim.Time
	backlog sim.Duration
}

// acquire reserves service time starting no earlier than now and returns
// the queueing delay.
func (q *queue) acquire(now sim.Time, service sim.Duration) sim.Duration {
	if now > q.last {
		elapsed := now - q.last
		if elapsed >= q.backlog {
			q.backlog = 0
		} else {
			q.backlog -= elapsed
		}
		q.last = now
	}
	wait := q.backlog
	q.backlog += service
	return wait
}

// Device is the simulated NVM DIMM: functional contents plus a timing,
// traffic, energy and wear model. Device is not safe for concurrent use;
// the engine serializes access.
type Device struct {
	params Params
	store  *mem.Store

	// Interned counter handles: one of these fires per simulated line
	// access, so they bypass the name-keyed map.
	reads        *sim.Counter
	bytesRead    *sim.Counter
	writes       *sim.Counter
	bytesWritten *sim.Counter

	banks   []queue
	channel queue

	readEnergyPJ  float64
	writeEnergyPJ float64

	wear map[uint64]int64

	journal *Journal
	tel     *telemetry.Hub
}

// NewDevice builds a device with the given parameters, contents store, and
// stats registry.
func NewDevice(p Params, store *mem.Store, stats *sim.Stats) *Device {
	if p.Banks <= 0 {
		panic("nvm: need at least one bank")
	}
	if p.Bandwidth <= 0 {
		panic("nvm: bandwidth must be positive")
	}
	return &Device{
		params:       p,
		store:        store,
		reads:        stats.Counter(sim.StatNVMReads),
		bytesRead:    stats.Counter(sim.StatNVMBytesRead),
		writes:       stats.Counter(sim.StatNVMWrites),
		bytesWritten: stats.Counter(sim.StatNVMBytesWritten),
		banks:        make([]queue, p.Banks),
		wear:         make(map[uint64]int64),
	}
}

// AttachTelemetry connects the device to a telemetry hub; per-access
// KindNVMRead/KindNVMWrite events fire while a sink subscribes to them.
// These are the highest-rate kinds in the taxonomy, so the default trace
// masks leave them off and the cost stays at one Enabled check per access.
func (d *Device) AttachTelemetry(h *telemetry.Hub) { d.tel = h }

// Params reports the device configuration.
func (d *Device) Params() Params { return d.params }

// Store exposes the functional contents.
func (d *Device) Store() *mem.Store { return d.store }

// SetLatencies changes the read/write latencies (Figure 12 sensitivity).
func (d *Device) SetLatencies(read, write sim.Duration) {
	d.params.ReadLatency = read
	d.params.WriteLatency = write
}

// SetBandwidth changes the channel bandwidth (Figure 11 sensitivity).
func (d *Device) SetBandwidth(bytesPerSec int64) {
	d.params.Bandwidth = bytesPerSec
}

func (d *Device) bank(a mem.PAddr) int {
	return int(mem.LineIndex(a)) % d.params.Banks
}

// transferTime is the channel occupancy to move n bytes.
func (d *Device) transferTime(n int) sim.Duration {
	// ps = bytes * 1e12 / bandwidth
	return sim.Duration(int64(n) * int64(sim.Second) / d.params.Bandwidth)
}

// access serializes one line-granule access through bank+channel and
// returns its completion time: queueing delay (the longer of the bank and
// channel backlogs), then the device latency and transfer time.
func (d *Device) access(a mem.PAddr, bytes int, now sim.Time, lat sim.Duration) sim.Time {
	xfer := d.transferTime(bytes)
	chWait := d.channel.acquire(now, xfer)
	bWait := d.banks[d.bank(a)].acquire(now, lat)
	wait := chWait
	if bWait > wait {
		wait = bWait
	}
	return now + wait + lat + xfer
}

// Read performs a read of size bytes at address a starting no earlier than
// now, returning the completion time. Traffic and energy are accounted.
// The read is split into line-granule bank accesses that pipeline across
// banks.
func (d *Device) Read(a mem.PAddr, size int, now sim.Time) sim.Time {
	if size <= 0 {
		return now
	}
	done := now
	for off := 0; off < size; off += mem.LineSize {
		n := size - off
		if n > mem.LineSize {
			n = mem.LineSize
		}
		t := d.access(a+mem.PAddr(off), n, now, d.params.ReadLatency)
		done = sim.MaxTime(done, t)
	}
	d.reads.Inc()
	d.bytesRead.Add(int64(size))
	bits := float64(size) * 8
	d.readEnergyPJ += bits * (d.params.Energy.RowBufferRead + d.params.Energy.ArrayRead)
	if d.tel.Enabled(telemetry.KindNVMRead) {
		d.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindNVMRead,
			Time:  done,
			Core:  -1,
			Addr:  a,
			Bytes: int64(size),
		})
	}
	return done
}

// Write performs a write of size bytes at address a starting no earlier
// than now, returning the completion time. Traffic, energy and wear are
// accounted. Write does not touch the functional store — persistence
// schemes decide what bytes land where via Store().
func (d *Device) Write(a mem.PAddr, size int, now sim.Time) sim.Time {
	if size <= 0 {
		return now
	}
	done := now
	for off := 0; off < size; off += mem.LineSize {
		n := size - off
		if n > mem.LineSize {
			n = mem.LineSize
		}
		t := d.access(a+mem.PAddr(off), n, now, d.params.WriteLatency)
		done = sim.MaxTime(done, t)
	}
	d.writes.Inc()
	d.bytesWritten.Add(int64(size))
	bits := float64(size) * 8
	d.writeEnergyPJ += bits * (d.params.Energy.RowBufferWrite + d.params.Energy.ArrayWrite)
	d.wear[uint64(a)>>wearBucketShift] += int64(size)
	if d.tel.Enabled(telemetry.KindNVMWrite) {
		d.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindNVMWrite,
			Time:  done,
			Core:  -1,
			Addr:  a,
			Bytes: int64(size),
		})
	}
	return done
}

// ResetQueues clears all bank and channel backlog. The harness calls it
// after accounting-only phases (cache drains, forced GC at a measurement
// boundary) whose burst of device work is bookkeeping, not load the next
// window's transactions should queue behind.
func (d *Device) ResetQueues() {
	for i := range d.banks {
		d.banks[i] = queue{}
	}
	d.channel = queue{}
}

// ReadEnergyPJ reports accumulated read energy in picojoules.
func (d *Device) ReadEnergyPJ() float64 { return d.readEnergyPJ }

// WriteEnergyPJ reports accumulated write energy in picojoules.
func (d *Device) WriteEnergyPJ() float64 { return d.writeEnergyPJ }

// TotalEnergyPJ reports total read+write energy in picojoules.
func (d *Device) TotalEnergyPJ() float64 { return d.readEnergyPJ + d.writeEnergyPJ }

// WearBuckets returns a copy of per-1MB-bucket bytes-written counters, used
// to verify the round-robin OOP block allocation achieves uniform aging.
func (d *Device) WearBuckets() map[uint64]int64 {
	out := make(map[uint64]int64, len(d.wear))
	for k, v := range d.wear {
		out[k] = v
	}
	return out
}

// WearInRegion summarizes wear over a region: number of touched 1 MB
// buckets, min, max, and total bytes written.
func (d *Device) WearInRegion(r mem.Region) (buckets int, minW, maxW, total int64) {
	lo := uint64(r.Base) >> wearBucketShift
	hi := uint64(r.End()-1) >> wearBucketShift
	first := true
	for b := lo; b <= hi; b++ {
		w, ok := d.wear[b]
		if !ok {
			continue
		}
		buckets++
		total += w
		if first || w < minW {
			minW = w
		}
		if first || w > maxW {
			maxW = w
		}
		first = false
	}
	return buckets, minW, maxW, total
}

// String describes the device.
func (d *Device) String() string {
	return fmt.Sprintf("nvm(read=%v write=%v bw=%.1fGB/s banks=%d cap=%dGB)",
		d.params.ReadLatency, d.params.WriteLatency,
		float64(d.params.Bandwidth)/float64(1<<30), d.params.Banks,
		d.params.Capacity>>30)
}
