package nvm

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

func journalDevice(t *testing.T) (*Device, *mem.Store) {
	t.Helper()
	store := mem.NewStore()
	return NewDevice(DefaultParams(), store, sim.NewStats()), store
}

func TestJournalRecordsUnitsInOrder(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x100, 0xdead)
	store.WriteWord(0x108, 0xbeef)
	line := [mem.LineSize]byte{1, 2, 3}
	store.WriteLine(0x200, line)

	if got, want := j.Len(), 2+mem.LineSize/mem.WordSize; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	e := j.Entries()
	if e[0].Addr != 0x100 || e[1].Addr != 0x108 || e[2].Addr != 0x200 {
		t.Fatalf("unexpected entry addresses: %#x %#x %#x", e[0].Addr, e[1].Addr, e[2].Addr)
	}
}

func TestJournalSubWordWriteEmitsPostImage(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x40, 0x1122334455667788)
	// A 1-byte read-modify-write (OSP's bitmap flip) must journal the
	// whole containing unit's post-image.
	store.Write(0x42, []byte{0xff})
	e := j.Entries()
	if len(e) != 2 {
		t.Fatalf("want 2 entries, got %d", len(e))
	}
	if e[1].Addr != 0x40 {
		t.Fatalf("sub-word write journaled at %#x, want unit base 0x40", e[1].Addr)
	}
	st := j.ReconstructAt(2)
	if got := st.ReadWord(0x40); got != 0x1122334455ff7788 {
		t.Fatalf("post-image = %#x", got)
	}
}

func TestJournalReconstructPrefix(t *testing.T) {
	dev, store := journalDevice(t)
	store.WriteWord(0x1000, 7) // pre-attach: part of the base snapshot
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x1000, 8)
	store.WriteWord(0x1008, 9)

	if got := j.ReconstructAt(0).ReadWord(0x1000); got != 7 {
		t.Fatalf("at k=0 want base value 7, got %d", got)
	}
	st := j.ReconstructAt(1)
	if st.ReadWord(0x1000) != 8 || st.ReadWord(0x1008) != 0 {
		t.Fatalf("at k=1: %d %d", st.ReadWord(0x1000), st.ReadWord(0x1008))
	}
	st = j.ReconstructAt(2)
	if st.ReadWord(0x1008) != 9 {
		t.Fatalf("at k=2: second write missing")
	}
	// Reconstruction must not disturb the live store.
	if store.ReadWord(0x1000) != 8 {
		t.Fatal("live store mutated by reconstruction")
	}
}

func TestJournalZeroRangeObserved(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x80, 42)
	store.ZeroRange(0x80, 16)
	// Zeroing an unmaterialized page is a functional no-op and not journaled.
	store.ZeroRange(1<<30, 4096)

	st := j.ReconstructAt(j.Len())
	if got := st.ReadWord(0x80); got != 0 {
		t.Fatalf("zeroed word reads %d", got)
	}
	if j.ReconstructAt(1).ReadWord(0x80) != 42 {
		t.Fatal("prefix before zeroing lost the value")
	}
}

func TestJournalAtomicGroups(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x0, 1) // unit 0
	dev.BeginAtomicPersist()
	store.WriteWord(0x8, 2)  // unit 1
	store.WriteWord(0x10, 3) // unit 2
	dev.EndAtomicPersist()
	store.WriteWord(0x18, 4) // unit 3

	pts := j.CrashPoints()
	want := []int{0, 1, 3, 4}
	if len(pts) != len(want) {
		t.Fatalf("crash points %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("crash points %v, want %v", pts, want)
		}
	}
	// A point inside the group rounds down: neither grouped unit visible.
	st := j.ReconstructAt(2)
	if st.ReadWord(0x8) != 0 || st.ReadWord(0x10) != 0 {
		t.Fatal("crash inside an atomic group exposed a partial drain")
	}
	if st.ReadWord(0x0) != 1 {
		t.Fatal("unit before the group should be durable")
	}
	// At the boundary the whole group is visible.
	st = j.ReconstructAt(3)
	if st.ReadWord(0x8) != 2 || st.ReadWord(0x10) != 3 {
		t.Fatal("group not fully applied at its end boundary")
	}
}

func TestJournalCrashInsideOpenGroupRoundsDown(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	defer dev.DetachJournal()

	store.WriteWord(0x0, 1)
	dev.BeginAtomicPersist()
	store.WriteWord(0x8, 2)
	// Crash while the group is still open: the queued unit is not durable.
	st := j.ReconstructAt(j.Len())
	if st.ReadWord(0x8) != 0 {
		t.Fatal("open atomic group leaked a queued unit")
	}
	if st.ReadWord(0x0) != 1 {
		t.Fatal("unit before the open group should be durable")
	}
	dev.EndAtomicPersist()
}

func TestJournalDetachStopsRecording(t *testing.T) {
	dev, store := journalDevice(t)
	j := dev.AttachJournal()
	store.WriteWord(0x0, 1)
	dev.DetachJournal()
	store.WriteWord(0x8, 2)
	if j.Len() != 1 {
		t.Fatalf("detached journal kept recording: %d entries", j.Len())
	}
	if dev.Journal() != nil {
		t.Fatal("Journal() should be nil after detach")
	}
	// Atomic markers are no-ops with no journal attached.
	dev.BeginAtomicPersist()
	dev.EndAtomicPersist()
}
