package skiplist

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	l := New(1)
	if _, ok, _ := l.Get(5); ok {
		t.Fatal("empty list must not contain keys")
	}
	l.Set(5, 50)
	l.Set(3, 30)
	l.Set(7, 70)
	if v, ok, _ := l.Get(5); !ok || v != 50 {
		t.Fatal("Get(5)")
	}
	l.Set(5, 55) // overwrite
	if v, _, _ := l.Get(5); v != 55 {
		t.Fatal("overwrite failed")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	if found, _ := l.Delete(3); !found {
		t.Fatal("Delete(3)")
	}
	if found, _ := l.Delete(3); found {
		t.Fatal("double delete")
	}
	if l.Len() != 2 {
		t.Fatalf("Len after delete = %d", l.Len())
	}
}

func TestRangeOrdered(t *testing.T) {
	l := New(2)
	for _, k := range []uint64{9, 1, 5, 3, 7} {
		l.Set(k, k*10)
	}
	var got []uint64
	l.Range(2, 8, func(k, v uint64) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Range returned %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order %v", got)
		}
	}
	// Early stop.
	n := 0
	l.Range(0, 100, func(k, v uint64) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestHopsGrowLogarithmically(t *testing.T) {
	l := New(3)
	for i := uint64(0); i < 100000; i++ {
		l.Set(i, i)
	}
	_, ok, hops := l.Get(77777)
	if !ok {
		t.Fatal("key missing")
	}
	if hops > 120 {
		t.Fatalf("search took %d hops for 100k keys (not logarithmic)", hops)
	}
	if hops < 5 {
		t.Fatalf("suspiciously few hops: %d", hops)
	}
}

func TestAgainstOracleQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		l := New(7)
		oracle := map[uint64]uint64{}
		for i, op := range ops {
			k := uint64(op % 256)
			switch i % 3 {
			case 0, 1:
				l.Set(k, uint64(i))
				oracle[k] = uint64(i)
			case 2:
				l.Delete(k)
				delete(oracle, k)
			}
		}
		if l.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if got, ok, _ := l.Get(k); !ok || got != v {
				return false
			}
		}
		// Ordered iteration agrees with the sorted oracle keys.
		var keys []uint64
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okOrder := true
		l.Range(0, 1<<62, func(k, v uint64) bool {
			if i >= len(keys) || keys[i] != k {
				okOrder = false
				return false
			}
			i++
			return true
		})
		return okOrder && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClear(t *testing.T) {
	l := New(0)
	for i := uint64(0); i < 10; i++ {
		l.Set(i, i)
	}
	l.Clear()
	if l.Len() != 0 {
		t.Fatal("Clear")
	}
	if _, ok, _ := l.Get(5); ok {
		t.Fatal("key survived Clear")
	}
}
