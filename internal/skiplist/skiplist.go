// Package skiplist implements a deterministic skip list keyed by uint64,
// used as the DRAM-cached address-mapping index of the log-structured NVM
// baseline (LSNVMM caches its mapping tree in DRAM; the HOOP paper's LSM
// comparison point implements that tree with a skip list, §IV-A).
//
// The list exposes the structural cost of each operation (the number of
// node hops performed), which the LSM scheme converts into index-lookup
// latency — the O(log N) read penalty that Table I calls "High" read
// latency.
package skiplist

const maxLevel = 24

// node is one skip-list tower.
type node struct {
	key  uint64
	val  uint64
	next [maxLevel]*node
}

// List is a skip list mapping uint64 keys to uint64 values. Not safe for
// concurrent use.
type List struct {
	head     *node
	level    int
	length   int
	rngState uint64
}

// New returns an empty list. The level generator is seeded deterministically
// so simulation runs are reproducible.
func New(seed uint64) *List {
	if seed == 0 {
		seed = 0x5DEECE66D
	}
	return &List{head: &node{}, level: 1, rngState: seed}
}

func (l *List) randLevel() int {
	x := l.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	l.rngState = x
	bits := x * 0x2545F4914F6CDD1D
	lvl := 1
	for bits&1 == 1 && lvl < maxLevel {
		lvl++
		bits >>= 1
	}
	return lvl
}

// Len reports the number of keys stored.
func (l *List) Len() int { return l.length }

// Get returns the value for key and the number of node hops the search
// performed.
func (l *List) Get(key uint64) (val uint64, ok bool, hops int) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			hops++
		}
		hops++
	}
	x = x.next[0]
	if x != nil && x.key == key {
		return x.val, true, hops
	}
	return 0, false, hops
}

// Set inserts or updates key, returning the hop count.
func (l *List) Set(key, val uint64) (hops int) {
	var update [maxLevel]*node
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			hops++
		}
		hops++
		update[i] = x
	}
	if nx := x.next[0]; nx != nil && nx.key == key {
		nx.val = val
		return hops
	}
	lvl := l.randLevel()
	if lvl > l.level {
		for i := l.level; i < lvl; i++ {
			update[i] = l.head
		}
		l.level = lvl
	}
	n := &node{key: key, val: val}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	l.length++
	return hops
}

// Delete removes key if present, returning whether it was found and the
// hop count.
func (l *List) Delete(key uint64) (found bool, hops int) {
	var update [maxLevel]*node
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			hops++
		}
		hops++
		update[i] = x
	}
	target := x.next[0]
	if target == nil || target.key != key {
		return false, hops
	}
	for i := 0; i < l.level; i++ {
		if update[i].next[i] == target {
			update[i].next[i] = target.next[i]
		}
	}
	for l.level > 1 && l.head.next[l.level-1] == nil {
		l.level--
	}
	l.length--
	return true, hops
}

// Range calls fn for every key in [lo, hi) in ascending order until fn
// returns false.
func (l *List) Range(lo, hi uint64, fn func(key, val uint64) bool) {
	x := l.head
	for i := l.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < lo {
			x = x.next[i]
		}
	}
	for x = x.next[0]; x != nil && x.key < hi; x = x.next[0] {
		if !fn(x.key, x.val) {
			return
		}
	}
}

// Clear drops every entry.
func (l *List) Clear() {
	l.head = &node{}
	l.level = 1
	l.length = 0
}
