// Package memctrl is the memory-controller substrate shared by every
// persistence scheme: it mediates access to the NVM device, adding a fixed
// controller processing overhead, and models posted (asynchronous) writes
// with per-agent drain/fence semantics. HOOP and the hardware-logging
// baselines are all "implemented in the memory controller" in the paper;
// in this reproduction they are built on top of this type.
package memctrl

import (
	"hoop/internal/mem"
	"hoop/internal/nvm"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Config tunes the controller model.
type Config struct {
	// Overhead is the fixed controller processing time added to every
	// request (queue slot, scheduling decision).
	Overhead sim.Duration
	// DRAMLatency is the cost of one access to the DRAM side of the
	// system (used by software schemes such as LSNVMM whose index lives
	// in DRAM).
	DRAMLatency sim.Duration
	// Agents is the number of independent request sources tracked for
	// posted-write draining (one per core plus background agents).
	Agents int
}

// DefaultConfig returns sensible defaults: 4 ns controller overhead and
// 60 ns DRAM access.
func DefaultConfig(agents int) Config {
	return Config{
		Overhead:    4 * sim.Nanosecond,
		DRAMLatency: 60 * sim.Nanosecond,
		Agents:      agents,
	}
}

// Controller fronts the NVM device.
type Controller struct {
	cfg     Config
	dev     *nvm.Device
	pending []sim.Time // per-agent completion time of the latest posted write
	tel     *telemetry.Hub
}

// New builds a controller over dev.
func New(cfg Config, dev *nvm.Device) *Controller {
	if cfg.Agents <= 0 {
		panic("memctrl: need at least one agent")
	}
	return &Controller{cfg: cfg, dev: dev, pending: make([]sim.Time, cfg.Agents)}
}

// AttachTelemetry connects the controller to a telemetry hub. Drain emits
// a KindPersistDrain event whenever an agent actually stalls on posted
// writes — the persist-ordering stalls the paper's critical-path analysis
// is about. Zero-wait drains stay silent.
func (c *Controller) AttachTelemetry(h *telemetry.Hub) { c.tel = h }

// Device exposes the underlying NVM device.
func (c *Controller) Device() *nvm.Device { return c.dev }

// Config reports the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Read performs a synchronous NVM read and returns its completion time.
func (c *Controller) Read(a mem.PAddr, size int, now sim.Time) sim.Time {
	return c.dev.Read(a, size, now+c.cfg.Overhead)
}

// Write performs a synchronous NVM write and returns its completion time.
func (c *Controller) Write(a mem.PAddr, size int, now sim.Time) sim.Time {
	return c.dev.Write(a, size, now+c.cfg.Overhead)
}

// PostWrite issues an asynchronous (posted) NVM write on behalf of agent.
// The caller's clock is not expected to advance; the write's completion is
// remembered so a later Drain (memory fence / Tx_end) can wait for it.
// The completion time is returned for callers that want it.
func (c *Controller) PostWrite(agent int, a mem.PAddr, size int, now sim.Time) sim.Time {
	done := c.dev.Write(a, size, now+c.cfg.Overhead)
	if done > c.pending[agent] {
		c.pending[agent] = done
	}
	return done
}

// Drain blocks agent until all of its posted writes have completed,
// returning the time at which the drain finishes.
func (c *Controller) Drain(agent int, now sim.Time) sim.Time {
	done := sim.MaxTime(now, c.pending[agent])
	if done > now && c.tel.Enabled(telemetry.KindPersistDrain) {
		c.tel.Emit(telemetry.Event{
			Kind: telemetry.KindPersistDrain,
			Time: done,
			Core: int16(agent),
			Aux:  int64(done - now),
		})
	}
	return done
}

// Pending reports the completion time of agent's latest posted write.
func (c *Controller) Pending(agent int) sim.Time { return c.pending[agent] }

// DRAMAccess models one access to DRAM-side metadata (index structures,
// shadow tables) and returns its completion time. DRAM is modeled as a
// fixed latency with effectively unlimited bandwidth relative to NVM.
func (c *Controller) DRAMAccess(now sim.Time) sim.Time {
	return now + c.cfg.DRAMLatency
}

// ResetPending clears posted-write tracking (crash: in-flight posted writes
// that did not complete are simply gone — callers must have ordered their
// durability-critical writes with Drain).
func (c *Controller) ResetPending() {
	for i := range c.pending {
		c.pending[i] = 0
	}
}
