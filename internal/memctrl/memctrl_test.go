package memctrl

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/nvm"
	"hoop/internal/sim"
)

func newCtrl(t *testing.T) *Controller {
	t.Helper()
	dev := nvm.NewDevice(nvm.DefaultParams(), mem.NewStore(), sim.NewStats())
	return New(DefaultConfig(4), dev)
}

func TestSyncAccessesAddOverhead(t *testing.T) {
	c := newCtrl(t)
	done := c.Read(0, mem.LineSize, 0)
	if done < c.Config().Overhead+50*sim.Nanosecond {
		t.Fatalf("read %v below overhead+latency", done)
	}
	done = c.Write(mem.LineSize, mem.LineSize, 0)
	if done < c.Config().Overhead+150*sim.Nanosecond {
		t.Fatalf("write %v below overhead+latency", done)
	}
}

func TestPostedWritesAndDrain(t *testing.T) {
	c := newCtrl(t)
	if got := c.Drain(0, 100); got != 100 {
		t.Fatalf("drain with nothing pending must return now, got %v", got)
	}
	d1 := c.PostWrite(0, 0, mem.LineSize, 0)
	d2 := c.PostWrite(0, 0, mem.LineSize, 0) // same bank: later completion
	if d2 <= d1 {
		t.Fatal("second same-bank posted write must finish later")
	}
	if c.Pending(0) != d2 {
		t.Fatalf("pending = %v, want %v", c.Pending(0), d2)
	}
	if got := c.Drain(0, 0); got != d2 {
		t.Fatalf("drain = %v, want %v", got, d2)
	}
	// Other agents are unaffected.
	if got := c.Drain(1, 5); got != 5 {
		t.Fatalf("agent isolation broken: %v", got)
	}
	c.ResetPending()
	if c.Pending(0) != 0 {
		t.Fatal("ResetPending")
	}
}

func TestDRAMAccess(t *testing.T) {
	c := newCtrl(t)
	if got := c.DRAMAccess(100); got != 100+c.Config().DRAMLatency {
		t.Fatalf("DRAM access = %v", got)
	}
}

func TestDevice(t *testing.T) {
	c := newCtrl(t)
	if c.Device() == nil {
		t.Fatal("device accessor")
	}
}
