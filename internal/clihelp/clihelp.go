// Package clihelp is the flag scaffolding shared by the cmd/* mains: the
// -scheme/-seed/-workers selection flags, the -trace JSONL telemetry sink,
// the -cpuprofile/-memprofile pair, and workload lookup. Keeping the
// spellings and help text here means every command exposes the same
// vocabulary for the same concept.
package clihelp

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
	"hoop/internal/workload"
)

// Flag-block names accepted by Register.
const (
	FlagScheme  = "scheme"
	FlagSeed    = "seed"
	FlagWorkers = "workers"
	FlagTrace   = "trace"
	FlagProfile = "profile" // registers -cpuprofile and -memprofile
)

// Common holds the shared flag values. Set a field before Register to
// change that flag's default.
type Common struct {
	Scheme     string
	Seed       uint64
	Workers    int
	Trace      string
	CPUProfile string
	MemProfile string
}

// Register adds the requested flag blocks to fs.
func (c *Common) Register(fs *flag.FlagSet, blocks ...string) {
	for _, b := range blocks {
		switch b {
		case FlagScheme:
			fs.StringVar(&c.Scheme, FlagScheme, c.Scheme,
				"persistence scheme ("+strings.Join(engine.AllSchemes, ", ")+")")
		case FlagSeed:
			fs.Uint64Var(&c.Seed, FlagSeed, c.Seed, "PRNG seed (same seed, same simulated run)")
		case FlagWorkers:
			fs.IntVar(&c.Workers, FlagWorkers, c.Workers,
				"simulation cells run concurrently (0 = GOMAXPROCS); results are identical for every value")
		case FlagTrace:
			fs.StringVar(&c.Trace, FlagTrace, c.Trace,
				"write a JSONL telemetry trace to this file (summarize with hooptop)")
		case FlagProfile:
			fs.StringVar(&c.CPUProfile, "cpuprofile", c.CPUProfile, "write a CPU profile of the run to this file")
			fs.StringVar(&c.MemProfile, "memprofile", c.MemProfile, "write a heap profile taken at exit to this file")
		default:
			panic("clihelp: unknown flag block " + b)
		}
	}
}

// EffectiveWorkers resolves the worker count (<= 0 means GOMAXPROCS).
func (c *Common) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// StartProfiles begins CPU profiling if -cpuprofile was given. The
// returned stop function must run at process exit (defer it); it finishes
// the CPU profile and writes the -memprofile heap snapshot.
func (c *Common) StartProfiles() (stop func(), err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}

// TraceFile is an opened -trace destination: a JSONL sink over a file.
type TraceFile struct {
	Sink *telemetry.JSONLSink
	f    *os.File
}

// OpenTrace opens the -trace path; (nil, nil) when the flag is unset. A
// nil *TraceFile is valid for Attach and Close, so callers need no guard.
func (c *Common) OpenTrace() (*TraceFile, error) {
	if c.Trace == "" {
		return nil, nil
	}
	f, err := os.Create(c.Trace)
	if err != nil {
		return nil, fmt.Errorf("-trace: %w", err)
	}
	return &TraceFile{Sink: telemetry.NewJSONLSink(f), f: f}, nil
}

// Attach subscribes the trace sink to sys with the default trace mask
// (mechanism phases plus commits).
func (t *TraceFile) Attach(sys *engine.System) {
	if t == nil {
		return
	}
	sys.Subscribe(t.Sink, telemetry.MaskTrace)
}

// Close flushes the sink and closes the file.
func (t *TraceFile) Close() error {
	if t == nil {
		return nil
	}
	if err := t.Sink.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// FindWorkload resolves a workload name across the paper and large-item
// suites.
func FindWorkload(name string) (workload.Workload, bool) {
	for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
		if w.Name == name {
			return w, true
		}
	}
	return workload.Workload{}, false
}

// WorkloadNames lists every available workload name, for error messages.
func WorkloadNames() []string {
	var names []string
	for _, w := range append(workload.PaperSuite(), workload.LargeItemSuite()...) {
		names = append(names, w.Name)
	}
	return names
}
