// Package clihelp is the flag scaffolding shared by the cmd/* mains: the
// -scheme/-seed/-workers selection flags, the -trace JSONL telemetry sink,
// the -cpuprofile/-memprofile pair, and workload lookup. Keeping the
// spellings and help text here means every command exposes the same
// vocabulary for the same concept.
package clihelp

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
	"hoop/internal/workload"
)

// Flag-block names accepted by Register.
const (
	FlagScheme    = "scheme"
	FlagSeed      = "seed"
	FlagWorkers   = "workers"
	FlagTrace     = "trace"
	FlagProfile   = "profile"   // registers -cpuprofile and -memprofile
	FlagWorkloads = "workloads" // registers -workloads and -suite
)

// Common holds the shared flag values. Set a field before Register to
// change that flag's default.
type Common struct {
	Scheme     string
	Seed       uint64
	Workers    int
	Trace      string
	CPUProfile string
	MemProfile string
	// Workloads is a comma-separated list of registry workload names;
	// Suite names a predefined suite. ResolveSuite builds either into
	// workloads.
	Workloads string
	Suite     string
}

// Register adds the requested flag blocks to fs.
func (c *Common) Register(fs *flag.FlagSet, blocks ...string) {
	for _, b := range blocks {
		switch b {
		case FlagScheme:
			fs.StringVar(&c.Scheme, FlagScheme, c.Scheme,
				"persistence scheme ("+strings.Join(engine.AllSchemes, ", ")+")")
		case FlagSeed:
			fs.Uint64Var(&c.Seed, FlagSeed, c.Seed, "PRNG seed (same seed, same simulated run)")
		case FlagWorkers:
			fs.IntVar(&c.Workers, FlagWorkers, c.Workers,
				"simulation cells run concurrently (0 = GOMAXPROCS); results are identical for every value")
		case FlagTrace:
			fs.StringVar(&c.Trace, FlagTrace, c.Trace,
				"write a JSONL telemetry trace to this file (summarize with hooptop)")
		case FlagProfile:
			fs.StringVar(&c.CPUProfile, "cpuprofile", c.CPUProfile, "write a CPU profile of the run to this file")
			fs.StringVar(&c.MemProfile, "memprofile", c.MemProfile, "write a heap profile taken at exit to this file")
		case FlagWorkloads:
			fs.StringVar(&c.Workloads, FlagWorkloads, c.Workloads,
				"comma-separated workload names ("+strings.Join(workload.Registered(), ", ")+")")
			fs.StringVar(&c.Suite, "suite", c.Suite,
				"workload suite ("+strings.Join(workload.SuiteNames(), ", ")+")")
		default:
			panic("clihelp: unknown flag block " + b)
		}
	}
}

// EffectiveWorkers resolves the worker count (<= 0 means GOMAXPROCS).
func (c *Common) EffectiveWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// StartProfiles begins CPU profiling if -cpuprofile was given. The
// returned stop function must run at process exit (defer it); it finishes
// the CPU profile and writes the -memprofile heap snapshot.
func (c *Common) StartProfiles() (stop func(), err error) {
	var cpuFile *os.File
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}
	}, nil
}

// TraceFile is an opened -trace destination: a JSONL sink over a file.
type TraceFile struct {
	Sink *telemetry.JSONLSink
	f    *os.File
}

// OpenTrace opens the -trace path; (nil, nil) when the flag is unset. A
// nil *TraceFile is valid for Attach and Close, so callers need no guard.
func (c *Common) OpenTrace() (*TraceFile, error) {
	if c.Trace == "" {
		return nil, nil
	}
	f, err := os.Create(c.Trace)
	if err != nil {
		return nil, fmt.Errorf("-trace: %w", err)
	}
	return &TraceFile{Sink: telemetry.NewJSONLSink(f), f: f}, nil
}

// Attach subscribes the trace sink to sys with the default trace mask
// (mechanism phases plus commits).
func (t *TraceFile) Attach(sys *engine.System) {
	if t == nil {
		return
	}
	sys.Subscribe(t.Sink, telemetry.MaskTrace)
}

// Close flushes the sink and closes the file.
func (t *TraceFile) Close() error {
	if t == nil {
		return nil
	}
	if err := t.Sink.Flush(); err != nil {
		t.f.Close()
		return err
	}
	return t.f.Close()
}

// ResolveSuite builds the workloads selected by -workloads/-suite, each
// with base overlaid on its defaults. (nil, nil) when neither flag was
// given, so the caller keeps its default suite; an explicit -workloads
// list wins over -suite.
func (c *Common) ResolveSuite(base workload.Options) ([]workload.Workload, error) {
	if c.Workloads != "" {
		var wls []workload.Workload
		for _, name := range strings.Split(c.Workloads, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			w, err := workload.Build(name, base)
			if err != nil {
				return nil, fmt.Errorf("-workloads: %w", err)
			}
			wls = append(wls, w)
		}
		if len(wls) == 0 {
			return nil, fmt.Errorf("-workloads: no workload names given")
		}
		return wls, nil
	}
	if c.Suite != "" {
		wls, err := workload.Suite(c.Suite, base)
		if err != nil {
			return nil, fmt.Errorf("-suite: %w", err)
		}
		return wls, nil
	}
	return nil, nil
}

// suiteWorkloads is the display set FindWorkload searches first: the
// paper matrix plus the 1 KB-item variants, under default options.
func suiteWorkloads() []workload.Workload {
	return append(workload.PaperSuite(workload.Options{}), workload.LargeItemSuite(workload.Options{})...)
}

// FindWorkload resolves a workload name: first the size-tagged display
// names of the paper and 1 KB suites ("hashmap-1k"), then any registered
// factory name ("ycsb-e"), built with its default options.
func FindWorkload(name string) (workload.Workload, bool) {
	for _, w := range suiteWorkloads() {
		if w.Name == name {
			return w, true
		}
	}
	for _, reg := range workload.Registered() {
		if reg == name {
			return workload.MustBuild(reg, workload.Options{}), true
		}
	}
	return workload.Workload{}, false
}

// WorkloadNames lists every resolvable workload name, for error messages:
// suite display names first, then the registered factory names.
func WorkloadNames() []string {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, w := range suiteWorkloads() {
		add(w.Name)
	}
	for _, n := range workload.Registered() {
		add(n)
	}
	return names
}
