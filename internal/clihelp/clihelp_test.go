package clihelp

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
)

func TestRegisterBlocks(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := Common{Scheme: engine.SchemeHOOP, Seed: 1}
	c.Register(fs, FlagScheme, FlagSeed, FlagWorkers, FlagTrace, FlagProfile)
	err := fs.Parse([]string{
		"-scheme", engine.SchemeRedo, "-seed", "7", "-workers", "3", "-trace", "x.jsonl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Scheme != engine.SchemeRedo || c.Seed != 7 || c.Workers != 3 || c.Trace != "x.jsonl" {
		t.Fatalf("parsed values wrong: %+v", c)
	}
	if fs.Lookup("cpuprofile") == nil || fs.Lookup("memprofile") == nil {
		t.Fatal("profile block did not register both flags")
	}
}

func TestRegisterUnknownBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown block")
		}
	}()
	c := Common{}
	c.Register(flag.NewFlagSet("t", flag.ContinueOnError), "no-such-block")
}

func TestEffectiveWorkers(t *testing.T) {
	c := Common{Workers: 5}
	if c.EffectiveWorkers() != 5 {
		t.Fatal("explicit workers ignored")
	}
	c.Workers = 0
	if c.EffectiveWorkers() < 1 {
		t.Fatal("default workers must be positive")
	}
}

func TestOpenTraceUnsetIsNil(t *testing.T) {
	c := Common{}
	tf, err := c.OpenTrace()
	if err != nil || tf != nil {
		t.Fatalf("unset -trace: got (%v, %v), want (nil, nil)", tf, err)
	}
	// The nil TraceFile must be safe to use.
	tf.Attach(nil)
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenTraceWritesEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	c := Common{Trace: path}
	tf, err := c.OpenTrace()
	if err != nil {
		t.Fatal(err)
	}
	tf.Sink.Emit(telemetry.Event{Kind: telemetry.KindGCStart, Core: -1, Aux: 3})
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"k":"gc_start"`) {
		t.Fatalf("trace file missing event: %q", data)
	}
}

func TestFindWorkload(t *testing.T) {
	names := WorkloadNames()
	if len(names) == 0 {
		t.Fatal("no workloads")
	}
	w, ok := FindWorkload(names[0])
	if !ok || w.Name != names[0] {
		t.Fatalf("FindWorkload(%q) = %v, %v", names[0], w.Name, ok)
	}
	if _, ok := FindWorkload("no-such-workload"); ok {
		t.Fatal("found a workload that does not exist")
	}
}
