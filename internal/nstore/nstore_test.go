package nstore

import (
	"bytes"
	"testing"

	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/sim"
)

func TestTableCRUD(t *testing.T) {
	d := pmem.NewDirect()
	db := Open(d, mem.Region{Base: 0, Size: 16 << 20})
	tbl := db.CreateTable(256, 128)
	if tbl.RecSize() != 128 {
		t.Fatal("RecSize")
	}
	rec := bytes.Repeat([]byte{7}, 128)
	tbl.Insert(42, rec)
	got := make([]byte, 128)
	if !tbl.Read(42, got) || !bytes.Equal(got, rec) {
		t.Fatal("Read after Insert")
	}
	rec2 := bytes.Repeat([]byte{9}, 128)
	tbl.Update(42, rec2)
	tbl.Read(42, got)
	if !bytes.Equal(got, rec2) {
		t.Fatal("Update")
	}
	if !tbl.Delete(42) || tbl.Read(42, got) {
		t.Fatal("Delete")
	}
	if tbl.Len() != 0 {
		t.Fatal("Len")
	}
}

func TestTableAgainstOracle(t *testing.T) {
	d := pmem.NewDirect()
	db := Open(d, mem.Region{Base: 0, Size: 64 << 20})
	tbl := db.CreateTable(1024, 64)
	r := sim.NewRand(3)
	oracle := map[uint64][]byte{}
	for i := 0; i < 3000; i++ {
		k := uint64(r.Intn(500))
		rec := make([]byte, 64)
		for j := range rec {
			rec[j] = byte(r.Uint64())
		}
		tbl.Insert(k, rec)
		oracle[k] = rec
	}
	buf := make([]byte, 64)
	for k, v := range oracle {
		if !tbl.Read(k, buf) || !bytes.Equal(buf, v) {
			t.Fatalf("key %d", k)
		}
	}
	if tbl.Len() != len(oracle) {
		t.Fatalf("Len=%d oracle=%d", tbl.Len(), len(oracle))
	}
}

func TestWrongRecordSizePanics(t *testing.T) {
	d := pmem.NewDirect()
	db := Open(d, mem.Region{Base: 0, Size: 1 << 20})
	tbl := db.CreateTable(16, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tbl.Insert(1, make([]byte, 32))
}
