// Package nstore is a minimal persistent key-value storage engine in the
// spirit of N-store (Arulraj et al., SIGMOD'15), which the paper uses as
// the database back-end for its YCSB and TPC-C experiments (§IV-A). Each
// database owns an arena; tables are persistent hash maps of fixed-size
// records, and every record access flows through the simulated memory
// hierarchy.
package nstore

import (
	"fmt"

	"hoop/internal/mem"
	"hoop/internal/pmem"
	"hoop/internal/structures"
)

// DB is one thread-private database instance (the paper runs one set of
// tables per worker thread).
type DB struct {
	m     pmem.Memory
	arena *pmem.Arena
}

// Open formats a database over region. Must run inside a transaction.
func Open(m pmem.Memory, region mem.Region) *DB {
	a := pmem.NewArena(m, region)
	a.Init()
	return &DB{m: m, arena: a}
}

// Arena exposes the database's allocator (for ancillary structures).
func (db *DB) Arena() *pmem.Arena { return db.arena }

// Table is a keyed table of fixed-size records.
type Table struct {
	h       *structures.HashMap
	recSize int
}

// CreateTable allocates a table expecting roughly expectKeys records of
// recSize bytes. Must run inside a transaction.
func (db *DB) CreateTable(expectKeys, recSize int) *Table {
	buckets := expectKeys / 4
	if buckets < 16 {
		buckets = 16
	}
	return &Table{
		h:       structures.NewHashMap(db.m, db.arena, buckets, recSize),
		recSize: recSize,
	}
}

// RecSize reports the table's record size.
func (t *Table) RecSize() int { return t.recSize }

// Len reports the number of records.
func (t *Table) Len() int { return t.h.Len() }

// Insert adds or overwrites the record for key. Must run inside a
// transaction.
func (t *Table) Insert(key uint64, rec []byte) {
	if len(rec) != t.recSize {
		panic(fmt.Sprintf("nstore: record is %d bytes, table holds %d", len(rec), t.recSize))
	}
	t.h.Put(key, rec)
}

// Update is Insert for existing keys (N-store updates are full-record
// writes).
func (t *Table) Update(key uint64, rec []byte) { t.Insert(key, rec) }

// Read fetches the record for key into buf.
func (t *Table) Read(key uint64, buf []byte) bool {
	return t.h.Get(key, buf)
}

// Delete removes key. Must run inside a transaction.
func (t *Table) Delete(key uint64) bool { return t.h.Delete(key) }

// OrderedTable is a keyed table of fixed-size records with ascending-key
// range scans, backed by the persistent B-tree. The YCSB A–F suite runs
// over it (workload E needs scans, which the hash-backed Table cannot
// serve).
type OrderedTable struct {
	bt      *structures.BTree
	recSize int
}

// CreateOrderedTable allocates an ordered table of recSize-byte records.
// Must run inside a transaction.
func (db *DB) CreateOrderedTable(recSize int) *OrderedTable {
	return &OrderedTable{
		bt:      structures.NewBTree(db.m, db.arena, recSize),
		recSize: recSize,
	}
}

// RecSize reports the table's record size.
func (t *OrderedTable) RecSize() int { return t.recSize }

// Len reports the number of records.
func (t *OrderedTable) Len() int { return t.bt.Len() }

// Insert adds or overwrites the record for key. Must run inside a
// transaction.
func (t *OrderedTable) Insert(key uint64, rec []byte) {
	if len(rec) != t.recSize {
		panic(fmt.Sprintf("nstore: record is %d bytes, table holds %d", len(rec), t.recSize))
	}
	t.bt.Put(key, rec)
}

// Update is Insert for existing keys (full-record writes).
func (t *OrderedTable) Update(key uint64, rec []byte) { t.Insert(key, rec) }

// Read fetches the record for key into buf.
func (t *OrderedTable) Read(key uint64, buf []byte) bool {
	return t.bt.Get(key, buf)
}

// Scan reads up to max records with key >= start in ascending key order,
// reusing buf per record, and returns the number read.
func (t *OrderedTable) Scan(start uint64, max int, buf []byte) int {
	return t.bt.Scan(start, max, buf, nil)
}
