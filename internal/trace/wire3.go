// Wire format v3: the compact chunked encoding.
//
// After the 8-byte file header the stream is a sequence of chunks:
//
//	u32le opLen    — byte length of the op-stream section as stored
//	u32le dataLen  — byte length of the data arena
//	u32le opCount  — ops in this chunk
//	u8    flags    — bit0: op stream is DEFLATE-compressed
//	[opLen bytes]  — op stream (varint/delta encoded, maybe deflated)
//	[dataLen bytes] — data arena, never compressed (bulk store payloads
//	                  are workload-generated and typically incompressible)
//
// EOF at a chunk boundary ends the trace. Encoder and decoder carry
// identical model state *across* chunks (chunks are pure framing, so a
// Writer can flush mid-stream without hurting the ratio much):
//
//   - curThread: ops apply to the current thread; a 0x0E escape followed
//     by a uvarint switches it. Workload schedulers emit long per-thread
//     runs, so this amortizes the thread field to ~0 bits.
//   - lastAddr[thread]: load/store addresses are zigzag-varint deltas
//     against the thread's previous address.
//   - lastVal[wordAddr]: stores may encode per-word zigzag-varint deltas
//     against the last value traced at each 8-byte word. Data-structure
//     words (pointers, lengths, sequence counters) change by small
//     amounts; random payloads don't, and fall through to the raw arena.
//   - dict: 256 most-recently-first-seen payloads ≤64 B, replaced
//     round-robin; a store whose payload is resident encodes as a 1-byte
//     slot reference.
//
// Op lead bytes (low bits carry size/mode codes):
//
//	0x01/0x02/0x05  TxBegin / TxEnd / TxAbort (same values as the Op kinds)
//	0x0E            thread switch: uvarint thread
//	0x10|sz         Load:  svarint addrDelta [uvarint size if sz==2]
//	0x18            Scan:  uvarint items, uvarint bytes (no addr-delta state)
//	0x20|mode<<2|sz Store: svarint addrDelta [uvarint size if sz==2] then
//	                 mode 0: payload in data arena
//	                 mode 1: per-word svarint value deltas; non-word tail
//	                         bytes in the arena
//	                 mode 2: uvarint dictionary slot
//
// with sz: 0 → 8 B, 1 → 64 B, 2 → explicit uvarint. The encoder picks the
// cheaper of raw/delta by exact byte count and prefers a dictionary hit
// outright; every choice is deterministic, so identical op streams encode
// to identical bytes (the cache layer hashes these).
package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"hoop/internal/mem"
)

const (
	leadTxBegin = 0x01
	leadTxEnd   = 0x02
	leadTxAbort = 0x05
	leadThread  = 0x0E
	leadLoad    = 0x10
	leadScan    = 0x18
	leadStore   = 0x20

	szWord = 0 // 8 bytes
	szLine = 1 // 64 bytes
	szVar  = 2 // explicit uvarint

	dmRaw   = 0
	dmDelta = 1
	dmDict  = 2

	dictSlots   = 256
	dictMaxSize = 64

	// chunkTarget bounds Writer memory; flateMin keeps tiny chunks (and
	// golden fixtures) byte-stable across compressor revisions.
	chunkTarget = 256 << 10
	flateMin    = 1 << 10

	chunkHeaderLen = 13
	flagDeflate    = 1
)

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func uvarintLen(u uint64) int {
	n := 1
	for u >= 0x80 {
		u >>= 7
		n++
	}
	return n
}

// wire3Model is the shared encoder/decoder prediction state.
type wire3Model struct {
	curThread uint16
	lastAddr  map[uint16]uint64
	lastVal   map[uint64]uint64
	dict      [dictSlots][]byte
	dictNext  int
}

func (m *wire3Model) init() {
	if m.lastAddr == nil {
		m.lastAddr = make(map[uint16]uint64)
		m.lastVal = make(map[uint64]uint64)
	}
}

// noteStore updates per-word value predictions and (for small payloads not
// already resident) the dictionary. Both sides call it with identical
// arguments in identical order. data must be an owned copy when inserted.
func (m *wire3Model) noteWords(addr uint64, data []byte) {
	for off := 0; off+8 <= len(data); off += 8 {
		m.lastVal[addr+uint64(off)] = binary.LittleEndian.Uint64(data[off:])
	}
}

type wire3Enc struct {
	wire3Model
	dictIdx map[string]int // payload -> resident slot
	ops     bytes.Buffer
	arena   bytes.Buffer
	pending uint32
	varbuf  [binary.MaxVarintLen64]byte
	flate   *flate.Writer
}

func (e *wire3Enc) putUvarint(u uint64) {
	n := binary.PutUvarint(e.varbuf[:], u)
	e.ops.Write(e.varbuf[:n])
}

func (e *wire3Enc) putSvarint(d int64) { e.putUvarint(zigzag(d)) }

func (e *wire3Enc) putSize(lead byte, size uint32) byte {
	switch size {
	case 8:
		return lead | szWord
	case 64:
		return lead | szLine
	default:
		return lead | szVar
	}
}

func (e *wire3Enc) pendingBytes() int { return e.ops.Len() + e.arena.Len() }

// encode appends one (already validated) op to the pending chunk.
func (e *wire3Enc) encode(op Op) {
	e.init()
	if e.dictIdx == nil {
		e.dictIdx = make(map[string]int)
	}
	if op.Thread != e.curThread {
		e.ops.WriteByte(leadThread)
		e.putUvarint(uint64(op.Thread))
		e.curThread = op.Thread
	}
	e.pending++
	switch op.Kind {
	case OpTxBegin, OpTxEnd, OpTxAbort:
		e.ops.WriteByte(op.Kind)
	case OpScan:
		e.ops.WriteByte(leadScan)
		e.putUvarint(uint64(op.Size))
		e.putUvarint(uint64(op.Addr))
	case OpLoad:
		e.ops.WriteByte(e.putSize(leadLoad, op.Size))
		e.putSvarint(int64(op.Addr) - int64(e.lastAddr[op.Thread]))
		if op.Size != 8 && op.Size != 64 {
			e.putUvarint(uint64(op.Size))
		}
		e.lastAddr[op.Thread] = uint64(op.Addr)
	case OpStore:
		e.encodeStore(op)
	}
}

func (e *wire3Enc) encodeStore(op Op) {
	addr := uint64(op.Addr)
	mode := byte(dmRaw)
	slot := 0
	if len(op.Data) > 0 && len(op.Data) <= dictMaxSize {
		if s, ok := e.dictIdx[string(op.Data)]; ok {
			mode, slot = dmDict, s
		}
	}
	if mode == dmRaw {
		// Choose raw vs per-word delta by exact encoded size. Tail bytes
		// (size % 8) cost the same either way, so compare full words only.
		words := len(op.Data) / 8
		deltaCost, rawCost := 0, 8*words
		for off := 0; off < words*8; off += 8 {
			w := binary.LittleEndian.Uint64(op.Data[off:])
			deltaCost += uvarintLen(zigzag(int64(w) - int64(e.lastVal[addr+uint64(off)])))
			if deltaCost >= rawCost {
				break
			}
		}
		if deltaCost < rawCost {
			mode = dmDelta
		}
	}
	e.ops.WriteByte(e.putSize(leadStore|mode<<2, op.Size))
	e.putSvarint(int64(addr) - int64(e.lastAddr[op.Thread]))
	if op.Size != 8 && op.Size != 64 {
		e.putUvarint(uint64(op.Size))
	}
	switch mode {
	case dmRaw:
		e.arena.Write(op.Data)
	case dmDelta:
		words := len(op.Data) / 8
		for off := 0; off < words*8; off += 8 {
			w := binary.LittleEndian.Uint64(op.Data[off:])
			e.putSvarint(int64(w) - int64(e.lastVal[addr+uint64(off)]))
		}
		e.arena.Write(op.Data[words*8:])
	case dmDict:
		e.putUvarint(uint64(slot))
	}
	e.lastAddr[op.Thread] = addr
	e.noteWords(addr, op.Data)
	if mode != dmDict && len(op.Data) > 0 && len(op.Data) <= dictMaxSize {
		e.dictInsert(op.Data)
	}
}

// dictInsert copies data into the next round-robin slot. The caller has
// already established the payload is not resident.
func (e *wire3Enc) dictInsert(data []byte) {
	s := e.dictNext % dictSlots
	e.dictNext++
	if old := e.dict[s]; old != nil {
		delete(e.dictIdx, string(old))
	}
	cp := append([]byte(nil), data...)
	e.dict[s] = cp
	e.dictIdx[string(cp)] = s
}

// emitChunk writes the pending chunk to w (no-op when empty).
func (e *wire3Enc) emitChunk(w io.Writer) error {
	if e.pending == 0 {
		return nil
	}
	opBytes := e.ops.Bytes()
	var flags byte
	if len(opBytes) >= flateMin {
		var cb bytes.Buffer
		if e.flate == nil {
			fw, err := flate.NewWriter(&cb, flate.DefaultCompression)
			if err != nil {
				return fmt.Errorf("trace: flate init: %w", err)
			}
			e.flate = fw
		} else {
			e.flate.Reset(&cb)
		}
		if _, err := e.flate.Write(opBytes); err != nil {
			return fmt.Errorf("trace: compressing op stream: %w", err)
		}
		if err := e.flate.Close(); err != nil {
			return fmt.Errorf("trace: compressing op stream: %w", err)
		}
		opBytes = cb.Bytes()
		flags = flagDeflate
	}
	var h [chunkHeaderLen]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(len(opBytes)))
	binary.LittleEndian.PutUint32(h[4:], uint32(e.arena.Len()))
	binary.LittleEndian.PutUint32(h[8:], e.pending)
	h[12] = flags
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if _, err := w.Write(opBytes); err != nil {
		return err
	}
	if _, err := w.Write(e.arena.Bytes()); err != nil {
		return err
	}
	e.ops.Reset()
	e.arena.Reset()
	e.pending = 0
	return nil
}

type wire3Dec struct {
	wire3Model
	queue []Op
	qpos  int
	out   byteArena // materialized delta/tail payloads
}

// read returns the next op, decoding the next chunk when the current one
// is drained.
func (d *wire3Dec) read(r *bufio.Reader) (Op, error) {
	for d.qpos >= len(d.queue) {
		if err := d.readChunk(r); err != nil {
			return Op{}, err
		}
	}
	op := d.queue[d.qpos]
	d.qpos++
	return op, nil
}

func (d *wire3Dec) readChunk(r *bufio.Reader) error {
	var h [chunkHeaderLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: reading chunk header: %w", err)
	}
	opLen := binary.LittleEndian.Uint32(h[0:])
	dataLen := binary.LittleEndian.Uint32(h[4:])
	opCount := binary.LittleEndian.Uint32(h[8:])
	flags := h[12]
	if opLen > 1<<30 || dataLen > 1<<30 || opCount > 1<<28 {
		return fmt.Errorf("trace: unreasonable chunk header (%d op bytes, %d data bytes, %d ops)", opLen, dataLen, opCount)
	}
	opBytes := make([]byte, opLen)
	if _, err := io.ReadFull(r, opBytes); err != nil {
		return fmt.Errorf("trace: reading op stream: %w", err)
	}
	arena := make([]byte, dataLen)
	if _, err := io.ReadFull(r, arena); err != nil {
		return fmt.Errorf("trace: reading data arena: %w", err)
	}
	if flags&flagDeflate != 0 {
		raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(opBytes)))
		if err != nil {
			return fmt.Errorf("trace: inflating op stream: %w", err)
		}
		opBytes = raw
	}
	return d.decodeChunk(opBytes, arena, int(opCount))
}

// decodeChunk rebuilds opCount ops. Raw store payloads alias the arena;
// delta and tail payloads are materialized into the decoder's own arena.
func (d *wire3Dec) decodeChunk(ops, arena []byte, opCount int) error {
	d.init()
	if cap(d.queue) < opCount {
		d.queue = make([]Op, 0, opCount)
	}
	d.queue = d.queue[:0]
	d.qpos = 0
	p, ap := 0, 0
	uvarint := func() (uint64, error) {
		u, n := binary.Uvarint(ops[p:])
		if n <= 0 {
			return 0, fmt.Errorf("trace: truncated varint in op stream")
		}
		p += n
		return u, nil
	}
	takeArena := func(n int) ([]byte, error) {
		if n < 0 || ap+n > len(arena) {
			return nil, fmt.Errorf("trace: data arena overrun")
		}
		b := arena[ap : ap+n : ap+n]
		ap += n
		return b, nil
	}
	for len(d.queue) < opCount {
		if p >= len(ops) {
			return fmt.Errorf("trace: op stream truncated (%d of %d ops)", len(d.queue), opCount)
		}
		lead := ops[p]
		p++
		switch {
		case lead == leadTxBegin || lead == leadTxEnd || lead == leadTxAbort:
			d.queue = append(d.queue, Op{Kind: lead, Thread: d.curThread})
		case lead == leadThread:
			th, err := uvarint()
			if err != nil {
				return err
			}
			if th > 0xFFFF {
				return fmt.Errorf("trace: thread %d out of range", th)
			}
			d.curThread = uint16(th)
		case lead == leadScan:
			items, err := uvarint()
			if err != nil {
				return err
			}
			nbytes, err := uvarint()
			if err != nil {
				return err
			}
			if items > 1<<32-1 {
				return fmt.Errorf("trace: scan item count %d out of range", items)
			}
			d.queue = append(d.queue, Op{Kind: OpScan, Thread: d.curThread, Addr: mem.PAddr(nbytes), Size: uint32(items)})
		case lead&^0x03 == leadLoad:
			addr, size, err := d.addrSize(lead, uvarint)
			if err != nil {
				return err
			}
			d.lastAddr[d.curThread] = addr
			d.queue = append(d.queue, Op{Kind: OpLoad, Thread: d.curThread, Addr: mem.PAddr(addr), Size: size})
		case lead >= leadStore && lead < leadStore+12 && lead&0x03 != 3:
			op, err := d.decodeStore(lead, uvarint, takeArena)
			if err != nil {
				return err
			}
			d.queue = append(d.queue, op)
		default:
			return fmt.Errorf("trace: unknown op lead byte 0x%02x", lead)
		}
	}
	if p != len(ops) {
		return fmt.Errorf("trace: %d trailing bytes in op stream", len(ops)-p)
	}
	if ap != len(arena) {
		return fmt.Errorf("trace: %d trailing bytes in data arena", len(arena)-ap)
	}
	return nil
}

// addrSize decodes the shared addr-delta + size suffix of loads/stores.
func (d *wire3Dec) addrSize(lead byte, uvarint func() (uint64, error)) (uint64, uint32, error) {
	du, err := uvarint()
	if err != nil {
		return 0, 0, err
	}
	addr := uint64(int64(d.lastAddr[d.curThread]) + unzigzag(du))
	var size uint32
	switch lead & 0x03 {
	case szWord:
		size = 8
	case szLine:
		size = 64
	case szVar:
		s, err := uvarint()
		if err != nil {
			return 0, 0, err
		}
		if s > maxStoreSize {
			return 0, 0, fmt.Errorf("trace: unreasonable store size %d", s)
		}
		size = uint32(s)
	}
	return addr, size, nil
}

func (d *wire3Dec) decodeStore(lead byte, uvarint func() (uint64, error), takeArena func(int) ([]byte, error)) (Op, error) {
	addr, size, err := d.addrSize(lead, uvarint)
	if err != nil {
		return Op{}, err
	}
	mode := (lead >> 2) & 0x03
	var data []byte
	switch mode {
	case dmRaw:
		if data, err = takeArena(int(size)); err != nil {
			return Op{}, err
		}
	case dmDelta:
		words := int(size) / 8
		data = d.out.alloc(int(size))
		for off := 0; off < words*8; off += 8 {
			du, err := uvarint()
			if err != nil {
				return Op{}, err
			}
			w := uint64(int64(d.lastVal[addr+uint64(off)]) + unzigzag(du))
			binary.LittleEndian.PutUint64(data[off:], w)
		}
		tail, err := takeArena(int(size) % 8)
		if err != nil {
			return Op{}, err
		}
		copy(data[words*8:], tail)
	case dmDict:
		slot, err := uvarint()
		if err != nil {
			return Op{}, err
		}
		if slot >= dictSlots || d.dict[slot] == nil {
			return Op{}, fmt.Errorf("trace: dictionary reference to empty slot %d", slot)
		}
		data = d.dict[slot]
		if uint32(len(data)) != size {
			return Op{}, fmt.Errorf("trace: dictionary slot %d holds %d bytes, store wants %d", slot, len(data), size)
		}
	default:
		return Op{}, fmt.Errorf("trace: unknown store data mode %d", mode)
	}
	d.lastAddr[d.curThread] = addr
	d.noteWords(addr, data)
	if mode != dmDict && len(data) > 0 && len(data) <= dictMaxSize {
		s := d.dictNext % dictSlots
		d.dictNext++
		d.dict[s] = data
	}
	return Op{Kind: OpStore, Thread: d.curThread, Addr: mem.PAddr(addr), Size: size, Data: data}, nil
}

// byteArena hands out chunks of a grow-only backing store. Previously
// returned slices stay valid forever (blocks are never reused), which is
// what lets decoded ops alias it.
type byteArena struct {
	cur    []byte
	blocks int
}

const arenaBlock = 64 << 10

func (a *byteArena) alloc(n int) []byte {
	if n > arenaBlock/2 {
		return make([]byte, n)
	}
	if len(a.cur)+n > cap(a.cur) {
		a.cur = make([]byte, 0, arenaBlock)
		a.blocks++
	}
	b := a.cur[len(a.cur) : len(a.cur)+n : len(a.cur)+n]
	a.cur = a.cur[:len(a.cur)+n]
	return b
}
