package trace

import (
	"fmt"
	"io"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// Recorder tees a workload's operations into a trace while they execute.
// Wrap each thread's Env with Wrap, run the workload, then Flush.
type Recorder struct {
	w *Writer
}

// NewRecorder builds a recorder over w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: NewWriter(w)}
}

// Flush drains the underlying trace writer.
func (r *Recorder) Flush() error { return r.w.Flush() }

// Count reports recorded ops.
func (r *Recorder) Count() int64 { return r.w.Count() }

// Recorder implements engine.Tracer: install it with
// sys.SetTracer(recorder) and every operation any workload issues through
// the engine is captured.

func (r *Recorder) emit(op Op) {
	if err := r.w.Write(op); err != nil {
		panic(fmt.Sprintf("trace: recording failed: %v", err))
	}
}

// TraceTxBegin implements engine.Tracer.
func (r *Recorder) TraceTxBegin(thread int) {
	r.emit(Op{Kind: OpTxBegin, Thread: uint8(thread)})
}

// TraceTxEnd implements engine.Tracer.
func (r *Recorder) TraceTxEnd(thread int) {
	r.emit(Op{Kind: OpTxEnd, Thread: uint8(thread)})
}

// TraceLoad implements engine.Tracer.
func (r *Recorder) TraceLoad(thread int, addr mem.PAddr, size int) {
	r.emit(Op{Kind: OpLoad, Thread: uint8(thread), Addr: addr, Size: uint32(size)})
}

// TraceStore implements engine.Tracer.
func (r *Recorder) TraceStore(thread int, addr mem.PAddr, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	r.emit(Op{Kind: OpStore, Thread: uint8(thread), Addr: addr, Size: uint32(len(data)), Data: cp})
}

var _ engine.Tracer = (*Recorder)(nil)

// Replay drives a recorded trace against a fresh system: every thread's
// operations execute in recorded order (interleaved exactly as captured),
// through whatever persistence scheme sys is configured with. It returns
// the number of transactions replayed.
func Replay(sys *engine.System, r io.Reader) (int64, error) {
	tr := NewReader(r)
	threads := sys.Config().Threads
	envs := make([]*engine.Env, threads)
	for i := range envs {
		envs[i] = sys.NewEnv(i)
	}
	var txs int64
	buf := make([]byte, 0, 1024)
	for {
		op, err := tr.Read()
		if err == io.EOF {
			return txs, nil
		}
		if err != nil {
			return txs, err
		}
		if int(op.Thread) >= threads {
			return txs, fmt.Errorf("trace: op for thread %d but system has %d threads", op.Thread, threads)
		}
		env := envs[op.Thread]
		switch op.Kind {
		case OpTxBegin:
			env.TxBegin()
		case OpTxEnd:
			env.TxEnd()
			txs++
		case OpLoad:
			if cap(buf) < int(op.Size) {
				buf = make([]byte, op.Size)
			}
			env.Read(op.Addr, buf[:op.Size])
		case OpStore:
			env.Write(op.Addr, op.Data)
		}
	}
}
