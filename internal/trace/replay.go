package trace

import (
	"fmt"
	"io"

	"hoop/internal/engine"
	"hoop/internal/telemetry"
)

// RecordMask is the telemetry subscription a Recorder needs: the per-op
// kinds it converts into binary trace Ops. Subscribe the recorder with
// sys.Subscribe(rec, trace.RecordMask).
var RecordMask = telemetry.MaskOf(telemetry.KindTxBegin, telemetry.KindTxCommit,
	telemetry.KindLoad, telemetry.KindStore)

// Recorder tees a workload's operations into a trace while they execute.
// It is a telemetry.Sink: subscribe it to a system's hub with RecordMask,
// run the workload, then Flush. The engine executes on one goroutine and
// emits exactly one event per operation in issue order, so the captured
// trace is the operation stream.
type Recorder struct {
	w *Writer
}

// NewRecorder builds a recorder over w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: NewWriter(w)}
}

// Flush drains the underlying trace writer.
func (r *Recorder) Flush() error { return r.w.Flush() }

// Count reports recorded ops.
func (r *Recorder) Count() int64 { return r.w.Count() }

func (r *Recorder) record(op Op) {
	if err := r.w.Write(op); err != nil {
		panic(fmt.Sprintf("trace: recording failed: %v", err))
	}
}

// Emit implements telemetry.Sink: per-op events become trace Ops, all
// other kinds are ignored.
func (r *Recorder) Emit(e telemetry.Event) {
	switch e.Kind {
	case telemetry.KindTxBegin:
		r.record(Op{Kind: OpTxBegin, Thread: uint8(e.Core)})
	case telemetry.KindTxCommit:
		r.record(Op{Kind: OpTxEnd, Thread: uint8(e.Core)})
	case telemetry.KindLoad:
		r.record(Op{Kind: OpLoad, Thread: uint8(e.Core), Addr: e.Addr, Size: uint32(e.Bytes)})
	case telemetry.KindStore:
		cp := make([]byte, len(e.Data))
		copy(cp, e.Data)
		r.record(Op{Kind: OpStore, Thread: uint8(e.Core), Addr: e.Addr, Size: uint32(len(e.Data)), Data: cp})
	}
}

var _ telemetry.Sink = (*Recorder)(nil)

// Replay drives a recorded trace against a fresh system: every thread's
// operations execute in recorded order (interleaved exactly as captured),
// through whatever persistence scheme sys is configured with. It returns
// the number of transactions replayed.
func Replay(sys *engine.System, r io.Reader) (int64, error) {
	tr := NewReader(r)
	threads := sys.Config().Threads
	envs := make([]*engine.Env, threads)
	for i := range envs {
		envs[i] = sys.NewEnv(i)
	}
	var txs int64
	buf := make([]byte, 0, 1024)
	for {
		op, err := tr.Read()
		if err == io.EOF {
			return txs, nil
		}
		if err != nil {
			return txs, err
		}
		if int(op.Thread) >= threads {
			return txs, fmt.Errorf("trace: op for thread %d but system has %d threads", op.Thread, threads)
		}
		env := envs[op.Thread]
		switch op.Kind {
		case OpTxBegin:
			env.TxBegin()
		case OpTxEnd:
			env.TxEnd()
			txs++
		case OpLoad:
			if cap(buf) < int(op.Size) {
				buf = make([]byte, op.Size)
			}
			env.Read(op.Addr, buf[:op.Size])
		case OpStore:
			env.Write(op.Addr, op.Data)
		}
	}
}
