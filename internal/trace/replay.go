package trace

import (
	"bytes"
	"fmt"
	"io"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/telemetry"
)

// RecordMask is the telemetry subscription a Recorder needs: the per-op
// kinds it converts into binary trace Ops. Subscribe the recorder with
// sys.Subscribe(rec, trace.RecordMask).
var RecordMask = telemetry.MaskOf(telemetry.KindTxBegin, telemetry.KindTxCommit,
	telemetry.KindTxAbort, telemetry.KindLoad, telemetry.KindStore, telemetry.KindScan)

// Recorder tees a workload's operations into a trace while they execute.
// It is a telemetry.Sink: subscribe it to a system's hub with RecordMask,
// run the workload, then Flush. The engine executes on one goroutine and
// emits exactly one event per operation in issue order, so the captured
// trace is the operation stream.
//
// A write failure (or an event the format cannot represent) makes the
// recorder's error sticky: further events are dropped and the error
// surfaces from Flush and Err. Emit cannot return an error — it is a
// telemetry.Sink — and panicking from inside the engine's emit path would
// kill the whole worker, so sticky-and-surface is the contract.
type Recorder struct {
	w   *Writer
	err error
}

// NewRecorder builds a recorder over w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: NewWriter(w)}
}

// Flush drains the underlying trace writer, reporting any error that
// occurred while recording.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Err reports the sticky recording error, if any.
func (r *Recorder) Err() error { return r.err }

// Count reports recorded ops.
func (r *Recorder) Count() int64 { return r.w.Count() }

func (r *Recorder) record(op Op) {
	if err := r.w.Write(op); err != nil {
		r.err = fmt.Errorf("trace: recording failed: %w", err)
	}
}

// opFromEvent converts one per-op telemetry event into a trace Op.
// ok is false for kinds outside RecordMask; err is set when the event
// cannot be represented (core outside the uint16 thread field). The
// returned op's Data aliases e.Data, which is only valid for the duration
// of Emit — callers that keep the op must copy (OpSink's arena) or encode
// immediately (Recorder's writer).
func opFromEvent(e telemetry.Event) (op Op, ok bool, err error) {
	if e.Core < 0 || int64(e.Core) > 0xFFFF {
		// The format's thread field is uint16; wrapping would route ops
		// to the wrong replay env, so fail the recording instead.
		return Op{}, false, fmt.Errorf("trace: core %d does not fit the format's uint16 thread field", e.Core)
	}
	th := uint16(e.Core)
	switch e.Kind {
	case telemetry.KindTxBegin:
		return Op{Kind: OpTxBegin, Thread: th}, true, nil
	case telemetry.KindTxCommit:
		return Op{Kind: OpTxEnd, Thread: th}, true, nil
	case telemetry.KindTxAbort:
		return Op{Kind: OpTxAbort, Thread: th}, true, nil
	case telemetry.KindLoad:
		return Op{Kind: OpLoad, Thread: th, Addr: e.Addr, Size: uint32(e.Bytes)}, true, nil
	case telemetry.KindStore:
		return Op{Kind: OpStore, Thread: th, Addr: e.Addr, Size: uint32(len(e.Data)), Data: e.Data}, true, nil
	case telemetry.KindScan:
		// Scan ops reuse the header fields for accounting: Size is the
		// item count (Aux), Addr the value bytes the scan read (Bytes).
		return Op{Kind: OpScan, Thread: th, Addr: mem.PAddr(e.Bytes), Size: uint32(e.Aux)}, true, nil
	}
	return Op{}, false, nil
}

// Emit implements telemetry.Sink: per-op events become trace Ops, all
// other kinds are ignored.
func (r *Recorder) Emit(e telemetry.Event) {
	if r.err != nil {
		return
	}
	op, ok, err := opFromEvent(e)
	if err != nil {
		r.err = err
		return
	}
	if ok {
		r.record(op)
	}
}

var _ telemetry.Sink = (*Recorder)(nil)

// OpSink is a telemetry.Sink that collects ops in memory, skipping the
// wire encoding entirely — the capture stage of the matrix pipeline uses
// it so recording costs one struct append per op instead of an encode
// plus a later decode. Store payloads are copied into a grow-only arena
// (events only alias the written bytes during Emit), so collection does
// one bulk allocation per 64 KiB of payload rather than one per store.
// Same sticky-error contract as Recorder.
type OpSink struct {
	Ops   []Op
	arena byteArena
	err   error
}

// Emit implements telemetry.Sink.
func (s *OpSink) Emit(e telemetry.Event) {
	if s.err != nil {
		return
	}
	op, ok, err := opFromEvent(e)
	if err != nil {
		s.err = err
		return
	}
	if ok {
		if len(op.Data) > 0 {
			cp := s.arena.alloc(len(op.Data))
			copy(cp, op.Data)
			op.Data = cp
		}
		s.Ops = append(s.Ops, op)
	}
}

// Err reports the sticky collection error, if any.
func (s *OpSink) Err() error { return s.err }

var _ telemetry.Sink = (*OpSink)(nil)

// WriteOps serializes ops in the wire format.
func WriteOps(ops []Op) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ApplyOp issues one recorded op against env. buf is a scratch buffer for
// load destinations, grown as needed and returned for reuse; pass nil on
// the first call.
func ApplyOp(env *engine.Env, op Op, buf []byte) ([]byte, error) {
	switch op.Kind {
	case OpTxBegin:
		env.TxBegin()
	case OpTxEnd:
		env.TxEnd()
	case OpTxAbort:
		env.TxAbort()
	case OpLoad:
		if cap(buf) < int(op.Size) {
			buf = make([]byte, op.Size)
		}
		env.Read(op.Addr, buf[:op.Size])
	case OpStore:
		env.Write(op.Addr, op.Data)
	case OpScan:
		env.NoteScan(int(op.Size), int(op.Addr))
	default:
		return buf, fmt.Errorf("trace: unknown op kind %d", op.Kind)
	}
	return buf, nil
}

type replayer struct {
	envs []*engine.Env
	buf  []byte
	txs  int64
}

func newReplayer(sys *engine.System) *replayer {
	envs := make([]*engine.Env, sys.Config().Threads)
	for i := range envs {
		envs[i] = sys.NewEnv(i)
	}
	return &replayer{envs: envs, buf: make([]byte, 0, 1024)}
}

func (rp *replayer) apply(op Op) error {
	if int(op.Thread) >= len(rp.envs) {
		return fmt.Errorf("trace: op for thread %d but system has %d threads", op.Thread, len(rp.envs))
	}
	var err error
	rp.buf, err = ApplyOp(rp.envs[op.Thread], op, rp.buf)
	if op.Kind == OpTxEnd {
		rp.txs++
	}
	return err
}

// Replay drives a recorded trace against a fresh system: every thread's
// operations execute in recorded order (interleaved exactly as captured),
// through whatever persistence scheme sys is configured with. It returns
// the number of committed transactions replayed. Replaying a trace that
// carries aborts requires a system built with Config.Abortable.
func Replay(sys *engine.System, r io.Reader) (int64, error) {
	tr := NewReader(r)
	rp := newReplayer(sys)
	for {
		op, err := tr.Read()
		if err == io.EOF {
			return rp.txs, nil
		}
		if err != nil {
			return rp.txs, err
		}
		if err := rp.apply(op); err != nil {
			return rp.txs, err
		}
	}
}

// ReplayOps is Replay over an already-decoded op slice.
func ReplayOps(sys *engine.System, ops []Op) (int64, error) {
	rp := newReplayer(sys)
	for _, op := range ops {
		if err := rp.apply(op); err != nil {
			return rp.txs, err
		}
	}
	return rp.txs, nil
}
