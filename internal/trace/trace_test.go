package trace

import (
	"bytes"
	"io"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ops := []Op{
		{Kind: OpTxBegin, Thread: 0},
		{Kind: OpStore, Thread: 0, Addr: 0x100, Size: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: OpLoad, Thread: 1, Addr: 0x200, Size: 64},
		{Kind: OpTxEnd, Thread: 0},
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(ops)) {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops", len(got))
	}
	for i := range ops {
		if got[i].Kind != ops[i].Kind || got[i].Thread != ops[i].Thread ||
			got[i].Addr != ops[i].Addr || got[i].Size != ops[i].Size {
			t.Fatalf("op %d mismatch: %v vs %v", i, got[i], ops[i])
		}
		if !bytes.Equal(got[i].Data, ops[i].Data) {
			t.Fatalf("op %d data mismatch", i)
		}
		if got[i].String() == "" {
			t.Fatal("String")
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nonsense"))).Read(); err == nil {
		t.Fatal("bad magic must fail")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Flush() // header only
	if _, err := NewReader(&buf).Read(); err != io.EOF {
		t.Fatalf("empty trace must EOF, got %v", err)
	}
	if err := NewWriter(io.Discard).Write(Op{Kind: OpStore, Size: 8, Data: []byte{1}}); err == nil {
		t.Fatal("mismatched store size must fail")
	}
}

func traceSystem(t *testing.T, scheme string) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.TrackOracle = true
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRecordReplayEquivalence records a run on one system, replays the
// trace on a fresh system with a different scheme, and checks the durable
// outcome matches after crash+recovery.
func TestRecordReplayEquivalence(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	src := traceSystem(t, engine.SchemeHOOP)
	src.Subscribe(rec, RecordMask)
	envs := []*engine.Env{src.NewEnv(0), src.NewEnv(1)}
	r := sim.NewRand(13)
	for i := 0; i < 100; i++ {
		env := envs[i%2]
		env.TxBegin()
		for j := 0; j < 1+r.Intn(5); j++ {
			env.WriteWord(mem.PAddr(r.Intn(512))*8, r.Uint64())
		}
		env.ReadWord(mem.PAddr(r.Intn(512)) * 8)
		env.TxEnd()
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("nothing recorded")
	}

	// Replay onto Opt-Undo and verify its recovered state matches the
	// original system's committed oracle.
	dst := traceSystem(t, engine.SchemeUndo)
	txs, err := Replay(dst, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if txs != 100 {
		t.Fatalf("replayed %d txs", txs)
	}
	dst.Crash()
	if _, err := dst.Recover(2); err != nil {
		t.Fatal(err)
	}
	if mm := dst.VerifyRecovered(3); len(mm) != 0 {
		t.Fatalf("replayed system diverged: %+v", mm)
	}
	// Cross-check against the source oracle: same committed bytes.
	src.Crash()
	if _, err := src.Recover(2); err != nil {
		t.Fatal(err)
	}
	srcHome := src.Durable()
	dstHome := dst.Durable()
	for a := mem.PAddr(0); a < 512*8; a += 8 {
		if srcHome.ReadWord(a) != dstHome.ReadWord(a) {
			t.Fatalf("source and replay diverge at %v", a)
		}
	}
}

func TestReplayThreadBoundsChecked(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Op{Kind: OpTxBegin, Thread: 9})
	w.Flush()
	sys := traceSystem(t, engine.SchemeNative)
	if _, err := Replay(sys, &buf); err == nil {
		t.Fatal("out-of-range thread must fail")
	}
}
