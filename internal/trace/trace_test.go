package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

func TestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ops := []Op{
		{Kind: OpTxBegin, Thread: 0},
		{Kind: OpStore, Thread: 0, Addr: 0x100, Size: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: OpLoad, Thread: 1, Addr: 0x200, Size: 64},
		{Kind: OpTxEnd, Thread: 0},
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(ops)) {
		t.Fatalf("Count = %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops", len(got))
	}
	for i := range ops {
		if got[i].Kind != ops[i].Kind || got[i].Thread != ops[i].Thread ||
			got[i].Addr != ops[i].Addr || got[i].Size != ops[i].Size {
			t.Fatalf("op %d mismatch: %v vs %v", i, got[i], ops[i])
		}
		if !bytes.Equal(got[i].Data, ops[i].Data) {
			t.Fatalf("op %d data mismatch", i)
		}
		if got[i].String() == "" {
			t.Fatal("String")
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nonsense"))).Read(); err == nil {
		t.Fatal("bad magic must fail")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Flush() // header only
	if _, err := NewReader(&buf).Read(); err != io.EOF {
		t.Fatalf("empty trace must EOF, got %v", err)
	}
	if err := NewWriter(io.Discard).Write(Op{Kind: OpStore, Size: 8, Data: []byte{1}}); err == nil {
		t.Fatal("mismatched store size must fail")
	}
}

func traceSystem(t *testing.T, scheme string) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.TrackOracle = true
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestRecordReplayEquivalence records a run on one system, replays the
// trace on a fresh system with a different scheme, and checks the durable
// outcome matches after crash+recovery.
func TestRecordReplayEquivalence(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	src := traceSystem(t, engine.SchemeHOOP)
	src.Subscribe(rec, RecordMask)
	envs := []*engine.Env{src.NewEnv(0), src.NewEnv(1)}
	r := sim.NewRand(13)
	for i := 0; i < 100; i++ {
		env := envs[i%2]
		env.TxBegin()
		for j := 0; j < 1+r.Intn(5); j++ {
			env.WriteWord(mem.PAddr(r.Intn(512))*8, r.Uint64())
		}
		env.ReadWord(mem.PAddr(r.Intn(512)) * 8)
		env.TxEnd()
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("nothing recorded")
	}

	// Replay onto Opt-Undo and verify its recovered state matches the
	// original system's committed oracle.
	dst := traceSystem(t, engine.SchemeUndo)
	txs, err := Replay(dst, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if txs != 100 {
		t.Fatalf("replayed %d txs", txs)
	}
	dst.Crash()
	if _, err := dst.Recover(2); err != nil {
		t.Fatal(err)
	}
	if mm := dst.VerifyRecovered(3); len(mm) != 0 {
		t.Fatalf("replayed system diverged: %+v", mm)
	}
	// Cross-check against the source oracle: same committed bytes.
	src.Crash()
	if _, err := src.Recover(2); err != nil {
		t.Fatal(err)
	}
	srcHome := src.Durable()
	dstHome := dst.Durable()
	for a := mem.PAddr(0); a < 512*8; a += 8 {
		if srcHome.ReadWord(a) != dstHome.ReadWord(a) {
			t.Fatalf("source and replay diverge at %v", a)
		}
	}
}

func TestReplayThreadBoundsChecked(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Op{Kind: OpTxBegin, Thread: 9})
	w.Flush()
	sys := traceSystem(t, engine.SchemeNative)
	if _, err := Replay(sys, &buf); err == nil {
		t.Fatal("out-of-range thread must fail")
	}
}

func TestV2AbortAndWideThreadRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	ops := []Op{
		{Kind: OpTxBegin, Thread: 300},
		{Kind: OpStore, Thread: 300, Addr: 0x40, Size: 8, Data: []byte{8, 7, 6, 5, 4, 3, 2, 1}},
		{Kind: OpTxAbort, Thread: 300},
		{Kind: OpTxBegin, Thread: 65535},
		{Kind: OpTxEnd, Thread: 65535},
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("read %d ops", len(got))
	}
	for i := range ops {
		if got[i].Kind != ops[i].Kind || got[i].Thread != ops[i].Thread {
			t.Fatalf("op %d: got %v want %v", i, got[i], ops[i])
		}
	}
	if got[2].String() != "t300 TX_ABORT" {
		t.Fatalf("abort String = %q", got[2].String())
	}
}

// encodeV1 hand-builds a v1 trace (14-byte op headers, uint8 thread).
func encodeV1(ops []Op) []byte {
	var buf bytes.Buffer
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version1)
	buf.Write(h[:])
	for _, op := range ops {
		var oh [opHeaderV1]byte
		oh[0] = op.Kind
		oh[1] = uint8(op.Thread)
		binary.LittleEndian.PutUint64(oh[2:], uint64(op.Addr))
		binary.LittleEndian.PutUint32(oh[10:], op.Size)
		buf.Write(oh[:])
		buf.Write(op.Data)
	}
	return buf.Bytes()
}

func TestReaderAcceptsV1(t *testing.T) {
	ops := []Op{
		{Kind: OpTxBegin, Thread: 1},
		{Kind: OpStore, Thread: 1, Addr: 0x80, Size: 2, Data: []byte{0xAA, 0xBB}},
		{Kind: OpTxEnd, Thread: 1},
	}
	got, err := NewReader(bytes.NewReader(encodeV1(ops))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Thread != 1 || got[1].Addr != 0x80 || !bytes.Equal(got[1].Data, []byte{0xAA, 0xBB}) {
		t.Fatalf("v1 decode mismatch: %+v", got)
	}
}

func TestReaderRejectsV1Abort(t *testing.T) {
	raw := encodeV1([]Op{{Kind: OpTxBegin, Thread: 0}, {Kind: OpTxAbort, Thread: 0}})
	_, err := NewReader(bytes.NewReader(raw)).ReadAll()
	if err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("v1 trace with abort op must be rejected, got %v", err)
	}
}

// failAfter errors once more than n bytes have been written.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestRecorderErrorIsSticky(t *testing.T) {
	rec := NewRecorder(&failAfter{n: 16})
	// Varied payloads defeat the v3 compactor (dict/delta), so encoded
	// bytes accumulate and force a chunk emit well before 8192 events.
	for i := 0; i < 8192; i++ {
		data := make([]byte, 64)
		for w := 0; w < 8; w++ {
			binary.LittleEndian.PutUint64(data[w*8:], (uint64(i)*8+uint64(w)+1)*0x9E3779B97F4A7C15)
		}
		rec.Emit(telemetry.Event{Kind: telemetry.KindStore, Core: 0, Addr: 8, Data: data})
	}
	if rec.Err() == nil {
		t.Fatal("writer failure must surface from Err")
	}
	if err := rec.Flush(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Flush must report the sticky error, got %v", err)
	}
	n := rec.Count()
	rec.Emit(telemetry.Event{Kind: telemetry.KindTxCommit, Core: 0})
	if rec.Count() != n {
		t.Fatal("events after a sticky error must be dropped, not recorded")
	}
}

func TestRecorderRejectsNegativeCore(t *testing.T) {
	rec := NewRecorder(io.Discard)
	rec.Emit(telemetry.Event{Kind: telemetry.KindTxBegin, Core: -1})
	if err := rec.Flush(); err == nil || !strings.Contains(err.Error(), "thread field") {
		t.Fatalf("negative core must fail recording, got %v", err)
	}
}

// TestRecordReplayAbortEquivalence records an abort-carrying run and
// replays it on a different scheme: aborted transactions must stay
// invisible and committed state must match word for word.
func TestRecordReplayAbortEquivalence(t *testing.T) {
	abortSys := func(scheme string) *engine.System {
		cfg := engine.DefaultConfig(scheme)
		cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
		cfg.Ctrl.Agents = 4
		cfg.NVM.Capacity = 1 << 30
		cfg.OOPBytes = 64 << 20
		cfg.Hoop.CommitLogBytes = 1 << 20
		cfg.Abortable = true
		sys, err := engine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	src := abortSys(engine.SchemeHOOP)
	src.Subscribe(rec, RecordMask)
	envs := []*engine.Env{src.NewEnv(0), src.NewEnv(1)}
	r := sim.NewRand(29)
	commits, aborts := 0, 0
	for i := 0; i < 120; i++ {
		env := envs[i%2]
		env.TxBegin()
		for j := 0; j < 1+r.Intn(4); j++ {
			env.WriteWord(mem.PAddr(r.Intn(256))*8, r.Uint64())
		}
		if i%5 == 3 {
			env.TxAbort()
			aborts++
		} else {
			env.TxEnd()
			commits++
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	dst := abortSys(engine.SchemeUndo)
	txs, err := Replay(dst, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if txs != int64(commits) {
		t.Fatalf("replayed %d committed txs, want %d", txs, commits)
	}
	snap := dst.Snapshot()
	if snap.Aborts != int64(aborts) {
		t.Fatalf("replay saw %d aborts, want %d", snap.Aborts, aborts)
	}
	src.Crash()
	if _, err := src.Recover(2); err != nil {
		t.Fatal(err)
	}
	dst.Crash()
	if _, err := dst.Recover(2); err != nil {
		t.Fatal(err)
	}
	srcHome, dstHome := src.Durable(), dst.Durable()
	for a := mem.PAddr(0); a < 256*8; a += 8 {
		if srcHome.ReadWord(a) != dstHome.ReadWord(a) {
			t.Fatalf("source and replay diverge at %v", a)
		}
	}
}

func TestSplitTxs(t *testing.T) {
	ops := []Op{
		{Kind: OpLoad, Thread: 1, Addr: 0, Size: 8}, // pre-tx op attaches forward
		{Kind: OpTxBegin, Thread: 0},
		{Kind: OpTxBegin, Thread: 1},
		{Kind: OpStore, Thread: 0, Addr: 8, Size: 8, Data: make([]byte, 8)},
		{Kind: OpTxAbort, Thread: 1},
		{Kind: OpTxEnd, Thread: 0},
		{Kind: OpTxBegin, Thread: 0},
		{Kind: OpTxEnd, Thread: 0},
	}
	txs, err := SplitTxs(ops, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs[0]) != 2 || len(txs[1]) != 1 {
		t.Fatalf("segment counts: t0=%d t1=%d", len(txs[0]), len(txs[1]))
	}
	if len(txs[1][0]) != 3 || txs[1][0][0].Kind != OpLoad || txs[1][0][2].Kind != OpTxAbort {
		t.Fatalf("thread 1 segment wrong: %v", txs[1][0])
	}
	if _, err := SplitTxs([]Op{{Kind: OpTxBegin, Thread: 5}}, 2); err == nil {
		t.Fatal("out-of-range thread must fail")
	}
	if _, err := SplitTxs([]Op{{Kind: OpTxBegin, Thread: 0}}, 1); err == nil {
		t.Fatal("trailing open transaction must fail")
	}
}
