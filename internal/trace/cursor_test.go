package trace

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// cursorBenchSystem is traceSystem without oracle tracking (the shadow
// map would show up in allocation counts), on the in-place Native scheme
// (out-of-place schemes keep faulting fresh mem.Store pages until their
// rings wrap, which reads as allocation even though the replay path
// itself allocates nothing).
func cursorBenchSystem(t *testing.T) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCursorReplayZeroAllocs locks the replay fast path: once a cursor's
// scratch buffer is warm, replaying recorded transactions allocates
// nothing. This is the per-op budget behind runMatrixReplay.
func TestCursorReplayZeroAllocs(t *testing.T) {
	src := cursorBenchSystem(t)
	var sink OpSink
	src.Subscribe(&sink, RecordMask)
	env := src.NewEnv(0)
	const txCount = 64
	for i := 0; i < txCount; i++ {
		base := mem.PAddr(uint64(i%16) * 4 * mem.WordSize)
		env.TxBegin()
		for w := 0; w < 4; w++ {
			env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i)*0x9E3779B97F4A7C15)
		}
		env.TxEnd()
	}
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	txs, err := SplitTxs(sink.Ops, 1)
	if err != nil || len(txs[0]) != txCount {
		t.Fatalf("split: %v (%d txs)", err, len(txs[0]))
	}

	dst := cursorBenchSystem(t)
	denv := dst.NewEnv(0)
	var cur Cursor
	cur.Reset("alloc-test", 0, txs[0])
	for cur.Done() < txCount { // warm pass: grows the scratch buffer
		cur.RunTx(denv)
	}
	allocs := testing.AllocsPerRun(2*txCount, func() {
		if cur.Done() == txCount {
			cur.Reset("alloc-test", 0, txs[0])
		}
		cur.RunTx(denv)
	})
	if allocs != 0 {
		t.Fatalf("cursor replay allocates %.1f objects per transaction, want 0", allocs)
	}
}
