package trace

import "fmt"

// SplitTxs partitions a recorded op stream into per-thread transaction
// segments: out[t][i] is thread t's i-th transaction, the ops from its
// opening TxBegin (plus any preceding out-of-transaction ops, which attach
// forward) through the TxEnd or TxAbort that closes it. Per-thread order
// is preserved; the global interleaving is deliberately discarded — a
// replayer reissues each thread's transactions under its own scheme's
// timing, letting the engine's min-clock scheduler rebuild that scheme's
// interleaving.
func SplitTxs(ops []Op, threads int) ([][][]Op, error) {
	perThread := make([][]Op, threads)
	for _, op := range ops {
		t := int(op.Thread)
		if t >= threads {
			return nil, fmt.Errorf("trace: op for thread %d but only %d threads expected", op.Thread, threads)
		}
		perThread[t] = append(perThread[t], op)
	}
	out := make([][][]Op, threads)
	for t, stream := range perThread {
		start := 0
		for i, op := range stream {
			if op.Kind == OpTxEnd || op.Kind == OpTxAbort {
				out[t] = append(out[t], stream[start:i+1])
				start = i + 1
			}
		}
		if start != len(stream) {
			return nil, fmt.Errorf("trace: thread %d has %d trailing ops after its last transaction close", t, len(stream)-start)
		}
	}
	return out, nil
}
