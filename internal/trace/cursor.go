package trace

import (
	"fmt"

	"hoop/internal/engine"
)

// Cursor feeds one thread's pre-segmented (SplitTxs) transactions to the
// engine, one segment per RunTx call, exactly as the direct workload
// runner would have issued them. It implements engine.TxRunner. A Cursor
// is reusable: Reset points it at another thread's segments while keeping
// its load scratch buffer, so a pool of warm cursors replays cell after
// cell with zero per-op and zero steady-state per-cell allocation.
type Cursor struct {
	label  string
	thread int
	txs    [][]Op
	next   int
	buf    []byte
}

// Reset points the cursor at a thread's transaction segments. label names
// the capture (for the ran-dry panic); the scratch buffer is retained.
func (c *Cursor) Reset(label string, thread int, txs [][]Op) {
	c.label = label
	c.thread = thread
	c.txs = txs
	c.next = 0
}

// Done reports how many transactions the cursor has replayed.
func (c *Cursor) Done() int { return c.next }

// RunTx replays the next recorded transaction. Running dry means the
// capture's padding was undersized for the requested window — a harness
// bug — so it panics rather than silently measuring a partial run.
func (c *Cursor) RunTx(env *engine.Env) {
	if c.next >= len(c.txs) {
		panic(fmt.Sprintf("trace: %s replay ran thread %d dry after %d recorded transactions (capture padding too small)",
			c.label, c.thread, c.next))
	}
	for _, op := range c.txs[c.next] {
		var err error
		c.buf, err = ApplyOp(env, op, c.buf)
		if err != nil {
			panic(err)
		}
	}
	c.next++
}

var _ engine.TxRunner = (*Cursor)(nil)
