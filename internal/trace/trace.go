// Package trace records and replays memory-operation traces. A trace
// captures the exact operation stream a workload issued — transaction
// boundaries, loads, stores with their data — in a compact binary format,
// so a run can be (a) inspected offline, (b) replayed bit-identically
// against any persistence scheme, or (c) exported for analysis outside the
// simulator. This mirrors how the paper's platform consumed Pin-captured
// application traces.
//
// Format v2 added transaction aborts (OpTxAbort) and widened the thread
// field to uint16. Format v3 is the compact format: ops are grouped into
// chunks whose header stream is varint/delta-encoded and deflated, while
// bulk store payloads live in a separate uncompressed data arena (see
// wire3.go). The Reader still accepts older versions, except streams that
// claim to carry ops their version predates (an abort in v1, a scan in
// v1/v2): those can only be corruption and are rejected.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hoop/internal/mem"
)

// Op kinds.
const (
	OpTxBegin byte = iota + 1
	OpTxEnd
	OpLoad
	OpStore
	OpTxAbort // v2 and later
	OpScan    // v3 and later
)

// Op is one traced operation. Thread identifies the issuing workload
// thread; Data is present only for stores. Ops decoded from a v3 stream
// alias the Reader's internal arenas: treat Data as read-only.
type Op struct {
	Kind   byte
	Thread uint16
	Addr   mem.PAddr
	Size   uint32
	Data   []byte
}

// String renders the op for human inspection.
func (o Op) String() string {
	switch o.Kind {
	case OpTxBegin:
		return fmt.Sprintf("t%d TX_BEGIN", o.Thread)
	case OpTxEnd:
		return fmt.Sprintf("t%d TX_END", o.Thread)
	case OpTxAbort:
		return fmt.Sprintf("t%d TX_ABORT", o.Thread)
	case OpLoad:
		return fmt.Sprintf("t%d LOAD  %v +%d", o.Thread, o.Addr, o.Size)
	case OpStore:
		return fmt.Sprintf("t%d STORE %v +%d", o.Thread, o.Addr, o.Size)
	case OpScan:
		return fmt.Sprintf("t%d SCAN  %d items / %d B", o.Thread, o.Size, uint64(o.Addr))
	}
	return fmt.Sprintf("t%d ?%d", o.Thread, o.Kind)
}

// Magic and versions of the binary format. The file header is 8 bytes:
// magic u32le, version u32le. In v1/v2 each op follows as a fixed header
// plus, for stores, Size bytes of inline data: the v1 op header is
// 14 bytes (kind u8, thread u8, addr u64le, size u32le), v2's is 15 bytes
// (kind u8, thread u16le, addr u64le, size u32le). v3 is the compact
// chunked format defined in wire3.go. Scan ops reuse the header fields for
// accounting: Size carries the item count and Addr the total value bytes
// the scan read.
const (
	magic      = 0x484F5452 // "HOTR"
	version1   = 1
	version2   = 2
	version3   = 3
	version    = version3
	opHeaderV1 = 14
	opHeaderV2 = 15
)

// maxStoreSize bounds a single store's payload; anything larger in a
// stream is treated as corruption.
const maxStoreSize = 1 << 20

// Writer streams ops into an io.Writer, always in the current (v3) format.
// Ops accumulate into an in-memory chunk that is emitted when it reaches
// the chunk target or on Flush, so memory stays bounded for arbitrarily
// long recordings. Write copies what it needs from op.Data before
// returning, so callers may reuse their buffers.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   int64
	enc     wire3Enc
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) header() error {
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version)
	_, err := t.w.Write(h[:])
	return err
}

// Write appends one op.
func (t *Writer) Write(op Op) error {
	if !t.started {
		if err := t.header(); err != nil {
			return err
		}
		t.started = true
	}
	switch op.Kind {
	case OpTxBegin, OpTxEnd, OpTxAbort, OpLoad, OpScan:
	case OpStore:
		if uint32(len(op.Data)) != op.Size {
			return fmt.Errorf("trace: store op with %d data bytes but size %d", len(op.Data), op.Size)
		}
		if op.Size > maxStoreSize {
			return fmt.Errorf("trace: unreasonable store size %d", op.Size)
		}
	default:
		return fmt.Errorf("trace: unknown op kind %d", op.Kind)
	}
	t.enc.encode(op)
	t.count++
	if t.enc.pendingBytes() >= chunkTarget {
		return t.enc.emitChunk(t.w)
	}
	return nil
}

// Count reports ops written.
func (t *Writer) Count() int64 { return t.count }

// Flush emits the pending chunk and drains the buffer; call before closing
// the underlying writer. Flushing mid-stream is fine: the Writer keeps
// appending afterwards (each flush just closes a chunk).
func (t *Writer) Flush() error {
	if !t.started {
		if err := t.header(); err != nil {
			return err
		}
		t.started = true
	}
	if err := t.enc.emitChunk(t.w); err != nil {
		return err
	}
	return t.w.Flush()
}

// Reader streams ops from an io.Reader. It reads v1, v2, and v3 traces.
type Reader struct {
	r       *bufio.Reader
	started bool
	ver     uint32
	dec     wire3Dec
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (t *Reader) header() error {
	var h [8]byte
	if _, err := io.ReadFull(t.r, h[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != magic {
		return fmt.Errorf("trace: bad magic")
	}
	switch v := binary.LittleEndian.Uint32(h[4:]); v {
	case version1, version2, version3:
		t.ver = v
	default:
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	return nil
}

// Read returns the next op, or io.EOF at the end of the trace.
func (t *Reader) Read() (Op, error) {
	if !t.started {
		if err := t.header(); err != nil {
			return Op{}, err
		}
		t.started = true
	}
	if t.ver == version3 {
		return t.dec.read(t.r)
	}
	return t.readFixed()
}

// readFixed decodes one op of the fixed-header v1/v2 formats.
func (t *Reader) readFixed() (Op, error) {
	var h [opHeaderV2]byte
	n := opHeaderV2
	if t.ver == version1 {
		n = opHeaderV1
	}
	if _, err := io.ReadFull(t.r, h[:n]); err != nil {
		if err == io.EOF {
			return Op{}, io.EOF
		}
		return Op{}, fmt.Errorf("trace: reading op: %w", err)
	}
	var op Op
	if t.ver == version1 {
		op = Op{
			Kind:   h[0],
			Thread: uint16(h[1]),
			Addr:   mem.PAddr(binary.LittleEndian.Uint64(h[2:])),
			Size:   binary.LittleEndian.Uint32(h[10:]),
		}
	} else {
		op = Op{
			Kind:   h[0],
			Thread: binary.LittleEndian.Uint16(h[1:]),
			Addr:   mem.PAddr(binary.LittleEndian.Uint64(h[3:])),
			Size:   binary.LittleEndian.Uint32(h[11:]),
		}
	}
	switch op.Kind {
	case OpTxBegin, OpTxEnd, OpLoad:
	case OpTxAbort:
		if t.ver == version1 {
			return Op{}, fmt.Errorf("trace: v1 trace carries a tx-abort op; the v1 format predates aborts, so the trace is corrupt — re-record it with the current writer")
		}
	case OpScan:
		return Op{}, fmt.Errorf("trace: v%d trace carries a scan op; the v%d format predates scans, so the trace is corrupt — re-record it with the current writer", t.ver, t.ver)
	case OpStore:
		if op.Size > maxStoreSize {
			return Op{}, fmt.Errorf("trace: unreasonable store size %d", op.Size)
		}
		op.Data = make([]byte, op.Size)
		if _, err := io.ReadFull(t.r, op.Data); err != nil {
			return Op{}, fmt.Errorf("trace: reading store data: %w", err)
		}
	default:
		return Op{}, fmt.Errorf("trace: unknown op kind %d", op.Kind)
	}
	return op, nil
}

// ReadAll drains the trace.
func (t *Reader) ReadAll() ([]Op, error) {
	var ops []Op
	for {
		op, err := t.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}
