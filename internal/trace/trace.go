// Package trace records and replays memory-operation traces. A trace
// captures the exact operation stream a workload issued — transaction
// boundaries, loads, stores with their data — in a compact binary format,
// so a run can be (a) inspected offline, (b) replayed bit-identically
// against any persistence scheme, or (c) exported for analysis outside the
// simulator. This mirrors how the paper's platform consumed Pin-captured
// application traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hoop/internal/mem"
)

// Op kinds.
const (
	OpTxBegin byte = iota + 1
	OpTxEnd
	OpLoad
	OpStore
)

// Op is one traced operation. Thread identifies the issuing workload
// thread; Data is present only for stores.
type Op struct {
	Kind   byte
	Thread uint8
	Addr   mem.PAddr
	Size   uint32
	Data   []byte
}

// String renders the op for human inspection.
func (o Op) String() string {
	switch o.Kind {
	case OpTxBegin:
		return fmt.Sprintf("t%d TX_BEGIN", o.Thread)
	case OpTxEnd:
		return fmt.Sprintf("t%d TX_END", o.Thread)
	case OpLoad:
		return fmt.Sprintf("t%d LOAD  %v +%d", o.Thread, o.Addr, o.Size)
	case OpStore:
		return fmt.Sprintf("t%d STORE %v +%d", o.Thread, o.Addr, o.Size)
	}
	return fmt.Sprintf("t%d ?%d", o.Thread, o.Kind)
}

// Magic and version of the binary format.
const (
	magic   = 0x484F5452 // "HOTR"
	version = 1
)

// Writer streams ops into an io.Writer.
type Writer struct {
	w       *bufio.Writer
	started bool
	count   int64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (t *Writer) header() error {
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version)
	_, err := t.w.Write(h[:])
	return err
}

// Write appends one op.
func (t *Writer) Write(op Op) error {
	if !t.started {
		if err := t.header(); err != nil {
			return err
		}
		t.started = true
	}
	var h [14]byte
	h[0] = op.Kind
	h[1] = op.Thread
	binary.LittleEndian.PutUint64(h[2:], uint64(op.Addr))
	binary.LittleEndian.PutUint32(h[10:], op.Size)
	if _, err := t.w.Write(h[:]); err != nil {
		return err
	}
	if op.Kind == OpStore {
		if uint32(len(op.Data)) != op.Size {
			return fmt.Errorf("trace: store op with %d data bytes but size %d", len(op.Data), op.Size)
		}
		if _, err := t.w.Write(op.Data); err != nil {
			return err
		}
	}
	t.count++
	return nil
}

// Count reports ops written.
func (t *Writer) Count() int64 { return t.count }

// Flush drains the buffer; call before closing the underlying writer.
func (t *Writer) Flush() error {
	if !t.started {
		if err := t.header(); err != nil {
			return err
		}
		t.started = true
	}
	return t.w.Flush()
}

// Reader streams ops from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (t *Reader) header() error {
	var h [8]byte
	if _, err := io.ReadFull(t.r, h[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != magic {
		return fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != version {
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	return nil
}

// Read returns the next op, or io.EOF at the end of the trace.
func (t *Reader) Read() (Op, error) {
	if !t.started {
		if err := t.header(); err != nil {
			return Op{}, err
		}
		t.started = true
	}
	var h [14]byte
	if _, err := io.ReadFull(t.r, h[:]); err != nil {
		if err == io.EOF {
			return Op{}, io.EOF
		}
		return Op{}, fmt.Errorf("trace: reading op: %w", err)
	}
	op := Op{
		Kind:   h[0],
		Thread: h[1],
		Addr:   mem.PAddr(binary.LittleEndian.Uint64(h[2:])),
		Size:   binary.LittleEndian.Uint32(h[10:]),
	}
	switch op.Kind {
	case OpTxBegin, OpTxEnd, OpLoad:
	case OpStore:
		if op.Size > 1<<20 {
			return Op{}, fmt.Errorf("trace: unreasonable store size %d", op.Size)
		}
		op.Data = make([]byte, op.Size)
		if _, err := io.ReadFull(t.r, op.Data); err != nil {
			return Op{}, fmt.Errorf("trace: reading store data: %w", err)
		}
	default:
		return Op{}, fmt.Errorf("trace: unknown op kind %d", op.Kind)
	}
	return op, nil
}

// ReadAll drains the trace.
func (t *Reader) ReadAll() ([]Op, error) {
	var ops []Op
	for {
		op, err := t.Read()
		if err == io.EOF {
			return ops, nil
		}
		if err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
}
