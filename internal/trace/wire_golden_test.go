package trace

import (
	"bytes"
	"encoding/binary"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"hoop/internal/mem"
)

var updateWire = flag.Bool("update", false, "rewrite the wire-format golden fixtures from this run")

// goldenOpsV1 fits the v1 format: no aborts, no scans, thread <= 255.
func goldenOpsV1() []Op {
	return []Op{
		{Kind: OpTxBegin, Thread: 0},
		{Kind: OpLoad, Thread: 0, Addr: 0x1000, Size: 8},
		{Kind: OpStore, Thread: 0, Addr: 0x1000, Size: 8, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
		{Kind: OpTxEnd, Thread: 0},
		{Kind: OpTxBegin, Thread: 7},
		{Kind: OpStore, Thread: 7, Addr: 0x2040, Size: 3, Data: []byte{0xAA, 0xBB, 0xCC}},
		{Kind: OpTxEnd, Thread: 7},
	}
}

// goldenOpsV2 adds what v2 introduced: aborts and uint16 threads.
func goldenOpsV2() []Op {
	return append(goldenOpsV1(),
		Op{Kind: OpTxBegin, Thread: 65535},
		Op{Kind: OpStore, Thread: 65535, Addr: 0x3000, Size: 8, Data: []byte{8, 7, 6, 5, 4, 3, 2, 1}},
		Op{Kind: OpTxAbort, Thread: 65535},
	)
}

// goldenOpsV3 adds what v3 introduced (scans) and walks every store
// encoding mode: raw (first sight of a payload), dictionary (exact repeat),
// and per-word delta (a near-miss of a cached line), plus forward and
// backward address deltas and both load sizes.
func goldenOpsV3() []Op {
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i * 11)
	}
	near := append([]byte(nil), line...)
	near[8] ^= 0x5A // one word differs: delta mode
	return append(goldenOpsV2(),
		Op{Kind: OpTxBegin, Thread: 2},
		Op{Kind: OpLoad, Thread: 2, Addr: 0x8000, Size: 64},
		Op{Kind: OpStore, Thread: 2, Addr: 0x8000, Size: 64, Data: line},
		Op{Kind: OpStore, Thread: 2, Addr: 0x9000, Size: 64, Data: append([]byte(nil), line...)},
		Op{Kind: OpStore, Thread: 2, Addr: 0x8000, Size: 64, Data: near},
		Op{Kind: OpLoad, Thread: 2, Addr: 0x7F00, Size: 16},
		Op{Kind: OpScan, Thread: 2, Addr: 0x4000, Size: 5}, // 5 items, 0x4000 value bytes
		Op{Kind: OpTxEnd, Thread: 2},
	)
}

// encodeV2 hand-builds a v2 trace (15-byte op headers, uint16 thread),
// mirroring what the pre-v3 Writer emitted.
func encodeV2(ops []Op) []byte {
	var buf bytes.Buffer
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], version2)
	buf.Write(h[:])
	for _, op := range ops {
		var oh [opHeaderV2]byte
		oh[0] = op.Kind
		binary.LittleEndian.PutUint16(oh[1:], op.Thread)
		binary.LittleEndian.PutUint64(oh[3:], uint64(op.Addr))
		binary.LittleEndian.PutUint32(oh[11:], op.Size)
		buf.Write(oh[:])
		buf.Write(op.Data)
	}
	return buf.Bytes()
}

// opsEquivalent compares decoded ops field for field against the source.
func opsEquivalent(t *testing.T, got, want []Op) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		w := want[i]
		g := got[i]
		if g.Kind != w.Kind || g.Thread != w.Thread || g.Addr != w.Addr || g.Size != w.Size {
			t.Fatalf("op %d: got %v want %v", i, g, w)
		}
		if !bytes.Equal(g.Data, w.Data) {
			t.Fatalf("op %d: data %x want %x", i, g.Data, w.Data)
		}
	}
}

// TestWireGoldenFixtures pins all three wire versions to byte fixtures in
// testdata: every fixture must keep decoding to the same ops forever
// (cache compatibility), and the current writer must keep producing the
// v3 fixture byte for byte — the cell cache's capture keys hash trace
// bytes, so an encoder change that reorders output silently invalidates
// every cached replay. Regenerate with -update only for a deliberate
// format bump (and bump cacheSchema with it).
func TestWireGoldenFixtures(t *testing.T) {
	v3, err := WriteOps(goldenOpsV3())
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name string
		raw  []byte
		ops  []Op
	}{
		{"golden_v1.trc", encodeV1(goldenOpsV1()), goldenOpsV1()},
		{"golden_v2.trc", encodeV2(goldenOpsV2()), goldenOpsV2()},
		{"golden_v3.trc", v3, goldenOpsV3()},
	}
	for _, f := range fixtures {
		path := filepath.Join("testdata", f.name)
		if *updateWire {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, f.raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture (regenerate with -update): %v", err)
		}
		if !bytes.Equal(f.raw, want) {
			t.Errorf("%s: encoded bytes diverge from fixture (%d vs %d bytes); a deliberate format change needs -update AND a cacheSchema bump", f.name, len(f.raw), len(want))
		}
		got, err := NewReader(bytes.NewReader(want)).ReadAll()
		if err != nil {
			t.Fatalf("%s: decode: %v", f.name, err)
		}
		opsEquivalent(t, got, f.ops)
	}
}

// randomOps generates a valid random op stream: arbitrary interleaving of
// kinds across uint16 threads, stores from 1 byte to past the dict's 64-byte
// limit, payload distributions that exercise raw, delta, and dictionary
// encodings, and addresses that stress the per-thread signed deltas.
func randomOps(r *rand.Rand, n int) []Op {
	hot := make([]byte, 64)
	r.Read(hot)
	ops := make([]Op, n)
	for i := range ops {
		threads := []uint16{0, 1, 2, 255, 256, 65535}
		th := threads[r.Intn(len(threads))]
		addr := mem.PAddr(r.Int63n(1 << 40))
		switch r.Intn(10) {
		case 0:
			ops[i] = Op{Kind: OpTxBegin, Thread: th}
		case 1:
			ops[i] = Op{Kind: OpTxEnd, Thread: th}
		case 2:
			ops[i] = Op{Kind: OpTxAbort, Thread: th}
		case 3:
			sizes := []uint32{8, 16, 64, 4096}
			ops[i] = Op{Kind: OpLoad, Thread: th, Addr: addr, Size: sizes[r.Intn(len(sizes))]}
		case 4: // scan: Size carries the item count, Addr the value bytes
			ops[i] = Op{Kind: OpScan, Thread: th, Addr: addr, Size: uint32(r.Intn(1 << 10))}
		default:
			size := []int{1, 7, 8, 63, 64, 65, 200}[r.Intn(7)]
			data := make([]byte, size)
			switch r.Intn(3) {
			case 0: // fresh random payload (raw mode)
				r.Read(data)
			case 1: // repeat of a hot payload (dict mode)
				copy(data, hot)
			case 2: // near-miss of the hot payload (delta mode)
				copy(data, hot)
				data[r.Intn(size)] ^= byte(1 + r.Intn(255))
			}
			ops[i] = Op{Kind: OpStore, Thread: th, Addr: addr, Size: uint32(size), Data: data}
		}
	}
	return ops
}

// TestWireV3RoundtripProperty is the quick-check property: any valid op
// stream round-trips through the v3 encoder bit for bit — kinds, threads,
// addresses, sizes, payloads, scan item counts.
func TestWireV3RoundtripProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		ops := randomOps(r, int(nRaw%512))
		wire, err := WriteOps(ops)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		got, err := NewReader(bytes.NewReader(wire)).ReadAll()
		if err != nil {
			t.Logf("seed %d: decode: %v", seed, err)
			return false
		}
		if len(got) != len(ops) {
			t.Logf("seed %d: %d ops decoded, want %d", seed, len(got), len(ops))
			return false
		}
		for i := range ops {
			w, g := ops[i], got[i]
			if g.Kind != w.Kind || g.Thread != w.Thread || g.Addr != w.Addr ||
				g.Size != w.Size || !bytes.Equal(g.Data, w.Data) {
				t.Logf("seed %d op %d: got %+v want %+v", seed, i, g, w)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWireV3MidStreamFlush: Flush is a chunk boundary, not a terminator —
// a trace written across many flushes decodes identically to one written
// in a single burst (the dict/delta model persists across chunks).
func TestWireV3MidStreamFlush(t *testing.T) {
	ops := goldenOpsV3()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	opsEquivalent(t, got, ops)
}
