package sim

import "testing"

// TestStatsHandleNameEquivalence pins the contract between the interned
// Counter handles and the name-keyed convenience API: both views mutate
// the same underlying value, in either direction.
func TestStatsHandleNameEquivalence(t *testing.T) {
	s := NewStats()
	c := s.Counter("x")
	c.Inc()
	c.Add(4)
	if s.Get("x") != 5 {
		t.Fatalf("name view sees %d after handle writes, want 5", s.Get("x"))
	}
	s.Inc("x")
	s.Add("x", 10)
	if c.Value() != 16 {
		t.Fatalf("handle sees %d after name writes, want 16", c.Value())
	}
	s.Set("x", 3)
	if c.Value() != 3 {
		t.Fatalf("handle sees %d after Set, want 3", c.Value())
	}
	if snap := s.Snapshot(); len(snap) != 1 || snap[0] != (CounterSample{Name: "x", Value: 3}) {
		t.Fatalf("Snapshot = %v", snap)
	}
}

func TestStatsCounterInterned(t *testing.T) {
	s := NewStats()
	a := s.Counter("same")
	b := s.Counter("same")
	if a != b {
		t.Fatal("Counter must return the same handle for the same name")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "same" {
		t.Fatalf("Names = %v", names)
	}
}

// TestStatsResetKeepsHandles: Reset zeroes values but previously interned
// handles stay live — schemes cache them across harness Reset boundaries.
func TestStatsResetKeepsHandles(t *testing.T) {
	s := NewStats()
	c := s.Counter("k")
	c.Add(7)
	s.Reset()
	if c.Value() != 0 {
		t.Fatalf("handle value after Reset = %d, want 0", c.Value())
	}
	c.Inc()
	if s.Get("k") != 1 {
		t.Fatalf("handle detached from registry after Reset: Get = %d", s.Get("k"))
	}
}

func TestStatsCounterRegistersImmediately(t *testing.T) {
	s := NewStats()
	s.Counter("early")
	if s.Get("early") != 0 {
		t.Fatal("fresh counter must read zero")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "early" {
		t.Fatalf("interning must register the name: %v", names)
	}
}
