package sim

// Rand is a small, fast, deterministic pseudo-random number generator
// (xorshift64* variant). The simulator cannot use math/rand's global state
// because experiments must be reproducible bit-for-bit regardless of how
// many run in parallel; every workload thread owns a Rand seeded from the
// experiment seed and its thread ID.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has a zero fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &Rand{state: seed}
	// Warm up so that nearby seeds diverge quickly.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
