package sim

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the wire form of Histogram. Buckets are run-length
// compact only in the trivial sense that trailing zeros are dropped; all
// fields are int64 nanosecond/count values, so the round trip is exact.
type histogramJSON struct {
	Buckets []int64  `json:"buckets,omitempty"`
	Count   int64    `json:"count"`
	Sum     Duration `json:"sum"`
	Min     Duration `json:"min"`
	Max     Duration `json:"max"`
}

// MarshalJSON serializes the histogram exactly; the harness cell cache
// depends on Unmarshal(Marshal(h)) == h bit for bit.
func (h Histogram) MarshalJSON() ([]byte, error) {
	n := numBuckets
	for n > 0 && h.buckets[n-1] == 0 {
		n--
	}
	return json.Marshal(histogramJSON{
		Buckets: h.buckets[:n],
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
	})
}

// UnmarshalJSON restores a histogram serialized by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var v histogramJSON
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	if len(v.Buckets) > numBuckets {
		return fmt.Errorf("sim: histogram JSON has %d buckets, max %d", len(v.Buckets), numBuckets)
	}
	*h = Histogram{count: v.Count, sum: v.Sum, min: v.Min, max: v.Max}
	copy(h.buckets[:], v.Buckets)
	return nil
}
