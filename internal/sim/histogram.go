package sim

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// numBuckets is the bucket count: one per power of two of nanoseconds,
// covering the full Duration range.
const numBuckets = 64

// Histogram accumulates durations into logarithmic buckets (powers of two
// of nanoseconds) for cheap, allocation-free percentile estimates — the
// engine records every transaction's critical-path latency here.
type Histogram struct {
	buckets [numBuckets]int64
	count   int64
	sum     Duration
	min     Duration
	max     Duration
}

func bucketOf(d Duration) int {
	ns := int64(d / Nanosecond)
	if ns < 1 {
		return 0
	}
	b := 64 - bits.LeadingZeros64(uint64(ns))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the mean observation.
func (h *Histogram) Mean() Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / Duration(h.count)
}

// Min and Max report the extremes.
func (h *Histogram) Min() Duration { return h.min }
func (h *Histogram) Max() Duration { return h.max }

// Quantile estimates the q-th quantile (0 < q <= 1) from the bucket
// boundaries: the result is the upper bound of the bucket containing the
// quantile, i.e. accurate to within a factor of two — ample for latency
// tails.
func (h *Histogram) Quantile(q float64) Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			upper := Duration(1) << uint(b) * Nanosecond
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return upper
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for b, c := range other.buckets {
		h.buckets[b] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Since returns the distribution of the observations recorded after the
// earlier copy `before` was taken from the same histogram: bucket counts,
// count, and sum subtract exactly, so Count/Mean/Quantile describe the
// window precisely. Min and Max cannot be reconstructed per-window from
// cumulative extremes; the result carries the cumulative ones, which
// bound the window's. Harness windows use this to report per-measurement
// latency percentiles off the engine's cumulative histogram.
func (h *Histogram) Since(before Histogram) Histogram {
	out := *h
	for b := range out.buckets {
		out.buckets[b] -= before.buckets[b]
	}
	out.count -= before.count
	out.sum -= before.sum
	if out.count == 0 {
		return Histogram{}
	}
	return out
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram(empty)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v min=%v p50=%v p90=%v p99=%v max=%v",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.max)
	return b.String()
}
