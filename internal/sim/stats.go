package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a named-counter registry. Components register counters for
// events worth reporting (NVM bytes written, LLC misses, GC migrations...);
// the harness snapshots them to build the paper's tables. Stats is not safe
// for concurrent use: each simulated system owns one and the engine runs
// single-goroutine.
//
// Counters are interned: Counter returns a stable handle whose Inc/Add are
// a plain int64 bump with no map hash, for call sites that fire on every
// simulated event. The name-keyed Add/Inc/Set/Get remain for cold paths
// and out-of-tree schemes; both routes update the same underlying value.
type Stats struct {
	counters map[string]*Counter
	order    []string
}

// Counter is an interned handle to one named counter — an *int64 in all
// but syntax. Hot paths resolve the handle once (at construction) and
// bump it directly.
type Counter struct {
	v int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v += delta }

// Value reports the counter's current value.
func (c *Counter) Value() int64 { return c.v }

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]*Counter)}
}

// Counter interns name, registering it on first use, and returns its
// handle. Handles stay valid (and keep counting into the same slot) for
// the life of the registry, across Reset.
func (s *Stats) Counter(name string) *Counter {
	if c, ok := s.counters[name]; ok {
		return c
	}
	c := &Counter{}
	s.counters[name] = c
	s.order = append(s.order, name)
	return c
}

// Add increments counter name by delta, creating it on first use.
func (s *Stats) Add(name string, delta int64) { s.Counter(name).v += delta }

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Counter(name).v++ }

// Set overwrites counter name.
func (s *Stats) Set(name string, v int64) { s.Counter(name).v = v }

// Get reports counter name (zero if never touched).
//
// Deprecated for hot paths: Get pays a map hash per call. Code that reads
// a counter repeatedly should intern a handle with Counter and call
// Value; code that consumes the whole registry should use Snapshot.
func (s *Stats) Get(name string) int64 {
	if c, ok := s.counters[name]; ok {
		return c.v
	}
	return 0
}

// Names returns the registered counter names in first-use order.
func (s *Stats) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// CounterSample is one counter's value at snapshot time. Samples are
// plain data — ordered, comparable, and JSON-marshalable — so reports and
// CLIs can consume counters without string formatting or map iteration.
type CounterSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot returns every counter's current value in first-use
// registration order. Registration order is deterministic for a given
// system construction, so two identical runs snapshot identical slices.
func (s *Stats) Snapshot() []CounterSample {
	out := make([]CounterSample, len(s.order))
	for i, name := range s.order {
		out[i] = CounterSample{Name: name, Value: s.counters[name].v}
	}
	return out
}

// Reset zeroes every counter but keeps registration order (and every
// interned handle).
func (s *Stats) Reset() {
	for _, c := range s.counters {
		c.v = 0
	}
}

// String renders the counters sorted by name, one per line — handy in test
// failures.
func (s *Stats) String() string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %d\n", k, s.counters[k].v)
	}
	return b.String()
}

// Canonical counter names shared across packages. Keeping them here avoids
// typo-drift between the component that increments a counter and the
// harness that reads it.
const (
	StatNVMBytesRead    = "nvm.bytes_read"
	StatNVMBytesWritten = "nvm.bytes_written"
	StatNVMReads        = "nvm.reads"
	StatNVMWrites       = "nvm.writes"

	StatL1Hits    = "cache.l1_hits"
	StatL2Hits    = "cache.l2_hits"
	StatLLCHits   = "cache.llc_hits"
	StatLLCMisses = "cache.llc_misses"
	StatEvictions = "cache.dirty_evictions"

	StatTxCommitted = "tx.committed"
	StatTxAborted   = "tx.aborted"
	StatTxStores    = "tx.stores"
	StatTxLoads     = "tx.loads"

	StatScanOps   = "scan.ops"
	StatScanItems = "scan.items"

	StatGCRuns          = "gc.runs"
	StatGCBytesMigrated = "gc.bytes_migrated"
	StatGCBytesScanned  = "gc.bytes_scanned"
	StatGCBytesCoalesed = "gc.bytes_coalesced"
	StatGCOnDemand      = "gc.on_demand"

	StatMapHits      = "hoop.maptable_hits"
	StatMapMisses    = "hoop.maptable_misses"
	StatSliceFlushes = "hoop.slice_flushes"
	StatParallelRead = "hoop.parallel_reads"
	StatEvictBufHits = "hoop.evict_buffer_hits"
)
