package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is a named-counter registry. Components register counters for
// events worth reporting (NVM bytes written, LLC misses, GC migrations...);
// the harness snapshots them to build the paper's tables. Stats is not safe
// for concurrent use: each simulated system owns one and the engine runs
// single-goroutine.
type Stats struct {
	counters map[string]int64
	order    []string
}

// NewStats returns an empty registry.
func NewStats() *Stats {
	return &Stats{counters: make(map[string]int64)}
}

// Add increments counter name by delta, creating it on first use.
func (s *Stats) Add(name string, delta int64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Set overwrites counter name.
func (s *Stats) Set(name string, v int64) {
	if _, ok := s.counters[name]; !ok {
		s.order = append(s.order, name)
	}
	s.counters[name] = v
}

// Get reports counter name (zero if never touched).
func (s *Stats) Get(name string) int64 { return s.counters[name] }

// Names returns the registered counter names in first-use order.
func (s *Stats) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter but keeps registration order.
func (s *Stats) Reset() {
	for k := range s.counters {
		s.counters[k] = 0
	}
}

// String renders the counters sorted by name, one per line — handy in test
// failures.
func (s *Stats) String() string {
	names := make([]string, 0, len(s.counters))
	for k := range s.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%-40s %d\n", k, s.counters[k])
	}
	return b.String()
}

// Canonical counter names shared across packages. Keeping them here avoids
// typo-drift between the component that increments a counter and the
// harness that reads it.
const (
	StatNVMBytesRead    = "nvm.bytes_read"
	StatNVMBytesWritten = "nvm.bytes_written"
	StatNVMReads        = "nvm.reads"
	StatNVMWrites       = "nvm.writes"

	StatL1Hits    = "cache.l1_hits"
	StatL2Hits    = "cache.l2_hits"
	StatLLCHits   = "cache.llc_hits"
	StatLLCMisses = "cache.llc_misses"
	StatEvictions = "cache.dirty_evictions"

	StatTxCommitted = "tx.committed"
	StatTxAborted   = "tx.aborted"
	StatTxStores    = "tx.stores"
	StatTxLoads     = "tx.loads"

	StatGCRuns          = "gc.runs"
	StatGCBytesMigrated = "gc.bytes_migrated"
	StatGCBytesScanned  = "gc.bytes_scanned"
	StatGCBytesCoalesed = "gc.bytes_coalesced"
	StatGCOnDemand      = "gc.on_demand"

	StatMapHits      = "hoop.maptable_hits"
	StatMapMisses    = "hoop.maptable_misses"
	StatSliceFlushes = "hoop.slice_flushes"
	StatParallelRead = "hoop.parallel_reads"
	StatEvictBufHits = "hoop.evict_buffer_hits"
)
