package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must be all-zero")
	}
	h.Observe(100 * Nanosecond)
	h.Observe(200 * Nanosecond)
	h.Observe(300 * Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 200*Nanosecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100*Nanosecond || h.Max() != 300*Nanosecond {
		t.Fatalf("min/max %v %v", h.Min(), h.Max())
	}
	if h.String() == "" || h.String() == "histogram(empty)" {
		t.Fatal("String")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(Duration(i) * Microsecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	// Log buckets are accurate to a factor of two.
	if p50 < 250*Microsecond || p50 > 1100*Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < p50 {
		t.Fatal("p99 < p50")
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile extremes")
	}
}

func TestHistogramQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		var h Histogram
		for _, v := range raw {
			h.Observe(Duration(v%10_000_000) * Nanosecond)
		}
		if h.Count() == 0 {
			return true
		}
		prev := Duration(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(0.99) <= h.Max() && h.Quantile(0.1) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1 * Microsecond)
	b.Observe(3 * Microsecond)
	b.Observe(5 * Microsecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 1*Microsecond || a.Max() != 5*Microsecond {
		t.Fatalf("merge: %s", a.String())
	}
	if a.Mean() != 3*Microsecond {
		t.Fatalf("merged mean %v", a.Mean())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Fatal("merging empty changed the histogram")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset")
	}
}

// TestHistogramMergeEquivalence is the satellite property: splitting an
// observation stream across k histograms and merging them back is exactly
// equivalent — full struct equality, not just matching quantiles — to
// observing everything in one histogram. This is what makes per-shard
// histograms safe to fold into fleet-wide percentiles.
func TestHistogramMergeEquivalence(t *testing.T) {
	prop := func(raw []int64, k uint8) bool {
		parts := int(k%7) + 1
		var single Histogram
		shards := make([]Histogram, parts)
		for i, v := range raw {
			d := Duration(v)
			single.Observe(d)
			shards[i%parts].Observe(d)
		}
		var merged Histogram
		for i := range shards {
			merged.Merge(&shards[i])
		}
		return merged == single
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramSince(t *testing.T) {
	var h Histogram
	h.Observe(1 * Microsecond)
	h.Observe(2 * Microsecond)
	before := h
	h.Observe(10 * Microsecond)
	h.Observe(20 * Microsecond)
	w := h.Since(before)
	if w.Count() != 2 {
		t.Fatalf("window count = %d", w.Count())
	}
	if w.Mean() != 15*Microsecond {
		t.Fatalf("window mean = %v", w.Mean())
	}
	if p99 := w.Quantile(0.99); p99 < 10*Microsecond {
		t.Fatalf("window p99 = %v excludes the window's observations", p99)
	}
	if empty := h.Since(h); empty != (Histogram{}) {
		t.Fatal("Since(self) must be the zero histogram")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatal("negative observations clamp to zero")
	}
}

func TestHistogramZeroBucket(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	// Sub-nanosecond observations land in bucket 0 alongside zero.
	h.Observe(Picosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != h.Max() {
			// All mass is in bucket 0, whose upper bound (1 ns) clamps to
			// the observed max.
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, h.Max())
		}
	}
	if h.Min() != 0 || h.Max() != Picosecond {
		t.Fatalf("min/max %v %v", h.Min(), h.Max())
	}
}

func TestHistogramTopBucketSaturates(t *testing.T) {
	var h Histogram
	huge := Duration(math.MaxInt64)
	h.Observe(huge)
	h.Observe(huge - Nanosecond)
	// Duration is picosecond-based, so the largest observable value lands
	// well below the defensive numBuckets clamp — but both observations
	// must share the highest reachable bucket, and bucketOf must stay in
	// range even for MaxInt64.
	b := bucketOf(huge)
	if b < 0 || b >= numBuckets {
		t.Fatalf("bucketOf(MaxInt64) = %d out of range", b)
	}
	if h.buckets[b] != 2 {
		t.Fatalf("bucket %d holds %d, want 2", b, h.buckets[b])
	}
	// The bucket's nominal upper bound (2^b ns) overflows int64 here;
	// Quantile must still return a value inside the observed range.
	if got := h.Quantile(0.5); got < h.Min() || got > h.Max() {
		t.Fatalf("Quantile(0.5) = %v outside [min=%v, max=%v]", got, h.Min(), h.Max())
	}
}

func TestHistogramQuantileClampsToMin(t *testing.T) {
	var h Histogram
	// 1000 ns lands in the bucket with upper bound 1024 ns, but a lower
	// bound of 512 ns; the estimate must never fall below the observed min.
	h.Observe(1000 * Nanosecond)
	if got := h.Quantile(0.5); got != 1000*Nanosecond {
		t.Fatalf("Quantile(0.5) = %v, want clamped to max %v", got, 1000*Nanosecond)
	}
	h.Observe(1010 * Nanosecond)
	if got := h.Quantile(0.01); got < h.Min() || got > h.Max() {
		t.Fatalf("Quantile(0.01) = %v outside [min=%v, max=%v]", got, h.Min(), h.Max())
	}
}
