package sim

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must be all-zero")
	}
	h.Observe(100 * Nanosecond)
	h.Observe(200 * Nanosecond)
	h.Observe(300 * Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 200*Nanosecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 100*Nanosecond || h.Max() != 300*Nanosecond {
		t.Fatalf("min/max %v %v", h.Min(), h.Max())
	}
	if h.String() == "" || h.String() == "histogram(empty)" {
		t.Fatal("String")
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(Duration(i) * Microsecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	// Log buckets are accurate to a factor of two.
	if p50 < 250*Microsecond || p50 > 1100*Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 < p50 {
		t.Fatal("p99 < p50")
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("quantile extremes")
	}
}

func TestHistogramQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		var h Histogram
		for _, v := range raw {
			h.Observe(Duration(v%10_000_000) * Nanosecond)
		}
		if h.Count() == 0 {
			return true
		}
		prev := Duration(-1)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(0.99) <= h.Max() && h.Quantile(0.1) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1 * Microsecond)
	b.Observe(3 * Microsecond)
	b.Observe(5 * Microsecond)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 1*Microsecond || a.Max() != 5*Microsecond {
		t.Fatalf("merge: %s", a.String())
	}
	if a.Mean() != 3*Microsecond {
		t.Fatalf("merged mean %v", a.Mean())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Fatal("merging empty changed the histogram")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatal("negative observations clamp to zero")
	}
}
