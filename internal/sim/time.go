// Package sim provides the low-level simulation substrate shared by every
// component of the HOOP reproduction: a picosecond-resolution simulated
// clock, a deterministic pseudo-random number generator, and named
// statistics counters.
//
// Nothing in this package knows about caches, NVM, or transactions; it only
// models time and bookkeeping so that the rest of the simulator can stay
// deterministic and reproducible across runs.
package sim

import "fmt"

// Time is a point in simulated time, measured in picoseconds from the start
// of the simulation. Picosecond resolution lets us express both a 2.5 GHz
// CPU cycle (400 ps) and DRAM/NVM timing parameters exactly with integer
// arithmetic, avoiding floating-point drift in long runs.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common duration units.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%v", -t)
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.2fms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// Clock models the local time of one simulated agent (a CPU core, the
// garbage collector, a recovery thread). Components advance a clock by the
// latency of each operation they perform; the engine orders execution across
// agents by always running the agent with the smallest clock.
type Clock struct {
	now Time
	// freq is the agent's frequency in Hz; used to convert cycles to time.
	freq int64
}

// NewClock returns a clock starting at time zero for an agent running at
// freq Hz (e.g. 2.5e9 for the paper's 2.5 GHz cores).
func NewClock(freq int64) *Clock {
	if freq <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return &Clock{freq: freq}
}

// Now reports the agent's current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d panics: simulated time
// never flows backwards.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic("sim: cannot advance clock by negative duration")
	}
	c.now += d
	return c.now
}

// AdvanceCycles moves the clock forward by n CPU cycles at the clock's
// frequency.
func (c *Clock) AdvanceCycles(n int64) Time {
	return c.Advance(c.CycleTime(n))
}

// AdvanceTo moves the clock to t if t is later than the current time; used
// when an agent blocks on a shared resource that frees up at t.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// CycleTime converts n cycles at the clock's frequency to a Duration.
func (c *Clock) CycleTime(n int64) Duration {
	// ps per cycle = 1e12 / freq. For 2.5 GHz this is exactly 400.
	return Duration(n * (int64(Second) / c.freq))
}

// Cycles converts a duration to whole cycles at the clock's frequency,
// rounding up (a partial cycle still occupies the pipeline).
func (c *Clock) Cycles(d Duration) int64 {
	per := int64(Second) / c.freq
	return (int64(d) + per - 1) / per
}

// Freq reports the clock frequency in Hz.
func (c *Clock) Freq() int64 { return c.freq }

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
