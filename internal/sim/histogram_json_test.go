package sim

import (
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundtrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(Duration(i*i) * Nanosecond)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Histogram
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("roundtrip mismatch:\n got %v\nwant %v", &got, &h)
	}

	var empty, gotEmpty Histogram
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &gotEmpty); err != nil {
		t.Fatal(err)
	}
	if gotEmpty != empty {
		t.Fatal("empty roundtrip mismatch")
	}

	if err := json.Unmarshal([]byte(`{"buckets":[1,2,3]}`), &got); err != nil {
		t.Fatal(err)
	}
	if got.buckets[0] != 1 || got.buckets[2] != 3 || got.buckets[3] != 0 {
		t.Fatalf("short bucket decode wrong: %v", got.buckets[:4])
	}
}
