package sim

import "testing"

// Stats sits on every simulated event (NVM access, cache hit, tx commit),
// so its increment cost multiplies into every experiment's wall-clock.

func BenchmarkStatsIncByName(b *testing.B) {
	s := NewStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Inc(StatNVMWrites)
	}
}

func BenchmarkStatsAddByName(b *testing.B) {
	s := NewStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(StatNVMBytesWritten, 64)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(Duration(i%100000) * Nanosecond)
	}
}
