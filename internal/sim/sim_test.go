package sim

import (
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(2_500_000_000)
	if c.Now() != 0 {
		t.Fatal("new clock must start at zero")
	}
	c.Advance(100 * Nanosecond)
	if c.Now() != 100*Nanosecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(50 * Nanosecond) // earlier: no-op
	if c.Now() != 100*Nanosecond {
		t.Fatal("AdvanceTo moved the clock backwards")
	}
	c.AdvanceTo(200 * Nanosecond)
	if c.Now() != 200*Nanosecond {
		t.Fatalf("AdvanceTo: %v", c.Now())
	}
}

func TestClockCycles(t *testing.T) {
	c := NewClock(2_500_000_000) // 400 ps per cycle
	if got := c.CycleTime(1); got != 400*Picosecond {
		t.Fatalf("CycleTime(1) = %v", got)
	}
	c.AdvanceCycles(10)
	if c.Now() != 4*Nanosecond {
		t.Fatalf("10 cycles at 2.5GHz = %v, want 4ns", c.Now())
	}
	if got := c.Cycles(1 * Nanosecond); got != 3 {
		t.Fatalf("Cycles(1ns) = %d, want 3 (round up)", got)
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock(1e9).Advance(-1)
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500 * Picosecond:  "500ps",
		100 * Nanosecond:  "100.00ns",
		2500 * Nanosecond: "2.50us",
		10 * Millisecond:  "10.00ms",
		3 * Second:        "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d ps -> %q, want %q", int64(in), got, want)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MinTime(1, 2) != 1 || MaxTime(1, 2) != 2 {
		t.Fatal("MinTime/MaxTime broken")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewRand(8)
	same := 0
	a = NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(5, 9); v < 5 || v > 9 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(99)
	buckets := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		buckets[r.Intn(8)]++
	}
	for i, c := range buckets {
		if c < n/8-n/40 || c > n/8+n/40 {
			t.Fatalf("bucket %d has %d of %d (non-uniform)", i, c, n)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	if NewRand(0).Uint64() == 0 {
		t.Fatal("zero seed must still produce non-trivial output")
	}
}

func TestRandShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		a := make([]int, 20)
		for i := range a {
			a[i] = i
		}
		r.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
		seen := make([]bool, 20)
		for _, v := range a {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	s := NewStats()
	s.Inc("a")
	s.Add("a", 4)
	s.Set("b", 10)
	if s.Get("a") != 5 || s.Get("b") != 10 || s.Get("missing") != 0 {
		t.Fatalf("counters wrong: %v", s.Snapshot())
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0] != (CounterSample{Name: "a", Value: 5}) || snap[1] != (CounterSample{Name: "b", Value: 10}) {
		t.Fatalf("Snapshot = %v", snap)
	}
	s.Reset()
	if s.Get("a") != 0 || snap[0].Value != 5 {
		t.Fatal("Reset must not affect snapshots")
	}
	if s.String() == "" {
		t.Fatal("String should render counters")
	}
}
