package crashtest

import (
	"fmt"

	"hoop/internal/baseline/native"
	"hoop/internal/mem"
)

// Check is the prefix-consistency oracle. Transactions execute and commit
// sequentially, so the committed images form a chain image_0 (all zeros),
// image_1, ..., image_T. After a crash at journal point k and recovery,
// the home-region footprint must equal image_m for a single
// crash-order-consistent cut m:
//
//   - every transaction durable before k must survive: m >= mMin, the
//     number of transactions whose TxEnd completed within the prefix;
//   - no transaction that had not yet started writing may appear:
//     m <= mMax, the number of transactions that had begun by k.
//
// A transaction caught mid-flight (begun, not durable) may legitimately
// land on either side — a scheme is free to treat an almost-complete
// commit as committed (its data is in the log) or roll it back — but it
// must land entirely: any mix of two images is a torn-transaction leak.
//
// Aborted transactions never enter the image chain: whatever durable
// traces their writes or their in-flight rollback left behind, recovery
// must erase them at every crash point — an aborted value surviving to the
// home region is an abort leak, and since every write is a fresh random
// word, a leak never coincides with a committed image value.
//
// The Ideal scheme (no persistence mechanism) cannot meet this; it gets a
// relaxed per-word check instead, documenting data loss rather than
// claiming atomicity: every recovered word must hold a value some
// transaction begun by k wrote there (or zero) — no invented values.
func (run *Run) Check(k int, recovered *mem.Store) error {
	k = run.Journal.AlignPoint(k)
	if run.Scheme == native.SchemeName {
		return run.checkRelaxed(k, recovered)
	}
	committed := make([]TxRecord, 0, len(run.Txs))
	for _, tx := range run.Txs {
		if !tx.Aborted {
			committed = append(committed, tx)
		}
	}
	mMin, mMax := 0, 0
	for _, tx := range committed {
		if tx.DurableIdx <= k {
			mMin++
		}
		if tx.BeginIdx < k {
			mMax++
		}
	}

	// Walk the candidate cuts incrementally: image holds image_mMin first,
	// then one committed transaction is applied per step.
	image := make(map[mem.PAddr]uint64, len(run.Footprint))
	for _, tx := range committed[:mMin] {
		for a, v := range tx.Words {
			image[a] = v
		}
	}
	var firstErr error
	for m := mMin; ; m++ {
		if err := run.diff(recovered, image, k, m); err == nil {
			return nil
		} else if firstErr == nil {
			firstErr = err
		}
		if m == mMax {
			return fmt.Errorf("no consistent cut in [%d,%d] matches the recovered image: %w", mMin, mMax, firstErr)
		}
		for a, v := range committed[m].Words {
			image[a] = v
		}
	}
}

// diff compares the recovered footprint words against one candidate image.
func (run *Run) diff(recovered *mem.Store, image map[mem.PAddr]uint64, k, m int) error {
	for _, a := range run.Footprint {
		want := image[a] // zero if never written by txs 1..m
		if got := recovered.ReadWord(a); got != want {
			return fmt.Errorf("crash-point %d, cut m=%d: home word %#x = %#x, want %#x",
				k, m, uint64(a), got, want)
		}
	}
	return nil
}

// checkRelaxed allows torn and lost data but not invented data: each
// recovered footprint word must hold a value some transaction begun by k
// wrote there, or zero. Aborted transactions count too — the Ideal scheme
// has no rollback machinery, so an aborted write may legitimately sit
// durably home.
func (run *Run) checkRelaxed(k int, recovered *mem.Store) error {
	allowed := make(map[mem.PAddr]map[uint64]struct{}, len(run.Footprint))
	for _, a := range run.Footprint {
		allowed[a] = map[uint64]struct{}{0: {}}
	}
	for _, tx := range run.Txs {
		if tx.BeginIdx >= k {
			break
		}
		for a, v := range tx.Words {
			allowed[a][v] = struct{}{}
		}
	}
	for _, a := range run.Footprint {
		got := recovered.ReadWord(a)
		if _, ok := allowed[a][got]; !ok {
			return fmt.Errorf("crash-point %d: home word %#x = %#x, which no transaction begun by then ever wrote",
				k, uint64(a), got)
		}
	}
	return nil
}
