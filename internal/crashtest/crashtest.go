// Package crashtest is the crash-point fault-injection harness: it runs a
// deterministic transactional workload against a persistence scheme with
// the NVM persist journal attached, then declares a crash at an arbitrary
// journal index k — "every 8-byte unit persisted before k survives,
// nothing after does" — rebuilds the device image from the journal prefix,
// recovers a fresh scheme instance over it, and checks the recovered home
// region against a prefix-consistency oracle.
//
// Two drivers sit on top: Enumerate tries every crash point of a small
// workload (exhaustive torn-write coverage), and RandomSchedules samples
// one crash point per seeded workload for statistical coverage of larger
// ones. Both report the exact seed and crash point of a violation so any
// red run reproduces locally (and via cmd/hoopcrash).
package crashtest

import (
	"fmt"

	"hoop/internal/baseline/lad"
	"hoop/internal/baseline/lsm"
	"hoop/internal/baseline/native"
	"hoop/internal/baseline/osp"
	"hoop/internal/baseline/redo"
	"hoop/internal/baseline/undo"
	"hoop/internal/cache"
	"hoop/internal/hoop"
	"hoop/internal/mem"
	"hoop/internal/nvm"
	"hoop/internal/persist"
	"hoop/internal/persisttest"
	"hoop/internal/sim"
)

// Schemes lists every registered persistence scheme the harness drives —
// the seven schemes of the evaluation. The deliberately-buggy negative-
// control scheme (BuggySchemeName) is excluded.
func Schemes() []string {
	return []string{
		hoop.SchemeName,
		redo.SchemeName,
		undo.SchemeName,
		osp.SchemeName,
		lsm.SchemeName,
		lad.SchemeName,
		native.SchemeName,
	}
}

// Workload is a deterministic transactional workload: Txs sequential
// transactions of 1..MaxWords random word writes drawn from a small
// address pool (small pools force overwrites, which is what makes torn
// commits observable), with occasional cache evictions between
// transactions.
type Workload struct {
	Seed      uint64
	Txs       int
	MaxWords  int     // max word writes per transaction
	AddrWords int     // address pool: words 0..AddrWords-1 of the home region
	EvictProb float64 // chance of an eviction after each transaction
	Cores     int
	// AbortEvery, when positive, aborts every AbortEvery-th transaction
	// after its writes instead of committing it, exposing the abort path's
	// own crash windows (undo rolling images home, log neutralization, OOP
	// slice discard) to the journal. Aborted transactions must leave no
	// durable residue at any crash point.
	AbortEvery int
}

// DefaultWorkload is sized for exhaustive crash-point enumeration: small
// enough that every scheme's full journal enumerates in well under a
// second, large enough to cover multi-line transactions, overwrites,
// evictions, and (for HOOP/LSM) GC migrations.
func DefaultWorkload(seed uint64) Workload {
	return Workload{Seed: seed, Txs: 8, MaxWords: 4, AddrWords: 96, EvictProb: 0.3, Cores: 2}
}

// AbortWorkload is DefaultWorkload with every third transaction aborting
// after its writes, so exhaustive enumeration also lands crash points
// inside each scheme's abort path (undo images rolling home, log
// neutralization, OOP slice discard).
func AbortWorkload(seed uint64) Workload {
	w := DefaultWorkload(seed)
	w.Txs = 9
	w.AbortEvery = 3
	return w
}

// TxRecord is one executed transaction: its final word image and the
// journal window it occupied. BeginIdx is the journal length when the
// transaction began; DurableIdx is the length when TxEnd returned, i.e.
// the point from which the transaction must survive any crash. For an
// aborted transaction DurableIdx is the length when TxAbort returned, and
// the record's words must NOT survive any crash point.
type TxRecord struct {
	Words      map[mem.PAddr]uint64
	BeginIdx   int
	DurableIdx int
	Aborted    bool
}

// Run is an executed workload plus everything needed to crash it anywhere.
type Run struct {
	Scheme    string
	Workload  Workload
	Journal   *nvm.Journal
	Txs       []TxRecord
	Footprint []mem.PAddr // sorted distinct word addresses ever written
}

// geometryFor keeps recovery scans cheap: exhaustive enumeration performs
// one full recovery per crash point, and log-scan cost is proportional to
// the log region's record capacity. HOOP needs extra OOP room for 2 MB
// aligned data blocks.
func geometryFor(scheme string) persisttest.Geometry {
	g := persisttest.Geometry{HomeBytes: 64 << 20, OOPBytes: 1 << 20}
	if scheme == hoop.SchemeName {
		g.OOPBytes = 8 << 20
	}
	return g
}

// optFor tunes scheme construction for the harness: tiny commit rings and
// aggressive GC periods so garbage collection (and its crash windows:
// half-migrated words, watermark publication, block recycling) actually
// runs inside a microseconds-long workload.
func optFor(scheme string) any {
	switch scheme {
	case hoop.SchemeName:
		cfg := hoop.DefaultConfig()
		cfg.CommitLogBytes = 64 << 10
		cfg.GCPeriod = 2 * sim.Microsecond
		return cfg
	case lsm.SchemeName:
		cfg := lsm.DefaultConfig()
		cfg.GCPeriod = 2 * sim.Microsecond
		return cfg
	}
	return nil
}

// Execute runs the workload against a freshly built scheme with the
// persist journal attached (before construction, so durable-format
// initialization is journaled too) and records each transaction's journal
// window.
func Execute(scheme string, w Workload) (*Run, error) {
	if w.Cores < 1 {
		w.Cores = 1
	}
	ctx := persisttest.NewContextGeom(w.Cores, geometryFor(scheme))
	j := ctx.Dev.AttachJournal()
	s, err := persist.Build(ctx, scheme, optFor(scheme))
	if err != nil {
		return nil, err
	}
	run := &Run{Scheme: scheme, Workload: w, Journal: j}
	r := sim.NewRand(w.Seed)
	seen := make(map[mem.PAddr]struct{})
	for i := 0; i < w.Txs; i++ {
		words := make(map[mem.PAddr]uint64, w.MaxWords)
		for n := 1 + r.Intn(w.MaxWords); len(words) < n; {
			words[mem.PAddr(r.Intn(w.AddrWords))*mem.WordSize] = r.Uint64()
		}
		begin := j.Len()
		abort := w.AbortEvery > 0 && (i+1)%w.AbortEvery == 0
		if abort {
			persisttest.RunTxAbort(s, ctx, i%w.Cores, words)
		} else {
			persisttest.RunTx(s, ctx, i%w.Cores, words)
		}
		run.Txs = append(run.Txs, TxRecord{Words: words, BeginIdx: begin, DurableIdx: j.Len(), Aborted: abort})
		for a := range words {
			seen[a] = struct{}{}
		}
		s.Tick(sim.Time(i+1) * sim.Microsecond)
		if r.Bool(w.EvictProb) {
			a := mem.PAddr(r.Intn(w.AddrWords)) * mem.WordSize
			s.Evict(i%w.Cores, cache.Eviction{Line: mem.LineAddr(a), Persistent: r.Bool(0.7)}, 0)
		}
	}
	for a := range seen {
		run.Footprint = append(run.Footprint, a)
	}
	sortAddrs(run.Footprint)
	return run, nil
}

// RecoverAt reconstructs the durable image at crash point k, builds a
// fresh scheme instance over it (volatile state gone, exactly as after a
// power failure), runs its recovery, and returns the recovered store.
func (run *Run) RecoverAt(k int) (*mem.Store, error) {
	st := run.Journal.ReconstructAt(k)
	ctx := persisttest.NewContextOn(st, run.Workload.Cores, geometryFor(run.Scheme))
	s, err := persist.Build(ctx, run.Scheme, optFor(run.Scheme))
	if err != nil {
		return nil, fmt.Errorf("rebuild at k=%d: %w", k, err)
	}
	if _, err := s.Recover(2); err != nil {
		return nil, fmt.Errorf("recover at k=%d: %w", k, err)
	}
	return st, nil
}

// Violation reports a crash point whose recovered image failed the oracle.
type Violation struct {
	Scheme string
	Seed   uint64
	Point  int
	Err    error
}

func (v *Violation) Error() string {
	return fmt.Sprintf("scheme=%s seed=%d crash-point=%d: %v", v.Scheme, v.Seed, v.Point, v.Err)
}

// Enumerate executes the workload once and checks every crash point in
// ascending order, so a returned Violation carries the minimal failing
// point. It reports how many points were checked.
func Enumerate(scheme string, w Workload) (int, *Violation) {
	run, err := Execute(scheme, w)
	if err != nil {
		return 0, &Violation{Scheme: scheme, Seed: w.Seed, Point: -1, Err: err}
	}
	points := run.Journal.CrashPoints()
	for _, k := range points {
		st, err := run.RecoverAt(k)
		if err == nil {
			err = run.Check(k, st)
		}
		if err != nil {
			return len(points), &Violation{Scheme: scheme, Seed: w.Seed, Point: k, Err: err}
		}
	}
	return len(points), nil
}

// RandomSchedules runs n independent schedules: seed seedBase+i drives
// both the workload and the choice of one random crash point. Seeds are
// tried in ascending order, so a returned Violation carries the minimal
// failing seed.
func RandomSchedules(scheme string, base Workload, seedBase uint64, n int) *Violation {
	for i := 0; i < n; i++ {
		w := base
		w.Seed = seedBase + uint64(i)
		run, err := Execute(scheme, w)
		if err != nil {
			return &Violation{Scheme: scheme, Seed: w.Seed, Point: -1, Err: err}
		}
		r := sim.NewRand(w.Seed ^ 0x9E3779B97F4A7C15)
		k := run.Journal.AlignPoint(r.Intn(run.Journal.Len() + 1))
		st, err := run.RecoverAt(k)
		if err == nil {
			err = run.Check(k, st)
		}
		if err != nil {
			return &Violation{Scheme: scheme, Seed: w.Seed, Point: k, Err: err}
		}
	}
	return nil
}

func sortAddrs(a []mem.PAddr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
