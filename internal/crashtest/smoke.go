package crashtest

import (
	"fmt"

	"hoop/internal/engine"
	"hoop/internal/workload"
)

// Smoke runs a registry workload on the full simulated machine under one
// scheme, crashes it mid-stream, recovers, and checks the durable home
// region against the committed-write oracle. It complements the
// journal-level drivers in this package: Enumerate/RandomSchedules cover
// every torn-write window of a tiny synthetic word workload, while Smoke
// pushes real op streams — range scans, read-modify-write aborts, bulk
// inserts — through the same crash/recover/verify cycle.
func Smoke(scheme string, wl workload.Workload, seed uint64, txs int) error {
	if scheme == engine.SchemeNative {
		return fmt.Errorf("scheme %s has no persistence guarantee to verify", scheme)
	}
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	cfg.TrackOracle = true
	if wl.NeedsAbort {
		cfg.Abortable = true
	}
	sys, err := engine.New(cfg)
	if err != nil {
		return fmt.Errorf("%s/%s: %w", scheme, wl.Name, err)
	}
	runners := wl.Runners(sys, seed)
	sys.Run(runners, txs)
	sys.Crash()
	if _, err := sys.Recover(2); err != nil {
		return fmt.Errorf("%s/%s: recovery failed: %w", scheme, wl.Name, err)
	}
	if mm := sys.VerifyRecovered(4); len(mm) != 0 {
		return fmt.Errorf("%s/%s: recovered state diverges from committed oracle: %+v", scheme, wl.Name, mm)
	}
	return nil
}
