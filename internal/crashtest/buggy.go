package crashtest

import (
	"encoding/binary"
	"fmt"

	"hoop/internal/baseline/logring"
	"hoop/internal/cache"
	"hoop/internal/mem"
	"hoop/internal/persist"
	"hoop/internal/sim"
)

// BuggySchemeName is the deliberately-broken negative control: a redo-style
// log whose TxEnd persists the commit marker BEFORE the transaction's data
// records. Between operations the bug is invisible — by the time TxEnd
// returns, marker and data are all durable — but a crash landing between
// the marker and the data records makes recovery replay a half-written
// transaction. The oracle must reject it; if it ever passes, the harness
// has lost its teeth.
const BuggySchemeName = "Buggy-CommitFirst"

// BuggyAbortLeakName is the second negative control, aimed at the abort
// path: its commit ordering is correct (data records first, marker last),
// but TxAbort durably leaks the first buffered write to its home address
// before dropping the write set. Recovery never touches home words without
// a commit marker, so the leaked value survives every later crash point —
// the abort-injecting oracle (Workload.AbortEvery > 0) must reject it.
const BuggyAbortLeakName = "Buggy-AbortLeak"

// Buggy log record payload: [flags|txid u64][word addr u64][value u64].
const (
	buggyPayload    = 24
	buggyCommitFlag = uint64(1) << 63
)

type buggyScheme struct {
	name string
	// commitFirst plants the ordering bug (marker before data);
	// leakAborts plants the abort bug (first write escapes to home).
	commitFirst bool
	leakAborts  bool

	ctx   persist.Context
	alloc persist.TxnAllocator
	ring  *logring.Ring
	// Per-core write sets of the live transaction, in program order.
	words [][]persist.WordUpdate

	statTxCommitted *sim.Counter
}

func init() {
	register := func(name string, commitFirst, leakAborts bool) {
		persist.Register(name, func(ctx persist.Context, opt any) (persist.Scheme, error) {
			if opt != nil {
				return nil, fmt.Errorf("%s: scheme takes no options, got %T", name, opt)
			}
			ring, err := logring.New(ctx.Layout.OOP, buggyPayload)
			if err != nil {
				return nil, err
			}
			return &buggyScheme{
				name:            name,
				commitFirst:     commitFirst,
				leakAborts:      leakAborts,
				ctx:             ctx,
				ring:            ring,
				words:           make([][]persist.WordUpdate, ctx.Cores),
				statTxCommitted: ctx.Stats.Counter(sim.StatTxCommitted),
			}, nil
		})
	}
	register(BuggySchemeName, true, false)
	register(BuggyAbortLeakName, false, true)
}

func (s *buggyScheme) Name() string { return s.name }

func (s *buggyScheme) Properties() persist.Properties {
	return persist.Properties{ReadLatency: "Low", OnCriticalPath: false, NeedFlushFence: true, WriteTraffic: "Medium"}
}

func (s *buggyScheme) TxBegin(core int, now sim.Time) (persist.TxID, sim.Time) {
	s.words[core] = s.words[core][:0]
	return s.alloc.Next(), now
}

func (s *buggyScheme) Store(core int, tx persist.TxID, addr mem.PAddr, val []byte, now sim.Time) sim.Time {
	s.words[core] = append(s.words[core], persist.WordsOf(addr, val)...)
	return now
}

func (s *buggyScheme) appendRec(word1 uint64, addr mem.PAddr, val uint64) mem.PAddr {
	if s.ring.Full() {
		panic("crashtest: buggy scheme log full (enlarge the OOP region)")
	}
	var payload [buggyPayload]byte
	binary.LittleEndian.PutUint64(payload[0:], word1)
	binary.LittleEndian.PutUint64(payload[8:], uint64(addr))
	binary.LittleEndian.PutUint64(payload[16:], val)
	_, at := s.ring.Append(s.ctx.Dev.Store(), payload[:])
	return at
}

// TxEnd persists the transaction's log records. The commit-first variant
// plants the ordering bug — marker persisted before the data records it
// vouches for; the abort-leak variant orders correctly (data, drain,
// marker).
func (s *buggyScheme) TxEnd(core int, tx persist.TxID, now sim.Time) sim.Time {
	if len(s.words[core]) > 0 {
		if s.commitFirst {
			at := s.appendRec(uint64(tx)|buggyCommitFlag, 0, 0)
			now = s.ctx.Ctrl.Write(at, buggyPayload, now)
			for _, w := range s.words[core] {
				at := s.appendRec(uint64(tx), w.Addr, binary.LittleEndian.Uint64(w.Val[:]))
				s.ctx.Ctrl.PostWrite(core, at, buggyPayload, now)
			}
			now = s.ctx.Ctrl.Drain(core, now)
		} else {
			for _, w := range s.words[core] {
				at := s.appendRec(uint64(tx), w.Addr, binary.LittleEndian.Uint64(w.Val[:]))
				s.ctx.Ctrl.PostWrite(core, at, buggyPayload, now)
			}
			now = s.ctx.Ctrl.Drain(core, now)
			at := s.appendRec(uint64(tx)|buggyCommitFlag, 0, 0)
			now = s.ctx.Ctrl.Write(at, buggyPayload, now)
		}
	}
	s.words[core] = s.words[core][:0]
	s.statTxCommitted.Inc()
	return now
}

// TxAbort drops the volatile write set — which would be a correct abort
// for a redo-style log — except that the abort-leak variant first writes
// the set's first word durably to its home address, leaving exactly the
// residue an abort must never leave.
func (s *buggyScheme) TxAbort(core int, tx persist.TxID, now sim.Time) sim.Time {
	if s.leakAborts && len(s.words[core]) > 0 {
		w := s.words[core][0]
		s.ctx.Dev.Store().Write(w.Addr, w.Val[:])
		now = s.ctx.Ctrl.Write(w.Addr, len(w.Val), now)
	}
	s.words[core] = s.words[core][:0]
	return now
}

func (s *buggyScheme) ReadMiss(core int, addr mem.PAddr, now sim.Time) (sim.Time, bool) {
	return s.ctx.Ctrl.Read(mem.LineAddr(addr), mem.LineSize, now), false
}

func (s *buggyScheme) Evict(core int, ev cache.Eviction, now sim.Time) sim.Time {
	if ev.Persistent {
		return now // transactional data lives in the log until recovery
	}
	lineAddr := mem.LineAddr(ev.Line)
	var buf [mem.LineSize]byte
	s.ctx.View.Read(lineAddr, buf[:])
	s.ctx.Dev.Store().Write(lineAddr, buf[:])
	s.ctx.Ctrl.PostWrite(core, lineAddr, mem.LineSize, now)
	return now
}

func (s *buggyScheme) Tick(now sim.Time) {}

func (s *buggyScheme) Crash() {
	for i := range s.words {
		s.words[i] = nil
	}
	s.ctx.Ctrl.ResetPending()
}

// Recover replays the data records of every transaction with a commit
// marker, in log order, then truncates the log. The replay itself is
// faithful — the corruption comes from the append order in TxEnd.
func (s *buggyScheme) Recover(threads int) (sim.Duration, error) {
	store := s.ctx.Dev.Store()
	s.ring.ResetVolatile(store)
	committed := make(map[uint64]struct{})
	type rec struct {
		tx   uint64
		addr mem.PAddr
		val  uint64
	}
	var recs []rec
	s.ring.Scan(store, func(seq uint64, at mem.PAddr, payload []byte) {
		word1 := binary.LittleEndian.Uint64(payload[0:])
		if word1&buggyCommitFlag != 0 {
			committed[word1&^buggyCommitFlag] = struct{}{}
			return
		}
		recs = append(recs, rec{
			tx:   word1,
			addr: mem.PAddr(binary.LittleEndian.Uint64(payload[8:])),
			val:  binary.LittleEndian.Uint64(payload[16:]),
		})
	})
	for _, r := range recs {
		if _, ok := committed[r.tx]; ok {
			store.WriteWord(r.addr, r.val)
		}
	}
	s.ring.Truncate(store, s.ring.NextSeq()-1)
	return sim.Millisecond, nil
}
