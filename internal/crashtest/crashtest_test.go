package crashtest

import (
	"strings"
	"testing"
)

// TestEnumerateAllSchemes is the exhaustive tentpole check: every scheme
// must pass the prefix-consistency oracle at every single crash point of
// the default workload — every torn slice, torn commit record, half-flipped
// bitmap, and half-applied GC migration the journal can express.
func TestEnumerateAllSchemes(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			w := DefaultWorkload(1)
			points, v := Enumerate(scheme, w)
			if v != nil {
				t.Fatalf("%v\nrepro: go run ./cmd/hoopcrash -scheme %s -mode exhaustive -seed %d", v, scheme, w.Seed)
			}
			if points < w.Txs {
				t.Fatalf("only %d crash points enumerated; journal not recording?", points)
			}
			t.Logf("%d crash points, all consistent", points)
		})
	}
}

// TestRandomSchedulesAllSchemes samples many independent seeded workloads
// with one random crash point each — statistical coverage of workload
// shapes exhaustive enumeration of a single seed cannot reach.
func TestRandomSchedulesAllSchemes(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 25
	}
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			if v := RandomSchedules(scheme, DefaultWorkload(0), 100, n); v != nil {
				t.Fatalf("%v\nrepro: go run ./cmd/hoopcrash -scheme %s -mode random -seed %d -seeds 1", v, scheme, v.Seed)
			}
		})
	}
}

// TestBuggySchemeRejected proves the harness has teeth: the deliberately
// commit-marker-before-data scheme must be caught by exhaustive
// enumeration. If this test ever finds no violation, the journal or the
// oracle has gone blind.
func TestBuggySchemeRejected(t *testing.T) {
	points, v := Enumerate(BuggySchemeName, DefaultWorkload(1))
	if v == nil {
		t.Fatalf("oracle accepted the buggy commit-before-data scheme at all %d crash points", points)
	}
	if v.Point < 0 {
		t.Fatalf("buggy scheme failed to execute rather than failing the oracle: %v", v)
	}
	if !strings.Contains(v.Err.Error(), "no consistent cut") {
		t.Fatalf("expected a consistency violation, got: %v", v)
	}
	t.Logf("rejected as expected: %v", v)
}

// TestEnumerateAbortsAllSchemes extends exhaustive coverage to crash
// points inside aborts: every third transaction aborts after its writes,
// so the journal records each scheme's abort-path windows (undo images
// rolling home, log neutralization, OOP slice discard) and every crash
// point in them must recover to an image without the aborted writes.
func TestEnumerateAbortsAllSchemes(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			w := AbortWorkload(1)
			points, v := Enumerate(scheme, w)
			if v != nil {
				t.Fatalf("%v\nrepro: go run ./cmd/hoopcrash -scheme %s -mode exhaustive -seed %d -txs %d -abortevery %d", v, scheme, w.Seed, w.Txs, w.AbortEvery)
			}
			t.Logf("%d crash points with injected aborts, all consistent", points)
		})
	}
}

// TestRandomSchedulesWithAborts samples seeded abort-injecting workloads
// with one random crash point each, for abort-path shapes a single seed's
// enumeration cannot reach.
func TestRandomSchedulesWithAborts(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 15
	}
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			if v := RandomSchedules(scheme, AbortWorkload(0), 300, n); v != nil {
				t.Fatalf("%v\nrepro: go run ./cmd/hoopcrash -scheme %s -mode random -seed %d -seeds 1 -txs 9 -abortevery 3", v, scheme, v.Seed)
			}
		})
	}
}

// TestAbortLeakSchemeRejected proves the abort oracle has teeth: the
// scheme whose TxAbort durably leaks its first write must be caught. The
// commit path of this scheme is correct, so it passes the abort-free
// workload — only abort injection exposes it.
func TestAbortLeakSchemeRejected(t *testing.T) {
	if points, v := Enumerate(BuggyAbortLeakName, DefaultWorkload(1)); v != nil {
		t.Fatalf("abort-leak scheme must pass the abort-free workload (its commit path is correct), failed at %d of %d points: %v", v.Point, points, v)
	}
	points, v := Enumerate(BuggyAbortLeakName, AbortWorkload(1))
	if v == nil {
		t.Fatalf("oracle accepted the abort-leaking scheme at all %d crash points", points)
	}
	if v.Point < 0 {
		t.Fatalf("abort-leak scheme failed to execute rather than failing the oracle: %v", v)
	}
	t.Logf("rejected as expected: %v", v)
}

// TestEnumerateSecondSeed runs a second seed through two representative
// schemes so exhaustive coverage is not hostage to one workload shape.
func TestEnumerateSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("second exhaustive seed skipped in short mode")
	}
	for _, scheme := range []string{Schemes()[0], Schemes()[1]} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			if _, v := Enumerate(scheme, DefaultWorkload(7)); v != nil {
				t.Fatal(v)
			}
		})
	}
}
