package crashtest

import "testing"

// FuzzCrashRecovery is the Go-native fuzz surface over the crash harness:
// the fuzzer mutates the workload seed, the scheme choice, and the crash
// point. Run it with, e.g.:
//
//	go test ./internal/crashtest -run '^$' -fuzz FuzzCrashRecovery -fuzztime 30s
//
// Any crasher is fully described by its (scheme, seed, point) triple and
// reproduces via cmd/hoopcrash.
func FuzzCrashRecovery(f *testing.F) {
	schemes := Schemes()
	f.Add(uint64(1), uint8(0), uint32(0))
	f.Add(uint64(2), uint8(1), uint32(50))
	f.Add(uint64(3), uint8(3), uint32(1000))
	f.Fuzz(func(t *testing.T, seed uint64, schemeIdx uint8, point uint32) {
		scheme := schemes[int(schemeIdx)%len(schemes)]
		w := DefaultWorkload(seed)
		w.Txs = 4 // keep each fuzz iteration cheap
		run, err := Execute(scheme, w)
		if err != nil {
			t.Fatalf("scheme=%s seed=%d: %v", scheme, seed, err)
		}
		k := run.Journal.AlignPoint(int(point) % (run.Journal.Len() + 1))
		st, err := run.RecoverAt(k)
		if err == nil {
			err = run.Check(k, st)
		}
		if err != nil {
			t.Fatalf("scheme=%s seed=%d crash-point=%d: %v\nrepro: go run ./cmd/hoopcrash -scheme %s -mode exhaustive -seed %d -txs %d",
				scheme, seed, k, err, scheme, seed, w.Txs)
		}
	})
}
