package cache

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

func newHier(t *testing.T, cores int) (*Hierarchy, *sim.Stats) {
	t.Helper()
	st := sim.NewStats()
	return New(DefaultConfig(cores), st), st
}

func addr(line int) mem.PAddr { return mem.PAddr(line * mem.LineSize) }

func TestMissThenHitLadder(t *testing.T) {
	h, st := newHier(t, 2)
	r := h.Lookup(0, addr(1), false, false)
	if r.HitLevel != 0 {
		t.Fatal("cold access must miss")
	}
	h.Fill(0, addr(1), false, false)
	r = h.Lookup(0, addr(1), false, false)
	if r.HitLevel != 1 {
		t.Fatalf("after fill, hit level = %d", r.HitLevel)
	}
	if r.Latency != DefaultConfig(2).L1Latency {
		t.Fatalf("L1 hit latency = %v", r.Latency)
	}
	if st.Get(sim.StatL1Hits) != 1 || st.Get(sim.StatLLCMisses) != 1 {
		t.Fatalf("stats: %s", st)
	}
}

func TestOtherCoreHitsSharedLLC(t *testing.T) {
	h, _ := newHier(t, 2)
	h.Fill(0, addr(7), false, false)
	r := h.Lookup(1, addr(7), false, false)
	if r.HitLevel != 3 {
		t.Fatalf("core 1 should hit the shared LLC, got level %d", r.HitLevel)
	}
	// And now it is in core 1's private levels too.
	if r := h.Lookup(1, addr(7), false, false); r.HitLevel != 1 {
		t.Fatalf("promotion failed, level %d", r.HitLevel)
	}
}

func TestWriteInvalidatesOtherCores(t *testing.T) {
	h, _ := newHier(t, 2)
	h.Fill(0, addr(3), false, false)
	h.Fill(1, addr(3), false, false)
	// Core 0 writes: core 1's private copies must go.
	if r := h.Lookup(0, addr(3), true, true); r.HitLevel != 1 {
		t.Fatalf("write should hit L1, level %d", r.HitLevel)
	}
	if r := h.Lookup(1, addr(3), false, false); r.HitLevel == 1 || r.HitLevel == 2 {
		t.Fatalf("core 1 should have been invalidated, hit level %d", r.HitLevel)
	}
}

func TestLLCEvictionReturnsDirtyPersistent(t *testing.T) {
	cfg := DefaultConfig(1)
	// Tiny LLC: 2 sets x 2 ways forces quick evictions.
	cfg.LLCSize = 4 * mem.LineSize
	cfg.LLCWays = 2
	cfg.L1Size = 4 * mem.LineSize
	cfg.L1Ways = 1
	cfg.L2Size = 8 * mem.LineSize
	cfg.L2Ways = 2
	h := New(cfg, sim.NewStats())
	// Dirty+persistent line 0, then displace it with same-set fills.
	h.Fill(0, addr(0), true, true)
	var evs []Eviction
	for i := 1; i < 16; i++ {
		evs = append(evs, h.Fill(0, addr(i*2), false, false)...) // stride hits set 0
	}
	found := false
	for _, e := range evs {
		if e.Line == addr(0) {
			found = true
			if !e.Persistent {
				t.Fatal("persistent bit lost on eviction")
			}
		}
	}
	if !found {
		t.Fatal("dirty line was never evicted")
	}
}

func TestFlushLine(t *testing.T) {
	h, _ := newHier(t, 1)
	h.Fill(0, addr(9), true, true)
	dirty, pers := h.FlushLine(addr(9), false)
	if !dirty || !pers {
		t.Fatal("flush should report dirty+persistent")
	}
	// Second flush: clean now.
	dirty, _ = h.FlushLine(addr(9), false)
	if dirty {
		t.Fatal("line should be clean after flush")
	}
	if !h.Contains(addr(9)) {
		t.Fatal("non-invalidating flush must keep the line")
	}
	h.FlushLine(addr(9), true)
	if h.Contains(addr(9)) {
		t.Fatal("invalidating flush must drop the line")
	}
}

func TestClearPersistent(t *testing.T) {
	h, _ := newHier(t, 1)
	h.Fill(0, addr(5), true, true)
	h.ClearPersistent(addr(5))
	_, pers := h.FlushLine(addr(5), false)
	if pers {
		t.Fatal("persistent bit should have been cleared")
	}
}

func TestDropAll(t *testing.T) {
	h, _ := newHier(t, 2)
	for i := 0; i < 50; i++ {
		h.Fill(i%2, addr(i), true, false)
	}
	if len(h.DirtyLines()) == 0 {
		t.Fatal("expected dirty lines")
	}
	h.DropAll()
	if len(h.DirtyLines()) != 0 || h.Contains(addr(1)) {
		t.Fatal("DropAll must erase everything")
	}
}

func TestDirtyEvictionsSortedAndFlagged(t *testing.T) {
	h, _ := newHier(t, 1)
	h.Fill(0, addr(30), true, true)
	h.Fill(0, addr(10), true, false)
	h.Fill(0, addr(20), false, false)
	evs := h.DirtyEvictions()
	if len(evs) != 2 {
		t.Fatalf("want 2 dirty lines, got %d", len(evs))
	}
	if evs[0].Line != addr(10) || evs[1].Line != addr(30) {
		t.Fatalf("not sorted: %+v", evs)
	}
	if evs[0].Persistent || !evs[1].Persistent {
		t.Fatalf("persistent flags wrong: %+v", evs)
	}
}

func TestLRUWithinSet(t *testing.T) {
	l := newLevel(4*mem.LineSize, 4, 0) // one set, 4 ways
	for i := uint64(0); i < 4; i++ {
		l.insert(i, false, false)
	}
	l.lookup(0) // touch 0 -> victim should be 1
	v := l.insert(99, false, false)
	if !v.valid || v.idx != 1 {
		t.Fatalf("victim = %+v, want idx 1", v)
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.L1Size/mem.LineSize/cfg.L1Ways != 128 {
		t.Fatal("L1 must have 128 sets (32KB, 4-way)")
	}
	if cfg.LLCSize != 2<<20 || cfg.LLCWays != 16 {
		t.Fatal("LLC must be 2MB 16-way (Table II)")
	}
}
