// Package cache models the volatile cache hierarchy from Table II of the
// HOOP paper: per-core 32 KB 4-way L1 and 256 KB 8-way L2, and a shared
// 2 MB 16-way inclusive LLC, all with 64-byte lines and LRU replacement.
//
// The model is tag-only (no data bytes): functional memory contents live in
// the persistence scheme and the NVM store, which is exactly the separation
// a crash needs — everything in this package is volatile and vanishes on
// power failure. What the hierarchy does carry, faithfully to the paper, is
// the per-line dirty bit and HOOP's extra "persistent bit" marking lines
// modified inside a transaction (§III-G), because where an evicted line must
// be written (home region vs OOP region) depends on that bit.
package cache

import (
	"sort"

	"hoop/internal/mem"
	"hoop/internal/sim"
	"hoop/internal/telemetry"
)

// Config sizes the hierarchy. All sizes are in bytes, latencies in
// simulated time (Table II uses a 2.5 GHz clock: L1 4 cycles, L2 12, LLC 40).
type Config struct {
	Cores      int
	L1Size     int
	L1Ways     int
	L1Latency  sim.Duration
	L2Size     int
	L2Ways     int
	L2Latency  sim.Duration
	LLCSize    int
	LLCWays    int
	LLCLatency sim.Duration
}

// DefaultConfig returns the Table II hierarchy for n cores at 2.5 GHz.
func DefaultConfig(n int) Config {
	const cycle = 400 * sim.Picosecond // 2.5 GHz
	return Config{
		Cores:      n,
		L1Size:     32 << 10,
		L1Ways:     4,
		L1Latency:  4 * cycle,
		L2Size:     256 << 10,
		L2Ways:     8,
		L2Latency:  12 * cycle,
		LLCSize:    2 << 20,
		LLCWays:    16,
		LLCLatency: 40 * cycle,
	}
}

// line is one cache-line tag entry.
type line struct {
	idx        uint64 // line index (addr >> 6); tag and set derive from it
	valid      bool
	dirty      bool
	persistent bool // HOOP per-line transaction bit
	stamp      uint64
}

// level is one set-associative tag array.
type level struct {
	sets    int
	ways    int
	latency sim.Duration
	meta    []line
	tick    uint64
}

func newLevel(size, ways int, lat sim.Duration) *level {
	sets := size / mem.LineSize / ways
	if sets <= 0 {
		panic("cache: level too small")
	}
	return &level{sets: sets, ways: ways, latency: lat, meta: make([]line, sets*ways)}
}

func (l *level) set(idx uint64) []line {
	s := int(idx) % l.sets
	return l.meta[s*l.ways : (s+1)*l.ways]
}

// lookup finds the line, bumping LRU on hit.
func (l *level) lookup(idx uint64) *line {
	set := l.set(idx)
	for i := range set {
		if set[i].valid && set[i].idx == idx {
			l.tick++
			set[i].stamp = l.tick
			return &set[i]
		}
	}
	return nil
}

// insert places idx into the level, returning the victim that was evicted
// (valid==true) if the set was full.
func (l *level) insert(idx uint64, dirty, persistent bool) (victim line) {
	set := l.set(idx)
	// Prefer an invalid way.
	vi := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		if !set[i].valid {
			vi = i
			victim = line{}
			break
		}
		if set[i].stamp < oldest {
			oldest = set[i].stamp
			vi = i
		}
	}
	if set[vi].valid {
		victim = set[vi]
	}
	l.tick++
	set[vi] = line{idx: idx, valid: true, dirty: dirty, persistent: persistent, stamp: l.tick}
	return victim
}

// invalidate drops idx, returning the dropped entry if it was present.
func (l *level) invalidate(idx uint64) (line, bool) {
	set := l.set(idx)
	for i := range set {
		if set[i].valid && set[i].idx == idx {
			old := set[i]
			set[i] = line{}
			return old, true
		}
	}
	return line{}, false
}

// Eviction describes a dirty line leaving the LLC toward memory. The
// persistence scheme decides where it lands (home region, OOP region, log).
type Eviction struct {
	Line       mem.PAddr
	Persistent bool // modified inside a transaction (HOOP persistent bit)
}

// Hierarchy is the full multi-core cache system.
type Hierarchy struct {
	cfg Config
	l1  []*level
	l2  []*level
	llc *level
	// Interned counter handles: exactly one of these fires per Lookup, so
	// they bypass the name-keyed stats map.
	l1Hits    *sim.Counter
	l2Hits    *sim.Counter
	llcHits   *sim.Counter
	llcMisses *sim.Counter
	evictions *sim.Counter
	// present maps line index -> bitmask of cores whose private hierarchy
	// (L1 or L2) may hold the line; used for write-invalidation without
	// scanning all cores on every store.
	present presenceIndex
	// evScratch backs the slice Fill returns; the caller owns the contents
	// only until the next Fill call.
	evScratch []Eviction

	tel *telemetry.Hub
}

// Presence-index geometry: the core-presence bitmasks live in direct-mapped
// pages of presenceLines consecutive line indices (one page spans
// presenceLines × 64 B = 16 KB of address space), found through a page table
// with a last-touched-page cache — the same structure mem.Store uses for
// data. Every hot-path presence read or update is then an array index; the
// page-table map is only consulted when the access stream crosses a page
// boundary.
const (
	presenceShift = 8 // lines per page (256)
	presenceLines = 1 << presenceShift
	presenceMask  = presenceLines - 1
)

type presencePage [presenceLines]uint32

type presenceIndex struct {
	pages   map[uint64]*presencePage
	lastKey uint64
	last    *presencePage
}

func (p *presenceIndex) reset() {
	p.pages = make(map[uint64]*presencePage)
	p.lastKey = 0
	p.last = nil
}

// page returns the page covering line idx, or nil when no bit in it was
// ever set.
func (p *presenceIndex) page(idx uint64) *presencePage {
	key := idx >> presenceShift
	if p.last != nil && key == p.lastKey {
		return p.last
	}
	pg := p.pages[key]
	if pg != nil {
		p.lastKey = key
		p.last = pg
	}
	return pg
}

func (p *presenceIndex) pageOrCreate(idx uint64) *presencePage {
	if pg := p.page(idx); pg != nil {
		return pg
	}
	key := idx >> presenceShift
	pg := new(presencePage)
	p.pages[key] = pg
	p.lastKey = key
	p.last = pg
	return pg
}

// get returns the presence mask for line idx (0 when never set).
func (p *presenceIndex) get(idx uint64) uint32 {
	if pg := p.page(idx); pg != nil {
		return pg[idx&presenceMask]
	}
	return 0
}

// set stores the presence mask for line idx. Storing 0 keeps the page: the
// pages track the touched footprint, which is bounded by the run's working
// set just like mem.Store's data pages.
func (p *presenceIndex) set(idx uint64, mask uint32) {
	if mask == 0 {
		if pg := p.page(idx); pg != nil {
			pg[idx&presenceMask] = 0
		}
		return
	}
	p.pageOrCreate(idx)[idx&presenceMask] = mask
}

// or sets bits in the presence mask for line idx.
func (p *presenceIndex) or(idx uint64, bits uint32) {
	pg := p.pageOrCreate(idx)
	pg[idx&presenceMask] |= bits
}

// New builds a hierarchy for cfg.
func New(cfg Config, stats *sim.Stats) *Hierarchy {
	if cfg.Cores < 1 || cfg.Cores > 32 {
		panic("cache: cores must be in [1,32]")
	}
	h := &Hierarchy{
		cfg:       cfg,
		llc:       newLevel(cfg.LLCSize, cfg.LLCWays, cfg.LLCLatency),
		l1Hits:    stats.Counter(sim.StatL1Hits),
		l2Hits:    stats.Counter(sim.StatL2Hits),
		llcHits:   stats.Counter(sim.StatLLCHits),
		llcMisses: stats.Counter(sim.StatLLCMisses),
		evictions: stats.Counter(sim.StatEvictions),
	}
	h.present.reset()
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, newLevel(cfg.L1Size, cfg.L1Ways, cfg.L1Latency))
		h.l2 = append(h.l2, newLevel(cfg.L2Size, cfg.L2Ways, cfg.L2Latency))
	}
	return h
}

// Config reports the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// AttachTelemetry connects the hierarchy to a telemetry hub. A
// KindCacheMiss event fires per full-hierarchy miss while subscribed; the
// events carry no time — the hierarchy is tag-only and untimed, latency
// is charged by the caller.
func (h *Hierarchy) AttachTelemetry(hub *telemetry.Hub) { h.tel = hub }

// Result reports the outcome of a Lookup.
type Result struct {
	// Latency is the total tag-probe latency down to the level that hit
	// (or the full L1+L2+LLC probe time on a miss).
	Latency sim.Duration
	// HitLevel is 1, 2 or 3 for L1/L2/LLC hits, 0 for a miss.
	HitLevel int
	// Writebacks are dirty lines pushed out of the LLC by fills done as
	// part of this access (empty for Lookup; produced by Fill).
	Writebacks []Eviction
}

// Lookup probes the hierarchy for core's access to address a. On a hit the
// line is promoted (and marked dirty/persistent for writes). On a miss the
// caller must obtain the data from the persistence scheme / NVM and then
// call Fill. Write hits invalidate other cores' private copies.
func (h *Hierarchy) Lookup(core int, a mem.PAddr, write, persistent bool) Result {
	idx := mem.LineIndex(a)
	lat := h.cfg.L1Latency
	if ln := h.l1[core].lookup(idx); ln != nil {
		if write {
			ln.dirty = true
			ln.persistent = ln.persistent || persistent
			h.markL2Dirty(core, idx, persistent)
			h.invalidateOthers(core, idx)
		}
		h.l1Hits.Inc()
		return Result{Latency: lat, HitLevel: 1}
	}
	lat += h.cfg.L2Latency
	if ln := h.l2[core].lookup(idx); ln != nil {
		// Promote into L1.
		wbs := h.fillL1(core, idx, write, write && persistent || ln.persistent)
		if write {
			ln.dirty = true
			ln.persistent = ln.persistent || persistent
			h.invalidateOthers(core, idx)
		}
		h.l2Hits.Inc()
		return Result{Latency: lat, HitLevel: 2, Writebacks: wbs}
	}
	lat += h.cfg.LLCLatency
	if ln := h.llc.lookup(idx); ln != nil {
		wbs := h.fillPrivate(core, idx, write, write && persistent || ln.persistent)
		if write {
			ln.dirty = true
			ln.persistent = ln.persistent || persistent
			h.invalidateOthers(core, idx)
		}
		h.llcHits.Inc()
		return Result{Latency: lat, HitLevel: 3, Writebacks: wbs}
	}
	h.llcMisses.Inc()
	if h.tel.Enabled(telemetry.KindCacheMiss) {
		var flags uint8
		if write {
			flags = telemetry.FlagWrite
		}
		h.tel.Emit(telemetry.Event{
			Kind:  telemetry.KindCacheMiss,
			Core:  int16(core),
			Addr:  mem.PAddr(idx << mem.LineShift),
			Bytes: mem.LineSize,
			Flags: flags,
		})
	}
	return Result{Latency: lat, HitLevel: 0}
}

// markL2Dirty keeps the inclusive L2 copy's dirty/persistent bits in sync
// when an L1 write hit occurs. (Real hardware defers this to L1 writeback;
// folding it early is equivalent for our accounting because only LLC
// evictions reach memory.)
func (h *Hierarchy) markL2Dirty(core int, idx uint64, persistent bool) {
	if ln := h.l2[core].lookup(idx); ln != nil {
		ln.dirty = true
		ln.persistent = ln.persistent || persistent
	}
	if ln := h.llc.lookup(idx); ln != nil {
		ln.dirty = true
		ln.persistent = ln.persistent || persistent
	}
}

// invalidateOthers removes the line from every other core's private levels
// (simple write-invalidate coherence).
func (h *Hierarchy) invalidateOthers(core int, idx uint64) {
	mask := h.present.get(idx)
	if mask == 0 {
		return
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || mask&(1<<uint(c)) == 0 {
			continue
		}
		if old, ok := h.l1[c].invalidate(idx); ok && old.dirty {
			// Fold dirtiness into the shared LLC copy.
			if ln := h.llc.lookup(idx); ln != nil {
				ln.dirty = true
				ln.persistent = ln.persistent || old.persistent
			}
		}
		if old, ok := h.l2[c].invalidate(idx); ok && old.dirty {
			if ln := h.llc.lookup(idx); ln != nil {
				ln.dirty = true
				ln.persistent = ln.persistent || old.persistent
			}
		}
		mask &^= 1 << uint(c)
	}
	mask |= 1 << uint(core)
	h.present.set(idx, mask)
}

// fillL1 installs a line into core's L1 only (it is already in L2/LLC).
func (h *Hierarchy) fillL1(core int, idx uint64, dirty, persistent bool) []Eviction {
	v := h.l1[core].insert(idx, dirty, persistent)
	if v.valid && v.dirty {
		// Victim folds into L2 (inclusive: it is there).
		if ln := h.l2[core].lookup(v.idx); ln != nil {
			ln.dirty = true
			ln.persistent = ln.persistent || v.persistent
		} else if ln := h.llc.lookup(v.idx); ln != nil {
			// L2 copy was itself evicted earlier; fold into LLC.
			ln.dirty = true
			ln.persistent = ln.persistent || v.persistent
		}
	}
	return nil
}

// fillPrivate installs a line into core's L2 and L1 (already in LLC).
func (h *Hierarchy) fillPrivate(core int, idx uint64, dirty, persistent bool) []Eviction {
	v := h.l2[core].insert(idx, dirty, persistent)
	if v.valid {
		if v.dirty {
			if ln := h.llc.lookup(v.idx); ln != nil {
				ln.dirty = true
				ln.persistent = ln.persistent || v.persistent
			}
		}
		// The victim leaves this core's private hierarchy entirely
		// (its L1 copy, if any, is dropped to preserve inclusion).
		if old, ok := h.l1[core].invalidate(v.idx); ok && old.dirty {
			if ln := h.llc.lookup(v.idx); ln != nil {
				ln.dirty = true
				ln.persistent = ln.persistent || old.persistent
			}
		}
		h.dropPresence(core, v.idx)
	}
	h.fillL1(core, idx, dirty, persistent)
	h.addPresence(core, idx)
	return nil
}

func (h *Hierarchy) addPresence(core int, idx uint64) {
	h.present.or(idx, 1<<uint(core))
}

func (h *Hierarchy) dropPresence(core int, idx uint64) {
	if pg := h.present.page(idx); pg != nil {
		pg[idx&presenceMask] &^= 1 << uint(core)
	}
}

// Fill installs the line containing a into the shared LLC and core's
// private levels after a miss has been serviced by memory. Dirty LLC
// victims are returned so the persistence scheme can write them to NVM.
func (h *Hierarchy) Fill(core int, a mem.PAddr, write, persistent bool) []Eviction {
	idx := mem.LineIndex(a)
	out := h.evScratch[:0]
	v := h.llc.insert(idx, write, persistent)
	if v.valid {
		dirty := v.dirty
		pers := v.persistent
		// Inclusive LLC: back-invalidate every private copy.
		if mask := h.present.get(v.idx); mask != 0 {
			for c := 0; c < h.cfg.Cores; c++ {
				if mask&(1<<uint(c)) == 0 {
					continue
				}
				if old, ok := h.l1[c].invalidate(v.idx); ok && old.dirty {
					dirty = true
					pers = pers || old.persistent
				}
				if old, ok := h.l2[c].invalidate(v.idx); ok && old.dirty {
					dirty = true
					pers = pers || old.persistent
				}
			}
			h.present.set(v.idx, 0)
		}
		if dirty {
			h.evictions.Inc()
			out = append(out, Eviction{Line: mem.PAddr(v.idx << mem.LineShift), Persistent: pers})
		}
	}
	h.fillPrivate(core, idx, write, persistent)
	if write {
		h.invalidateOthers(core, idx)
	}
	h.evScratch = out
	return out
}

// FlushLine writes back and optionally invalidates the line containing a
// across the whole hierarchy (clwb/clflush semantics used by the logging
// baselines). It reports whether the line was dirty anywhere (in which case
// the caller must perform the NVM write) and whether it carried the
// persistent bit.
func (h *Hierarchy) FlushLine(a mem.PAddr, invalidate bool) (dirty, persistent bool) {
	idx := mem.LineIndex(a)
	fold := func(l *level) {
		var old line
		var ok bool
		if invalidate {
			old, ok = l.invalidate(idx)
		} else if ln := l.lookup(idx); ln != nil {
			old, ok = *ln, true
			ln.dirty = false
		}
		if ok && old.dirty {
			dirty = true
			persistent = persistent || old.persistent
		}
	}
	for c := 0; c < h.cfg.Cores; c++ {
		fold(h.l1[c])
		fold(h.l2[c])
	}
	fold(h.llc)
	if invalidate {
		h.present.set(idx, 0)
	}
	return dirty, persistent
}

// ClearPersistent clears the persistent bit on the line containing a
// everywhere it is cached (done when a transaction's lines commit).
func (h *Hierarchy) ClearPersistent(a mem.PAddr) {
	idx := mem.LineIndex(a)
	clear := func(l *level) {
		if ln := l.lookup(idx); ln != nil {
			ln.persistent = false
		}
	}
	for c := 0; c < h.cfg.Cores; c++ {
		clear(h.l1[c])
		clear(h.l2[c])
	}
	clear(h.llc)
}

// DirtyLines returns the addresses of all dirty lines currently in the LLC
// (the writeback set a full-system flush would produce). Mainly for tests
// and for the native baseline's end-of-run accounting.
func (h *Hierarchy) DirtyLines() []mem.PAddr {
	var out []mem.PAddr
	for i := range h.llc.meta {
		ln := &h.llc.meta[i]
		if ln.valid && ln.dirty {
			out = append(out, mem.PAddr(ln.idx<<mem.LineShift))
		}
	}
	return out
}

// DirtyEvictions returns the eviction records (address + persistent bit) a
// full writeback of the LLC would produce, in ascending address order. The
// harness uses it to close measurement windows so that every scheme —
// including the native baseline — accounts the traffic its still-cached
// dirty data will eventually cost.
func (h *Hierarchy) DirtyEvictions() []Eviction {
	var out []Eviction
	for i := range h.llc.meta {
		ln := &h.llc.meta[i]
		if ln.valid && ln.dirty {
			out = append(out, Eviction{Line: mem.PAddr(ln.idx << mem.LineShift), Persistent: ln.persistent})
		}
	}
	sortEvictions(out)
	return out
}

func sortEvictions(evs []Eviction) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Line < evs[j].Line })
}

// Contains reports whether the line holding a is present anywhere in the
// hierarchy. Used by HOOP's mapping-table maintenance (§III-C: a mapping
// entry is dropped once the newest version lives in the cache hierarchy).
func (h *Hierarchy) Contains(a mem.PAddr) bool {
	idx := mem.LineIndex(a)
	if h.llc.lookup(idx) != nil {
		return true
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if h.l1[c].lookup(idx) != nil || h.l2[c].lookup(idx) != nil {
			return true
		}
	}
	return false
}

// DropAll models power loss: every cached line vanishes.
func (h *Hierarchy) DropAll() {
	for c := 0; c < h.cfg.Cores; c++ {
		h.l1[c].meta = make([]line, h.l1[c].sets*h.l1[c].ways)
		h.l2[c].meta = make([]line, h.l2[c].sets*h.l2[c].ways)
	}
	h.llc.meta = make([]line, h.llc.sets*h.llc.ways)
	h.present.reset()
}
