package cache

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

// TestLookupZeroAlloc locks the zero-allocation guarantee for the Lookup
// hot path: hits at every level, write hits (which consult the presence
// index), and misses must all run without touching the heap.
func TestLookupZeroAlloc(t *testing.T) {
	h := New(DefaultConfig(2), sim.NewStats())
	for i := 0; i < 16; i++ {
		h.Fill(0, mem.PAddr(i*mem.LineSize), i%2 == 0, false)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		a := mem.PAddr((i % 16) * mem.LineSize)
		h.Lookup(0, a, i%2 == 0, i%4 == 0)
		h.Lookup(0, mem.PAddr(1<<30)+a, false, false) // guaranteed miss
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v/run, want 0", allocs)
	}
}

// TestFillSteadyStateZeroAlloc locks zero allocations for Fill once the
// presence pages and the eviction scratch for the touched footprint exist.
func TestFillSteadyStateZeroAlloc(t *testing.T) {
	h := New(DefaultConfig(2), sim.NewStats())
	// Warm the footprint: enough lines in one LLC set to force evictions,
	// so the steady state exercises the back-invalidate + eviction path.
	sets := h.llc.sets
	for i := 0; i < 64; i++ {
		h.Fill(i%2, mem.PAddr(i*sets*mem.LineSize), true, true)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		h.Fill(i%2, mem.PAddr((i%64)*sets*mem.LineSize), true, i%2 == 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Fill allocates %v/run, want 0", allocs)
	}
}

// TestPresenceIndex exercises the paged presence index directly, including
// the page-boundary and never-touched cases.
func TestPresenceIndex(t *testing.T) {
	var p presenceIndex
	p.reset()
	if got := p.get(5); got != 0 {
		t.Fatalf("get on empty index = %#x", got)
	}
	p.or(5, 1<<3)
	p.or(5, 1<<7)
	if got := p.get(5); got != 1<<3|1<<7 {
		t.Fatalf("get(5) = %#x", got)
	}
	// Same slot in a different page must be independent.
	far := uint64(5 + presenceLines*3)
	if got := p.get(far); got != 0 {
		t.Fatalf("distinct page aliased: get(%d) = %#x", far, got)
	}
	p.set(far, 0xffffffff)
	if p.get(5) != 1<<3|1<<7 || p.get(far) != 0xffffffff {
		t.Fatal("cross-page interference")
	}
	p.set(5, 0)
	if p.get(5) != 0 {
		t.Fatal("set(5, 0) did not clear")
	}
	// set(idx, 0) on a never-touched page must not materialize one.
	before := len(p.pages)
	p.set(uint64(presenceLines*99), 0)
	if len(p.pages) != before {
		t.Fatal("set(_, 0) created a page")
	}
	p.reset()
	if p.get(far) != 0 {
		t.Fatal("reset left bits behind")
	}
}
