package cache

import (
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

// Hierarchy.Lookup runs once per simulated load/store line touch; Fill
// once per LLC miss. Together with mem.Store they bound the replay rate of
// every figure in the evaluation.

func BenchmarkLookupL1Hit(b *testing.B) {
	h := New(DefaultConfig(1), sim.NewStats())
	h.Fill(0, 0, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(0, 0, false, false)
	}
}

func BenchmarkLookupWriteHit(b *testing.B) {
	h := New(DefaultConfig(1), sim.NewStats())
	h.Fill(0, 0, true, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(0, 0, true, true)
	}
}

func BenchmarkMissFillCycle(b *testing.B) {
	// Streaming misses through a full LLC: every Fill evicts a victim.
	h := New(DefaultConfig(1), sim.NewStats())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := mem.PAddr(uint64(i) * mem.LineSize)
		h.Lookup(0, a, true, true)
		h.Fill(0, a, true, true)
	}
}
