package engine_test

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
)

// benchSystem builds a small HOOP system sized like the per-scheme
// transaction benchmarks at the repo root, but driven directly through an
// Env so the engine's per-operation cost (clock advance, cache access,
// scheme store path) is measured without workload logic on top.
func benchSystem(b *testing.B) *engine.System {
	b.Helper()
	cfg := engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 3
	cfg.NVM.Capacity = 4 << 30
	cfg.OOPBytes = 128 << 20
	cfg.Hoop.CommitLogBytes = 8 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkEngineTxWrite4 measures one transaction of four 8-byte stores —
// the engine-op primitive underneath every workload.
func BenchmarkEngineTxWrite4(b *testing.B) {
	sys := benchSystem(b)
	env := sys.NewEnv(0)
	const span = 1 << 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := mem.PAddr(uint64(i) * 4 * mem.WordSize % span)
		env.TxBegin()
		for w := 0; w < 4; w++ {
			env.WriteWord(base+mem.PAddr(w*mem.WordSize), uint64(i))
		}
		env.TxEnd()
	}
}

// BenchmarkEngineReadWord measures one non-transactional load through the
// cache hierarchy and logical view.
func BenchmarkEngineReadWord(b *testing.B) {
	sys := benchSystem(b)
	env := sys.NewEnv(0)
	const span = 1 << 20
	env.TxBegin()
	for a := mem.PAddr(0); a < span; a += mem.WordSize {
		env.WriteWord(a, uint64(a))
	}
	env.TxEnd()
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += env.ReadWord(mem.PAddr(uint64(i) * mem.WordSize % span))
	}
	benchSink = acc
}

var benchSink uint64
