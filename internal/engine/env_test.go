package engine_test

import (
	"testing"

	"hoop/internal/engine"
	"hoop/internal/mem"
	"hoop/internal/sim"
)

func smallSystem(t *testing.T, scheme string) *engine.System {
	t.Helper()
	cfg := engine.DefaultConfig(scheme)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.Hoop.CommitLogBytes = 1 << 20
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic: %s", what)
		}
	}()
	fn()
}

func TestEnvMisusePanics(t *testing.T) {
	sys := smallSystem(t, engine.SchemeNative)
	env := sys.NewEnv(0)
	expectPanic(t, "store outside tx", func() {
		env.WriteWord(0x100, 1)
	})
	env.TxBegin()
	expectPanic(t, "nested tx", func() { env.TxBegin() })
	expectPanic(t, "misaligned store", func() {
		env.Write(0x101, make([]byte, 8))
	})
	expectPanic(t, "misaligned size", func() {
		env.Write(0x100, make([]byte, 7))
	})
	env.TxEnd()
	expectPanic(t, "TxEnd without TxBegin", func() { env.TxEnd() })
	expectPanic(t, "thread out of range", func() { sys.NewEnv(99) })
}

func TestEnvReadWriteRoundtrip(t *testing.T) {
	sys := smallSystem(t, engine.SchemeHOOP)
	env := sys.NewEnv(0)
	env.TxBegin()
	env.WriteWord(0x1000, 0xCAFE)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	env.Write(0x2000, data)
	env.TxEnd()
	if env.ReadWord(0x1000) != 0xCAFE {
		t.Fatal("word roundtrip")
	}
	got := make([]byte, 16)
	env.Read(0x2000, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("slice roundtrip")
		}
	}
	if !env.InTx() == false && env.Thread() != 0 {
		t.Fatal("accessors")
	}
	if env.Now() <= 0 {
		t.Fatal("time must advance")
	}
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	sys := smallSystem(t, engine.SchemeHOOP)
	env := sys.NewEnv(0)
	var prev sim.Time
	for i := 0; i < 100; i++ {
		env.TxBegin()
		env.WriteWord(mem.PAddr(0x1000+i*64), uint64(i))
		env.TxEnd()
		now := env.Now()
		if now <= prev {
			t.Fatalf("time did not advance at tx %d", i)
		}
		prev = now
	}
}

func TestLoadHookCharged(t *testing.T) {
	// LSM implements LoadOverhead; a system running LSM must spend more
	// time per load than Ideal on identical access patterns.
	elapsed := func(scheme string) sim.Time {
		sys := smallSystem(t, scheme)
		env := sys.NewEnv(0)
		env.TxBegin()
		for i := 0; i < 64; i++ {
			env.WriteWord(mem.PAddr(0x1000+i*8), uint64(i))
		}
		env.TxEnd()
		start := env.Now()
		for r := 0; r < 4; r++ {
			for i := 0; i < 64; i++ {
				env.ReadWord(mem.PAddr(0x1000 + i*8))
			}
		}
		return env.Now() - start
	}
	if elapsed(engine.SchemeLSM) <= elapsed(engine.SchemeNative) {
		t.Fatal("LSM's per-load index lookup was not charged")
	}
}

func TestRecoverRequiresCrash(t *testing.T) {
	sys := smallSystem(t, engine.SchemeHOOP)
	if _, err := sys.Recover(2); err == nil {
		t.Fatal("Recover without Crash must fail")
	}
}

func TestVerifyRecoveredRequiresOracle(t *testing.T) {
	sys := smallSystem(t, engine.SchemeHOOP)
	expectPanic(t, "no oracle", func() { sys.VerifyRecovered(1) })
}

// TestVerifyRecoveredStopsAtMaxReport: with far more mismatching bytes
// than maxReport, the scan must return exactly maxReport mismatches and
// stop at the lowest-addressed page rather than walking the whole oracle.
func TestVerifyRecoveredStopsAtMaxReport(t *testing.T) {
	cfg := engine.DefaultConfig(engine.SchemeNative)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 2, 2, 2
	cfg.Ctrl.Agents = 4
	cfg.NVM.Capacity = 1 << 30
	cfg.OOPBytes = 64 << 20
	cfg.TrackOracle = true
	sys, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NewEnv(0)
	// Commit one word on each of 8 distinct home pages; the durable store
	// stays empty under the Ideal scheme, so every committed byte
	// mismatches.
	for i := 0; i < 8; i++ {
		env.TxBegin()
		env.WriteWord(mem.PAddr(i)*mem.PageSize, ^uint64(0))
		env.TxEnd()
	}
	mm := sys.VerifyRecovered(3)
	if len(mm) != 3 {
		t.Fatalf("got %d mismatches, want exactly maxReport=3", len(mm))
	}
	for _, m := range mm {
		if m.Addr >= mem.PageSize {
			t.Fatalf("mismatch at %#x: scan should have stopped inside the first page", uint64(m.Addr))
		}
	}
	// A generous cap still reports every mismatching byte (8 words).
	if all := sys.VerifyRecovered(1000); len(all) != 64 {
		t.Fatalf("full scan found %d mismatching bytes, want 64", len(all))
	}
}

func TestDrainCacheWritesBackDirtyData(t *testing.T) {
	sys := smallSystem(t, engine.SchemeNative)
	env := sys.NewEnv(0)
	env.TxBegin()
	env.WriteWord(0x5000, 77)
	env.TxEnd()
	// Dirty data is still cached: durable store may lag.
	sys.DrainCache()
	if got := sys.Durable().ReadWord(0x5000); got != 77 {
		t.Fatalf("durable after drain = %d", got)
	}
}

func TestBadConfigsRejected(t *testing.T) {
	cfg := engine.DefaultConfig("nope")
	if _, err := engine.New(cfg); err == nil {
		t.Fatal("unknown scheme must fail")
	}
	cfg = engine.DefaultConfig(engine.SchemeHOOP)
	cfg.Threads = 99
	if _, err := engine.New(cfg); err == nil {
		t.Fatal("threads > cores must fail")
	}
	cfg = engine.DefaultConfig(engine.SchemeHOOP)
	cfg.OOPBytes = cfg.NVM.Capacity
	if _, err := engine.New(cfg); err == nil {
		t.Fatal("OOP region >= capacity must fail")
	}
}

func TestSyncClocksAndReset(t *testing.T) {
	sys := smallSystem(t, engine.SchemeNative)
	e0, e1 := sys.NewEnv(0), sys.NewEnv(1)
	e0.TxBegin()
	for i := 0; i < 200; i++ {
		e0.WriteWord(mem.PAddr(0x9000+i*64), 1)
	}
	e0.TxEnd()
	if sys.Clock(0) <= sys.Clock(1) {
		t.Fatal("expected skew before sync")
	}
	sys.SyncClocks()
	if sys.Clock(0) != sys.Clock(1) {
		t.Fatal("SyncClocks must align")
	}
	sys.ResetMemoryQueues() // must not panic and must clear backlog
	_ = e1
}
