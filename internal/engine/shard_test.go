package engine

import (
	"encoding/json"
	"testing"

	"hoop/internal/mem"
	"hoop/internal/sim"
)

// countingHandler is a minimal ShardHandler: Setup stamps one word, Handle
// runs one transaction writing aux at a key-derived slot. Every simulated
// cost comes from the engine, so two shards fed the same requests must end
// bit-identical.
type countingHandler struct {
	region  mem.Region
	setups  int
	handled int
	burn    sim.Duration // extra simulated work per request (shed tests)
}

func (h *countingHandler) Setup(env *Env, region mem.Region, shard int, seed uint64) {
	h.region = region
	h.setups++
	env.TxBegin()
	env.WriteWord(region.Base, seed)
	env.TxEnd()
}

func (h *countingHandler) Handle(env *Env, req ShardRequest) {
	h.handled++
	env.TxBegin()
	slot := req.Key % (h.region.Size/8 - 1)
	env.WriteWord(h.region.Base+mem.PAddr(8+slot*8), req.Aux)
	env.TxEnd()
	if h.burn > 0 {
		env.AdvanceTo(env.Now() + h.burn)
	}
}

func shardConfig() Config {
	cfg := DefaultConfig(SchemeHOOP)
	cfg.Threads = 1
	return cfg
}

func TestShardSeedDerivation(t *testing.T) {
	// Distinct per index, stable across calls, never zero, and a function
	// of (runSeed, index) only.
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := ShardSeed(42, i)
		if s == 0 {
			t.Fatalf("ShardSeed(42,%d) = 0", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("ShardSeed collision: index %d and %d both %#x", j, i, s)
		}
		seen[s] = i
		if again := ShardSeed(42, i); again != s {
			t.Fatalf("ShardSeed(42,%d) unstable: %#x then %#x", i, s, again)
		}
	}
	if ShardSeed(1, 0) == ShardSeed(2, 0) {
		t.Fatal("ShardSeed ignores the run seed")
	}
}

func TestShardLifecycle(t *testing.T) {
	h := &countingHandler{}
	sh, err := OpenShard(ShardConfig{Index: 0, RunSeed: 7, Engine: shardConfig()}, h)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "Enqueue before Serve", func() { sh.Enqueue(ShardRequest{}) })
	mustPanic(t, "Quiesce before Serve", func() { sh.Quiesce() })

	sh.Serve()
	mustPanic(t, "double Serve", func() { sh.Serve() })

	const n = 50
	for i := 0; i < n; i++ {
		sh.Enqueue(ShardRequest{
			Arrival: sim.Time(i) * sim.Time(sim.Microsecond),
			Seq:     uint64(i),
			Key:     uint64(i * 13),
			Aux:     uint64(i),
		})
	}
	sh.Quiesce()
	if got := sh.Executed(); got != n {
		t.Fatalf("Executed = %d, want %d", got, n)
	}
	if h.setups != 1 || h.handled != n {
		t.Fatalf("handler saw setups=%d handled=%d, want 1/%d", h.setups, h.handled, n)
	}
	if sh.Epoch() <= 0 {
		t.Fatalf("Epoch = %v, want > 0 (Setup ran a transaction)", sh.Epoch())
	}
	if hist := sh.Sojourn(); hist.Count() != n {
		t.Fatalf("Sojourn count = %d, want %d", hist.Count(), n)
	}

	// Quiesce is repeatable and the shard keeps serving afterwards.
	sh.Quiesce()
	sh.Enqueue(ShardRequest{Arrival: sim.Time(n) * sim.Time(sim.Microsecond), Key: 1})
	sh.Quiesce()
	if got := sh.Executed(); got != n+1 {
		t.Fatalf("Executed after resume = %d, want %d", got, n+1)
	}

	sh.Close()
	sh.Close() // idempotent
	mustPanic(t, "Enqueue after Close", func() { sh.Enqueue(ShardRequest{}) })
}

func TestShardCloseWithoutServe(t *testing.T) {
	sh, err := OpenShard(ShardConfig{RunSeed: 1, Engine: shardConfig()}, &countingHandler{})
	if err != nil {
		t.Fatal(err)
	}
	sh.Close() // never served: must not hang or panic
}

func TestShardShedPolicy(t *testing.T) {
	// Each request burns 10us of simulated time but arrivals come every
	// 1us, so the shard falls ~9us further behind per request; with a 20us
	// bound everything past the first few is shed.
	h := &countingHandler{burn: 10 * sim.Microsecond}
	sh, err := OpenShard(ShardConfig{
		RunSeed:   3,
		Engine:    shardConfig(),
		ShedDelay: 20 * sim.Microsecond,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	sh.Serve()
	const n = 40
	for i := 0; i < n; i++ {
		sh.Enqueue(ShardRequest{Arrival: sim.Time(i) * sim.Time(sim.Microsecond), Key: uint64(i)})
	}
	sh.Quiesce()
	if sh.Shed() == 0 {
		t.Fatal("overloaded shard shed nothing")
	}
	if got := sh.Executed() + sh.Shed(); got != n {
		t.Fatalf("executed %d + shed %d = %d, want %d offered", sh.Executed(), sh.Shed(), got, n)
	}
	if sh.MaxQueueDelay() <= 20*sim.Microsecond {
		t.Fatalf("MaxQueueDelay = %v, want > shed bound", sh.MaxQueueDelay())
	}
	sh.Close()
}

// TestShardDeterminism feeds the same request sequence to two shards with
// the same (runSeed, index) and requires bit-identical snapshots — the
// property that makes parallel fleet runs reproducible.
func TestShardDeterminism(t *testing.T) {
	run := func() []byte {
		sh, err := OpenShard(ShardConfig{Index: 2, RunSeed: 99, Engine: shardConfig()}, &countingHandler{})
		if err != nil {
			t.Fatal(err)
		}
		sh.Serve()
		for i := 0; i < 200; i++ {
			sh.Enqueue(ShardRequest{
				Arrival: sim.Time(i) * sim.Time(500*sim.Nanosecond),
				Seq:     uint64(i),
				Key:     uint64(i*7 + 3),
				Aux:     uint64(i) * 11,
			})
		}
		sh.Quiesce()
		snap, err := json.Marshal(sh.System().Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		sh.Close()
		return snap
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("snapshots differ between identical runs:\n%s\n%s", a, b)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
