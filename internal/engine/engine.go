// Package engine assembles the full simulated system — cores, cache
// hierarchy, memory controller, NVM device, and one persistence scheme —
// and executes transactional workloads against it. It is the reproduction
// of the paper's McSimA+ + NVM-simulator platform at operation-level
// timing fidelity.
//
// The engine is deterministic: workload threads are interleaved by always
// running the thread with the smallest simulated clock, shared-resource
// contention (NVM banks, channel bandwidth, GC interference) is resolved
// through reservation times, and all randomness comes from seeded PRNGs.
package engine

import (
	"fmt"

	"hoop/internal/cache"
	"hoop/internal/hoop"
	"hoop/internal/mem"
	"hoop/internal/memctrl"
	"hoop/internal/nvm"
	"hoop/internal/persist"
	"hoop/internal/sim"
	"hoop/internal/telemetry"

	// The built-in schemes register themselves with the persist registry
	// from init(); the engine holds no per-scheme construction code. hoop
	// and lsm are imported above for their Config types.
	"hoop/internal/baseline/lad"
	"hoop/internal/baseline/lsm"
	"hoop/internal/baseline/native"
	"hoop/internal/baseline/osp"
	"hoop/internal/baseline/redo"
	"hoop/internal/baseline/undo"
)

// Scheme names accepted by Config.Scheme, matching the paper's figures.
const (
	SchemeHOOP   = hoop.SchemeName
	SchemeRedo   = redo.SchemeName
	SchemeUndo   = undo.SchemeName
	SchemeOSP    = osp.SchemeName
	SchemeLSM    = lsm.SchemeName
	SchemeLAD    = lad.SchemeName
	SchemeNative = native.SchemeName
)

// AllSchemes lists every scheme in the order the paper's figures use.
var AllSchemes = []string{SchemeRedo, SchemeUndo, SchemeOSP, SchemeLSM, SchemeLAD, SchemeHOOP, SchemeNative}

// CPUFreq is the simulated core frequency (Table II).
const CPUFreq = 2_500_000_000

// Config describes one simulated system.
type Config struct {
	Cores   int
	Threads int
	Scheme  string

	Cache cache.Config
	NVM   nvm.Params
	Ctrl  memctrl.Config

	// OOPBytes sizes the OOP/log region; zero means 10% of capacity
	// (§III-H).
	OOPBytes uint64

	Hoop hoop.Config
	LSM  lsm.Config

	// SchemeOpts carries construction options for registered schemes
	// beyond the typed Hoop/LSM fields above, keyed by scheme name. An
	// entry for a built-in scheme's name overrides the typed field.
	SchemeOpts map[string]any

	// TrackOracle records committed writes into a shadow store so crash
	// tests can verify recovery; costs memory, off by default.
	TrackOracle bool

	// Abortable enables Env.TxAbort by capturing a pre-image of every
	// transactional write into a per-thread arena so an abort can roll the
	// volatile view back. The capture is one View.Read per store (no
	// steady-state allocation), but it is off by default so the conflict-
	// free configurations keep their locked hot-path budgets; the
	// concurrency-control layer (internal/cc) turns it on.
	Abortable bool

	// OpCost is the computation time charged per load/store operation for
	// the non-memory instructions surrounding it (hashing, comparisons,
	// pointer arithmetic, function calls). The paper's McSimA+ platform
	// simulates the full instruction stream; this constant stands in for
	// it at operation granularity.
	OpCost sim.Duration
}

// DefaultConfig returns the paper's Table II system running workload with
// eight threads (§IV-A).
func DefaultConfig(scheme string) Config {
	const cores = 16
	return Config{
		Cores:   cores,
		Threads: 8,
		Scheme:  scheme,
		Cache:   cache.DefaultConfig(cores),
		NVM:     nvm.DefaultParams(),
		Ctrl:    memctrl.DefaultConfig(cores + 2), // cores + GC + checkpoint agents
		Hoop:    hoop.DefaultConfig(),
		LSM:     lsm.DefaultConfig(),
		OpCost:  25 * sim.Nanosecond,
	}
}

// schemeOpt resolves the construction options handed to persist.Build for
// the configured scheme: the typed Hoop/LSM fields, overridable (and
// extensible for out-of-tree schemes) through SchemeOpts.
func (c Config) schemeOpt() any {
	if opt, ok := c.SchemeOpts[c.Scheme]; ok {
		return opt
	}
	switch c.Scheme {
	case SchemeHOOP:
		return c.Hoop
	case SchemeLSM:
		return c.LSM
	}
	return nil
}

// writeRec is one committed-oracle record.
type writeRec struct {
	addr mem.PAddr
	data []byte
}

// undoLog is one thread's pre-image capture for Config.Abortable: a flat
// byte arena plus span records, both reused across transactions so the
// capture path performs no steady-state allocation.
type undoLog struct {
	buf   []byte
	spans []undoSpan
}

// undoSpan locates one pre-image inside the arena.
type undoSpan struct {
	addr mem.PAddr
	off  int
	n    int
}

// reset rewinds the log for a new transaction, keeping capacity.
func (u *undoLog) reset() {
	u.buf = u.buf[:0]
	u.spans = u.spans[:0]
}

// System is one fully wired simulated machine.
type System struct {
	cfg    Config
	stats  *sim.Stats
	store  *mem.Store
	view   *mem.Store
	oracle *mem.Store
	layout mem.Layout
	dev    *nvm.Device
	ctrl   *memctrl.Controller
	hier   *cache.Hierarchy
	scheme persist.Scheme
	hook   persist.LoadHook
	tel    *telemetry.Hub

	clocks   []*sim.Clock
	txID     []persist.TxID
	txOpen   []bool
	txBegan  []sim.Time
	txWrites [][]writeRec
	undo     []undoLog

	// Interned counter handles for the per-operation stats (one fires per
	// load/store issued by workload code).
	statTxLoads   *sim.Counter
	statTxStores  *sim.Counter
	statScanOps   *sim.Counter
	statScanItems *sim.Counter

	txLatSum  sim.Duration
	txLatHist sim.Histogram
	txCount   int64
	txAborts  int64
	loadOps   int64
	storeOps  int64
	crashed   bool
}

// New builds a system for cfg.
func New(cfg Config) (*System, error) {
	if cfg.Threads < 1 || cfg.Threads > cfg.Cores {
		return nil, fmt.Errorf("engine: threads must be in [1, cores=%d], got %d", cfg.Cores, cfg.Threads)
	}
	stats := sim.NewStats()
	store := mem.NewStore()
	oop := cfg.OOPBytes
	if oop == 0 {
		oop = cfg.NVM.Capacity / 10
	}
	if oop >= cfg.NVM.Capacity {
		return nil, fmt.Errorf("engine: OOP region (%d) must be smaller than capacity (%d)", oop, cfg.NVM.Capacity)
	}
	home := (cfg.NVM.Capacity - oop) &^ uint64(mem.LineSize-1)
	layout := mem.Layout{
		Home: mem.Region{Base: 0, Size: home},
		OOP:  mem.Region{Base: mem.PAddr(home), Size: oop &^ uint64(mem.LineSize-1)},
	}
	dev := nvm.NewDevice(cfg.NVM, store, stats)
	ctrl := memctrl.New(cfg.Ctrl, dev)
	hier := cache.New(cfg.Cache, stats)
	view := mem.NewStore()
	tel := telemetry.NewHub()
	dev.AttachTelemetry(tel)
	ctrl.AttachTelemetry(tel)
	hier.AttachTelemetry(tel)
	ctx := persist.Context{
		Cores:  cfg.Cores,
		Layout: layout,
		Dev:    dev,
		Ctrl:   ctrl,
		Hier:   hier,
		Stats:  stats,
		View:   view,
		Tel:    tel,
	}
	scheme, err := persist.Build(ctx, cfg.Scheme, cfg.schemeOpt())
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	s := &System{
		cfg:      cfg,
		stats:    stats,
		store:    store,
		view:     view,
		layout:   layout,
		dev:      dev,
		ctrl:     ctrl,
		hier:     hier,
		scheme:   scheme,
		tel:      tel,
		clocks:   make([]*sim.Clock, cfg.Threads),
		txID:     make([]persist.TxID, cfg.Threads),
		txOpen:   make([]bool, cfg.Threads),
		txBegan:  make([]sim.Time, cfg.Threads),
		txWrites: make([][]writeRec, cfg.Threads),

		statTxLoads:   stats.Counter(sim.StatTxLoads),
		statTxStores:  stats.Counter(sim.StatTxStores),
		statScanOps:   stats.Counter(sim.StatScanOps),
		statScanItems: stats.Counter(sim.StatScanItems),
	}
	if cfg.TrackOracle {
		s.oracle = mem.NewStore()
	}
	if cfg.Abortable {
		s.undo = make([]undoLog, cfg.Threads)
	}
	if h, ok := scheme.(persist.LoadHook); ok {
		s.hook = h
	}
	for i := range s.clocks {
		s.clocks[i] = sim.NewClock(CPUFreq)
	}
	return s, nil
}

// Accessors used by the harness and tests.

// Config reports the system configuration.
func (s *System) Config() Config { return s.cfg }

// Stats exposes the counter registry.
func (s *System) Stats() *sim.Stats { return s.stats }

// Scheme exposes the persistence scheme. Scheme-specific machinery (GC,
// consolidation, recovery scanning) is reached through the optional
// capability interfaces in package persist — Quiescer, GCReporter,
// RecoveryScanner — never by asserting on a concrete scheme type.
func (s *System) Scheme() persist.Scheme { return s.scheme }

// Device exposes the NVM device (energy, wear, sensitivity knobs).
func (s *System) Device() *nvm.Device { return s.dev }

// Layout reports the home/OOP split.
func (s *System) Layout() mem.Layout { return s.layout }

// Durable exposes the NVM contents (for recovery verification).
func (s *System) Durable() *mem.Store { return s.store }

// View exposes the volatile logical memory image.
func (s *System) View() *mem.Store { return s.view }

// Oracle exposes the committed-writes shadow store (nil unless
// TrackOracle).
func (s *System) Oracle() *mem.Store { return s.oracle }

// Clock reports thread t's current simulated time.
func (s *System) Clock(t int) sim.Time { return s.clocks[t].Now() }

// MaxClock reports the latest thread clock (the wall-clock span of the run).
func (s *System) MaxClock() sim.Time {
	var m sim.Time
	for _, c := range s.clocks {
		m = sim.MaxTime(m, c.Now())
	}
	return m
}

// LatencyHistogram returns a copy of the transaction critical-path latency
// distribution (log-bucketed). Copies from independent systems merge with
// sim.Histogram.Merge — the service tier folds per-shard histograms into
// fleet-wide p50/p99/p999.
func (s *System) LatencyHistogram() sim.Histogram { return s.txLatHist }

// Telemetry exposes the system's event hub. Components inside the system
// emit through it; consumers normally subscribe via Subscribe.
func (s *System) Telemetry() *telemetry.Hub { return s.tel }

// Subscribe attaches sink to the system's telemetry hub for the kinds in
// mask. There is no unsubscribe: sinks live as long as the system, and
// the run-shaped consumers (trace recorders, counting sinks) want exactly
// that.
func (s *System) Subscribe(sink telemetry.Sink, mask telemetry.Mask) {
	s.tel.Subscribe(sink, mask)
}
