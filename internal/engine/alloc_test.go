package engine

import (
	"testing"

	"hoop/internal/mem"
)

// TestTxHotPathAllocs locks the steady-state allocation budget of the full
// transaction hot path (TxBegin + 4 WriteWords + TxEnd) under the HOOP
// scheme. After warm-up the only permitted allocations are the amortized
// ones the functional model cannot avoid — mem.Store materializing a fresh
// backing page as the OOP slice cursor advances — which average well under
// one per transaction; the budget of 2 leaves headroom for that without
// letting a per-transaction map or slice allocation sneak back in.
func TestTxHotPathAllocs(t *testing.T) {
	cfg := DefaultConfig(SchemeHOOP)
	cfg.Cores, cfg.Threads, cfg.Cache.Cores = 1, 1, 1
	cfg.Ctrl.Agents = 3
	cfg.NVM.Capacity = 4 << 30
	cfg.OOPBytes = 128 << 20
	cfg.Hoop.CommitLogBytes = 8 << 20
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := sys.NewEnv(0)
	for i := 0; i < 100; i++ {
		env.TxBegin()
		for w := 0; w < 4; w++ {
			env.WriteWord(mem.PAddr(0x1000+w*8), uint64(i))
		}
		env.TxEnd()
	}
	allocs := testing.AllocsPerRun(200, func() {
		env.TxBegin()
		for w := 0; w < 4; w++ {
			env.WriteWord(mem.PAddr(0x1000+w*8), 7)
		}
		env.TxEnd()
	})
	if allocs > 2 {
		t.Fatalf("transaction hot path allocates %v times per tx, budget is 2", allocs)
	}
}
